# Development workflow for the Marauder's-map reproduction. The repo has
# no dependencies outside the Go standard library, so these targets are
# the entire toolchain.

GO ?= go

.PHONY: all build vet test race bench fmt check metrics-smoke trace-smoke chaos-smoke agent-smoke soak-smoke profile-smoke fuzz-smoke bench-ingest bench-store bench-churn bench-compare bench-pr

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The engine's ingest-while-snapshot path is concurrency-critical; run the
# whole suite under the race detector.
race:
	$(GO) test -race ./...

# Repro tables/figures plus the engine throughput benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

bench-engine:
	$(GO) test -run xxx -bench BenchmarkEngineSnapshot .

# Seed single-lock store vs the sharded+batched ingest path, with a
# benchstat comparison when benchstat is available.
bench-ingest:
	sh scripts/bench_ingest.sh

# AP-store regression gate: grid-indexed Within vs the linear scan at
# 255/1e5/1e6 APs plus the snapshot/codec and engine-frame benchmarks,
# recorded into BENCH_6.json. Fails unless the grid holds a >= 50x lead
# at 1e6 APs.
bench-store:
	sh scripts/bench_store.sh

# Incremental-kernel regression gate: MLocTracked + tracker-served area
# vs the full per-fix recompute on the sliding-Γ churn workload,
# recorded into BENCH_10.json. Fails unless the incremental kernel holds
# a >= 5x lead (and allocates nothing) at k≈8.
bench-churn:
	sh scripts/bench_churn.sh

# Perf-regression watchdog: diff the current BENCH_<pr>.json against the
# previous PR's checked-in baseline and fail on gated regressions (p99
# blowups, throughput collapse, lost kernel speedup, missing profile).
bench-compare:
	sh scripts/bench_compare.sh

# Regenerate the current PR's versioned perf summary: two mini-soaks
# (chaos off/on) through the flight recorder, the loopback agent-fleet
# run, plus the churn-kernel gate, all merged into BENCH_10.json, then
# the regression watchdog against the previous baseline.
bench-pr:
	sh scripts/soak_smoke.sh
	sh scripts/bench_churn.sh
	sh scripts/bench_compare.sh

# Short fuzzing burst over every fuzz target: the frame parser, the
# radiotap splitter, the sharded store's record ingest, and the
# incremental-region differential oracle. Checked-in corpora under
# testdata/fuzz replay as plain tests; this keeps mining.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzDecode$$' -fuzztime=10s ./internal/dot11
	$(GO) test -run xxx -fuzz 'FuzzDecodeRadiotap$$' -fuzztime=10s ./internal/dot11
	$(GO) test -run xxx -fuzz 'FuzzFrameParse$$' -fuzztime=10s ./internal/dot11
	$(GO) test -run xxx -fuzz 'FuzzIngest$$' -fuzztime=10s ./internal/obs
	$(GO) test -run xxx -fuzz 'FuzzSnapshotCodec$$' -fuzztime=10s ./internal/apdb
	$(GO) test -run xxx -fuzz 'FuzzIncrementalRegion$$' -fuzztime=30s ./internal/geom
	$(GO) test -run xxx -fuzz 'FuzzCapwireDecode$$' -fuzztime=10s ./internal/capwire

fmt:
	gofmt -l -w .

# End-to-end observability gate: boot cmd/marauder on the sim world with
# -metrics-addr, scrape /metrics, and assert the engine cache counters,
# snapshot-latency histogram and per-algorithm error histogram are served.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# End-to-end explainability gate: boot cmd/marauder with -trace, pull a
# device off /api/state, and assert /api/explain serves its provenance
# (algorithm, Γ, k, intersected area vs Theorem 2, cache hit, stage
# durations) and the /api/* method/caching contract holds.
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end robustness gate: boot cmd/marauder with -chaos and
# checkpointing, SIGKILL it mid-run, restart on the same checkpoint
# directory, and assert the recovery log line and a live /api/health.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# End-to-end distributed-capture gate: marauder with the agent plane as
# its only capture source, two capagents under the aggressive wire fault
# plan, one SIGKILLed and restarted mid-stream — must resume at its
# acked cursor with per-agent accounting balanced and metrics exported.
agent-smoke:
	sh scripts/agent_chaos_smoke.sh

# End-to-end flight-recorder gate: two mini-soaks (chaos off/on) through
# the FTDC recorder, ftdcdump -check on every record, and a merged
# BENCH_<pr>.json carrying both runs.
soak-smoke:
	sh scripts/soak_smoke.sh

# End-to-end profiling/SLO gate: a one-shot marauder run must write all
# five profile kinds and print a decoded hot-function attribution; a
# serving run must answer /api/slo and /api/profile with live content
# and export the stage/SLO metric families.
profile-smoke:
	sh scripts/profile_smoke.sh

# The gate CI runs: everything must pass before a merge.
check: vet build test race metrics-smoke trace-smoke chaos-smoke agent-smoke soak-smoke profile-smoke bench-store bench-churn bench-compare
