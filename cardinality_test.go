package repro

// Label-cardinality guard: every metric family on the process-wide
// registry must keep a small, fixed label vocabulary. A family whose
// instance count grows with user data (device MACs, trace IDs, AP
// BSSIDs) grows without bound in a long-lived deployment — the registry,
// /metrics responses, FTDC chunk schemas and SLO scans all scale with
// instance count — so this guard fails the build the moment a
// data-derived label sneaks in.

import (
	"testing"

	"repro/internal/apdb"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
)

// cardinalityCap is the fixed per-family instance budget. The largest
// legitimate family today is marauder_stage_seconds with one instance
// per pipeline stage (under ten); 64 leaves room for every stage and
// algorithm vocabulary to grow while still tripping on the first
// MAC-labeled series — the campus below alone has hundreds of devices
// and APs.
const cardinalityCap = 64

func TestRegistryCardinalityBounded(t *testing.T) {
	// Exercise the instrumented hot paths first so dynamically registered
	// instances (per-stage histograms, per-algorithm series) exist before
	// counting: capture a walk's traffic from hundreds of distinct MACs,
	// ingest it, fix repeatedly with stage timing on every fix, snapshot.
	w, victim, route := buildCampus(t)
	events := sim.WalkTrace(w, victim, route.TotalDuration(), 30)
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	caps := sn.CaptureAll(events)
	if len(caps) == 0 {
		t.Fatal("nothing captured")
	}

	eng, err := engine.New(engine.Config{
		Know:             core.KnowledgeFromStore(apdb.FromWorld(w, true)),
		WindowSec:        45,
		StageSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		_, fromAP := w.APByMAC(c.Frame.Addr2)
		eng.Ingest(c.TimeSec, c.Frame, fromAP)
	}
	for ts := 60.0; ts < route.TotalDuration(); ts += 60 {
		if _, err := eng.Fix(victim.MAC, ts); err != nil {
			t.Fatalf("fix at %gs: %v", ts, err)
		}
	}
	if frame := eng.Snapshot(route.TotalDuration() / 2); len(frame) == 0 {
		t.Fatal("empty snapshot frame")
	}

	cards := telemetry.Default().Cardinalities()
	if len(cards) == 0 {
		t.Fatal("registry has no families — instrumentation not wired")
	}
	if _, ok := cards["marauder_stage_seconds"]; !ok {
		t.Error("stage histograms absent after instrumented fixes")
	}
	for name, n := range cards {
		if n > cardinalityCap {
			t.Errorf("family %s has %d label instances (cap %d) — label vocabulary must be fixed, not data-derived", name, n, cardinalityCap)
		}
	}
}
