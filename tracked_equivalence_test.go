package repro

// Tracked-trajectory equivalence suite: drives engine.Track — the path
// that threads one core.RegionTracker through a device's consecutive
// windows — over the deterministic campus for all five localization
// algorithms, and requires the trajectory to be bit-identical to fixing
// every window independently with the plain per-window algorithm. For
// M-Loc this is the end-to-end differential oracle of the incremental
// intersection kernel (the engine path takes it; the reference path
// cannot); for the other four it pins that the Track plumbing changed
// nothing for untracked localizers.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/telemetry/trace"
)

func TestTrackedTrajectoryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	ew := buildEquivWorld(t)
	// 45 s windows stepped every 15 s: consecutive windows overlap, so the
	// victim's Γ slides a few APs per step and the m-loc case runs mostly
	// on the incremental path (a 60 s step would turn over more than half
	// of Γ each fix and the tracker would — correctly — always rebuild).
	const (
		windowSec = 45.0
		stepSec   = 15.0
	)

	cases := []struct {
		name string
		loc  core.Localizer
		know core.Knowledge
	}{
		{"m-loc", core.MLocalizer{}, ew.know},
		{"centroid", core.CentroidLocalizer{}, ew.know},
		{"closest-ap", core.ClosestAPLocalizer{}, ew.know},
		{"ap-rad", core.APRadLocalizer{}, ew.aprad},
		{"ap-loc", &core.APLocLocalizer{}, ew.aploc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tracer, err := trace.New(trace.Config{})
			if err != nil {
				t.Fatal(err)
			}
			// Caching disabled: every fix must run the algorithm, so the
			// m-loc case exercises the incremental path on every step.
			e, err := engine.New(engine.Config{
				Know:      tc.know,
				Store:     ew.store,
				Localizer: tc.loc,
				WindowSec: windowSec,
				CacheSize: -1,
				Workers:   1,
				Tracer:    tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Track(ew.victim, 0, ew.duration, stepSec)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: every window fixed independently, no state reuse.
			var want []core.TrackPoint
			for i := 0; ; i++ {
				ts := float64(i) * stepSec
				if ts > ew.duration {
					break
				}
				gamma := ew.store.APSetWindow(ew.victim, ts-windowSec/2, ts+windowSec/2)
				if len(gamma) == 0 {
					continue
				}
				est, err := tc.loc.Locate(tc.know, gamma)
				if err != nil {
					continue
				}
				want = append(want, core.TrackPoint{TimeSec: ts, Est: est})
			}
			if len(want) < 5 {
				t.Fatalf("reference trajectory has only %d points; fixture too sparse", len(want))
			}
			if len(got) != len(want) {
				t.Fatalf("Track produced %d points, reference %d", len(got), len(want))
			}
			for i := range want {
				g, w := got[i], want[i]
				if g.TimeSec != w.TimeSec || g.Est.Pos != w.Est.Pos ||
					g.Est.K != w.Est.K || g.Est.Method != w.Est.Method {
					t.Fatalf("point %d: got {t=%v pos=%v k=%d %q}, want {t=%v pos=%v k=%d %q} (not bit-equal)",
						i, g.TimeSec, g.Est.Pos, g.Est.K, g.Est.Method,
						w.TimeSec, w.Est.Pos, w.Est.K, w.Est.Method)
				}
				if len(g.Est.Vertices) != len(w.Est.Vertices) {
					t.Fatalf("point %d: %d vertices, want %d", i, len(g.Est.Vertices), len(w.Est.Vertices))
				}
				for v := range w.Est.Vertices {
					if g.Est.Vertices[v] != w.Est.Vertices[v] {
						t.Fatalf("point %d vertex %d: %v, want %v", i, v, g.Est.Vertices[v], w.Est.Vertices[v])
					}
				}
			}

			// The m-loc engine must actually have used the incremental
			// kernel — a silent full-recompute fallback on every window
			// would pass the equality check while voiding the speedup.
			if tc.name == "m-loc" {
				incremental, full := 0, 0
				for _, rec := range tracer.Recent(0) {
					if p := rec.Provenance; p != nil {
						switch p.RegionPath {
						case core.RegionPathIncremental:
							incremental++
						case core.RegionPathFull:
							full++
						}
					}
				}
				if incremental == 0 || incremental <= full {
					t.Fatalf("incremental path served %d fixes vs %d full; overlapping windows should mostly diff",
						incremental, full)
				}
			}
		})
	}
}
