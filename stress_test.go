package repro

// Concurrency stress for the sharded observation store: writers hammer the
// batched ingest path while readers take whole-map snapshots and
// co-observation indexes. Run under -race this doubles as the data-race
// proof for the per-shard locking; the final length check proves no record
// is lost between a batch's shard buckets.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestConcurrentIngestAndSnapshot(t *testing.T) {
	const (
		nAPs      = 32
		batchSize = 64
		nBatches  = 30
	)
	infos := make([]core.APInfo, nAPs)
	aps := make([]dot11.MAC, nAPs)
	for i := range aps {
		aps[i] = sim.NewMAC(0xA9, i)
		infos[i] = core.APInfo{
			BSSID: aps[i], Pos: geom.Pt(float64(i%8)*50, float64(i/8)*50), MaxRange: 120,
		}
	}
	know := core.NewKnowledge(infos)
	store := obs.NewStore()
	eng, err := engine.New(engine.Config{Know: know, Store: store, WindowSec: 60})
	if err != nil {
		t.Fatal(err)
	}

	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4 // contend even on a 1-CPU box
	}
	var applied atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]obs.FrameCapture, batchSize)
			for b := 0; b < nBatches; b++ {
				for i := range batch {
					dev := sim.NewMAC(0xDD, w*1000+i%10)
					ap := aps[(w+b+i)%nAPs]
					batch[i] = obs.FrameCapture{
						TimeSec: float64(b*batchSize+i) / 10,
						Frame:   dot11.NewProbeResponse(ap, dev, "", 1, uint16(i)),
						FromAP:  true,
					}
				}
				applied.Add(int64(store.IngestFrames(batch)))
			}
		}(w)
	}
	// Readers run until the writers finish; every query they make must be
	// internally consistent, but the interesting part is simply surviving
	// -race while the shards churn.
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				frame := eng.SnapshotRange(0, math.MaxFloat64)
				_ = len(frame)
				idx := store.CoObservationIndex()
				_ = len(idx)
				_ = store.ShardLens()
			}
		}()
	}
	wg.Wait()
	close(done)
	rg.Wait()

	want := int64(writers) * nBatches * batchSize
	if got := applied.Load(); got != want {
		t.Fatalf("IngestFrames applied %d frames, want %d", got, want)
	}
	if got := int64(store.Len()); got != want {
		t.Fatalf("store retained %d records, want %d (lost in shard bucketing?)", got, want)
	}
	var sum int
	for _, n := range store.ShardLens() {
		sum += n
	}
	if int64(sum) != want {
		t.Fatalf("shard lengths sum to %d, want %d", sum, want)
	}
}
