// Package repro is a from-scratch Go reproduction of "The Digital
// Marauder's Map: A New Threat to Location Privacy in Wireless Networks"
// (Fu, Zhang, Pingley, Yu, Wang, Zhao — ICDCS 2009).
//
// The system locates WiFi mobile devices from nothing but the *set of APs
// each device can communicate with*, observed by a single high-gain
// receiver chain sniffing 802.11 probe traffic. The packages compose as
// the paper's architecture does:
//
//	internal/rf        — link budget (Theorem 1), receiver chains, catalog
//	internal/dot11     — 802.11 management frames, channels, leakage
//	internal/pcap      — capture file format
//	internal/sim       — campus world: APs, devices, mobility, terrain
//	internal/sniffer   — the wireless receiver chain + capture engine
//	internal/obs       — per-device communicable-AP observation store
//	internal/apdb      — WiGLE-style AP knowledge base
//	internal/wardrive  — training-tuple collection (optional phase)
//	internal/core      — M-Loc, AP-Rad, AP-Loc + baselines + tracker
//	internal/engine    — concurrent ingest→observe→localize pipeline
//	internal/theory    — Theorems 2-3 closed forms and Monte-Carlo checks
//	internal/experiments — regenerates every figure of the evaluation
//	internal/mapserver — the live map display
//
// Executables live under cmd/ (marauder, benchfig, theoryplot, wardrive)
// and runnable walkthroughs under examples/.
//
// The repository-root benchmarks (bench_test.go) time one regeneration of
// every table and figure in the paper's evaluation section.
package repro
