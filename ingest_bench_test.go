package repro

// Benchmarks for the observation-store ingest path: the seed's
// single-lock per-frame store versus the sharded store, per-frame and
// batched. Run with -cpu 1,4 — the single-lock path should hold even at
// -cpu 1 (no regression) and lose under parallel ingest, where sharding
// spreads the lock and batching amortizes each acquisition over ~256
// frames.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sim"
)

const ingestBatchSize = 256

// ingestPools pre-generates per-goroutine capture pools so RunParallel
// bodies only ingest: each pool uses its own device MACs (spread across
// shards) against a shared set of APs.
func ingestPools(nPools, poolLen int) [][]obs.FrameCapture {
	aps := make([]dot11.MAC, 32)
	for i := range aps {
		aps[i] = sim.NewMAC(0xA9, i)
	}
	pools := make([][]obs.FrameCapture, nPools)
	for g := range pools {
		pool := make([]obs.FrameCapture, poolLen)
		for i := range pool {
			dev := sim.NewMAC(0xDD, g*64+i%16)
			pool[i] = obs.FrameCapture{
				TimeSec: float64(i) / 10,
				Frame:   dot11.NewProbeResponse(aps[(g+i)%len(aps)], dev, "", 1, uint16(i)),
				FromAP:  true,
			}
		}
		pools[g] = pool
	}
	return pools
}

func BenchmarkIngestParallel(b *testing.B) {
	pools := ingestPools(64, 1024)
	perFrame := func(store *obs.Store) func(b *testing.B) {
		return func(b *testing.B) {
			var gid atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pool := pools[int(gid.Add(1)-1)%len(pools)]
				i := 0
				for pb.Next() {
					c := pool[i%len(pool)]
					store.Ingest(c.TimeSec, c.Frame, c.FromAP)
					i++
				}
			})
		}
	}
	batched := func(store *obs.Store) func(b *testing.B) {
		return func(b *testing.B) {
			var gid atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pool := pools[int(gid.Add(1)-1)%len(pools)]
				i := 0
				for pb.Next() {
					// One op is still one frame; frames are delivered to the
					// store a batch at a time, as the engine does.
					if i%ingestBatchSize == ingestBatchSize-1 {
						lo := i + 1 - ingestBatchSize
						store.IngestFrames(pool[lo%len(pool) : lo%len(pool)+ingestBatchSize])
					}
					i++
				}
			})
		}
	}
	b.Run("seed", perFrame(obs.NewStoreShards(1)))
	b.Run("sharded-frame", perFrame(obs.NewStoreShards(0)))
	b.Run("sharded-batched", batched(obs.NewStoreShards(0)))
}

// BenchmarkSnapshotWhileIngest times whole-map snapshots while a
// background writer streams capture batches into the same store — the
// live-attack steady state, where the map renders as frames keep landing.
func BenchmarkSnapshotWhileIngest(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"seed", 1},
		{"sharded-batched", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			infos := make([]core.APInfo, 0, 64)
			for i := 0; i < 64; i++ {
				m := sim.NewMAC(0xA9, i)
				infos = append(infos, core.APInfo{
					BSSID: m, Pos: geom.Pt(float64(i%8)*60, float64(i/8)*60), MaxRange: 150,
				})
			}
			know := core.NewKnowledge(infos)
			store := obs.NewStoreShards(bc.shards)
			eng, err := engine.New(engine.Config{
				Know: know, Store: store, WindowSec: 60, CacheSize: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			// The writer streams batches with an advancing capture clock;
			// the timed loop snapshots the trailing 60-second window, so the
			// per-snapshot record population stays bounded (~6k records)
			// while the store itself keeps growing under it.
			aps := make([]dot11.MAC, 64)
			for i := range aps {
				aps[i] = sim.NewMAC(0xA9, i)
			}
			var nowBits atomic.Uint64
			clock := 0.0
			batch := make([]obs.FrameCapture, ingestBatchSize)
			fill := func() {
				for i := range batch {
					clock += 0.01
					dev := sim.NewMAC(0xDD, i%16)
					batch[i] = obs.FrameCapture{
						TimeSec: clock,
						Frame:   dot11.NewProbeResponse(aps[i%len(aps)], dev, "", 1, uint16(i)),
						FromAP:  true,
					}
				}
			}
			for clock < 70 { // pre-fill one full window
				fill()
				store.IngestFrames(batch)
			}
			nowBits.Store(math.Float64bits(clock))
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					fill()
					store.IngestFrames(batch)
					nowBits.Store(math.Float64bits(clock))
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := math.Float64frombits(nowBits.Load())
				eng.SnapshotRange(now-60, now)
			}
			b.StopTimer()
			close(done)
			wg.Wait()
		})
	}
}
