package repro

// Refactor-equivalence suite: pins the estimates of all five localization
// algorithms — M-Loc, AP-Rad, AP-Loc, Centroid, Closest-AP — on the
// integration-test campus to a golden file generated from the seed
// implementation. The test is written purely against the APIs that are
// stable across the AP-store refactor (core.NewKnowledge plus the
// exported algorithm entry points), so the same source compiles and must
// produce bit-identical positions before and after the knowledge plane is
// re-plumbed onto the struct-of-arrays store.
//
// Regenerate (only when the *intended* numerics change) with:
//
//	UPDATE_EQUIVALENCE_GOLDEN=1 go test -run TestRefactorEquivalence .

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/wardrive"
)

const equivalenceGoldenPath = "testdata/equivalence_golden.json"

// equivFix is one recorded estimate: positions are stored as float64 bit
// patterns so the comparison is exact, not tolerance-based.
type equivFix struct {
	Algo   string `json:"algo"`
	Window int    `json:"window"`
	OK     bool   `json:"ok"`
	XBits  uint64 `json:"xBits,omitempty"`
	YBits  uint64 `json:"yBits,omitempty"`
	K      int    `json:"k,omitempty"`
}

// equivWorld is the deterministic campus fixture shared by the golden
// suite and the tracked-trajectory suite: one observation store and the
// three knowledge bases the five algorithms localize against.
type equivWorld struct {
	know     core.Knowledge // ground-truth positions and ranges (m-loc, baselines)
	aprad    core.Knowledge // AP-Rad: true positions, LP-estimated radii
	aploc    core.Knowledge // AP-Loc: wardriven positions, LP-estimated radii
	store    *obs.Store
	victim   dot11.MAC
	duration float64
}

// buildEquivWorld simulates the campus walk, captures it, and trains the
// AP-Rad / AP-Loc knowledge exactly as the golden suite always has.
func buildEquivWorld(t *testing.T) equivWorld {
	t.Helper()
	w, victim, route := buildCampus(t)

	events := sim.WalkTrace(w, victim, route.TotalDuration(), 30)
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	caps := sn.CaptureAll(events)
	if len(caps) == 0 {
		t.Fatal("nothing captured")
	}
	store := obs.NewStore()
	for _, c := range caps {
		_, fromAP := w.APByMAC(c.Frame.Addr2)
		store.Ingest(c.TimeSec, c.Frame, fromAP)
	}

	withRange := make([]core.APInfo, 0, len(w.APs))
	noRange := make([]core.APInfo, 0, len(w.APs))
	for _, ap := range w.APs {
		withRange = append(withRange, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
		noRange = append(noRange, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos})
	}
	know := core.NewKnowledge(withRange)
	base := core.NewKnowledge(noRange)

	radCfg := core.APRadConfig{MaxRadius: 160, MaxNeighborConstraints: 12}
	aprad, _, err := core.EstimateRadii(base, store.DeviceAPSets(), radCfg)
	if err != nil {
		t.Fatalf("ap-rad training: %v", err)
	}
	tuples := wardrive.Collector{World: w}.CollectAlong(route, 20)
	located, err := core.EstimateAPLocations(tuples, core.APLocConfig{TrainingRadius: 130})
	if err != nil {
		t.Fatalf("ap-loc position training: %v", err)
	}
	aploc, _, err := core.EstimateRadii(located, store.DeviceAPSets(), radCfg)
	if err != nil {
		t.Fatalf("ap-loc radius training: %v", err)
	}
	return equivWorld{
		know:     know,
		aprad:    aprad,
		aploc:    aploc,
		store:    store,
		victim:   victim.MAC,
		duration: route.TotalDuration(),
	}
}

// equivCompute runs the five algorithms over the deterministic campus and
// returns every fix in a canonical order.
func equivCompute(t *testing.T) []equivFix {
	t.Helper()
	ew := buildEquivWorld(t)
	know, aprad, aploc := ew.know, ew.aprad, ew.aploc
	store, victim, duration := ew.store, ew.victim, ew.duration

	const windowSec = 45.0
	var fixes []equivFix
	record := func(algo string, win int, est core.Estimate, err error) {
		f := equivFix{Algo: algo, Window: win}
		if err == nil {
			f.OK = true
			f.XBits = math.Float64bits(est.Pos.X)
			f.YBits = math.Float64bits(est.Pos.Y)
			f.K = est.K
		}
		fixes = append(fixes, f)
	}
	for i := 0; ; i++ {
		ts := float64(i) * 60
		if ts > duration {
			break
		}
		gamma := store.APSetWindow(victim, ts-windowSec/2, ts+windowSec/2)
		if len(gamma) == 0 {
			continue
		}
		est, err := core.MLoc(know, gamma)
		record("m-loc", i, est, err)
		est, err = core.CentroidBaseline(know, gamma)
		record("centroid", i, est, err)
		est, err = core.ClosestAPBaseline(know, gamma)
		record("closest-ap", i, est, err)
		est, _, err = core.MLocInflated(aprad, gamma, 4)
		record("ap-rad", i, est, err)
		est, _, err = core.MLocInflated(aploc, gamma, 4)
		record("ap-loc", i, est, err)
	}
	if len(fixes) < 25 {
		t.Fatalf("only %d fixes computed; the campus walk should yield 5 algos x >=5 windows", len(fixes))
	}
	return fixes
}

// TestRefactorEquivalence asserts every algorithm's estimates are
// bit-identical to the seed implementation's golden file.
func TestRefactorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	got := equivCompute(t)
	if os.Getenv("UPDATE_EQUIVALENCE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(equivalenceGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivalenceGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s with %d fixes", equivalenceGoldenPath, len(got))
		return
	}
	buf, err := os.ReadFile(equivalenceGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (generate with UPDATE_EQUIVALENCE_GOLDEN=1): %v", err)
	}
	var want []equivFix
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fix count %d != golden %d", len(got), len(want))
	}
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			mismatches++
			if mismatches <= 10 {
				t.Errorf("fix %d (%s window %d): got %+v want %+v (gotPos=(%g,%g) wantPos=(%g,%g))",
					i, want[i].Algo, want[i].Window, got[i], want[i],
					math.Float64frombits(got[i].XBits), math.Float64frombits(got[i].YBits),
					math.Float64frombits(want[i].XBits), math.Float64frombits(want[i].YBits))
			}
		}
	}
	if mismatches > 10 {
		t.Errorf("... and %d more mismatches", mismatches-10)
	}
}
