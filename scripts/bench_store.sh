#!/bin/sh
# Benchmark the unified AP store: grid-indexed Within vs the linear scan
# at 255 / 1e5 / 1e6 APs, the M-Loc candidate path, snapshot
# publish/cached, the binary codec, and the engine's full map frame on
# top of the snapshot-backed knowledge. The run fails unless the grid
# beats the linear scan by >= 50x at 1e6 APs.
#
# The raw results become the "micro" section of the versioned summary:
# awk distills them into a microbenchmark JSON and cmd/soak's merger
# folds it into BENCH_<pr>.json — the same idiom the soak runs use, so
# one writer produces every BENCH_<pr>.json.
#
# Usage: sh scripts/bench_store.sh [count] [outfile] [pr]
set -eu

count="${1:-3}"
pr="${3:-6}"
outfile="${2:-BENCH_${pr}.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go test -run '^$' \
	-bench 'BenchmarkWithinLinear|BenchmarkWithinGrid|BenchmarkCandidatesFor|BenchmarkSnapshotPublish|BenchmarkSnapshotCached|BenchmarkSnapshotEncode|BenchmarkSnapshotDecode' \
	-benchtime 0.5s -count "$count" ./internal/apdb | tee "$tmp/raw.txt"
go test -run '^$' -bench 'BenchmarkEngineSnapshot' \
	-benchtime 0.5s -count "$count" . | tee -a "$tmp/raw.txt"

gover="$(go env GOVERSION)"

awk -v gover="$gover" -v outfile="$tmp/micro.json" '
/^cpu: / { sub(/^cpu: /, ""); cpu = $0; next }
/^Benchmark/ && / ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") {
			ns = $i + 0
			if (!(name in best) || ns < best[name]) best[name] = ns
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
	}
}
END {
	lin = best["BenchmarkWithinLinear/aps=1000000"]
	grid = best["BenchmarkWithinGrid/aps=1000000"]
	if (lin == "" || grid == "" || grid <= 0) {
		print "bench_store: missing 1e6-AP Within benchmarks" > "/dev/stderr"
		exit 1
	}
	speedup = lin / grid
	printf "{\n" > outfile
	printf "  \"generated_by\": \"scripts/bench_store.sh\",\n" > outfile
	printf "  \"go\": \"%s\",\n", gover > outfile
	printf "  \"cpu\": \"%s\",\n", cpu > outfile
	printf "  \"grid_speedup_1e6\": %.1f,\n", speedup > outfile
	printf "  \"benchmarks_ns_per_op\": {\n" > outfile
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": %.1f%s\n", name, best[name], (i < n ? "," : "") > outfile
	}
	printf "  }\n}\n" > outfile
	printf "\ngrid vs linear at 1e6 APs: %.1fx (floor 50x)\n", speedup
	if (speedup < 50) {
		print "bench_store: grid speedup below 50x floor" > "/dev/stderr"
		exit 1
	}
}' "$tmp/raw.txt"

go run ./cmd/soak -duration 0 -out "$outfile" -pr "$pr" -merge-micro "$tmp/micro.json"
echo "wrote $outfile"
