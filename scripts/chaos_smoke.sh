#!/bin/sh
# chaos-smoke: boot cmd/marauder with the aggressive fault plan and
# crash-safe checkpointing, kill it with SIGKILL mid-run, restart it on
# the same checkpoint directory, and assert the restart logs a recovery
# and /api/health answers. This is the CI gate for "the pipeline survives
# faults and a hard crash", not just "the fault-injection unit tests
# pass".
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18643}"
BIN="$(mktemp -d)/marauder"
CKPT="$(mktemp -d)"
LOG1="$(mktemp)"
LOG2="$(mktemp)"
OUT="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG1" "$LOG2" "$OUT"
    rm -rf "$(dirname "$BIN")" "$CKPT"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/marauder

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# Health probe that tolerates 503: a degraded report is a valid answer
# here (chaos kills cards on a schedule), an unreachable server is not.
fetch_health() {
    if command -v curl >/dev/null 2>&1; then
        curl -sS "http://$ADDR/api/health"
    else
        wget -qO- --content-on-error "http://$ADDR/api/health" 2>/dev/null || true
    fi
}

# --- First run: chaos + checkpointing, then kill -9. ---
"$BIN" -addr "$ADDR" -aps 150 -speedup 100 -chaos \
    -checkpoint-dir "$CKPT" -checkpoint-interval 1s >"$LOG1" 2>&1 &
PID=$!

# Wait until at least one checkpoint file lands.
tries=0
while [ -z "$(ls "$CKPT" 2>/dev/null)" ]; do
    tries=$((tries + 1))
    if [ "$tries" -ge 60 ]; then
        echo "chaos-smoke: no checkpoint written within 30s" >&2
        cat "$LOG1" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "chaos-smoke: marauder exited early" >&2
        cat "$LOG1" >&2
        exit 1
    fi
    sleep 0.5
done

# /api/health must answer while chaos is active (200 healthy or 503
# degraded, either way a JSON status).
fetch_health >"$OUT"
grep -q '"status"' "$OUT" || {
    echo "chaos-smoke: /api/health served no status: $(cat "$OUT")" >&2
    exit 1
}

# Hard crash: no graceful shutdown, no final checkpoint.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=

# --- Second run: must recover from the surviving checkpoint. ---
"$BIN" -addr "$ADDR" -aps 150 -speedup 100 \
    -checkpoint-dir "$CKPT" -checkpoint-interval 1s >"$LOG2" 2>&1 &
PID=$!

tries=0
while ! grep -q "observations restored from checkpoint" "$LOG2"; do
    tries=$((tries + 1))
    if [ "$tries" -ge 60 ]; then
        echo "chaos-smoke: restart never logged a checkpoint recovery" >&2
        cat "$LOG2" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "chaos-smoke: restarted marauder exited early" >&2
        cat "$LOG2" >&2
        exit 1
    fi
    sleep 0.5
done

# Without -chaos the recovered pipeline reports healthy, with the engine
# and card detail attached.
tries=0
while :; do
    tries=$((tries + 1))
    if fetch "http://$ADDR/api/health" >"$OUT" 2>/dev/null \
        && grep -q '"status":"healthy"' "$OUT"; then
        break
    fi
    if [ "$tries" -ge 60 ]; then
        echo "chaos-smoke: recovered instance never reported healthy; last answer:" >&2
        cat "$OUT" >&2
        exit 1
    fi
    sleep 0.5
done

# The recovered store is live: /api/stats serves engine stats with
# observations carried over from before the crash.
fetch "http://$ADDR/api/stats" >"$OUT"
grep -q '"engine"' "$OUT" || {
    echo "chaos-smoke: /api/stats missing engine block" >&2
    exit 1
}

echo "chaos-smoke: ok (crash survived, checkpoint recovered, health served)"
