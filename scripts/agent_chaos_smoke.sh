#!/bin/sh
# agent-chaos-smoke: boot cmd/marauder with the agent plane as its ONLY
# capture source, stream from two cmd/capagent processes through the
# aggressive wire fault plan, SIGKILL one agent mid-stream, restart it
# under the same identity, and assert the restart resumes from its acked
# cursor with the exactly-once books still balanced. This is the CI gate
# for "the distributed capture plane survives wire chaos and an agent
# hard-kill", end to end over real TCP — not just the capwire unit tests.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18663}"
WIRE="${SMOKE_WIRE:-127.0.0.1:18664}"
BINDIR="$(mktemp -d)"
CKPT="$(mktemp -d)"
LOG_SRV="$(mktemp)"
LOG_A1="$(mktemp)"
LOG_A2="$(mktemp)"
LOG_A2R="$(mktemp)"
OUT="$(mktemp)"

cleanup() {
    for p in "${SRV_PID:-}" "${A1_PID:-}" "${A2_PID:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -f "$LOG_SRV" "$LOG_A1" "$LOG_A2" "$LOG_A2R" "$OUT"
    rm -rf "$BINDIR" "$CKPT"
}
trap cleanup EXIT INT TERM

go build -o "$BINDIR/marauder" ./cmd/marauder
go build -o "$BINDIR/capagent" ./cmd/capagent

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sS "$1" 2>/dev/null
    else
        wget -qO- --content-on-error "$1" 2>/dev/null || true
    fi
}

# metric NAME{labels} -> current value (0 when the series is absent).
metric() {
    fetch "http://$ADDR/metrics" | awk -v s="$1" '$1 == s {print $2; found=1} END {if (!found) print 0}'
}

# wait_metric_ge SERIES FLOOR WHAT: poll until the series reaches FLOOR.
wait_metric_ge() {
    tries=0
    while :; do
        v="$(metric "$1")"
        [ "${v%.*}" -ge "$2" ] 2>/dev/null && return 0
        tries=$((tries + 1))
        if [ "$tries" -ge 120 ]; then
            echo "agent-chaos-smoke: $3 never happened ($1 = $v, want >= $2)" >&2
            cat "$LOG_SRV" >&2
            exit 1
        fi
        sleep 0.5
    done
}

# --- Engine: agent plane only, no local capture, cursors checkpointed. ---
"$BINDIR/marauder" -addr "$ADDR" -agents-listen "$WIRE" -local-capture=false \
    -seed 1 -aps 120 -speedup 100 -ingest-stale-after 30s \
    -checkpoint-dir "$CKPT" -checkpoint-interval 1s >"$LOG_SRV" 2>&1 &
SRV_PID=$!

tries=0
until fetch "http://$ADDR/api/agents" | grep -q '"enabled":true'; do
    tries=$((tries + 1))
    if [ "$tries" -ge 60 ]; then
        echo "agent-chaos-smoke: /api/agents never enabled" >&2
        cat "$LOG_SRV" >&2
        exit 1
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "agent-chaos-smoke: marauder exited early" >&2
        cat "$LOG_SRV" >&2
        exit 1
    fi
    sleep 0.5
done

# --- Two agents, both through the aggressive wire fault plan. ---
agent() { # $1 id, $2 pos, $3 wire seed, $4 log
    "$BINDIR/capagent" -server "$WIRE" -agent "$1" -pos "$2" \
        -seed 1 -aps 120 -speedup 200 \
        -wire-chaos -wire-seed "$3" >"$4" 2>&1 &
}
agent lab-1 "-120,0" 11 "$LOG_A1"
A1_PID=$!
agent lab-2 "120,0" 12 "$LOG_A2"
A2_PID=$!

wait_metric_ge 'marauder_agent_batches_ingested_total{agent="lab-1"}' 2 "lab-1 ingest"
wait_metric_ge 'marauder_agent_batches_ingested_total{agent="lab-2"}' 2 "lab-2 ingest"
PRE_KILL="$(metric 'marauder_agent_batches_ingested_total{agent="lab-2"}')"

# --- Hard-kill lab-2 mid-stream: no flush, no goodbye. ---
kill -9 "$A2_PID"
wait "$A2_PID" 2>/dev/null || true
A2_PID=

# --- Restart under the same identity: must resume, not restart at 0. ---
agent lab-2 "120,0" 13 "$LOG_A2R"
A2_PID=$!

wait_metric_ge 'marauder_agent_resumes_total{agent="lab-2"}' 1 "lab-2 cursor resume"
wait_metric_ge 'marauder_agent_batches_ingested_total{agent="lab-2"}' "$((${PRE_KILL%.*} + 1))" \
    "lab-2 post-resume ingest"

# --- The books must balance for every agent, through all of the above. ---
fetch "http://$ADDR/api/agents" >"$OUT"
if grep -q '"accountingOk":false' "$OUT"; then
    echo "agent-chaos-smoke: exactly-once accounting violated:" >&2
    cat "$OUT" >&2
    exit 1
fi
grep -q '"id":"lab-1"' "$OUT" && grep -q '"id":"lab-2"' "$OUT" || {
    echo "agent-chaos-smoke: /api/agents lost an agent: $(cat "$OUT")" >&2
    exit 1
}

# Health answers with the agent plane attached (healthy or degraded —
# chaos may hold a connection torn at sample time — but never silent).
fetch "http://$ADDR/api/health" >"$OUT"
grep -q '"status"' "$OUT" || {
    echo "agent-chaos-smoke: /api/health served no status: $(cat "$OUT")" >&2
    exit 1
}

# The full per-agent metric family is exported.
fetch "http://$ADDR/metrics" >"$OUT"
for m in marauder_agent_frames_ingested_total marauder_agent_connects_total \
    marauder_agent_connected marauder_agent_batch_seconds_count; do
    grep -q "^$m" "$OUT" || {
        echo "agent-chaos-smoke: /metrics lacks $m" >&2
        exit 1
    }
done

# The cursor file rides the checkpoint generation to disk.
tries=0
while [ ! -f "$CKPT/agent-cursors.json" ]; do
    tries=$((tries + 1))
    if [ "$tries" -ge 30 ]; then
        echo "agent-chaos-smoke: no agent-cursors.json beside the checkpoint" >&2
        exit 1
    fi
    sleep 0.5
done

echo "agent-chaos-smoke: ok (wire chaos survived, kill resumed at cursor, accounting balanced)"
