#!/bin/sh
# metrics-smoke: boot cmd/marauder against the sim world, scrape /metrics
# on the -metrics-addr port, and assert the key Prometheus series are
# there — the engine Γ-cache counters, the snapshot latency histogram and
# the per-algorithm localization-error histogram. This is the CI gate for
# "the telemetry endpoint actually serves the pipeline's metrics", not
# just "the package unit-tests pass".
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18642}"
MADDR="${SMOKE_METRICS_ADDR:-127.0.0.1:19642}"
BIN="$(mktemp -d)/marauder"
OUT="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$OUT"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/marauder

"$BIN" -addr "$ADDR" -metrics-addr "$MADDR" -pprof -aps 150 -speedup 100 &
PID=$!

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://$MADDR/metrics"
    else
        wget -qO- "http://$MADDR/metrics"
    fi
}

# The error histogram appears once the first frame with ground truth is
# published (first serve tick, ~0.5 s in); poll up to 30 s.
tries=0
while :; do
    tries=$((tries + 1))
    if fetch >"$OUT" 2>/dev/null \
        && grep -q '^marauder_engine_cache_hits_total' "$OUT" \
        && grep -q '^marauder_engine_cache_misses_total' "$OUT" \
        && grep -q '^marauder_engine_snapshot_seconds_bucket' "$OUT" \
        && grep -q '^marauder_localization_error_meters_bucket{algo=' "$OUT"; then
        break
    fi
    if [ "$tries" -ge 60 ]; then
        echo "metrics-smoke: required series never appeared; last scrape:" >&2
        cat "$OUT" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "metrics-smoke: marauder exited early" >&2
        exit 1
    fi
    sleep 0.5
done

# Spot-check the other layers' series and the pprof mount while the
# process is still up.
for series in \
    marauder_engine_frames_ingested_total \
    marauder_engine_workers \
    marauder_obs_records_total \
    marauder_obs_window_query_seconds_bucket \
    marauder_sniffer_frames_captured_total \
    marauder_map_frames_published_total \
    marauder_http_requests_total; do
    grep -q "^$series" "$OUT" || { echo "metrics-smoke: missing $series" >&2; exit 1; }
done

if command -v curl >/dev/null 2>&1; then
    curl -fsS "http://$MADDR/debug/vars" >/dev/null
    curl -fsS -o /dev/null "http://$MADDR/debug/pprof/cmdline"
fi

echo "metrics-smoke: ok ($(grep -c '^marauder_' "$OUT") marauder series live)"
