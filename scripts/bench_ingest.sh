#!/bin/sh
# Compare the seed single-lock ingest path against the sharded store on
# the ingest benchmarks, at 1 and 4 CPUs. Both variants live in the same
# benchmark binary as sub-cases (seed vs sharded-*), so one run produces
# both sides; the sub-case names are then normalized so benchstat lines
# them up as old/new columns.
#
# Usage: sh scripts/bench_ingest.sh [count]
set -eu

count="${1:-5}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

go test -run '^$' -bench 'BenchmarkIngestParallel|BenchmarkSnapshotWhileIngest' \
	-cpu 1,4 -count "$count" -benchtime 0.5s . | tee "$out/raw.txt"

# Split: the seed sub-cases become the "old" file, the batched sharded
# sub-cases the "new" file, with the variant segment dropped from the
# names so benchstat pairs them.
grep -E '^Benchmark[A-Za-z]+/seed(-[0-9]+)?\b' "$out/raw.txt" |
	sed 's|/seed||' >"$out/seed.txt"
grep -E '^Benchmark[A-Za-z]+/sharded-batched(-[0-9]+)?\b' "$out/raw.txt" |
	sed 's|/sharded-batched||' >"$out/sharded.txt"

if [ ! -s "$out/seed.txt" ] || [ ! -s "$out/sharded.txt" ]; then
	echo "bench_ingest: no benchmark lines captured" >&2
	exit 1
fi

echo
echo "== seed (single lock, per frame) vs sharded+batched =="
if command -v benchstat >/dev/null 2>&1; then
	benchstat "$out/seed.txt" "$out/sharded.txt"
elif go run golang.org/x/perf/cmd/benchstat@latest "$out/seed.txt" "$out/sharded.txt" 2>/dev/null; then
	: # benchstat fetched and run by the go tool (CI path)
else
	echo "benchstat unavailable; raw numbers:"
	echo "-- seed --"
	cat "$out/seed.txt"
	echo "-- sharded+batched --"
	cat "$out/sharded.txt"
fi
