#!/bin/sh
# bench-compare: the perf-regression watchdog. Diffs the current PR's
# BENCH_<pr>.json against the previous PR's checked-in baseline with
# cmd/benchcompare and fails on gated regressions: latency p99 blowups
# beyond the (noise-clamped) ratio, throughput collapse, a lost
# churn-kernel speedup, or a missing self-profile section. The gate
# ratios are generous because the baseline was produced on different
# hardware; see cmd/benchcompare's doc comment for the exact semantics.
#
# Usage: sh scripts/bench_compare.sh [current] [previous]
# Env overrides: CUR, PREV (same positions).
set -eu

CUR="${1:-${CUR:-BENCH_9.json}}"
PREV="${2:-${PREV:-BENCH_8.json}}"

if [ ! -f "$CUR" ]; then
    echo "bench_compare: current summary $CUR not found (run scripts/soak_smoke.sh and scripts/bench_churn.sh first)" >&2
    exit 1
fi
if [ ! -f "$PREV" ]; then
    echo "bench_compare: previous summary $PREV not found" >&2
    exit 1
fi

go run ./cmd/benchcompare -prev "$PREV" -cur "$CUR"
