#!/bin/sh
# bench-compare: the perf-regression watchdog. Diffs the current PR's
# BENCH_<pr>.json against the previous PR's checked-in baseline with
# cmd/benchcompare and fails on gated regressions: latency p99 blowups
# beyond the (noise-clamped) ratio, throughput collapse, a lost
# churn-kernel speedup, a missing self-profile section, or a missing /
# unhealthy distributed-capture "agents" section (throughput, cursor
# resume, exactly-once accounting). The gate ratios are generous because
# the baseline was produced on different hardware; see cmd/benchcompare's
# doc comment for the exact semantics.
#
# Usage: sh scripts/bench_compare.sh [current] [previous]
# Env overrides: CUR, PREV (same positions); REQUIRE_AGENTS=0 drops the
# agents gate (for summaries predating the distributed capture plane).
set -eu

CUR="${1:-${CUR:-BENCH_10.json}}"
PREV="${2:-${PREV:-BENCH_9.json}}"
REQUIRE_AGENTS="${REQUIRE_AGENTS:-1}"

if [ ! -f "$CUR" ]; then
    echo "bench_compare: current summary $CUR not found (run scripts/soak_smoke.sh and scripts/bench_churn.sh first)" >&2
    exit 1
fi
if [ ! -f "$PREV" ]; then
    echo "bench_compare: previous summary $PREV not found" >&2
    exit 1
fi

AGENTS_FLAG=""
if [ "$REQUIRE_AGENTS" = 1 ]; then
    AGENTS_FLAG="-require-agents"
fi
# $AGENTS_FLAG is deliberately unquoted: empty means no extra argument.
go run ./cmd/benchcompare -prev "$PREV" -cur "$CUR" $AGENTS_FLAG
