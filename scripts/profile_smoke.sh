#!/bin/sh
# profile-smoke: the CI gate for the continuous profiler and the SLO
# plane. One-shot: run the marauder attack under a heavy algorithm with
# -prof-dir and assert every profile kind (cpu, heap, goroutine, mutex,
# block) was written and the in-process attributor decoded the CPU
# capture into a non-empty hot-function table (the "profile:" summary
# line). Serving: boot with the profiler, the default SLOs and per-fix
# stage timing, then assert /api/slo and /api/profile carry live content
# and the new metric families show on /metrics.
#
# Env overrides: SMOKE_ADDR (default 127.0.0.1:18655), APS (one-shot AP
# count, default 600), PROFILE_DIR (kept when set; default a temp dir).
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18655}"
APS="${APS:-600}"
TMP="$(mktemp -d)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

PROFILE_DIR="${PROFILE_DIR:-$TMP/prof}"

go build -o "$TMP/marauder" ./cmd/marauder

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://$ADDR$1"
    else
        wget -qO- "http://$ADDR$1"
    fi
}

# One-shot pass: aprad's per-fix linear programs give the 100 Hz sampler
# real work, so the attribution table cannot be legitimately empty.
"$TMP/marauder" -once -algo aprad -aps "$APS" \
    -prof-dir "$PROFILE_DIR" -prof-cpu 30s \
    -mutex-profile-fraction 5 -block-profile-rate 10000 \
    >"$TMP/once.out" 2>"$TMP/once.err" || {
    echo "profile-smoke: marauder -once failed" >&2
    cat "$TMP/once.err" >&2
    exit 1
}

for kind in cpu heap goroutine mutex block; do
    if ! ls "$PROFILE_DIR"/prof-"$kind"-*.pprof >/dev/null 2>&1; then
        echo "profile-smoke: no $kind artifact in $PROFILE_DIR" >&2
        ls -la "$PROFILE_DIR" >&2 || true
        exit 1
    fi
done

if ! grep -q '^profile: [1-9][0-9]* samples, hottest ' "$TMP/once.out"; then
    echo "profile-smoke: no decoded attribution in the -once output" >&2
    tail -5 "$TMP/once.out" >&2
    exit 1
fi

# Serving path: profiler cycling fast, default SLOs ticking every
# second, stage timing on every fix.
"$TMP/marauder" -addr "$ADDR" -aps 150 -speedup 200 \
    -prof-dir "$TMP/prof-serve" -prof-interval 5s -prof-cpu 2s \
    -slo-defaults -slo-tick 1s -stage-sample-every 1 \
    >"$TMP/serve.out" 2>&1 &
PID=$!

up=""
tries=0
while [ $tries -lt 60 ]; do
    tries=$((tries + 1))
    if fetch /api/health >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.5
done
if [ -z "$up" ]; then
    echo "profile-smoke: server did not come up on $ADDR" >&2
    tail -20 "$TMP/serve.out" >&2
    exit 1
fi

# Give one SLO tick and one profiler cycle time to land, then assert the
# endpoints carry live content, not just the enabled flag.
sleep 6
fetch /api/slo >"$TMP/slo.json"
grep -q '"enabled": *true' "$TMP/slo.json" || {
    echo "profile-smoke: /api/slo not enabled" >&2
    cat "$TMP/slo.json" >&2
    exit 1
}
grep -q '"fix-latency"' "$TMP/slo.json" || {
    echo "profile-smoke: /api/slo lacks the default fix-latency objective" >&2
    cat "$TMP/slo.json" >&2
    exit 1
}
fetch /api/profile >"$TMP/profile.json"
grep -q '"enabled": *true' "$TMP/profile.json" || {
    echo "profile-smoke: /api/profile not enabled" >&2
    cat "$TMP/profile.json" >&2
    exit 1
}
fetch /metrics >"$TMP/metrics.txt"
grep -q '^marauder_stage_seconds_count{stage="window_assembly"}' "$TMP/metrics.txt" || {
    echo "profile-smoke: stage histograms missing from /metrics" >&2
    exit 1
}
grep -q '^marauder_slo_budget_remaining' "$TMP/metrics.txt" || {
    echo "profile-smoke: SLO gauges missing from /metrics" >&2
    exit 1
}

kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
PID=""

echo "profile-smoke: ok (5 artifact kinds, decoded attribution, live /api/slo + /api/profile)"
