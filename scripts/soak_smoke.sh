#!/bin/sh
# soak-smoke: the CI gate for the sustained-load rig and the flight
# recorder. Runs two mini-soaks (chaos off, then chaos on) against the
# live in-process engine, lets cmd/soak merge both into one versioned
# BENCH_<pr>.json, then decodes every flight record with ftdcdump -check
# — non-empty, strictly monotonic timestamps — and asserts both runs
# actually ingested traffic. Whole script stays under ~30s.
#
# A third mini-soak streams through two loopback capwire agents under
# the aggressive wire fault plan; its fleet accounting (throughput,
# resumes, dedup, exactly-once bookkeeping) merges into the summary as
# the top-level "agents" section via -merge-extra.
#
# Env overrides: OUT (summary file, default BENCH_10.json), PR (default
# 10), SOAK_SECS (wall seconds per run, default 4), KEEP (when set, the
# flight records and self-profile artifacts land under this directory
# and survive the run — CI uploads them).
set -eu

OUT="${OUT:-BENCH_10.json}"
PR="${PR:-10}"
SOAK_SECS="${SOAK_SECS:-4}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM
WORK="${KEEP:-$TMP}"
mkdir -p "$WORK"

go build -o "$TMP/soak" ./cmd/soak
go build -o "$TMP/ftdcdump" ./cmd/ftdcdump

# Office traffic is diurnal with sessions starting 08:00-12:00, so a
# short smoke must start its simulated clock late in that window
# (-sim-start 11h) or it replays a silent campus.
run_soak() {
    "$TMP/soak" -duration "${SOAK_SECS}s" -devices 120 -aps 200 \
        -speedup 900 -sim-start 11h -tick 50ms -frame-every 250ms \
        -ftdc-interval 250ms -out "$OUT" -pr "$PR" "$@"
}

run_soak -ftdc-dir "$WORK/ftdc-off" -prof-dir "$WORK/prof-off" -run-name chaos_off
run_soak -ftdc-dir "$WORK/ftdc-on" -prof-dir "$WORK/prof-on" -run-name chaos_on -chaos

# Distributed capture: the same load through two loopback capwire agents
# with wire chaos on, recorded standalone and merged as the "agents"
# section (not a third run — benchcompare gates it separately).
"$TMP/soak" -duration "${SOAK_SECS}s" -devices 120 -aps 200 \
    -speedup 900 -sim-start 11h -tick 50ms -frame-every 250ms \
    -ftdc-dir "$WORK/ftdc-agents" -ftdc-interval 250ms -prof=false \
    -agents 2 -agents-wire-chaos -agents-out "$WORK/agents.json"
"$TMP/soak" -duration 0 -out "$OUT" -pr "$PR" -merge-extra "agents=$WORK/agents.json"

# Every flight record must decode cleanly: at least one sample, strictly
# monotonic timestamps across chunks.
found=0
for f in "$WORK"/ftdc-off/*.ftdc "$WORK"/ftdc-on/*.ftdc; do
    [ -e "$f" ] || continue
    found=$((found + 1))
    "$TMP/ftdcdump" -check "$f"
done
if [ "$found" -lt 2 ]; then
    echo "soak-smoke: expected 2 flight records, found $found" >&2
    exit 1
fi

# One summary carries both runs plus the agents section, and every run
# saw real traffic.
for key in '"chaos_off"' '"chaos_on"' '"ftdc"' '"profile"' '"stageShares"' '"agents"' '"accountingOk": true'; do
    grep -q "$key" "$OUT" || {
        echo "soak-smoke: $OUT missing $key" >&2
        cat "$OUT" >&2
        exit 1
    }
done
if grep -q '"framesIngested": 0,' "$OUT"; then
    echo "soak-smoke: a run ingested no frames" >&2
    cat "$OUT" >&2
    exit 1
fi
if grep -q '"resumes": 0,' "$OUT"; then
    echo "soak-smoke: the agent fleet never exercised cursor resume" >&2
    cat "$OUT" >&2
    exit 1
fi

echo "soak-smoke: ok (2 soaks + agent fleet, $found flight records decoded, wrote $OUT)"
