#!/bin/sh
# soak-smoke: the CI gate for the sustained-load rig and the flight
# recorder. Runs two mini-soaks (chaos off, then chaos on) against the
# live in-process engine, lets cmd/soak merge both into one versioned
# BENCH_<pr>.json, then decodes every flight record with ftdcdump -check
# — non-empty, strictly monotonic timestamps — and asserts both runs
# actually ingested traffic. Whole script stays under ~30s.
#
# Env overrides: OUT (summary file, default BENCH_9.json), PR (default
# 9), SOAK_SECS (wall seconds per run, default 4), KEEP (when set, the
# flight records and self-profile artifacts land under this directory
# and survive the run — CI uploads them).
set -eu

OUT="${OUT:-BENCH_9.json}"
PR="${PR:-9}"
SOAK_SECS="${SOAK_SECS:-4}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM
WORK="${KEEP:-$TMP}"
mkdir -p "$WORK"

go build -o "$TMP/soak" ./cmd/soak
go build -o "$TMP/ftdcdump" ./cmd/ftdcdump

# Office traffic is diurnal with sessions starting 08:00-12:00, so a
# short smoke must start its simulated clock late in that window
# (-sim-start 11h) or it replays a silent campus.
run_soak() {
    "$TMP/soak" -duration "${SOAK_SECS}s" -devices 120 -aps 200 \
        -speedup 900 -sim-start 11h -tick 50ms -frame-every 250ms \
        -ftdc-interval 250ms -out "$OUT" -pr "$PR" "$@"
}

run_soak -ftdc-dir "$WORK/ftdc-off" -prof-dir "$WORK/prof-off" -run-name chaos_off
run_soak -ftdc-dir "$WORK/ftdc-on" -prof-dir "$WORK/prof-on" -run-name chaos_on -chaos

# Every flight record must decode cleanly: at least one sample, strictly
# monotonic timestamps across chunks.
found=0
for f in "$WORK"/ftdc-off/*.ftdc "$WORK"/ftdc-on/*.ftdc; do
    [ -e "$f" ] || continue
    found=$((found + 1))
    "$TMP/ftdcdump" -check "$f"
done
if [ "$found" -lt 2 ]; then
    echo "soak-smoke: expected 2 flight records, found $found" >&2
    exit 1
fi

# One summary carries both runs, and both saw real traffic.
for key in '"chaos_off"' '"chaos_on"' '"ftdc"' '"profile"' '"stageShares"'; do
    grep -q "$key" "$OUT" || {
        echo "soak-smoke: $OUT missing $key" >&2
        cat "$OUT" >&2
        exit 1
    }
done
if grep -q '"framesIngested": 0,' "$OUT"; then
    echo "soak-smoke: a run ingested no frames" >&2
    cat "$OUT" >&2
    exit 1
fi

echo "soak-smoke: ok (2 soaks, $found flight records decoded, wrote $OUT)"
