#!/bin/sh
# Benchmark the incremental disc-intersection kernel against the full
# per-fix recompute on the sliding-window churn workload (Γ ±1 disc per
# step, k≈8, caching disabled): BenchmarkTrackChurn/kernel compares
# MLocTracked + the tracker-served intersected area with MLoc + a
# from-scratch RegionArea — the region payload of one traced tracked
# fix on each path. The run fails unless the incremental path wins by
# >= 5x (best-of-N per side, which is how benchstat summarizes too: the
# minimum is the least-noise estimate on a shared machine).
#
# The engine-level sub-benches ride along into the summary for context
# but carry no floor: they include window assembly, trace records and
# store scans on both paths, which dilute the kernel ratio.
#
# The distilled JSON lands under "churn" in the versioned BENCH_<pr>.json
# via cmd/soak -merge-extra — the same single-writer idiom as the soak
# runs and scripts/bench_store.sh.
#
# Usage: sh scripts/bench_churn.sh [count] [outfile] [pr]
set -eu

count="${1:-4}"
pr="${3:-10}"
outfile="${2:-BENCH_${pr}.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkTrackChurn' \
	-benchtime 1s -count "$count" . | tee "$tmp/raw.txt"

gover="$(go env GOVERSION)"

awk -v gover="$gover" -v outfile="$tmp/churn.json" '
/^cpu: / { sub(/^cpu: /, ""); cpu = $0; next }
/^Benchmark/ && / ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") {
			ns = $i + 0
			if (!(name in best) || ns < best[name]) best[name] = ns
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
		if ($(i + 1) == "allocs/op" && $i + 0 > 0 &&
		    name ~ /kernel\/path=incremental/) {
			print "bench_churn: incremental kernel allocates" > "/dev/stderr"
			exit 1
		}
	}
}
END {
	inc = best["BenchmarkTrackChurn/kernel/path=incremental"]
	full = best["BenchmarkTrackChurn/kernel/path=full"]
	if (inc == "" || full == "" || inc <= 0) {
		print "bench_churn: missing kernel benchmarks" > "/dev/stderr"
		exit 1
	}
	speedup = full / inc
	printf "{\n" > outfile
	printf "  \"generated_by\": \"scripts/bench_churn.sh\",\n" > outfile
	printf "  \"go\": \"%s\",\n", gover > outfile
	printf "  \"cpu\": \"%s\",\n", cpu > outfile
	printf "  \"kernel_speedup\": %.2f,\n", speedup > outfile
	printf "  \"benchmarks_ns_per_op\": {\n" > outfile
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    \"%s\": %.1f%s\n", name, best[name], (i < n ? "," : "") > outfile
	}
	printf "  }\n}\n" > outfile
	printf "\nincremental vs full kernel: %.2fx (floor 5x)\n", speedup
	if (speedup < 5) {
		print "bench_churn: kernel speedup below 5x floor" > "/dev/stderr"
		exit 1
	}
}' "$tmp/raw.txt"

go run ./cmd/soak -duration 0 -out "$outfile" -pr "$pr" -merge-extra "churn=$tmp/churn.json"
echo "wrote $outfile"
