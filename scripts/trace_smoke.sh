#!/bin/sh
# trace-smoke: boot cmd/marauder with -trace, pull a tracked device MAC
# off /api/state, and assert /api/explain serves its provenance record
# with the fields the tentpole promises — algorithm, Γ, k, the exact
# intersected area next to Theorem 2's expectation, the cache-hit flag
# and per-stage durations. Also spot-checks /api/trace and the API
# contract (405 + Allow on non-GET, Cache-Control: no-store on GET).
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18643}"
BIN="$(mktemp -d)/marauder"
OUT="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$OUT"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/marauder

"$BIN" -addr "$ADDR" -trace -aps 150 -speedup 100 &
PID=$!

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://$ADDR$1"
    else
        wget -qO- "http://$ADDR$1"
    fi
}

# Wait for the first published frame to carry a device, then read its MAC.
tries=0
MAC=""
while :; do
    tries=$((tries + 1))
    if fetch /api/state >"$OUT" 2>/dev/null; then
        MAC="$(grep -o '"mac":"[^"]*"' "$OUT" | head -1 | cut -d'"' -f4 || true)"
        [ -n "$MAC" ] && break
    fi
    if [ "$tries" -ge 60 ]; then
        echo "trace-smoke: no device ever appeared on /api/state" >&2
        cat "$OUT" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "trace-smoke: marauder exited early" >&2
        exit 1
    fi
    sleep 0.5
done

# The device is on the map, so its fix was traced (sample default 1).
# Poll briefly anyway: explain indexes on trace Finish, a hair after
# the frame publishes.
tries=0
while :; do
    tries=$((tries + 1))
    if fetch "/api/explain?device=$MAC" >"$OUT" 2>/dev/null; then
        break
    fi
    if [ "$tries" -ge 20 ]; then
        echo "trace-smoke: /api/explain never answered for $MAC" >&2
        exit 1
    fi
    sleep 0.5
done

for field in \
    '"traceId"' \
    '"algorithm"' \
    '"gamma"' \
    '"k"' \
    '"intersectedAreaM2"' \
    '"theorem2AreaM2"' \
    '"cacheHit"' \
    '"stagesMs"' \
    '"totalMs"'; do
    grep -q "$field" "$OUT" || {
        echo "trace-smoke: provenance missing $field:" >&2
        cat "$OUT" >&2
        exit 1
    }
done

# The ring dump must be enabled and carry at least one trace with spans.
fetch '/api/trace?n=5' >"$OUT"
grep -q '"enabled":true' "$OUT" || { echo "trace-smoke: /api/trace not enabled" >&2; exit 1; }
grep -q '"spans"' "$OUT" || { echo "trace-smoke: /api/trace carries no spans" >&2; exit 1; }

# API contract: non-GET is 405 with Allow, GET is no-store.
if command -v curl >/dev/null 2>&1; then
    HDRS="$(curl -s -o /dev/null -D - -X POST "http://$ADDR/api/trace")"
    echo "$HDRS" | grep -q '405' || { echo "trace-smoke: POST /api/trace not 405" >&2; exit 1; }
    echo "$HDRS" | grep -qi '^allow: *get' || { echo "trace-smoke: 405 without Allow: GET" >&2; exit 1; }
    curl -fsS -D - -o /dev/null "http://$ADDR/api/state" \
        | grep -qi '^cache-control: *no-store' \
        || { echo "trace-smoke: GET /api/state without Cache-Control: no-store" >&2; exit 1; }
fi

echo "trace-smoke: ok (device $MAC explained end-to-end)"
