package repro

// End-to-end integration test: the entire attack pipeline from simulated
// radio traffic to localized devices on the map, exercising every module
// boundary the way cmd/marauder does.

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/apdb"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/mapserver"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/wardrive"
)

func buildCampus(t *testing.T) (*sim.World, *sim.Device, *sim.RouteWalk) {
	t.Helper()
	w := sim.NewWorld(99)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        220,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		t.Fatal(err)
	}
	w.APs = aps
	route := sim.NewRouteWalk([]geom.Point{
		geom.Pt(-300, -100), geom.Pt(300, -100), geom.Pt(300, 150), geom.Pt(-250, 150),
	}, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)
	return w, victim, route
}

func TestEndToEndAttackPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	w, victim, route := buildCampus(t)

	// 1. Simulate the victim's probing traffic and capture it through the
	// LNA receiver chain, persisting to radiotap pcap and reading it back
	// (as a real deployment would).
	events := sim.WalkTrace(w, victim, route.TotalDuration(), 30)
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	caps := sn.CaptureAll(events)
	if len(caps) == 0 {
		t.Fatal("nothing captured")
	}
	var pcapBuf bytes.Buffer
	epoch := time.Date(2008, 10, 24, 0, 0, 0, 0, time.UTC)
	if err := sn.WritePcapRadiotap(&pcapBuf, epoch, caps); err != nil {
		t.Fatal(err)
	}
	replayed, err := sniffer.ReadPcap(&pcapBuf, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(caps) {
		t.Fatalf("pcap replay lost frames: %d vs %d", len(replayed), len(caps))
	}

	// 2. Build the observation store from the replayed capture, through
	// the engine's ingest path. No knowledge yet — the attack often
	// captures first and obtains the AP database later.
	eng, err := engine.New(engine.Config{WindowSec: 45})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range replayed {
		_, fromAP := w.APByMAC(c.Frame.Addr2)
		eng.Ingest(c.TimeSec, c.Frame, fromAP)
	}
	store := eng.Store()
	if len(store.APSet(victim.MAC)) == 0 {
		t.Fatal("victim has no observed AP set")
	}

	// 3. External knowledge via the apdb CSV round trip (WiGLE role).
	proj := geo.NewProjection(geo.LatLon{Lat: 42.6555, Lon: -71.3254})
	var csvBuf bytes.Buffer
	if err := apdb.FromWorld(w, true).ExportCSV(&csvBuf, proj); err != nil {
		t.Fatal(err)
	}
	db, err := apdb.ImportCSV(&csvBuf, proj)
	if err != nil {
		t.Fatal(err)
	}
	know := core.KnowledgeFromStore(db)

	// 4. Hand the late-arriving knowledge to the engine (invalidating its
	// Γ cache) and track with M-Loc; errors must be campus-attack grade.
	eng.SetKnowledge(know)
	trail, err := eng.Track(victim.MAC, 0, route.TotalDuration(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) < 5 {
		t.Fatalf("only %d fixes", len(trail))
	}
	meanErr := core.TrackError(trail, route.PosAt)
	if meanErr > 40 {
		t.Errorf("mean tracking error = %.1f m (CSV projection round trip included)", meanErr)
	}

	// 5. AP-Rad from the same observations (radii withheld).
	stripped := know.All()
	for i := range stripped {
		stripped[i].MaxRange = 0
	}
	noRadii := core.NewKnowledge(stripped)
	est, _, err := core.EstimateRadii(noRadii, store.DeviceAPSets(),
		core.APRadConfig{MaxRadius: 160, MaxNeighborConstraints: 12})
	if err != nil {
		t.Fatal(err)
	}
	gamma := store.APSet(victim.MAC)
	if fix, _, err := core.MLocInflated(est, gamma, 4); err == nil {
		if math.IsNaN(fix.Pos.X) {
			t.Error("AP-Rad fix is NaN")
		}
	}

	// 6. AP-Loc from a simulated wardrive over the same campus.
	tuples := wardrive.Collector{World: w}.CollectAlong(route, 20)
	if len(tuples) < 10 {
		t.Fatalf("only %d training tuples", len(tuples))
	}
	trained, err := core.EstimateAPLocations(tuples, core.APLocConfig{TrainingRadius: 130})
	if err != nil {
		t.Fatal(err)
	}
	if trained.Len() < 50 {
		t.Errorf("training located only %d APs", trained.Len())
	}

	// 7. Publish one engine snapshot frame to the map display. The frame
	// spans every locatable device; the victim must be in it.
	frame := eng.Snapshot(trail[0].TimeSec)
	if _, ok := frame[victim.MAC]; !ok {
		t.Error("victim missing from engine snapshot frame")
	}
	state := mapserver.NewState()
	state.APsFromKnowledge(know)
	state.PublishFrame(frame, func(m dot11.MAC) (geom.Point, bool) {
		if m == victim.MAC {
			return route.PosAt(trail[0].TimeSec), true
		}
		return geom.Point{}, false
	})
	// The handler is exercised in mapserver's own tests; here we assert
	// the state accepted the pipeline's outputs without loss.
	if got := know.Len(); got != db.Len() {
		t.Errorf("knowledge size %d != db size %d", got, db.Len())
	}
	if st := eng.Stats(); st.Fixes == 0 {
		t.Error("engine recorded no localization work")
	}
}
