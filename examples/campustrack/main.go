// Campustrack: the full attack pipeline on a simulated campus — deploy
// APs, let a victim walk and probe, capture its traffic through the
// high-gain receiver chain, and track it continuously with M-Loc. Prints
// the victim's estimated trail with per-fix error and optionally serves
// the live map.
//
//	go run ./examples/campustrack [-serve :8642]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/mapserver"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

func main() {
	serveAddr := flag.String("serve", "", "serve the live map on this address (e.g. :8642)")
	flag.Parse()
	if err := run(*serveAddr); err != nil {
		slog.Error("campustrack failed", "component", "campustrack", "err", err)
		os.Exit(1)
	}
}

func run(serveAddr string) error {
	// 1. A campus with 250 APs.
	w := sim.NewWorld(42)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        250,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return err
	}
	w.APs = aps

	// 2. The victim walks across campus; its phone scans every 30 s.
	route := sim.NewRouteWalk([]geom.Point{
		geom.Pt(-300, -250), geom.Pt(250, -250), geom.Pt(250, 100),
		geom.Pt(-200, 100), geom.Pt(-200, 300), geom.Pt(300, 300),
	}, 1.4)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 7),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)
	events := sim.WalkTrace(w, victim, route.TotalDuration(), 30)

	// 3. The Marauder's map sniffer on the CS building roof: 15 dBi
	// antenna + LNA + 3 cards on channels 1/6/11.
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	fmt.Printf("sniffer coverage radius: %.0f m\n", sn.CoverageRadius(rf.TypicalMobile))

	// 4. The localization engine owns the rest of the pipeline: ingest the
	// captures, keep per-device Γ sets, localize with M-Loc on demand.
	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)
	eng, err := engine.New(engine.Config{Know: know, WindowSec: 60})
	if err != nil {
		return err
	}
	caps := sn.CaptureAll(events)
	eng.IngestCaptures(caps)
	store := eng.Store()
	fmt.Printf("captured %d frames; %d devices seen, %d probing\n",
		len(caps), len(store.Devices()), len(store.ProbingDevices()))

	trail, err := eng.Track(victim.MAC, 0, route.TotalDuration(), 60)
	if err != nil {
		return err
	}
	if len(trail) == 0 {
		return fmt.Errorf("no fixes produced")
	}

	var sum float64
	for _, p := range trail {
		truth := route.PosAt(p.TimeSec)
		e := core.Error(p.Est, truth)
		sum += e
		fmt.Printf("t=%5.0fs  k=%2d  est=%-22v truth=%-22v err=%5.1f m\n",
			p.TimeSec, p.Est.K, p.Est.Pos, truth, e)
	}
	stats := eng.Stats()
	fmt.Printf("tracked %d fixes, average error %.1f m (Γ-cache: %d/%d hits)\n",
		len(trail), sum/float64(len(trail)), stats.CacheHits, stats.Fixes)

	if serveAddr == "" {
		return nil
	}
	// 5. Optional: the Marauder's map display — one engine snapshot frame
	// at the end of the walk.
	state := mapserver.NewState()
	state.APsFromKnowledge(know)
	last := trail[len(trail)-1].TimeSec
	state.PublishFrame(eng.Snapshot(last), func(m dot11.MAC) (geom.Point, bool) {
		if m == victim.MAC {
			return route.PosAt(last), true
		}
		return geom.Point{}, false
	})
	fmt.Printf("map at http://localhost%s — ctrl-C to stop\n", serveAddr)
	return http.ListenAndServe(serveAddr, mapserver.Handler(state))
}
