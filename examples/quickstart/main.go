// Quickstart: locate one mobile device from a hand-built AP knowledge
// base — the smallest possible use of the localization engine. Observed
// probe traffic goes in, a position estimate comes out.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/telemetry/trace"
)

func main() {
	// fatal is the example's one-line error exit, on the shared slog
	// conventions (component key, structured err).
	fatal := func(err error) {
		slog.Error("quickstart failed", "component", "quickstart", "err", err)
		os.Exit(1)
	}
	// The attacker knows four APs (from WiGLE or a wardrive): position in
	// a local metre grid and maximum transmission distance.
	mustMAC := func(s string) dot11.MAC {
		m, err := dot11.ParseMAC(s)
		if err != nil {
			fatal(err)
		}
		return m
	}
	know := core.NewKnowledge([]core.APInfo{
		{BSSID: mustMAC("00:1b:2f:00:00:01"), Pos: geom.Pt(0, 0), MaxRange: 120},
		{BSSID: mustMAC("00:1b:2f:00:00:02"), Pos: geom.Pt(150, 40), MaxRange: 110},
		{BSSID: mustMAC("00:1b:2f:00:00:03"), Pos: geom.Pt(60, 160), MaxRange: 130},
		{BSSID: mustMAC("00:1b:2f:00:00:04"), Pos: geom.Pt(-40, 90), MaxRange: 100},
	})

	// The engine runs the whole pipeline: ingest captured frames, maintain
	// per-device AP sets Γ, localize on demand (M-Loc by default). The
	// tracer records a provenance record per fix so every estimate can be
	// explained after the fact.
	tracer, err := trace.New(trace.Config{})
	if err != nil {
		fatal(err)
	}
	eng, err := engine.New(engine.Config{Know: know, WindowSec: 60, Tracer: tracer})
	if err != nil {
		fatal(err)
	}

	// The sniffer observed the victim exchanging probe traffic with three
	// of the known APs (its communicable set Γ).
	victim := mustMAC("aa:bb:cc:00:00:07")
	for i, ap := range []string{
		"00:1b:2f:00:00:01", "00:1b:2f:00:00:02", "00:1b:2f:00:00:03",
	} {
		eng.Ingest(float64(10+i), dot11.NewProbeResponse(mustMAC(ap), victim, "", 1, uint16(i+1)), true)
	}

	est, err := eng.Fix(victim, 11)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("M-Loc estimate: %v from k=%d APs (%d region vertices)\n",
		est.Pos, est.K, len(est.Vertices))
	gamma := eng.Store().APSet(victim)
	fmt.Printf("intersected area: %.1f m²\n", core.RegionArea(know, gamma))

	// The provenance record explains the fix: which Γ produced it, the
	// observed intersected area next to Theorem 2's prediction, and where
	// the time went per pipeline stage.
	if p, ok := tracer.Explain(victim.String()); ok {
		fmt.Printf("provenance: trace=%s algo=%s k=%d area=%.1f m² (theorem 2 expects %.1f m²) cacheHit=%v\n",
			p.TraceID, p.Algorithm, p.K, p.IntersectedAreaM2, p.Theorem2AreaM2, p.CacheHit)
	}

	// Compare with the Centroid baseline the paper evaluates against —
	// same pipeline, different Localizer.
	centEng, err := engine.New(engine.Config{
		Know:      know,
		Store:     eng.Store(),
		Localizer: core.CentroidLocalizer{},
		WindowSec: 60,
	})
	if err != nil {
		fatal(err)
	}
	cent, err := centEng.Fix(victim, 11)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Centroid baseline: %v\n", cent.Pos)
}
