// Quickstart: locate one mobile device with M-Loc from a hand-built AP
// knowledge base — the smallest possible use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
)

func main() {
	// The attacker knows four APs (from WiGLE or a wardrive): position in
	// a local metre grid and maximum transmission distance.
	mustMAC := func(s string) dot11.MAC {
		m, err := dot11.ParseMAC(s)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	know := core.NewKnowledge([]core.APInfo{
		{BSSID: mustMAC("00:1b:2f:00:00:01"), Pos: geom.Pt(0, 0), MaxRange: 120},
		{BSSID: mustMAC("00:1b:2f:00:00:02"), Pos: geom.Pt(150, 40), MaxRange: 110},
		{BSSID: mustMAC("00:1b:2f:00:00:03"), Pos: geom.Pt(60, 160), MaxRange: 130},
		{BSSID: mustMAC("00:1b:2f:00:00:04"), Pos: geom.Pt(-40, 90), MaxRange: 100},
	})

	// The sniffer observed the victim exchanging probe traffic with three
	// of them (its communicable set Γ).
	gamma := []dot11.MAC{
		mustMAC("00:1b:2f:00:00:01"),
		mustMAC("00:1b:2f:00:00:02"),
		mustMAC("00:1b:2f:00:00:03"),
	}

	est, err := core.MLoc(know, gamma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M-Loc estimate: %v from k=%d APs (%d region vertices)\n",
		est.Pos, est.K, len(est.Vertices))
	fmt.Printf("intersected area: %.1f m²\n", core.RegionArea(know, gamma))

	// Compare with the Centroid baseline the paper evaluates against.
	cent, err := core.CentroidBaseline(know, gamma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Centroid baseline: %v\n", cent.Pos)
}
