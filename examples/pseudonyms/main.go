// Pseudonyms: tracking a victim that randomizes its MAC address. The
// device rotates identities every two minutes, but keeps probing for its
// remembered networks; the attack links the pseudonyms through those
// probe-SSID fingerprints (the implicit identifiers of Pang et al., which
// the paper cites as its answer to pseudonym schemes) and stitches the
// track back together.
//
//	go run ./examples/pseudonyms
package main

import (
	"fmt"
	"log/slog"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/privacy"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

func main() {
	if err := run(); err != nil {
		slog.Error("pseudonyms failed", "component", "pseudonyms", "err", err)
		os.Exit(1)
	}
}

func run() error {
	w := sim.NewWorld(31)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        220,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return err
	}
	w.APs = aps

	route := sim.NewRouteWalk([]geom.Point{
		geom.Pt(-300, -200), geom.Pt(300, -200), geom.Pt(300, 200), geom.Pt(-300, 200),
	}, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)

	// The victim's scans carry its preferred-network list.
	preferred := []string{"home-net", "campus-wifi", "coffee-place"}
	events := sim.WalkTrace(w, victim, route.TotalDuration(), 30)
	for i := range events {
		f := events[i].Frame
		if f.Subtype == dot11.SubtypeProbeRequest && f.Addr2 == victim.MAC {
			clone := *f
			clone.IEs = append([]dot11.IE(nil), f.IEs...)
			for j, ie := range clone.IEs {
				if ie.ID == dot11.EIDSSID {
					clone.IEs[j] = dot11.IE{
						ID:   dot11.EIDSSID,
						Data: []byte(preferred[int(f.Seq)%len(preferred)]),
					}
				}
			}
			events[i].Frame = &clone
		}
	}

	// The defence: rotate the MAC every 120 s.
	defended := (privacy.MACRotation{PeriodSec: 120}).Apply(victim.MAC, events, w.RNG())

	// The engine ingests the defended traffic and localizes each identity.
	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)
	eng, err := engine.New(engine.Config{Know: know, WindowSec: 45})
	if err != nil {
		return err
	}
	sn := sniffer.New(sniffer.Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	eng.IngestCaptures(sn.CaptureAll(defended))
	store := eng.Store()

	identities := store.Devices()
	fmt.Printf("the sniffer sees %d distinct identities\n", len(identities))

	// Re-identify: link pseudonyms whose probed-SSID sets overlap.
	links := store.LinkPseudonyms(0.6)
	fmt.Printf("fingerprint linking recovers %d pseudonym pairs\n", len(links))
	for _, l := range links[:min(3, len(links))] {
		fmt.Printf("  %v <-> %v (similarity %.2f)\n", l.A, l.B, l.Similarity)
	}

	// Track every linked identity and stitch the combined trail. The
	// pseudonyms share windows, so the engine's Γ-cache pays off here.
	var trail []core.TrackPoint
	for _, id := range identities {
		points, err := eng.Track(id, 0, route.TotalDuration(), 30)
		if err != nil {
			return err
		}
		trail = append(trail, points...)
	}
	sort.Slice(trail, func(i, j int) bool { return trail[i].TimeSec < trail[j].TimeSec })
	if len(trail) == 0 {
		return fmt.Errorf("no fixes")
	}
	fmt.Printf("stitched trail across all pseudonyms: %d fixes, mean error %.1f m\n",
		len(trail), core.TrackError(trail, route.PosAt))
	fmt.Println("MAC rotation alone did not stop the Marauder's map.")
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
