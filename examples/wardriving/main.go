// Wardriving: the no-external-knowledge attack (AP-Loc). The adversary
// first wardrives the area collecting training tuples, estimates AP
// locations and radii from them, then locates victim devices — never
// having seen a WiGLE dump.
//
//	go run ./examples/wardriving
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/wardrive"
)

func main() {
	if err := run(); err != nil {
		slog.Error("wardriving failed", "component", "wardriving", "err", err)
		os.Exit(1)
	}
}

func run() error {
	// The monitored neighbourhood.
	w := sim.NewWorld(7)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        180,
		Min:      geom.Pt(-300, -300),
		Max:      geom.Pt(300, 300),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return err
	}
	w.APs = aps

	// Training phase: drive the street grid with GPS + NetStumbler.
	var waypoints []geom.Point
	row := 0
	for y := -250.0; y <= 250; y += 100 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-250, y), geom.Pt(250, y))
		} else {
			waypoints = append(waypoints, geom.Pt(250, y), geom.Pt(-250, y))
		}
		row++
	}
	for x := -250.0; x <= 250; x += 100 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(x, 250), geom.Pt(x, -250))
		} else {
			waypoints = append(waypoints, geom.Pt(x, -250), geom.Pt(x, 250))
		}
		row++
	}
	drive := sim.NewRouteWalk(waypoints, 8)
	collector := wardrive.Collector{World: w, GPSNoiseStdM: 3, RNG: w.RNG()}
	tuples := collector.CollectAlong(drive, 8)
	fmt.Printf("training phase: %d tuples from a %.0f s drive\n",
		len(tuples), drive.TotalDuration())

	// AP-Loc stage 1: estimate AP locations from the tuples.
	know, err := core.EstimateAPLocations(tuples, core.APLocConfig{TrainingRadius: 130})
	if err != nil {
		return err
	}
	var apErr float64
	n := 0
	for _, ap := range w.APs {
		if in, ok := know.Get(ap.MAC); ok {
			apErr += in.Pos.Dist(ap.Pos)
			n++
		}
	}
	fmt.Printf("estimated %d/%d AP locations, average error %.1f m\n",
		n, len(aps), apErr/float64(n))

	// Victims scattered around the area; their probe traffic yields the
	// observed AP sets.
	sets := make(map[dot11.MAC][]dot11.MAC)
	truths := make(map[dot11.MAC]geom.Point)
	for i, pos := range []geom.Point{
		geom.Pt(-120, 80), geom.Pt(50, -150), geom.Pt(200, 120),
		geom.Pt(-220, -60), geom.Pt(0, 0),
	} {
		mac := sim.NewMAC(0xDD, i)
		var gamma []dot11.MAC
		for _, ap := range w.CommunicableAPs(pos) {
			gamma = append(gamma, ap.MAC)
		}
		sets[mac] = gamma
		truths[mac] = pos
	}

	// AP-Loc stages 2+3: estimate radii (AP-Rad) and locate with M-Loc.
	cfg := core.APLocConfig{
		TrainingRadius: 130,
		Rad:            core.APRadConfig{MaxRadius: 160, MaxNeighborConstraints: 12},
	}
	for mac, truth := range truths {
		est, err := core.APLoc(tuples, sets, mac, cfg)
		if err != nil {
			fmt.Printf("victim %v: %v\n", mac, err)
			continue
		}
		fmt.Printf("victim %v: estimated %v true %v error %.1f m (k=%d)\n",
			mac, est.Pos, truth, core.Error(est, truth), est.K)
	}

	// For reference: the receiver chain that would collect this traffic.
	fmt.Printf("attack hardware: %s chain, %.0f m urban coverage radius\n",
		rf.ChainLNA().Name,
		rf.CoverageRadiusModel(rf.TypicalMobile, rf.ChainLNA(),
			rf.LogDistance{Exponent: 2.8, RefDistM: 1}, 1e6))
	return nil
}
