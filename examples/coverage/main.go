// Coverage: receiver-chain shopping with the Theorem 1 link budget.
// Compare the four chains the paper measures (Fig 12), show the Friis
// noise-figure cascade, and explore how antenna gain, LNA noise figure and
// splitter fan-out move the coverage radius.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/internal/rf"
)

func main() {
	if err := run(); err != nil {
		slog.Error("coverage failed", "component", "coverage", "err", err)
		os.Exit(1)
	}
}

func run() error {
	urban := rf.LogDistance{Exponent: 2.8, RefDistM: 1}

	fmt.Println("receiver chains (paper Fig 12):")
	fmt.Printf("%-10s %8s %10s %14s %12s\n",
		"chain", "NF(dB)", "gain(dB)", "sens(dBm)", "urban(m)")
	for _, chain := range rf.Fig12Chains() {
		fmt.Printf("%-10s %8.2f %10.1f %14.1f %12.0f\n",
			chain.Name,
			chain.NoiseFigureDB(),
			chain.GainDB(),
			chain.SensitivityDBm(),
			rf.CoverageRadiusModel(rf.TypicalMobile, chain, urban, 1e6))
	}

	// The paper's key observation: the LNA's 45 dB gain makes the chain's
	// noise figure collapse to the LNA's own 1.5 dB (Friis cascade), and a
	// 4-way splitter still leaves ~39 dB of amplification per card.
	lna := rf.ChainLNA()
	fmt.Printf("\nLNA chain noise figure: %.2f dB (card alone: %.1f dB)\n",
		lna.NoiseFigureDB(), rf.UbiquitiSRC.NoiseFigureDB)
	loss, err := rf.SplitterLossDB(4)
	if err != nil {
		return err
	}
	fmt.Printf("4-way splitter loss: %.2f dB; per-thread amplification: %.1f dB\n",
		loss, rf.RFLambdaLNA.GainDB-loss)

	// What-if sweeps over the Theorem 1 budget.
	fmt.Println("\nantenna gain sweep (free-space Theorem 1 radius):")
	for _, gain := range []float64{2, 4, 9, 15, 24} {
		chain := rf.Chain{
			AntennaGainDBi: gain,
			Blocks:         []rf.Component{rf.RFLambdaLNA},
			Card:           rf.UbiquitiSRC,
		}
		fmt.Printf("  %4.0f dBi -> %8.0f m\n", gain, rf.CoverageRadius(rf.TypicalMobile, chain))
	}

	fmt.Println("\nsplitter fan-out sweep (urban radius, shared antenna+LNA):")
	for _, ways := range []int{1, 2, 4, 8} {
		loss, err := rf.SplitterLossDB(ways)
		if err != nil {
			return err
		}
		chain := rf.Chain{
			AntennaGainDBi: 15,
			Blocks: []rf.Component{
				rf.RFLambdaLNA,
				{Name: "splitter", GainDB: -loss, NoiseFigureDB: loss},
			},
			Card: rf.UbiquitiSRC,
		}
		fmt.Printf("  %d-way -> %6.0f m (covers %d channels with 802.11bg cards)\n",
			ways, rf.CoverageRadiusModel(rf.TypicalMobile, chain, urban, 1e6), ways)
	}
	return nil
}
