// Command ftdcdump decodes the flight-recorder files the pipeline writes
// (internal/telemetry/ftdc): chunked, delta-encoded, CRC-checksummed
// binary captures of every telemetry metric plus Go runtime stats, taken
// on a fixed interval. It is the post-mortem half of the recorder: a soak
// or chaos run leaves a .ftdc file behind, and ftdcdump turns it back
// into numbers long after the process and its /metrics endpoint are gone.
//
// Usage:
//
//	ftdcdump [-format summary|json|csv] [-match REGEX] [-check]
//	         [-since TIME] [-until TIME] file.ftdc...
//
// Formats:
//
//	summary  per-column statistics: samples, min, max, p50, p99, first,
//	         last, and — for monotonic columns like counters — the rate
//	         per second over the recorded span (the default)
//	json     one JSON object per sample on stdout, keyed by column name
//	csv      one CSV table over the union of all chunk schemas; cells of
//	         columns absent from a sample's chunk are empty
//
// -match keeps only columns whose name matches the regular expression
// (the timestamp column is always kept). -since and -until cut the
// recording down to a time range — samples at or after -since and
// strictly before -until survive; either bound may be an RFC3339 stamp
// (2026-08-08T12:00:00Z, fractional seconds accepted) or unix seconds
// (1786500000, fractions accepted) — the shape a soak log or an
// /api/health report hands you. -check additionally asserts the
// recording is sane — decodable, at least one sample, strictly monotonic
// timestamps — and exits non-zero otherwise; the soak smoke test gates on
// it. A crash-truncated final chunk is reported on stderr but is not an
// error: every sealed chunk before it still decodes.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	"repro/internal/telemetry/ftdc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ftdcdump: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftdcdump", flag.ContinueOnError)
	format := fs.String("format", "summary", "output format: summary, json or csv")
	match := fs.String("match", "", "keep only columns matching this regexp (timestamp always kept)")
	check := fs.Bool("check", false, "assert the recording is sane: non-empty, strictly monotonic timestamps")
	sinceFlag := fs.String("since", "", "drop samples before this time (RFC3339 or unix seconds)")
	untilFlag := fs.String("until", "", "drop samples at or after this time (RFC3339 or unix seconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("no input files (usage: ftdcdump [-format summary|json|csv] [-match REGEX] [-check] [-since TIME] [-until TIME] file.ftdc...)")
	}
	var matcher *regexp.Regexp
	if *match != "" {
		var err error
		if matcher, err = regexp.Compile(*match); err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	since, err := parseTimeFlag(*sinceFlag, 0)
	if err != nil {
		return fmt.Errorf("bad -since: %w", err)
	}
	until, err := parseTimeFlag(*untilFlag, math.MaxUint64)
	if err != nil {
		return fmt.Errorf("bad -until: %w", err)
	}
	if since >= until {
		return fmt.Errorf("-since %s is not before -until %s", *sinceFlag, *untilFlag)
	}

	for _, path := range fs.Args() {
		chunks, err := ftdc.ReadFile(path)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) && len(chunks) > 0 {
				// The expected shape of a crash: a torn final chunk after
				// sealed ones. The sealed history is the artifact.
				fmt.Fprintf(os.Stderr, "ftdcdump: %s: truncated final chunk dropped (%d sealed chunks kept)\n", path, len(chunks))
			} else {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		chunks = filterColumns(chunks, matcher)
		chunks = filterTime(chunks, since, until)
		if *check {
			if err := checkSane(chunks); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(out, "%s: ok (%d chunks, %d samples)\n", path, len(chunks), totalSamples(chunks))
			continue
		}
		switch *format {
		case "summary":
			if len(fs.Args()) > 1 {
				fmt.Fprintf(out, "# %s\n", path)
			}
			writeSummary(out, chunks)
		case "json":
			if err := writeJSON(out, chunks); err != nil {
				return err
			}
		case "csv":
			if err := writeCSV(out, chunks); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q: want summary, json or csv", *format)
		}
	}
	return nil
}

// filterColumns drops columns not matching the regexp from every chunk.
// The timestamp column always survives so time-based output still works.
func filterColumns(chunks []*ftdc.Chunk, matcher *regexp.Regexp) []*ftdc.Chunk {
	if matcher == nil {
		return chunks
	}
	out := make([]*ftdc.Chunk, 0, len(chunks))
	for _, c := range chunks {
		keep := make([]int, 0, len(c.Columns))
		for j, col := range c.Columns {
			if col.Name == ftdc.TimeColumn || matcher.MatchString(col.Name) {
				keep = append(keep, j)
			}
		}
		fc := &ftdc.Chunk{Columns: make([]ftdc.Column, len(keep))}
		for i, j := range keep {
			fc.Columns[i] = c.Columns[j]
		}
		for _, row := range c.Samples {
			frow := make([]uint64, len(keep))
			for i, j := range keep {
				frow[i] = row[j]
			}
			fc.Samples = append(fc.Samples, frow)
		}
		out = append(out, fc)
	}
	return out
}

// parseTimeFlag resolves a -since/-until value to unix nanoseconds: ""
// falls back to def, an RFC3339 stamp or a unix-seconds number (both
// with optional fractional seconds) parses.
func parseTimeFlag(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		if t.Unix() < 0 {
			return 0, fmt.Errorf("%q is before the unix epoch", s)
		}
		return uint64(t.UnixNano()), nil
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		if sec < 0 {
			return 0, fmt.Errorf("%q is before the unix epoch", s)
		}
		return uint64(sec * 1e9), nil
	}
	return 0, fmt.Errorf("%q is neither RFC3339 nor unix seconds", s)
}

// filterTime keeps only samples whose timestamp lands in [since, until),
// in unix nanos. Chunks without a timestamp column pass through intact
// (-check will flag them anyway), and chunks left empty are dropped.
func filterTime(chunks []*ftdc.Chunk, since, until uint64) []*ftdc.Chunk {
	if since == 0 && until == math.MaxUint64 {
		return chunks
	}
	out := make([]*ftdc.Chunk, 0, len(chunks))
	for _, c := range chunks {
		tj := -1
		for j, col := range c.Columns {
			if col.Name == ftdc.TimeColumn {
				tj = j
				break
			}
		}
		if tj < 0 {
			out = append(out, c)
			continue
		}
		fc := &ftdc.Chunk{Columns: c.Columns}
		for _, row := range c.Samples {
			if t := row[tj]; t >= since && t < until {
				fc.Samples = append(fc.Samples, row)
			}
		}
		if len(fc.Samples) > 0 {
			out = append(out, fc)
		}
	}
	return out
}

func totalSamples(chunks []*ftdc.Chunk) int {
	n := 0
	for _, c := range chunks {
		n += len(c.Samples)
	}
	return n
}

// checkSane is the soak smoke test's gate: the recording must contain at
// least one sample, every chunk must carry the timestamp column, and the
// timestamps must be strictly increasing across the whole file.
func checkSane(chunks []*ftdc.Chunk) error {
	if totalSamples(chunks) == 0 {
		return errors.New("no samples recorded")
	}
	prev := uint64(0)
	seen := 0
	for ci, c := range chunks {
		tj := -1
		for j, col := range c.Columns {
			if col.Name == ftdc.TimeColumn {
				tj = j
				break
			}
		}
		if tj < 0 {
			return fmt.Errorf("chunk %d has no %s column", ci, ftdc.TimeColumn)
		}
		for si, row := range c.Samples {
			t := row[tj]
			if seen > 0 && t <= prev {
				return fmt.Errorf("timestamps not monotonic: sample %d of chunk %d has %d after %d", si, ci, t, prev)
			}
			prev = t
			seen++
		}
	}
	return nil
}

// colSeries is one column's values gathered across every chunk that
// carries it, with the matching timestamps.
type colSeries struct {
	kind   ftdc.Kind
	times  []uint64 // unix nanos, parallel to vals
	vals   []float64
	seenAt int // first column order index, for stable output
}

// gather flattens chunked samples into per-column series.
func gather(chunks []*ftdc.Chunk) (map[string]*colSeries, []string) {
	series := make(map[string]*colSeries)
	var order []string
	next := 0
	for _, c := range chunks {
		tj := -1
		for j, col := range c.Columns {
			if col.Name == ftdc.TimeColumn {
				tj = j
				break
			}
		}
		for si := range c.Samples {
			var t uint64
			if tj >= 0 {
				t = c.Samples[si][tj]
			}
			for j, col := range c.Columns {
				s, ok := series[col.Name]
				if !ok {
					s = &colSeries{kind: col.Kind, seenAt: next}
					next++
					series[col.Name] = s
					order = append(order, col.Name)
				}
				s.times = append(s.times, t)
				s.vals = append(s.vals, c.Float(si, j))
			}
		}
	}
	return series, order
}

// quantile returns the p-quantile of vals by nearest-rank over a sorted
// copy — exact for the recorded samples, no bucketing involved.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// writeSummary prints per-column statistics in first-seen order:
// samples, min, max, p50, p99, first, last, and — when the column never
// decreases and time advanced — the per-second rate over the span.
func writeSummary(w io.Writer, chunks []*ftdc.Chunk) {
	series, order := gather(chunks)
	fmt.Fprintf(w, "%d chunks, %d samples, %d columns\n", len(chunks), totalSamples(chunks), len(order))
	for _, name := range order {
		s := series[name]
		n := len(s.vals)
		if n == 0 {
			continue
		}
		sorted := append([]float64(nil), s.vals...)
		sort.Float64s(sorted)
		first, last := s.vals[0], s.vals[n-1]
		monotonic := true
		for i := 1; i < n; i++ {
			if s.vals[i] < s.vals[i-1] {
				monotonic = false
				break
			}
		}
		fmt.Fprintf(w, "%s  kind=%s samples=%d min=%g p50=%g p99=%g max=%g first=%g last=%g",
			name, s.kind, n,
			sorted[0], quantile(sorted, 0.50), quantile(sorted, 0.99), sorted[n-1],
			first, last)
		if monotonic && name != ftdc.TimeColumn {
			if spanSec := float64(s.times[n-1]-s.times[0]) / 1e9; spanSec > 0 {
				fmt.Fprintf(w, " rate=%g/s", (last-first)/spanSec)
			}
		}
		fmt.Fprintln(w)
	}
}

// writeJSON streams one object per sample, keyed by column name.
func writeJSON(w io.Writer, chunks []*ftdc.Chunk) error {
	enc := json.NewEncoder(w)
	for _, c := range chunks {
		for si := range c.Samples {
			obj := make(map[string]any, len(c.Columns))
			for j, col := range c.Columns {
				if col.Kind == ftdc.KindUint {
					obj[col.Name] = c.Samples[si][j]
				} else {
					obj[col.Name] = c.Float(si, j)
				}
			}
			if err := enc.Encode(obj); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSV emits one table over the union of every chunk's schema, the
// timestamp column first and the rest in first-seen order; cells of
// columns absent from a sample's chunk are empty.
func writeCSV(w io.Writer, chunks []*ftdc.Chunk) error {
	_, order := gather(chunks)
	// Move the timestamp column to the front when present.
	for i, name := range order {
		if name == ftdc.TimeColumn {
			copy(order[1:i+1], order[:i])
			order[0] = name
			break
		}
	}
	idx := make(map[string]int, len(order))
	for i, name := range order {
		idx[name] = i
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(order); err != nil {
		return err
	}
	row := make([]string, len(order))
	for _, c := range chunks {
		for si := range c.Samples {
			for i := range row {
				row[i] = ""
			}
			for j, col := range c.Columns {
				if col.Kind == ftdc.KindUint {
					row[idx[col.Name]] = fmt.Sprintf("%d", c.Samples[si][j])
				} else {
					row[idx[col.Name]] = fmt.Sprintf("%g", c.Float(si, j))
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
