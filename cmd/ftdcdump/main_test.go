package main

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry/ftdc"
)

// writeTestFile writes a two-chunk FTDC file with a schema change: chunk
// one carries (time, requests, heap), chunk two adds a gauge column.
func writeTestFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.ftdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := ftdc.NewWriter(f, 0)
	colsA := []ftdc.Column{
		{Name: ftdc.TimeColumn, Kind: ftdc.KindUint},
		{Name: "requests_total", Kind: ftdc.KindUint},
		{Name: "heap_bytes", Kind: ftdc.KindFloatBits},
	}
	for i := 0; i < 4; i++ {
		vals := []uint64{
			uint64(1e9 * (i + 1)),
			uint64(10 * i),
			math.Float64bits(float64(1000 + i)),
		}
		if err := w.Append(colsA, vals); err != nil {
			t.Fatal(err)
		}
	}
	colsB := append(append([]ftdc.Column(nil), colsA...),
		ftdc.Column{Name: "goroutines", Kind: ftdc.KindFloatBits})
	for i := 4; i < 6; i++ {
		vals := []uint64{
			uint64(1e9 * (i + 1)),
			uint64(10 * i),
			math.Float64bits(float64(1000 + i)),
			math.Float64bits(float64(7)),
		}
		if err := w.Append(colsB, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummaryAndCheck(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatalf("-check failed on a sane file: %v", err)
	}
	if !strings.Contains(out.String(), "ok (2 chunks, 6 samples)") {
		t.Fatalf("unexpected -check output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"2 chunks, 6 samples, 4 columns",
		"requests_total  kind=uint samples=6 min=0 p50=20 p99=50 max=50 first=0 last=50 rate=10/s",
		"goroutines  kind=float samples=2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q in:\n%s", want, got)
		}
	}
}

func TestCheckRejectsNonMonotonicAndEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ftdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := ftdc.NewWriter(f, 0)
	cols := []ftdc.Column{{Name: ftdc.TimeColumn, Kind: ftdc.KindUint}}
	for _, ts := range []uint64{5e9, 4e9} {
		if err := w.Append(cols, []uint64{ts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run([]string{"-check", path}, &out); err == nil || !strings.Contains(err.Error(), "not monotonic") {
		t.Fatalf("want monotonicity error, got %v", err)
	}

	empty := filepath.Join(dir, "empty.ftdc")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", empty}, &out); err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("want no-samples error, got %v", err)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-format", "json", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 JSON lines, got %d", len(lines))
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[5]), &last); err != nil {
		t.Fatal(err)
	}
	if last["requests_total"].(float64) != 50 {
		t.Errorf("last requests_total = %v, want 50", last["requests_total"])
	}
	if last["goroutines"].(float64) != 7 {
		t.Errorf("last goroutines = %v, want 7", last["goroutines"])
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if _, hasG := first["goroutines"]; hasG {
		t.Error("first sample should predate the goroutines column")
	}
}

func TestCSVUnionSchema(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-format", "csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("want header + 6 rows, got %d", len(recs))
	}
	if recs[0][0] != ftdc.TimeColumn {
		t.Errorf("first CSV column = %q, want %s", recs[0][0], ftdc.TimeColumn)
	}
	gi := -1
	for i, name := range recs[0] {
		if name == "goroutines" {
			gi = i
		}
	}
	if gi < 0 {
		t.Fatal("union header missing goroutines")
	}
	if recs[1][gi] != "" {
		t.Errorf("pre-schema-change cell = %q, want empty", recs[1][gi])
	}
	if recs[6][gi] != "7" {
		t.Errorf("post-schema-change cell = %q, want 7", recs[6][gi])
	}
}

// The test file's timestamps are unix seconds 1..6; slice out the
// middle with unix-seconds bounds (-since inclusive, -until exclusive).
func TestTimeRangeFilter(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-check", "-since", "2", "-until", "5", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 samples") {
		t.Fatalf("[2s, 5s) of 1..6s should keep 3 samples: %q", out.String())
	}

	// RFC3339 bounds resolve to the same cut.
	out.Reset()
	since := "1970-01-01T00:00:02Z"
	until := "1970-01-01T00:00:05Z"
	if err := run([]string{"-check", "-since", since, "-until", until, path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 samples") {
		t.Fatalf("RFC3339 range should keep 3 samples: %q", out.String())
	}

	// A range past the recording empties it, which -check reports.
	if err := run([]string{"-check", "-since", "100", path}, &out); err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("want no-samples error for an out-of-range cut, got %v", err)
	}
}

func TestTimeFlagValidation(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-since", "yesterday", path}, &out); err == nil || !strings.Contains(err.Error(), "bad -since") {
		t.Fatalf("want parse error, got %v", err)
	}
	if err := run([]string{"-since", "5", "-until", "2", path}, &out); err == nil || !strings.Contains(err.Error(), "not before") {
		t.Fatalf("want inverted-range error, got %v", err)
	}
}

func TestMatchFilter(t *testing.T) {
	path := writeTestFile(t)
	var out strings.Builder
	if err := run([]string{"-match", "^requests", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "heap_bytes") {
		t.Error("filtered summary still shows heap_bytes")
	}
	if !strings.Contains(got, "requests_total") || !strings.Contains(got, ftdc.TimeColumn) {
		t.Errorf("filtered summary should keep requests_total and the time column:\n%s", got)
	}
}
