// Command capagent is one remote capture agent of the distributed
// Marauder's map: it runs a sniffer against the same deterministic
// simulated campus as cmd/marauder (same -seed, same -aps) and streams
// the captured frame batches to the engine's capwire server over TCP —
// length-prefixed, CRC-checksummed, versioned messages with a bounded
// send queue, heartbeats, jittered-backoff reconnect, and cursor-based
// session resume, so a killed and restarted agent picks up from its last
// acked batch instead of losing or double-delivering traffic.
//
// Usage:
//
//	capagent -server HOST:7642 [-agent lab-1] [-seed 1] [-aps 300]
//	         [-pos 0,0] [-speedup 50] [-duration 0]
//	         [-queue 256] [-overflow block|drop-oldest] [-heartbeat 1s]
//	         [-wire-chaos] [-wire-seed 1]
//	         [-metrics-addr :9643] [-log-level info] [-log-format text]
//
// -pos places the agent's receiver on the campus plane, so a fleet of
// agents at different positions covers it like the paper's sniffer
// deployment. -duration bounds the simulated capture time (0 loops the
// victim's route forever). -overflow picks what happens when the engine
// falls behind: block propagates backpressure into the capture loop,
// drop-oldest sheds the oldest unsent batch and counts every drop.
//
// -wire-chaos wraps the connection in the deterministic wire fault plan
// (torn connections, truncated and bit-flipped messages, duplicated and
// reordered batches, slow-loris stalls) seeded by -wire-seed — the
// protocol must deliver exactly-once ingest accounting through all of
// it, which is what the agent-chaos smoke test asserts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/capwire"
	"repro/internal/dot11"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		slog.Error("capture agent failed", "component", "capagent", "err", err)
		os.Exit(1)
	}
}

// world is the agent's deterministic capture scene: the same campus,
// victim and route cmd/marauder builds for the same seed, with this
// agent's sniffer at its own position.
type world struct {
	sim     *sim.World
	victim  *sim.Device
	route   *sim.RouteWalk
	sniffer *sniffer.Sniffer
}

// buildWorld mirrors cmd/marauder's deployment exactly — same seed and
// AP count must reproduce the same campus, or the agents' traffic would
// describe a world the engine does not know.
func buildWorld(seed int64, nAPs int, pos geom.Point) (*world, error) {
	w := sim.NewWorld(seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        nAPs,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return nil, err
	}
	w.APs = aps

	var waypoints []geom.Point
	row := 0
	for y := -250.0; y <= 250; y += 125 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-250, y), geom.Pt(250, y))
		} else {
			waypoints = append(waypoints, geom.Pt(250, y), geom.Pt(-250, y))
		}
		row++
	}
	route := sim.NewRouteWalk(waypoints, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)
	return &world{
		sim:    w,
		victim: victim,
		route:  route,
		sniffer: sniffer.New(sniffer.Config{
			Pos:   pos,
			Chain: rf.ChainLNA(),
			Plan:  dot11.DefaultPlan(),
		}),
	}, nil
}

// captureWindow captures the victim's scan bursts in [from, to) seconds
// of route time into one batch.
func (w *world) captureWindow(from, to float64) []sniffer.Capture {
	seq := uint16(from/30) + 1
	var batch []sniffer.Capture
	for t := from; t < to; t += 30 {
		pos := w.victim.PosAt(t)
		batch = w.sniffer.CaptureAllInto(batch, sim.ScanBurst(w.sim, w.victim, t, pos, seq))
		seq++
	}
	return batch
}

// parsePos parses "x,y" meters.
func parsePos(s string) (geom.Point, error) {
	x, y, ok := strings.Cut(s, ",")
	if !ok {
		return geom.Point{}, fmt.Errorf("bad -pos %q: want x,y", s)
	}
	xv, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad -pos %q: %w", s, err)
	}
	yv, err := strconv.ParseFloat(strings.TrimSpace(y), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad -pos %q: %w", s, err)
	}
	return geom.Pt(xv, yv), nil
}

// run is the testable entry point. ready, when non-nil, is closed once
// the client exists — the hook the tests use to know streaming started.
func run(args []string, ready chan<- *capwire.Client) error {
	fs := flag.NewFlagSet("capagent", flag.ContinueOnError)
	server := fs.String("server", "", "capwire server address (required), e.g. 127.0.0.1:7642")
	agentID := fs.String("agent", "agent-1", "agent identity: the server's cursor and accounting key, stable across restarts")
	seed := fs.Int64("seed", 1, "random seed (must match the engine's -seed)")
	nAPs := fs.Int("aps", 300, "number of deployed APs (must match the engine's -aps)")
	posSpec := fs.String("pos", "0,0", "receiver position on the campus plane, meters, as x,y")
	speedup := fs.Float64("speedup", 50, "simulated seconds per wall second")
	duration := fs.Float64("duration", 0, "simulated seconds to capture (0 = loop the route until interrupted)")
	queue := fs.Int("queue", 256, "send queue bound in batches (unsent + sent-unacked)")
	overflow := fs.String("overflow", "block", "full-queue policy: block (backpressure) or drop-oldest (shed and count)")
	heartbeat := fs.Duration("heartbeat", time.Second, "idle keepalive period")
	wireChaos := fs.Bool("wire-chaos", false, "inject the deterministic wire fault plan into the connection")
	wireSeed := fs.Int64("wire-seed", 1, "wire fault plan seed")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars on this address (e.g. :9643)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flagcheck.New(fs).Requires("wire-seed", "wire-chaos").Err(); err != nil {
		return err
	}
	if *server == "" {
		return errors.New("-server is required")
	}
	if *speedup <= 0 {
		return fmt.Errorf("-speedup must be > 0, got %v", *speedup)
	}
	policy, err := capwire.ParseOverflowPolicy(*overflow)
	if err != nil {
		return err
	}
	pos, err := parsePos(*posSpec)
	if err != nil {
		return err
	}
	if _, err := telemetry.SetupLogging(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: telemetry.Mux(telemetry.Default(), false)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("telemetry server failed", "component", "capagent", "addr", *metricsAddr, "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("telemetry listening", "component", "capagent", "addr", *metricsAddr)
	}

	w, err := buildWorld(*seed, *nAPs, pos)
	if err != nil {
		return err
	}

	cfg := capwire.ClientConfig{
		Addr:           *server,
		AgentID:        *agentID,
		QueueBatches:   *queue,
		Overflow:       policy,
		HeartbeatEvery: *heartbeat,
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...), "component", "capagent")
		},
	}
	var plan *faults.WirePlan
	if *wireChaos {
		plan = faults.AggressiveWire(*wireSeed)
		cfg.WrapConn = plan.WrapConn
		slog.Info("wire chaos on", "component", "capagent", "seed", *wireSeed)
	}
	client, err := capwire.NewClient(cfg)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- client
	}
	slog.Info("capture agent streaming", "component", "capagent",
		"server", *server, "agent", *agentID, "pos", pos,
		"overflow", policy.String(), "queue", *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	total := w.route.TotalDuration()
	simTime, captured := 0.0, 0.0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: push the queued tail out, then report.
			// A SIGKILL never gets here — that is what cursor resume is
			// for, proven by the kill-and-resume tests.
			flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := client.Flush(flushCtx)
			cancel()
			if err != nil {
				slog.Warn("final flush incomplete", "component", "capagent", "err", err)
			}
			st := client.Stats()
			slog.Info("capture agent stopped", "component", "capagent",
				"enqueuedBatches", st.EnqueuedBatches, "ackedBatches", st.AckedBatches,
				"droppedBatches", st.DroppedBatches, "replayedBatches", st.ReplayedBatches,
				"resumes", st.Resumes, "cursor", st.Cursor)
			return client.Close()
		case <-ticker.C:
			next := simTime + *speedup/2
			if next > total {
				next = total
			}
			batch := w.captureWindow(simTime, next)
			captured += next - simTime
			simTime = next
			if simTime >= total {
				simTime = 0 // loop the walk, like the engine does
			}
			if len(batch) > 0 {
				if err := client.Send(ctx, batch); err != nil {
					if errors.Is(err, context.Canceled) {
						continue // the ctx.Done() case handles shutdown
					}
					return err
				}
			}
			if *duration > 0 && captured >= *duration {
				stop()
				// Re-enter the select with ctx done for the flush path.
				continue
			}
		}
	}
}
