package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/capwire"
	"repro/internal/geom"
	"repro/internal/sniffer"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "-server"},
		{[]string{"-server", "x", "-wire-seed", "3"}, "-wire-chaos"},
		{[]string{"-server", "x", "-pos", "nope"}, "-pos"},
		{[]string{"-server", "x", "-overflow", "spill"}, "overflow"},
		{[]string{"-server", "x", "-speedup", "0"}, "-speedup"},
	}
	for _, c := range cases {
		err := run(c.args, nil)
		if err == nil {
			t.Errorf("run(%v) accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) error %q does not mention %s", c.args, err, c.want)
		}
	}
}

func TestParsePos(t *testing.T) {
	p, err := parsePos(" -12.5 , 40 ")
	if err != nil || p.X != -12.5 || p.Y != 40 {
		t.Fatalf("parsePos: %v %v", p, err)
	}
	for _, bad := range []string{"", "1", "a,b", "1;2"} {
		if _, err := parsePos(bad); err == nil {
			t.Errorf("parsePos(%q) accepted", bad)
		}
	}
}

// TestAgentStreamsToServer runs the whole binary path against an
// in-process capwire server: the agent simulates its world, streams the
// capture, flushes on completion, and the server's books balance.
func TestAgentStreamsToServer(t *testing.T) {
	var mu sync.Mutex
	frames := 0
	srv, err := capwire.NewServer(capwire.ServerConfig{
		Ingest: func(agentID string, caps []sniffer.Capture) int {
			mu.Lock()
			frames += len(caps)
			mu.Unlock()
			return len(caps)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-server", lis.Addr().String(),
			"-agent", "test-agent",
			"-seed", "5", "-aps", "60",
			"-pos", "10,-20",
			"-speedup", "5000", "-duration", "120",
		}, nil)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not finish")
	}

	mu.Lock()
	got := frames
	mu.Unlock()
	if got == 0 {
		t.Fatal("server ingested no frames")
	}
	agents := srv.Agents()
	if len(agents) != 1 || agents[0].ID != "test-agent" {
		t.Fatalf("agents: %+v", agents)
	}
	a := agents[0]
	if !a.AccountingOk || a.BatchesIngested == 0 || a.FramesIngested != uint64(got) {
		t.Fatalf("accounting: %+v (sink saw %d)", a, got)
	}
}

// TestAgentWorldMatchesMarauder: same seed and AP count must produce the
// same deployment the engine knows, or agent traffic would be noise.
func TestAgentWorldMatchesMarauder(t *testing.T) {
	w1, err := buildWorld(7, 40, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := buildWorld(7, 40, geom.Pt(50, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.sim.APs) != 40 || len(w2.sim.APs) != 40 {
		t.Fatalf("AP counts: %d, %d", len(w1.sim.APs), len(w2.sim.APs))
	}
	for i := range w1.sim.APs {
		if w1.sim.APs[i].MAC != w2.sim.APs[i].MAC || w1.sim.APs[i].Pos != w2.sim.APs[i].Pos {
			t.Fatalf("AP %d differs across same-seed worlds", i)
		}
	}
	if w1.victim.MAC != w2.victim.MAC {
		t.Fatal("victim identity differs across same-seed worlds")
	}
}
