package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry/ftdc"
)

func TestRunOnceWritesFlightRecord(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-once", "-algo", "centroid", "-aps", "80", "-seed", "3",
		"-ftdc-dir", dir, "-ftdc-interval", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var path string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ftdc") {
			path = filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatalf("no .ftdc file in %s", dir)
	}
	chunks, err := ftdc.ReadFile(path)
	if err != nil {
		t.Fatalf("decoding flight record: %v", err)
	}
	if len(chunks) == 0 || len(chunks[0].Samples) == 0 {
		t.Fatal("flight record is empty")
	}
	// A -once pass takes a single end-of-run sample; it must carry the
	// timestamp, the runtime sampler's series and the pipeline's.
	names := map[string]bool{}
	for _, col := range chunks[0].Columns {
		names[col.Name] = true
	}
	for _, want := range []string{
		ftdc.TimeColumn,
		"marauder_process_goroutines",
		"marauder_process_rss_bytes",
	} {
		if !names[want] {
			t.Errorf("flight record missing column %s", want)
		}
	}
}

func TestHealthReportsRecorderStatus(t *testing.T) {
	a, err := buildAttack(3, 80, "centroid")
	if err != nil {
		t.Fatal(err)
	}
	// Recorder off: the detail still carries an explicit Enabled:false
	// report rather than omitting the key.
	detail := a.health(0).Detail.(map[string]any)
	st, ok := detail["ftdc"].(ftdc.Status)
	if !ok {
		t.Fatalf("health detail ftdc = %T, want ftdc.Status", detail["ftdc"])
	}
	if st.Enabled {
		t.Error("nil recorder should report Enabled=false")
	}

	rec, err := ftdc.New(ftdc.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	a.rec = rec
	if err := rec.Sample(); err != nil {
		t.Fatal(err)
	}
	st = a.health(0).Detail.(map[string]any)["ftdc"].(ftdc.Status)
	if !st.Enabled || st.Path == "" {
		t.Errorf("live recorder status = %+v, want Enabled with a path", st)
	}
	if st.Samples+uint64(st.PendingSamples) == 0 {
		t.Errorf("live recorder status shows no samples: %+v", st)
	}
}
