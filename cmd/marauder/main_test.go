package main

import (
	"testing"
)

func TestBuildAttackAlgorithms(t *testing.T) {
	// Every algorithm of the paper selects through the one Localizer
	// interface; trained modes flag themselves for RefreshKnowledge.
	wantName := map[string]string{
		"mloc": "m-loc", "centroid": "centroid", "closest": "closest-ap",
		"aprad": "ap-rad", "aploc": "ap-loc",
	}
	for _, algo := range []string{"mloc", "centroid", "closest", "aprad", "aploc"} {
		a, err := buildAttack(1, 120, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(a.world.APs) != 120 {
			t.Fatalf("%s: aps = %d", algo, len(a.world.APs))
		}
		if got := a.eng.Localizer().Name(); got != wantName[algo] {
			t.Fatalf("%s: localizer = %q, want %q", algo, got, wantName[algo])
		}
		if trained := algo == "aprad" || algo == "aploc"; a.trains != trained {
			t.Fatalf("%s: trains = %v", algo, a.trains)
		}
	}
	if _, err := buildAttack(1, 120, "nope"); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestRunOnceBaselines(t *testing.T) {
	for _, algo := range []string{"centroid", "closest"} {
		a, err := buildAttack(3, 150, algo)
		if err != nil {
			t.Fatal(err)
		}
		if err := runOnce(a, algo); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunOnceMLoc(t *testing.T) {
	a, err := buildAttack(3, 150, "mloc")
	if err != nil {
		t.Fatal(err)
	}
	if err := runOnce(a, "mloc"); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnceAPRad(t *testing.T) {
	if testing.Short() {
		t.Skip("AP-Rad LP run")
	}
	a, err := buildAttack(3, 150, "aprad")
	if err != nil {
		t.Fatal(err)
	}
	if err := runOnce(a, "aprad"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("want flag error")
	}
	if err := run([]string{"-algo", "nope", "-once"}); err == nil {
		t.Fatal("want algorithm error")
	}
}

func TestCaptureAccumulates(t *testing.T) {
	a, err := buildAttack(5, 150, "mloc")
	if err != nil {
		t.Fatal(err)
	}
	a.captureUpTo(0, 120)
	n := a.store.Len()
	if n == 0 {
		t.Fatal("no observations after capture")
	}
	a.captureUpTo(120, 240)
	if a.store.Len() <= n {
		t.Fatal("second capture window added nothing")
	}
}

func TestRunOnceAPLoc(t *testing.T) {
	if testing.Short() {
		t.Skip("wardrive + AP-Rad LP run")
	}
	a, err := buildAttack(3, 150, "aploc")
	if err != nil {
		t.Fatal(err)
	}
	if a.baseKnow.Len() < 50 {
		t.Fatalf("training located only %d APs", a.baseKnow.Len())
	}
	if err := runOnce(a, "aploc"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadTelemetryFlags(t *testing.T) {
	// Flag validation happens before the attack is built, so these return
	// fast.
	if err := run([]string{"-log-level", "loud", "-once"}); err == nil {
		t.Error("want error for unknown log level")
	}
	if err := run([]string{"-log-format", "yaml", "-once"}); err == nil {
		t.Error("want error for unknown log format")
	}
}
