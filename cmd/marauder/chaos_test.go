package main

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/mapserver"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

// TestChaosAttackFullAccounting drives a full attack pass under the
// aggressive fault plan and checks the no-silent-loss invariant at every
// stage: frames leaving the sniffer are delivered, dropped, or duplicated
// exactly as the plan counts, and everything delivered is either ingested
// or quarantined with a reason.
func TestChaosAttackFullAccounting(t *testing.T) {
	plan := faults.Aggressive(7)
	a, err := buildAttackOpts(attackOpts{Seed: 3, APs: 150, Algo: "mloc", Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if a.injector == nil {
		t.Fatal("chaos build must install a fault injector")
	}

	total := a.route.TotalDuration()
	var produced, delivered, ingested int
	seq := uint16(1)
	// Tick like serve does, but count each stage's throughput.
	for from := 0.0; from < total; from += 60 {
		to := from + 60
		if to > total {
			to = total
		}
		var batch []sniffer.Capture
		for ts := from; ts < to; ts += 30 {
			pos := a.victim.PosAt(ts)
			batch = a.sniffer.CaptureAllInto(batch, sim.ScanBurst(a.world, a.victim, ts, pos, seq))
			seq++
		}
		produced += len(batch)
		out := a.injector.Apply(batch)
		delivered += len(out)
		ingested += a.eng.IngestCaptures(out)
	}
	held := a.injector.Drain()
	delivered += len(held)
	ingested += a.eng.IngestCaptures(held)
	if a.injector.Held() != 0 {
		t.Error("drain left captures behind")
	}

	c := plan.Counters()
	if produced == 0 || c.Dropped == 0 || c.Corrupted == 0 || c.Duplicated == 0 {
		t.Fatalf("aggressive plan exercised nothing: produced=%d counters=%+v", produced, c)
	}
	// Delivery accounting: every produced capture is delivered, dropped,
	// or delivered twice. Nothing vanishes without a counter.
	if got, want := delivered, produced-int(c.Dropped)+int(c.Duplicated); got != want {
		t.Errorf("delivered %d, want produced(%d) - dropped(%d) + duplicated(%d) = %d",
			got, produced, c.Dropped, c.Duplicated, want)
	}
	// Ingest accounting: everything delivered is ingested or quarantined.
	q := a.eng.Quarantine()
	if got, want := ingested+int(q.Total), delivered; got != want {
		t.Errorf("ingested(%d) + quarantined(%d) = %d, want delivered %d",
			ingested, q.Total, got, want)
	}
	// Corruption is the only quarantine source on this path.
	if q.Total != c.Corrupted || q.ByReason[engine.ReasonUndecodable] != c.Corrupted {
		t.Errorf("quarantine %+v disagrees with %d corrupted frames", q, c.Corrupted)
	}

	// The pipeline stays live: the victim is still tracked despite a dead
	// card, flapping coverage, corruption and reordering.
	points, err := a.eng.Track(a.victim.MAC, 0, total, 60)
	if err != nil {
		t.Fatalf("tracking under chaos: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no fixes produced under chaos")
	}

	// Degraded-mode health: at t=100s the aggressive plan has channel 1
	// dead, so the composed health report must say degraded.
	h := a.health(100)
	if h.Status != mapserver.StatusDegraded || len(h.Reasons) == 0 {
		t.Errorf("health at t=100 = %+v, want degraded with reasons", h)
	}
}

// TestChaosCheckpointRecovery checkpoints mid-attack, simulates a crash by
// rebuilding the whole attack from the checkpoint directory, and asserts
// the recovered store is byte-identical — the record counts /api/stats
// would report before and after the restart match exactly.
func TestChaosCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	plan := faults.Aggressive(11)
	a, err := buildAttackOpts(attackOpts{Seed: 5, APs: 150, Algo: "mloc", Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	a.ckpt = &obs.Checkpointer{Dir: dir, Source: func() *obs.Store { return a.eng.Store() }}

	a.captureUpTo(0, 240)
	if _, err := a.ckpt.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	a.captureUpTo(240, 480)
	a.drainHeld()
	if _, err := a.ckpt.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	wantLen := a.eng.Store().Len()
	var want bytes.Buffer
	if err := a.eng.Store().Save(&want); err != nil {
		t.Fatal(err)
	}

	// "kill -9": nothing from the first process survives but the
	// checkpoint directory.
	recovered, info, err := obs.Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("no checkpoint recovered")
	}
	if info.Meta.Generation != 2 {
		t.Errorf("recovered generation %d, want 2 (the newest)", info.Meta.Generation)
	}
	b, err := buildAttackOpts(attackOpts{Seed: 5, APs: 150, Algo: "mloc", Store: recovered})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.eng.Store().Len(); got != wantLen {
		t.Fatalf("post-recovery store holds %d records, want %d", got, wantLen)
	}
	var got bytes.Buffer
	if err := b.eng.Store().Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered store's canonical bytes differ from the pre-crash store")
	}

	// The restarted attack keeps working on the recovered observations.
	points, err := b.eng.Track(b.victim.MAC, 0, 480, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no fixes from the recovered store")
	}
	// Without a fault plan the restarted pipeline reports healthy.
	if h := b.health(100); h.Status != mapserver.StatusHealthy {
		t.Errorf("fault-free health = %+v, want healthy", h)
	}
}

// TestChaosDeterministicReplay runs the same seeded chaos attack twice and
// expects identical fault counters and identical stores: the whole fault
// plan is a pure function of its seed.
func TestChaosDeterministicReplay(t *testing.T) {
	runPass := func() (faults.Counters, *bytes.Buffer) {
		plan := faults.Aggressive(23)
		a, err := buildAttackOpts(attackOpts{Seed: 9, APs: 120, Algo: "mloc", Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		a.captureUpTo(0, 300)
		a.drainHeld()
		var buf bytes.Buffer
		if err := a.eng.Store().Save(&buf); err != nil {
			t.Fatal(err)
		}
		return plan.Counters(), &buf
	}
	c1, s1 := runPass()
	c2, s2 := runPass()
	if c1 != c2 {
		t.Errorf("fault counters diverged: %+v vs %+v", c1, c2)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Error("stores diverged between identically seeded chaos runs")
	}
}
