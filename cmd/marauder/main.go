// Command marauder runs the full digital Marauder's map attack end to end
// on a simulated campus: deploy APs, walk a victim device around, capture
// its probing traffic with the LNA receiver chain, localize it continuously
// with the selected algorithm, and serve the live map on an HTTP port.
//
// Usage:
//
//	marauder [-addr :8642] [-algo mloc|aprad|aploc|centroid|closest]
//	         [-seed 1] [-aps 300] [-speedup 50] [-workers 0] [-shards 0] [-once]
//	         [-metrics-addr :9642] [-pprof] [-log-level info] [-log-format text]
//	         [-trace] [-trace-sample 1] [-trace-buffer 256]
//	         [-chaos] [-chaos-seed 1] [-checkpoint-dir DIR] [-checkpoint-interval 10s]
//	         [-ftdc-dir DIR] [-ftdc-interval 1s]
//	         [-prof-dir DIR] [-prof-interval 60s] [-prof-cpu 10s]
//	         [-mutex-profile-fraction 0] [-block-profile-rate 0]
//	         [-slo SPEC]... [-slo-defaults] [-slo-tick 10s]
//	         [-stage-sample-every 0]
//	         [-agents-listen :7642] [-local-capture=true] [-ingest-stale-after 0]
//
// All five of the paper's algorithms select through the same
// core.Localizer interface and drive the same engine pipeline. With -once
// the attack runs a single pass and prints per-fix accuracy instead of
// serving the map.
//
// The map port always serves /metrics (Prometheus text format) and
// /debug/vars (JSON); -metrics-addr serves the same telemetry on a
// separate port and -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on both. -trace samples localizations into per-estimate
// traces and provenance records (-trace-sample sets the sampled fraction,
// -trace-buffer the retained ring), served at /api/trace and
// /api/explain?device=MAC on the map port.
//
// -chaos injects a deterministic aggressive fault plan (card failures,
// clock skew, frame corruption, drops, duplication, reordering) seeded by
// -chaos-seed; the pipeline's degraded-vs-healthy self-report is served
// at /api/health. -checkpoint-dir enables crash-safe observation
// checkpoints: the newest valid one is restored on start and periodic
// snapshots are written every -checkpoint-interval, plus a final one on
// graceful shutdown.
//
// -ftdc-dir turns on the flight recorder: every telemetry metric plus Go
// runtime stats (heap, RSS, GC pause, goroutines, scheduler latency) is
// appended every -ftdc-interval to a compact delta-encoded binary file in
// that directory, decodable offline with cmd/ftdcdump; the recorder's
// progress shows under "ftdc" in the /api/health detail.
//
// -prof-dir turns on the continuous profiler: every -prof-interval the
// process captures CPU (-prof-cpu long), delta-heap, goroutine, mutex and
// block profiles into rotated size-capped artifacts in that directory and
// decodes its own CPU capture into the top-N hot-function table served at
// /api/profile. Mutex and block captures are empty unless their runtime
// rates are on: -mutex-profile-fraction samples 1/n of contention events
// and -block-profile-rate records blocking ≥ n nanoseconds (both also
// activate /debug/pprof/mutex and /debug/pprof/block under -pprof).
//
// -slo declares a service-level objective
// (latency:<name>:<series>:<seconds>:<target> or
// availability:<name>:<totalSeries>:<badSeries>:<target>, repeatable);
// -slo-defaults installs the built-in fix-latency and fix-availability
// objectives. Objectives are evaluated every -slo-tick over multi-window
// error budgets, served at /api/slo, and folded into /api/health reasons
// while burning or exhausted. -stage-sample-every times the per-stage
// histograms (marauder_stage_seconds) on every Nth fix (0 = default 16,
// 1 = every fix, negative = off).
//
// -agents-listen starts the distributed capture plane: a capwire server
// accepting remote capture agents (cmd/capagent) that stream frame
// batches over TCP with resumable cursors, served alongside the local
// fleet. Per-agent liveness, lag and resume accounting shows at
// /api/agents and in /api/health; with -checkpoint-dir the agents' ack
// cursors persist next to the observation checkpoints so a restart
// resumes every agent from its acked position. -local-capture=false
// turns the in-process sniffer fleet off (remote agents become the only
// capture source); -ingest-stale-after degrades /api/health when any
// capture source delivers nothing for that long.
//
// Dependent flags are validated after parse: a flag that only tunes a
// feature the command line never enabled (-chaos-seed without -chaos,
// -checkpoint-interval without -checkpoint-dir, ...) is an error, and a
// zero or negative -checkpoint-interval disables periodic checkpoints
// while keeping the final shutdown snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/capwire"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/geom"
	"repro/internal/mapserver"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
	"repro/internal/telemetry/ftdc"
	"repro/internal/telemetry/prof"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/trace"
	"repro/internal/wardrive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("attack failed", "component", "marauder", "err", err)
		os.Exit(1)
	}
}

type attack struct {
	world   *sim.World
	victim  *sim.Device
	route   *sim.RouteWalk
	store   *obs.Store
	eng     *engine.Engine
	sniffer *sniffer.Sniffer
	// know is the true AP knowledge (for the map's AP layer).
	know core.Knowledge
	// baseKnow is the knowledge the engine trains from: true positions in
	// aprad mode, wardrive-trained ones in aploc mode.
	baseKnow core.Knowledge
	// trains marks the trained modes that need RefreshKnowledge.
	trains bool
	// plan is the chaos fault plan (nil when -chaos is off).
	plan *faults.Plan
	// injector perturbs capture batches (drop/dup/reorder/delay) before
	// ingest; nil when -chaos is off.
	injector *sniffer.FaultInjector
	// ckpt periodically snapshots the observation store; nil when
	// -checkpoint-dir is unset.
	ckpt *obs.Checkpointer
	// rec is the FTDC flight recorder; nil (recorder disabled) when
	// -ftdc-dir is unset — every method on it is nil-safe.
	rec *ftdc.Recorder
	// prof is the continuous profiler; nil (disabled) when -prof-dir is
	// unset — every method on it is nil-safe.
	prof *prof.Profiler
	// slos tracks service-level objectives; nil (disabled) when no -slo
	// flags are given — every method on it is nil-safe.
	slos *slo.Tracker
	// agents is the capwire server for remote capture agents; nil when
	// -agents-listen is unset.
	agents *capwire.Server
	// agentStale is the -ingest-stale-after threshold shared by the
	// engine's per-source check and the agents' liveness reasons.
	agentStale time.Duration
	// localCapture mirrors -local-capture: false turns the in-process
	// sniffer fleet off so remote agents are the only capture source.
	localCapture bool
	// ckptPeriodic is false when -checkpoint-interval disabled periodic
	// snapshots (the final shutdown checkpoint still happens).
	ckptPeriodic bool
}

// attackOpts is the full build configuration; the positional helpers
// below keep the original test-facing signatures.
type attackOpts struct {
	Seed    int64
	APs     int
	Algo    string
	Workers int
	Shards  int
	Tracer  *trace.Tracer
	// Faults, when non-nil, injects the chaos plan into the sniffer (card
	// schedules) and installs a batch injector on the capture path.
	Faults *faults.Plan
	// Store, when non-nil, seeds the engine with a recovered observation
	// store instead of an empty one.
	Store *obs.Store
	// StageSampleEvery forwards to engine.Config.StageSampleEvery.
	StageSampleEvery int
	// StaleIngestAfter forwards to engine.Config.StaleIngestAfter.
	StaleIngestAfter time.Duration
}

// newLocalizer maps an -algo name to its Localizer and the knowledge base
// the engine starts from. know holds the true AP positions and radii; w is
// needed only by aploc, which wardrives the world for training tuples.
func newLocalizer(algo string, know core.Knowledge, w *sim.World) (core.Localizer, core.Knowledge, error) {
	radCfg := core.APRadConfig{MaxRadius: 160, MaxNeighborConstraints: 12}
	switch algo {
	case "mloc", "":
		return core.MLocalizer{}, know, nil
	case "centroid":
		return core.CentroidLocalizer{}, know, nil
	case "closest":
		return core.ClosestAPLocalizer{}, know, nil
	case "aprad":
		// Radii withheld: true AP positions, radii trained from
		// observations by the engine's RefreshKnowledge.
		infos := know.All()
		for i := range infos {
			infos[i].MaxRange = 0
		}
		return core.APRadLocalizer{Cfg: radCfg}, core.NewKnowledge(infos), nil
	case "aploc":
		// Nothing known: wardrive the campus first, estimate AP positions
		// from the training tuples, then train radii from observations.
		var waypoints []geom.Point
		row := 0
		for y := -300.0; y <= 300; y += 100 {
			if row%2 == 0 {
				waypoints = append(waypoints, geom.Pt(-300, y), geom.Pt(300, y))
			} else {
				waypoints = append(waypoints, geom.Pt(300, y), geom.Pt(-300, y))
			}
			row++
		}
		for x := -300.0; x <= 300; x += 100 {
			if row%2 == 0 {
				waypoints = append(waypoints, geom.Pt(x, 300), geom.Pt(x, -300))
			} else {
				waypoints = append(waypoints, geom.Pt(x, -300), geom.Pt(x, 300))
			}
			row++
		}
		drive := sim.NewRouteWalk(waypoints, 10)
		tuples := wardrive.Collector{World: w}.CollectAlong(drive, 6)
		trained, err := core.EstimateAPLocations(tuples, core.APLocConfig{TrainingRadius: 130})
		if err != nil {
			return nil, core.Knowledge{}, fmt.Errorf("aploc training: %w", err)
		}
		loc := &core.APLocLocalizer{
			Trained: trained,
			Cfg:     core.APLocConfig{TrainingRadius: 130, Rad: radCfg},
		}
		return loc, trained, nil
	default:
		return nil, core.Knowledge{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func buildAttack(seed int64, nAPs int, algo string) (*attack, error) {
	return buildAttackOpts(attackOpts{Seed: seed, APs: nAPs, Algo: algo})
}

func buildAttackWorkers(seed int64, nAPs int, algo string, workers, shards int) (*attack, error) {
	return buildAttackOpts(attackOpts{Seed: seed, APs: nAPs, Algo: algo, Workers: workers, Shards: shards})
}

func buildAttackTraced(seed int64, nAPs int, algo string, workers, shards int, tracer *trace.Tracer) (*attack, error) {
	return buildAttackOpts(attackOpts{Seed: seed, APs: nAPs, Algo: algo, Workers: workers, Shards: shards, Tracer: tracer})
}

func buildAttackOpts(o attackOpts) (*attack, error) {
	w := sim.NewWorld(o.Seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        o.APs,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return nil, err
	}
	w.APs = aps

	var waypoints []geom.Point
	row := 0
	for y := -250.0; y <= 250; y += 125 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-250, y), geom.Pt(250, y))
		} else {
			waypoints = append(waypoints, geom.Pt(250, y), geom.Pt(-250, y))
		}
		row++
	}
	route := sim.NewRouteWalk(waypoints, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)

	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)

	locate, base, err := newLocalizer(o.Algo, know, w)
	if err != nil {
		return nil, err
	}
	// For trained modes the engine starts on the radius-less base: fixes
	// fail (no usable discs) until RefreshKnowledge swaps trained radii in.
	_, trains := locate.(core.KnowledgeTrainer)
	store := o.Store
	if store == nil {
		store = obs.NewStoreShards(o.Shards)
	}
	eng, err := engine.New(engine.Config{
		Know:             base,
		Store:            store,
		Localizer:        locate,
		WindowSec:        45,
		Workers:          o.Workers,
		Tracer:           o.Tracer,
		StageSampleEvery: o.StageSampleEvery,
		StaleIngestAfter: o.StaleIngestAfter,
	})
	if err != nil {
		return nil, err
	}
	a := &attack{
		world:  w,
		victim: victim,
		route:  route,
		store:  eng.Store(),
		eng:    eng,
		know:   know,
		sniffer: sniffer.New(sniffer.Config{
			Pos:    geom.Pt(0, 0),
			Chain:  rf.ChainLNA(),
			Plan:   dot11.DefaultPlan(),
			Faults: o.Faults,
		}),
		baseKnow:     base,
		trains:       trains,
		plan:         o.Faults,
		localCapture: true,
		ckptPeriodic: true,
	}
	if o.Faults.Enabled() {
		a.injector = &sniffer.FaultInjector{Plan: o.Faults}
	}
	return a, nil
}

// captureUpTo simulates and captures the victim's probing traffic in
// [from, to) seconds of route time, accumulating the decoded frames of
// all scan bursts into one batch and delivering it to the engine through
// the store's sharded batch-ingest path.
func (a *attack) captureUpTo(from, to float64) {
	seq := uint16(from/30) + 1
	var batch []sniffer.Capture
	for t := from; t < to; t += 30 {
		pos := a.victim.PosAt(t)
		batch = a.sniffer.CaptureAllInto(batch, sim.ScanBurst(a.world, a.victim, t, pos, seq))
		seq++
	}
	if a.injector != nil {
		batch = a.injector.Apply(batch)
	}
	a.eng.IngestCaptures(batch)
}

// drainHeld flushes any fault-delayed batches into the engine, so a
// shutdown or end-of-run loses nothing the injector was still holding.
func (a *attack) drainHeld() {
	if a.injector == nil {
		return
	}
	if held := a.injector.Drain(); len(held) > 0 {
		a.eng.IngestCaptures(held)
	}
}

// health composes the pipeline's /api/health report at simulated time
// tSec: the engine's refresh and quarantine state plus the monitoring
// cards' schedules, with fault and checkpoint counters in the detail.
func (a *attack) health(tSec float64) mapserver.Health {
	eh := a.eng.Health()
	h := mapserver.Health{Status: mapserver.StatusHealthy}
	h.Reasons = append(h.Reasons, eh.Reasons...)
	if !eh.Healthy {
		h.Status = mapserver.StatusDegraded
	}
	cards := a.sniffer.CardHealth(tSec)
	for _, c := range cards {
		if !c.Up {
			h.Status = mapserver.StatusDegraded
			h.Reasons = append(h.Reasons, fmt.Sprintf("card channel %d down", c.Channel))
		}
	}
	// A burning or exhausted error budget degrades the pipeline: the map
	// is up, but it is failing its users faster than the SLO allows.
	if rs := a.slos.HealthReasons(); len(rs) > 0 {
		h.Status = mapserver.StatusDegraded
		h.Reasons = append(h.Reasons, rs...)
	}
	// Remote capture agents: accounting mismatches always degrade;
	// silence degrades past -ingest-stale-after.
	if a.agents != nil {
		if rs := a.agents.HealthReasons(a.agentStale); len(rs) > 0 {
			h.Status = mapserver.StatusDegraded
			h.Reasons = append(h.Reasons, rs...)
		}
	}
	detail := map[string]any{"engine": eh, "cards": cards}
	if a.agents != nil {
		detail["agents"] = a.agents.Totals()
	}
	if a.plan.Enabled() {
		detail["faults"] = a.plan.Counters()
	}
	if a.ckpt != nil {
		detail["checkpointGeneration"] = a.ckpt.Generation()
	}
	detail["ftdc"] = a.rec.Status()
	detail["profiler"] = a.prof.Status()
	h.Detail = detail
	return h
}

func run(args []string) error {
	fs := flag.NewFlagSet("marauder", flag.ContinueOnError)
	addr := fs.String("addr", ":8642", "HTTP listen address for the map")
	algo := fs.String("algo", "mloc", "localization algorithm: mloc, aprad, aploc, centroid or closest")
	seed := fs.Int64("seed", 1, "random seed")
	nAPs := fs.Int("aps", 300, "number of deployed APs")
	speedup := fs.Float64("speedup", 50, "simulated seconds per wall second")
	workers := fs.Int("workers", 0, "snapshot worker pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "observation store shard count, rounded to a power of two (0 = GOMAXPROCS-rounded)")
	once := fs.Bool("once", false, "run one pass and print accuracy instead of serving")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars on this extra address (e.g. :9642)")
	pprofOn := fs.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	traceOn := fs.Bool("trace", false, "sample localizations into per-estimate traces and provenance records")
	traceSample := fs.Float64("trace-sample", 1, "fraction of localizations traced, in (0, 1] (resolves to every-Nth sampling)")
	traceBuffer := fs.Int("trace-buffer", 256, "finished-trace ring buffer capacity")
	chaos := fs.Bool("chaos", false, "inject the aggressive fault plan: card failures, clock skew, frame corruption, drops, duplication, reordering")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault plan seed (deterministic per seed)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for crash-safe observation checkpoints (recovery on start, periodic snapshots while serving)")
	ckptInterval := fs.Duration("checkpoint-interval", 10*time.Second, "period between observation checkpoints")
	ftdcDir := fs.String("ftdc-dir", "", "directory for FTDC flight-recorder files (empty = recorder off)")
	ftdcInterval := fs.Duration("ftdc-interval", time.Second, "flight-recorder sampling period")
	profDir := fs.String("prof-dir", "", "directory for continuous-profiler artifacts (empty = profiler off)")
	profInterval := fs.Duration("prof-interval", 60*time.Second, "pause between profiler capture cycles")
	profCPU := fs.Duration("prof-cpu", 10*time.Second, "CPU capture length per profiler cycle")
	mutexFrac := fs.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events into /debug/pprof/mutex (0 = off)")
	blockRate := fs.Int("block-profile-rate", 0, "record goroutine blocking lasting >= n ns into /debug/pprof/block (0 = off)")
	var sloObjs []slo.Objective
	fs.Func("slo", "SLO spec, repeatable: latency:<name>:<series>:<seconds>:<target> or availability:<name>:<totalSeries>:<badSeries>:<target>", func(s string) error {
		o, err := slo.ParseObjectiveSpec(s)
		if err != nil {
			return err
		}
		sloObjs = append(sloObjs, o)
		return nil
	})
	sloDefaults := fs.Bool("slo-defaults", false, "track the built-in fix-latency and fix-availability objectives")
	sloTick := fs.Duration("slo-tick", 10*time.Second, "SLO evaluation period")
	stageEvery := fs.Int("stage-sample-every", 0, "time per-stage histograms every Nth fix (0 = default 16, 1 = every fix, negative = off)")
	agentsListen := fs.String("agents-listen", "", "TCP listen address for remote capture agents (capwire protocol; empty = no agent plane)")
	localCapture := fs.Bool("local-capture", true, "run the in-process sniffer fleet (false = remote agents are the only capture source)")
	staleAfter := fs.Duration("ingest-stale-after", 0, "degrade /api/health when a capture source delivers nothing for this long (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Dependent-flag validation: a flag that only tunes a feature this
	// command line never enabled is an operator typo, not a no-op.
	fc := flagcheck.New(fs).
		Requires("chaos-seed", "chaos").
		Requires("checkpoint-interval", "checkpoint-dir").
		Requires("ftdc-interval", "ftdc-dir").
		Requires("prof-interval", "prof-dir").
		Requires("prof-cpu", "prof-dir").
		Requires("trace-sample", "trace").
		Requires("trace-buffer", "trace").
		Requires("slo-tick", "slo", "slo-defaults")
	if err := fc.Err(); err != nil {
		return err
	}
	if !*localCapture && *agentsListen == "" {
		return errors.New("-local-capture=false without -agents-listen leaves no capture source")
	}
	if *once && *agentsListen != "" {
		return errors.New("-agents-listen needs the serving loop; it cannot be combined with -once")
	}
	ckptEvery, ckptPeriodic := flagcheck.CheckpointInterval(*ckptInterval, func(format string, args ...any) {
		slog.Info(fmt.Sprintf(format, args...), "component", "marauder")
	})
	telemetry.SetProfileRates(*mutexFrac, *blockRate)
	if _, err := telemetry.SetupLogging(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}
	var tracer *trace.Tracer
	if *traceOn {
		var err error
		tracer, err = trace.New(trace.Config{Sample: *traceSample, Buffer: *traceBuffer})
		if err != nil {
			return err
		}
		slog.Info("estimate tracing on", "component", "marauder",
			"sample_every", tracer.SampleEvery(), "buffer", *traceBuffer)
	}

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: telemetry.Mux(telemetry.Default(), *pprofOn)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("telemetry server failed", "component", "marauder", "addr", *metricsAddr, "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("telemetry listening", "component", "marauder", "addr", *metricsAddr, "pprof", *pprofOn)
	}

	opts := attackOpts{Seed: *seed, APs: *nAPs, Algo: *algo, Workers: *workers, Shards: *shards, Tracer: tracer, StageSampleEvery: *stageEvery, StaleIngestAfter: *staleAfter}
	if *chaos {
		opts.Faults = faults.Aggressive(*chaosSeed)
		slog.Info("chaos mode on", "component", "marauder", "seed", *chaosSeed)
	}

	var recoveredGen uint64
	if *ckptDir != "" {
		store, info, err := obs.Recover(*ckptDir, *shards)
		if err != nil {
			return err
		}
		for _, sk := range info.Skipped {
			slog.Warn("checkpoint skipped", "component", "marauder", "path", sk.Path, "err", sk.Err)
		}
		if store != nil {
			opts.Store = store
			recoveredGen = info.Meta.Generation
			slog.Info("observations restored from checkpoint", "component", "marauder",
				"path", info.Path, "generation", info.Meta.Generation,
				"records", info.Meta.Records, "skipped", len(info.Skipped))
		} else {
			slog.Info("no checkpoint to restore", "component", "marauder", "dir", *ckptDir)
		}
	}

	// Process runtime health (goroutines, heap, RSS, GC pause, scheduler
	// latency) registers on the default registry so it shows on /metrics
	// and in the flight record alongside the pipeline series.
	runtimeSampler := telemetry.NewRuntimeSampler(nil)
	runtimeSampler.Sample()

	a, err := buildAttackOpts(opts)
	if err != nil {
		return err
	}
	a.localCapture = *localCapture
	a.ckptPeriodic = ckptPeriodic
	a.agentStale = *staleAfter
	if *ftdcDir != "" {
		rec, err := ftdc.New(ftdc.Config{
			Dir:      *ftdcDir,
			Interval: *ftdcInterval,
			Runtime:  runtimeSampler,
		})
		if err != nil {
			return err
		}
		a.rec = rec
		slog.Info("flight recorder on", "component", "marauder",
			"path", rec.Path(), "interval", *ftdcInterval)
	}
	if *profDir != "" {
		p, err := prof.New(prof.Config{Dir: *profDir, Interval: *profInterval, CPUDuration: *profCPU})
		if err != nil {
			return err
		}
		a.prof = p
		slog.Info("continuous profiler on", "component", "marauder",
			"dir", *profDir, "interval", *profInterval, "cpu", *profCPU)
	}
	if *sloDefaults {
		sloObjs = append(slo.DefaultObjectives(), sloObjs...)
	}
	if len(sloObjs) > 0 {
		trk, err := slo.New(slo.Config{Objectives: sloObjs, TickInterval: *sloTick})
		if err != nil {
			return err
		}
		a.slos = trk
		slog.Info("slo tracking on", "component", "marauder",
			"objectives", len(sloObjs), "tick", *sloTick)
	}
	if *ckptDir != "" {
		a.ckpt = &obs.Checkpointer{
			Dir:      *ckptDir,
			Interval: ckptEvery,
			Source:   func() *obs.Store { return a.eng.Store() },
		}
		a.ckpt.SetGeneration(recoveredGen)
	}

	if *agentsListen != "" {
		// The distributed capture plane: remote agents stream batches in
		// and ingest under per-agent source names, with resumable cursors
		// persisted alongside the observation checkpoints.
		srvCfg := capwire.ServerConfig{
			Ingest: func(agentID string, caps []sniffer.Capture) int {
				return a.eng.IngestCapturesFrom("agent:"+agentID, caps)
			},
			Logf: func(format string, args ...any) {
				slog.Info(fmt.Sprintf(format, args...), "component", "capwire")
			},
		}
		cursorPath := ""
		if *ckptDir != "" {
			cursorPath = filepath.Join(*ckptDir, capwire.CursorFileName)
			cursors, gen, err := capwire.LoadCursors(cursorPath)
			if err != nil {
				return err
			}
			if len(cursors) > 0 {
				switch {
				case gen > recoveredGen:
					// The cursor file outruns the restored observation store
					// (recovery fell back to an older checkpoint). Seeding
					// these stale-forward cursors would make the server dedup
					// replayed batches whose ingested frames were lost with
					// the newer store — silent permanent loss. Discard them:
					// the server starts each agent at cursor 0 and the
					// clients renumber their retained tails from cursor+1,
					// so everything still held agent-side is re-ingested.
					slog.Warn("agent cursors outrun the restored store; discarding them",
						"component", "marauder", "cursorGeneration", gen, "storeGeneration", recoveredGen)
					cursors = nil
				case gen < recoveredGen:
					// A lagging cursor file only widens the replay window:
					// the agents re-send a tail the server dedups
					// (at-least-once delivery, exactly-once ingest), so warn
					// and continue.
					slog.Warn("agent cursors from an older checkpoint generation",
						"component", "marauder", "cursorGeneration", gen, "storeGeneration", recoveredGen)
				}
				if len(cursors) > 0 {
					slog.Info("agent cursors restored", "component", "marauder",
						"path", cursorPath, "agents", len(cursors), "generation", gen)
				}
			}
			srvCfg.Cursors = cursors
		}
		capSrv, err := capwire.NewServer(srvCfg)
		if err != nil {
			return err
		}
		lis, err := net.Listen("tcp", *agentsListen)
		if err != nil {
			return err
		}
		go func() {
			if err := capSrv.Serve(lis); err != nil {
				slog.Error("agent server failed", "component", "marauder", "err", err)
			}
		}()
		defer capSrv.Close()
		a.agents = capSrv
		if a.ckpt != nil && cursorPath != "" {
			a.ckpt.AfterCheckpoint = func(gen uint64) {
				if err := capSrv.SaveCursors(cursorPath, gen); err != nil {
					slog.Warn("agent cursor save failed", "component", "marauder", "err", err)
				}
			}
		}
		slog.Info("capture agent plane listening", "component", "marauder",
			"addr", lis.Addr().String(), "localCapture", *localCapture)
	}

	if *once {
		return runOnce(a, *algo)
	}
	return serve(a, *algo, *addr, *speedup, *pprofOn)
}

func runOnce(a *attack, algo string) error {
	// With the profiler on, one capture cycle runs concurrently with the
	// pass so the CPU profile covers the actual workload; the cycle is cut
	// short when the work finishes first.
	if a.prof != nil {
		profCtx, profStop := context.WithCancel(context.Background())
		profDone := make(chan struct{})
		started := make(chan struct{})
		go func() {
			if err := a.prof.CycleSignaled(profCtx, started); err != nil {
				slog.Warn("profiler cycle failed", "component", "marauder", "err", err)
			}
			close(profDone)
		}()
		<-started
		defer func() {
			profStop()
			<-profDone
			if attr := a.prof.Attribution(); attr != nil {
				if len(attr.TopFunctions) > 0 {
					hot := attr.TopFunctions[0]
					fmt.Printf("profile: %d samples, hottest %s (%.1f%% flat), artifacts in %s\n",
						attr.Samples, hot.Name, 100*hot.FlatShare, a.prof.Status().Dir)
				} else {
					fmt.Printf("profile: %d samples (workload too brief for attribution), artifacts in %s\n",
						attr.Samples, a.prof.Status().Dir)
				}
			}
			if err := a.prof.Close(); err != nil {
				slog.Warn("profiler close failed", "component", "marauder", "err", err)
			}
		}()
	}
	total := a.route.TotalDuration()
	a.captureUpTo(0, total)
	a.drainHeld()
	// One pass has no sampling loop: take a single end-of-run flight
	// record sample so the file still captures the final state.
	if a.rec != nil {
		defer func() {
			if err := a.rec.Close(); err != nil {
				slog.Warn("flight record close failed", "component", "marauder", "err", err)
			}
		}()
		if err := a.rec.Sample(); err != nil {
			slog.Warn("flight record sample failed", "component", "marauder", "err", err)
		}
	}
	if a.ckpt != nil {
		if path, err := a.ckpt.CheckpointNow(); err != nil {
			slog.Warn("final checkpoint failed", "component", "marauder", "err", err)
		} else {
			slog.Info("final checkpoint written", "component", "marauder", "path", path)
		}
	}
	if a.trains {
		if err := a.eng.RefreshKnowledge(); err != nil {
			return err
		}
	}
	points, err := a.eng.Track(a.victim.MAC, 0, total, 60)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		return errors.New("no fixes produced")
	}
	var sum float64
	for _, p := range points {
		truth := a.route.PosAt(p.TimeSec)
		e := core.Error(p.Est, truth)
		sum += e
		fmt.Printf("t=%6.0fs k=%2d est=%v truth=%v err=%.1fm\n",
			p.TimeSec, p.Est.K, p.Est.Pos, truth, e)
	}
	stats := a.eng.Stats()
	fmt.Printf("fixes=%d average error=%.2fm algorithm=%s cache=%d/%d hits\n",
		len(points), sum/float64(len(points)), algo, stats.CacheHits, stats.Fixes)
	if p, ok := a.eng.Tracer().Explain(a.victim.MAC.String()); ok {
		fmt.Printf("last fix explained: trace=%s k=%d area=%.1fm² theorem2=%.1fm² cacheHit=%v stages=%v\n",
			p.TraceID, p.K, p.IntersectedAreaM2, p.Theorem2AreaM2, p.CacheHit, p.StagesMs)
	}
	return nil
}

func serve(a *attack, algo, addr string, speedup float64, pprofOn bool) error {
	state := mapserver.NewState()
	state.APsFromKnowledge(a.know)
	state.SetTracer(a.eng.Tracer())
	state.SetStatsSource(func() any {
		st := a.eng.Stats()
		return map[string]any{
			"algo":       algo,
			"engine":     st,
			"shardLens":  a.eng.Store().ShardLens(),
			"obsDevices": len(a.eng.Store().Devices()),
			"trace":      a.eng.Tracer().Stats(),
		}
	})
	// simNow mirrors the serve loop's simulated clock for the health
	// endpoint, which runs on HTTP goroutines.
	var simNow atomic.Uint64
	state.SetHealthSource(func() mapserver.Health {
		return a.health(math.Float64frombits(simNow.Load()))
	})
	if a.slos != nil {
		state.SetSLOSource(func() any { return a.slos.Report() })
	}
	if a.prof != nil {
		state.SetProfileSource(func() any {
			return map[string]any{
				"enabled":     true,
				"status":      a.prof.Status(),
				"attribution": a.prof.Attribution(),
			}
		})
	}
	if a.agents != nil {
		state.SetAgentsSource(func() any { return a.agents.Report() })
	}

	srv := &http.Server{Addr: addr, Handler: mapserver.NewHandler(state, mapserver.HandlerOpts{Pprof: pprofOn})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	url := "http://" + addr
	if strings.HasPrefix(addr, ":") {
		url = "http://localhost" + addr
	}
	slog.Info("the Marauder's map is live",
		"component", "marauder", "url", url, "algo", algo,
		"device", a.victim.MAC.String(), "speedup", speedup)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if a.ckpt != nil && a.ckptPeriodic {
		go a.ckpt.Run(ctx)
	}
	recDone := make(chan struct{})
	if a.rec != nil {
		go func() { a.rec.Run(ctx); close(recDone) }()
	} else {
		close(recDone)
	}
	profDone := make(chan struct{})
	if a.prof != nil {
		go func() { a.prof.Run(ctx); close(profDone) }()
	} else {
		close(profDone)
	}
	if a.slos != nil {
		go a.slos.Run(ctx)
	}

	total := a.route.TotalDuration()
	simTime := 0.0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: flush delayed batches and snapshot the
			// store one last time so a restart resumes from here.
			a.drainHeld()
			if a.ckpt != nil {
				if path, err := a.ckpt.CheckpointNow(); err != nil {
					slog.Warn("final checkpoint failed", "component", "marauder", "err", err)
				} else {
					slog.Info("final checkpoint written", "component", "marauder", "path", path)
				}
			}
			// The recorder's Run takes its final sample on ctx cancel;
			// wait for it, then seal the file.
			<-recDone
			if err := a.rec.Close(); err != nil {
				slog.Warn("flight record close failed", "component", "marauder", "err", err)
			}
			<-profDone
			if err := a.prof.Close(); err != nil {
				slog.Warn("profiler close failed", "component", "marauder", "err", err)
			}
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			return srv.Shutdown(shutdownCtx)
		case err := <-errCh:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case <-ticker.C:
			next := simTime + speedup/2
			if next > total {
				next = total
			}
			if a.localCapture {
				a.captureUpTo(simTime, next)
			}
			simTime = next
			simNow.Store(math.Float64bits(simTime))
			a.sniffer.UpdateHealthMetrics(simTime)
			if a.trains {
				if err := a.eng.RefreshKnowledge(); err != nil {
					// Not enough data yet; the next tick retries.
					slog.Debug("knowledge refresh deferred",
						"component", "marauder", "algo", algo, "err", err)
					continue
				}
			}
			// One full frame of the map: every observed device localized
			// across the engine's worker pool.
			frame := a.eng.Snapshot(simTime - 22)
			state.PublishFrame(frame, func(m dot11.MAC) (geom.Point, bool) {
				if m == a.victim.MAC {
					return a.route.PosAt(simTime - 22), true
				}
				return geom.Point{}, false
			})
			if simTime >= total {
				simTime = 0 // loop the walk
				a.eng.ResetObservations()
				a.store = a.eng.Store()
			}
		}
	}
}
