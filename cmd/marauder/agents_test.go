package main

import (
	"strings"
	"testing"

	"repro/internal/capwire"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

// TestRunRejectsDanglingFlags: a flag that only tunes a feature the
// command line never enabled must fail loudly, naming both flags.
func TestRunRejectsDanglingFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-chaos-seed", "7", "-once"}, "-chaos"},
		{[]string{"-checkpoint-interval", "1s", "-once"}, "-checkpoint-dir"},
		{[]string{"-ftdc-interval", "1s", "-once"}, "-ftdc-dir"},
		{[]string{"-trace-sample", "0.5", "-once"}, "-trace"},
		{[]string{"-slo-tick", "1s", "-once"}, "-slo"},
		{[]string{"-local-capture=false"}, "-agents-listen"},
		{[]string{"-agents-listen", "127.0.0.1:0", "-once"}, "-once"},
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("run(%v) accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) error %q does not mention %s", c.args, err, c.want)
		}
	}
}

// TestDisabledCheckpointIntervalRuns: zero/negative -checkpoint-interval
// means "no periodic checkpoints", not an invalid duration — the run
// still writes its final checkpoint.
func TestDisabledCheckpointIntervalRuns(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-once", "-aps", "40", "-seed", "3",
		"-checkpoint-dir", dir, "-checkpoint-interval", "0s",
	})
	if err != nil {
		t.Fatalf("run with disabled checkpoint interval: %v", err)
	}
}

// TestAgentIngestFlowsToEngineHealth exercises the marauder-side wiring
// without the serve loop: a capwire server ingesting into the engine
// under per-agent source names, visible in engine health and the attack's
// composed /api/health payload.
func TestAgentIngestFlowsToEngineHealth(t *testing.T) {
	a, err := buildAttack(5, 60, "mloc")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := capwire.NewServer(capwire.ServerConfig{
		Ingest: func(agentID string, caps []sniffer.Capture) int {
			return a.eng.IngestCapturesFrom("agent:"+agentID, caps)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	a.agents = srv

	// Feed a frame batch through the same simulated capture path the
	// agent binary uses, bypassing TCP: the wiring under test is
	// ingest-source accounting, not the wire (capwire's own tests own
	// that).
	a.captureUpTo(0, 120)
	caps := captureWindow(a, 0, 120)
	if len(caps) == 0 {
		t.Fatal("simulated capture produced no frames")
	}
	if n := a.eng.IngestCapturesFrom("agent:lab-1", caps); n == 0 {
		t.Fatal("agent ingest stored nothing")
	}

	eh := a.eng.Health()
	if _, ok := eh.Sources["agent:lab-1"]; !ok {
		t.Fatalf("agent source missing from engine health: %v", eh.Sources)
	}
	if _, ok := eh.Sources["local"]; !ok {
		t.Fatalf("local source missing from engine health: %v", eh.Sources)
	}

	h := a.health(120)
	detail, ok := h.Detail.(map[string]any)
	if !ok {
		t.Fatalf("health detail shape: %T", h.Detail)
	}
	if _, ok := detail["agents"]; !ok {
		t.Fatal("health detail missing agents totals")
	}

}

// captureWindow reruns the simulation to produce a standalone capture
// batch, the same way cmd/capagent generates its stream.
func captureWindow(a *attack, from, to float64) []sniffer.Capture {
	seq := uint16(from/30) + 1
	var batch []sniffer.Capture
	for ts := from; ts < to; ts += 30 {
		pos := a.victim.PosAt(ts)
		batch = a.sniffer.CaptureAllInto(batch, sim.ScanBurst(a.world, a.victim, ts, pos, seq))
		seq++
	}
	return batch
}
