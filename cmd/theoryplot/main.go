// Command theoryplot regenerates the paper's analytical figures (Figs 2, 3,
// 5, 6) as text tables or CSV.
//
// Usage:
//
//	theoryplot [-fig 2|3|4|5|6|all] [-csv] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("theoryplot failed", "component", "theoryplot", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("theoryplot", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 6 or all")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	trials := fs.Int("trials", 3000, "Monte-Carlo trials for cross-checks")
	seed := fs.Int64("seed", 1, "random seed")
	rho := fs.Float64("rho", 5, "AP density for figure 3")
	if err := fs.Parse(args); err != nil {
		return err
	}

	gens := map[string]func() (experiments.Table, error){
		"2": func() (experiments.Table, error) { return experiments.Fig2(*trials, *seed) },
		"3": func() (experiments.Table, error) { return experiments.Fig3(*rho) },
		"4": func() (experiments.Table, error) { return experiments.Fig4(*seed) },
		"5": func() (experiments.Table, error) { return experiments.Fig5(*trials, *seed) },
		"6": func() (experiments.Table, error) { return experiments.Fig6(*trials*20, *seed) },
	}
	order := []string{"2", "3", "4", "5", "6"}
	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		if _, ok := gens[*fig]; !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		selected = []string{*fig}
	}
	for _, id := range selected {
		t, err := gens[id]()
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	return nil
}
