package main

import "testing"

func TestRunSingleFig(t *testing.T) {
	if err := run([]string{"-fig", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-fig", "6", "-csv", "-trials", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("want error for unknown figure")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("want flag parse error")
	}
}
