// Command wardrive simulates the training phase of the digital Marauder's
// map: drive a route through a simulated campus collecting training tuples
// (GPS location + APs heard), estimate AP locations with AP-Loc's
// disc-intersection stage, and export the resulting AP database as
// WiGLE-style CSV.
//
// Usage:
//
//	wardrive [-aps 300] [-seed 1] [-interval 6] [-gps-noise 3]
//	         [-radius 130] [-out aps.csv]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/apdb"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/wardrive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("wardrive failed", "component", "wardrive", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wardrive", flag.ContinueOnError)
	nAPs := fs.Int("aps", 300, "number of deployed APs")
	seed := fs.Int64("seed", 1, "random seed")
	interval := fs.Float64("interval", 6, "seconds between training samples")
	gpsNoise := fs.Float64("gps-noise", 3, "GPS noise standard deviation, metres")
	radius := fs.Float64("radius", 130, "theoretical upper bound on AP range, metres")
	out := fs.String("out", "", "write estimated AP database as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := sim.NewWorld(*seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        *nAPs,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return err
	}
	w.APs = aps

	var waypoints []geom.Point
	row := 0
	for y := -300.0; y <= 300; y += 100 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-300, y), geom.Pt(300, y))
		} else {
			waypoints = append(waypoints, geom.Pt(300, y), geom.Pt(-300, y))
		}
		row++
	}
	route := sim.NewRouteWalk(waypoints, 10)
	collector := wardrive.Collector{
		World:        w,
		GPSNoiseStdM: *gpsNoise,
		RNG:          w.RNG(),
	}
	tuples := collector.CollectAlong(route, *interval)
	fmt.Printf("collected %d training tuples over %.0f s of driving\n",
		len(tuples), route.TotalDuration())

	know, err := core.EstimateAPLocations(tuples, core.APLocConfig{TrainingRadius: *radius})
	if err != nil {
		return err
	}

	var sumErr float64
	located := 0
	for _, ap := range w.APs {
		in, ok := know.Get(ap.MAC)
		if !ok {
			continue
		}
		sumErr += in.Pos.Dist(ap.Pos)
		located++
	}
	fmt.Printf("estimated %d/%d AP locations, average error %.1f m\n",
		located, len(w.APs), sumErr/float64(located))

	if *out == "" {
		return nil
	}
	db := apdb.New()
	for _, in := range know.All() {
		db.Add(apdb.Entry{BSSID: in.BSSID, Pos: in.Pos, MaxRange: in.MaxRange})
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	proj := geo.NewProjection(geo.LatLon{Lat: 42.6555, Lon: -71.3254})
	if err := db.ExportCSV(f, proj); err != nil {
		return err
	}
	fmt.Printf("wrote %d APs to %s\n", db.Len(), *out)
	return f.Close()
}
