package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPrintsAndExports(t *testing.T) {
	out := filepath.Join(t.TempDir(), "aps.csv")
	if err := run([]string{"-aps", "120", "-interval", "8", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.HasPrefix(content, "bssid,ssid,lat,lon,range_m") {
		t.Errorf("csv header missing:\n%.100s", content)
	}
	if strings.Count(content, "\n") < 50 {
		t.Errorf("too few exported rows")
	}
}

func TestRunNoExport(t *testing.T) {
	if err := run([]string{"-aps", "100", "-interval", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-x"}); err == nil {
		t.Fatal("want flag error")
	}
}
