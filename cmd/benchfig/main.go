// Command benchfig regenerates every evaluation figure of the paper
// (Figs 2-6 analytical, Figs 8-17 experimental) as text tables or CSV —
// the reproduction's "make figures" entry point.
//
// Usage:
//
//	benchfig [-fig all|2|3|4|5|6|8|9|10|12|13|14|15|16|17] [-csv] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		slog.Error("benchfig failed", "component", "benchfig", "err", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure id (2..17), an extension name (defenses, positioning, channel-plans, centroid-estimators, radius-estimators), or all")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 3000, "Monte-Carlo trials for analytical cross-checks")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var campus *experiments.CampusRun
	getCampus := func() (*experiments.CampusRun, error) {
		if campus == nil {
			var err error
			campus, err = experiments.RunCampus(experiments.CampusConfig{Seed: *seed})
			if err != nil {
				return nil, err
			}
		}
		return campus, nil
	}
	campusFig := func(f func(*experiments.CampusRun) (experiments.Table, error)) func() (experiments.Table, error) {
		return func() (experiments.Table, error) {
			run, err := getCampus()
			if err != nil {
				return experiments.Table{}, err
			}
			return f(run)
		}
	}

	gens := map[string]func() (experiments.Table, error){
		"2":  func() (experiments.Table, error) { return experiments.Fig2(*trials, *seed) },
		"3":  func() (experiments.Table, error) { return experiments.Fig3(5) },
		"4":  func() (experiments.Table, error) { return experiments.Fig4(*seed) },
		"5":  func() (experiments.Table, error) { return experiments.Fig5(*trials, *seed) },
		"6":  func() (experiments.Table, error) { return experiments.Fig6(*trials*20, *seed) },
		"8":  func() (experiments.Table, error) { return experiments.Fig8(1000, *seed) },
		"9":  func() (experiments.Table, error) { return experiments.Fig9(200, *seed) },
		"10": func() (experiments.Table, error) { return experiments.Figs10And11(150, 60, *seed) },
		"12": experiments.Fig12,
		"13": campusFig(experiments.Fig13),
		"14": campusFig(experiments.Fig14),
		"15": campusFig(experiments.Fig15),
		"16": campusFig(experiments.Fig16),
		"17": campusFig(experiments.Fig17),
		// Extensions and ablations beyond the paper's figures.
		"defenses": func() (experiments.Table, error) { return experiments.DefenseEvaluation(*seed) },
		"positioning": func() (experiments.Table, error) {
			return experiments.PositioningComparison(200, *seed)
		},
		"channel-plans": func() (experiments.Table, error) {
			return experiments.AblationChannelPlans(1000, *seed)
		},
		"centroid-estimators": func() (experiments.Table, error) {
			return experiments.AblationCentroidEstimators(300, *seed)
		},
		"radius-estimators": func() (experiments.Table, error) {
			return experiments.AblationRadiusEstimators(*seed)
		},
		"fleet": func() (experiments.Table, error) { return experiments.FleetCoverage(*seed) },
		"propagation": func() (experiments.Table, error) {
			return experiments.AblationPropagation(400, *seed)
		},
	}
	order := []string{
		"2", "3", "4", "5", "6", "8", "9", "10", "12", "13", "14", "15", "16", "17",
		"defenses", "positioning", "channel-plans", "centroid-estimators", "radius-estimators",
		"fleet", "propagation",
	}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		if _, ok := gens[*fig]; !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		selected = []string{*fig}
	}
	for _, id := range selected {
		t, err := gens[id]()
		if err != nil {
			return fmt.Errorf("fig %s: %w", id, err)
		}
		if *csv {
			fmt.Fprint(out, t.CSV())
		} else {
			fmt.Fprintln(out, t.String())
		}
	}
	return nil
}
