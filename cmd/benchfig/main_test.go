package main

import (
	"os"
	"testing"
)

func TestRunSingleAnalyticalFig(t *testing.T) {
	if err := run([]string{"-fig", "5", "-trials", "100"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunSystemFig(t *testing.T) {
	if err := run([]string{"-fig", "12", "-csv"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run([]string{"-fig", "7"}, os.Stdout); err == nil {
		t.Fatal("want error: the paper has no figure 7 to regenerate")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("want flag parse error")
	}
}
