package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAgentsFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-agents-wire-chaos"}, "-agents"},
		{[]string{"-agents-wire-seed", "3"}, "-agents-wire-chaos"},
		{[]string{"-agents-out", "x.json"}, "-agents"},
		{[]string{"-chaos-seed", "3"}, "-chaos"},
		{[]string{"-agents", "-1"}, "-agents"},
	}
	for _, c := range cases {
		_, err := parseFlags(c.args)
		if err == nil {
			t.Errorf("parseFlags(%v) accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseFlags(%v) error %q does not mention %s", c.args, err, c.want)
		}
	}
}

// TestSoakThroughAgents runs a short soak through the loopback agent
// plane under wire chaos: the books must balance (accountingOk), the
// forced mid-run bounce must register as a resume, and the standalone
// agents file must match the embedded section.
func TestSoakThroughAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	agentsOut := filepath.Join(t.TempDir(), "agents.json")
	cfg, err := parseFlags([]string{
		"-devices", "50", "-aps", "60", "-seed", "2",
		"-duration", "3s", "-speedup", "1200",
		"-prof=false", "-ftdc-dir", t.TempDir(),
		"-agents", "2", "-agents-wire-chaos", "-agents-wire-seed", "7",
		"-agents-out", agentsOut,
	})
	if err != nil {
		t.Fatal(err)
	}
	summary, err := soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := summary.Agents
	if a == nil {
		t.Fatal("summary has no agents section")
	}
	if a.Agents != 2 || a.FramesIngested == 0 || a.BatchesSent == 0 {
		t.Fatalf("agent fleet idle: %+v", a)
	}
	if !a.AccountingOk {
		t.Fatalf("exactly-once accounting violated: %+v", a)
	}
	if a.BatchesIngested != a.BatchesSent {
		t.Fatalf("batches ingested %d != sent %d", a.BatchesIngested, a.BatchesSent)
	}
	if a.Resumes < 1 {
		t.Fatalf("forced bounce produced no resume: %+v", a)
	}
	if summary.FramesIngested != a.FramesIngested+summary.Quarantined {
		// Engine-accepted + quarantined frames must cover everything the
		// wire delivered (quarantine happens inside IngestCapturesFrom, so
		// server FramesIngested >= engine-accepted).
		t.Logf("note: engine ingested %d, wire ingested %d, quarantined %d",
			summary.FramesIngested, a.FramesIngested, summary.Quarantined)
	}

	data, err := os.ReadFile(agentsOut)
	if err != nil {
		t.Fatalf("agents-out not written: %v", err)
	}
	var standalone agentsSummary
	if err := json.Unmarshal(data, &standalone); err != nil {
		t.Fatal(err)
	}
	if standalone.FramesIngested != a.FramesIngested || standalone.Resumes != a.Resumes {
		t.Fatalf("standalone agents file diverges: %+v vs %+v", standalone, a)
	}
	if cfg.Duration != 3*time.Second {
		t.Fatalf("duration parse: %v", cfg.Duration)
	}
}
