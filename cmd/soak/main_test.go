package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/ftdc"
)

// readBench decodes a BENCH summary file.
func readBench(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	return doc
}

func TestSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping wall-clock soak")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	ftdcDir := filepath.Join(dir, "ftdc")
	err := run([]string{
		"-duration", "1200ms", "-devices", "40", "-aps", "60",
		"-speedup", "1200", "-tick", "50ms", "-frame-every", "200ms",
		"-sim-start", "11h",
		"-ftdc-dir", ftdcDir, "-ftdc-interval", "200ms",
		"-out", out, "-pr", "99", "-run-name", "test_run",
	})
	if err != nil {
		t.Fatal(err)
	}

	doc := readBench(t, out)
	if doc["pr"].(float64) != 99 {
		t.Errorf("pr = %v, want 99", doc["pr"])
	}
	runs := doc["runs"].(map[string]any)
	rs, ok := runs["test_run"].(map[string]any)
	if !ok {
		t.Fatalf("runs.test_run missing: %v", runs)
	}
	if rs["framesIngested"].(float64) <= 0 {
		t.Error("soak ingested no frames")
	}
	if rs["simSeconds"].(float64) <= 0 {
		t.Error("simulated clock did not advance")
	}
	fix := rs["fix"].(map[string]any)
	if fix["count"].(float64) <= 0 {
		t.Error("no fix latency samples")
	}

	// The flight record is the run's primary artifact: it must decode and
	// carry both the rig's own series and the runtime sampler's.
	info := rs["ftdc"].(map[string]any)
	path := info["path"].(string)
	chunks, err := ftdc.ReadFile(path)
	if err != nil {
		t.Fatalf("decoding flight record: %v", err)
	}
	if len(chunks) == 0 || len(chunks[0].Samples) == 0 {
		t.Fatal("flight record is empty")
	}
	names := map[string]bool{}
	for _, c := range chunks {
		for _, col := range c.Columns {
			names[col.Name] = true
		}
	}
	for _, want := range []string{
		ftdc.TimeColumn,
		"soak_frames_delivered_total",
		"soak_sim_time_seconds",
		"marauder_process_rss_bytes",
		"marauder_process_goroutines",
	} {
		if !names[want] {
			t.Errorf("flight record missing column %s", want)
		}
	}
}

func TestMergeMicroAndRunPreservation(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(out, []byte(`{"runs":{"existing":{"framesIngested":7}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	micro := filepath.Join(dir, "micro.json")
	if err := os.WriteFile(micro, []byte(`{"grid_speedup_1e6": 600.0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-duration", "0", "-out", out, "-pr", "7", "-merge-micro", micro})
	if err != nil {
		t.Fatal(err)
	}
	doc := readBench(t, out)
	if doc["micro"].(map[string]any)["grid_speedup_1e6"].(float64) != 600 {
		t.Errorf("micro section not merged: %v", doc["micro"])
	}
	runs := doc["runs"].(map[string]any)
	if runs["existing"].(map[string]any)["framesIngested"].(float64) != 7 {
		t.Errorf("merge clobbered an existing run: %v", runs)
	}
}

func TestMergeExtraSections(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(out, []byte(`{"runs":{"existing":{"framesIngested":7}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	churn := filepath.Join(dir, "churn.json")
	if err := os.WriteFile(churn, []byte(`{"kernel_speedup": 5.2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-duration", "0", "-out", out, "-pr", "8", "-merge-extra", "churn=" + churn})
	if err != nil {
		t.Fatal(err)
	}
	doc := readBench(t, out)
	if doc["churn"].(map[string]any)["kernel_speedup"].(float64) != 5.2 {
		t.Errorf("churn section not merged: %v", doc["churn"])
	}
	if doc["runs"].(map[string]any)["existing"].(map[string]any)["framesIngested"].(float64) != 7 {
		t.Errorf("merge clobbered an existing run: %v", doc["runs"])
	}

	// Malformed specs and reserved keys are rejected outright.
	for _, spec := range []string{"nofile", "=x", "churn=", "runs=" + churn} {
		if err := run([]string{"-duration", "0", "-out", out, "-merge-extra", spec}); err == nil {
			t.Errorf("want error for -merge-extra %q", spec)
		}
	}
	if err := run([]string{"-duration", "0", "-out", out, "-merge-extra", "churn=" + filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("want error for missing -merge-extra file")
	}
}

func TestMergeRejectsCorruptInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-duration", "0", "-out", bad}); err == nil ||
		!strings.Contains(err.Error(), "not JSON") {
		t.Errorf("want not-JSON error for corrupt -out, got %v", err)
	}
	good := filepath.Join(dir, "good.json")
	if err := run([]string{"-duration", "0", "-out", good, "-merge-micro", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("want error for missing -merge-micro file")
	}
}

func TestNewLocalizerRejectsTrainedAlgos(t *testing.T) {
	for _, algo := range []string{"aprad", "aploc", "nope"} {
		if _, err := newLocalizer(algo); err == nil {
			t.Errorf("newLocalizer(%q) should fail", algo)
		}
	}
	for _, algo := range []string{"mloc", "", "centroid", "closest"} {
		if _, err := newLocalizer(algo); err != nil {
			t.Errorf("newLocalizer(%q): %v", algo, err)
		}
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.RunName != "chaos_off" {
		t.Errorf("default run name = %q, want chaos_off", c.RunName)
	}
	if c.FTDCEvery != time.Second {
		t.Errorf("default ftdc interval = %v, want 1s", c.FTDCEvery)
	}
	c, err = parseFlags([]string{"-chaos"})
	if err != nil {
		t.Fatal(err)
	}
	if c.RunName != "chaos_on" {
		t.Errorf("chaos default run name = %q, want chaos_on", c.RunName)
	}
}
