// Command soak is the sustained-load rig: it synthesizes a campus/city
// world from internal/sim (hundreds to millions of devices with diurnal
// office traffic), replays it at Nx real time against a live in-process
// engine — optionally under the deterministic chaos fault plan — and
// records the whole run through the FTDC flight recorder
// (internal/telemetry/ftdc). At the end it folds the run into a versioned
// BENCH_<pr>.json summary: throughput, p50/p99 fix latency, map-frame
// latency, peak RSS/heap, max GC pause, fault and quarantine accounting,
// and a pointer to the .ftdc file for post-mortem decoding with ftdcdump.
//
// Usage:
//
//	soak [-devices 200] [-aps 300] [-seed 1] [-algo mloc|centroid|closest]
//	     [-duration 30s] [-speedup 600] [-sim-start 8h] [-sniffers 2]
//	     [-chaos] [-chaos-seed 1] [-workers 0] [-shards 0]
//	     [-ftdc-dir DIR] [-ftdc-interval 1s]
//	     [-prof] [-prof-dir DIR] [-stage-sample-every 1]
//	     [-mutex-profile-fraction 0] [-block-profile-rate 0]
//	     [-out BENCH_10.json] [-pr 10] [-run-name NAME] [-merge-micro FILE]
//	     [-merge-extra NAME=FILE] [-metrics-addr :9642]
//	     [-agents 0] [-agents-wire-chaos] [-agents-wire-seed 1] [-agents-out FILE]
//
// Each invocation is one run. -out merges the run into the summary file
// under runs.<run-name> (default chaos_off/chaos_on), so a chaos-off and
// a chaos-on invocation build one BENCH_<pr>.json between them;
// -merge-micro additionally embeds a microbenchmark JSON (as
// scripts/bench_store.sh emits) under "micro", and -merge-extra embeds
// any benchmark JSON under a caller-chosen key (scripts/bench_churn.sh
// uses churn=FILE) — one idiom produces every BENCH_<pr>.json. With
// -duration 0 the command only merges.
//
// The rig self-profiles by default (-prof): one continuous-profiler
// capture cycle runs concurrently with the load, and the summary gains a
// "profile" section — sample count, the decoded top-N hot functions, and
// the per-stage wall-clock shares from the marauder_stage_seconds
// histograms (the soak times every fix: -stage-sample-every defaults to
// 1 here, unlike the serving commands' 16).
//
// -agents N routes every capture batch through N loopback capwire
// agents (real TCP, real framing, cursor acks) instead of calling the
// engine directly, forcing one mid-run disconnect so the summary's
// resume count proves the cursor path; -agents-wire-chaos additionally
// runs the connections through the deterministic wire fault plan. The
// fleet's throughput, dedup/resume accounting and p99 batch latency
// land under "agents" in the run summary, and -agents-out FILE writes
// the same section standalone for a later -merge-extra agents=FILE.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
	"repro/internal/telemetry/ftdc"
	"repro/internal/telemetry/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("soak failed", "component", "soak", "err", err)
		os.Exit(1)
	}
}

// soakConfig is the parsed flag set.
type soakConfig struct {
	Devices     int
	APs         int
	Seed        int64
	Algo        string
	Duration    time.Duration
	Speedup     float64
	SimStart    time.Duration
	Sniffers    int
	Chaos       bool
	ChaosSeed   int64
	Workers     int
	Shards      int
	FTDCDir     string
	FTDCEvery   time.Duration
	Prof        bool
	ProfDir     string
	StageEvery  int
	MutexFrac   int
	BlockRate   int
	Out         string
	PR          int
	RunName     string
	MergeMicro  string
	MergeExtra  []string // NAME=FILE pairs, each embedded under key NAME
	Tick        time.Duration
	FrameEvery  time.Duration
	FixSample   int
	MetricsAddr string

	// Agents > 0 routes capture batches through that many loopback
	// capwire agents; AgentsOut writes the agents summary standalone.
	Agents          int
	AgentsWireChaos bool
	AgentsWireSeed  int64
	AgentsOut       string
}

// latencyStats is one latency distribution in the summary, in
// milliseconds. Quantiles come from the run's delta of the cumulative
// telemetry histogram (telemetry.QuantileFromCumulative); Max is the
// highest non-empty bucket bound — the tightest statement fixed buckets
// support.
type latencyStats struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// ftdcInfo points the summary at the run's flight-recorder artifact.
type ftdcInfo struct {
	Path    string `json:"path"`
	Chunks  uint64 `json:"chunks"`
	Samples uint64 `json:"samples"`
	Bytes   uint64 `json:"bytes"`
}

// runSummary is one soak run as recorded in BENCH_<pr>.json.
type runSummary struct {
	Devices          int     `json:"devices"`
	APs              int     `json:"aps"`
	Algo             string  `json:"algo"`
	Seed             int64   `json:"seed"`
	Chaos            bool    `json:"chaos"`
	Speedup          float64 `json:"speedup"`
	WallSeconds      float64 `json:"wallSeconds"`
	SimSeconds       float64 `json:"simSeconds"`
	FramesReplayed   uint64  `json:"framesReplayed"`
	FramesDelivered  uint64  `json:"framesDelivered"`
	FramesIngested   uint64  `json:"framesIngested"`
	FramesPerWallSec float64 `json:"framesPerWallSec"`
	Quarantined      uint64  `json:"quarantined"`

	Fix      latencyStats `json:"fix"`
	MapFrame latencyStats `json:"mapFrame"`

	PeakRSSBytes   float64 `json:"peakRssBytes"`
	PeakHeapBytes  float64 `json:"peakHeapBytes"`
	MaxGoroutines  float64 `json:"maxGoroutines"`
	MaxGCPauseMs   float64 `json:"maxGcPauseMs"`
	GCCyclesPerMin float64 `json:"gcCyclesPerMin"`

	FTDC    ftdcInfo         `json:"ftdc"`
	Faults  *faults.Counters `json:"faults,omitempty"`
	Profile *profileSummary  `json:"profile,omitempty"`
	Agents  *agentsSummary   `json:"agents,omitempty"`
}

// profileSummary is the run's self-profile: the decoded hot-function
// table from the concurrent CPU capture plus the per-stage cost shares
// from the marauder_stage_seconds histograms' sum deltas.
type profileSummary struct {
	Artifacts    string             `json:"artifacts"`
	CPUPath      string             `json:"cpuPath,omitempty"`
	Samples      int                `json:"samples"`
	TotalNanos   int64              `json:"totalNanos,omitempty"`
	TopFunctions []prof.HotFunc     `json:"topFunctions,omitempty"`
	StageSeconds map[string]float64 `json:"stageSeconds,omitempty"`
	StageShares  map[string]float64 `json:"stageShares,omitempty"`
}

func parseFlags(args []string) (soakConfig, error) {
	var c soakConfig
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.IntVar(&c.Devices, "devices", 200, "simulated device population")
	fs.IntVar(&c.APs, "aps", 300, "deployed APs")
	fs.Int64Var(&c.Seed, "seed", 1, "world seed (world, population and traffic are deterministic per seed)")
	fs.StringVar(&c.Algo, "algo", "mloc", "localization algorithm: mloc, centroid or closest")
	fs.DurationVar(&c.Duration, "duration", 30*time.Second, "wall-clock soak duration (0 = no run, merge only)")
	fs.Float64Var(&c.Speedup, "speedup", 600, "simulated seconds per wall second")
	fs.DurationVar(&c.SimStart, "sim-start", 8*time.Hour, "simulated clock at soak start (office traffic is diurnal; 8h = 08:00)")
	fs.IntVar(&c.Sniffers, "sniffers", 2, "sniffer fleet grid edge (k x k sites across the area)")
	fs.BoolVar(&c.Chaos, "chaos", false, "inject the aggressive fault plan during the soak")
	fs.Int64Var(&c.ChaosSeed, "chaos-seed", 1, "fault plan seed")
	fs.IntVar(&c.Workers, "workers", 0, "engine snapshot worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&c.Shards, "shards", 0, "observation store shard count (0 = GOMAXPROCS-rounded)")
	fs.StringVar(&c.FTDCDir, "ftdc-dir", "", "flight recorder output directory (empty = a fresh temp dir, path printed)")
	fs.DurationVar(&c.FTDCEvery, "ftdc-interval", time.Second, "flight recorder sampling interval")
	fs.BoolVar(&c.Prof, "prof", true, "self-profile the run and record a \"profile\" section in the summary")
	fs.StringVar(&c.ProfDir, "prof-dir", "", "profiler artifact directory (empty = a fresh temp dir)")
	fs.IntVar(&c.StageEvery, "stage-sample-every", 1, "time per-stage histograms every Nth fix (the soak times every fix by default)")
	fs.IntVar(&c.MutexFrac, "mutex-profile-fraction", 0, "sample 1/n of mutex contention events into the mutex profile (0 = off)")
	fs.IntVar(&c.BlockRate, "block-profile-rate", 0, "record goroutine blocking lasting >= n ns into the block profile (0 = off)")
	fs.StringVar(&c.Out, "out", "", "BENCH summary file to merge this run into (empty = print summary only)")
	fs.IntVar(&c.PR, "pr", 9, "PR number recorded in the summary")
	fs.StringVar(&c.RunName, "run-name", "", "summary key for this run (default chaos_off/chaos_on)")
	fs.StringVar(&c.MergeMicro, "merge-micro", "", "microbenchmark JSON (scripts/bench_store.sh output) to embed under \"micro\"")
	fs.Func("merge-extra", "NAME=FILE: embed FILE's JSON under top-level key NAME (repeatable)", func(s string) error {
		c.MergeExtra = append(c.MergeExtra, s)
		return nil
	})
	fs.DurationVar(&c.Tick, "tick", 100*time.Millisecond, "replay step")
	fs.DurationVar(&c.FrameEvery, "frame-every", 500*time.Millisecond, "full map-frame cadence")
	fs.IntVar(&c.FixSample, "fix-sample", 16, "devices individually fixed per frame tick for the fix-latency histogram")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve /metrics and /debug/vars on this address while the soak runs")
	fs.IntVar(&c.Agents, "agents", 0, "route capture batches through N loopback capwire agents (0 = ingest directly)")
	fs.BoolVar(&c.AgentsWireChaos, "agents-wire-chaos", false, "run the agent connections through the deterministic wire fault plan")
	fs.Int64Var(&c.AgentsWireSeed, "agents-wire-seed", 1, "wire fault plan seed")
	fs.StringVar(&c.AgentsOut, "agents-out", "", "also write the agents summary JSON standalone to this file (for -merge-extra agents=FILE)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if err := flagcheck.New(fs).
		Requires("agents-wire-chaos", "agents").
		Requires("agents-wire-seed", "agents-wire-chaos").
		Requires("agents-out", "agents").
		Requires("chaos-seed", "chaos").Err(); err != nil {
		return c, err
	}
	if c.Agents < 0 {
		return c, errors.New("-agents must be >= 0")
	}
	if c.RunName == "" {
		if c.Chaos {
			c.RunName = "chaos_on"
		} else {
			c.RunName = "chaos_off"
		}
	}
	if c.Duration > 0 {
		if c.Devices <= 0 || c.APs <= 0 {
			return c, errors.New("need -devices > 0 and -aps > 0")
		}
		if c.Speedup <= 0 || c.Tick <= 0 || c.FrameEvery <= 0 {
			return c, errors.New("need -speedup, -tick and -frame-every > 0")
		}
		if c.Sniffers <= 0 {
			c.Sniffers = 1
		}
	}
	return c, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if _, err := telemetry.SetupLogging(os.Stderr, "info", "text"); err != nil {
		return err
	}

	if cfg.MetricsAddr != "" {
		msrv := &http.Server{Addr: cfg.MetricsAddr, Handler: telemetry.Mux(telemetry.Default(), false)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("metrics server failed", "component", "soak", "addr", cfg.MetricsAddr, "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("metrics listening", "component", "soak", "addr", cfg.MetricsAddr)
	}

	var summary *runSummary
	if cfg.Duration > 0 {
		summary, err = soak(cfg)
		if err != nil {
			return err
		}
		pretty, _ := json.MarshalIndent(summary, "", "  ")
		fmt.Printf("%s\n", pretty)
	}
	if cfg.Out == "" {
		return nil
	}
	return mergeSummary(cfg, summary)
}

// area is the deployment square, sized so the default 300-AP density
// matches the paper's campus and grown with the population so a million
// devices is a city, not a mosh pit.
func area(devices int) (min, max geom.Point) {
	half := 350.0
	if devices > 2000 {
		half = 350 * math.Sqrt(float64(devices)/2000)
	}
	return geom.Pt(-half, -half), geom.Pt(half, half)
}

// soakWorld builds the deterministic world: uniformly deployed APs on the
// campus channel distribution, a device population with the realistic
// profile mix, and every 8th device walking a random-waypoint route
// instead of sitting at home (churning Γ, the cache and the spatial
// index the way a real crowd does).
func soakWorld(cfg soakConfig) (*sim.World, core.Knowledge, error) {
	w := sim.NewWorld(cfg.Seed)
	min, max := area(cfg.Devices)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N: cfg.APs, Min: min, Max: max, RangeMin: 70, RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return nil, core.Knowledge{}, err
	}
	w.APs = aps
	devs := sim.DefaultPopulation(cfg.Devices, min, max, w.RNG())
	simSpan := cfg.Duration.Seconds()*cfg.Speedup + cfg.SimStart.Seconds()
	for i, d := range devs {
		if i%8 == 0 {
			d.Mobility = sim.NewRandomWaypoint(min, max, 1.2, simSpan+3600, cfg.Seed+int64(i))
		}
		w.AddDevice(d)
	}
	infos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		infos = append(infos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	return w, core.NewKnowledge(infos), nil
}

// newLocalizer maps -algo to an untrained localizer; the soak measures
// the serving path, so the trained algorithms (which need a wardrive or
// LP training phase) are out of scope here.
func newLocalizer(algo string) (core.Localizer, error) {
	switch algo {
	case "mloc", "":
		return core.MLocalizer{}, nil
	case "centroid":
		return core.CentroidLocalizer{}, nil
	case "closest":
		return core.ClosestAPLocalizer{}, nil
	default:
		return nil, fmt.Errorf("unknown soak algorithm %q (want mloc, centroid or closest)", algo)
	}
}

// fleetFor places a k x k sniffer grid across the area so city-scale
// traffic is actually captured — one roof antenna cannot hear a whole
// city, which is exactly the fleet's reason to exist.
func fleetFor(k int, min, max geom.Point, plan *faults.Plan) *sniffer.Fleet {
	configs := make([]sniffer.Config, 0, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			configs = append(configs, sniffer.Config{
				Pos: geom.Pt(
					min.X+(float64(i)+0.5)*(max.X-min.X)/float64(k),
					min.Y+(float64(j)+0.5)*(max.Y-min.Y)/float64(k),
				),
				Chain:  rf.ChainLNA(),
				Plan:   dot11.DefaultPlan(),
				Faults: plan,
			})
		}
	}
	return sniffer.NewFleet(configs...)
}

// soakMetrics are the rig's own series, registered on the process
// registry so the flight recorder carries them next to the engine's.
type soakMetrics struct {
	replayed  *telemetry.Counter
	delivered *telemetry.Counter
	ingested  *telemetry.Counter
	simTime   *telemetry.Gauge
	located   *telemetry.Gauge
	fixSec    *telemetry.Histogram
	frameSec  *telemetry.Histogram
}

func newSoakMetrics(reg *telemetry.Registry) *soakMetrics {
	return &soakMetrics{
		replayed: reg.Counter("soak_frames_replayed_total",
			"TX events offered to the sniffer fleet.", nil),
		delivered: reg.Counter("soak_frames_delivered_total",
			"Captures delivered to the engine (post fault injection).", nil),
		ingested: reg.Counter("soak_frames_ingested_total",
			"Captures the engine accepted into the observation store.", nil),
		simTime: reg.Gauge("soak_sim_time_seconds",
			"Simulated clock of the replay.", nil),
		located: reg.Gauge("soak_frame_devices",
			"Devices located in the latest full map frame.", nil),
		fixSec: reg.Histogram("soak_fix_seconds",
			"Single-device Fix latency during the soak.", telemetry.LatencyBuckets(), nil),
		frameSec: reg.Histogram("soak_frame_seconds",
			"Full map-frame (Snapshot) latency during the soak.", telemetry.LatencyBuckets(), nil),
	}
}

// histDelta extracts the run's latency stats for one histogram series as
// the delta between the start and end registry snapshots, so a second run
// in the same process (tests) does not inherit the first run's samples.
func histDelta(start, end []telemetry.Sample, series string) latencyStats {
	var s0, s1 *telemetry.Sample
	for i := range start {
		if start[i].Series() == series {
			s0 = &start[i]
		}
	}
	for i := range end {
		if end[i].Series() == series {
			s1 = &end[i]
		}
	}
	if s1 == nil {
		return latencyStats{}
	}
	cum := s1.Cumulative
	count := s1.Count
	if s0 != nil {
		if d := telemetry.DeltaCumulative(s1.Cumulative, s0.Cumulative); d != nil {
			cum = d
			count -= s0.Count
		}
	}
	if count == 0 {
		return latencyStats{}
	}
	ls := latencyStats{Count: count}
	if p := telemetry.QuantileFromCumulative(s1.Bounds, cum, 0.50); !math.IsNaN(p) {
		ls.P50Ms = round4(p * 1e3)
	}
	if p := telemetry.QuantileFromCumulative(s1.Bounds, cum, 0.99); !math.IsNaN(p) {
		ls.P99Ms = round4(p * 1e3)
	}
	if bound, _, ok := telemetry.MaxNonEmptyBound(s1.Bounds, cum); ok {
		ls.MaxMs = round4(bound * 1e3)
	}
	return ls
}

// stageSumDeltas extracts the per-stage wall-clock seconds spent during
// the run: the sum delta of every marauder_stage_seconds{stage=...}
// histogram between the start and end registry snapshots.
func stageSumDeltas(start, end []telemetry.Sample) map[string]float64 {
	base := make(map[string]float64)
	for _, s := range start {
		if s.Name == "marauder_stage_seconds" {
			base[s.Labels] = s.Sum
		}
	}
	out := make(map[string]float64)
	for _, s := range end {
		if s.Name != "marauder_stage_seconds" {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(s.Labels, `stage="`), `"`)
		if d := s.Sum - base[s.Labels]; d > 0 {
			out[stage] = round4(d)
		}
	}
	return out
}

// maxColumn scans decoded FTDC chunks for the highest value of a column.
func maxColumn(chunks []*ftdc.Chunk, name string) float64 {
	best := math.Inf(-1)
	found := false
	for _, c := range chunks {
		for j, col := range c.Columns {
			if col.Name != name {
				continue
			}
			for i := range c.Samples {
				if v := c.Float(i, j); v > best {
					best, found = v, true
				}
			}
		}
	}
	if !found {
		return 0
	}
	return best
}

// soak runs one sustained-load replay and returns its summary.
func soak(cfg soakConfig) (*runSummary, error) {
	w, know, err := soakWorld(cfg)
	if err != nil {
		return nil, err
	}
	loc, err := newLocalizer(cfg.Algo)
	if err != nil {
		return nil, err
	}
	var plan *faults.Plan
	if cfg.Chaos {
		plan = faults.Aggressive(cfg.ChaosSeed)
	}
	eng, err := engine.New(engine.Config{
		Know:             know,
		Store:            obs.NewStoreShards(cfg.Shards),
		Localizer:        loc,
		WindowSec:        60,
		Workers:          cfg.Workers,
		StageSampleEvery: cfg.StageEvery,
	})
	if err != nil {
		return nil, err
	}
	amin, amax := area(cfg.Devices)
	fleet := fleetFor(cfg.Sniffers, amin, amax, plan)
	var injector *sniffer.FaultInjector
	if plan.Enabled() {
		injector = &sniffer.FaultInjector{Plan: plan}
	}

	reg := telemetry.Default()
	m := newSoakMetrics(reg)

	// With -agents the batches take the wire: engine-accepted counts come
	// back through the server's ingest callback instead of the direct
	// return value.
	var agents *agentPlane
	if cfg.Agents > 0 {
		agents, err = startAgentPlane(cfg, eng, func(n int) { m.ingested.Add(uint64(n)) })
		if err != nil {
			return nil, err
		}
		defer agents.close()
	}
	ingestBatch := func(batch []sniffer.Capture) (int, error) {
		if agents == nil {
			return eng.IngestCaptures(batch), nil
		}
		sendCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return 0, agents.deliver(sendCtx, batch)
	}
	rt := telemetry.NewRuntimeSampler(reg)

	ftdcDir := cfg.FTDCDir
	if ftdcDir == "" {
		if ftdcDir, err = os.MkdirTemp("", "soak-ftdc-"); err != nil {
			return nil, err
		}
	}
	rec, err := ftdc.New(ftdc.Config{
		Dir:          ftdcDir,
		Interval:     cfg.FTDCEvery,
		Registry:     reg,
		Runtime:      rt,
		FilePrefix:   "soak",
		ChunkSamples: 0,
	})
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // explicit cancel below; this covers the error returns
	recDone := make(chan struct{})
	go func() { rec.Run(ctx); close(recDone) }()

	// Self-profile: one capture cycle concurrent with the load, CPU
	// capture sized to sit inside the soak window.
	var profiler *prof.Profiler
	profDone := make(chan struct{})
	profDir := cfg.ProfDir
	if cfg.Prof {
		telemetry.SetProfileRates(cfg.MutexFrac, cfg.BlockRate)
		if profDir == "" {
			if profDir, err = os.MkdirTemp("", "soak-prof-"); err != nil {
				return nil, err
			}
		}
		cpuDur := cfg.Duration / 2
		if cpuDur > 10*time.Second {
			cpuDur = 10 * time.Second
		}
		profiler, err = prof.New(prof.Config{
			Dir:         profDir,
			Interval:    cfg.Duration + time.Hour, // one cycle per run
			CPUDuration: cpuDur,
			FilePrefix:  "soak",
		})
		if err != nil {
			return nil, err
		}
		started := make(chan struct{})
		go func() {
			if cerr := profiler.CycleSignaled(ctx, started); cerr != nil {
				slog.Warn("self-profile cycle failed", "component", "soak", "err", cerr)
			}
			close(profDone)
		}()
		<-started
	} else {
		close(profDone)
	}

	slog.Info("soak starting", "component", "soak",
		"devices", cfg.Devices, "aps", cfg.APs, "algo", cfg.Algo,
		"chaos", cfg.Chaos, "speedup", cfg.Speedup,
		"duration", cfg.Duration, "ftdc", rec.Path())

	var (
		replayed, delivered, ingested uint64
		fixes                         uint64
		startSnap                     = reg.Snapshot()
		wallStart                     = time.Now()
		simStart                      = cfg.SimStart.Seconds()
		simNow                        = simStart
		day                           = -1
		dayEvents                     []sim.TxEvent
		dayIdx                        int
		fixCursor                     int
		lastFrame                     = wallStart
	)
	// Weekday pattern matching the paper's trace: day 0 is a Friday.
	weekdayOf := func(d int) bool { wd := (5 + d) % 7; return wd >= 1 && wd <= 5 }

	ticker := time.NewTicker(cfg.Tick)
	defer ticker.Stop()
	deadline := wallStart.Add(cfg.Duration)
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		simNext := simStart + now.Sub(wallStart).Seconds()*cfg.Speedup
		// Cross day boundaries one at a time so every day's traffic is
		// generated exactly once, in order, from the world's single RNG.
		for {
			d := int(simNow / 86400)
			if d != day {
				day = d
				dayEvents = sim.OfficeTraceDay(w, day, weekdayOf(day), w.RNG())
				dayIdx = 0
			}
			dayEnd := float64(day+1) * 86400
			stop := math.Min(simNext, dayEnd)
			// Deliver every event with TimeSec in (simNow, stop].
			var batch []sniffer.Capture
			n := 0
			for dayIdx < len(dayEvents) && dayEvents[dayIdx].TimeSec <= stop {
				ev := dayEvents[dayIdx]
				dayIdx++
				if ev.TimeSec <= simNow {
					continue
				}
				n++
				if c, ok := fleet.TryCapture(ev); ok {
					batch = append(batch, c)
				}
			}
			replayed += uint64(n)
			m.replayed.Add(uint64(n))
			if injector != nil {
				batch = injector.Apply(batch)
			}
			delivered += uint64(len(batch))
			m.delivered.Add(uint64(len(batch)))
			got, ierr := ingestBatch(batch)
			if ierr != nil {
				return nil, ierr
			}
			if agents == nil {
				ingested += uint64(got)
				m.ingested.Add(uint64(got))
			}
			simNow = stop
			if stop >= simNext {
				break
			}
		}
		m.simTime.Set(simNow)

		if now.Sub(lastFrame) >= cfg.FrameEvery {
			lastFrame = now
			at := simNow - 30
			t0 := time.Now()
			frame := eng.Snapshot(at)
			m.frameSec.ObserveSince(t0)
			m.located.Set(float64(len(frame)))
			devs := eng.Store().Devices()
			for i := 0; i < cfg.FixSample && len(devs) > 0; i++ {
				dev := devs[fixCursor%len(devs)]
				fixCursor++
				t0 := time.Now()
				_, err := eng.Fix(dev, at)
				m.fixSec.ObserveSince(t0)
				if err == nil {
					fixes++
				}
			}
		}
	}
	// Flush fault-delayed batches so the accounting closes.
	if injector != nil {
		if held := injector.Drain(); len(held) > 0 {
			delivered += uint64(len(held))
			m.delivered.Add(uint64(len(held)))
			got, ierr := ingestBatch(held)
			if ierr != nil {
				return nil, ierr
			}
			if agents == nil {
				ingested += uint64(got)
				m.ingested.Add(uint64(got))
			}
		}
	}
	wall := time.Since(wallStart).Seconds()
	// Close the books on the agent plane: flush every client so all sent
	// frames are acked, then fold the fleet's accounting in.
	var agentsSec *agentsSummary
	if agents != nil {
		flushCtx, flushCancel := context.WithTimeout(context.Background(), 30*time.Second)
		agentsSec, err = agents.finish(flushCtx, wall)
		flushCancel()
		if err != nil {
			return nil, err
		}
		ingested = agents.ingested.Load()
	}
	cancel()
	<-recDone  // Run's final sample lands before Close seals the file
	<-profDone // the profile cycle is cut short if still capturing
	if err := rec.Close(); err != nil {
		return nil, err
	}
	endSnap := reg.Snapshot()

	chunks, derr := ftdc.ReadFile(rec.Path())
	if derr != nil {
		return nil, fmt.Errorf("decoding own flight record: %w", derr)
	}
	st := rec.Status()
	summary := &runSummary{
		Devices:          cfg.Devices,
		APs:              cfg.APs,
		Algo:             cfg.Algo,
		Seed:             cfg.Seed,
		Chaos:            cfg.Chaos,
		Speedup:          cfg.Speedup,
		WallSeconds:      round2(wall),
		SimSeconds:       round2(simNow - simStart),
		FramesReplayed:   replayed,
		FramesDelivered:  delivered,
		FramesIngested:   ingested,
		FramesPerWallSec: round2(float64(delivered) / wall),
		Quarantined:      eng.Stats().Quarantined,
		Fix:              histDelta(startSnap, endSnap, "soak_fix_seconds"),
		MapFrame:         histDelta(startSnap, endSnap, "soak_frame_seconds"),
		PeakRSSBytes:     maxColumn(chunks, "marauder_process_rss_bytes"),
		PeakHeapBytes:    maxColumn(chunks, "marauder_process_heap_bytes"),
		MaxGoroutines:    maxColumn(chunks, "marauder_process_goroutines"),
		MaxGCPauseMs:     round4(maxColumn(chunks, "marauder_process_gc_max_pause_seconds") * 1e3),
		FTDC: ftdcInfo{
			Path:    rec.Path(),
			Chunks:  st.Chunks,
			Samples: st.Samples,
			Bytes:   st.Bytes,
		},
	}
	if gcCycles := maxColumn(chunks, "marauder_process_gc_cycles_total"); wall > 0 {
		summary.GCCyclesPerMin = round2(gcCycles * 60 / wall)
	}
	if plan.Enabled() {
		c := plan.Counters()
		summary.Faults = &c
	}
	if agentsSec != nil {
		summary.Agents = agentsSec
		if cfg.AgentsOut != "" {
			if err := obs.WriteFileAtomic(cfg.AgentsOut, func(w io.Writer) error {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(agentsSec)
			}); err != nil {
				return nil, err
			}
			slog.Info("agents summary written", "component", "soak", "path", cfg.AgentsOut)
		}
	}
	if profiler != nil {
		ps := &profileSummary{Artifacts: profDir}
		if attr := profiler.Attribution(); attr != nil {
			ps.CPUPath = attr.Path
			ps.Samples = attr.Samples
			ps.TotalNanos = attr.TotalNanos
			ps.TopFunctions = attr.TopFunctions
		}
		ps.StageSeconds = stageSumDeltas(startSnap, endSnap)
		var total float64
		for _, v := range ps.StageSeconds {
			total += v
		}
		if total > 0 {
			ps.StageShares = make(map[string]float64, len(ps.StageSeconds))
			for k, v := range ps.StageSeconds {
				ps.StageShares[k] = round4(v / total)
			}
		}
		summary.Profile = ps
		_ = profiler.Close()
	}
	slog.Info("soak finished", "component", "soak",
		"wall_sec", summary.WallSeconds, "sim_sec", summary.SimSeconds,
		"delivered", delivered, "ingested", ingested, "fixes", fixes,
		"ftdc_samples", st.Samples, "ftdc_bytes", st.Bytes)
	return summary, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

// mergeSummary folds the run (and/or a microbenchmark file) into the
// versioned BENCH_<pr>.json: existing content is preserved, runs merge
// under their names, and the write is atomic so a crash cannot leave a
// torn summary.
func mergeSummary(cfg soakConfig, summary *runSummary) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(cfg.Out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", cfg.Out, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc["generated_by"] = "cmd/soak"
	doc["pr"] = cfg.PR
	doc["go"] = runtime.Version()
	runs, _ := doc["runs"].(map[string]any)
	if runs == nil {
		runs = map[string]any{}
	}
	if summary != nil {
		runs[cfg.RunName] = summary
	}
	doc["runs"] = runs
	if cfg.MergeMicro != "" {
		data, err := os.ReadFile(cfg.MergeMicro)
		if err != nil {
			return fmt.Errorf("reading -merge-micro: %w", err)
		}
		var micro any
		if err := json.Unmarshal(data, &micro); err != nil {
			return fmt.Errorf("-merge-micro %s is not JSON: %w", cfg.MergeMicro, err)
		}
		doc["micro"] = micro
	}
	for _, spec := range cfg.MergeExtra {
		name, file, ok := strings.Cut(spec, "=")
		if !ok || name == "" || file == "" {
			return fmt.Errorf("-merge-extra %q: want NAME=FILE", spec)
		}
		switch name {
		case "generated_by", "pr", "go", "runs", "micro":
			return fmt.Errorf("-merge-extra %q: key %q is reserved", spec, name)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return fmt.Errorf("reading -merge-extra %s: %w", name, err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("-merge-extra %s is not JSON: %w", file, err)
		}
		doc[name] = v
	}
	return obs.WriteFileAtomic(cfg.Out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
