package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/capwire"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/sniffer"
)

// agentsSummary is the distributed-capture section of the soak summary:
// the loopback agent fleet's throughput, resume and dedup accounting,
// merged into BENCH_<pr>.json under "agents" and gated by
// cmd/benchcompare.
type agentsSummary struct {
	Agents          int     `json:"agents"`
	BatchesSent     uint64  `json:"batchesSent"`
	BatchesIngested uint64  `json:"batchesIngested"`
	DedupedBatches  uint64  `json:"dedupedBatches"`
	DedupedFrames   uint64  `json:"dedupedFrames"`
	FramesIngested  uint64  `json:"framesIngested"`
	FramesPerSec    float64 `json:"framesPerSec"`
	ReplayedBatches uint64  `json:"replayedBatches"`
	DroppedBatches  uint64  `json:"droppedBatches"`
	Resumes         uint64  `json:"resumes"`
	P99BatchMs      float64 `json:"p99BatchMs"`
	// AccountingOk is the fleet-wide exactly-once invariant: every
	// received batch ingested or deduped, every received frame accounted.
	AccountingOk bool                 `json:"accountingOk"`
	WireFaults   *faults.WireCounters `json:"wireFaults,omitempty"`
}

// agentPlane routes the soak's capture batches through N loopback
// capwire agents instead of calling the engine directly, so the bench
// numbers exercise the real wire: encode, TCP, decode, cursor ack — and
// under -agents-wire-chaos, the full fault matrix.
type agentPlane struct {
	srv      *capwire.Server
	lis      net.Listener
	clients  []*capwire.Client
	plan     *faults.WirePlan
	ingested atomic.Uint64
	sent     uint64
	next     int
	bounceAt time.Time
	bounced  bool
}

// startAgentPlane brings up the loopback server and N streaming clients.
// onIngest observes every engine-accepted frame count (the soak's
// metrics hook).
func startAgentPlane(cfg soakConfig, eng *engine.Engine, onIngest func(n int)) (*agentPlane, error) {
	p := &agentPlane{}
	if cfg.AgentsWireChaos {
		p.plan = faults.AggressiveWire(cfg.AgentsWireSeed)
	}
	srv, err := capwire.NewServer(capwire.ServerConfig{
		Ingest: func(agentID string, caps []sniffer.Capture) int {
			n := eng.IngestCapturesFrom("agent:"+agentID, caps)
			p.ingested.Add(uint64(n))
			if onIngest != nil {
				onIngest(n)
			}
			return n
		},
	})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(lis)
	p.srv, p.lis = srv, lis

	for i := 0; i < cfg.Agents; i++ {
		ccfg := capwire.ClientConfig{
			Addr:         lis.Addr().String(),
			AgentID:      fmt.Sprintf("soak-%d", i+1),
			Overflow:     capwire.OverflowBlock,
			QueueBatches: 256,
		}
		if p.plan != nil {
			ccfg.WrapConn = p.plan.WrapConn
		}
		c, err := capwire.NewClient(ccfg)
		if err != nil {
			p.close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	// One forced disconnect mid-run guarantees the summary's resume count
	// proves the cursor path, even with wire chaos off.
	p.bounceAt = time.Now().Add(cfg.Duration / 2)
	slog.Info("agent plane up", "component", "soak",
		"agents", cfg.Agents, "addr", lis.Addr().String(),
		"wireChaos", cfg.AgentsWireChaos)
	return p, nil
}

// deliver streams one batch through the next agent, round-robin. Send
// blocks on backpressure (OverflowBlock), so the soak's generator slows
// down instead of losing accounting.
func (p *agentPlane) deliver(ctx context.Context, batch []sniffer.Capture) error {
	if len(batch) == 0 {
		return nil
	}
	idx := p.next % len(p.clients)
	c := p.clients[idx]
	p.next++
	if !p.bounced && time.Now().After(p.bounceAt) {
		p.bounced = true
		// Flush first so a session (and a non-zero cursor) certainly
		// exists — the reconnect then registers as a resume.
		if err := c.Flush(ctx); err == nil {
			c.Bounce()
			slog.Info("forced agent bounce", "component", "soak", "agent", idx+1)
		}
	}
	if err := c.Send(ctx, batch); err != nil {
		return fmt.Errorf("agent send: %w", err)
	}
	p.sent++
	return nil
}

// finish flushes every client, closes the plane, and folds the fleet's
// books into the summary section. wallSeconds is the soak's measured
// wall time for the throughput figure.
func (p *agentPlane) finish(ctx context.Context, wallSeconds float64) (*agentsSummary, error) {
	var replayed, dropped uint64
	for _, c := range p.clients {
		if err := c.Flush(ctx); err != nil {
			return nil, fmt.Errorf("agent flush: %w", err)
		}
		st := c.Stats()
		replayed += st.ReplayedBatches
		dropped += st.DroppedBatches
	}
	t := p.srv.Totals()
	sum := &agentsSummary{
		Agents:          len(p.clients),
		BatchesSent:     p.sent,
		BatchesIngested: t.BatchesIngested,
		DedupedBatches:  t.BatchesDeduped,
		DedupedFrames:   t.FramesDeduped,
		FramesIngested:  t.FramesIngested,
		ReplayedBatches: replayed,
		DroppedBatches:  dropped,
		Resumes:         t.Resumes,
		P99BatchMs:      t.P99BatchMs,
		AccountingOk:    t.AccountingOk,
	}
	if wallSeconds > 0 {
		sum.FramesPerSec = round2(float64(t.FramesIngested) / wallSeconds)
	}
	if p.plan != nil {
		c := p.plan.Counters()
		sum.WireFaults = &c
	}
	p.close()
	return sum, nil
}

func (p *agentPlane) close() {
	for _, c := range p.clients {
		_ = c.Close()
	}
	if p.srv != nil {
		_ = p.srv.Close()
	}
}
