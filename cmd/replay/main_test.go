package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "cap.pcap")
	apsPath := filepath.Join(dir, "aps.csv")
	obsPath := filepath.Join(dir, "obs.json")
	err := run([]string{
		"-demo", "-pcap", pcapPath, "-aps", apsPath, "-obs", obsPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{pcapPath, apsPath, obsPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Replaying the same artifacts without -demo also works, for every
	// replayable algorithm behind the engine's Localizer interface.
	for _, algo := range []string{"centroid", "closest"} {
		if err := run([]string{"-pcap", pcapPath, "-aps", apsPath, "-algo", algo}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if !testing.Short() {
		// AP-Rad re-trains radii from the replayed co-observations.
		if err := run([]string{"-pcap", pcapPath, "-aps", apsPath, "-algo", "aprad"}); err != nil {
			t.Fatalf("aprad: %v", err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing flags")
	}
	if err := run([]string{"-pcap", "x", "-aps", "y", "-algo", "nope"}); err == nil {
		t.Error("want error for missing files")
	}
	if err := run([]string{"-bad"}); err == nil {
		t.Error("want flag error")
	}
	if err := run([]string{"-pcap", "x", "-aps", "y", "-log-level", "loud"}); err == nil {
		t.Error("want log level error")
	}
}
