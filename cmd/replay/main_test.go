package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "cap.pcap")
	apsPath := filepath.Join(dir, "aps.csv")
	obsPath := filepath.Join(dir, "obs.json")
	err := run([]string{
		"-demo", "-pcap", pcapPath, "-aps", apsPath, "-obs", obsPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{pcapPath, apsPath, obsPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Replaying the same artifacts without -demo also works.
	if err := run([]string{"-pcap", pcapPath, "-aps", apsPath, "-algo", "centroid"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing flags")
	}
	if err := run([]string{"-pcap", "x", "-aps", "y", "-algo", "nope"}); err == nil {
		t.Error("want error for missing files")
	}
	if err := run([]string{"-bad"}); err == nil {
		t.Error("want flag error")
	}
}
