// Command replay re-runs the localization attack from persisted inputs: a
// pcap capture file (as the sniffer writes, bare 802.11 or radiotap) and a
// WiGLE-style AP database CSV. It rebuilds the observation store from the
// capture, localizes every observed device, and prints the resulting map —
// the attack pipeline decoupled from the simulator.
//
// Usage:
//
//	replay -pcap capture.pcap -aps aps.csv [-algo mloc|centroid|closest|aprad]
//	       [-origin-lat 42.6555] [-origin-lon -71.3254] [-obs store.json] [-shards 0]
//	       [-trace] [-trace-sample 1] [-trace-buffer 256]
//	       [-chaos] [-chaos-seed 1] [-checkpoint-dir DIR]
//	       [-prof-dir DIR] [-prof-cpu 10s]
//	       [-mutex-profile-fraction 0] [-block-profile-rate 0]
//	       [-stage-sample-every 0]
//
// With -prof-dir one profiler capture cycle runs concurrently with the
// replay (CPU capture first, cut short when the replay finishes, then
// heap/goroutine/mutex/block snapshots), and the decoded hot-function
// attribution is printed at the end. -mutex-profile-fraction and
// -block-profile-rate turn on the runtime's contention profilers, which
// otherwise leave the mutex and block captures empty.
//
// With -chaos the capture batch runs through the deterministic aggressive
// fault plan (drops, corruption, duplication, reordering) before ingest;
// corrupted frames land in the engine's quarantine, and the fault and
// quarantine counts are printed with the map. With -checkpoint-dir the
// newest valid observation checkpoint is restored before the replay and a
// final checkpoint is written after it.
//
// With -demo it first generates a demo capture+database pair into the
// given paths, then replays them (useful without prior artifacts). With
// -trace every sampled localization carries a trace and provenance
// record, and each located device's estimate is explained after the map
// is printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/apdb"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/flagcheck"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
	"repro/internal/telemetry/prof"
	"repro/internal/telemetry/trace"
)

var captureEpoch = time.Date(2008, 10, 24, 0, 0, 0, 0, time.UTC)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.Error("replay failed", "component", "replay", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	pcapPath := fs.String("pcap", "", "pcap capture to replay (required)")
	apsPath := fs.String("aps", "", "AP database CSV (required unless -aps-snap is given)")
	apsSnap := fs.String("aps-snap", "", "binary AP snapshot (apdb format) to load instead of the CSV — no re-ingest")
	saveApsSnap := fs.String("save-aps-snap", "", "after loading, save the AP database as a binary snapshot here")
	algo := fs.String("algo", "mloc", "localization algorithm: mloc, centroid, closest or aprad")
	originLat := fs.Float64("origin-lat", 42.6555, "local-plane origin latitude")
	originLon := fs.Float64("origin-lon", -71.3254, "local-plane origin longitude")
	obsOut := fs.String("obs", "", "also save the rebuilt observation store as JSON here")
	demo := fs.Bool("demo", false, "generate a demo capture and AP database first")
	fallback := fs.Float64("fallback-range", 160, "disc radius for APs with unknown range")
	shards := fs.Int("shards", 0, "observation store shard count, rounded to a power of two (0 = GOMAXPROCS-rounded)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars on this address for the replay's duration")
	pprofOn := fs.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	traceOn := fs.Bool("trace", false, "sample localizations into per-estimate traces and provenance records")
	traceSample := fs.Float64("trace-sample", 1, "fraction of localizations traced, in (0, 1] (resolves to every-Nth sampling)")
	traceBuffer := fs.Int("trace-buffer", 256, "finished-trace ring buffer capacity")
	chaos := fs.Bool("chaos", false, "run the capture through the aggressive fault plan before ingest")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault plan seed (deterministic per seed)")
	ckptDir := fs.String("checkpoint-dir", "", "restore the newest observation checkpoint before the replay and write one after it")
	ckptInterval := fs.Duration("checkpoint-interval", 10*time.Second, "checkpoint period (accepted for parity with marauder; one-shot replay writes a single final checkpoint)")
	profDir := fs.String("prof-dir", "", "directory for profiler artifacts; one capture cycle covers the replay (empty = off)")
	profCPU := fs.Duration("prof-cpu", 10*time.Second, "maximum CPU capture length (cut short when the replay finishes first)")
	mutexFrac := fs.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events into the mutex profile (0 = off)")
	blockRate := fs.Int("block-profile-rate", 0, "record goroutine blocking lasting >= n ns into the block profile (0 = off)")
	stageEvery := fs.Int("stage-sample-every", 0, "time per-stage histograms every Nth fix (0 = default 16, 1 = every fix, negative = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Dependent-flag validation, shared semantics with cmd/marauder: a
	// flag that only tunes a never-enabled feature is an error, and a
	// zero/negative -checkpoint-interval means "periodic checkpoints
	// disabled" (the replay's single final checkpoint still happens).
	fc := flagcheck.New(fs).
		Requires("chaos-seed", "chaos").
		Requires("checkpoint-interval", "checkpoint-dir").
		Requires("prof-cpu", "prof-dir").
		Requires("trace-sample", "trace").
		Requires("trace-buffer", "trace")
	if err := fc.Err(); err != nil {
		return err
	}
	ckptEvery, _ := flagcheck.CheckpointInterval(*ckptInterval, func(format string, args ...any) {
		slog.Info(fmt.Sprintf(format, args...), "component", "replay")
	})
	telemetry.SetProfileRates(*mutexFrac, *blockRate)
	if _, err := telemetry.SetupLogging(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}
	var tracer *trace.Tracer
	if *traceOn {
		var err error
		tracer, err = trace.New(trace.Config{Sample: *traceSample, Buffer: *traceBuffer})
		if err != nil {
			return err
		}
		slog.Info("estimate tracing on", "component", "replay",
			"sample_every", tracer.SampleEvery(), "buffer", *traceBuffer)
	}
	if *pcapPath == "" || (*apsPath == "" && *apsSnap == "") {
		return fmt.Errorf("-pcap and one of -aps / -aps-snap are required")
	}
	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: telemetry.Mux(telemetry.Default(), *pprofOn)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("telemetry server failed", "component", "replay", "addr", *metricsAddr, "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("telemetry listening", "component", "replay", "addr", *metricsAddr, "pprof", *pprofOn)
	}
	if *profDir != "" {
		p, err := prof.New(prof.Config{Dir: *profDir, CPUDuration: *profCPU, Interval: *profCPU})
		if err != nil {
			return err
		}
		profCtx, profStop := context.WithCancel(context.Background())
		profDone := make(chan struct{})
		started := make(chan struct{})
		go func() {
			if err := p.CycleSignaled(profCtx, started); err != nil {
				slog.Warn("profiler cycle failed", "component", "replay", "err", err)
			}
			close(profDone)
		}()
		<-started
		defer func() {
			profStop()
			<-profDone
			if attr := p.Attribution(); attr != nil {
				if len(attr.TopFunctions) > 0 {
					hot := attr.TopFunctions[0]
					fmt.Printf("profile: %d samples, hottest %s (%.1f%% flat), artifacts in %s\n",
						attr.Samples, hot.Name, 100*hot.FlatShare, *profDir)
				} else {
					fmt.Printf("profile: %d samples (replay too brief for attribution), artifacts in %s\n",
						attr.Samples, *profDir)
				}
			}
			_ = p.Close()
		}()
		slog.Info("profiler on", "component", "replay", "dir", *profDir, "cpu", *profCPU)
	}
	proj := geo.NewProjection(geo.LatLon{Lat: *originLat, Lon: *originLon})

	if *demo {
		if err := generateDemo(*pcapPath, *apsPath, proj); err != nil {
			return fmt.Errorf("generate demo: %w", err)
		}
		slog.Info("demo artifacts written", "component", "replay", "pcap", *pcapPath, "aps", *apsPath)
	}

	var db *apdb.Store
	if *apsSnap != "" {
		var err error
		db, err = apdb.LoadSnapshotFile(*apsSnap)
		if err != nil {
			return err
		}
		slog.Info("AP snapshot loaded", "component", "replay", "path", *apsSnap, "aps", db.Len())
	} else {
		apsFile, err := os.Open(*apsPath)
		if err != nil {
			return err
		}
		defer apsFile.Close()
		db, err = apdb.ImportCSV(apsFile, proj)
		if err != nil {
			return err
		}
	}
	if *saveApsSnap != "" {
		if err := db.SaveSnapshotFile(*saveApsSnap); err != nil {
			return err
		}
		slog.Info("AP snapshot saved", "component", "replay", "path", *saveApsSnap, "aps", db.Len())
	}

	capFile, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer capFile.Close()
	caps, err := sniffer.ReadPcap(capFile, captureEpoch)
	if err != nil {
		return err
	}

	knowInfos := db.All()
	for i := range knowInfos {
		if knowInfos[i].MaxRange <= 0 {
			knowInfos[i].MaxRange = *fallback
		}
	}
	know := core.NewKnowledge(knowInfos)

	var locate core.Localizer
	switch *algo {
	case "mloc":
		locate = core.MLocalizer{}
	case "centroid":
		locate = core.CentroidLocalizer{}
	case "closest":
		locate = core.ClosestAPLocalizer{}
	case "aprad":
		// Trust only the database's positions; re-estimate radii from the
		// replayed co-observations.
		stripped := know.All()
		for i := range stripped {
			stripped[i].MaxRange = 0
		}
		know = core.NewKnowledge(stripped)
		locate = core.APRadLocalizer{
			Cfg: core.APRadConfig{MaxRadius: 2 * *fallback, MaxNeighborConstraints: 12},
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	store := obs.NewStoreShards(*shards)
	var recoveredGen uint64
	if *ckptDir != "" {
		recovered, info, err := obs.Recover(*ckptDir, *shards)
		if err != nil {
			return err
		}
		for _, sk := range info.Skipped {
			slog.Warn("checkpoint skipped", "component", "replay", "path", sk.Path, "err", sk.Err)
		}
		if recovered != nil {
			store = recovered
			recoveredGen = info.Meta.Generation
			slog.Info("observations restored from checkpoint", "component", "replay",
				"path", info.Path, "generation", info.Meta.Generation, "records", info.Meta.Records)
		}
	}

	eng, err := engine.New(engine.Config{
		Know:             know,
		Store:            store,
		Localizer:        locate,
		WindowSec:        60, // SnapshotRange below spans the whole capture
		Tracer:           tracer,
		StageSampleEvery: *stageEvery,
	})
	if err != nil {
		return err
	}
	for i := range caps {
		if caps[i].Frame == nil {
			// Undecodable packet kept as raw bytes; the engine quarantines
			// it with a counted reason instead of dropping it here.
			continue
		}
		// Replay cannot know the capture-side FromAP attribution; trust
		// beacons whose source appears in the AP database.
		_, caps[i].FromAP = db.Get(caps[i].Frame.Addr2)
	}
	var plan *faults.Plan
	if *chaos {
		plan = faults.Aggressive(*chaosSeed)
		inj := &sniffer.FaultInjector{Plan: plan}
		caps = append(inj.Apply(caps), inj.Drain()...)
		slog.Info("chaos mode on", "component", "replay", "seed", *chaosSeed)
	}
	// The whole capture is one batch: the store groups it by shard and
	// takes each shard lock once instead of once per frame.
	eng.IngestCaptures(caps)
	store = eng.Store()
	fmt.Printf("replayed %d frames: %d devices (%d probing), %d APs observed\n",
		len(caps), len(store.Devices()), len(store.ProbingDevices()), len(store.APs()))
	if q := eng.Quarantine(); q.Total > 0 {
		fmt.Printf("quarantined %d captures: %v\n", q.Total, q.ByReason)
	}
	if plan != nil {
		c := plan.Counters()
		fmt.Printf("faults injected: dropped=%d corrupted=%d duplicated=%d reorderedBatches=%d delayedBatches=%d\n",
			c.Dropped, c.Corrupted, c.Duplicated, c.ReorderedBatches, c.DelayedBatches)
	}

	if err := eng.RefreshKnowledge(); err != nil {
		return fmt.Errorf("train knowledge: %w", err)
	}

	// Localize every observed device over the whole capture history, in
	// parallel across the engine's worker pool.
	frame := eng.SnapshotRange(0, math.MaxFloat64)
	sets := store.DeviceAPSets()
	devs := make([]dot11.MAC, 0, len(sets))
	for dev := range sets {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].String() < devs[j].String() })
	located := 0
	for _, dev := range devs {
		est, ok := frame[dev]
		if !ok {
			fmt.Printf("%v  k=%-2d  not locatable\n", dev, len(sets[dev]))
			continue
		}
		ll := proj.ToLatLon(est.Pos)
		fmt.Printf("%v  k=%-2d  plane=%v  geo=%s  (%s)\n",
			dev, est.K, est.Pos, ll, est.Method)
		located++
	}
	fmt.Printf("located %d devices\n", located)

	if tracer != nil {
		st := tracer.Stats()
		fmt.Printf("tracing: %d finished traces (1 in %d), %d buffered, %d devices explained\n",
			st.Finished, st.SampleEvery, st.Buffered, st.Devices)
		for _, dev := range devs {
			p, ok := tracer.Explain(dev.String())
			if !ok {
				continue
			}
			fmt.Printf("explain %s: trace=%s algo=%s k=%d cacheHit=%v area=%.1fm² theorem2=%.1fm² stages=%v\n",
				p.Device, p.TraceID, p.Algorithm, p.K, p.CacheHit,
				p.IntersectedAreaM2, p.Theorem2AreaM2, p.StagesMs)
			break // one worked example is enough for the console
		}
	}

	if *obsOut != "" {
		// Atomic write: a crash mid-save leaves the previous file intact
		// instead of a truncated JSON document.
		if err := obs.WriteFileAtomic(*obsOut, store.Save); err != nil {
			return err
		}
		slog.Info("observation store saved", "component", "replay", "path", *obsOut)
	}
	if *ckptDir != "" {
		ckpt := &obs.Checkpointer{Dir: *ckptDir, Interval: ckptEvery, Source: func() *obs.Store { return store }}
		ckpt.SetGeneration(recoveredGen)
		path, err := ckpt.CheckpointNow()
		if err != nil {
			return err
		}
		slog.Info("final checkpoint written", "component", "replay", "path", path, "generation", ckpt.Generation())
	}
	return nil
}

// generateDemo simulates a short attack and persists its capture and AP
// database, so replay has something to chew on out of the box.
func generateDemo(pcapPath, apsPath string, proj *geo.Projection) error {
	w := sim.NewWorld(11)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        150,
		Min:      geom.Pt(-300, -300),
		Max:      geom.Pt(300, 300),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return err
	}
	w.APs = aps
	dev := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: sim.NewRouteWalk([]geom.Point{geom.Pt(-250, -100), geom.Pt(250, 120)}, 1.5),
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(dev)
	events := sim.WalkTrace(w, dev, 360, 30)
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	caps := sn.CaptureAll(events)

	pf, err := os.Create(pcapPath)
	if err != nil {
		return err
	}
	if err := sn.WritePcapRadiotap(pf, captureEpoch, caps); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	if apsPath == "" {
		// Demo replayed against an existing -aps-snap: the capture is
		// regenerated but the AP database comes from the snapshot.
		return nil
	}
	db := apdb.FromWorld(w, true)
	af, err := os.Create(apsPath)
	if err != nil {
		return err
	}
	if err := db.ExportCSV(af, proj); err != nil {
		af.Close()
		return err
	}
	return af.Close()
}
