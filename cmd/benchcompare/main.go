// Command benchcompare is the perf-regression watchdog: it diffs the
// current PR's versioned BENCH_<pr>.json against the previous PR's and
// fails (exit 1) when a gated metric regressed. scripts/bench_compare.sh
// runs it in CI after soak-smoke regenerates the current summary.
//
// Usage:
//
//	benchcompare -prev BENCH_8.json -cur BENCH_9.json
//	             [-max-p99-ratio 2.5] [-min-throughput-ratio 0.4]
//	             [-min-kernel-speedup 5] [-require-profile=true]
//
// The gates are deliberately generous: the checked-in previous summary
// was produced on a different machine than the CI runner, so only
// order-of-magnitude regressions should trip them. Latency gates use a
// noise floor (the previous value is clamped up to the floor before the
// ratio applies), so sub-floor jitter on near-zero latencies cannot
// fail the build. Absolute gates (the churn-kernel speedup floor, the
// profile-section requirement) bind regardless of the baseline.
//
// Checks, per run name present in both summaries' "runs":
//
//   - fix.p99Ms and mapFrame.p99Ms within max-p99-ratio of the previous
//     value (noise floors 0.05 ms and 1 ms respectively)
//   - framesPerWallSec at least min-throughput-ratio of the previous run
//   - framesIngested non-zero
//
// Plus, against the current summary alone:
//
//   - churn.kernel_speedup at least min-kernel-speedup (same floor as
//     scripts/bench_churn.sh, so the merge cannot quietly drop the gate)
//   - with -require-profile, every current run carries a "profile"
//     section with decoded hot functions and per-stage shares
//   - with -require-agents, the current summary carries an "agents"
//     section (the distributed-capture loopback run merged via
//     cmd/soak -merge-extra agents=FILE) proving the wire moved frames
//     (framesPerSec > 0), exercised cursor resume (resumes >= 1), and
//     kept the exactly-once books balanced (accountingOk)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
}

// check is one gate evaluation, kept for the report table.
type check struct {
	name   string
	detail string
	ok     bool
}

// comparer accumulates gate results against the two parsed summaries.
type comparer struct {
	prev, cur map[string]any
	checks    []check
}

func (c *comparer) add(name string, ok bool, format string, args ...any) {
	c.checks = append(c.checks, check{name: name, detail: fmt.Sprintf(format, args...), ok: ok})
}

// dig walks nested JSON objects by key path.
func dig(doc map[string]any, path ...string) (any, bool) {
	var v any = doc
	for _, k := range path {
		m, ok := v.(map[string]any)
		if !ok {
			return nil, false
		}
		if v, ok = m[k]; !ok {
			return nil, false
		}
	}
	return v, true
}

func digFloat(doc map[string]any, path ...string) (float64, bool) {
	v, ok := dig(doc, path...)
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

// clampFloor returns v raised to at least floor — the noise clamp for
// latency baselines.
func clampFloor(v, floor float64) float64 {
	if v < floor {
		return floor
	}
	return v
}

// compareRun applies the per-run gates for one run name present in both
// summaries.
func (c *comparer) compareRun(name string, maxP99Ratio, minThroughputRatio float64) {
	latencyGates := []struct {
		label string
		path  []string
		floor float64 // ms
	}{
		{"fix.p99Ms", []string{"runs", name, "fix", "p99Ms"}, 0.05},
		{"mapFrame.p99Ms", []string{"runs", name, "mapFrame", "p99Ms"}, 1.0},
	}
	for _, g := range latencyGates {
		prev, pok := digFloat(c.prev, g.path...)
		cur, cok := digFloat(c.cur, g.path...)
		gate := g.label + " (" + name + ")"
		if !pok || !cok {
			c.add(gate, false, "missing (prev present: %v, cur present: %v)", pok, cok)
			continue
		}
		limit := clampFloor(prev, g.floor) * maxP99Ratio
		c.add(gate, cur <= limit, "cur %.4f ms vs prev %.4f ms (limit %.4f ms)", cur, prev, limit)
	}

	prevT, pok := digFloat(c.prev, "runs", name, "framesPerWallSec")
	curT, cok := digFloat(c.cur, "runs", name, "framesPerWallSec")
	gate := "framesPerWallSec (" + name + ")"
	if !pok || !cok {
		c.add(gate, false, "missing (prev present: %v, cur present: %v)", pok, cok)
	} else {
		limit := prevT * minThroughputRatio
		c.add(gate, curT >= limit, "cur %.0f/s vs prev %.0f/s (floor %.0f/s)", curT, prevT, limit)
	}

	ingested, ok := digFloat(c.cur, "runs", name, "framesIngested")
	c.add("framesIngested ("+name+")", ok && ingested > 0, "cur %.0f", ingested)
}

// checkProfile requires the current run's self-profile section: decoded
// hot functions and non-empty per-stage shares.
func (c *comparer) checkProfile(name string) {
	gate := "profile (" + name + ")"
	p, ok := dig(c.cur, "runs", name, "profile")
	if !ok {
		c.add(gate, false, "section missing")
		return
	}
	prof, _ := p.(map[string]any)
	samples, _ := prof["samples"].(float64)
	top, _ := prof["topFunctions"].([]any)
	stages, _ := prof["stageShares"].(map[string]any)
	c.add(gate, samples > 0 && len(top) > 0 && len(stages) > 0,
		"%d samples, %d hot functions, %d stage shares", int(samples), len(top), len(stages))
}

// checkAgents requires the current summary's distributed-capture
// section: the loopback agent run must have moved frames over the wire,
// resumed at least one session, and balanced the exactly-once books.
func (c *comparer) checkAgents() {
	a, ok := dig(c.cur, "agents")
	if !ok {
		c.add("agents", false, "section missing")
		return
	}
	sec, _ := a.(map[string]any)
	fps, _ := sec["framesPerSec"].(float64)
	resumes, _ := sec["resumes"].(float64)
	accountingOk, _ := sec["accountingOk"].(bool)
	c.add("agents.framesPerSec", fps > 0, "cur %.0f/s", fps)
	c.add("agents.resumes", resumes >= 1, "cur %.0f (floor 1)", resumes)
	c.add("agents.accountingOk", accountingOk, "cur %v", accountingOk)
}

func loadSummary(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	prevPath := fs.String("prev", "", "previous PR's BENCH_<pr>.json (required)")
	curPath := fs.String("cur", "", "current PR's BENCH_<pr>.json (required)")
	maxP99Ratio := fs.Float64("max-p99-ratio", 2.5, "fail when a latency p99 exceeds this multiple of the previous (noise-clamped) value")
	minThroughputRatio := fs.Float64("min-throughput-ratio", 0.4, "fail when framesPerWallSec drops below this fraction of the previous run")
	minKernelSpeedup := fs.Float64("min-kernel-speedup", 5, "fail when churn.kernel_speedup falls below this absolute floor")
	requireProfile := fs.Bool("require-profile", true, "fail when a current run lacks a profile section with hot functions and stage shares")
	requireAgents := fs.Bool("require-agents", false, "fail when the current summary lacks an agents section with throughput, a resume, and balanced accounting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *prevPath == "" || *curPath == "" {
		return fmt.Errorf("-prev and -cur are required")
	}
	prev, err := loadSummary(*prevPath)
	if err != nil {
		return err
	}
	cur, err := loadSummary(*curPath)
	if err != nil {
		return err
	}

	c := &comparer{prev: prev, cur: cur}

	speedup, ok := digFloat(cur, "churn", "kernel_speedup")
	c.add("churn.kernel_speedup", ok && speedup >= *minKernelSpeedup,
		"cur %.2fx (floor %.2fx)", speedup, *minKernelSpeedup)

	if *requireAgents {
		c.checkAgents()
	}

	curRuns, _ := dig(cur, "runs")
	curRunMap, _ := curRuns.(map[string]any)
	if len(curRunMap) == 0 {
		c.add("runs", false, "current summary has no runs")
	}
	compared := 0
	for name := range curRunMap {
		if _, ok := dig(prev, "runs", name); ok {
			c.compareRun(name, *maxP99Ratio, *minThroughputRatio)
			compared++
		}
		if *requireProfile {
			c.checkProfile(name)
		}
	}
	if len(curRunMap) > 0 && compared == 0 {
		c.add("runs", false, "no current run name matches a previous run")
	}

	failed := 0
	for _, ck := range c.checks {
		status := "ok  "
		if !ck.ok {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%s  %-32s %s\n", status, ck.name, ck.detail)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d gates failed (%s vs %s)", failed, len(c.checks), *curPath, *prevPath)
	}
	fmt.Fprintf(out, "benchcompare: all %d gates passed (%s vs %s)\n", len(c.checks), *curPath, *prevPath)
	return nil
}
