package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// summary builds a minimal BENCH_<pr>.json document; mutate copies of it
// to inject regressions.
func summary(withProfile bool) map[string]any {
	run := map[string]any{
		"fix":              map[string]any{"p99Ms": 0.01},
		"mapFrame":         map[string]any{"p99Ms": 2.0},
		"framesPerWallSec": 9000.0,
		"framesIngested":   40000.0,
	}
	if withProfile {
		run["profile"] = map[string]any{
			"samples":      38.0,
			"topFunctions": []any{map[string]any{"name": "hot", "flat": 1.0}},
			"stageShares":  map[string]any{"ingest": 0.8, "localize": 0.2},
		}
	}
	return map[string]any{
		"churn": map[string]any{"kernel_speedup": 5.2},
		"runs":  map[string]any{"chaos_off": run},
	}
}

func writeJSON(t *testing.T, path string, doc map[string]any) {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// compare runs the tool on the two documents and returns (err, output).
func compare(t *testing.T, prev, cur map[string]any, extra ...string) (error, string) {
	t.Helper()
	dir := t.TempDir()
	pp, cp := filepath.Join(dir, "prev.json"), filepath.Join(dir, "cur.json")
	writeJSON(t, pp, prev)
	writeJSON(t, cp, cur)
	var buf strings.Builder
	args := append([]string{"-prev", pp, "-cur", cp}, extra...)
	return run(args, &buf), buf.String()
}

func TestCleanSummariesPass(t *testing.T) {
	err, out := compare(t, summary(false), summary(true))
	if err != nil {
		t.Fatalf("clean summaries failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all ") {
		t.Errorf("missing pass banner:\n%s", out)
	}
}

// Each injected regression must be caught by exactly its gate.
func TestInjectedRegressionsFail(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(cur map[string]any)
		gate   string
	}{
		{
			"fix p99 blowup",
			func(cur map[string]any) {
				runOf(cur)["fix"] = map[string]any{"p99Ms": 10.0}
			},
			"fix.p99Ms",
		},
		{
			"map-frame p99 blowup",
			func(cur map[string]any) {
				runOf(cur)["mapFrame"] = map[string]any{"p99Ms": 50.0}
			},
			"mapFrame.p99Ms",
		},
		{
			"throughput collapse",
			func(cur map[string]any) { runOf(cur)["framesPerWallSec"] = 100.0 },
			"framesPerWallSec",
		},
		{
			"nothing ingested",
			func(cur map[string]any) { runOf(cur)["framesIngested"] = 0.0 },
			"framesIngested",
		},
		{
			"kernel speedup lost",
			func(cur map[string]any) {
				cur["churn"] = map[string]any{"kernel_speedup": 1.1}
			},
			"kernel_speedup",
		},
		{
			"profile section dropped",
			func(cur map[string]any) { delete(runOf(cur), "profile") },
			"profile",
		},
		{
			"empty attribution",
			func(cur map[string]any) {
				runOf(cur)["profile"] = map[string]any{
					"samples": 0.0, "topFunctions": []any{}, "stageShares": map[string]any{},
				}
			},
			"profile",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := summary(true)
			tc.mutate(cur)
			err, out := compare(t, summary(false), cur)
			if err == nil {
				t.Fatalf("injected regression passed:\n%s", out)
			}
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, "FAIL") && strings.Contains(line, tc.gate) {
					return
				}
			}
			t.Errorf("no FAIL line names %q:\n%s", tc.gate, out)
		})
	}
}

// runOf digs out the mutable chaos_off run map.
func runOf(doc map[string]any) map[string]any {
	return doc["runs"].(map[string]any)["chaos_off"].(map[string]any)
}

// agentsSection builds a healthy distributed-capture section as
// cmd/soak -merge-extra agents=FILE embeds it.
func agentsSection() map[string]any {
	return map[string]any{
		"agents":       2.0,
		"framesPerSec": 500.0,
		"resumes":      3.0,
		"accountingOk": true,
	}
}

// The agents gate is opt-in: absent section passes without
// -require-agents, and with it every sub-gate must hold.
func TestAgentsGate(t *testing.T) {
	if err, out := compare(t, summary(false), summary(true)); err != nil {
		t.Fatalf("missing agents section failed without -require-agents: %v\n%s", err, out)
	}

	cur := summary(true)
	cur["agents"] = agentsSection()
	if err, out := compare(t, summary(false), cur, "-require-agents"); err != nil {
		t.Fatalf("healthy agents section failed: %v\n%s", err, out)
	}

	cases := []struct {
		name   string
		mutate func(cur map[string]any)
		gate   string
	}{
		{"section dropped", func(cur map[string]any) { delete(cur, "agents") }, "agents"},
		{
			"wire moved nothing",
			func(cur map[string]any) { cur["agents"].(map[string]any)["framesPerSec"] = 0.0 },
			"agents.framesPerSec",
		},
		{
			"resume path untested",
			func(cur map[string]any) { cur["agents"].(map[string]any)["resumes"] = 0.0 },
			"agents.resumes",
		},
		{
			"accounting broken",
			func(cur map[string]any) { cur["agents"].(map[string]any)["accountingOk"] = false },
			"agents.accountingOk",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := summary(true)
			cur["agents"] = agentsSection()
			tc.mutate(cur)
			err, out := compare(t, summary(false), cur, "-require-agents")
			if err == nil {
				t.Fatalf("injected agents regression passed:\n%s", out)
			}
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, "FAIL") && strings.Contains(line, tc.gate) {
					return
				}
			}
			t.Errorf("no FAIL line names %q:\n%s", tc.gate, out)
		})
	}
}

// Sub-floor latency jitter must not fail the ratio gate: prev 0.001 ms,
// cur 0.04 ms is a 40x ratio but both sit under the 0.05 ms noise floor.
func TestNoiseFloorAbsorbsTinyLatencies(t *testing.T) {
	prev, cur := summary(false), summary(true)
	prev["runs"].(map[string]any)["chaos_off"].(map[string]any)["fix"] = map[string]any{"p99Ms": 0.001}
	runOf(cur)["fix"] = map[string]any{"p99Ms": 0.04}
	err, out := compare(t, prev, cur)
	if err != nil {
		t.Fatalf("noise-floor latencies failed the gate: %v\n%s", err, out)
	}
}

// A current run with no matching previous run must not silently pass.
func TestDisjointRunNamesFail(t *testing.T) {
	prev := summary(false)
	prev["runs"] = map[string]any{"other_run": map[string]any{}}
	err, out := compare(t, prev, summary(true))
	if err == nil {
		t.Fatalf("disjoint run names passed:\n%s", out)
	}
}

// The real checked-in previous summary must parse and carry the gated
// fields — guards against the baseline file drifting out of shape.
func TestCheckedInBaselineShape(t *testing.T) {
	doc, err := loadSummary("../../BENCH_9.json")
	if err != nil {
		t.Fatalf("loading checked-in baseline: %v", err)
	}
	if _, ok := digFloat(doc, "churn", "kernel_speedup"); !ok {
		t.Error("BENCH_9.json lacks churn.kernel_speedup")
	}
	for _, name := range []string{"chaos_off", "chaos_on"} {
		if _, ok := digFloat(doc, "runs", name, "fix", "p99Ms"); !ok {
			t.Errorf("BENCH_9.json lacks runs.%s.fix.p99Ms", name)
		}
	}
}
