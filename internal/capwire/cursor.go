package capwire

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// cursorFormat versions the cursor file; readers reject other versions.
const cursorFormat = 1

// CursorFileName is the canonical file name inside a checkpoint
// directory.
const CursorFileName = "agent-cursors.json"

// cursorDoc is the on-disk cursor file: the per-agent resume cursors
// plus the obs checkpoint generation they were saved alongside. A
// generation mismatch at recovery means the cursors are newer or older
// than the restored observation store — safe either way (the protocol
// is at-least-once; a stale cursor only widens the replay window), but
// worth a log line.
type cursorDoc struct {
	Format     int               `json:"format"`
	Generation uint64            `json:"generation"`
	Cursors    map[string]uint64 `json:"cursors"`
}

// SaveCursors atomically writes the server's per-agent cursors next to
// the obs checkpoint generation they accompany.
func (s *Server) SaveCursors(path string, generation uint64) error {
	doc := cursorDoc{Format: cursorFormat, Generation: generation, Cursors: s.Cursors()}
	return obs.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// LoadCursors reads a cursor file. A missing file is not an error —
// there is simply nothing to resume — and returns an empty map with
// generation 0.
func LoadCursors(path string) (map[string]uint64, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]uint64{}, 0, nil
		}
		return nil, 0, fmt.Errorf("capwire: cursors %s: %w", path, err)
	}
	var doc cursorDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, 0, fmt.Errorf("capwire: cursors %s: %w", path, err)
	}
	if doc.Format != cursorFormat {
		return nil, 0, fmt.Errorf("capwire: cursors %s: format %d, want %d", path, doc.Format, cursorFormat)
	}
	if doc.Cursors == nil {
		doc.Cursors = map[string]uint64{}
	}
	return doc.Cursors, doc.Generation, nil
}
