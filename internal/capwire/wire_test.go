package capwire

import (
	"bytes"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/dot11"
	"repro/internal/sniffer"
)

func testMAC(b byte) dot11.MAC { return dot11.MAC{0x02, 0xdd, 0, 0, 0, b} }

func sampleMessages(t testing.TB) []any {
	t.Helper()
	frame := dot11.NewProbeRequest(testMAC(1), "corpnet", 42)
	raw, err := frame.Encode()
	if err != nil {
		t.Fatalf("encode frame: %v", err)
	}
	return []any{
		&Hello{AgentID: "agent-1"},
		&HelloAck{Cursor: 0},
		&HelloAck{Cursor: 1<<63 + 17},
		&Ack{Cursor: 12345},
		&Heartbeat{QueuedBatches: 7},
		&Batch{Seq: 1},
		&Batch{Seq: 9, Items: []Item{
			{TimeSec: 12.5, SNRDB: 23.25, Channel: 6, CardChannel: 6, LiveMask: 0b101, FromAP: false, HasFrame: true, Data: raw},
			{TimeSec: 13.0, SNRDB: -3, Channel: 11, CardChannel: 1, FromAP: true, Data: []byte{0xde, 0xad}},
			{TimeSec: 0, SNRDB: 0},
		}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, msg := range sampleMessages(t) {
		buf, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		got, n, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %T consumed %d of %d bytes", msg, n, len(buf))
		}
		re, err := EncodeMessage(got)
		if err != nil {
			t.Fatalf("re-encode %T: %v", got, err)
		}
		if !bytes.Equal(re, buf) {
			t.Fatalf("%T re-encoding differs from original", msg)
		}
	}
}

func TestDecodeWithTrailingBytes(t *testing.T) {
	buf, err := EncodeMessage(&Ack{Cursor: 5})
	if err != nil {
		t.Fatal(err)
	}
	withJunk := append(append([]byte(nil), buf...), 0xFF, 0x00, 0x12)
	msg, n, err := DecodeMessage(withJunk)
	if err != nil {
		t.Fatalf("decode with trailing junk: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if ack, ok := msg.(*Ack); !ok || ack.Cursor != 5 {
		t.Fatalf("got %#v", msg)
	}
}

func TestDecodeRejects(t *testing.T) {
	good, err := EncodeMessage(&Hello{AgentID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mut(b)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:8],
		"bad magic":   mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"bad type":    mutate(func(b []byte) []byte { b[5] = 200; return b }),
		"payload bit": mutate(func(b []byte) []byte { b[len(b)-6] ^= 0x10; return b }),
		"crc bit":     mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }),
		"truncated":   good[:len(good)-3],
	}
	for name, b := range cases {
		if _, _, err := DecodeMessage(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	// Hand-build messages whose framing is fine but whose payloads lie.
	reframe := func(typ byte, payload []byte) []byte {
		msg := append([]byte(nil), magic[:]...)
		msg = append(msg, Version, typ)
		msg = append(msg, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
		msg = append(msg, payload...)
		sum := crc32.ChecksumIEEE(msg[4:])
		msg = append(msg, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
		return msg
	}
	cases := map[string][]byte{
		"hello empty id":     reframe(TypeHello, []byte{0, 0}),
		"hello short":        reframe(TypeHello, []byte{0, 5, 'a'}),
		"hello trailing":     reframe(TypeHello, []byte{0, 1, 'a', 'b'}),
		"ack short":          reframe(TypeAck, []byte{1, 2, 3}),
		"batch short":        reframe(TypeBatch, []byte{0}),
		"batch item lies":    reframe(TypeBatch, append(make([]byte, 8), 0, 0, 0, 2)),
		"heartbeat trailing": reframe(TypeHeartbeat, []byte{0, 0, 0, 1, 9}),
	}
	for name, b := range cases {
		if _, _, err := DecodeMessage(b); err == nil {
			t.Errorf("%s: decode accepted invalid payload", name)
		}
	}
}

func TestReadMessageStream(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages(t)
	for _, m := range msgs {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(b)
	}
	for i := range msgs {
		got, err := ReadMessage(&stream)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		re1, _ := EncodeMessage(got)
		re2, _ := EncodeMessage(msgs[i])
		if !bytes.Equal(re1, re2) {
			t.Fatalf("message %d mismatch: %#v vs %#v", i, got, msgs[i])
		}
	}
	if _, err := ReadMessage(&stream); err != io.EOF {
		t.Fatalf("drained stream: %v, want io.EOF", err)
	}
}

func TestCaptureConversionRoundTrip(t *testing.T) {
	frame := dot11.NewProbeRequest(testMAC(9), "", 77)
	clean := sniffer.Capture{
		TimeSec: 41.25, Frame: frame, Channel: 6, CardChannel: 11,
		SNRDB: 17.5, FromAP: false, LiveMask: 0b11,
	}
	corrupt := sniffer.Capture{TimeSec: 42, Raw: []byte{1, 2, 3, 4}, Channel: 1, CardChannel: 1, SNRDB: 3}

	b, err := BatchFromCaptures(3, []sniffer.Capture{clean, corrupt})
	if err != nil {
		t.Fatal(err)
	}
	caps := b.ToCaptures()
	if len(caps) != 2 {
		t.Fatalf("got %d captures", len(caps))
	}
	got := caps[0]
	if got.Frame == nil {
		t.Fatal("clean capture lost its frame")
	}
	if got.Frame.Addr2 != frame.Addr2 || got.Frame.Seq != frame.Seq {
		t.Fatalf("frame identity changed: %v/%d", got.Frame.Addr2, got.Frame.Seq)
	}
	if got.TimeSec != clean.TimeSec || got.SNRDB != clean.SNRDB || got.Channel != clean.Channel ||
		got.CardChannel != clean.CardChannel || got.FromAP != clean.FromAP || got.LiveMask != clean.LiveMask {
		t.Fatalf("capture metadata changed: %+v", got)
	}
	if caps[1].Frame != nil || !bytes.Equal(caps[1].Raw, corrupt.Raw) {
		t.Fatalf("corrupt capture mutated: %+v", caps[1])
	}
}

func TestItemWithUndecodableFrameBytesQuarantines(t *testing.T) {
	it := Item{HasFrame: true, Data: []byte{0xba, 0xdf, 0x00, 0xd5}}
	c := it.ToCapture()
	if c.Frame != nil {
		t.Fatal("undecodable frame bytes produced a decoded frame")
	}
	if len(c.Raw) == 0 {
		t.Fatal("undecodable frame bytes should survive as Raw for quarantine")
	}
}
