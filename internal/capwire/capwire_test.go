package capwire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/sniffer"
)

// countingSink is an engine stand-in: it ingests decodable captures,
// quarantines the rest, and records per-frame identities so tests can
// prove exactly-once ingest.
type countingSink struct {
	mu          sync.Mutex
	ingested    int
	quarantined int
	seen        map[string]int // Addr2/Seq -> ingest count
}

func newCountingSink() *countingSink {
	return &countingSink{seen: make(map[string]int)}
}

func (s *countingSink) ingest(agent string, caps []sniffer.Capture) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range caps {
		if c.Frame == nil {
			s.quarantined++
			continue
		}
		s.seen[fmt.Sprintf("%v/%d", c.Frame.Addr2, c.Frame.Seq)]++
		s.ingested++
		n++
	}
	return n
}

func (s *countingSink) snapshot() (ingested, quarantined, maxDup int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.seen {
		if n > maxDup {
			maxDup = n
		}
	}
	return s.ingested, s.quarantined, maxDup
}

// startServer runs a capwire server on a loopback listener.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// uniqueCaptures builds n decodable captures with unique frame
// identities drawn from (tag, from).
func uniqueCaptures(tag byte, from, n int) []sniffer.Capture {
	caps := make([]sniffer.Capture, 0, n)
	for i := from; i < from+n; i++ {
		src := dot11.MAC{0x02, tag, byte(i >> 16), byte(i >> 8), byte(i), 0x01}
		caps = append(caps, sniffer.Capture{
			TimeSec: float64(i) * 0.01,
			Frame:   dot11.NewProbeRequest(src, "net", uint16(i%4096)),
			Channel: 6, CardChannel: 6, SNRDB: 20, LiveMask: 1,
		})
	}
	return caps
}

func fastClient(t *testing.T, addr, id string, mod func(*ClientConfig)) *Client {
	t.Helper()
	cfg := ClientConfig{
		Addr: addr, AgentID: id,
		HeartbeatEvery: 20 * time.Millisecond,
		ReadTimeout:    300 * time.Millisecond,
		WriteTimeout:   300 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerHappyPath(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{Ingest: sink.ingest})
	c := fastClient(t, addr, "hp-agent", nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	total := 0
	for b := 0; b < 20; b++ {
		caps := uniqueCaptures(0x10, total, 5)
		total += len(caps)
		if err := c.Send(ctx, caps); err != nil {
			t.Fatalf("send %d: %v", b, err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	ingested, quarantined, maxDup := sink.snapshot()
	if ingested != total || quarantined != 0 || maxDup > 1 {
		t.Fatalf("sink: ingested %d quarantined %d maxDup %d, want %d/0/<=1", ingested, quarantined, maxDup, total)
	}
	cs := c.Stats()
	if cs.AckedBatches != 20 || cs.AckedFrames != uint64(total) || cs.Pending != 0 {
		t.Fatalf("client stats: %+v", cs)
	}
	agents := srv.Agents()
	if len(agents) != 1 {
		t.Fatalf("%d agents", len(agents))
	}
	a := agents[0]
	if a.ID != "hp-agent" || a.Cursor != 20 || a.BatchesIngested != 20 ||
		a.FramesIngested != uint64(total) || !a.AccountingOk || !a.Connected {
		t.Fatalf("agent status: %+v", a)
	}
	tot := srv.Totals()
	if !tot.AccountingOk || tot.FramesIngested != uint64(total) || tot.P99BatchMs <= 0 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestBounceResumesWithoutDoubleIngest(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{Ingest: sink.ingest})
	c := fastClient(t, addr, "bounce-agent", nil)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	total := 0
	for b := 0; b < 30; b++ {
		caps := uniqueCaptures(0x20, total, 3)
		total += len(caps)
		if err := c.Send(ctx, caps); err != nil {
			t.Fatalf("send %d: %v", b, err)
		}
		if b%10 == 9 {
			// Drain first so a session is certainly established — Bounce
			// on a not-yet-connected client is a no-op.
			if err := c.Flush(ctx); err != nil {
				t.Fatalf("flush before bounce: %v", err)
			}
			c.Bounce()
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	ingested, quarantined, maxDup := sink.snapshot()
	if ingested != total || quarantined != 0 || maxDup > 1 {
		t.Fatalf("sink: ingested %d quarantined %d maxDup %d, want %d/0/<=1", ingested, quarantined, maxDup, total)
	}
	a := srv.Agents()[0]
	if !a.AccountingOk {
		t.Fatalf("accounting broken: %+v", a)
	}
	if a.BatchesReceived != a.BatchesIngested+a.BatchesDeduped {
		t.Fatalf("batch accounting: %+v", a)
	}
	cs := c.Stats()
	if cs.Handshakes < 2 {
		t.Fatalf("expected reconnects after bounces, stats: %+v", cs)
	}
	if a.Resumes < 1 {
		t.Fatalf("expected a resume after bounce: %+v", a)
	}
}

func TestRestartedAgentAdoptsPersistedCursor(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{
		Ingest:  sink.ingest,
		Cursors: map[string]uint64{"cold-agent": 5},
	})
	c := fastClient(t, addr, "cold-agent", nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for b := 0; b < 3; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x30, b*2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	a := srv.Agents()[0]
	if a.Cursor != 8 {
		t.Fatalf("cursor = %d, want 8 (5 persisted + 3 sent)", a.Cursor)
	}
	if a.Resumes != 1 {
		t.Fatalf("a restart against a persisted cursor is a resume: %+v", a)
	}
	ingested, _, _ := sink.snapshot()
	if ingested != 6 {
		t.Fatalf("ingested %d, want 6", ingested)
	}
}

func TestOverflowDropOldestCountsEviction(t *testing.T) {
	// Dial into a black hole: connections accepted, never answered, so
	// nothing is ever sent and the queue can only grow.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c := fastClient(t, lis.Addr().String(), "drop-agent", func(cfg *ClientConfig) {
		cfg.QueueBatches = 4
		cfg.Overflow = OverflowDropOldest
	})
	ctx := context.Background()
	for b := 0; b < 10; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x40, b*2, 2)); err != nil {
			t.Fatalf("drop-oldest send should not block: %v", err)
		}
	}
	cs := c.Stats()
	if cs.Pending != 4 {
		t.Fatalf("pending = %d, want 4", cs.Pending)
	}
	if cs.DroppedBatches != 6 || cs.DroppedFrames != 12 {
		t.Fatalf("drops = %d batches / %d frames, want 6 / 12", cs.DroppedBatches, cs.DroppedFrames)
	}
}

// offlineClient builds a client whose dialer always fails, so the queue
// is never touched by a session and tests can stage its state directly.
func offlineClient(t *testing.T, id string, mod func(*ClientConfig)) *Client {
	t.Helper()
	return fastClient(t, "offline", id, func(cfg *ClientConfig) {
		cfg.Dial = func(context.Context, string) (net.Conn, error) {
			return nil, errors.New("offline")
		}
		if mod != nil {
			mod(cfg)
		}
	})
}

func TestDropOldestSparesRewoundTail(t *testing.T) {
	c := offlineClient(t, "rewind-agent", func(cfg *ClientConfig) {
		cfg.QueueBatches = 3
		cfg.Overflow = OverflowDropOldest
	})
	ctx := context.Background()
	for b := 0; b < 3; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x90, b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Stage the post-reconnect replay state: every queued batch was
	// transmitted on a dead session (seq assigned) and adoptCursor
	// rewound nextSend to 0. None of these may be evicted — dropping
	// one would leave a permanent gap the server rejects forever.
	c.mu.Lock()
	for i, pb := range c.queue {
		pb.seq = uint64(i + 1)
	}
	c.nextSend = 0
	c.mu.Unlock()

	short, cancel := context.WithTimeout(ctx, 60*time.Millisecond)
	defer cancel()
	if err := c.Send(short, uniqueCaptures(0x90, 10, 1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("send over a fully sent-unacked queue: %v, want DeadlineExceeded (block, never evict)", err)
	}
	if st := c.Stats(); st.DroppedBatches != 0 || st.Pending != 3 {
		t.Fatalf("a sent-unacked batch was evicted: %+v", st)
	}

	// An unsent batch queued behind the rewound tail is still fair game.
	c.mu.Lock()
	c.queue[2].seq = 0
	c.mu.Unlock()
	if err := c.Send(ctx, uniqueCaptures(0x90, 11, 1)); err != nil {
		t.Fatalf("send with an evictable unsent batch blocked: %v", err)
	}
	if st := c.Stats(); st.DroppedBatches != 1 || st.Pending != 3 {
		t.Fatalf("want exactly the unsent batch evicted: %+v", st)
	}
}

func TestAdoptCursorRenumbersAfterRegression(t *testing.T) {
	c := offlineClient(t, "renumber-agent", nil)
	ctx := context.Background()
	for b := 0; b < 3; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x91, b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Stage a life where batches 1..4 were acked and discarded and 5..7
	// are the retained sent-unacked tail.
	c.mu.Lock()
	for i, pb := range c.queue {
		pb.seq = uint64(5 + i)
	}
	c.nextSeq = 8
	c.mu.Unlock()

	// A restarted engine answers the handshake with a stale cursor file
	// that only recorded 2: replaying seq 5 would be an eternal gap, so
	// the retained tail must renumber contiguously from 3.
	c.adoptCursor(nil, 2)

	c.mu.Lock()
	var got []uint64
	for _, pb := range c.queue {
		got = append(got, pb.seq)
	}
	nextSeq, nextSend := c.nextSeq, c.nextSend
	c.mu.Unlock()
	if fmt.Sprint(got) != "[3 4 5]" {
		t.Fatalf("queue seqs %v, want [3 4 5]", got)
	}
	if nextSeq != 6 || nextSend != 0 {
		t.Fatalf("nextSeq %d nextSend %d, want 6 / 0", nextSeq, nextSend)
	}
	if st := c.Stats(); st.RenumberedBatches != 3 {
		t.Fatalf("RenumberedBatches = %d, want 3", st.RenumberedBatches)
	}
}

func TestStaleCursorRestartRecovers(t *testing.T) {
	sink := newCountingSink()
	// An indirect dialer lets the client chase the "restarted engine"
	// onto its new port.
	var addr atomic.Value
	dial := func(ctx context.Context, _ string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr.Load().(string))
	}
	srv1, a1 := startServer(t, ServerConfig{Ingest: sink.ingest})
	addr.Store(a1)
	c := fastClient(t, "indirect", "restart-agent", func(cfg *ClientConfig) {
		cfg.Dial = dial
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	total := 0
	for b := 0; b < 5; b++ {
		caps := uniqueCaptures(0xA0, total, 2)
		total += len(caps)
		if err := c.Send(ctx, caps); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// The engine restarts with a cursor file lagging what the client
	// already discarded on ack: 5 batches acked, the file recorded 2.
	// The session must renumber and make progress, not gap-cut forever.
	srv2, a2 := startServer(t, ServerConfig{
		Ingest:  sink.ingest,
		Cursors: map[string]uint64{"restart-agent": 2},
	})
	addr.Store(a2)
	for b := 0; b < 3; b++ {
		caps := uniqueCaptures(0xA1, b*2, 2)
		total += len(caps)
		if err := c.Send(ctx, caps); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush after cursor regression livelocked: %v", err)
	}

	ingested, quarantined, maxDup := sink.snapshot()
	if ingested != total || quarantined != 0 || maxDup > 1 {
		t.Fatalf("sink: ingested %d quarantined %d maxDup %d, want %d/0/<=1", ingested, quarantined, maxDup, total)
	}
	a := srv2.Agents()[0]
	if a.Cursor != 5 || a.BatchesIngested != 3 || !a.AccountingOk {
		t.Fatalf("post-restart agent status: %+v", a)
	}
}

func TestOverflowBlockHonorsContext(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c := fastClient(t, lis.Addr().String(), "block-agent", func(cfg *ClientConfig) {
		cfg.QueueBatches = 2
		cfg.Overflow = OverflowBlock
	})
	ctx := context.Background()
	for b := 0; b < 2; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x50, b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	short, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Send(short, uniqueCaptures(0x50, 10, 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked send: %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("send returned before the context deadline")
	}
	if dropped := c.Stats().DroppedBatches; dropped != 0 {
		t.Fatalf("block policy dropped %d batches", dropped)
	}
}

func TestSlowLorisConnIsCutOthersSurvive(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{
		Ingest:      sink.ingest,
		ReadTimeout: 150 * time.Millisecond,
	})

	// The slow loris: handshakes, then dribbles half a batch and stalls.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, _ := EncodeMessage(&Hello{AgentID: "loris"})
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatalf("helloack: %v", err)
	}
	batch, _ := EncodeMessage(&Batch{Seq: 1, Items: []Item{{TimeSec: 1, Data: []byte{1, 2, 3}}}})
	if _, err := conn.Write(batch[:len(batch)/2]); err != nil {
		t.Fatal(err)
	}

	// A healthy agent keeps flowing while the loris hangs.
	c := fastClient(t, addr, "healthy", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Send(ctx, uniqueCaptures(0x60, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("healthy agent starved by slow loris: %v", err)
	}

	// The server must cut the loris at its read deadline: our next read
	// on the stalled conn reports the close.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("slow-loris conn still open well past the server read deadline")
	}
	for _, a := range srv.Agents() {
		if a.ID == "loris" && a.Connected {
			t.Fatalf("loris still marked connected: %+v", a)
		}
	}
}

func TestStaleAgentFlipsHealth(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{Ingest: sink.ingest})
	c := fastClient(t, addr, "stale-agent", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Send(ctx, uniqueCaptures(0x70, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if reasons := srv.HealthReasons(time.Minute); len(reasons) != 0 {
		t.Fatalf("fresh agent reported unhealthy: %v", reasons)
	}
	c.Close()
	time.Sleep(50 * time.Millisecond)
	reasons := srv.HealthReasons(time.Millisecond)
	if len(reasons) == 0 {
		t.Fatal("silent agent not reported")
	}
}

func TestCursorSaveLoadRoundTrip(t *testing.T) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{Ingest: sink.ingest})
	c := fastClient(t, addr, "persist-agent", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for b := 0; b < 4; b++ {
		if err := c.Send(ctx, uniqueCaptures(0x80, b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), CursorFileName)
	if err := srv.SaveCursors(path, 17); err != nil {
		t.Fatal(err)
	}
	cursors, gen, err := LoadCursors(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 17 {
		t.Fatalf("generation = %d, want 17", gen)
	}
	if cursors["persist-agent"] != 4 {
		t.Fatalf("cursors = %v, want persist-agent: 4", cursors)
	}

	missing, gen, err := LoadCursors(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || gen != 0 || len(missing) != 0 {
		t.Fatalf("missing file: %v %d %v", missing, gen, err)
	}
}
