package capwire

import "repro/internal/telemetry"

// Server-side per-agent metrics, labeled by agent ID. Cardinality is
// bounded by the deployed agent fleet (the registry guard caps label
// sets at 64 per family; a fleet larger than that should shard engines
// long before it shards a metrics page).
func mAgentBatches(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_batches_ingested_total",
		"Capture batches ingested from remote agents, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentFrames(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_frames_ingested_total",
		"Capture frames ingested from remote agents, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentQuarantined(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_frames_quarantined_total",
		"Agent-delivered frames the engine quarantined instead of ingesting, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentDedupedBatches(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_batches_deduped_total",
		"Replayed agent batches dropped by the server's cursor dedup, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentDedupedFrames(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_frames_deduped_total",
		"Frames inside replayed agent batches dropped by dedup, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentResumes(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_resumes_total",
		"Agent sessions resumed from a non-zero acked cursor, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentConnects(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_connects_total",
		"Agent session handshakes completed, by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentProtoErrors(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_protocol_errors_total",
		"Agent connections dropped for protocol violations (bad framing, seq gaps), by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentConnected(agent string) *telemetry.Gauge {
	return telemetry.Default().Gauge(
		"marauder_agent_connected",
		"Whether the agent currently holds a live session (1) or not (0), by agent.",
		telemetry.Labels{"agent": agent})
}

func mAgentLag(agent string) *telemetry.Gauge {
	return telemetry.Default().Gauge(
		"marauder_agent_lag_batches",
		"Agent-reported send-queue backlog at its last heartbeat, by agent.",
		telemetry.Labels{"agent": agent})
}

// mBatchSeconds times one batch's decode + engine ingest on the server.
// Unlabeled so a fleet-wide p99 falls out of one series.
func mBatchSeconds() *telemetry.Histogram {
	return telemetry.Default().Histogram(
		"marauder_agent_batch_seconds",
		"Server-side latency of one agent batch: wire decode through engine ingest.",
		telemetry.LatencyBuckets(), nil)
}

// Client-side metrics, labeled by agent ID (one per capagent process;
// several in cmd/soak's loopback mode).
func mClientQueueDepth(agent string) *telemetry.Gauge {
	return telemetry.Default().Gauge(
		"marauder_agent_send_queue_batches",
		"Batches waiting in the agent's bounded send queue (unsent + unacked), by agent.",
		telemetry.Labels{"agent": agent})
}

func mClientDropped(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_dropped_batches_total",
		"Batches dropped by the agent's drop-oldest overflow policy, by agent.",
		telemetry.Labels{"agent": agent})
}

func mClientReconnects(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_reconnects_total",
		"Completed client handshakes after the first, by agent.",
		telemetry.Labels{"agent": agent})
}

func mClientReplayed(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_replayed_batches_total",
		"Batches re-sent from the unacked tail after a reconnect, by agent.",
		telemetry.Labels{"agent": agent})
}

func mClientRenumbered(agent string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_agent_renumbered_batches_total",
		"Queued batches re-sequenced after a server cursor regression (engine restart with a stale cursor file), by agent.",
		telemetry.Labels{"agent": agent})
}
