// Package capwire is the distributed capture plane's wire protocol and
// runtime: a stdlib-only, length-prefixed, CRC-32-checksummed message
// stream that moves sniffer capture batches from remote agents
// (cmd/capagent) into the central engine (cmd/marauder).
//
// The protocol is built for flaky capture infrastructure. Delivery is
// at-least-once with exactly-once ingest accounting: every batch carries
// a per-agent monotonic sequence number, the server acks a cumulative
// cursor, an agent replays its unacked tail after a reconnect, and the
// server dedups anything at or below its cursor. The cursor persists
// alongside the obs checkpoint generation, so resume survives an engine
// restart too.
//
// Wire format (all integers big-endian):
//
//	message  = magic "MRCW" | version u8 | type u8 | payloadLen u32
//	           | payload | crc32 u32
//
// The CRC-32 (IEEE) covers version, type, payloadLen and payload — a
// bit-flipped message fails the checksum and is rejected at the framing
// layer, turning transport corruption into a clean reconnect + replay
// instead of poisoned ingest. One Write call carries exactly one message
// (the contract the faults.WirePlan conn wrapper relies on).
package capwire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/dot11"
	"repro/internal/sniffer"
)

// Protocol constants.
const (
	// Version is the protocol version carried in every message.
	Version = 1

	headerLen  = 10 // magic(4) + version(1) + type(1) + payloadLen(4)
	trailerLen = 4  // crc32

	// MaxPayload bounds a single message's payload; a decoder rejects
	// larger claims before allocating.
	MaxPayload = 8 << 20

	// MaxBatchItems bounds the captures in one batch.
	MaxBatchItems = 1 << 16

	// MaxAgentID bounds the agent identifier length.
	MaxAgentID = 128

	// maxItemData bounds one capture's encoded frame bytes; generous next
	// to dot11's ~2400-byte MTU but tight enough to starve hostile length
	// claims.
	maxItemData = 1 << 16
)

var magic = [4]byte{'M', 'R', 'C', 'W'}

// Message types.
const (
	// TypeHello opens a session: agent -> server, carries the agent ID.
	TypeHello = 1
	// TypeHelloAck answers a Hello: server -> agent, carries the agent's
	// resume cursor (highest contiguous batch seq the server has ingested).
	TypeHelloAck = 2
	// TypeBatch carries one capture batch: agent -> server.
	TypeBatch = 3
	// TypeAck acknowledges batches: server -> agent, cumulative cursor.
	TypeAck = 4
	// TypeHeartbeat keeps an idle session alive: agent -> server; the
	// server answers with an Ack so both directions see traffic.
	TypeHeartbeat = 5
)

// Hello opens an agent session.
type Hello struct {
	// AgentID names the agent; the server keys cursors and accounting
	// by it. 1..MaxAgentID bytes.
	AgentID string
}

// HelloAck completes the handshake with the agent's resume cursor.
type HelloAck struct {
	// Cursor is the highest contiguous batch seq the server has ingested
	// for this agent; the agent resumes from Cursor+1.
	Cursor uint64
}

// Ack acknowledges every batch up to and including Cursor.
type Ack struct {
	Cursor uint64
}

// Heartbeat is the agent's keepalive; QueuedBatches reports its send
// backlog so the server can expose per-agent lag.
type Heartbeat struct {
	QueuedBatches uint32
}

// Item is one capture on the wire. Data holds the encoded 802.11 frame
// when HasFrame is set, or the raw (possibly corrupt) capture bytes when
// not; either way the server hands the result to the engine, whose
// quarantine path owns undecodable frames.
type Item struct {
	TimeSec     float64
	SNRDB       float64
	Channel     uint16
	CardChannel uint16
	LiveMask    uint16
	FromAP      bool
	HasFrame    bool
	Data        []byte
}

// Batch is one sequenced capture batch.
type Batch struct {
	// Seq is the agent-assigned monotonic batch sequence number,
	// starting at 1.
	Seq   uint64
	Items []Item
}

// itemFlags bits.
const (
	flagFromAP   = 1 << 0
	flagHasFrame = 1 << 1
)

// AppendMessage appends msg's wire encoding to dst and returns the
// extended slice. msg must be one of *Hello, *HelloAck, *Batch, *Ack,
// *Heartbeat.
func AppendMessage(dst []byte, msg any) ([]byte, error) {
	var typ byte
	var payload []byte
	switch m := msg.(type) {
	case *Hello:
		if len(m.AgentID) == 0 || len(m.AgentID) > MaxAgentID {
			return nil, fmt.Errorf("capwire: agent ID length %d, want 1..%d", len(m.AgentID), MaxAgentID)
		}
		typ = TypeHello
		payload = make([]byte, 0, 2+len(m.AgentID))
		payload = binary.BigEndian.AppendUint16(payload, uint16(len(m.AgentID)))
		payload = append(payload, m.AgentID...)
	case *HelloAck:
		typ = TypeHelloAck
		payload = binary.BigEndian.AppendUint64(nil, m.Cursor)
	case *Ack:
		typ = TypeAck
		payload = binary.BigEndian.AppendUint64(nil, m.Cursor)
	case *Heartbeat:
		typ = TypeHeartbeat
		payload = binary.BigEndian.AppendUint32(nil, m.QueuedBatches)
	case *Batch:
		if len(m.Items) > MaxBatchItems {
			return nil, fmt.Errorf("capwire: batch has %d items, max %d", len(m.Items), MaxBatchItems)
		}
		typ = TypeBatch
		payload = binary.BigEndian.AppendUint64(nil, m.Seq)
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(m.Items)))
		for i := range m.Items {
			it := &m.Items[i]
			if len(it.Data) > maxItemData {
				return nil, fmt.Errorf("capwire: item %d data %d bytes, max %d", i, len(it.Data), maxItemData)
			}
			payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(it.TimeSec))
			payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(it.SNRDB))
			payload = binary.BigEndian.AppendUint16(payload, it.Channel)
			payload = binary.BigEndian.AppendUint16(payload, it.CardChannel)
			payload = binary.BigEndian.AppendUint16(payload, it.LiveMask)
			var flags byte
			if it.FromAP {
				flags |= flagFromAP
			}
			if it.HasFrame {
				flags |= flagHasFrame
			}
			payload = append(payload, flags)
			payload = binary.BigEndian.AppendUint32(payload, uint32(len(it.Data)))
			payload = append(payload, it.Data...)
		}
	default:
		return nil, fmt.Errorf("capwire: cannot encode %T", msg)
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("capwire: payload %d bytes, max %d", len(payload), MaxPayload)
	}

	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start+4 : len(dst)]) // version..payload
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return dst, nil
}

// EncodeMessage returns msg's wire encoding.
func EncodeMessage(msg any) ([]byte, error) {
	return AppendMessage(nil, msg)
}

// DecodeMessage decodes one message from the front of b, returning the
// message and the number of bytes consumed. Any framing, checksum or
// payload violation is an error; decoding never panics on arbitrary
// input, and an accepted message re-encodes to exactly the consumed
// bytes.
func DecodeMessage(b []byte) (any, int, error) {
	if len(b) < headerLen+trailerLen {
		return nil, 0, fmt.Errorf("capwire: short message: %d bytes", len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, 0, fmt.Errorf("capwire: bad magic %x", b[:4])
	}
	if b[4] != Version {
		return nil, 0, fmt.Errorf("capwire: unsupported version %d", b[4])
	}
	typ := b[5]
	plen := binary.BigEndian.Uint32(b[6:10])
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("capwire: payload claims %d bytes, max %d", plen, MaxPayload)
	}
	total := headerLen + int(plen) + trailerLen
	if len(b) < total {
		return nil, 0, fmt.Errorf("capwire: message claims %d bytes, have %d", total, len(b))
	}
	payload := b[headerLen : headerLen+int(plen)]
	want := binary.BigEndian.Uint32(b[total-trailerLen : total])
	if got := crc32.ChecksumIEEE(b[4 : total-trailerLen]); got != want {
		return nil, 0, fmt.Errorf("capwire: checksum mismatch: %08x != %08x", got, want)
	}
	msg, err := decodePayload(typ, payload)
	if err != nil {
		return nil, 0, err
	}
	return msg, total, nil
}

// decodePayload parses a checksum-verified payload for one message type,
// rejecting trailing or missing bytes so decode(encode(m)) is exact.
func decodePayload(typ byte, p []byte) (any, error) {
	switch typ {
	case TypeHello:
		if len(p) < 2 {
			return nil, fmt.Errorf("capwire: hello payload %d bytes", len(p))
		}
		n := int(binary.BigEndian.Uint16(p[:2]))
		if n == 0 || n > MaxAgentID || len(p) != 2+n {
			return nil, fmt.Errorf("capwire: hello ID length %d, payload %d", n, len(p))
		}
		return &Hello{AgentID: string(p[2 : 2+n])}, nil
	case TypeHelloAck:
		if len(p) != 8 {
			return nil, fmt.Errorf("capwire: helloack payload %d bytes, want 8", len(p))
		}
		return &HelloAck{Cursor: binary.BigEndian.Uint64(p)}, nil
	case TypeAck:
		if len(p) != 8 {
			return nil, fmt.Errorf("capwire: ack payload %d bytes, want 8", len(p))
		}
		return &Ack{Cursor: binary.BigEndian.Uint64(p)}, nil
	case TypeHeartbeat:
		if len(p) != 4 {
			return nil, fmt.Errorf("capwire: heartbeat payload %d bytes, want 4", len(p))
		}
		return &Heartbeat{QueuedBatches: binary.BigEndian.Uint32(p)}, nil
	case TypeBatch:
		if len(p) < 12 {
			return nil, fmt.Errorf("capwire: batch payload %d bytes", len(p))
		}
		b := &Batch{Seq: binary.BigEndian.Uint64(p[:8])}
		count := binary.BigEndian.Uint32(p[8:12])
		if count > MaxBatchItems {
			return nil, fmt.Errorf("capwire: batch claims %d items, max %d", count, MaxBatchItems)
		}
		p = p[12:]
		b.Items = make([]Item, 0, min(int(count), 1024))
		for i := uint32(0); i < count; i++ {
			const itemHeader = 8 + 8 + 2 + 2 + 2 + 1 + 4
			if len(p) < itemHeader {
				return nil, fmt.Errorf("capwire: batch item %d: %d bytes left", i, len(p))
			}
			it := Item{
				TimeSec:     math.Float64frombits(binary.BigEndian.Uint64(p[0:8])),
				SNRDB:       math.Float64frombits(binary.BigEndian.Uint64(p[8:16])),
				Channel:     binary.BigEndian.Uint16(p[16:18]),
				CardChannel: binary.BigEndian.Uint16(p[18:20]),
				LiveMask:    binary.BigEndian.Uint16(p[20:22]),
			}
			flags := p[22]
			if flags&^(flagFromAP|flagHasFrame) != 0 {
				return nil, fmt.Errorf("capwire: batch item %d: unknown flags %02x", i, flags)
			}
			it.FromAP = flags&flagFromAP != 0
			it.HasFrame = flags&flagHasFrame != 0
			dlen := binary.BigEndian.Uint32(p[23:27])
			if dlen > maxItemData {
				return nil, fmt.Errorf("capwire: batch item %d: data claims %d bytes", i, dlen)
			}
			p = p[itemHeader:]
			if len(p) < int(dlen) {
				return nil, fmt.Errorf("capwire: batch item %d: data %d bytes, %d left", i, dlen, len(p))
			}
			if dlen > 0 {
				it.Data = append([]byte(nil), p[:dlen]...)
			}
			p = p[dlen:]
			b.Items = append(b.Items, it)
		}
		if len(p) != 0 {
			return nil, fmt.Errorf("capwire: batch has %d trailing bytes", len(p))
		}
		return b, nil
	}
	return nil, fmt.Errorf("capwire: unknown message type %d", typ)
}

// ReadMessage reads exactly one message from r. It allocates at most
// MaxPayload bytes for the payload and returns any framing error as-is;
// io.EOF before the first header byte means a clean close.
func ReadMessage(r io.Reader) (any, error) {
	head := make([]byte, headerLen)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if [4]byte(head[:4]) != magic {
		return nil, fmt.Errorf("capwire: bad magic %x", head[:4])
	}
	if head[4] != Version {
		return nil, fmt.Errorf("capwire: unsupported version %d", head[4])
	}
	plen := binary.BigEndian.Uint32(head[6:10])
	if plen > MaxPayload {
		return nil, fmt.Errorf("capwire: payload claims %d bytes, max %d", plen, MaxPayload)
	}
	rest := make([]byte, int(plen)+trailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	buf := append(head, rest...)
	msg, _, err := DecodeMessage(buf)
	return msg, err
}

// ItemFromCapture converts a sniffer capture to its wire form. Decoded
// frames are re-encoded (bit-exact by dot11's round-trip contract);
// corrupt captures travel as their raw bytes with HasFrame unset.
func ItemFromCapture(c sniffer.Capture) (Item, error) {
	it := Item{
		TimeSec:     c.TimeSec,
		SNRDB:       c.SNRDB,
		Channel:     clampUint16(c.Channel),
		CardChannel: clampUint16(c.CardChannel),
		LiveMask:    c.LiveMask,
		FromAP:      c.FromAP,
	}
	if c.Frame != nil {
		data, err := c.Frame.Encode()
		if err != nil {
			return Item{}, fmt.Errorf("capwire: encode frame: %w", err)
		}
		it.Data = data
		it.HasFrame = true
	} else {
		it.Data = c.Raw
	}
	return it, nil
}

// ToCapture converts a wire item back to a sniffer capture. An item
// whose frame bytes no longer decode (wire corruption beyond what the
// CRC caught cannot reach here; this covers agent-side corruption sent
// deliberately as HasFrame) degrades to a raw capture for the engine's
// quarantine path.
func (it Item) ToCapture() sniffer.Capture {
	c := sniffer.Capture{
		TimeSec:     it.TimeSec,
		Channel:     int(it.Channel),
		CardChannel: int(it.CardChannel),
		SNRDB:       it.SNRDB,
		FromAP:      it.FromAP,
		LiveMask:    it.LiveMask,
	}
	if it.HasFrame {
		if f, err := dot11.Decode(it.Data); err == nil {
			c.Frame = f
			return c
		}
	}
	c.Raw = append([]byte(nil), it.Data...)
	return c
}

// BatchFromCaptures builds a sequenced wire batch from captures.
func BatchFromCaptures(seq uint64, caps []sniffer.Capture) (*Batch, error) {
	b := &Batch{Seq: seq, Items: make([]Item, 0, len(caps))}
	for i, c := range caps {
		it, err := ItemFromCapture(c)
		if err != nil {
			return nil, fmt.Errorf("capwire: capture %d: %w", i, err)
		}
		b.Items = append(b.Items, it)
	}
	return b, nil
}

// ToCaptures converts the batch's items for engine ingest.
func (b *Batch) ToCaptures() []sniffer.Capture {
	caps := make([]sniffer.Capture, 0, len(b.Items))
	for _, it := range b.Items {
		caps = append(caps, it.ToCapture())
	}
	return caps
}

func clampUint16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(v)
}
