package capwire

import (
	"bytes"
	"testing"
)

// FuzzCapwireDecode is the codec's safety contract: arbitrary bytes
// never panic the decoder, and any message it accepts re-encodes to
// exactly the bytes it consumed — so a server that survives the fuzzer
// cannot be wedged or desynced by a hostile or fault-mangled agent.
func FuzzCapwireDecode(f *testing.F) {
	for _, msg := range []any{
		&Hello{AgentID: "agent-1"},
		&HelloAck{Cursor: 41},
		&Ack{Cursor: 1 << 40},
		&Heartbeat{QueuedBatches: 3},
		&Batch{Seq: 7, Items: []Item{
			{TimeSec: 1.5, SNRDB: 20, Channel: 6, CardChannel: 6, LiveMask: 1, HasFrame: true, Data: []byte{1, 2, 3}},
			{TimeSec: 2, FromAP: true},
		}},
	} {
		b, err := EncodeMessage(msg)
		if err != nil {
			f.Fatalf("seed encode %T: %v", msg, err)
		}
		f.Add(b)
		// Mutated variants: flipped CRC, truncated tail, version skew.
		flip := append([]byte(nil), b...)
		flip[len(flip)-1] ^= 0xFF
		f.Add(flip)
		f.Add(b[:len(b)-2])
		skew := append([]byte(nil), b...)
		skew[4] = 2
		f.Add(skew)
	}
	f.Add([]byte("MRCW"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := DecodeMessage(data)
		if err != nil {
			if msg != nil || n != 0 {
				t.Fatalf("error with non-zero result: msg=%v n=%d", msg, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted message consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("lossy decode: consumed %x, re-encoded %x", data[:n], re)
		}
	})
}
