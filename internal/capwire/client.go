package capwire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/sniffer"
)

// ErrClosed is returned by Send and Flush after Close.
var ErrClosed = errors.New("capwire: client closed")

// OverflowPolicy decides what Send does when the bounded queue is full.
type OverflowPolicy int

const (
	// OverflowBlock makes Send wait for queue space — backpressure
	// propagates to the capture loop, no batch is ever dropped.
	OverflowBlock OverflowPolicy = iota
	// OverflowDropOldest makes Send evict the oldest never-transmitted
	// batch (seq still unassigned) to admit the new one. Batches that
	// have been sent at least once — including a rewound unacked tail
	// awaiting replay after a reconnect — are never evicted (dropping
	// one would tear a permanent hole in the seq stream); every
	// eviction is counted.
	OverflowDropOldest
)

// ParseOverflowPolicy parses the flag spelling of a policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "drop-oldest":
		return OverflowDropOldest, nil
	}
	return 0, fmt.Errorf("capwire: unknown overflow policy %q (want block or drop-oldest)", s)
}

// String returns the flag spelling.
func (p OverflowPolicy) String() string {
	if p == OverflowDropOldest {
		return "drop-oldest"
	}
	return "block"
}

// ClientConfig configures a streaming client.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// AgentID names this agent to the server (cursor + accounting key).
	AgentID string
	// QueueBatches bounds the send queue (unsent + sent-unacked);
	// <= 0 means 256.
	QueueBatches int
	// Overflow is the policy when the queue is full.
	Overflow OverflowPolicy
	// HeartbeatEvery is the idle keepalive period; <= 0 means 1s.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds one message write; <= 0 means 5s.
	WriteTimeout time.Duration
	// ReadTimeout bounds the wait for the next server message; <= 0
	// means 4x HeartbeatEvery (the server acks every heartbeat, so a
	// healthy session always has inbound traffic).
	ReadTimeout time.Duration
	// BackoffMin / BackoffMax bound the jittered exponential reconnect
	// backoff; <= 0 mean 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// Dial overrides the dialer (tests, fault wrappers); nil means a
	// plain TCP dial.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// WrapConn, when set, wraps every new connection — the hook the
	// faults.WirePlan plugs into.
	WrapConn func(net.Conn) net.Conn
	// Logf, when set, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.QueueBatches <= 0 {
		cfg.QueueBatches = 256
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 4 * cfg.HeartbeatEvery
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
}

// ClientStats is a point-in-time snapshot of a client's accounting.
type ClientStats struct {
	// EnqueuedBatches / EnqueuedFrames count everything Send accepted.
	EnqueuedBatches uint64 `json:"enqueuedBatches"`
	EnqueuedFrames  uint64 `json:"enqueuedFrames"`
	// AckedBatches / AckedFrames count everything the server has acked.
	AckedBatches uint64 `json:"ackedBatches"`
	AckedFrames  uint64 `json:"ackedFrames"`
	// DroppedBatches / DroppedFrames count drop-oldest evictions.
	DroppedBatches uint64 `json:"droppedBatches"`
	DroppedFrames  uint64 `json:"droppedFrames"`
	// ReplayedBatches counts re-sends of the unacked tail after
	// reconnects.
	ReplayedBatches uint64 `json:"replayedBatches"`
	// RenumberedBatches counts queued batches re-sequenced after a
	// server cursor regression (an engine restart restored a cursor
	// file lagging batches this client had already discarded on ack).
	RenumberedBatches uint64 `json:"renumberedBatches"`
	// Handshakes counts completed Hello/HelloAck exchanges; Resumes
	// counts the subset that adopted a non-zero server cursor.
	Handshakes uint64 `json:"handshakes"`
	Resumes    uint64 `json:"resumes"`
	// DialFailures counts failed connection attempts.
	DialFailures uint64 `json:"dialFailures"`
	// Pending is the current queue depth (unsent + unacked).
	Pending int `json:"pending"`
	// Cursor is the highest server-acked batch seq.
	Cursor uint64 `json:"cursor"`
	// Connected reports whether a session is currently established.
	Connected bool `json:"connected"`
}

// pendingBatch is one queued batch. seq is 0 until its first
// transmission — assigning at send (not enqueue) keeps the seq stream
// gapless under drop-oldest eviction of unsent batches.
type pendingBatch struct {
	seq    uint64
	items  []Item
	frames int
}

// Client streams capture batches to a capwire server with bounded
// queueing, reconnect and resume. Safe for concurrent use.
type Client struct {
	cfg ClientConfig

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*pendingBatch
	nextSend int    // queue index of the first unsent batch
	nextSeq  uint64 // next seq to assign (first batch gets 1)
	closed   bool
	conn     net.Conn // live session conn, nil between sessions
	rng      *rand.Rand

	stats   ClientStats
	done    chan struct{}
	cancel  context.CancelFunc
	lastErr error
}

// NewClient validates the config and starts the connection loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("capwire: ClientConfig.Addr is required")
	}
	if cfg.AgentID == "" || len(cfg.AgentID) > MaxAgentID {
		return nil, fmt.Errorf("capwire: agent ID %q, want 1..%d bytes", cfg.AgentID, MaxAgentID)
	}
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		cfg:     cfg,
		nextSeq: 1,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		done:    make(chan struct{}),
		cancel:  cancel,
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run(ctx)
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Send enqueues one capture batch. Empty batches are ignored. Under
// OverflowBlock a full queue blocks until space frees, ctx is done, or
// the client closes; under OverflowDropOldest the oldest unsent batch
// is evicted (counted) and Send returns immediately unless every queued
// batch is already in flight awaiting ack.
func (c *Client) Send(ctx context.Context, caps []sniffer.Capture) error {
	if len(caps) == 0 {
		return nil
	}
	b, err := BatchFromCaptures(0, caps)
	if err != nil {
		return err
	}
	pb := &pendingBatch{items: b.Items, frames: len(b.Items)}

	c.mu.Lock()
	defer c.mu.Unlock()
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()
	for {
		if c.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(c.queue) < c.cfg.QueueBatches {
			break
		}
		if c.cfg.Overflow == OverflowDropOldest {
			if i := c.oldestUnsentLocked(); i >= 0 {
				victim := c.queue[i]
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				c.stats.DroppedBatches++
				c.stats.DroppedFrames += uint64(victim.frames)
				mClientDropped(c.cfg.AgentID).Inc()
				continue
			}
		}
		// Block (or drop-oldest with every queued batch already
		// transmitted and awaiting ack or replay): wait for an ack to
		// free space.
		if stopWatch == nil && ctx.Done() != nil {
			stopWatch = context.AfterFunc(ctx, c.cond.Broadcast)
		}
		c.cond.Wait()
	}
	c.queue = append(c.queue, pb)
	c.stats.EnqueuedBatches++
	c.stats.EnqueuedFrames += uint64(pb.frames)
	mClientQueueDepth(c.cfg.AgentID).Set(float64(len(c.queue)))
	c.cond.Broadcast()
	return nil
}

// oldestUnsentLocked returns the index of the oldest never-transmitted
// batch (seq still unassigned), or -1 if every queued batch has been
// sent at least once. Indexes below nextSend always carry a seq;
// after adoptCursor rewinds nextSend for replay, a sent-unacked tail
// (seq != 0) precedes the unsent batches, so the scan must check seqs
// rather than trust nextSend alone.
func (c *Client) oldestUnsentLocked() int {
	for i := c.nextSend; i < len(c.queue); i++ {
		if c.queue[i].seq == 0 {
			return i
		}
	}
	return -1
}

// Flush blocks until every enqueued batch has been acked by the server,
// ctx expires, or the client closes.
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()
	for len(c.queue) > 0 {
		if c.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if stopWatch == nil && ctx.Done() != nil {
			stopWatch = context.AfterFunc(ctx, c.cond.Broadcast)
		}
		c.cond.Wait()
	}
	return nil
}

// Bounce drops the current connection, forcing a reconnect + resume
// cycle — the programmatic stand-in for a torn network.
func (c *Client) Bounce() {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close stops the client. Queued batches are abandoned; call Flush
// first for a clean drain.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	c.cancel()
	if conn != nil {
		conn.Close()
	}
	c.cond.Broadcast()
	<-c.done
	return nil
}

// Stats returns a snapshot of the client's accounting.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Pending = len(c.queue)
	s.Connected = c.conn != nil
	return s
}

// run is the connection lifecycle loop: dial, handshake, pump, back off,
// repeat until Close.
func (c *Client) run(ctx context.Context) {
	defer close(c.done)
	backoff := c.cfg.BackoffMin
	for {
		if ctx.Err() != nil || c.isClosed() {
			return
		}
		conn, err := c.dial(ctx)
		if err != nil {
			c.mu.Lock()
			c.stats.DialFailures++
			c.lastErr = err
			c.mu.Unlock()
			c.logf("capwire: dial %s: %v (retry in %v)", c.cfg.Addr, err, backoff)
			if !c.sleep(ctx, c.jitter(backoff)) {
				return
			}
			backoff = c.nextBackoff(backoff)
			continue
		}
		err = c.session(conn)
		conn.Close()
		c.mu.Lock()
		c.conn = nil
		if err != nil {
			c.lastErr = err
		}
		c.mu.Unlock()
		if ctx.Err() != nil || c.isClosed() {
			return
		}
		// A completed handshake counts as progress: reset the backoff so
		// a flaky-but-reachable server is retried promptly.
		if errors.Is(err, errHandshake) {
			backoff = c.nextBackoff(backoff)
		} else {
			backoff = c.cfg.BackoffMin
		}
		c.logf("capwire: session %s ended: %v (reconnect in ~%v)", c.cfg.Addr, err, backoff)
		if !c.sleep(ctx, c.jitter(backoff)) {
			return
		}
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	dial := c.cfg.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, c.cfg.Addr)
	if err != nil {
		return nil, err
	}
	if c.cfg.WrapConn != nil {
		conn = c.cfg.WrapConn(conn)
	}
	return conn, nil
}

// jitter spreads a backoff uniformly over [d/2, d) so a fleet of agents
// does not reconnect in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d
}

// sleep waits d or until ctx/Close; false means stop the loop.
func (c *Client) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// errHandshake tags session errors that happened before the handshake
// completed, so backoff keeps growing for unreachable/misbehaving
// servers but resets once a session was truly established.
var errHandshake = errors.New("capwire: handshake failed")

// session performs the handshake and pumps batches until the connection
// dies or the client closes.
func (c *Client) session(conn net.Conn) error {
	// Handshake: Hello out, HelloAck (resume cursor) back.
	hello, err := EncodeMessage(&Hello{AgentID: c.cfg.AgentID})
	if err != nil {
		return fmt.Errorf("%w: %v", errHandshake, err)
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err := conn.Write(hello); err != nil {
		return fmt.Errorf("%w: write hello: %v", errHandshake, err)
	}
	conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	msg, err := ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("%w: read helloack: %v", errHandshake, err)
	}
	ack, ok := msg.(*HelloAck)
	if !ok {
		return fmt.Errorf("%w: got %T, want HelloAck", errHandshake, msg)
	}
	c.adoptCursor(conn, ack.Cursor)

	// Reader: acks advance the cursor; any failure breaks the session.
	broken := make(chan struct{})
	var readErr error
	go func() {
		defer close(broken)
		for {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
			msg, err := ReadMessage(conn)
			if err != nil {
				readErr = err
				return
			}
			switch m := msg.(type) {
			case *Ack:
				c.handleAck(m.Cursor)
			case *HelloAck:
				c.handleAck(m.Cursor)
			default:
				readErr = fmt.Errorf("capwire: unexpected %T from server", msg)
				return
			}
		}
	}()
	// Wake the writer when the reader dies.
	go func() {
		<-broken
		c.cond.Broadcast()
	}()

	// Writer: queued batches, else heartbeats.
	lastWrite := time.Now()
	stopTick := make(chan struct{})
	defer close(stopTick)
	go func() {
		t := time.NewTicker(c.cfg.HeartbeatEvery / 2)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				c.cond.Broadcast()
			}
		}
	}()
	for {
		c.mu.Lock()
		for {
			if c.closed {
				c.mu.Unlock()
				return ErrClosed
			}
			if isChanClosed(broken) {
				c.mu.Unlock()
				return fmt.Errorf("capwire: read side failed: %w", readErr)
			}
			if c.nextSend < len(c.queue) || time.Since(lastWrite) >= c.cfg.HeartbeatEvery {
				break
			}
			c.cond.Wait()
		}
		var msg any
		if c.nextSend < len(c.queue) {
			pb := c.queue[c.nextSend]
			if pb.seq == 0 {
				pb.seq = c.nextSeq
				c.nextSeq++
			} else {
				// A seq assigned on an earlier connection: this is a
				// replay of the unacked tail.
				c.stats.ReplayedBatches++
				mClientReplayed(c.cfg.AgentID).Inc()
			}
			msg = &Batch{Seq: pb.seq, Items: pb.items}
			c.nextSend++
		} else {
			msg = &Heartbeat{QueuedBatches: uint32(len(c.queue))}
		}
		c.mu.Unlock()

		buf, err := EncodeMessage(msg)
		if err != nil {
			return fmt.Errorf("capwire: encode: %w", err)
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		if _, err := conn.Write(buf); err != nil {
			return fmt.Errorf("capwire: write: %w", err)
		}
		lastWrite = time.Now()
	}
}

func isChanClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// adoptCursor applies the server's resume cursor after a handshake:
// batches at or below it are acked, everything else rewinds for replay.
func (c *Client) adoptCursor(conn net.Conn, cursor uint64) {
	c.mu.Lock()
	c.conn = conn
	c.stats.Handshakes++
	if c.stats.Handshakes > 1 {
		mClientReconnects(c.cfg.AgentID).Inc()
	}
	if cursor > 0 {
		c.stats.Resumes++
	}
	if cursor >= c.nextSeq {
		// The server knows batches this client instance never assigned —
		// a restarted agent adopting its predecessor's cursor.
		c.nextSeq = cursor + 1
	}
	c.popAckedLocked(cursor)
	// Cursor regression: the server's cursor sits below the next seq it
	// will be offered (queue head, or nextSeq on an empty/unsent queue).
	// That happens when an engine restart restored a cursor file lagging
	// batches this client already acked and discarded — the skipped
	// window is lost server-side no matter what, but replaying the old
	// seqs would be rejected as a gap forever, livelocking the session.
	// Renumber the retained tail contiguously from cursor+1 so every
	// batch still held gets delivered. Safe against reordered or
	// duplicated batches: within one server process the cursor never
	// regresses, so this only fires on the authoritative handshake
	// cursor of a restarted server.
	head := c.nextSeq
	if len(c.queue) > 0 && c.queue[0].seq != 0 {
		head = c.queue[0].seq
	}
	var renumbered int
	if head > cursor+1 {
		seq := cursor
		for _, pb := range c.queue {
			if pb.seq == 0 {
				break
			}
			seq++
			pb.seq = seq
			renumbered++
		}
		c.nextSeq = seq + 1
		c.stats.RenumberedBatches += uint64(renumbered)
		if renumbered > 0 {
			mClientRenumbered(c.cfg.AgentID).Add(uint64(renumbered))
		}
	}
	// Everything still queued (sent-unacked included) goes back on the
	// wire in order.
	c.nextSend = 0
	resumed := cursor > 0
	c.mu.Unlock()
	c.cond.Broadcast()
	if head > cursor+1 {
		c.logf("capwire: %s server cursor %d regressed below head seq %d; renumbered %d queued batch(es) from %d",
			c.cfg.AgentID, cursor, head, renumbered, cursor+1)
	}
	if resumed {
		c.logf("capwire: %s resuming from cursor %d", c.cfg.AgentID, cursor)
	}
}

// handleAck advances on a cumulative server ack.
func (c *Client) handleAck(cursor uint64) {
	c.mu.Lock()
	c.popAckedLocked(cursor)
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *Client) popAckedLocked(cursor uint64) {
	if cursor > c.stats.Cursor {
		c.stats.Cursor = cursor
	}
	n := 0
	for n < len(c.queue) && c.queue[n].seq != 0 && c.queue[n].seq <= cursor {
		c.stats.AckedBatches++
		c.stats.AckedFrames += uint64(c.queue[n].frames)
		n++
	}
	if n > 0 {
		c.queue = append(c.queue[:0], c.queue[n:]...)
		c.nextSend -= n
		if c.nextSend < 0 {
			c.nextSend = 0
		}
	}
	mClientQueueDepth(c.cfg.AgentID).Set(float64(len(c.queue)))
}
