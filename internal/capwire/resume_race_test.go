package capwire

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sniffer"
)

// TestKillAndResumeAccounting is the acceptance invariant for the
// distributed capture plane, run under -race: for every wire-chaos seed,
// an agent that is torn down mid-stream (fault-plan tears, a simulated
// process kill, plus forced bounces) resumes from its acked cursor and
// the books balance exactly —
//
//	frames received by the server == ingested + quarantined + deduped
//	every unique frame ingested exactly once
//	every enqueued frame acked (nothing lost)
func TestKillAndResumeAccounting(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runKillAndResume(t, seed)
		})
	}
}

func runKillAndResume(t *testing.T, seed int64) {
	sink := newCountingSink()
	srv, addr := startServer(t, ServerConfig{
		Ingest:       sink.ingest,
		ReadTimeout:  400 * time.Millisecond,
		WriteTimeout: 400 * time.Millisecond,
	})
	plan, err := faults.NewWire(faults.WireConfig{
		Seed:         seed,
		TearProb:     0.05,
		TruncateProb: 0.04,
		CorruptProb:  0.06,
		DupProb:      0.08,
		ReorderProb:  0.08,
		StallProb:    0.02,
		StallSec:     0.03,
	})
	if err != nil {
		t.Fatal(err)
	}

	const agentID = "chaos-agent"
	newChaosClient := func() *Client {
		return fastClient(t, addr, agentID, func(cfg *ClientConfig) {
			cfg.QueueBatches = 32
			cfg.Overflow = OverflowBlock
			cfg.WrapConn = plan.WrapConn
			cfg.HeartbeatEvery = 15 * time.Millisecond
			cfg.ReadTimeout = 250 * time.Millisecond
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const batchesPerLife = 80
	const framesPerBatch = 4
	totalFrames, totalCorrupt := 0, 0
	sendLife := func(c *Client, tag byte) {
		t.Helper()
		for b := 0; b < batchesPerLife; b++ {
			caps := uniqueCaptures(tag, b*framesPerBatch, framesPerBatch)
			// Sprinkle agent-side corrupt captures: they must come out
			// the other end as quarantined, never as silent loss.
			if b%10 == 3 {
				caps[0] = sniffer.Capture{TimeSec: caps[0].TimeSec, Raw: []byte{0xba, 0xad}}
				totalCorrupt++
			}
			totalFrames += len(caps)
			if err := c.Send(ctx, caps); err != nil {
				t.Fatalf("send %d: %v", b, err)
			}
			if b%25 == 24 {
				c.Bounce() // forced disconnect mid-stream
			}
		}
		if err := c.Flush(ctx); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}

	// First life: stream under wire chaos, then die with nothing pending
	// (Flush then Close models a kill between acked batches; the torn
	// tail case is covered continuously by the fault plan's tears).
	c1 := newChaosClient()
	sendLife(c1, 0xA1)
	stats1 := c1.Stats()
	c1.Close()

	// Second life: same agent ID, fresh client — the SIGKILL restart. It
	// must adopt the persisted cursor and keep the seq stream gapless.
	c2 := newChaosClient()
	sendLife(c2, 0xA2)
	stats2 := c2.Stats()

	ingested, quarantined, maxDup := sink.snapshot()
	if maxDup > 1 {
		t.Fatalf("a frame was ingested %d times — exactly-once violated", maxDup)
	}
	if ingested+quarantined != totalFrames {
		t.Fatalf("ingested %d + quarantined %d != sent %d", ingested, quarantined, totalFrames)
	}
	if quarantined != totalCorrupt {
		t.Fatalf("quarantined %d, want %d (the corrupt captures)", quarantined, totalCorrupt)
	}

	agents := srv.Agents()
	if len(agents) != 1 {
		t.Fatalf("%d agents, want 1", len(agents))
	}
	a := agents[0]
	if !a.AccountingOk {
		t.Fatalf("server accounting mismatch: %+v", a)
	}
	if a.FramesIngested+a.FramesQuarantined != uint64(totalFrames) {
		t.Fatalf("server frames %d+%d != sent %d", a.FramesIngested, a.FramesQuarantined, totalFrames)
	}
	wantBatches := uint64(2 * batchesPerLife)
	if a.BatchesIngested != wantBatches {
		t.Fatalf("batches ingested %d, want %d", a.BatchesIngested, wantBatches)
	}
	if a.Cursor != wantBatches {
		t.Fatalf("cursor %d, want %d", a.Cursor, wantBatches)
	}
	// The restart must have resumed from the acked cursor, and the acked
	// totals must cover everything both lives enqueued.
	if a.Resumes < 1 {
		t.Fatalf("no resume recorded across the restart: %+v", a)
	}
	if got := stats1.AckedBatches + stats2.AckedBatches; got != wantBatches {
		t.Fatalf("client acked %d batches, want %d", got, wantBatches)
	}
	if c := plan.Counters(); c == (faults.WireCounters{}) {
		t.Fatal("wire plan injected nothing — the run proved nothing")
	} else {
		t.Logf("seed %d: faults %+v, server %+v, client handshakes %d+%d",
			seed, c, a, stats1.Handshakes, stats2.Handshakes)
	}
}
