package capwire

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/sniffer"
	"repro/internal/telemetry"
)

// ServerConfig configures the engine-side capwire listener.
type ServerConfig struct {
	// Ingest hands one decoded batch to the engine and returns how many
	// captures were ingested; the remainder are counted as quarantined.
	// Required.
	Ingest func(agentID string, caps []sniffer.Capture) int
	// ReadTimeout bounds the wait for an agent's next message; a silent
	// or mid-message-stalled (slow-loris) connection is cut when it
	// expires. <= 0 means 15s.
	ReadTimeout time.Duration
	// WriteTimeout bounds one ack write; <= 0 means 5s.
	WriteTimeout time.Duration
	// Cursors seeds per-agent resume cursors (from LoadCursors) so
	// resume survives an engine restart.
	Cursors map[string]uint64
	// Logf, when set, receives session lifecycle lines.
	Logf func(format string, args ...any)
}

// agentState is the server's per-agent accounting. Its mutex also
// serializes ingest per agent, so a kicked connection can never race a
// fresh one past the cursor.
type agentState struct {
	id string

	mu        sync.Mutex
	cursor    uint64
	conn      net.Conn
	lastSeen  time.Time
	connects  uint64
	resumes   uint64
	lag       uint32
	batchesRx uint64 // valid batches received (ingested + deduped)
	framesRx  uint64
	batches   uint64 // ingested
	frames    uint64
	quar      uint64
	dedupB    uint64
	dedupF    uint64
	protoErrs uint64
}

// AgentStatus is one agent's externally visible state, served on
// /api/agents and asserted by the chaos smoke.
type AgentStatus struct {
	ID                string  `json:"id"`
	Connected         bool    `json:"connected"`
	LastSeenAgeSec    float64 `json:"lastSeenAgeSec"`
	Cursor            uint64  `json:"cursor"`
	BatchesReceived   uint64  `json:"batchesReceived"`
	BatchesIngested   uint64  `json:"batchesIngested"`
	FramesIngested    uint64  `json:"framesIngested"`
	FramesQuarantined uint64  `json:"framesQuarantined"`
	BatchesDeduped    uint64  `json:"batchesDeduped"`
	FramesDeduped     uint64  `json:"framesDeduped"`
	Resumes           uint64  `json:"resumes"`
	Connects          uint64  `json:"connects"`
	ProtocolErrors    uint64  `json:"protocolErrors"`
	LagBatches        uint32  `json:"lagBatches"`
	// AccountingOk is the exactly-once invariant: every received batch
	// was either ingested or deduped, and every received frame is
	// accounted for as ingested, quarantined or deduped.
	AccountingOk bool `json:"accountingOk"`
}

// Totals aggregates the fleet for health and bench summaries.
type Totals struct {
	Agents            int     `json:"agents"`
	Connected         int     `json:"connected"`
	BatchesReceived   uint64  `json:"batchesReceived"`
	BatchesIngested   uint64  `json:"batchesIngested"`
	FramesIngested    uint64  `json:"framesIngested"`
	FramesQuarantined uint64  `json:"framesQuarantined"`
	BatchesDeduped    uint64  `json:"batchesDeduped"`
	FramesDeduped     uint64  `json:"framesDeduped"`
	Resumes           uint64  `json:"resumes"`
	ProtocolErrors    uint64  `json:"protocolErrors"`
	P99BatchMs        float64 `json:"p99BatchMs"`
	AccountingOk      bool    `json:"accountingOk"`
}

// Report is the /api/agents document.
type Report struct {
	Enabled bool          `json:"enabled"`
	Agents  []AgentStatus `json:"agents"`
	Totals  Totals        `json:"totals"`
}

// Server accepts agent sessions, dedups replayed batches against
// per-agent cursors, and feeds the engine. Safe for concurrent use.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	agents  map[string]*agentState
	conns   map[net.Conn]struct{} // every accepted conn, pre-handshake included
	lis     net.Listener
	closed  bool
	wg      sync.WaitGroup
	batchMs *telemetry.Histogram
}

// NewServer validates the config.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Ingest == nil {
		return nil, errors.New("capwire: ServerConfig.Ingest is required")
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		agents:  make(map[string]*agentState),
		conns:   make(map[net.Conn]struct{}),
		batchMs: mBatchSeconds(),
	}
	for id, cur := range cfg.Cursors {
		if id == "" || len(id) > MaxAgentID {
			continue
		}
		s.agents[id] = &agentState{id: id, cursor: cur}
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts sessions on lis until Close. It always returns a
// non-nil error; after Close that error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		// Register the handler under s.mu so Close cannot observe the
		// wait group between Accept and Add — a connection racing the
		// listener shutdown is either fully tracked or refused.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.wg.Add(1)
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every live session, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// agent returns (creating if new) the state for an agent ID.
func (s *Server) agent(id string) *agentState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.agents[id]
	if st == nil {
		st = &agentState{id: id}
		s.agents[id] = st
	}
	return st
}

// handleConn runs one agent session: handshake, then batches/heartbeats
// until the connection dies or violates the protocol.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	msg, err := ReadMessage(conn)
	if err != nil {
		s.logf("capwire: %s: handshake read: %v", conn.RemoteAddr(), err)
		return
	}
	hello, ok := msg.(*Hello)
	if !ok {
		s.logf("capwire: %s: first message %T, want Hello", conn.RemoteAddr(), msg)
		return
	}
	st := s.agent(hello.AgentID)

	st.mu.Lock()
	// Last session wins: a restarted agent must not wait out its dead
	// predecessor's read deadline.
	if prev := st.conn; prev != nil {
		prev.Close()
	}
	st.conn = conn
	st.lastSeen = time.Now()
	st.connects++
	resumed := st.cursor > 0
	if resumed {
		st.resumes++
	}
	cursor := st.cursor
	st.mu.Unlock()

	mAgentConnects(st.id).Inc()
	mAgentConnected(st.id).Set(1)
	if resumed {
		mAgentResumes(st.id).Inc()
		s.logf("capwire: agent %s resuming from cursor %d", st.id, cursor)
	} else {
		s.logf("capwire: agent %s connected", st.id)
	}

	err = s.session(conn, st, cursor)

	st.mu.Lock()
	if st.conn == conn {
		st.conn = nil
		mAgentConnected(st.id).Set(0)
	}
	st.mu.Unlock()
	if err != nil {
		s.logf("capwire: agent %s session ended: %v", st.id, err)
	}
}

func (s *Server) session(conn net.Conn, st *agentState, cursor uint64) error {
	ackBuf, err := EncodeMessage(&HelloAck{Cursor: cursor})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, err := conn.Write(ackBuf); err != nil {
		return fmt.Errorf("write helloack: %w", err)
	}
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		msg, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		var ackCursor uint64
		switch m := msg.(type) {
		case *Batch:
			ok, cur := s.handleBatch(st, m)
			if !ok {
				return fmt.Errorf("batch seq %d with cursor %d: gap, forcing resume", m.Seq, cur)
			}
			ackCursor = cur
		case *Heartbeat:
			st.mu.Lock()
			st.lastSeen = time.Now()
			st.lag = m.QueuedBatches
			ackCursor = st.cursor
			st.mu.Unlock()
			mAgentLag(st.id).Set(float64(m.QueuedBatches))
		default:
			st.mu.Lock()
			st.protoErrs++
			st.mu.Unlock()
			mAgentProtoErrors(st.id).Inc()
			return fmt.Errorf("unexpected %T mid-session", msg)
		}
		out, err := EncodeMessage(&Ack{Cursor: ackCursor})
		if err != nil {
			return err
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(out); err != nil {
			return fmt.Errorf("write ack: %w", err)
		}
	}
}

// handleBatch applies the cursor protocol to one batch: dedup at or
// below the cursor, ingest at cursor+1, reject anything further ahead
// (a seq gap — the connection is cut so the client rewinds and replays).
// Returns ok=false on a gap, plus the cursor to ack.
func (s *Server) handleBatch(st *agentState, b *Batch) (bool, uint64) {
	start := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastSeen = start
	switch {
	case b.Seq <= st.cursor:
		st.dedupB++
		st.dedupF += uint64(len(b.Items))
		st.batchesRx++
		st.framesRx += uint64(len(b.Items))
		mAgentDedupedBatches(st.id).Inc()
		mAgentDedupedFrames(st.id).Add(uint64(len(b.Items)))
		return true, st.cursor
	case b.Seq == st.cursor+1:
		caps := b.ToCaptures()
		n := s.cfg.Ingest(st.id, caps)
		if n < 0 {
			n = 0
		}
		if n > len(caps) {
			n = len(caps)
		}
		st.cursor = b.Seq
		st.batchesRx++
		st.framesRx += uint64(len(caps))
		st.batches++
		st.frames += uint64(n)
		st.quar += uint64(len(caps) - n)
		mAgentBatches(st.id).Inc()
		mAgentFrames(st.id).Add(uint64(n))
		mAgentQuarantined(st.id).Add(uint64(len(caps) - n))
		s.batchMs.ObserveSince(start)
		return true, st.cursor
	default:
		st.protoErrs++
		mAgentProtoErrors(st.id).Inc()
		return false, st.cursor
	}
}

// statusLocked snapshots one agent (st.mu held).
func (st *agentState) statusLocked(now time.Time) AgentStatus {
	age := math.NaN()
	if !st.lastSeen.IsZero() {
		age = now.Sub(st.lastSeen).Seconds()
	}
	return AgentStatus{
		ID:                st.id,
		Connected:         st.conn != nil,
		LastSeenAgeSec:    age,
		Cursor:            st.cursor,
		BatchesReceived:   st.batchesRx,
		BatchesIngested:   st.batches,
		FramesIngested:    st.frames,
		FramesQuarantined: st.quar,
		BatchesDeduped:    st.dedupB,
		FramesDeduped:     st.dedupF,
		Resumes:           st.resumes,
		Connects:          st.connects,
		ProtocolErrors:    st.protoErrs,
		LagBatches:        st.lag,
		AccountingOk: st.batchesRx == st.batches+st.dedupB &&
			st.framesRx == st.frames+st.quar+st.dedupF,
	}
}

// Agents returns every known agent's status, sorted by ID.
func (s *Server) Agents() []AgentStatus {
	now := time.Now()
	s.mu.Lock()
	states := make([]*agentState, 0, len(s.agents))
	for _, st := range s.agents {
		states = append(states, st)
	}
	s.mu.Unlock()
	out := make([]AgentStatus, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		out = append(out, st.statusLocked(now))
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Totals aggregates Agents() plus the fleet-wide p99 batch latency.
func (s *Server) Totals() Totals {
	var t Totals
	t.AccountingOk = true
	for _, a := range s.Agents() {
		t.Agents++
		if a.Connected {
			t.Connected++
		}
		t.BatchesReceived += a.BatchesReceived
		t.BatchesIngested += a.BatchesIngested
		t.FramesIngested += a.FramesIngested
		t.FramesQuarantined += a.FramesQuarantined
		t.BatchesDeduped += a.BatchesDeduped
		t.FramesDeduped += a.FramesDeduped
		t.Resumes += a.Resumes
		t.ProtocolErrors += a.ProtocolErrors
		t.AccountingOk = t.AccountingOk && a.AccountingOk
	}
	if q := telemetry.QuantileFromCumulative(s.batchMs.Bounds(), s.batchMs.Cumulative(), 0.99); !math.IsNaN(q) {
		t.P99BatchMs = q * 1000
	}
	return t
}

// Report builds the /api/agents document.
func (s *Server) Report() Report {
	return Report{Enabled: true, Agents: s.Agents(), Totals: s.Totals()}
}

// HealthReasons lists agents that have gone silent: no traffic for
// longer than staleAfter (<= 0 means 30s). Fed into /api/health so a
// dead remote capture path degrades the deployment.
func (s *Server) HealthReasons(staleAfter time.Duration) []string {
	if staleAfter <= 0 {
		staleAfter = 30 * time.Second
	}
	var reasons []string
	for _, a := range s.Agents() {
		if !a.AccountingOk {
			reasons = append(reasons, fmt.Sprintf("agent %s accounting mismatch", a.ID))
		}
		if math.IsNaN(a.LastSeenAgeSec) {
			continue // seeded from a cursor file, never seen this run
		}
		if a.LastSeenAgeSec > staleAfter.Seconds() {
			state := "connected"
			if !a.Connected {
				state = "disconnected"
			}
			reasons = append(reasons, fmt.Sprintf(
				"agent %s silent for %.0fs (%s)", a.ID, a.LastSeenAgeSec, state))
		}
	}
	return reasons
}

// Cursors snapshots every agent's resume cursor.
func (s *Server) Cursors() map[string]uint64 {
	out := make(map[string]uint64)
	s.mu.Lock()
	states := make([]*agentState, 0, len(s.agents))
	for _, st := range s.agents {
		states = append(states, st)
	}
	s.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		out[st.id] = st.cursor
		st.mu.Unlock()
	}
	return out
}
