package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of each metric kind, labeled
// and unlabeled, with deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_frames_total", "Frames processed.", nil).Add(42)
	r.Counter("app_requests_total", "HTTP requests.", Labels{"route": "/api/state"}).Add(7)
	r.Counter("app_requests_total", "HTTP requests.", Labels{"route": "/"}).Add(2)
	r.Gauge("app_workers", "Worker pool size.", nil).Set(4)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1}, nil)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_frames_total Frames processed.
# TYPE app_frames_total counter
app_frames_total 42
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 5.105
app_latency_seconds_count 4
# HELP app_requests_total HTTP requests.
# TYPE app_requests_total counter
app_requests_total{route="/"} 2
app_requests_total{route="/api/state"} 7
# HELP app_workers Worker pool size.
# TYPE app_workers gauge
app_workers 4
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if out["app_frames_total"].(float64) != 42 {
		t.Errorf("app_frames_total = %v", out["app_frames_total"])
	}
	if out[`app_requests_total{route="/api/state"}`].(float64) != 7 {
		t.Errorf("labeled counter = %v", out[`app_requests_total{route="/api/state"}`])
	}
	hist := out["app_latency_seconds"].(map[string]any)
	if hist["count"].(float64) != 4 {
		t.Errorf("histogram count = %v", hist["count"])
	}
	buckets := hist["buckets"].(map[string]any)
	if buckets["+Inf"].(float64) != 4 || buckets["0.1"].(float64) != 3 {
		t.Errorf("histogram buckets = %v", buckets)
	}
}

func TestHandlersAndMux(t *testing.T) {
	r := goldenRegistry()
	mux := Mux(r, true)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "app_frames_total 42") {
		t.Errorf("/metrics body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}

	// Without pprof the debug routes must 404.
	bare := Mux(r, false)
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof disabled but /debug/pprof/ -> %d", rec.Code)
	}
}

func TestDefaultRegistryIsProcessWide(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not stable")
	}
}
