package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogLevels and LogFormats enumerate the values -log-level and
// -log-format accept, in the spelling the error messages advertise.
var (
	LogLevels  = []string{"debug", "info", "warn", "error"}
	LogFormats = []string{"text", "json"}
)

// NewLogger builds a slog.Logger writing to w. level is one of
// LogLevels ("warning" is accepted as an alias of warn); format is one
// of LogFormats. The commands share this so every component logs with
// the same handler and key conventions (component, algo, device).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (accepted: %s)",
			level, strings.Join(LogLevels, ", "))
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (accepted: %s)",
			format, strings.Join(LogFormats, ", "))
	}
	return slog.New(h), nil
}

// SetupLogging configures the process-wide slog default from the
// commands' -log-level / -log-format flags and returns the logger.
func SetupLogging(w io.Writer, level, format string) (*slog.Logger, error) {
	logger, err := NewLogger(w, level, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
