package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. level is one of debug,
// info, warn, error; format is text or json. The commands share this so
// every component logs with the same handler and key conventions
// (component, algo, device).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// SetupLogging configures the process-wide slog default from the
// commands' -log-level / -log-format flags and returns the logger.
func SetupLogging(w io.Writer, level, format string) (*slog.Logger, error) {
	logger, err := NewLogger(w, level, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
