package telemetry

import (
	"runtime"
	"sync"
	"testing"
)

func TestRuntimeSamplerSeries(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)

	// Registration alone makes the series visible, zero-valued.
	snap := reg.Snapshot()
	for _, name := range []string{
		"marauder_process_goroutines",
		"marauder_process_heap_bytes",
		"marauder_process_sys_bytes",
		"marauder_process_rss_bytes",
		"marauder_process_gc_cycles_total",
		"marauder_process_gc_pause_seconds",
		"marauder_process_gc_max_pause_seconds",
		"marauder_process_sched_latency_seconds",
	} {
		findSeries(t, snap, name)
	}

	// Force a GC so the cycle counter and pause histogram have something
	// to fold, then sample.
	runtime.GC()
	runtime.GC()
	s.Sample()

	snap = reg.Snapshot()
	if g := snap[findSeries(t, snap, "marauder_process_goroutines")]; g.Gauge < 1 {
		t.Fatalf("goroutine gauge = %v, want >= 1", g.Gauge)
	}
	if g := snap[findSeries(t, snap, "marauder_process_heap_bytes")]; g.Gauge <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", g.Gauge)
	}
	if c := snap[findSeries(t, snap, "marauder_process_gc_cycles_total")]; c.Counter == 0 {
		t.Fatalf("gc cycle counter stayed 0 after runtime.GC")
	}
	if h := snap[findSeries(t, snap, "marauder_process_gc_pause_seconds")]; h.Count == 0 {
		t.Fatalf("gc pause histogram stayed empty after runtime.GC")
	}

	// Re-sampling without new GC activity must not double count pauses.
	before := reg.Snapshot()
	bIdx := findSeries(t, before, "marauder_process_gc_pause_seconds")
	s.Sample()
	s.Sample()
	after := reg.Snapshot()
	aIdx := findSeries(t, after, "marauder_process_gc_pause_seconds")
	// GC may legitimately run between samples; the count must only grow
	// by what the runtime actually recorded, so assert it never shrinks
	// and that two idle samples do not replay the entire history.
	if after[aIdx].Count < before[bIdx].Count {
		t.Fatalf("pause count went backwards: %d -> %d", before[bIdx].Count, after[aIdx].Count)
	}
	if after[aIdx].Count > 10*before[bIdx].Count+100 {
		t.Fatalf("pause count exploded (%d -> %d): cumulative histogram re-folded",
			before[bIdx].Count, after[aIdx].Count)
	}
}

func TestRuntimeSamplerConcurrent(t *testing.T) {
	s := NewRuntimeSampler(NewRegistry())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Sample()
			}
		}()
	}
	wg.Wait()
}
