package ftdc

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// stubClock hands out strictly increasing fake timestamps.
type stubClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stubClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func newTestRecorder(t *testing.T, reg *telemetry.Registry) *Recorder {
	t.Helper()
	clk := &stubClock{t: time.Unix(1700000000, 0)}
	r, err := New(Config{
		Dir:          t.TempDir(),
		Registry:     reg,
		ChunkSamples: 4,
		Clock:        clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestRecorderEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	frames := reg.Counter("app_frames_total", "frames", nil)
	depth := reg.Gauge("app_queue_depth", "queue depth", nil)
	lat := reg.Histogram("app_latency_seconds", "latency", []float64{0.01, 0.1, 1}, nil)

	rec := newTestRecorder(t, reg)
	for i := 0; i < 10; i++ {
		frames.Add(uint64(3 * i))
		depth.Set(float64(i) - 2.5)
		lat.Observe(0.05 * float64(i))
		if err := rec.Sample(); err != nil {
			t.Fatalf("Sample %d: %v", i, err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	chunks, err := ReadFile(rec.Path())
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var rows int
	for _, c := range chunks {
		rows += len(c.Samples)
	}
	if rows != 10 {
		t.Fatalf("decoded %d rows, want 10", rows)
	}

	// Schema: time first, then every series flattened. Histogram expands
	// to _count/_sum/_bucket{le=...} columns matching the text exposition.
	c0 := chunks[0]
	if c0.Columns[0].Name != TimeColumn || c0.Columns[0].Kind != KindUint {
		t.Fatalf("first column = %+v, want %s", c0.Columns[0], TimeColumn)
	}
	idx := make(map[string]int, len(c0.Columns))
	for j, col := range c0.Columns {
		idx[col.Name] = j
	}
	for _, name := range []string{
		"app_frames_total",
		"app_queue_depth",
		"app_latency_seconds_count",
		"app_latency_seconds_sum",
		`app_latency_seconds_bucket{le="0.01"}`,
		`app_latency_seconds_bucket{le="0.1"}`,
		`app_latency_seconds_bucket{le="1"}`,
		`app_latency_seconds_bucket{le="+Inf"}`,
	} {
		if _, ok := idx[name]; !ok {
			t.Fatalf("column %q missing; have %+v", name, c0.Columns)
		}
	}

	// Timestamps strictly increase across chunk boundaries.
	var last uint64
	for _, c := range chunks {
		tj := 0
		for _, s := range c.Samples {
			if s[tj] <= last {
				t.Fatalf("timestamp not increasing: %d after %d", s[tj], last)
			}
			last = s[tj]
		}
	}

	// Values round-trip: the final row carries the final counter value and
	// the gauge as float bits.
	lastChunk := chunks[len(chunks)-1]
	lastRow := lastChunk.Samples[len(lastChunk.Samples)-1]
	lidx := make(map[string]int)
	for j, col := range lastChunk.Columns {
		lidx[col.Name] = j
	}
	var wantFrames uint64
	for i := 0; i < 10; i++ {
		wantFrames += uint64(3 * i)
	}
	if got := lastRow[lidx["app_frames_total"]]; got != wantFrames {
		t.Fatalf("final counter = %d, want %d", got, wantFrames)
	}
	if got := math.Float64frombits(lastRow[lidx["app_queue_depth"]]); got != 6.5 {
		t.Fatalf("final gauge = %v, want 6.5", got)
	}
	if got := lastRow[lidx["app_latency_seconds_count"]]; got != 10 {
		t.Fatalf("final histogram count = %d, want 10", got)
	}
}

func TestRecorderSchemaChangeMidFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("app_a_total", "a", nil)
	rec := newTestRecorder(t, reg)
	if err := rec.Sample(); err != nil {
		t.Fatal(err)
	}
	// A new labeled series registers mid-flight: the recorder must seal
	// the chunk and keep going under the wider schema.
	reg.Counter("app_b_total", "b", telemetry.Labels{"shard": "3"}).Add(9)
	if err := rec.Sample(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	chunks, err := ReadFile(rec.Path())
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2 (schema change seals)", len(chunks))
	}
	if len(chunks[1].Columns) != len(chunks[0].Columns)+1 {
		t.Fatalf("second schema width %d, want %d", len(chunks[1].Columns), len(chunks[0].Columns)+1)
	}
	found := false
	for _, col := range chunks[1].Columns {
		if strings.Contains(col.Name, "app_b_total") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new series missing from second chunk: %+v", chunks[1].Columns)
	}
}

func TestRecorderStatus(t *testing.T) {
	var nilRec *Recorder
	if st := nilRec.Status(); st.Enabled {
		t.Fatal("nil recorder reports Enabled")
	}
	if nilRec.Path() != "" {
		t.Fatal("nil recorder has a path")
	}
	if err := nilRec.Sample(); err != nil {
		t.Fatalf("nil Sample: %v", err)
	}
	if err := nilRec.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}

	reg := telemetry.NewRegistry()
	reg.Counter("app_x_total", "x", nil)
	rec := newTestRecorder(t, reg)
	for i := 0; i < 5; i++ { // chunk cap 4 → one sealed chunk + 1 pending
		if err := rec.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	st := rec.Status()
	if !st.Enabled || st.Path != rec.Path() {
		t.Fatalf("status identity wrong: %+v", st)
	}
	if st.Chunks != 1 || st.Samples != 4 || st.PendingSamples != 1 {
		t.Fatalf("status counts = %+v, want 1 chunk / 4 samples / 1 pending", st)
	}
	if st.Columns != 2 { // time + counter
		t.Fatalf("status columns = %d, want 2", st.Columns)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := rec.Sample(); err == nil {
		t.Fatal("Sample after Close succeeded")
	}
}

func TestRecorderConcurrentSample(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("app_x_total", "x", nil)
	rec := newTestRecorder(t, reg)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				ctr.Inc()
				_ = rec.Sample()
			}
		}()
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	chunks, err := ReadFile(rec.Path())
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var rows int
	for _, c := range chunks {
		rows += len(c.Samples)
	}
	if rows != 100 {
		t.Fatalf("decoded %d rows, want 100", rows)
	}
}
