// Package ftdc is the pipeline's flight recorder: full-time diagnostic
// data capture in the spirit of MongoDB's FTDC and viam-rdk's ftdc/ — a
// fixed-interval sampler that appends every metric of a telemetry
// registry plus Go runtime stats to a compact, chunked, delta-encoded,
// CRC-checksummed binary file. A long soak or chaos run leaves behind a
// complete per-second history of the process that can be decoded offline
// (cmd/ftdcdump) long after the Prometheus endpoint is gone — post-mortem
// analysis as a first-class artifact instead of scraped text.
//
// # On-disk format
//
// A file is a sequence of self-contained chunks. Each chunk is:
//
//	magic   "FTDC" (4 bytes) + version (1 byte, currently 1)
//	schema  uvarint column count, then per column:
//	        uvarint name length, name bytes, kind byte
//	samples uvarint sample count, then row-major varint payload
//	crc     IEEE CRC-32 of everything above, 4 bytes little-endian
//
// Every cell is carried as a uint64 (Column.Kind says whether those bits
// are a raw integer or math.Float64bits of a float64). The payload
// delta-encodes down columns: row 0 stores zigzag(value), row i stores
// zigzag(value_i − value_{i−1}), each as an unsigned varint. Counters
// and cumulative bucket counts — the bulk of the columns — change by
// small amounts per interval, so almost every cell is one or two bytes.
// Deltas are computed in uint64 arithmetic (wrapping), so the round trip
// is exact for every possible bit pattern, floats included.
//
// Because each chunk carries its own schema, columns may appear or
// disappear mid-file (new labeled series registering, a restart with
// different flags): the writer just seals the current chunk and opens
// one with the new schema. A truncated final chunk — the expected shape
// of a crash — costs only that chunk; every sealed chunk before it
// decodes normally, and the CRC distinguishes truncation from
// corruption.
package ftdc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Chunk magic and current format version.
var magic = [4]byte{'F', 'T', 'D', 'C'}

const version = 1

// Kind says how a column's uint64 cells are to be interpreted.
type Kind uint8

const (
	// KindUint cells are plain integers: counters, cumulative histogram
	// bucket counts, timestamps.
	KindUint Kind = iota
	// KindFloatBits cells are math.Float64bits of a float64: gauges and
	// histogram sums.
	KindFloatBits
)

// String names the kind for dumps and errors.
func (k Kind) String() string {
	switch k {
	case KindUint:
		return "uint"
	case KindFloatBits:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TimeColumn is the conventional name of the sample-timestamp column the
// recorder writes first in every schema: Unix nanoseconds, KindUint.
// The codec does not treat it specially; decoders find it by name.
const TimeColumn = "time_unix_nano"

// Column is one series in a chunk's schema.
type Column struct {
	Name string
	Kind Kind
}

// Chunk is a decoded chunk: a schema and the samples recorded under it.
// Samples[i][j] is the raw uint64 cell of column j in sample i.
type Chunk struct {
	Columns []Column
	Samples [][]uint64
}

// Float returns sample i, column j decoded per the column kind.
func (c *Chunk) Float(i, j int) float64 {
	v := c.Samples[i][j]
	if c.Columns[j].Kind == KindFloatBits {
		return math.Float64frombits(v)
	}
	return float64(v)
}

// Format sanity caps: a hostile or corrupted stream must not allocate
// unboundedly before the CRC check can reject it.
const (
	maxColumns    = 1 << 16
	maxNameLen    = 1 << 12
	maxSamples    = 1 << 24
	maxSampleCap  = 1 << 12 // initial slice capacity clamp
	maxColumnCap  = 1 << 10
	versionLatest = version
)

// zigzag maps signed deltas to unsigned varint-friendly values:
// 0,-1,1,-2,2… → 0,1,2,3,4…
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendChunk encodes one chunk (schema + samples) including magic,
// version and trailing CRC, appending to dst.
func appendChunk(dst []byte, cols []Column, samples [][]uint64) []byte {
	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, version)
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
		dst = append(dst, byte(c.Kind))
	}
	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	prev := make([]uint64, len(cols))
	for _, row := range samples {
		for j, v := range row {
			// Wrapping uint64 subtraction: decode adds the delta back and
			// lands on the exact original bits for any value pair.
			dst = binary.AppendUvarint(dst, zigzag(int64(v-prev[j])))
			prev[j] = v
		}
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// Writer accumulates samples and writes sealed chunks to an io.Writer.
// It is not safe for concurrent use; the Recorder serializes access.
type Writer struct {
	w          io.Writer
	maxSamples int

	cols    []Column
	samples [][]uint64
	buf     []byte

	chunksOut  uint64
	samplesOut uint64
	bytesOut   uint64
}

// NewWriter creates a Writer sealing chunks every maxSamplesPerChunk
// samples (≤ 0 means the default 120 — two minutes at the recorder's
// default 1 s interval).
func NewWriter(w io.Writer, maxSamplesPerChunk int) *Writer {
	if maxSamplesPerChunk <= 0 {
		maxSamplesPerChunk = 120
	}
	return &Writer{w: w, maxSamples: maxSamplesPerChunk}
}

// sameSchema reports whether the pending chunk's schema matches cols.
func (w *Writer) sameSchema(cols []Column) bool {
	if len(w.cols) != len(cols) {
		return false
	}
	for i := range cols {
		if w.cols[i] != cols[i] {
			return false
		}
	}
	return true
}

// Append adds one sample under the given schema, sealing the pending
// chunk first when the schema changed (columns appeared or disappeared)
// or the chunk is full. cols and vals must be parallel; both are copied.
func (w *Writer) Append(cols []Column, vals []uint64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("ftdc: %d columns but %d values", len(cols), len(vals))
	}
	if len(w.samples) > 0 && !w.sameSchema(cols) {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if len(w.samples) == 0 {
		w.cols = append(w.cols[:0], cols...)
	}
	w.samples = append(w.samples, append([]uint64(nil), vals...))
	if len(w.samples) >= w.maxSamples {
		return w.Flush()
	}
	return nil
}

// Flush seals and writes the pending chunk, if any. A crash between
// flushes loses at most the unsealed samples.
func (w *Writer) Flush() error {
	if len(w.samples) == 0 {
		return nil
	}
	w.buf = appendChunk(w.buf[:0], w.cols, w.samples)
	n, err := w.w.Write(w.buf)
	w.bytesOut += uint64(n)
	if err != nil {
		return fmt.Errorf("ftdc: write chunk: %w", err)
	}
	w.chunksOut++
	w.samplesOut += uint64(len(w.samples))
	w.samples = w.samples[:0]
	return nil
}

// Counts reports sealed chunks, samples inside them, and bytes written.
func (w *Writer) Counts() (chunks, samples, bytes uint64) {
	return w.chunksOut, w.samplesOut, w.bytesOut
}

// Pending reports how many appended samples are not yet sealed into a
// chunk.
func (w *Writer) Pending() int { return len(w.samples) }
