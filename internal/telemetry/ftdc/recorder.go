package ftdc

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Config assembles a Recorder.
type Config struct {
	// Dir is the directory FTDC files are written into; created if
	// missing. Required.
	Dir string
	// Interval is the sampling period; 0 means the default 1 s.
	Interval time.Duration
	// Registry is the metrics source; nil means the process-wide default.
	Registry *telemetry.Registry
	// Runtime, when non-nil, is sampled immediately before each snapshot
	// so the recorded runtime gauges are at most one interval stale.
	Runtime *telemetry.RuntimeSampler
	// ChunkSamples caps samples per chunk; 0 means the Writer default.
	ChunkSamples int
	// FilePrefix names the output file <prefix>-<start-unix-nano>.ftdc;
	// "" means "ftdc".
	FilePrefix string
	// Clock substitutes the timestamp source, for tests; nil means
	// time.Now.
	Clock func() time.Time
}

// Status is the recorder's self-report, shaped for /api/health detail.
type Status struct {
	// Enabled is false for a nil recorder — the "flag not set" report.
	Enabled bool `json:"enabled"`
	// Path is the FTDC file being written.
	Path string `json:"path,omitempty"`
	// Interval is the sampling period in seconds.
	IntervalSec float64 `json:"intervalSec,omitempty"`
	// Samples, Chunks and Bytes count what has been durably sealed, plus
	// PendingSamples still buffered in the open chunk.
	Samples        uint64 `json:"samples"`
	PendingSamples int    `json:"pendingSamples"`
	Chunks         uint64 `json:"chunks"`
	Bytes          uint64 `json:"bytes"`
	// Columns is the width of the last sample taken.
	Columns int `json:"columns,omitempty"`
	// LastErr is the most recent sample/flush error, "" when healthy.
	LastErr string `json:"lastErr,omitempty"`
}

// Recorder samples a telemetry registry into an FTDC file on a fixed
// interval. All methods are safe for concurrent use, and all methods are
// nil-safe: a nil *Recorder is the recorder-disabled state, costing the
// caller one nil check.
type Recorder struct {
	cfg  Config
	path string

	mu      sync.Mutex
	f       *os.File
	w       *Writer
	cols    []Column
	vals    []uint64
	lastErr error
	closed  bool
}

// New opens the FTDC output file and returns a running-ready Recorder.
// Nothing is sampled until Sample or Run.
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ftdc: Config.Dir is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.FilePrefix == "" {
		cfg.FilePrefix = "ftdc"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ftdc: %w", err)
	}
	path := filepath.Join(cfg.Dir, fmt.Sprintf("%s-%d.ftdc", cfg.FilePrefix, cfg.Clock().UnixNano()))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ftdc: %w", err)
	}
	return &Recorder{
		cfg:  cfg,
		path: path,
		f:    f,
		w:    NewWriter(f, cfg.ChunkSamples),
	}, nil
}

// Path returns the FTDC file path ("" on a nil recorder).
func (r *Recorder) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

// Sample takes one snapshot now: runtime stats first (when wired), then
// every registry metric, appended as one row. Returns the sample/write
// error, which is also retained for Status.
func (r *Recorder) Sample() error {
	if r == nil {
		return nil
	}
	if r.cfg.Runtime != nil {
		r.cfg.Runtime.Sample()
	}
	now := r.cfg.Clock()
	snap := r.cfg.Registry.Snapshot()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("ftdc: recorder closed")
	}
	r.cols, r.vals = appendSnapshotRow(r.cols[:0], r.vals[:0], now, snap)
	err := r.w.Append(r.cols, r.vals)
	r.lastErr = err
	return err
}

// appendSnapshotRow flattens a registry snapshot into parallel
// column/value slices: the timestamp first, then one column per counter
// and gauge, and count/sum/cumulative-bucket columns per histogram. The
// snapshot is (name, labels)-sorted, so identical registry contents
// always produce the identical schema — schema changes happen exactly
// when series appear or disappear.
func appendSnapshotRow(cols []Column, vals []uint64, now time.Time, snap []telemetry.Sample) ([]Column, []uint64) {
	cols = append(cols, Column{Name: TimeColumn, Kind: KindUint})
	vals = append(vals, uint64(now.UnixNano()))
	for _, s := range snap {
		series := s.Series()
		switch s.Kind {
		case telemetry.KindCounter:
			cols = append(cols, Column{Name: series, Kind: KindUint})
			vals = append(vals, s.Counter)
		case telemetry.KindGauge:
			cols = append(cols, Column{Name: series, Kind: KindFloatBits})
			vals = append(vals, math.Float64bits(s.Gauge))
		case telemetry.KindHistogram:
			cols = append(cols, Column{Name: series + "_count", Kind: KindUint})
			vals = append(vals, s.Count)
			cols = append(cols, Column{Name: series + "_sum", Kind: KindFloatBits})
			vals = append(vals, math.Float64bits(s.Sum))
			for i, bound := range s.Bounds {
				cols = append(cols, Column{
					Name: bucketColumn(s.Name, s.Labels, formatBound(bound)),
					Kind: KindUint,
				})
				vals = append(vals, s.Cumulative[i])
			}
			cols = append(cols, Column{Name: bucketColumn(s.Name, s.Labels, "+Inf"), Kind: KindUint})
			vals = append(vals, s.Cumulative[len(s.Cumulative)-1])
		}
	}
	return cols, vals
}

// bucketColumn renders `name_bucket{labels,le="bound"}` matching the
// Prometheus text series identity for the same data.
func bucketColumn(name, labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return name + "_bucket{" + le + "}"
	}
	return name + "_bucket{" + labels + "," + le + "}"
}

// formatBound renders a bucket bound the way the text exposition does.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Run samples every Interval until ctx is cancelled, then takes one
// final sample and flushes. Close remains the caller's job (it seals the
// last chunk and closes the file). A nil recorder returns immediately.
func (r *Recorder) Run(ctx context.Context) {
	if r == nil {
		return
	}
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			_ = r.Sample()
			r.mu.Lock()
			if !r.closed {
				if err := r.w.Flush(); err != nil {
					r.lastErr = err
				}
			}
			r.mu.Unlock()
			return
		case <-t.C:
			_ = r.Sample()
		}
	}
}

// Close seals the pending chunk and closes the file. Idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	ferr := r.w.Flush()
	cerr := r.f.Close()
	if ferr != nil {
		r.lastErr = ferr
		return ferr
	}
	if cerr != nil {
		r.lastErr = cerr
	}
	return cerr
}

// Status reports the recorder's progress; on a nil recorder it reports
// Enabled: false, which is what /api/health shows when the flag is off.
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	chunks, samples, bytes := r.w.Counts()
	st := Status{
		Enabled:        true,
		Path:           r.path,
		IntervalSec:    r.cfg.Interval.Seconds(),
		Samples:        samples,
		PendingSamples: r.w.Pending(),
		Chunks:         chunks,
		Bytes:          bytes,
		Columns:        len(r.cols),
	}
	if r.lastErr != nil {
		st.LastErr = r.lastErr.Error()
	}
	return st
}
