package ftdc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Decode errors. A truncated stream (the tail a crash leaves behind)
// surfaces as io.ErrUnexpectedEOF; a clean end between chunks is io.EOF.
var (
	// ErrBadMagic means the stream position does not start a chunk — the
	// file is not FTDC or an earlier chunk's length was corrupted.
	ErrBadMagic = errors.New("ftdc: bad chunk magic")
	// ErrChecksum means a structurally-parseable chunk failed its CRC.
	ErrChecksum = errors.New("ftdc: chunk checksum mismatch")
	// ErrVersion means the chunk declares a format version this decoder
	// does not speak.
	ErrVersion = errors.New("ftdc: unsupported chunk version")
	// ErrFormat covers structural violations (oversized counts, impossible
	// lengths) detected before the CRC could be verified.
	ErrFormat = errors.New("ftdc: malformed chunk")
)

// Decoder streams chunks off an io.Reader. It reads one chunk per Next
// call and keeps no more than one chunk in memory.
type Decoder struct {
	r     *bufio.Reader
	crc   uint32 // running CRC of the current chunk
	chunk int    // 0-based index of the chunk being read, for errors
}

// NewDecoder creates a streaming decoder.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// readByte reads one byte and folds it into the chunk CRC.
func (d *Decoder) readByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	d.crc = crc32.Update(d.crc, crc32.IEEETable, []byte{b})
	return b, nil
}

// readFull fills buf, folding it into the chunk CRC.
func (d *Decoder) readFull(buf []byte) error {
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	d.crc = crc32.Update(d.crc, crc32.IEEETable, buf)
	return nil
}

// readUvarint reads a varint via the CRC-tracking byte reader.
func (d *Decoder) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(byteReaderFunc(d.readByte))
	if err != nil && errors.Is(err, io.EOF) {
		// EOF mid-varint is truncation, not a clean end.
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

// byteReaderFunc adapts a func to io.ByteReader.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

// Next decodes and returns the next chunk. It returns io.EOF at a clean
// end of stream, io.ErrUnexpectedEOF when the stream ends inside a chunk
// (a crash-truncated tail), and ErrChecksum/ErrBadMagic/ErrVersion/
// ErrFormat for corruption. Chunks already returned remain valid.
func (d *Decoder) Next() (*Chunk, error) {
	d.crc = 0
	var head [5]byte
	// A clean EOF before any header byte ends the stream; EOF after at
	// least one byte is a torn header.
	first, err := d.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	head[0] = first
	d.crc = crc32.Update(d.crc, crc32.IEEETable, head[:1])
	if err := d.readFull(head[1:]); err != nil {
		return nil, err
	}
	if [4]byte{head[0], head[1], head[2], head[3]} != magic {
		return nil, fmt.Errorf("%w (chunk %d)", ErrBadMagic, d.chunk)
	}
	if head[4] != versionLatest {
		return nil, fmt.Errorf("%w: got %d, support %d (chunk %d)", ErrVersion, head[4], versionLatest, d.chunk)
	}

	ncols, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if ncols > maxColumns {
		return nil, fmt.Errorf("%w: %d columns (chunk %d)", ErrFormat, ncols, d.chunk)
	}
	cols := make([]Column, 0, min(int(ncols), maxColumnCap))
	for i := uint64(0); i < ncols; i++ {
		nameLen, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("%w: column name %d bytes (chunk %d)", ErrFormat, nameLen, d.chunk)
		}
		name := make([]byte, nameLen)
		if err := d.readFull(name); err != nil {
			return nil, err
		}
		kind, err := d.readByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if Kind(kind) != KindUint && Kind(kind) != KindFloatBits {
			return nil, fmt.Errorf("%w: column kind %d (chunk %d)", ErrFormat, kind, d.chunk)
		}
		cols = append(cols, Column{Name: string(name), Kind: Kind(kind)})
	}

	nsamples, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if nsamples > maxSamples {
		return nil, fmt.Errorf("%w: %d samples (chunk %d)", ErrFormat, nsamples, d.chunk)
	}
	samples := make([][]uint64, 0, min(int(nsamples), maxSampleCap))
	prev := make([]uint64, len(cols))
	for i := uint64(0); i < nsamples; i++ {
		row := make([]uint64, len(cols))
		for j := range row {
			u, err := d.readUvarint()
			if err != nil {
				return nil, err
			}
			prev[j] += uint64(unzigzag(u))
			row[j] = prev[j]
		}
		samples = append(samples, row)
	}

	want := d.crc
	var sumBytes [4]byte
	if _, err := io.ReadFull(d.r, sumBytes[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(sumBytes[:]); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x (chunk %d)", ErrChecksum, got, want, d.chunk)
	}
	d.chunk++
	return &Chunk{Columns: cols, Samples: samples}, nil
}

// ReadAll decodes every chunk in the stream. On error it returns the
// chunks decoded so far together with the error, so a crash-truncated
// file still yields its sealed history.
func ReadAll(r io.Reader) ([]*Chunk, error) {
	d := NewDecoder(r)
	var chunks []*Chunk
	for {
		c, err := d.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return chunks, nil
			}
			return chunks, err
		}
		chunks = append(chunks, c)
	}
}

// ReadFile decodes every chunk of an FTDC file; see ReadAll for the
// partial-result contract.
func ReadFile(path string) ([]*Chunk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}
