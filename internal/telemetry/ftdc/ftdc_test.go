package ftdc

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

// writeAll drives a Writer over full rows and returns the encoded bytes.
func writeAll(t *testing.T, chunkCap int, rows []struct {
	cols []Column
	vals []uint64
}) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, chunkCap)
	for _, r := range rows {
		if err := w.Append(r.cols, r.vals); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

func TestRoundTripExact(t *testing.T) {
	cols := []Column{
		{Name: TimeColumn, Kind: KindUint},
		{Name: "app_frames_total", Kind: KindUint},
		{Name: "app_workers", Kind: KindFloatBits},
	}
	// Values chosen to stress the delta coder: monotonic counters, a
	// negative-delta gauge, NaN/Inf float bits, extreme uint64 values.
	rows := [][]uint64{
		{1700000000000000000, 0, math.Float64bits(4)},
		{1700000001000000000, 17, math.Float64bits(-3.25)},
		{1700000002000000000, 17, math.Float64bits(math.Inf(1))},
		{1700000003000000000, math.MaxUint64, math.Float64bits(math.NaN())},
		{1700000004000000000, 0, math.Float64bits(0)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	for _, r := range rows {
		if err := w.Append(cols, r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	chunks, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	c := chunks[0]
	if len(c.Columns) != len(cols) {
		t.Fatalf("got %d columns, want %d", len(c.Columns), len(cols))
	}
	for j := range cols {
		if c.Columns[j] != cols[j] {
			t.Fatalf("column %d = %+v, want %+v", j, c.Columns[j], cols[j])
		}
	}
	if len(c.Samples) != len(rows) {
		t.Fatalf("got %d samples, want %d", len(c.Samples), len(rows))
	}
	for i, r := range rows {
		for j, v := range r {
			if c.Samples[i][j] != v {
				t.Fatalf("cell [%d][%d] = %d, want %d", i, j, c.Samples[i][j], v)
			}
		}
	}
	// Float decoding follows column kind; NaN bits survive exactly so the
	// decoded value is NaN again.
	if !math.IsNaN(c.Float(3, 2)) {
		t.Fatalf("NaN gauge did not round-trip: %v", c.Float(3, 2))
	}
	if c.Float(1, 1) != 17 {
		t.Fatalf("uint column Float = %v, want 17", c.Float(1, 1))
	}
}

func TestSchemaChangeSealsChunk(t *testing.T) {
	a := []Column{{Name: TimeColumn, Kind: KindUint}, {Name: "x", Kind: KindUint}}
	b := []Column{
		{Name: TimeColumn, Kind: KindUint},
		{Name: "x", Kind: KindUint},
		{Name: "y", Kind: KindFloatBits}, // column appears
	}
	cOnly := []Column{{Name: TimeColumn, Kind: KindUint}} // columns disappear

	var buf bytes.Buffer
	w := NewWriter(&buf, 100)
	must := func(cols []Column, vals []uint64) {
		t.Helper()
		if err := w.Append(cols, vals); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	must(a, []uint64{1, 10})
	must(a, []uint64{2, 11})
	must(b, []uint64{3, 12, math.Float64bits(0.5)})
	must(b, []uint64{4, 13, math.Float64bits(1.5)})
	must(cOnly, []uint64{5})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	chunks, samples, _ := w.Counts()
	if chunks != 3 || samples != 5 {
		t.Fatalf("counts = (%d chunks, %d samples), want (3, 5)", chunks, samples)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d chunks, want 3", len(got))
	}
	if len(got[0].Columns) != 2 || len(got[1].Columns) != 3 || len(got[2].Columns) != 1 {
		t.Fatalf("column widths = %d/%d/%d, want 2/3/1",
			len(got[0].Columns), len(got[1].Columns), len(got[2].Columns))
	}
	if got[1].Samples[0][2] != math.Float64bits(0.5) {
		t.Fatalf("new column first value wrong: %x", got[1].Samples[0][2])
	}
	if got[2].Samples[0][0] != 5 {
		t.Fatalf("post-shrink sample wrong: %d", got[2].Samples[0][0])
	}
}

// TestRoundTripProperty drives randomized schedules — random schemas,
// random schema changes mid-stream, random values including float bit
// patterns — and asserts the decode is bit-exact.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		chunkCap := 1 + rng.Intn(10)
		var buf bytes.Buffer
		w := NewWriter(&buf, chunkCap)

		// Evolving schema: start with 1..6 columns, occasionally add or
		// drop one between rows.
		ncols := 1 + rng.Intn(6)
		cols := make([]Column, 0, ncols)
		for i := 0; i < ncols; i++ {
			cols = append(cols, randColumn(rng, i))
		}
		type rec struct {
			cols []Column
			vals []uint64
		}
		var want []rec
		nrows := 1 + rng.Intn(40)
		for i := 0; i < nrows; i++ {
			if rng.Intn(5) == 0 { // mutate schema
				if rng.Intn(2) == 0 && len(cols) > 1 {
					drop := rng.Intn(len(cols))
					cols = append(cols[:drop:drop], cols[drop+1:]...)
				} else {
					cols = append(append([]Column(nil), cols...), randColumn(rng, 100+i))
				}
			}
			vals := make([]uint64, len(cols))
			for j := range vals {
				vals[j] = randCell(rng)
			}
			if err := w.Append(cols, vals); err != nil {
				t.Fatalf("trial %d: Append: %v", trial, err)
			}
			want = append(want, rec{append([]Column(nil), cols...), append([]uint64(nil), vals...)})
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("trial %d: Flush: %v", trial, err)
		}

		chunks, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadAll: %v", trial, err)
		}
		var got []rec
		for _, c := range chunks {
			for _, s := range c.Samples {
				got = append(got, rec{c.Columns, s})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: decoded %d rows, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if len(got[i].cols) != len(want[i].cols) {
				t.Fatalf("trial %d row %d: %d cols, want %d", trial, i, len(got[i].cols), len(want[i].cols))
			}
			for j := range want[i].cols {
				if got[i].cols[j] != want[i].cols[j] {
					t.Fatalf("trial %d row %d col %d: %+v, want %+v", trial, i, j, got[i].cols[j], want[i].cols[j])
				}
				if got[i].vals[j] != want[i].vals[j] {
					t.Fatalf("trial %d row %d col %d: value %x, want %x", trial, i, j, got[i].vals[j], want[i].vals[j])
				}
			}
		}
	}
}

func randColumn(rng *rand.Rand, i int) Column {
	kind := KindUint
	if rng.Intn(2) == 1 {
		kind = KindFloatBits
	}
	name := make([]byte, 1+rng.Intn(12))
	for j := range name {
		name[j] = byte('a' + rng.Intn(26))
	}
	return Column{Name: string(name) + string(rune('0'+i%10)), Kind: kind}
}

func randCell(rng *rand.Rand) uint64 {
	switch rng.Intn(4) {
	case 0:
		return rng.Uint64() // arbitrary bits (float bit patterns included)
	case 1:
		return uint64(rng.Intn(1000)) // small counter-ish value
	case 2:
		return math.Float64bits(rng.NormFloat64())
	default:
		return math.MaxUint64 - uint64(rng.Intn(3))
	}
}

func TestAppendLengthMismatch(t *testing.T) {
	w := NewWriter(io.Discard, 0)
	err := w.Append([]Column{{Name: "x", Kind: KindUint}}, []uint64{1, 2})
	if err == nil {
		t.Fatal("mismatched cols/vals accepted")
	}
}

func TestAppendCopiesInputs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 100)
	cols := []Column{{Name: "x", Kind: KindUint}}
	vals := []uint64{7}
	if err := w.Append(cols, vals); err != nil {
		t.Fatal(err)
	}
	// The recorder reuses its scratch slices between samples; the writer
	// must have detached from them.
	cols[0].Name = "mutated"
	vals[0] = 99
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	chunks, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(chunks) != 1 {
		t.Fatalf("ReadAll: %v (%d chunks)", err, len(chunks))
	}
	if chunks[0].Columns[0].Name != "x" || chunks[0].Samples[0][0] != 7 {
		t.Fatalf("writer aliased caller slices: %+v %v", chunks[0].Columns, chunks[0].Samples)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := writeAll(t, 0, []struct {
		cols []Column
		vals []uint64
	}{
		{[]Column{{Name: "x", Kind: KindUint}}, []uint64{1}},
		{[]Column{{Name: "x", Kind: KindUint}}, []uint64{2}},
	})
	// Flip one payload bit (past magic+version so the header still parses).
	for _, pos := range []int{6, len(data) / 2, len(data) - 1} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x01
		_, err := ReadAll(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", pos)
		}
	}
	// Specifically a payload flip must surface ErrChecksum (header flips
	// may fail structurally first, which is fine).
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)-5] ^= 0x01 // last payload byte before the CRC
	if _, err := ReadAll(bytes.NewReader(corrupted)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip error = %v, want ErrChecksum", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("JUNKJUNKJUNK"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage error = %v, want ErrBadMagic", err)
	}
	data := writeAll(t, 0, []struct {
		cols []Column
		vals []uint64
	}{{[]Column{{Name: "x", Kind: KindUint}}, []uint64{1}}})
	data[4] = 99 // version byte
	if _, err := ReadAll(bytes.NewReader(data)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future-version error = %v, want ErrVersion", err)
	}
}

func TestTruncationKeepsSealedChunks(t *testing.T) {
	// Two sealed chunks; cut the stream inside the second.
	var buf bytes.Buffer
	w := NewWriter(&buf, 2)
	cols := []Column{{Name: TimeColumn, Kind: KindUint}, {Name: "x", Kind: KindUint}}
	for i := uint64(0); i < 4; i++ {
		if err := w.Append(cols, []uint64{1000 + i, i * i}); err != nil {
			t.Fatal(err)
		}
	}
	// Chunk cap 2 → both chunks sealed automatically.
	data := buf.Bytes()
	if c, _, _ := w.Counts(); c != 2 {
		t.Fatalf("expected 2 sealed chunks, got %d", c)
	}
	for cut := len(data) - 1; cut > len(data)/2; cut-- {
		chunks, err := ReadAll(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d not reported", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation at %d: err = %v, want ErrUnexpectedEOF or ErrChecksum", cut, err)
		}
		if len(chunks) != 1 {
			t.Fatalf("truncation at %d: kept %d chunks, want the 1 sealed one", cut, len(chunks))
		}
		if got := chunks[0].Samples[1][1]; got != 1 {
			t.Fatalf("surviving chunk corrupted: %d", got)
		}
	}
	// Untruncated decodes fully and cleanly.
	chunks, err := ReadAll(bytes.NewReader(data))
	if err != nil || len(chunks) != 2 {
		t.Fatalf("full decode: %v (%d chunks)", err, len(chunks))
	}
}

func TestEmptyStream(t *testing.T) {
	chunks, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(chunks) != 0 {
		t.Fatalf("empty stream: %v (%d chunks)", err, len(chunks))
	}
	d := NewDecoder(bytes.NewReader(nil))
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next on empty = %v, want io.EOF", err)
	}
}

func TestDecoderStreams(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1) // one sample per chunk
	cols := []Column{{Name: "n", Kind: KindUint}}
	for i := uint64(0); i < 5; i++ {
		if err := w.Append(cols, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i := uint64(0); i < 5; i++ {
		c, err := d.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if len(c.Samples) != 1 || c.Samples[0][0] != i {
			t.Fatalf("chunk %d: samples %v", i, c.Samples)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last chunk: %v, want io.EOF", err)
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic
// or allocate unboundedly, and valid prefixes must decode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FTDC"))
	valid := appendChunk(nil,
		[]Column{{Name: TimeColumn, Kind: KindUint}, {Name: "g", Kind: KindFloatBits}},
		[][]uint64{{1, math.Float64bits(0.5)}, {2, math.Float64bits(1.5)}})
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), valid...))
	f.Add(valid[:len(valid)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes without error must be internally consistent and
		// must re-encode to a decodable stream with identical content.
		var re []byte
		for _, c := range chunks {
			for _, s := range c.Samples {
				if len(s) != len(c.Columns) {
					t.Fatalf("row width %d != %d columns", len(s), len(c.Columns))
				}
			}
			re = appendChunk(re, c.Columns, c.Samples)
		}
		back, err := ReadAll(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(back) != len(chunks) {
			t.Fatalf("re-encode chunk count %d != %d", len(back), len(chunks))
		}
	})
}

// FuzzRoundTrip fuzzes the encoder side: arbitrary cell values in a
// two-column schema must survive encode→decode bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(2))
	f.Add(uint64(math.MaxUint64), uint64(0), uint64(0), uint64(math.MaxUint64))
	f.Add(math.Float64bits(math.NaN()), math.Float64bits(math.Inf(-1)), uint64(7), uint64(9))
	f.Fuzz(func(t *testing.T, a, b, c, d uint64) {
		cols := []Column{{Name: "u", Kind: KindUint}, {Name: "f", Kind: KindFloatBits}}
		rows := [][]uint64{{a, b}, {c, d}}
		data := appendChunk(nil, cols, rows)
		chunks, err := ReadAll(bytes.NewReader(data))
		if err != nil || len(chunks) != 1 {
			t.Fatalf("decode: %v (%d chunks)", err, len(chunks))
		}
		for i := range rows {
			for j := range rows[i] {
				if chunks[0].Samples[i][j] != rows[i][j] {
					t.Fatalf("cell [%d][%d]: %x != %x", i, j, chunks[0].Samples[i][j], rows[i][j])
				}
			}
		}
	})
}
