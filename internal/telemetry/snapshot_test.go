package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRegistrySnapshotTyped(t *testing.T) {
	r := goldenRegistry()
	snap := r.Snapshot()
	bySeries := make(map[string]Sample, len(snap))
	for _, s := range snap {
		bySeries[s.Series()] = s
	}
	if len(bySeries) != len(snap) {
		t.Fatalf("duplicate series in snapshot: %d samples, %d distinct", len(snap), len(bySeries))
	}

	c, ok := bySeries["app_frames_total"]
	if !ok || c.Kind != KindCounter || c.Counter != 42 {
		t.Fatalf("counter sample wrong: %+v (ok=%v)", c, ok)
	}
	lc, ok := bySeries[`app_requests_total{route="/api/state"}`]
	if !ok || lc.Counter != 7 || lc.Labels != `route="/api/state"` {
		t.Fatalf("labeled counter sample wrong: %+v (ok=%v)", lc, ok)
	}
	g, ok := bySeries["app_workers"]
	if !ok || g.Kind != KindGauge || g.Gauge != 4 {
		t.Fatalf("gauge sample wrong: %+v (ok=%v)", g, ok)
	}
	h, ok := bySeries["app_latency_seconds"]
	if !ok || h.Kind != KindHistogram {
		t.Fatalf("histogram sample missing: %+v (ok=%v)", h, ok)
	}
	if h.Count != 4 || h.Sum != 5.105 {
		t.Fatalf("histogram count/sum wrong: count=%d sum=%v", h.Count, h.Sum)
	}
	wantBounds := []float64{0.01, 0.1, 1}
	wantCum := []uint64{1, 3, 3, 4}
	if len(h.Bounds) != len(wantBounds) || len(h.Cumulative) != len(wantCum) {
		t.Fatalf("histogram shape wrong: bounds=%v cum=%v", h.Bounds, h.Cumulative)
	}
	for i := range wantBounds {
		if h.Bounds[i] != wantBounds[i] {
			t.Fatalf("bounds[%d] = %v, want %v", i, h.Bounds[i], wantBounds[i])
		}
	}
	for i := range wantCum {
		if h.Cumulative[i] != wantCum[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, h.Cumulative[i], wantCum[i])
		}
	}

	// The snapshot is detached: mutating the copy must not touch the
	// registry, and later registry updates must not reach the copy.
	h.Cumulative[0] = 99
	if got := r.Snapshot(); got[findSeries(t, got, "app_latency_seconds")].Cumulative[0] != 1 {
		t.Fatal("snapshot aliased the live histogram buckets")
	}

	// Sorted by (name, labels).
	if !sort.SliceIsSorted(snap, func(i, j int) bool {
		if snap[i].Name != snap[j].Name {
			return snap[i].Name < snap[j].Name
		}
		return snap[i].Labels < snap[j].Labels
	}) {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
}

func findSeries(t *testing.T, snap []Sample, series string) int {
	t.Helper()
	for i, s := range snap {
		if s.Series() == series {
			return i
		}
	}
	t.Fatalf("series %s not in snapshot", series)
	return -1
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5, 10})

	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %v, want NaN", q)
	}

	// 100 observations uniform in (0, 10]: quantiles should land within
	// the right bucket with linear interpolation.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	for _, tc := range []struct {
		p    float64
		want float64
		tol  float64
	}{
		{0.5, 5, 0.5},   // median of uniform(0,10]
		{0.99, 10, 0.5}, // p99 near the top
		{0.1, 1, 0.2},   // p10 near the first bound
		{0, 0, 0.01},
		{1, 10, 0.01},
	} {
		got := h.Quantile(tc.p)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.p, got, tc.want, tc.tol)
		}
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if q := h.Quantile(p); !math.IsNaN(q) {
			t.Errorf("Quantile(%v) = %v, want NaN", p, q)
		}
	}

	// Everything in the +Inf bucket clamps to the highest finite bound.
	inf := newHistogram([]float64{1, 2})
	inf.Observe(100)
	inf.Observe(200)
	if q := inf.Quantile(0.5); q != 2 {
		t.Fatalf("overflow-bucket quantile = %v, want 2 (highest finite bound)", q)
	}
}

func TestQuantileAgainstExactRandom(t *testing.T) {
	// Property: for random data, the bucket estimator must bracket the
	// exact sample quantile within one bucket width.
	rng := rand.New(rand.NewSource(7))
	bounds := LatencyBuckets()
	h := newHistogram(bounds)
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := math.Pow(10, -5+5*rng.Float64()) // log-uniform 1e-5..1
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(p*float64(len(vals)-1))]
		est := h.Quantile(p)
		// The estimate must land in a bucket adjacent to the exact
		// value's bucket.
		bExact := sort.SearchFloat64s(bounds, exact)
		bEst := sort.SearchFloat64s(bounds, est)
		if d := bEst - bExact; d < -1 || d > 1 {
			t.Errorf("p=%v: estimate %v (bucket %d) too far from exact %v (bucket %d)",
				p, est, bEst, exact, bExact)
		}
	}
}

func TestObserveN(t *testing.T) {
	a := newHistogram([]float64{1, 10})
	b := newHistogram([]float64{1, 10})
	for i := 0; i < 7; i++ {
		a.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		a.Observe(5)
	}
	b.ObserveN(0.5, 7)
	b.ObserveN(5, 3)
	b.ObserveN(2, 0) // no-op
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("ObserveN mismatch: count %d vs %d, sum %v vs %v",
			a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	ca, cb := a.Cumulative(), b.Cumulative()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("bucket %d: %d vs %d", i, ca[i], cb[i])
		}
	}
}

func TestDeltaCumulativeAndMaxBound(t *testing.T) {
	earlier := []uint64{1, 3, 3, 4}
	later := []uint64{2, 6, 7, 9}
	d := DeltaCumulative(later, earlier)
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("delta[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if DeltaCumulative([]uint64{1}, []uint64{1, 2}) != nil {
		t.Fatal("shape mismatch not rejected")
	}
	if DeltaCumulative([]uint64{1, 2}, []uint64{2, 2}) != nil {
		t.Fatal("backwards bucket not rejected")
	}

	bounds := []float64{1, 2, 5}
	if _, _, ok := MaxNonEmptyBound(bounds, []uint64{0, 0, 0, 0}); ok {
		t.Fatal("empty buckets reported a max bound")
	}
	b, inf, ok := MaxNonEmptyBound(bounds, []uint64{1, 2, 2, 2})
	if !ok || inf || b != 2 {
		t.Fatalf("max bound = (%v, inf=%v, ok=%v), want (2, false, true)", b, inf, ok)
	}
	b, inf, ok = MaxNonEmptyBound(bounds, []uint64{0, 0, 0, 3})
	if !ok || !inf || b != 5 {
		t.Fatalf("overflow max bound = (%v, inf=%v, ok=%v), want (5, true, true)", b, inf, ok)
	}
}
