package telemetry

import (
	"math"
	"sort"
)

// Metric kind names used by Sample.Kind — the string forms of the
// registry's internal kinds, stable for serialization.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Sample is one metric instance read out of a registry at a point in
// time: typed, structured, and safe to hold after the read (all slices
// are copies). It is the machine-readable sibling of the Prometheus text
// exposition — the flight recorder, /api/stats providers and the soak
// harness consume these instead of re-parsing text.
type Sample struct {
	// Name is the metric family name (e.g. marauder_engine_fixes_total).
	Name string
	// Labels is the canonical sorted `k="v"` label string, "" when
	// unlabeled — exactly the form used inside `{}` in the text format.
	Labels string
	// Kind is KindCounter, KindGauge or KindHistogram.
	Kind string
	// Counter is the counter value (KindCounter only).
	Counter uint64
	// Gauge is the gauge value (KindGauge only).
	Gauge float64
	// Count and Sum are the observation count and value sum
	// (KindHistogram only).
	Count uint64
	Sum   float64
	// Bounds are the histogram bucket upper bounds, ascending, without
	// the implicit +Inf (KindHistogram only).
	Bounds []float64
	// Cumulative are the cumulative bucket counts aligned with Bounds
	// plus a final +Inf entry equal to Count (KindHistogram only).
	Cumulative []uint64
}

// Series renders the full series identity, `name` or `name{k="v",…}`.
func (s Sample) Series() string { return promSeries(s.Name, s.Labels, "") }

// Snapshot reads every registered metric instance into typed samples,
// sorted by (name, labels). Like any scrape of live metrics the snapshot
// is per-instance atomic, not cross-instance atomic. The returned slice
// and its nested slices are the caller's to keep.
func (r *Registry) Snapshot() []Sample {
	fams := r.snapshotFamilies()
	out := make([]Sample, 0, len(fams))
	for _, f := range fams {
		for _, key := range f.labelKeys {
			s := Sample{Name: f.name, Labels: key, Kind: f.kind.String()}
			switch m := f.instances[key].(type) {
			case *Counter:
				s.Counter = m.Value()
			case *Gauge:
				s.Gauge = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				s.Bounds = m.Bounds()
				s.Cumulative = m.Cumulative()
			}
			out = append(out, s)
		}
	}
	return out
}

// ObserveN records n observations of the same value in one shot — the
// bulk form of Observe for folding pre-aggregated data (e.g. a
// runtime/metrics histogram delta) into a histogram without n calls.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observed
// distribution from the cumulative buckets, Prometheus
// histogram_quantile-style: linear interpolation inside the target
// bucket, the first bucket interpolating up from 0, and the +Inf bucket
// clamping to the highest finite bound. NaN when the histogram is empty
// or p is outside [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	return QuantileFromCumulative(h.bounds, h.Cumulative(), p)
}

// QuantileFromCumulative is Histogram.Quantile over raw cumulative
// buckets — usable on a delta of two snapshots, which is how a soak run
// computes per-run quantiles from process-cumulative histograms. bounds
// are the finite upper bounds; cum must have len(bounds)+1 entries, the
// last being the total count.
func QuantileFromCumulative(bounds []float64, cum []uint64, p float64) float64 {
	if len(cum) != len(bounds)+1 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	target := p * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= target })
	if i >= len(bounds) {
		// Target falls in the +Inf bucket: the distribution's tail is
		// beyond the last finite bound, which is the best answer we have.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	var below uint64
	if i > 0 {
		lower = bounds[i-1]
		below = cum[i-1]
	}
	inBucket := cum[i] - below
	if inBucket == 0 {
		return lower
	}
	return lower + (bounds[i]-lower)*(target-float64(below))/float64(inBucket)
}

// MaxNonEmptyBound returns the upper bound of the highest non-empty
// bucket in a cumulative snapshot (or a delta of two snapshots) — the
// tightest "no observation exceeded X" statement fixed buckets support.
// The boolean is false when the buckets are empty; when only the +Inf
// bucket is non-empty the last finite bound is returned with inf=true.
func MaxNonEmptyBound(bounds []float64, cum []uint64) (bound float64, inf, ok bool) {
	if len(cum) != len(bounds)+1 || cum[len(cum)-1] == 0 {
		return 0, false, false
	}
	var below uint64
	for i, c := range cum {
		n := c - below
		below = c
		if n == 0 {
			continue
		}
		if i < len(bounds) {
			bound, inf = bounds[i], false
		} else if len(bounds) > 0 {
			bound, inf = bounds[len(bounds)-1], true
		} else {
			return 0, true, false
		}
	}
	return bound, inf, true
}

// DeltaCumulative subtracts an earlier cumulative snapshot from a later
// one of the same histogram, yielding the buckets of just the interval —
// the building block for per-run quantiles over process-wide histograms.
// It returns nil when the shapes differ or any bucket went backwards
// (i.e. the snapshots are not from the same live histogram).
func DeltaCumulative(later, earlier []uint64) []uint64 {
	if len(later) != len(earlier) {
		return nil
	}
	out := make([]uint64, len(later))
	for i := range later {
		if later[i] < earlier[i] {
			return nil
		}
		out[i] = later[i] - earlier[i]
	}
	return out
}
