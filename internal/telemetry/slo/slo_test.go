package slo

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock steps time manually.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Tick()
	tr.Run(context.Background())
	if rep := tr.Report(); len(rep.Objectives) != 0 {
		t.Errorf("nil Report: %+v", rep)
	}
	if rs := tr.HealthReasons(); rs != nil {
		t.Errorf("nil HealthReasons: %v", rs)
	}
}

func TestNewValidates(t *testing.T) {
	cases := []Config{
		{}, // no objectives
		{Objectives: []Objective{{Name: "", Kind: KindLatency, Target: 0.9, Series: "s", ThresholdSeconds: 1}}},
		{Objectives: []Objective{{Name: "x", Kind: "nope", Target: 0.9}}},
		{Objectives: []Objective{{Name: "x", Kind: KindLatency, Target: 1.5, Series: "s", ThresholdSeconds: 1}}},
		{Objectives: []Objective{{Name: "x", Kind: KindLatency, Target: 0.9, Series: "", ThresholdSeconds: 1}}},
		{Objectives: []Objective{{Name: "x", Kind: KindAvailability, Target: 0.9, TotalSeries: "t", BadSeries: ""}}},
		{Objectives: []Objective{ // duplicate name
			{Name: "x", Kind: KindLatency, Target: 0.9, Series: "s", ThresholdSeconds: 1},
			{Name: "x", Kind: KindLatency, Target: 0.9, Series: "s", ThresholdSeconds: 1},
		}},
	}
	for i, cfg := range cases {
		cfg.Registry = telemetry.NewRegistry()
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestAvailabilityTransitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("svc_requests_total", "", nil)
	bad := reg.Counter("svc_errors_total", "", nil)
	clk := newFakeClock()
	tr := mustNew(t, Config{
		Objectives: []Objective{{
			Name: "avail", Kind: KindAvailability, Target: 0.9,
			TotalSeries: "svc_requests_total", BadSeries: "svc_errors_total",
		}},
		Windows:      []time.Duration{time.Minute, 4 * time.Minute},
		TickInterval: 10 * time.Second,
		Registry:     reg,
		Clock:        clk.Now,
	})

	state := func() string {
		rep := tr.Report()
		if len(rep.Objectives) != 1 {
			t.Fatalf("objectives: %+v", rep)
		}
		return rep.Objectives[0].State
	}

	// Before any traffic: no data.
	tr.Tick()
	if got := state(); got != StateNoData {
		t.Fatalf("cold state = %q, want %q", got, StateNoData)
	}
	if rs := tr.HealthReasons(); len(rs) != 0 {
		t.Fatalf("no_data produced health reasons: %v", rs)
	}

	// Phase 1 — objective met: 100 requests/tick, no errors, for 2 min.
	for i := 0; i < 12; i++ {
		clk.Advance(10 * time.Second)
		total.Add(100)
		tr.Tick()
	}
	if got := state(); got != StateMet {
		t.Fatalf("healthy state = %q, want %q", got, StateMet)
	}
	if rs := tr.HealthReasons(); len(rs) != 0 {
		t.Fatalf("met produced health reasons: %v", rs)
	}

	// Phase 2 — budget burning: an 80-error tick makes the 1m window
	// 80/600 = 13.3% bad (burn 1.33 over the 10% budget), while the 4m
	// window sits at 80/1300 = 6.2% — budget dented but not exhausted.
	clk.Advance(10 * time.Second)
	total.Add(100)
	bad.Add(80)
	tr.Tick()
	if got := state(); got != StateBurning {
		t.Fatalf("burning state = %q, want %q", got, StateBurning)
	}
	rs := tr.HealthReasons()
	if len(rs) != 1 || !strings.Contains(rs[0], "burning") || !strings.Contains(rs[0], "avail") {
		t.Fatalf("burning health reasons: %v", rs)
	}

	// Phase 3 — exhausted: errors keep coming until the long window's
	// bad fraction exceeds the whole 10%% budget.
	for i := 0; i < 6; i++ {
		clk.Advance(10 * time.Second)
		total.Add(100)
		bad.Add(50)
		tr.Tick()
	}
	if got := state(); got != StateExhausted {
		t.Fatalf("exhausted state = %q, want %q", got, StateExhausted)
	}
	rep := tr.Report()
	if br := rep.Objectives[0].BudgetRemaining; br > 0 {
		t.Fatalf("exhausted but budget remaining %v", br)
	}
	rs = tr.HealthReasons()
	if len(rs) != 1 || !strings.Contains(rs[0], "exhausted") {
		t.Fatalf("exhausted health reasons: %v", rs)
	}

	// Phase 4 — recovered: clean traffic until the bad interval ages out
	// of the longest (4m) window.
	for i := 0; i < 30; i++ {
		clk.Advance(10 * time.Second)
		total.Add(100)
		tr.Tick()
	}
	if got := state(); got != StateMet {
		t.Fatalf("recovered state = %q, want %q", got, StateMet)
	}
	if rs := tr.HealthReasons(); len(rs) != 0 {
		t.Fatalf("recovered still has health reasons: %v", rs)
	}
}

func TestLatencyObjectiveSnapsThreshold(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("fix_seconds", "", []float64{0.01, 0.05, 0.1}, nil)
	clk := newFakeClock()
	tr := mustNew(t, Config{
		Objectives: []Objective{{
			Name: "fix-latency", Kind: KindLatency, Target: 0.5,
			Series: "fix_seconds", ThresholdSeconds: 0.04, // snaps up to 0.05
		}},
		Windows:  []time.Duration{time.Minute},
		Registry: reg,
		Clock:    clk.Now,
	})

	tr.Tick()
	// 8 fast (≤0.05), 2 slow: 80% good against a 50% target.
	for i := 0; i < 8; i++ {
		h.Observe(0.02)
	}
	h.Observe(0.2)
	h.Observe(0.2)
	clk.Advance(10 * time.Second)
	tr.Tick()

	rep := tr.Report()
	or := rep.Objectives[0]
	if or.ThresholdSeconds != 0.05 {
		t.Errorf("threshold not snapped to bucket bound: %v", or.ThresholdSeconds)
	}
	if or.State != StateMet {
		t.Errorf("state = %q, want met: %+v", or.State, or)
	}
	w := or.Windows[0]
	if w.Good != 8 || w.Total != 10 {
		t.Errorf("window counts: %+v", w)
	}
	// badFrac 0.2 / budget 0.5 = burn rate 0.4.
	if w.BurnRate < 0.39 || w.BurnRate > 0.41 {
		t.Errorf("burn rate: %v", w.BurnRate)
	}

	// Slow traffic blows the budget: 10 more all over threshold puts the
	// window at 8/20 good (40% < 50% target) — exhausted.
	for i := 0; i < 10; i++ {
		h.Observe(0.2)
	}
	clk.Advance(10 * time.Second)
	tr.Tick()
	if got := tr.Report().Objectives[0].State; got != StateExhausted {
		t.Errorf("state after slow burst = %q, want exhausted", got)
	}
}

func TestGaugesPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("req_total", "", nil)
	reg.Counter("req_bad", "", nil)
	clk := newFakeClock()
	tr := mustNew(t, Config{
		Objectives: []Objective{{
			Name: "a", Kind: KindAvailability, Target: 0.99,
			TotalSeries: "req_total", BadSeries: "req_bad",
		}},
		Windows:  []time.Duration{time.Minute, 5 * time.Minute},
		Registry: reg,
		Clock:    clk.Now,
	})
	total.Add(50)
	clk.Advance(time.Second)
	tr.Tick()

	found := map[string]bool{}
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "marauder_slo_compliance", "marauder_slo_budget_remaining", "marauder_slo_burn_rate":
			found[s.Series()] = true
			if s.Kind != telemetry.KindGauge {
				t.Errorf("%s: kind %s", s.Series(), s.Kind)
			}
		}
	}
	for _, want := range []string{
		`marauder_slo_compliance{slo="a"}`,
		`marauder_slo_budget_remaining{slo="a"}`,
		`marauder_slo_burn_rate{slo="a",window="1m0s"}`,
		`marauder_slo_burn_rate{slo="a",window="5m0s"}`,
	} {
		if !found[want] {
			t.Errorf("gauge %s not published; have %v", want, found)
		}
	}
}

func TestMissingSeriesIsNoData(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	tr := mustNew(t, Config{
		Objectives: []Objective{{
			Name: "ghost", Kind: KindLatency, Target: 0.9,
			Series: "never_registered_seconds", ThresholdSeconds: 0.1,
		}},
		Registry: reg,
		Clock:    clk.Now,
	})
	tr.Tick()
	if got := tr.Report().Objectives[0].State; got != StateNoData {
		t.Errorf("missing series state = %q, want no_data", got)
	}
}

func TestParseObjectiveSpec(t *testing.T) {
	o, err := ParseObjectiveSpec("latency:fix-p99:marauder_fix_seconds:0.05:0.99")
	if err != nil {
		t.Fatalf("latency spec: %v", err)
	}
	if o.Kind != KindLatency || o.Name != "fix-p99" || o.Series != "marauder_fix_seconds" ||
		o.ThresholdSeconds != 0.05 || o.Target != 0.99 {
		t.Errorf("latency spec parsed: %+v", o)
	}

	o, err = ParseObjectiveSpec(`availability:fixes:marauder_engine_fixes_total{algo="mloc"}:marauder_engine_fix_errors_total:0.999`)
	if err != nil {
		t.Fatalf("availability spec with braces: %v", err)
	}
	if o.TotalSeries != `marauder_engine_fixes_total{algo="mloc"}` || o.BadSeries != "marauder_engine_fix_errors_total" {
		t.Errorf("availability spec parsed: %+v", o)
	}

	for _, bad := range []string{
		"",
		"latency:x:series:0.05",            // too few fields
		"latency:x:series:0.05:0.99:extra", // too many
		"latency:x:series:nope:0.99",       // bad threshold
		"latency:x:series:0.05:2",          // target out of range
		"availability:x:t:b:zero",          // bad target
		"weird:x:series:0.05:0.99",         // unknown kind
	} {
		if _, err := ParseObjectiveSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("t_total", "", nil)
	reg.Counter("t_bad", "", nil)
	tr := mustNew(t, Config{
		Objectives: []Objective{{
			Name: "a", Kind: KindAvailability, Target: 0.9,
			TotalSeries: "t_total", BadSeries: "t_bad",
		}},
		TickInterval: time.Hour,
		Registry:     reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { tr.Run(ctx); close(done) }()
	deadline := time.After(5 * time.Second)
	for len(tr.Report().Objectives) == 0 {
		select {
		case <-deadline:
			t.Fatal("first tick never happened")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
}
