// Package slo tracks service-level objectives against the metrics
// registry: configurable latency and availability targets evaluated over
// multiple sliding windows, with error-budget burn rates in the SRE
// sense (burn rate 1.0 = consuming exactly the budget the target
// allows; >1 = on track to exhaust it before the window ends).
//
// The tracker is strictly poll-based: it reads cumulative counters and
// histogram buckets out of Registry.Snapshot on its own tick, so the
// fix/ingest hot paths pay nothing for SLO tracking — the same series
// that already feed /metrics and the FTDC recorder are the SLO inputs.
// Results are re-published as gauges (marauder_slo_*), which means the
// flight recorder captures budget trajectories automatically.
//
// A nil *Tracker is the disabled state; every method absorbs the call.
package slo

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Objective kinds.
const (
	// KindLatency counts an observation good when it lands at or under
	// ThresholdSeconds in the Series histogram.
	KindLatency = "latency"
	// KindAvailability counts TotalSeries events, of which BadSeries are
	// failures.
	KindAvailability = "availability"
)

// States an objective can be in, ordered by severity.
const (
	StateNoData    = "no_data"
	StateMet       = "met"
	StateBurning   = "burning"
	StateExhausted = "exhausted"
)

// Objective declares one SLO against registry series.
type Objective struct {
	// Name identifies the objective in reports, gauges and health
	// reasons.
	Name string
	// Kind is KindLatency or KindAvailability.
	Kind string
	// Target is the goal fraction of good events, e.g. 0.99.
	Target float64
	// Series is the full series identity (`name` or `name{k="v",…}`) of
	// the latency histogram (KindLatency only).
	Series string
	// ThresholdSeconds is the latency goal; it is snapped to the first
	// histogram bucket bound at or above it, since bucketed data cannot
	// resolve between bounds (KindLatency only).
	ThresholdSeconds float64
	// TotalSeries and BadSeries are the counter series for all events and
	// failed events (KindAvailability only). A BadSeries that never
	// registered reads as zero failures.
	TotalSeries string
	BadSeries   string
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective missing Name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: %s: Target must be in (0,1), got %v", o.Name, o.Target)
	}
	switch o.Kind {
	case KindLatency:
		if o.Series == "" || o.ThresholdSeconds <= 0 {
			return fmt.Errorf("slo: %s: latency objective needs Series and ThresholdSeconds", o.Name)
		}
	case KindAvailability:
		if o.TotalSeries == "" || o.BadSeries == "" {
			return fmt.Errorf("slo: %s: availability objective needs TotalSeries and BadSeries", o.Name)
		}
	default:
		return fmt.Errorf("slo: %s: unknown Kind %q", o.Name, o.Kind)
	}
	return nil
}

// Config assembles a Tracker.
type Config struct {
	// Objectives are the SLOs to track. Required, non-empty.
	Objectives []Objective
	// Windows are the sliding evaluation windows, shortest to longest;
	// the longest is the budget window. Nil means {5m, 30m, 2h}.
	Windows []time.Duration
	// TickInterval is how often Run samples the registry; 0 means 10 s.
	TickInterval time.Duration
	// BurnThreshold is the burn rate above which an objective is
	// "burning"; 0 means 1.0 (consuming budget faster than sustainable).
	BurnThreshold float64
	// Registry is the series source and gauge sink; nil means the
	// process-wide default.
	Registry *telemetry.Registry
	// Clock substitutes the timestamp source, for tests; nil means
	// time.Now.
	Clock func() time.Time
}

// point is one cumulative observation of an objective's counters.
type point struct {
	t           time.Time
	good, total uint64
}

// tracked is an objective plus its ring of cumulative points and its
// published gauges.
type tracked struct {
	obj    Objective
	points []point

	compliance *telemetry.Gauge
	budget     *telemetry.Gauge
	burn       []*telemetry.Gauge // aligned with Config.Windows
}

// WindowReport is one window's view of one objective.
type WindowReport struct {
	// Window is the duration in Go syntax, e.g. "5m0s".
	Window string `json:"window"`
	// Good and Total are the event deltas across the window.
	Good  uint64 `json:"good"`
	Total uint64 `json:"total"`
	// GoodFraction is Good/Total (1 when Total is 0 — no events is not a
	// violation).
	GoodFraction float64 `json:"goodFraction"`
	// BurnRate is badFraction/(1-target): 1.0 burns the budget exactly at
	// the sustainable rate.
	BurnRate float64 `json:"burnRate"`
}

// ObjectiveReport is the full /api/slo view of one objective.
type ObjectiveReport struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target"`
	// ThresholdSeconds is the effective (bucket-snapped) latency goal;
	// omitted for availability objectives.
	ThresholdSeconds float64 `json:"thresholdSeconds,omitempty"`
	// State is no_data, met, burning or exhausted.
	State string `json:"state"`
	// BudgetRemaining is the error budget left over the longest window,
	// 1 = untouched, ≤0 = exhausted.
	BudgetRemaining float64        `json:"budgetRemaining"`
	Windows         []WindowReport `json:"windows"`
}

// Report is the /api/slo payload.
type Report struct {
	// TickedAt is the time of the last registry sample.
	TickedAt time.Time `json:"tickedAt"`
	// Windows echoes the configured window set.
	Windows    []string          `json:"windows"`
	Objectives []ObjectiveReport `json:"objectives"`
}

// Tracker evaluates objectives on a tick. All methods are nil-safe.
type Tracker struct {
	cfg     Config
	maxKeep time.Duration

	mu      sync.Mutex
	objs    []*tracked
	last    Report
	hasTick bool
}

// New validates objectives and registers the SLO gauges.
func New(cfg Config) (*Tracker, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: Config.Objectives is required")
	}
	names := map[string]bool{}
	for _, o := range cfg.Objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		if names[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		names[o.Name] = true
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{5 * time.Minute, 30 * time.Minute, 2 * time.Hour}
	}
	ws := append([]time.Duration(nil), cfg.Windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	cfg.Windows = ws
	for _, w := range ws {
		if w <= 0 {
			return nil, fmt.Errorf("slo: non-positive window %v", w)
		}
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 10 * time.Second
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 1.0
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	t := &Tracker{cfg: cfg, maxKeep: ws[len(ws)-1] + cfg.TickInterval}
	for _, o := range cfg.Objectives {
		tr := &tracked{
			obj: o,
			compliance: cfg.Registry.Gauge("marauder_slo_compliance",
				"Good-event fraction over the longest SLO window.",
				telemetry.Labels{"slo": o.Name}),
			budget: cfg.Registry.Gauge("marauder_slo_budget_remaining",
				"Error budget remaining over the longest SLO window (1=untouched, <=0 exhausted).",
				telemetry.Labels{"slo": o.Name}),
		}
		for _, w := range cfg.Windows {
			tr.burn = append(tr.burn, cfg.Registry.Gauge("marauder_slo_burn_rate",
				"Error-budget burn rate per window (1.0 = sustainable).",
				telemetry.Labels{"slo": o.Name, "window": w.String()}))
		}
		t.objs = append(t.objs, tr)
	}
	return t, nil
}

// observe extracts (good, total) for one objective from a snapshot.
func observe(obj Objective, snap []telemetry.Sample) (good, total uint64, threshold float64) {
	threshold = obj.ThresholdSeconds
	switch obj.Kind {
	case KindLatency:
		for _, s := range snap {
			if s.Kind != telemetry.KindHistogram || s.Series() != obj.Series {
				continue
			}
			// Snap the goal to the first bound at or above it: the
			// cumulative count there is "observations ≤ bound", the closest
			// answerable version of "≤ threshold".
			i := sort.SearchFloat64s(s.Bounds, obj.ThresholdSeconds)
			if i < len(s.Bounds) {
				threshold = s.Bounds[i]
				good = s.Cumulative[i]
			} else if n := len(s.Cumulative); n > 0 {
				// Threshold beyond the last finite bound: everything under
				// +Inf counts good, which the report makes visible by
				// echoing the original threshold.
				good = s.Cumulative[n-1]
			}
			total = s.Count
			return
		}
	case KindAvailability:
		var bad uint64
		for _, s := range snap {
			if s.Kind != telemetry.KindCounter {
				continue
			}
			switch s.Series() {
			case obj.TotalSeries:
				total = s.Counter
			case obj.BadSeries:
				bad = s.Counter
			}
		}
		if bad > total {
			bad = total
		}
		good = total - bad
		return
	}
	return
}

// Tick samples the registry once, advances every objective's ring, and
// rebuilds the report and gauges. Run calls it on the interval; tests
// and one-shot tools call it directly.
func (t *Tracker) Tick() {
	if t == nil {
		return
	}
	now := t.cfg.Clock()
	snap := t.cfg.Registry.Snapshot()

	t.mu.Lock()
	defer t.mu.Unlock()
	rep := Report{TickedAt: now}
	for _, w := range t.cfg.Windows {
		rep.Windows = append(rep.Windows, w.String())
	}
	for _, tr := range t.objs {
		good, total, threshold := observe(tr.obj, snap)
		tr.points = append(tr.points, point{t: now, good: good, total: total})
		// Prune, keeping one point at or before every window boundary so
		// deltas always have a baseline.
		cut := now.Add(-t.maxKeep)
		drop := 0
		for drop < len(tr.points)-1 && tr.points[drop+1].t.Before(cut) {
			drop++
		}
		tr.points = tr.points[drop:]

		or := ObjectiveReport{
			Name:   tr.obj.Name,
			Kind:   tr.obj.Kind,
			Target: tr.obj.Target,
			State:  StateNoData,
		}
		if tr.obj.Kind == KindLatency {
			or.ThresholdSeconds = threshold
		}
		latest := tr.points[len(tr.points)-1]
		burning := false
		for wi, w := range t.cfg.Windows {
			base := baseline(tr.points, now.Add(-w))
			wr := WindowReport{Window: w.String(), GoodFraction: 1}
			if latest.total >= base.total && latest.good >= base.good {
				wr.Total = latest.total - base.total
				wr.Good = latest.good - base.good
			}
			if wr.Total > 0 {
				wr.GoodFraction = float64(wr.Good) / float64(wr.Total)
			}
			wr.BurnRate = (1 - wr.GoodFraction) / (1 - tr.obj.Target)
			if wr.Total > 0 && wr.BurnRate > t.cfg.BurnThreshold {
				burning = true
			}
			tr.burn[wi].Set(wr.BurnRate)
			or.Windows = append(or.Windows, wr)
		}
		long := or.Windows[len(or.Windows)-1]
		or.BudgetRemaining = 1 - long.BurnRate
		tr.compliance.Set(long.GoodFraction)
		tr.budget.Set(or.BudgetRemaining)
		switch {
		case long.Total == 0:
			or.State = StateNoData
		case or.BudgetRemaining <= 0:
			or.State = StateExhausted
		case burning:
			or.State = StateBurning
		default:
			or.State = StateMet
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	t.last = rep
	t.hasTick = true
}

// baseline returns the newest point at or before the cutoff, falling
// back to the oldest point when the ring doesn't reach back that far
// (early in the process lifetime the window is effectively "since
// start", the standard cold-start behavior for sliding SLO windows).
func baseline(points []point, cutoff time.Time) point {
	base := points[0]
	for _, p := range points[1:] {
		if p.t.After(cutoff) {
			break
		}
		base = p
	}
	return base
}

// Report returns the latest evaluation (zero Report before the first
// tick or on a nil tracker).
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// HealthReasons lists degraded-state strings for /api/health: one per
// objective burning or exhausted, empty when all objectives are met (or
// the tracker is nil/unticked).
func (t *Tracker) HealthReasons() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasTick {
		return nil
	}
	var out []string
	for _, or := range t.last.Objectives {
		switch or.State {
		case StateExhausted:
			out = append(out, fmt.Sprintf("slo %s: error budget exhausted (%.1f%% good over %s, target %.2f%%)",
				or.Name, 100*or.Windows[len(or.Windows)-1].GoodFraction, or.Windows[len(or.Windows)-1].Window, 100*or.Target))
		case StateBurning:
			worst, at := 0.0, ""
			for _, w := range or.Windows {
				if w.BurnRate > worst {
					worst, at = w.BurnRate, w.Window
				}
			}
			out = append(out, fmt.Sprintf("slo %s: error budget burning (burn rate %.2g over %s)", or.Name, worst, at))
		}
	}
	return out
}

// Run ticks immediately and then every TickInterval until ctx is
// cancelled. A nil tracker returns immediately.
func (t *Tracker) Run(ctx context.Context) {
	if t == nil {
		return
	}
	t.Tick()
	tick := time.NewTicker(t.cfg.TickInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.Tick()
		}
	}
}

// DefaultObjectives returns the pipeline's built-in SLOs against series
// the engine always registers: 99% of fixes inside 50 ms end to end, and
// 99.9% of fixes succeeding (empty observation windows excluded — a
// device outside coverage is not a pipeline failure). The latency series
// is sampled 1-in-N with the stage histograms, which leaves the good
// fraction unbiased.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name: "fix-latency", Kind: KindLatency, Target: 0.99,
			Series: "marauder_fix_seconds", ThresholdSeconds: 0.05,
		},
		{
			Name: "fix-availability", Kind: KindAvailability, Target: 0.999,
			TotalSeries: "marauder_engine_fixes_total",
			BadSeries:   "marauder_engine_fix_errors_total",
		},
	}
}

// ParseObjectiveSpec parses the flag syntax shared by the cmds:
//
//	latency:<name>:<series>:<thresholdSeconds>:<target>
//	availability:<name>:<totalSeries>:<badSeries>:<target>
//
// Series may contain label braces; colons inside braces are not split.
func ParseObjectiveSpec(spec string) (Objective, error) {
	parts := splitOutsideBraces(spec, ':')
	if len(parts) != 5 {
		return Objective{}, fmt.Errorf("slo: spec %q: want 5 colon-separated fields, got %d", spec, len(parts))
	}
	var o Objective
	o.Kind, o.Name = parts[0], parts[1]
	target, err := parseFrac(parts[4])
	if err != nil {
		return Objective{}, fmt.Errorf("slo: spec %q: target: %w", spec, err)
	}
	o.Target = target
	switch o.Kind {
	case KindLatency:
		o.Series = parts[2]
		thr, err := parseFrac(parts[3])
		if err != nil {
			return Objective{}, fmt.Errorf("slo: spec %q: threshold: %w", spec, err)
		}
		o.ThresholdSeconds = thr
	case KindAvailability:
		o.TotalSeries, o.BadSeries = parts[2], parts[3]
	}
	if err := o.validate(); err != nil {
		return Objective{}, err
	}
	return o, nil
}

func parseFrac(s string) (float64, error) {
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil || math.IsNaN(v) {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// splitOutsideBraces splits on sep, treating {…} as opaque so label sets
// survive.
func splitOutsideBraces(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
