package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one sample
// line per instance, histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.labelKeys {
			if err := writePromInstance(w, f.name, key, f.instances[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

// promSeries renders `name{labels}` with extra label pairs appended to the
// canonical label string (used for histogram le buckets).
func promSeries(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePromInstance(w io.Writer, name, labels string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", promSeries(name, labels, ""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", promSeries(name, labels, ""), formatFloat(m.Value()))
		return err
	case *Histogram:
		cum := m.Cumulative()
		for i, bound := range m.bounds {
			le := `le="` + formatFloat(bound) + `"`
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(name+"_bucket", labels, le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(name+"_bucket", labels, `le="+Inf"`), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(name+"_sum", labels, ""), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", promSeries(name+"_count", labels, ""), m.Count())
		return err
	}
	return fmt.Errorf("telemetry: unknown metric type %T", m)
}

// histogramJSON is the JSON exposition of one histogram instance.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound -> cumulative count
}

// WriteJSON renders every registered metric as one flat expvar-style JSON
// object: counters and gauges as numbers, histograms as
// {count, sum, buckets}. Labeled instances key as `name{k="v"}`. It is a
// straight serialization of Registry.Snapshot — consumers that want the
// data structured should call Snapshot directly instead of parsing this.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	out := make(map[string]any, len(snap))
	for _, s := range snap {
		switch s.Kind {
		case KindCounter:
			out[s.Series()] = s.Counter
		case KindGauge:
			out[s.Series()] = s.Gauge
		case KindHistogram:
			buckets := make(map[string]uint64, len(s.Bounds)+1)
			for i, bound := range s.Bounds {
				buckets[formatFloat(bound)] = s.Cumulative[i]
			}
			buckets["+Inf"] = s.Cumulative[len(s.Cumulative)-1]
			out[s.Series()] = histogramJSON{Count: s.Count, Sum: s.Sum, Buckets: buckets}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// MetricsHandler serves the registry in Prometheus text format — mount it
// at /metrics.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the registry as expvar-style JSON — mount it at
// /debug/vars.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// the given mux — the explicit, opt-in form of importing net/http/pprof
// (which would silently register on http.DefaultServeMux).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SetProfileRates turns on the runtime's mutex and block profilers —
// without this, /debug/pprof/mutex and /debug/pprof/block (and the
// continuous profiler's captures of them) are always empty, because the
// runtime defaults both rates to off. mutexFraction samples 1/n of mutex
// contention events (0 disables, negative leaves the rate unchanged);
// blockRateNs records blocking events lasting at least that many
// nanoseconds (0 disables, negative leaves unchanged). Both profilers
// cost on contended paths, hence opt-in flags rather than defaults.
func SetProfileRates(mutexFraction, blockRateNs int) {
	if mutexFraction >= 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs >= 0 {
		runtime.SetBlockProfileRate(blockRateNs)
	}
}

// Mux builds the standalone telemetry endpoint: /metrics (Prometheus),
// /debug/vars (JSON) and, when enablePprof is set, /debug/pprof/. The
// commands serve it on their -metrics-addr.
func Mux(r *Registry, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", r.VarsHandler())
	if enablePprof {
		RegisterPprof(mux)
	}
	return mux
}
