package telemetry

import (
	"bytes"
	"context"
	"math"
	"os"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"
)

// Names of the runtime/metrics series the sampler reads. Kept in one
// place so the Sample loop and the tests agree on what is collected.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmSysBytes   = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeSampler folds Go runtime health — goroutine count, heap and
// process memory, RSS, GC pause and scheduler latency distributions —
// into ordinary registry metrics, so the same exposition endpoints and
// the flight recorder that carry the app-level pipeline series also
// answer "is the process itself drowning". Until PR 7 only app-level
// metrics were exported; a soak run could not see a leak or a GC stall
// without attaching pprof.
//
// The runtime exposes pause and latency data as cumulative
// runtime/metrics histograms with its own bucket layout; Sample
// re-buckets only the delta since the previous call (each new event
// observed at its runtime-bucket upper bound), so the registry histogram
// converges on the true distribution without double counting.
type RuntimeSampler struct {
	goroutines *Gauge
	heapBytes  *Gauge
	sysBytes   *Gauge
	rssBytes   *Gauge
	maxPause   *Gauge
	gcCycles   *Counter
	gcPause    *Histogram
	schedLat   *Histogram

	mu         sync.Mutex
	samples    []metrics.Sample
	prevPause  []uint64
	prevSched  []uint64
	prevCycles uint64
	maxPauseS  float64
}

// NewRuntimeSampler registers the process runtime series on reg (nil
// means the process-wide default registry) and returns the sampler. The
// series exist (zero-valued) from this call on; Sample fills them.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		reg = Default()
	}
	s := &RuntimeSampler{
		goroutines: reg.Gauge("marauder_process_goroutines",
			"Live goroutines, from runtime/metrics.", nil),
		heapBytes: reg.Gauge("marauder_process_heap_bytes",
			"Bytes of live heap objects, from runtime/metrics.", nil),
		sysBytes: reg.Gauge("marauder_process_sys_bytes",
			"Total bytes of memory mapped by the Go runtime.", nil),
		rssBytes: reg.Gauge("marauder_process_rss_bytes",
			"Resident set size from /proc/self/status (0 where unavailable).", nil),
		maxPause: reg.Gauge("marauder_process_gc_max_pause_seconds",
			"Largest GC pause bucket bound seen since the sampler started.", nil),
		gcCycles: reg.Counter("marauder_process_gc_cycles_total",
			"Completed GC cycles.", nil),
		gcPause: reg.Histogram("marauder_process_gc_pause_seconds",
			"GC stop-the-world pause durations, re-bucketed from runtime/metrics.",
			LatencyBuckets(), nil),
		schedLat: reg.Histogram("marauder_process_sched_latency_seconds",
			"Goroutine scheduling latencies, re-bucketed from runtime/metrics.",
			LatencyBuckets(), nil),
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapBytes},
			{Name: rmSysBytes},
			{Name: rmGCCycles},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
	}
	return s
}

// Sample reads the runtime once and updates every series. Safe for
// concurrent use; each call is one metrics.Read plus a /proc read.
func (s *RuntimeSampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for _, m := range s.samples {
		switch m.Name {
		case rmGoroutines:
			s.goroutines.Set(float64(m.Value.Uint64()))
		case rmHeapBytes:
			s.heapBytes.Set(float64(m.Value.Uint64()))
		case rmSysBytes:
			s.sysBytes.Set(float64(m.Value.Uint64()))
		case rmGCCycles:
			c := m.Value.Uint64()
			if c > s.prevCycles {
				s.gcCycles.Add(c - s.prevCycles)
				s.prevCycles = c
			}
		case rmGCPauses:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				s.prevPause = s.foldDelta(m.Value.Float64Histogram(), s.prevPause, s.gcPause, true)
			}
		case rmSchedLat:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				s.prevSched = s.foldDelta(m.Value.Float64Histogram(), s.prevSched, s.schedLat, false)
			}
		}
	}
	if rss, ok := readRSSBytes(); ok {
		s.rssBytes.Set(float64(rss))
	}
}

// foldDelta observes the new events of a cumulative runtime histogram
// (relative to prev counts) into dst, each at its runtime-bucket upper
// bound (the lower bound for the +Inf bucket), and returns the updated
// counts to carry as prev. trackMax additionally maintains the
// max-GC-pause gauge.
func (s *RuntimeSampler) foldDelta(h *metrics.Float64Histogram, prev []uint64, dst *Histogram, trackMax bool) []uint64 {
	if len(prev) != len(h.Counts) {
		// First sample, or the runtime changed its bucket layout (it may
		// between Go versions, not mid-run): adopt the counts as the new
		// baseline. On the true first sample this folds the pre-existing
		// events in, which is what a recorder starting mid-process wants.
		prev = make([]uint64, len(h.Counts))
	}
	for i, c := range h.Counts {
		n := c - prev[i]
		prev[i] = c
		if n == 0 {
			continue
		}
		// Buckets has len(Counts)+1 boundaries; bucket i spans
		// [Buckets[i], Buckets[i+1]). Use the upper bound as the
		// representative value — conservative for latency data.
		v := h.Buckets[i+1]
		if math.IsInf(v, 1) {
			v = h.Buckets[i]
		}
		if math.IsInf(v, -1) || math.IsNaN(v) {
			continue
		}
		dst.ObserveN(v, n)
		if trackMax && v > s.maxPauseS {
			s.maxPauseS = v
			s.maxPause.Set(v)
		}
	}
	return prev
}

// Run samples every interval until ctx is cancelled — the lifecycle the
// commands start next to their serve loops. A final sample on the way
// out captures the shutdown state.
func (s *RuntimeSampler) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.Sample()
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// readRSSBytes reads VmRSS from /proc/self/status. Linux-specific by
// nature; on other platforms (or a masked /proc) it reports ok=false and
// the RSS gauge stays 0 — the heap/sys gauges still tell the story.
func readRSSBytes() (uint64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmRSS:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmRSS:"):])
		if len(fields) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
