// Package prof is the continuous profiler: a background loop that
// periodically captures CPU, delta-heap, goroutine, mutex and block
// profiles from the running process into rotated, size-capped artifact
// files alongside the FTDC stream, then decodes its own CPU captures
// in-process into a top-N hot-function attribution table (pprofparse.go)
// so the hottest symbols are visible over /api/profile and in soak
// summaries without ever attaching an external pprof tool.
//
// Like the FTDC recorder and the tracer, a nil *Profiler is the disabled
// state: every method absorbs the call at the cost of one nil check.
package prof

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config assembles a Profiler.
type Config struct {
	// Dir is the directory profile artifacts are written into; created if
	// missing. Required.
	Dir string
	// Interval is the pause between capture cycles; 0 means the default
	// 60 s.
	Interval time.Duration
	// CPUDuration is how long each CPU capture runs; 0 means the default
	// 10 s, and values above Interval are clamped to Interval.
	CPUDuration time.Duration
	// TopN bounds the attribution table; 0 means the default 20.
	TopN int
	// MaxBytes caps the total artifact bytes kept on disk; when a new
	// capture pushes the directory past the cap, the oldest artifacts are
	// deleted first. 0 means the default 64 MiB.
	MaxBytes int64
	// FilePrefix names artifacts <prefix>-<kind>-<seq>.pprof; "" means
	// "prof".
	FilePrefix string
	// Clock substitutes the timestamp source, for tests; nil means
	// time.Now.
	Clock func() time.Time
}

// Status is the profiler's self-report, shaped for /api/health detail.
type Status struct {
	// Enabled is false for a nil profiler — the "flag not set" report.
	Enabled bool `json:"enabled"`
	// Dir is the artifact directory.
	Dir string `json:"dir,omitempty"`
	// IntervalSec and CPUDurationSec echo the configured cadence.
	IntervalSec    float64 `json:"intervalSec,omitempty"`
	CPUDurationSec float64 `json:"cpuDurationSec,omitempty"`
	// Cycles counts completed capture cycles; Captures counts artifact
	// files written; Bytes the artifact bytes currently retained.
	Cycles   uint64 `json:"cycles"`
	Captures uint64 `json:"captures"`
	Bytes    int64  `json:"bytes"`
	// LastCPUPath is the most recent CPU artifact, the one Attribution
	// decodes.
	LastCPUPath string `json:"lastCpuPath,omitempty"`
	// LastErr is the most recent capture error, "" when healthy.
	LastErr string `json:"lastErr,omitempty"`
}

// Attribution is the decoded view of the most recent CPU capture.
type Attribution struct {
	// CapturedAt is when the capture cycle finished.
	CapturedAt time.Time `json:"capturedAt"`
	// Path is the artifact the table was decoded from.
	Path string `json:"path"`
	// Samples is the number of stack samples in the capture, TotalNanos
	// the CPU-nanosecond sum across them.
	Samples    int   `json:"samples"`
	TotalNanos int64 `json:"totalNanos"`
	// TopFunctions is the flat-weight-ordered hot-function table.
	TopFunctions []HotFunc `json:"topFunctions"`
}

// Profiler periodically captures runtime profiles into rotated artifact
// files and keeps an in-process attribution of its latest CPU capture.
// All methods are nil-safe.
type Profiler struct {
	cfg Config

	mu            sync.Mutex
	seq           uint64
	cycles        uint64
	captures      uint64
	retainedBytes int64
	lastErr       error
	lastCPU       string
	attr          *Attribution
	closed        bool
}

// New validates the config and creates the artifact directory. Nothing
// is captured until Cycle or Run.
func New(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("prof: Config.Dir is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 60 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 10 * time.Second
	}
	if cfg.CPUDuration > cfg.Interval {
		cfg.CPUDuration = cfg.Interval
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 20
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.FilePrefix == "" {
		cfg.FilePrefix = "prof"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	return &Profiler{cfg: cfg}, nil
}

// Cycle runs one full capture cycle synchronously: a CPU capture of
// CPUDuration (cancellable via ctx), then heap, goroutine, mutex and
// block snapshots, artifact rotation, and attribution of the fresh CPU
// capture. Returns the first error; the cycle continues past individual
// capture failures so one broken profile kind doesn't starve the rest.
func (p *Profiler) Cycle(ctx context.Context) error {
	return p.CycleSignaled(ctx, nil)
}

// CycleSignaled is Cycle with a start signal: started (when non-nil) is
// closed as soon as the CPU capture is live — or immediately when it
// cannot start — so a one-shot caller can hold its workload until the
// capture covers it. On a single-CPU box the capture goroutine may
// otherwise not be scheduled until the workload is already done.
func (p *Profiler) CycleSignaled(ctx context.Context, started chan<- struct{}) error {
	if p == nil {
		if started != nil {
			close(started)
		}
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if started != nil {
			close(started)
		}
		return fmt.Errorf("prof: profiler closed")
	}
	seq := p.seq
	p.seq++
	p.mu.Unlock()

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	cpuPath, cpuData, err := p.captureCPU(ctx, seq, started)
	keep(err)
	keep(p.captureLookup("heap", seq))
	keep(p.captureLookup("goroutine", seq))
	// Mutex and block profiles are empty unless their runtime rates were
	// set (telemetry.SetProfileRates); capturing the empty profile is
	// still cheap and keeps the artifact set uniform.
	keep(p.captureLookup("mutex", seq))
	keep(p.captureLookup("block", seq))
	keep(p.rotate())

	var attr *Attribution
	if cpuData != nil {
		if prof, perr := Parse(cpuData); perr != nil {
			keep(perr)
		} else {
			top, total := prof.Top(p.cfg.TopN, prof.ValueIndex("cpu"))
			attr = &Attribution{
				CapturedAt:   p.cfg.Clock(),
				Path:         cpuPath,
				Samples:      len(prof.Samples),
				TotalNanos:   total,
				TopFunctions: top,
			}
		}
	}

	p.mu.Lock()
	p.cycles++
	p.lastErr = firstErr
	if cpuPath != "" {
		p.lastCPU = cpuPath
	}
	if attr != nil {
		p.attr = attr
	}
	p.mu.Unlock()
	return firstErr
}

// captureCPU runs one CPU profile of the configured duration, cut short
// if ctx is cancelled, and returns the artifact path and raw bytes.
// started (when non-nil) is closed once profiling is live or has failed
// to start.
func (p *Profiler) captureCPU(ctx context.Context, seq uint64, started chan<- struct{}) (string, []byte, error) {
	var buf bytes.Buffer
	err := pprof.StartCPUProfile(&buf)
	if started != nil {
		close(started)
	}
	if err != nil {
		// Another CPU profile is active (e.g. a /debug/pprof/profile
		// request); skip this cycle's CPU capture rather than fight it.
		return "", nil, fmt.Errorf("prof: cpu: %w", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(p.cfg.CPUDuration):
	}
	pprof.StopCPUProfile()
	path := p.artifactPath("cpu", seq)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", nil, fmt.Errorf("prof: cpu: %w", err)
	}
	p.mu.Lock()
	p.captures++
	p.mu.Unlock()
	return path, buf.Bytes(), nil
}

// captureLookup snapshots one named runtime profile. The heap profile is
// written as the allocation profile (WriteTo debug 0 emits both
// alloc_space and inuse_space columns) so consecutive captures can be
// diffed into delta-heap tables.
func (p *Profiler) captureLookup(kind string, seq uint64) error {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return fmt.Errorf("prof: unknown profile %q", kind)
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		return fmt.Errorf("prof: %s: %w", kind, err)
	}
	if err := os.WriteFile(p.artifactPath(kind, seq), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("prof: %s: %w", kind, err)
	}
	p.mu.Lock()
	p.captures++
	p.mu.Unlock()
	return nil
}

func (p *Profiler) artifactPath(kind string, seq uint64) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("%s-%s-%06d.pprof", p.cfg.FilePrefix, kind, seq))
}

// rotate deletes the oldest artifacts until retained bytes fit under
// MaxBytes. Artifact names embed a monotonic sequence number, so
// lexicographic order is age order — no mtime trust needed.
func (p *Profiler) rotate() error {
	ents, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return fmt.Errorf("prof: rotate: %w", err)
	}
	type art struct {
		name string
		size int64
	}
	var arts []art
	var total int64
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), p.cfg.FilePrefix+"-") || !strings.HasSuffix(e.Name(), ".pprof") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		arts = append(arts, art{e.Name(), info.Size()})
		total += info.Size()
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].name < arts[j].name })
	for _, a := range arts {
		if total <= p.cfg.MaxBytes {
			break
		}
		if err := os.Remove(filepath.Join(p.cfg.Dir, a.name)); err == nil {
			total -= a.size
		}
	}
	p.mu.Lock()
	p.retainedBytes = total
	p.mu.Unlock()
	return nil
}

// Run captures one cycle immediately, then one per Interval until ctx is
// cancelled. A nil profiler returns immediately.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	_ = p.Cycle(ctx)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = p.Cycle(ctx)
		}
	}
}

// Close marks the profiler stopped; later Cycle calls fail. Idempotent.
func (p *Profiler) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// Attribution returns the decoded top-N table from the latest CPU
// capture, or nil before the first completed cycle (and on a nil
// profiler).
func (p *Profiler) Attribution() *Attribution {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attr
}

// Status reports the profiler's progress; a nil profiler reports
// Enabled: false.
func (p *Profiler) Status() Status {
	if p == nil {
		return Status{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Enabled:        true,
		Dir:            p.cfg.Dir,
		IntervalSec:    p.cfg.Interval.Seconds(),
		CPUDurationSec: p.cfg.CPUDuration.Seconds(),
		Cycles:         p.cycles,
		Captures:       p.captures,
		Bytes:          p.retainedBytes,
		LastCPUPath:    p.lastCPU,
	}
	if p.lastErr != nil {
		st.LastErr = p.lastErr.Error()
	}
	return st
}
