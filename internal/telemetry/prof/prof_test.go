package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// spin burns CPU in a named function so a short self-capture has a
// symbol to find.
//
//go:noinline
func spin(stop *atomic.Bool, sink *atomic.Uint64) {
	var x uint64 = 88172645463325252
	for !stop.Load() {
		for i := 0; i < 4096; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink.Add(x)
	}
}

// selfCapture records a real CPU profile of this process for dur while
// burning CPU, returning the raw pprof bytes.
func selfCapture(t *testing.T, dur time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	var stop atomic.Bool
	var sink atomic.Uint64
	done := make(chan struct{})
	go func() { spin(&stop, &sink); close(done) }()
	time.Sleep(dur)
	stop.Store(true)
	<-done
	pprof.StopCPUProfile()
	return buf.Bytes()
}

func TestParseSelfCPUCapture(t *testing.T) {
	data := selfCapture(t, 300*time.Millisecond)
	p, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	idx := p.ValueIndex("cpu")
	if idx < 0 {
		t.Fatalf("no cpu sample type in %+v", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Fatal("no samples in a 300ms busy capture")
	}
	top, total := p.Top(10, idx)
	if total <= 0 || len(top) == 0 {
		t.Fatalf("empty attribution: total=%d rows=%d", total, len(top))
	}
	var found bool
	for _, hf := range top {
		if strings.Contains(hf.Name, "spin") {
			found = true
			if hf.FlatShare <= 0 || hf.FlatShare > 1 {
				t.Errorf("spin FlatShare out of range: %v", hf.FlatShare)
			}
		}
	}
	if !found {
		names := make([]string, len(top))
		for i, hf := range top {
			names[i] = hf.Name
		}
		t.Fatalf("spin not in top-10: %v", names)
	}
	// Shares must sum to at most 1 (top-N truncation loses some).
	var sum float64
	for _, hf := range top {
		sum += hf.FlatShare
		if hf.Cum < hf.Flat {
			t.Errorf("%s: cum %d < flat %d", hf.Name, hf.Cum, hf.Flat)
		}
	}
	if sum > 1.0001 {
		t.Errorf("flat shares sum to %v > 1", sum)
	}
}

func TestParseAcceptsBareProto(t *testing.T) {
	data := selfCapture(t, 100*time.Millisecond)
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("capture not gzipped: %v", err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(zr); err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	p, err := Parse(raw.Bytes())
	if err != nil {
		t.Fatalf("Parse bare proto: %v", err)
	}
	if p.ValueIndex("cpu") < 0 {
		t.Fatal("bare proto lost sample types")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x07, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage accepted")
	}
	// Gzip magic with a broken stream.
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("broken gzip accepted")
	}
}

func TestParseHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse heap: %v", err)
	}
	if p.ValueIndex("alloc_space") < 0 {
		t.Fatalf("no alloc_space column in %+v", p.SampleTypes)
	}
	if m := p.FlatByFunction(p.ValueIndex("alloc_space")); len(m) == 0 {
		t.Error("heap profile attributed to zero functions")
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if err := p.Cycle(context.Background()); err != nil {
		t.Errorf("nil Cycle: %v", err)
	}
	p.Run(context.Background())
	if err := p.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if a := p.Attribution(); a != nil {
		t.Errorf("nil Attribution: %+v", a)
	}
	if st := p.Status(); st.Enabled {
		t.Error("nil Status reports Enabled")
	}
}

func TestProfilerCycleCapturesAndAttributes(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, CPUDuration: 250 * time.Millisecond, TopN: 15})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	var stop atomic.Bool
	var sink atomic.Uint64
	done := make(chan struct{})
	go func() { spin(&stop, &sink); close(done) }()
	err = p.Cycle(context.Background())
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}

	for _, kind := range []string{"cpu", "heap", "goroutine", "mutex", "block"} {
		path := filepath.Join(dir, "prof-"+kind+"-000000.pprof")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("missing %s artifact: %v", kind, err)
		}
	}
	attr := p.Attribution()
	if attr == nil {
		t.Fatal("no attribution after a cycle")
	}
	if len(attr.TopFunctions) == 0 || attr.TotalNanos <= 0 {
		t.Fatalf("empty attribution: %+v", attr)
	}
	st := p.Status()
	if !st.Enabled || st.Cycles != 1 || st.Captures != 5 {
		t.Errorf("status: %+v", st)
	}
	if st.LastCPUPath == "" || st.LastErr != "" {
		t.Errorf("status: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("retained bytes not tracked: %+v", st)
	}
}

func TestProfilerRotationCapsBytes(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, MaxBytes: 4096, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	// Plant oversized fake artifacts older than anything the profiler
	// will write (sequence numbers sort first).
	for i := 0; i < 4; i++ {
		name := filepath.Join(dir, "prof-cpu-00000"+string(rune('0'+i))+".pprof")
		if err := os.WriteFile(name, bytes.Repeat([]byte{0xaa}, 2048), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	p.seq = 10 // write new artifacts after the planted ones
	p.mu.Unlock()
	if err := p.Cycle(context.Background()); err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	// Rotation runs before attribution, so the cap may be exceeded only
	// by the final artifact batch of this cycle; the planted 8 KiB of
	// old fakes must be gone.
	for i := 0; i < 4; i++ {
		name := filepath.Join(dir, "prof-cpu-00000"+string(rune('0'+i))+".pprof")
		if _, err := os.Stat(name); err == nil {
			t.Errorf("old artifact %s survived rotation (dir total %d)", name, total)
		}
	}
}

func TestProfilerRunStopsOnCancel(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Interval: time.Hour, CPUDuration: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	// Run takes its first cycle immediately; give it time to finish,
	// then cancel and require prompt exit.
	deadline := time.After(10 * time.Second)
	for p.Status().Cycles == 0 {
		select {
		case <-deadline:
			t.Fatal("first cycle never completed")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestCycleAfterCloseFails(t *testing.T) {
	p, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Cycle(context.Background()); err == nil {
		t.Error("Cycle after Close succeeded")
	}
}

func TestTopHandlesMissingValueIndex(t *testing.T) {
	p := &Profile{}
	if top, total := p.Top(5, -1); top != nil || total != 0 {
		t.Errorf("Top(-1) = %v, %d", top, total)
	}
}
