// pprofparse.go is a minimal, dependency-free decoder for the pprof
// profile.proto wire format — just enough of it to turn the CPU and heap
// captures this process writes about itself back into symbol tables. The
// full pprof toolchain lives outside the repo (github.com/google/pprof);
// the continuous profiler cannot depend on it, and does not need to: a
// top-N hot-function attribution needs only the string table, the
// sample→location→function graph and the sample values.
//
// The subset decoded here:
//
//	Profile:  sample_type(1), sample(2), location(4), function(5),
//	          string_table(6), time_nanos(9), duration_nanos(10), period(12)
//	Sample:   location_id(1, packed or repeated), value(2, packed or repeated)
//	Location: id(1), line(4)
//	Line:     function_id(1)
//	Function: id(1), name(2)
//
// Everything else (mappings, labels, comments) is skipped field-by-field,
// which is what protobuf is designed for. Both gzipped captures (as
// runtime/pprof writes them) and bare proto bytes are accepted.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// maxProfileBytes caps the decompressed profile size; a continuous
// profiler decoding its own periodic captures should never see more than
// a few megabytes, and the cap keeps a corrupt gzip stream from
// ballooning memory.
const maxProfileBytes = 256 << 20

// ValueType names one sample value dimension, e.g. {"cpu", "nanoseconds"}
// or {"alloc_space", "bytes"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: location IDs leaf-first, one value per
// declared sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Profile is a decoded pprof capture, resolved to the subset the
// attributor consumes.
type Profile struct {
	// SampleTypes declares the meaning of each Sample.Values column.
	SampleTypes []ValueType
	// Samples are the raw stack samples.
	Samples []Sample
	// TimeNanos and DurationNanos are the capture's start and length.
	TimeNanos     int64
	DurationNanos int64
	// Period is the sampling period in period-type units (CPU: ns between
	// samples).
	Period int64

	// locFuncs maps a location ID to its function names, innermost
	// (deepest inline) first.
	locFuncs map[uint64][]string
}

// FuncsAt returns the function names at a location, innermost first, or
// nil for an unknown location ID.
func (p *Profile) FuncsAt(loc uint64) []string { return p.locFuncs[loc] }

// ValueIndex returns the index of the sample-type column with the given
// type name, or -1.
func (p *Profile) ValueIndex(name string) int {
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i
		}
	}
	return -1
}

// protobuf wire types.
const (
	wireVarint = 0
	wireI64    = 1
	wireLen    = 2
	wireI32    = 5
)

// varint decodes one base-128 varint, returning the value and the number
// of bytes consumed (0 on malformed input).
func varint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// scanFields walks one protobuf message, calling fn per field with the
// decoded varint/fixed value (wire types 0/1/5) or the sub-message bytes
// (wire type 2).
func scanFields(data []byte, fn func(field, wire int, v uint64, sub []byte) error) error {
	for len(data) > 0 {
		tag, n := varint(data)
		if n == 0 {
			return fmt.Errorf("prof: malformed tag varint")
		}
		data = data[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case wireVarint:
			v, n := varint(data)
			if n == 0 {
				return fmt.Errorf("prof: malformed varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wireI64:
			if len(data) < 8 {
				return fmt.Errorf("prof: truncated i64 in field %d", field)
			}
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(data[i]) << (8 * i)
			}
			data = data[8:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wireLen:
			l, n := varint(data)
			if n == 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("prof: truncated length-delimited field %d", field)
			}
			sub := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(field, wire, 0, sub); err != nil {
				return err
			}
		case wireI32:
			if len(data) < 4 {
				return fmt.Errorf("prof: truncated i32 in field %d", field)
			}
			var v uint64
			for i := 0; i < 4; i++ {
				v |= uint64(data[i]) << (8 * i)
			}
			data = data[4:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		default:
			return fmt.Errorf("prof: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// appendPacked appends the varints of one repeated-integer field: packed
// (one length-delimited blob) when sub is non-nil, a single element
// otherwise. Both encodings are legal for the same field and Go's pprof
// writer has used both across versions.
func appendPacked(dst []uint64, wire int, v uint64, sub []byte) ([]uint64, error) {
	if wire != wireLen {
		return append(dst, v), nil
	}
	for len(sub) > 0 {
		e, n := varint(sub)
		if n == 0 {
			return nil, fmt.Errorf("prof: malformed packed varint")
		}
		dst = append(dst, e)
		sub = sub[n:]
	}
	return dst, nil
}

// Parse decodes a pprof capture (gzipped, as runtime/pprof writes, or
// bare proto bytes) into a resolved Profile.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxProfileBytes))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data = raw
	}

	var (
		strings    []string
		typeIdx    [][2]uint64 // string-table indices of (type, unit)
		funcName   = map[uint64]uint64{}
		locLineFns = map[uint64][]uint64{}
		p          = &Profile{locFuncs: map[uint64][]string{}}
	)
	err := scanFields(data, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var ti [2]uint64
			if err := scanFields(sub, func(f, w int, v uint64, _ []byte) error {
				if f == 1 {
					ti[0] = v
				} else if f == 2 {
					ti[1] = v
				}
				return nil
			}); err != nil {
				return err
			}
			typeIdx = append(typeIdx, ti)
		case 2: // sample
			var s Sample
			if err := scanFields(sub, func(f, w int, v uint64, sb []byte) error {
				var err error
				switch f {
				case 1:
					s.LocationIDs, err = appendPacked(s.LocationIDs, w, v, sb)
				case 2:
					var vals []uint64
					if vals, err = appendPacked(nil, w, v, sb); err == nil {
						for _, u := range vals {
							s.Values = append(s.Values, int64(u))
						}
					}
				}
				return err
			}); err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			var id uint64
			var fns []uint64
			if err := scanFields(sub, func(f, w int, v uint64, sb []byte) error {
				switch f {
				case 1:
					id = v
				case 4: // line
					return scanFields(sb, func(lf, lw int, lv uint64, _ []byte) error {
						if lf == 1 {
							fns = append(fns, lv)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			locLineFns[id] = fns
		case 5: // function
			var id, name uint64
			if err := scanFields(sub, func(f, w int, v uint64, _ []byte) error {
				if f == 1 {
					id = v
				} else if f == 2 {
					name = v
				}
				return nil
			}); err != nil {
				return err
			}
			funcName[id] = name
		case 6: // string_table
			strings = append(strings, string(sub))
		case 9:
			p.TimeNanos = int64(v)
		case 10:
			p.DurationNanos = int64(v)
		case 12:
			p.Period = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i uint64) string {
		if i < uint64(len(strings)) {
			return strings[i]
		}
		return ""
	}
	for _, ti := range typeIdx {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(ti[0]), Unit: str(ti[1])})
	}
	for id, fns := range locLineFns {
		names := make([]string, 0, len(fns))
		for _, fid := range fns {
			if ni, ok := funcName[fid]; ok {
				if name := str(ni); name != "" {
					names = append(names, name)
				}
			}
		}
		p.locFuncs[id] = names
	}
	return p, nil
}

// ParseReader is Parse over a stream.
func ParseReader(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxProfileBytes))
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// HotFunc is one row of an attribution table: a function with its flat
// (self) and cumulative (anywhere on stack) weight in the profile's
// sample-value units, plus the flat share of the profile total.
type HotFunc struct {
	Name      string  `json:"name"`
	Flat      int64   `json:"flat"`
	FlatShare float64 `json:"flatShare"`
	Cum       int64   `json:"cum"`
}

// Top aggregates the profile into a top-n hot-function table over the
// given sample-value column: flat weight goes to each sample's leaf
// function (innermost frame of the first location), cumulative weight to
// every distinct function on the stack. Rows sort by flat descending,
// ties by name. total is the column sum over all samples.
func (p *Profile) Top(n, valueIdx int) (top []HotFunc, total int64) {
	if valueIdx < 0 || n <= 0 {
		return nil, 0
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	var seen map[string]bool
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) {
			continue
		}
		v := s.Values[valueIdx]
		if v == 0 {
			continue
		}
		total += v
		leaf := "unknown"
		if len(s.LocationIDs) > 0 {
			if fns := p.locFuncs[s.LocationIDs[0]]; len(fns) > 0 {
				leaf = fns[0]
			}
		}
		flat[leaf] += v
		if seen == nil {
			seen = make(map[string]bool, 16)
		} else {
			clear(seen)
		}
		for _, loc := range s.LocationIDs {
			for _, fn := range p.locFuncs[loc] {
				if !seen[fn] {
					seen[fn] = true
					cum[fn] += v
				}
			}
		}
	}
	if total == 0 {
		return nil, 0
	}
	top = make([]HotFunc, 0, len(flat))
	for name, f := range flat {
		top = append(top, HotFunc{Name: name, Flat: f, Cum: cum[name]})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Flat != top[j].Flat {
			return top[i].Flat > top[j].Flat
		}
		return top[i].Name < top[j].Name
	})
	if len(top) > n {
		top = top[:n]
	}
	for i := range top {
		top[i].FlatShare = float64(top[i].Flat) / float64(total)
	}
	return top, total
}

// FlatByFunction aggregates one value column by leaf function over the
// whole profile — the building block for delta tables (heap allocation
// between two cycles is the difference of two of these).
func (p *Profile) FlatByFunction(valueIdx int) map[string]int64 {
	if valueIdx < 0 {
		return nil
	}
	out := map[string]int64{}
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) {
			continue
		}
		v := s.Values[valueIdx]
		if v == 0 {
			continue
		}
		leaf := "unknown"
		if len(s.LocationIDs) > 0 {
			if fns := p.locFuncs[s.LocationIDs[0]]; len(fns) > 0 {
				leaf = fns[0]
			}
		}
		out[leaf] += v
	}
	return out
}
