package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []Config{
		{Sample: -0.1},
		{Sample: 1.5},
		{Buffer: -1},
		{Devices: -1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v): want error", bad)
		}
	}
	tr, err := New(Config{})
	if err != nil {
		t.Fatalf("New(zero config): %v", err)
	}
	st := tr.Stats()
	if st.SampleEvery != 1 || st.Buffer != 256 {
		t.Errorf("defaults = every %d buffer %d, want 1 and 256", st.SampleEvery, st.Buffer)
	}
}

func TestSampleEveryResolution(t *testing.T) {
	for _, tc := range []struct {
		sample float64
		want   int
	}{
		{0, 1}, {1, 1}, {0.5, 2}, {0.25, 4}, {0.1, 10}, {0.001, 1000},
	} {
		tr, err := New(Config{Sample: tc.sample})
		if err != nil {
			t.Fatalf("Sample=%v: %v", tc.sample, err)
		}
		if got := tr.SampleEvery(); got != tc.want {
			t.Errorf("Sample=%v resolved to every %d, want %d", tc.sample, got, tc.want)
		}
	}
}

func TestSamplingStride(t *testing.T) {
	tr, _ := New(Config{Sample: 0.25})
	sampled := 0
	for i := 0; i < 100; i++ {
		if x := tr.Start(KindFix, "d"); x != nil {
			sampled++
			x.Finish(nil)
		}
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
	if st := tr.Stats(); st.Finished != 25 {
		t.Errorf("Finished = %d, want 25", st.Finished)
	}
}

func TestRingOrderAndOverwrite(t *testing.T) {
	tr, _ := New(Config{Buffer: 4})
	for i := 0; i < 6; i++ {
		x := tr.Start(KindFix, fmt.Sprintf("dev-%d", i))
		x.Finish(nil)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) returned %d records, want ring capacity 4", len(recent))
	}
	// Newest first: devices 5, 4, 3, 2 survive; 0 and 1 were overwritten.
	for i, want := range []string{"dev-5", "dev-4", "dev-3", "dev-2"} {
		if recent[i].Device != want {
			t.Errorf("Recent[%d].Device = %s, want %s", i, recent[i].Device, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Device != "dev-5" {
		t.Errorf("Recent(2) = %d records starting %s, want 2 starting dev-5", len(got), got[0].Device)
	}
	st := tr.Stats()
	if st.Finished != 6 || st.Buffered != 4 {
		t.Errorf("Stats = %+v, want Finished 6 Buffered 4", st)
	}
}

func TestExplainIndex(t *testing.T) {
	tr, _ := New(Config{})
	if _, ok := tr.Explain("aa"); ok {
		t.Fatal("Explain on empty tracer reported a record")
	}
	x := tr.Start(KindFix, "aa")
	x.Finish(&Provenance{Algorithm: "m-loc", K: 3})
	x = tr.Start(KindFix, "aa")
	x.Finish(&Provenance{Algorithm: "m-loc", K: 5})
	p, ok := tr.Explain("aa")
	if !ok {
		t.Fatal("Explain missed a finished provenance")
	}
	if p.K != 5 {
		t.Errorf("Explain K = %d, want the latest record's 5", p.K)
	}
	if p.Device != "aa" || p.TraceID == "" {
		t.Errorf("Finish did not stamp device/trace ID: %+v", p)
	}
}

func TestExplainIndexEviction(t *testing.T) {
	tr, _ := New(Config{Devices: 3})
	for i := 0; i < 3; i++ {
		x := tr.Start(KindFix, fmt.Sprintf("dev-%d", i))
		x.Finish(&Provenance{})
	}
	// A fourth distinct device trips the wholesale clear.
	x := tr.Start(KindFix, "dev-3")
	x.Finish(&Provenance{})
	if st := tr.Stats(); st.Devices != 1 {
		t.Errorf("after eviction index holds %d devices, want 1", st.Devices)
	}
	if _, ok := tr.Explain("dev-3"); !ok {
		t.Error("the record that triggered eviction was lost")
	}
	// Re-recording a known device at the cap must not clear.
	tr2, _ := New(Config{Devices: 1})
	x = tr2.Start(KindFix, "same")
	x.Finish(&Provenance{K: 1})
	x = tr2.Start(KindFix, "same")
	x.Finish(&Provenance{K: 2})
	if p, ok := tr2.Explain("same"); !ok || p.K != 2 {
		t.Errorf("known-device update at cap: got %+v ok=%v, want K=2", p, ok)
	}
}

func TestSpansAndStageDurations(t *testing.T) {
	tr, _ := New(Config{})
	x := tr.Start(KindFix, "d")
	x.StartSpan("window-query").Attr("records", 7).End()
	x.StartSpan("localize").Attr("cache_hit", true).End()
	x.StartSpan("localize").End() // same name accumulates
	x.Finish(&Provenance{})
	rec := tr.Recent(1)[0]
	if len(rec.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(rec.Spans))
	}
	if rec.Spans[0].Name != "window-query" || rec.Spans[0].Attrs["records"] != 7 {
		t.Errorf("span 0 = %+v, want window-query with records=7", rec.Spans[0])
	}
	stages := rec.Provenance.StagesMs
	if len(stages) != 2 {
		t.Errorf("StagesMs has %d stages, want 2 (same-name spans merged): %v", len(stages), stages)
	}
	if _, ok := stages["localize"]; !ok {
		t.Errorf("StagesMs missing localize: %v", stages)
	}
	if StageDurations(nil) != nil {
		t.Error("StageDurations(nil) should be nil")
	}
}

func TestDoubleFinishAndLateSpan(t *testing.T) {
	tr, _ := New(Config{})
	x := tr.Start(KindFix, "d")
	sp := x.StartSpan("early")
	sp.End()
	x.Finish(nil)
	x.Finish(nil) // second finish is a no-op
	x.StartSpan("late").End()
	if st := tr.Stats(); st.Finished != 1 {
		t.Errorf("double Finish recorded %d traces, want 1", st.Finished)
	}
	if rec := tr.Recent(1)[0]; len(rec.Spans) != 1 || rec.Spans[0].Name != "early" {
		t.Errorf("spans after double finish = %+v, want only early", rec.Spans)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tr.SampleEvery() != 0 {
		t.Error("nil tracer SampleEvery != 0")
	}
	if tr.Start(KindFix, "d") != nil {
		t.Fatal("nil tracer Start returned a trace")
	}
	if tr.Recent(5) != nil {
		t.Error("nil tracer Recent != nil")
	}
	if _, ok := tr.Explain("d"); ok {
		t.Error("nil tracer Explain reported a record")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("nil tracer Stats not zero")
	}
	var x *Trace
	if x.ID() != "" {
		t.Error("nil trace ID not empty")
	}
	sp := x.StartSpan("s") // nil handle
	sp.Attr("k", 1).End()  // absorbs everything
	x.Finish(&Provenance{})
}

func TestTraceIDsDistinct(t *testing.T) {
	tr, _ := New(Config{Buffer: 64})
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		x := tr.Start(KindFix, "d")
		id := x.ID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
		x.Finish(nil)
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr, _ := New(Config{Sample: 0.5, Buffer: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := tr.Start(KindFix, fmt.Sprintf("dev-%d", g))
				x.StartSpan("localize").Attr("i", i).End()
				x.Finish(&Provenance{K: i})
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Finished != 800 {
		t.Errorf("Finished = %d, want 800 (half of 1600 at 1-in-2)", st.Finished)
	}
	if st.Buffered != 32 {
		t.Errorf("Buffered = %d, want full ring of 32", st.Buffered)
	}
}

func TestRecordJSONShape(t *testing.T) {
	tr, _ := New(Config{})
	x := tr.Start(KindFix, "02:aa:00:00:00:01")
	x.StartSpan("localize").End()
	x.Finish(&Provenance{
		Algorithm: "m-loc", Gamma: []string{"02:bb:00:00:00:01"}, K: 1,
		Located: true, IntersectedAreaM2: 12.5, Theorem2AreaM2: 14.1, CacheHit: true,
	})
	b, err := json.Marshal(tr.Recent(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	prov, ok := m["provenance"].(map[string]any)
	if !ok {
		t.Fatalf("no provenance object in %s", b)
	}
	for _, key := range []string{
		"traceId", "device", "algorithm", "gamma", "k",
		"intersectedAreaM2", "theorem2AreaM2", "cacheHit", "stagesMs", "totalMs",
	} {
		if _, ok := prov[key]; !ok {
			t.Errorf("provenance JSON missing %q: %s", key, b)
		}
	}
}
