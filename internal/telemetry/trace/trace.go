// Package trace is the reproduction's per-estimate explainability layer: a
// stdlib-only, sampled, ring-buffered span tracer plus the provenance
// record that makes a single localization auditable after the fact.
//
// Metrics (package telemetry) say how fast the pipeline runs; this package
// records *why* one device landed where it did — which communicable AP set
// Γ was observed, how many discs intersected, whether the Γ cache or a
// fresh algorithm run produced the estimate, and where the wall time went
// across ingest → window-query → knowledge → localize → publish.
//
// The tracer is built for an always-on tracking pipeline serving millions
// of estimates: tracing is off unless a *Tracer is installed, sampling is
// deterministic (every Nth localization), and a disabled or unsampled path
// costs one nil check / one atomic add. Every exported method is safe on a
// nil *Tracer, nil *Trace and nil *SpanHandle, so instrumented code never
// branches on "is tracing on" — it just calls through.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// LogKey is the shared slog attribute key under which every component logs
// trace identifiers, so log lines, metrics and trace dumps correlate on
// one field.
const LogKey = "trace_id"

// Trace kinds: what pipeline activity a trace covers.
const (
	// KindFix is one localization request (Fix/FixRange/Track step or one
	// device of a map-frame snapshot). Fix traces carry a Provenance.
	KindFix = "fix"
	// KindIngest is one batched capture ingest.
	KindIngest = "ingest"
	// KindRefresh is one knowledge re-training run.
	KindRefresh = "refresh"
	// KindPublish is one map-frame publication to the display.
	KindPublish = "publish"
)

// Process-wide tracer metrics, shared by all tracers in the process.
var (
	mSampled = telemetry.Default().Counter(
		"marauder_trace_sampled_total",
		"Pipeline operations that were selected for tracing.", nil)
	mSkipped = telemetry.Default().Counter(
		"marauder_trace_skipped_total",
		"Pipeline operations that the sampler passed over.", nil)
	mOverwritten = telemetry.Default().Counter(
		"marauder_trace_ring_overwritten_total",
		"Finished traces dropped by the ring buffer to admit newer ones.", nil)
)

// Config assembles a Tracer.
type Config struct {
	// Sample is the fraction of operations traced, in (0, 1]. It resolves
	// to deterministic every-Nth sampling with N = round(1/Sample), so a
	// given rate yields a predictable trace stream. 0 means trace all.
	Sample float64
	// Buffer is the finished-trace ring capacity (default 256).
	Buffer int
	// Devices caps the per-device latest-provenance index (default 4096).
	// At the cap the index is wholesale-cleared and refilled, mirroring
	// the engine's Γ-cache eviction policy.
	Devices int
}

// Tracer samples pipeline operations and retains the most recent finished
// traces in a ring buffer, plus the latest provenance per device. Safe for
// concurrent use; a nil *Tracer is a valid, disabled tracer.
type Tracer struct {
	every   uint64 // sample every Nth start
	cap     int
	devCap  int
	seq     atomic.Uint64 // sampling counter
	idSeq   atomic.Uint64 // trace-ID counter
	idSeed  uint64
	mu      sync.Mutex
	ring    []*Record // fixed-capacity ring of finished traces
	next    int       // ring write index
	total   uint64    // finished traces ever recorded
	explain map[string]*Provenance
}

// New builds a Tracer from the configuration.
func New(cfg Config) (*Tracer, error) {
	if cfg.Sample < 0 || cfg.Sample > 1 {
		return nil, fmt.Errorf("trace: Sample must be in (0, 1], got %v", cfg.Sample)
	}
	every := uint64(1)
	if cfg.Sample > 0 {
		every = uint64(1/cfg.Sample + 0.5)
		if every < 1 {
			every = 1
		}
	}
	buf := cfg.Buffer
	if buf == 0 {
		buf = 256
	}
	if buf < 0 {
		return nil, fmt.Errorf("trace: Buffer must be > 0, got %d", cfg.Buffer)
	}
	devCap := cfg.Devices
	if devCap == 0 {
		devCap = 4096
	}
	if devCap < 0 {
		return nil, fmt.Errorf("trace: Devices must be > 0, got %d", cfg.Devices)
	}
	return &Tracer{
		every:   every,
		cap:     buf,
		devCap:  devCap,
		idSeed:  uint64(time.Now().UnixNano()),
		ring:    make([]*Record, buf),
		explain: make(map[string]*Provenance),
	}, nil
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// SampleEvery returns the resolved sampling stride N (trace every Nth
// operation); 0 when disabled.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Start begins a trace of the given kind when the sampler selects this
// operation, and returns nil otherwise (including on a nil tracer). device
// is the subject device MAC for fix traces, "" for pipeline-level kinds.
func (t *Tracer) Start(kind, device string) *Trace {
	if t == nil {
		return nil
	}
	if n := t.seq.Add(1); t.every > 1 && n%t.every != 0 {
		mSkipped.Inc()
		return nil
	}
	mSampled.Inc()
	return &Trace{
		tracer: t,
		id:     t.newID(),
		kind:   kind,
		device: device,
		start:  time.Now(),
	}
}

// newID derives a 16-hex-digit trace ID from the process seed and an
// atomic counter, mixed with a splitmix64 finalizer so consecutive IDs
// don't share prefixes.
func (t *Tracer) newID() string {
	z := t.idSeed + t.idSeq.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return fmt.Sprintf("%016x", z)
}

// record files a finished trace into the ring and, when it carries
// provenance, into the per-device explain index.
func (t *Tracer) record(rec *Record) {
	t.mu.Lock()
	if t.ring[t.next] != nil {
		mOverwritten.Inc()
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % t.cap
	t.total++
	if p := rec.Provenance; p != nil && p.Device != "" {
		if len(t.explain) >= t.devCap {
			if _, known := t.explain[p.Device]; !known {
				t.explain = make(map[string]*Provenance)
			}
		}
		t.explain[p.Device] = p
	}
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first. n ≤ 0 means the
// whole ring.
func (t *Tracer) Recent(n int) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.cap {
		n = t.cap
	}
	out := make([]Record, 0, n)
	for i := 0; i < t.cap && len(out) < n; i++ {
		rec := t.ring[(t.next-1-i+2*t.cap)%t.cap]
		if rec == nil {
			break
		}
		out = append(out, *rec)
	}
	return out
}

// Explain returns the latest recorded provenance for the device (by MAC
// string), if any trace of it survived sampling and the index cap.
func (t *Tracer) Explain(device string) (*Provenance, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.explain[device]
	return p, ok
}

// Stats summarizes the tracer's activity.
type Stats struct {
	// SampleEvery is the resolved sampling stride N.
	SampleEvery int `json:"sampleEvery"`
	// Buffer is the ring capacity.
	Buffer int `json:"buffer"`
	// Finished is how many traces were recorded since construction.
	Finished uint64 `json:"finished"`
	// Buffered is how many finished traces the ring currently holds.
	Buffered int `json:"buffered"`
	// Devices is the size of the per-device explain index.
	Devices int `json:"devices"`
}

// Stats reports the tracer's counters; the zero Stats on a nil tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buffered := 0
	for _, r := range t.ring {
		if r != nil {
			buffered++
		}
	}
	return Stats{
		SampleEvery: int(t.every),
		Buffer:      t.cap,
		Finished:    t.total,
		Buffered:    buffered,
		Devices:     len(t.explain),
	}
}

// Span is one timed stage inside a trace.
type Span struct {
	// Name is the stage ("window-query", "localize", ...).
	Name string `json:"name"`
	// StartUS is the offset from the trace start, in microseconds.
	StartUS int64 `json:"startUs"`
	// DurUS is the stage duration in microseconds.
	DurUS int64 `json:"durUs"`
	// Attrs are optional stage annotations (counts, flags).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Record is a finished trace as served by /api/trace.
type Record struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Device string `json:"device,omitempty"`
	// Start is the trace start in Unix microseconds.
	Start int64 `json:"startUnixUs"`
	// DurUS is the whole trace duration in microseconds.
	DurUS int64  `json:"durUs"`
	Spans []Span `json:"spans,omitempty"`
	// Provenance explains the estimate (fix traces only).
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Trace is one in-flight traced operation. Create with Tracer.Start; a nil
// *Trace (unsampled) absorbs every call.
type Trace struct {
	tracer *Tracer
	id     string
	kind   string
	device string
	start  time.Time
	mu     sync.Mutex
	spans  []Span
	done   bool
}

// ID returns the trace identifier ("" on a nil trace) — the value logged
// under LogKey.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// StartSpan opens a named stage. End the returned handle to record it.
func (tr *Trace) StartSpan(name string) *SpanHandle {
	if tr == nil {
		return nil
	}
	return &SpanHandle{tr: tr, name: name, start: time.Now()}
}

// Finish closes the trace and files it with the tracer; prov (optional)
// attaches the estimate's provenance record and indexes it by device.
// Finishing twice or finishing a nil trace is a no-op.
func (tr *Trace) Finish(prov *Provenance) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	spans := tr.spans
	tr.mu.Unlock()
	dur := time.Since(tr.start)
	if prov != nil {
		prov.TraceID = tr.id
		if prov.Device == "" {
			prov.Device = tr.device
		}
		if prov.StagesMs == nil {
			prov.StagesMs = StageDurations(spans)
		}
		prov.TotalMs = float64(dur.Microseconds()) / 1e3
	}
	tr.tracer.record(&Record{
		ID:         tr.id,
		Kind:       tr.kind,
		Device:     tr.device,
		Start:      tr.start.UnixMicro(),
		DurUS:      dur.Microseconds(),
		Spans:      spans,
		Provenance: prov,
	})
}

// SpanHandle is an open stage of a trace. All methods are nil-safe.
type SpanHandle struct {
	tr    *Trace
	name  string
	start time.Time
	attrs map[string]any
}

// Attr annotates the stage; returns the handle for chaining.
func (sp *SpanHandle) Attr(key string, v any) *SpanHandle {
	if sp == nil {
		return nil
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, 4)
	}
	sp.attrs[key] = v
	return sp
}

// End records the stage onto its trace.
func (sp *SpanHandle) End() {
	if sp == nil {
		return
	}
	end := time.Now()
	span := Span{
		Name:    sp.name,
		StartUS: sp.start.Sub(sp.tr.start).Microseconds(),
		DurUS:   end.Sub(sp.start).Microseconds(),
		Attrs:   sp.attrs,
	}
	sp.tr.mu.Lock()
	if !sp.tr.done {
		sp.tr.spans = append(sp.tr.spans, span)
	}
	sp.tr.mu.Unlock()
}

// StageDurations flattens a finished trace's spans into the per-stage
// millisecond map the Provenance carries. Later spans with the same name
// accumulate.
func StageDurations(spans []Span) map[string]float64 {
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]float64, len(spans))
	for _, s := range spans {
		out[s.Name] += float64(s.DurUS) / 1e3
	}
	return out
}
