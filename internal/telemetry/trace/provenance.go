package trace

// Provenance explains one localization estimate end to end: what was
// observed, what algorithm and knowledge produced the estimate, how the
// resulting intersection region compares against the paper's Theorem 2
// prediction, and where the wall time went. It is the payload behind the
// map server's /api/explain and rides on every sampled fix trace.
type Provenance struct {
	// TraceID ties the record to its trace (and to log lines via LogKey).
	TraceID string `json:"traceId"`
	// Device is the localized device MAC.
	Device string `json:"device"`
	// Algorithm is the Localizer that answered ("m-loc", "ap-rad", ...).
	Algorithm string `json:"algorithm"`
	// Gamma is the communicable AP set Γ observed in the window, in
	// canonical ascending-MAC order.
	Gamma []string `json:"gamma"`
	// K is |Γ| as used by the estimate — the k of Theorem 2.
	K int `json:"k"`
	// WindowStart / WindowEnd bound the observation window (seconds).
	WindowStart float64 `json:"windowStart"`
	// WindowEnd is the window's exclusive upper bound.
	WindowEnd float64 `json:"windowEnd"`
	// CacheHit reports whether the Γ cache answered (true) or the
	// algorithm ran fresh (false).
	CacheHit bool `json:"cacheHit"`
	// Located reports whether localization succeeded; Err holds the
	// failure otherwise.
	Located bool `json:"located"`
	// PosX / PosY are the estimate in the attack's local plane (metres).
	PosX float64 `json:"posX"`
	// PosY is the estimate's y coordinate.
	PosY float64 `json:"posY"`
	// VertexCount is |Δ|, the disc-intersection vertex count (M-Loc
	// family; 0 for the baselines).
	VertexCount int `json:"vertexCount"`
	// RegionPath reports how a tracked fix computed its intersection
	// region: "incremental" (the previous window's region diffed by the Γ
	// delta) or "full" (rebuilt from scratch or served by the plain
	// algorithm). Empty for untracked fixes and cache hits.
	RegionPath string `json:"regionPath,omitempty"`
	// RegionDiff is the Γ delta (adds plus removes) a tracked fix applied;
	// equals k on a full rebuild.
	RegionDiff int `json:"regionDiff,omitempty"`
	// IntersectedAreaM2 is the exact area of Γ's disc-intersection region
	// — the paper's CA metric for this very estimate.
	IntersectedAreaM2 float64 `json:"intersectedAreaM2"`
	// Theorem2AreaM2 is Theorem 2's predicted E[CA] for this k at
	// MeanRadiusM — the analytical yardstick the measured area reads
	// against.
	Theorem2AreaM2 float64 `json:"theorem2AreaM2"`
	// MeanRadiusM is the mean maximum transmission distance of Γ's known
	// APs, the r plugged into Theorem 2.
	MeanRadiusM float64 `json:"meanRadiusM"`
	// KnowledgeGen counts knowledge-base swaps at estimate time, so an
	// estimate is attributable to the exact training run it used.
	KnowledgeGen uint64 `json:"knowledgeGen"`
	// Training describes the knowledge generation's training run (AP-Rad
	// / AP-Loc); nil for untrained algorithms.
	Training *TrainingInfo `json:"training,omitempty"`
	// StagesMs is wall time per pipeline stage, in milliseconds.
	StagesMs map[string]float64 `json:"stagesMs"`
	// TotalMs is the whole fix's wall time, in milliseconds.
	TotalMs float64 `json:"totalMs"`
	// Err is the localization failure, if any.
	Err string `json:"err,omitempty"`
}

// TrainingInfo is the provenance of one knowledge re-training run — the
// AP-Rad LP's shape and cost, recorded once per RefreshKnowledge and
// referenced by every estimate of that knowledge generation.
type TrainingInfo struct {
	// Algorithm is the trainer ("ap-rad", "ap-loc").
	Algorithm string `json:"algorithm"`
	// Gen is the knowledge generation the run produced.
	Gen uint64 `json:"gen"`
	// Constraints is the LP's pairwise-constraint count.
	Constraints int `json:"constraints"`
	// LPIterations is the simplex pivot count the solve took.
	LPIterations int `json:"lpIterations"`
	// LowerBoundViolations counts co-observed pairs whose evidence the
	// optimum violated (repaired upward per Theorem 3).
	LowerBoundViolations int `json:"lowerBoundViolations"`
	// Objective is Σ rᵢ at the LP optimum.
	Objective float64 `json:"objective"`
	// DurationMs is the training run's wall time in milliseconds.
	DurationMs float64 `json:"durationMs"`
}
