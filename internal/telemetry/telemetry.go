// Package telemetry is the reproduction's observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms) with Prometheus text-format and expvar-style
// JSON exposition, plus slog setup shared by the commands.
//
// The paper's Marauder's map is an always-on tracking pipeline
// (capture → observe → localize → display); this package is how a running
// deployment answers "what is the pipeline doing right now" — ingest
// rates, snapshot latencies, Γ-cache effectiveness, per-algorithm
// localization error — without stopping it for a benchmark.
//
// Metrics register on a process-wide default registry at package init of
// the instrumented packages, so an exposition endpoint always serves the
// full series set (zero-valued until the first event). Everything is
// stdlib-only and safe for concurrent use; the hot-path cost of an update
// is one atomic add.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to a metric instance (e.g. route, algo).
// A nil map means an unlabeled instance.
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, Prometheus-style) and tracks their sum and count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the one-liner for
// latency instrumentation: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative per-bucket counts aligned with
// Bounds() plus a final +Inf entry equal to Count(). The snapshot is not
// atomic across buckets; under concurrent observation it is approximate
// the way any scrape of a live histogram is.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// LatencyBuckets spans 10 µs … 10 s in roughly 1-2.5-5 steps — wide enough
// for a cached Γ lookup and a full AP-Rad linear program alike.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// DistanceBuckets spans 1 m … 500 m — the paper's localization-error
// range (its campus is ~700 m across; M-Loc lands around 30-60 m).
func DistanceBuckets() []float64 {
	return []float64{1, 2, 5, 10, 15, 25, 40, 60, 90, 130, 180, 250, 350, 500}
}

// metricKind discriminates a family's instances.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family groups every labeled instance of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only

	instances map[string]any // canonical label string -> *Counter/*Gauge/*Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry, or use Default for the process-wide registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var std = NewRegistry()

// Default returns the process-wide registry that the pipeline packages
// (engine, obs, mapserver, sniffer) register on at init.
func Default() *Registry { return std }

// labelKey canonicalizes labels into a deterministic map key / exposition
// string: sorted `k="v"` pairs, values escaped.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes per the Prometheus text format: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(v)
}

// getOrCreate returns the instance for (name, labels), creating family
// and instance as needed. It panics when the same name is re-registered
// as a different kind — that is a programming error, and silently
// returning a fresh metric would split the series.
func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []float64, labels Labels) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:      name,
			help:      help,
			kind:      kind,
			bounds:    append([]float64(nil), bounds...),
			instances: make(map[string]any),
		}
		sort.Float64s(f.bounds)
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	if m, ok := f.instances[key]; ok {
		return m
	}
	var m any
	switch kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.bounds)
	}
	f.instances[key] = m
	return m
}

// Counter returns the counter for (name, labels), registering it on first
// use. help is retained from the first registration of the name.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.getOrCreate(name, help, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.getOrCreate(name, help, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram for (name, labels), registering it on
// first use. bounds are the bucket upper bounds and are fixed by the first
// registration of the name; later calls reuse the family's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	return r.getOrCreate(name, help, kindHistogram, bounds, labels).(*Histogram)
}

// Cardinalities reports the label-set instance count per metric family —
// the input for cardinality guard tests: a family whose instance count
// grows with user data (MACs, device IDs) instead of a fixed label
// vocabulary will eventually OOM the registry and every scraper of it.
func (r *Registry) Cardinalities() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.families))
	for name, f := range r.families {
		out[name] = len(f.instances)
	}
	return out
}

// familySnapshot is an exposition-time copy of one family: the metric
// pointers themselves stay live (their values are read atomically), only
// the registry's maps are copied out from under the lock.
type familySnapshot struct {
	name      string
	help      string
	kind      metricKind
	labelKeys []string // sorted canonical label strings
	instances map[string]any
}

// snapshotFamilies copies the family list in sorted-name order with
// sorted instance keys, for deterministic exposition that races with
// concurrent registration.
func (r *Registry) snapshotFamilies() []familySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := familySnapshot{
			name:      f.name,
			help:      f.help,
			kind:      f.kind,
			labelKeys: make([]string, 0, len(f.instances)),
			instances: make(map[string]any, len(f.instances)),
		}
		for k, m := range f.instances {
			fs.labelKeys = append(fs.labelKeys, k)
			fs.instances[k] = m
		}
		sort.Strings(fs.labelKeys)
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
