package telemetry

import (
	"io"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", nil)
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterGetOrCreateSharesInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "", Labels{"route": "/api"})
	b := r.Counter("shared_total", "", Labels{"route": "/api"})
	other := r.Counter("shared_total", "", Labels{"route": "/metrics"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if a == other {
		t.Fatal("different labels shared one counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("aliased counter = %d", b.Value())
	}
	if other.Value() != 0 {
		t.Fatalf("label-split counter = %d", other.Value())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_metric", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("conflict_metric", "", nil)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_workers", "", nil)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge after Add = %v", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 4002.5 {
		t.Fatalf("concurrent gauge = %v", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "", []float64{0.1, 1, 10}, nil)
	// A value exactly on a bound lands in that bound's bucket (le is ≤,
	// Prometheus semantics).
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 2, 100} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	// le=0.1: 0.05, 0.1 → 2; le=1: +0.5, 1.0 → 4; le=10: +2 → 5; +Inf: 6.
	want := []uint64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-103.65) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "", LatencyBuckets(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	cum := h.Cumulative()
	if got := cum[len(cum)-1]; got != 20000 {
		t.Fatalf("+Inf bucket = %d", got)
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_since_seconds", "", []float64{1000}, nil)
	h.ObserveSince(time.Now().Add(-time.Second))
	if h.Count() != 1 || h.Sum() < 0.9 || h.Sum() > 100 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramBoundsFixedByFirstRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("test_fixed_seconds", "", []float64{1, 2}, Labels{"algo": "m-loc"})
	b := r.Histogram("test_fixed_seconds", "", []float64{9, 99, 999}, Labels{"algo": "ap-rad"})
	if got := b.Bounds(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("second instance bounds = %v, want the family's [1 2]", got)
	}
	if a == b {
		t.Fatal("labels did not split instances")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := labelKey(Labels{"p": `a\b"c` + "\n"}); got != `p="a\\b\"c\n"` {
		t.Fatalf("labelKey = %s", got)
	}
}

func TestNewLoggerValidation(t *testing.T) {
	_, err := NewLogger(nil, "nope", "text")
	if err == nil {
		t.Fatal("want error for bad level")
	}
	for _, want := range LogLevels {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("bad-level error %q does not list accepted value %q", err, want)
		}
	}
	_, err = NewLogger(nil, "info", "yaml")
	if err == nil {
		t.Fatal("want error for bad format")
	}
	for _, want := range LogFormats {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("bad-format error %q does not list accepted value %q", err, want)
		}
	}
	for _, lv := range []string{"debug", "info", "warn", "error", ""} {
		for _, f := range []string{"text", "json", ""} {
			if _, err := NewLogger(nil, lv, f); err != nil {
				t.Errorf("level=%q format=%q: %v", lv, f, err)
			}
		}
	}
}

func TestSetupLoggingRejectsWithoutClobbering(t *testing.T) {
	before := slog.Default()
	if _, err := SetupLogging(io.Discard, "loud", "text"); err == nil {
		t.Fatal("want error for bad level")
	}
	if _, err := SetupLogging(io.Discard, "info", "xml"); err == nil {
		t.Fatal("want error for bad format")
	}
	if slog.Default() != before {
		t.Error("failed SetupLogging replaced the default logger")
	}
}
