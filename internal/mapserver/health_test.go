package mapserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func getHealth(t *testing.T, url string) (int, Health) {
	t.Helper()
	resp, err := http.Get(url + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

func TestAPIHealthDefaultsHealthy(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	code, h := getHealth(t, srv.URL)
	if code != http.StatusOK {
		t.Errorf("status = %d, want 200", code)
	}
	if h.Status != StatusHealthy || len(h.Reasons) != 0 {
		t.Errorf("health = %+v, want healthy with no reasons", h)
	}
}

func TestAPIHealthDegraded(t *testing.T) {
	state := NewState()
	cur := Health{Status: StatusDegraded, Reasons: []string{"knowledge refresh failing"},
		Detail: map[string]any{"consecutiveRefreshFailures": 3}}
	state.SetHealthSource(func() Health { return cur })
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()

	code, h := getHealth(t, srv.URL)
	if code != http.StatusServiceUnavailable {
		t.Errorf("degraded status = %d, want 503", code)
	}
	if h.Status != StatusDegraded || len(h.Reasons) != 1 || h.Reasons[0] != "knowledge refresh failing" {
		t.Errorf("health = %+v", h)
	}
	detail, ok := h.Detail.(map[string]any)
	if !ok || detail["consecutiveRefreshFailures"] != float64(3) {
		t.Errorf("detail = %#v", h.Detail)
	}

	// The source heals: the endpoint flips back to 200 without a restart.
	cur = Health{Status: StatusHealthy}
	code, h = getHealth(t, srv.URL)
	if code != http.StatusOK || h.Status != StatusHealthy {
		t.Errorf("after heal: status = %d, health = %+v", code, h)
	}
}

func TestAPIHealthMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/api/health", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}
