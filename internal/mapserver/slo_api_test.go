package mapserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
)

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func TestAPISLODisabledByDefault(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	var got map[string]any
	if code := getJSON(t, srv.URL+"/api/slo", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got["enabled"] != false {
		t.Errorf("/api/slo without a source: %v", got)
	}
	if code := getJSON(t, srv.URL+"/api/profile", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got["enabled"] != false {
		t.Errorf("/api/profile without a source: %v", got)
	}
}

func TestAPIProfileServesSource(t *testing.T) {
	state := NewState()
	state.SetProfileSource(func() any {
		return map[string]any{"enabled": true, "topFunctions": []string{"hot.func"}}
	})
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()
	var got map[string]any
	if code := getJSON(t, srv.URL+"/api/profile", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got["enabled"] != true {
		t.Errorf("/api/profile: %v", got)
	}
}

// TestAPISLOAndHealthTransitions drives a real slo.Tracker through
// met → burning → exhausted → recovered, asserting both the /api/slo
// payload and the SLO reasons folded into /api/health at every step —
// the HTTP-level sibling of the state-machine tests in internal/telemetry/slo.
func TestAPISLOAndHealthTransitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("t_requests_total", "", nil)
	bad := reg.Counter("t_errors_total", "", nil)
	now := time.Unix(1_700_000_000, 0)
	tracker, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name: "avail", Kind: slo.KindAvailability, Target: 0.9,
			TotalSeries: "t_requests_total", BadSeries: "t_errors_total",
		}},
		Windows:  []time.Duration{time.Minute, 4 * time.Minute},
		Registry: reg,
		Clock:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}

	state := NewState()
	state.SetSLOSource(func() any { return tracker.Report() })
	// The health source folds tracker reasons the way cmd/marauder does.
	state.SetHealthSource(func() Health {
		h := Health{Status: StatusHealthy}
		if rs := tracker.HealthReasons(); len(rs) > 0 {
			h.Status = StatusDegraded
			h.Reasons = rs
		}
		return h
	})
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()

	sloState := func() string {
		var got struct {
			Enabled bool       `json:"enabled"`
			SLO     slo.Report `json:"slo"`
		}
		if code := getJSON(t, srv.URL+"/api/slo", &got); code != http.StatusOK {
			t.Fatalf("/api/slo status %d", code)
		}
		if !got.Enabled || len(got.SLO.Objectives) != 1 {
			t.Fatalf("/api/slo payload: %+v", got)
		}
		return got.SLO.Objectives[0].State
	}
	health := func() (int, Health) {
		var h Health
		code := getJSON(t, srv.URL+"/api/health", &h)
		return code, h
	}

	// Met: two minutes of clean traffic.
	for i := 0; i < 12; i++ {
		now = now.Add(10 * time.Second)
		total.Add(100)
		tracker.Tick()
	}
	if got := sloState(); got != slo.StateMet {
		t.Fatalf("state = %q, want met", got)
	}
	if code, h := health(); code != http.StatusOK || !h.Healthy() {
		t.Fatalf("healthy phase: code %d, health %+v", code, h)
	}

	// Burning: one bad burst trips the short window.
	now = now.Add(10 * time.Second)
	total.Add(100)
	bad.Add(80)
	tracker.Tick()
	if got := sloState(); got != slo.StateBurning {
		t.Fatalf("state = %q, want burning", got)
	}
	code, h := health()
	if code != http.StatusServiceUnavailable || h.Healthy() || len(h.Reasons) != 1 {
		t.Fatalf("burning phase: code %d, health %+v", code, h)
	}

	// Exhausted: sustained errors blow the long window's budget.
	for i := 0; i < 6; i++ {
		now = now.Add(10 * time.Second)
		total.Add(100)
		bad.Add(50)
		tracker.Tick()
	}
	if got := sloState(); got != slo.StateExhausted {
		t.Fatalf("state = %q, want exhausted", got)
	}
	if code, h := health(); code != http.StatusServiceUnavailable || h.Healthy() {
		t.Fatalf("exhausted phase: code %d, health %+v", code, h)
	}

	// Recovered: clean traffic until the bad interval ages out of the 4m
	// window.
	for i := 0; i < 30; i++ {
		now = now.Add(10 * time.Second)
		total.Add(100)
		tracker.Tick()
	}
	if got := sloState(); got != slo.StateMet {
		t.Fatalf("state = %q, want met after recovery", got)
	}
	if code, h := health(); code != http.StatusOK || !h.Healthy() {
		t.Fatalf("recovered phase: code %d, health %+v", code, h)
	}
}
