// Package mapserver serves the digital Marauder's map display: a small
// net/http server with a JSON API (AP locations, tracked devices, true vs
// estimated positions) and an HTML canvas page that renders the map — the
// reproduction's stand-in for the paper's Google-Maps overlay.
package mapserver

import (
	"embed"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Process-wide display metrics. The localization-error histogram is the
// map's built-in accuracy read-out: whenever a published estimate comes
// with ground truth (simulation), the error distance is recorded under the
// estimate's algorithm label.
var (
	mFramesPublished = telemetry.Default().Counter(
		"marauder_map_frames_published_total",
		"Whole-map device frames published to the display.", nil)
	mDevicesOnMap = telemetry.Default().Gauge(
		"marauder_map_devices",
		"Devices currently shown on the map.", nil)
	// mStagePublish joins the engine's marauder_stage_seconds family: the
	// publish stage runs once per map frame, so it is timed on every call
	// rather than sampled.
	mStagePublish = telemetry.Default().Histogram(
		"marauder_stage_seconds",
		"Wall time per pipeline stage (fix-path stages sampled 1-in-N, see Config.StageSampleEvery).",
		telemetry.LatencyBuckets(), telemetry.Labels{"stage": "publish"})
)

// mRequests / mRequestSeconds instrument every HTTP route the handler
// serves, labeled by route pattern.
func mRequests(route string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_http_requests_total",
		"HTTP requests served, by route.", telemetry.Labels{"route": route})
}

func mRequestSeconds(route string) *telemetry.Histogram {
	return telemetry.Default().Histogram(
		"marauder_http_request_seconds",
		"HTTP request latency, by route.", telemetry.LatencyBuckets(),
		telemetry.Labels{"route": route})
}

// observeError records one localization error distance under the
// algorithm (Estimate.Method) label.
func observeError(algo string, errM float64) {
	telemetry.Default().Histogram(
		"marauder_localization_error_meters",
		"Localization error versus ground truth, by algorithm.",
		telemetry.DistanceBuckets(), telemetry.Labels{"algo": algo}).Observe(errM)
}

// APMarker is one AP dot on the map.
type APMarker struct {
	BSSID string     `json:"bssid"`
	SSID  string     `json:"ssid"`
	Pos   geom.Point `json:"pos"`
	Range float64    `json:"range"`
}

// DeviceMarker is one tracked device on the map: where the attack thinks
// it is, and (when the caller knows it, e.g. in simulation) where it truly
// is.
type DeviceMarker struct {
	MAC      string      `json:"mac"`
	Est      geom.Point  `json:"est"`
	Truth    *geom.Point `json:"truth,omitempty"`
	K        int         `json:"k"`
	Method   string      `json:"method"`
	ErrM     float64     `json:"errM"`
	HasTruth bool        `json:"hasTruth"`
}

// Health is the pipeline's degraded-vs-healthy self-report, served at
// /api/health. Status is "healthy" or "degraded"; Reasons names each
// active degradation; Detail carries the provider's full health payload
// (engine counters, card states, checkpoint state).
type Health struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
	Detail  any      `json:"detail,omitempty"`
}

// Healthy reports whether the status is "healthy".
func (h Health) Healthy() bool { return h.Status == StatusHealthy }

// Health status values.
const (
	StatusHealthy  = "healthy"
	StatusDegraded = "degraded"
)

// State is the server's current map content. Safe for concurrent use.
type State struct {
	mu      sync.RWMutex
	aps     []APMarker
	devices map[string]DeviceMarker
	stats   func() any
	health  func() Health
	slo     func() any
	profile func() any
	agents  func() any
	tracer  *trace.Tracer
}

// NewState creates an empty map state.
func NewState() *State {
	return &State{devices: make(map[string]DeviceMarker)}
}

// SetAPs replaces the AP layer.
func (s *State) SetAPs(aps []APMarker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aps = append([]APMarker(nil), aps...)
}

// APsFromKnowledge loads the AP layer from a localization knowledge base.
func (s *State) APsFromKnowledge(k core.Knowledge) {
	all := k.All() // BSSID-sorted, matching the marker ordering below
	aps := make([]APMarker, 0, len(all))
	for _, in := range all {
		aps = append(aps, APMarker{
			BSSID: in.BSSID.String(),
			Pos:   in.Pos,
			Range: in.MaxRange,
		})
	}
	sort.Slice(aps, func(i, j int) bool { return aps[i].BSSID < aps[j].BSSID })
	s.SetAPs(aps)
}

// UpdateDevice publishes a device estimate; truth is optional.
func (s *State) UpdateDevice(mac dot11.MAC, est core.Estimate, truth *geom.Point) {
	m := DeviceMarker{
		MAC:    mac.String(),
		Est:    est.Pos,
		K:      est.K,
		Method: est.Method,
	}
	if truth != nil {
		tcopy := *truth
		m.Truth = &tcopy
		m.HasTruth = true
		m.ErrM = est.Pos.Dist(tcopy)
		observeError(est.Method, m.ErrM)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[m.MAC] = m
	mDevicesOnMap.Set(float64(len(s.devices)))
}

// PublishFrame replaces the whole device layer with one engine snapshot —
// every device, every window, one dot on the map. truth, when non-nil,
// supplies the true position for devices whose ground truth the caller
// knows (simulation); it returns false for the rest.
func (s *State) PublishFrame(frame map[dot11.MAC]core.Estimate, truth func(dot11.MAC) (geom.Point, bool)) {
	defer mStagePublish.ObserveSince(time.Now())
	var tr *trace.Trace
	if t := s.traceSource(); t != nil {
		tr = t.Start(trace.KindPublish, "")
	}
	sp := tr.StartSpan("publish").Attr("devices", len(frame))
	defer func() {
		sp.End()
		tr.Finish(nil)
	}()
	devices := make(map[string]DeviceMarker, len(frame))
	for mac, est := range frame {
		m := DeviceMarker{
			MAC:    mac.String(),
			Est:    est.Pos,
			K:      est.K,
			Method: est.Method,
		}
		if truth != nil {
			if pos, ok := truth(mac); ok {
				tcopy := pos
				m.Truth = &tcopy
				m.HasTruth = true
				m.ErrM = est.Pos.Dist(tcopy)
				observeError(est.Method, m.ErrM)
			}
		}
		devices[m.MAC] = m
	}
	s.mu.Lock()
	s.devices = devices
	s.mu.Unlock()
	mFramesPublished.Inc()
	mDevicesOnMap.Set(float64(len(devices)))
}

// SetStatsSource installs the provider behind /api/stats — typically a
// closure over engine.Stats plus the observation store's shard shape, so
// the map UI and scripts can read pipeline health without scraping
// Prometheus text. The value must be JSON-serializable.
func (s *State) SetStatsSource(src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = src
}

func (s *State) statsSource() func() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// SetHealthSource installs the provider behind /api/health — typically a
// closure composing engine.Health with the sniffer card states and the
// checkpointer. With no source installed the endpoint reports healthy:
// a pipeline with no health provider has nothing to degrade.
func (s *State) SetHealthSource(src func() Health) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health = src
}

func (s *State) healthSource() func() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.health
}

// SetSLOSource installs the provider behind /api/slo — typically a
// closure over slo.Tracker.Report. With no source installed the endpoint
// reports SLO tracking disabled. The value must be JSON-serializable.
func (s *State) SetSLOSource(src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slo = src
}

func (s *State) sloSource() func() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.slo
}

// SetProfileSource installs the provider behind /api/profile — typically
// a closure composing prof.Profiler.Status and Attribution. With no
// source installed the endpoint reports profiling disabled.
func (s *State) SetProfileSource(src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profile = src
}

func (s *State) profileSource() func() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.profile
}

// SetAgentsSource installs the provider behind /api/agents — typically a
// closure over capwire.Server.Report, giving per-agent liveness, lag,
// cursor, and resume/dedup accounting. With no source installed the
// endpoint reports the distributed capture plane disabled. The value must
// be JSON-serializable.
func (s *State) SetAgentsSource(src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agents = src
}

func (s *State) agentsSource() func() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.agents
}

// SetTracer installs the pipeline tracer behind /api/trace (recent-trace
// ring dump) and /api/explain (latest per-device estimate provenance), and
// lets PublishFrame record its publish span. nil (the default) leaves the
// endpoints serving "tracing disabled".
func (s *State) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

func (s *State) traceSource() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// RemoveDevice drops a device from the map.
func (s *State) RemoveDevice(mac dot11.MAC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.devices, mac.String())
	mDevicesOnMap.Set(float64(len(s.devices)))
}

// snapshot copies the current state for serialization.
func (s *State) snapshot() (aps []APMarker, devices []DeviceMarker) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	aps = append([]APMarker(nil), s.aps...)
	devices = make([]DeviceMarker, 0, len(s.devices))
	for _, d := range s.devices {
		devices = append(devices, d)
	}
	sort.Slice(devices, func(i, j int) bool { return devices[i].MAC < devices[j].MAC })
	return aps, devices
}

//go:embed static
var staticFS embed.FS

// HandlerOpts configures the map server's HTTP surface.
type HandlerOpts struct {
	// Registry is the metrics registry exposed at /metrics and
	// /debug/vars; nil uses the process-wide default registry.
	Registry *telemetry.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling endpoints can stall the serving goroutine and leak
	// internals, so the display port only gets them when asked).
	Pprof bool
}

// instrument wraps a route handler with the per-route request counter and
// latency histogram.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := mRequests(route)
	lat := mRequestSeconds(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		reqs.Inc()
		lat.ObserveSince(start)
	}
}

// apiGET instruments a JSON API route and enforces the API contract: only
// GET (anything else gets 405 with an Allow header), and responses must
// not be cached — every /api/* payload is a live pipeline snapshot, and a
// cached estimate or provenance record would silently misreport the map.
func apiGET(route string, h http.HandlerFunc) http.HandlerFunc {
	return instrument(route, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Cache-Control", "no-store")
		h(w, r)
	})
}

// writeJSON encodes one API response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
	}
}

// Handler returns the HTTP handler for the map UI and API, with the
// default telemetry endpoints and no pprof.
func Handler(state *State) http.Handler {
	return NewHandler(state, HandlerOpts{})
}

// NewHandler returns the HTTP handler for the map UI, the JSON API and
// the observability endpoints: /metrics (Prometheus text format) and
// /debug/vars (expvar-style JSON) always, /debug/pprof/ when opted in.
// When a tracer is installed via State.SetTracer, /api/trace dumps the
// recent-trace ring and /api/explain?device=MAC serves the device's
// latest estimate provenance.
func NewHandler(state *State, opts HandlerOpts) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/state", apiGET("/api/state", func(w http.ResponseWriter, r *http.Request) {
		aps, devices := state.snapshot()
		writeJSON(w, map[string]interface{}{
			"aps":     aps,
			"devices": devices,
		})
	}))
	mux.HandleFunc("/api/stats", apiGET("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		var v any = map[string]any{}
		if src := state.statsSource(); src != nil {
			v = src()
		}
		writeJSON(w, v)
	}))
	mux.HandleFunc("/api/health", apiGET("/api/health", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: StatusHealthy}
		if src := state.healthSource(); src != nil {
			h = src()
		}
		if !h.Healthy() {
			// Headers are frozen at WriteHeader: set the type first.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, h)
	}))
	mux.HandleFunc("/api/slo", apiGET("/api/slo", func(w http.ResponseWriter, r *http.Request) {
		src := state.sloSource()
		if src == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, map[string]any{"enabled": true, "slo": src()})
	}))
	mux.HandleFunc("/api/profile", apiGET("/api/profile", func(w http.ResponseWriter, r *http.Request) {
		src := state.profileSource()
		if src == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, src())
	}))
	mux.HandleFunc("/api/agents", apiGET("/api/agents", func(w http.ResponseWriter, r *http.Request) {
		src := state.agentsSource()
		if src == nil {
			writeJSON(w, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, src())
	}))
	mux.HandleFunc("/api/trace", apiGET("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		t := state.traceSource()
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, fmt.Sprintf("bad n %q: want a positive integer", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, map[string]any{
			"enabled": t.Enabled(),
			"stats":   t.Stats(),
			"traces":  t.Recent(n),
		})
	}))
	mux.HandleFunc("/api/explain", apiGET("/api/explain", func(w http.ResponseWriter, r *http.Request) {
		dev := r.URL.Query().Get("device")
		if dev == "" {
			http.Error(w, "missing device parameter (MAC, e.g. /api/explain?device=02:dd:00:00:00:01)", http.StatusBadRequest)
			return
		}
		t := state.traceSource()
		if !t.Enabled() {
			http.Error(w, "tracing disabled: restart with -trace to record estimate provenance", http.StatusNotFound)
			return
		}
		p, ok := t.Explain(dev)
		if !ok {
			http.Error(w, fmt.Sprintf("no traced estimate for device %s (yet — sampling is 1 in %d)", dev, t.SampleEvery()), http.StatusNotFound)
			return
		}
		writeJSON(w, p)
	}))
	mux.Handle("/metrics", instrument("/metrics", reg.MetricsHandler().ServeHTTP))
	mux.Handle("/debug/vars", instrument("/debug/vars", reg.VarsHandler().ServeHTTP))
	if opts.Pprof {
		telemetry.RegisterPprof(mux)
	}
	mux.HandleFunc("/", instrument("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		page, err := staticFS.ReadFile("static/index.html")
		if err != nil {
			http.Error(w, "missing page", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if _, err := w.Write(page); err != nil {
			return
		}
	}))
	return mux
}
