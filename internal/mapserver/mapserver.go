// Package mapserver serves the digital Marauder's map display: a small
// net/http server with a JSON API (AP locations, tracked devices, true vs
// estimated positions) and an HTML canvas page that renders the map — the
// reproduction's stand-in for the paper's Google-Maps overlay.
package mapserver

import (
	"embed"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// Process-wide display metrics. The localization-error histogram is the
// map's built-in accuracy read-out: whenever a published estimate comes
// with ground truth (simulation), the error distance is recorded under the
// estimate's algorithm label.
var (
	mFramesPublished = telemetry.Default().Counter(
		"marauder_map_frames_published_total",
		"Whole-map device frames published to the display.", nil)
	mDevicesOnMap = telemetry.Default().Gauge(
		"marauder_map_devices",
		"Devices currently shown on the map.", nil)
)

// mRequests / mRequestSeconds instrument every HTTP route the handler
// serves, labeled by route pattern.
func mRequests(route string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_http_requests_total",
		"HTTP requests served, by route.", telemetry.Labels{"route": route})
}

func mRequestSeconds(route string) *telemetry.Histogram {
	return telemetry.Default().Histogram(
		"marauder_http_request_seconds",
		"HTTP request latency, by route.", telemetry.LatencyBuckets(),
		telemetry.Labels{"route": route})
}

// observeError records one localization error distance under the
// algorithm (Estimate.Method) label.
func observeError(algo string, errM float64) {
	telemetry.Default().Histogram(
		"marauder_localization_error_meters",
		"Localization error versus ground truth, by algorithm.",
		telemetry.DistanceBuckets(), telemetry.Labels{"algo": algo}).Observe(errM)
}

// APMarker is one AP dot on the map.
type APMarker struct {
	BSSID string     `json:"bssid"`
	SSID  string     `json:"ssid"`
	Pos   geom.Point `json:"pos"`
	Range float64    `json:"range"`
}

// DeviceMarker is one tracked device on the map: where the attack thinks
// it is, and (when the caller knows it, e.g. in simulation) where it truly
// is.
type DeviceMarker struct {
	MAC      string      `json:"mac"`
	Est      geom.Point  `json:"est"`
	Truth    *geom.Point `json:"truth,omitempty"`
	K        int         `json:"k"`
	Method   string      `json:"method"`
	ErrM     float64     `json:"errM"`
	HasTruth bool        `json:"hasTruth"`
}

// State is the server's current map content. Safe for concurrent use.
type State struct {
	mu      sync.RWMutex
	aps     []APMarker
	devices map[string]DeviceMarker
	stats   func() any
}

// NewState creates an empty map state.
func NewState() *State {
	return &State{devices: make(map[string]DeviceMarker)}
}

// SetAPs replaces the AP layer.
func (s *State) SetAPs(aps []APMarker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aps = append([]APMarker(nil), aps...)
}

// APsFromKnowledge loads the AP layer from a localization knowledge base.
func (s *State) APsFromKnowledge(k core.Knowledge) {
	aps := make([]APMarker, 0, len(k))
	for _, in := range k {
		aps = append(aps, APMarker{
			BSSID: in.BSSID.String(),
			Pos:   in.Pos,
			Range: in.MaxRange,
		})
	}
	sort.Slice(aps, func(i, j int) bool { return aps[i].BSSID < aps[j].BSSID })
	s.SetAPs(aps)
}

// UpdateDevice publishes a device estimate; truth is optional.
func (s *State) UpdateDevice(mac dot11.MAC, est core.Estimate, truth *geom.Point) {
	m := DeviceMarker{
		MAC:    mac.String(),
		Est:    est.Pos,
		K:      est.K,
		Method: est.Method,
	}
	if truth != nil {
		tcopy := *truth
		m.Truth = &tcopy
		m.HasTruth = true
		m.ErrM = est.Pos.Dist(tcopy)
		observeError(est.Method, m.ErrM)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[m.MAC] = m
	mDevicesOnMap.Set(float64(len(s.devices)))
}

// PublishFrame replaces the whole device layer with one engine snapshot —
// every device, every window, one dot on the map. truth, when non-nil,
// supplies the true position for devices whose ground truth the caller
// knows (simulation); it returns false for the rest.
func (s *State) PublishFrame(frame map[dot11.MAC]core.Estimate, truth func(dot11.MAC) (geom.Point, bool)) {
	devices := make(map[string]DeviceMarker, len(frame))
	for mac, est := range frame {
		m := DeviceMarker{
			MAC:    mac.String(),
			Est:    est.Pos,
			K:      est.K,
			Method: est.Method,
		}
		if truth != nil {
			if pos, ok := truth(mac); ok {
				tcopy := pos
				m.Truth = &tcopy
				m.HasTruth = true
				m.ErrM = est.Pos.Dist(tcopy)
				observeError(est.Method, m.ErrM)
			}
		}
		devices[m.MAC] = m
	}
	s.mu.Lock()
	s.devices = devices
	s.mu.Unlock()
	mFramesPublished.Inc()
	mDevicesOnMap.Set(float64(len(devices)))
}

// SetStatsSource installs the provider behind /api/stats — typically a
// closure over engine.Stats plus the observation store's shard shape, so
// the map UI and scripts can read pipeline health without scraping
// Prometheus text. The value must be JSON-serializable.
func (s *State) SetStatsSource(src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = src
}

func (s *State) statsSource() func() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// RemoveDevice drops a device from the map.
func (s *State) RemoveDevice(mac dot11.MAC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.devices, mac.String())
	mDevicesOnMap.Set(float64(len(s.devices)))
}

// snapshot copies the current state for serialization.
func (s *State) snapshot() (aps []APMarker, devices []DeviceMarker) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	aps = append([]APMarker(nil), s.aps...)
	devices = make([]DeviceMarker, 0, len(s.devices))
	for _, d := range s.devices {
		devices = append(devices, d)
	}
	sort.Slice(devices, func(i, j int) bool { return devices[i].MAC < devices[j].MAC })
	return aps, devices
}

//go:embed static
var staticFS embed.FS

// HandlerOpts configures the map server's HTTP surface.
type HandlerOpts struct {
	// Registry is the metrics registry exposed at /metrics and
	// /debug/vars; nil uses the process-wide default registry.
	Registry *telemetry.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling endpoints can stall the serving goroutine and leak
	// internals, so the display port only gets them when asked).
	Pprof bool
}

// instrument wraps a route handler with the per-route request counter and
// latency histogram.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := mRequests(route)
	lat := mRequestSeconds(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		reqs.Inc()
		lat.ObserveSince(start)
	}
}

// Handler returns the HTTP handler for the map UI and API, with the
// default telemetry endpoints and no pprof.
func Handler(state *State) http.Handler {
	return NewHandler(state, HandlerOpts{})
}

// NewHandler returns the HTTP handler for the map UI, the JSON API and
// the observability endpoints: /metrics (Prometheus text format) and
// /debug/vars (expvar-style JSON) always, /debug/pprof/ when opted in.
func NewHandler(state *State, opts HandlerOpts) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/state", instrument("/api/state", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		aps, devices := state.snapshot()
		w.Header().Set("Content-Type", "application/json")
		err := json.NewEncoder(w).Encode(map[string]interface{}{
			"aps":     aps,
			"devices": devices,
		})
		if err != nil {
			http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
		}
	}))
	mux.HandleFunc("/api/stats", instrument("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var v any = map[string]any{}
		if src := state.statsSource(); src != nil {
			v = src()
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
		}
	}))
	mux.Handle("/metrics", instrument("/metrics", reg.MetricsHandler().ServeHTTP))
	mux.Handle("/debug/vars", instrument("/debug/vars", reg.VarsHandler().ServeHTTP))
	if opts.Pprof {
		telemetry.RegisterPprof(mux)
	}
	mux.HandleFunc("/", instrument("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		page, err := staticFS.ReadFile("static/index.html")
		if err != nil {
			http.Error(w, "missing page", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if _, err := w.Write(page); err != nil {
			return
		}
	}))
	return mux
}
