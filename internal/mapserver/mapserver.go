// Package mapserver serves the digital Marauder's map display: a small
// net/http server with a JSON API (AP locations, tracked devices, true vs
// estimated positions) and an HTML canvas page that renders the map — the
// reproduction's stand-in for the paper's Google-Maps overlay.
package mapserver

import (
	"embed"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
)

// APMarker is one AP dot on the map.
type APMarker struct {
	BSSID string     `json:"bssid"`
	SSID  string     `json:"ssid"`
	Pos   geom.Point `json:"pos"`
	Range float64    `json:"range"`
}

// DeviceMarker is one tracked device on the map: where the attack thinks
// it is, and (when the caller knows it, e.g. in simulation) where it truly
// is.
type DeviceMarker struct {
	MAC      string      `json:"mac"`
	Est      geom.Point  `json:"est"`
	Truth    *geom.Point `json:"truth,omitempty"`
	K        int         `json:"k"`
	Method   string      `json:"method"`
	ErrM     float64     `json:"errM"`
	HasTruth bool        `json:"hasTruth"`
}

// State is the server's current map content. Safe for concurrent use.
type State struct {
	mu      sync.RWMutex
	aps     []APMarker
	devices map[string]DeviceMarker
}

// NewState creates an empty map state.
func NewState() *State {
	return &State{devices: make(map[string]DeviceMarker)}
}

// SetAPs replaces the AP layer.
func (s *State) SetAPs(aps []APMarker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aps = append([]APMarker(nil), aps...)
}

// APsFromKnowledge loads the AP layer from a localization knowledge base.
func (s *State) APsFromKnowledge(k core.Knowledge) {
	aps := make([]APMarker, 0, len(k))
	for _, in := range k {
		aps = append(aps, APMarker{
			BSSID: in.BSSID.String(),
			Pos:   in.Pos,
			Range: in.MaxRange,
		})
	}
	sort.Slice(aps, func(i, j int) bool { return aps[i].BSSID < aps[j].BSSID })
	s.SetAPs(aps)
}

// UpdateDevice publishes a device estimate; truth is optional.
func (s *State) UpdateDevice(mac dot11.MAC, est core.Estimate, truth *geom.Point) {
	m := DeviceMarker{
		MAC:    mac.String(),
		Est:    est.Pos,
		K:      est.K,
		Method: est.Method,
	}
	if truth != nil {
		tcopy := *truth
		m.Truth = &tcopy
		m.HasTruth = true
		m.ErrM = est.Pos.Dist(tcopy)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[m.MAC] = m
}

// PublishFrame replaces the whole device layer with one engine snapshot —
// every device, every window, one dot on the map. truth, when non-nil,
// supplies the true position for devices whose ground truth the caller
// knows (simulation); it returns false for the rest.
func (s *State) PublishFrame(frame map[dot11.MAC]core.Estimate, truth func(dot11.MAC) (geom.Point, bool)) {
	devices := make(map[string]DeviceMarker, len(frame))
	for mac, est := range frame {
		m := DeviceMarker{
			MAC:    mac.String(),
			Est:    est.Pos,
			K:      est.K,
			Method: est.Method,
		}
		if truth != nil {
			if pos, ok := truth(mac); ok {
				tcopy := pos
				m.Truth = &tcopy
				m.HasTruth = true
				m.ErrM = est.Pos.Dist(tcopy)
			}
		}
		devices[m.MAC] = m
	}
	s.mu.Lock()
	s.devices = devices
	s.mu.Unlock()
}

// RemoveDevice drops a device from the map.
func (s *State) RemoveDevice(mac dot11.MAC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.devices, mac.String())
}

// snapshot copies the current state for serialization.
func (s *State) snapshot() (aps []APMarker, devices []DeviceMarker) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	aps = append([]APMarker(nil), s.aps...)
	devices = make([]DeviceMarker, 0, len(s.devices))
	for _, d := range s.devices {
		devices = append(devices, d)
	}
	sort.Slice(devices, func(i, j int) bool { return devices[i].MAC < devices[j].MAC })
	return aps, devices
}

//go:embed static
var staticFS embed.FS

// Handler returns the HTTP handler for the map UI and API.
func Handler(state *State) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/state", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		aps, devices := state.snapshot()
		w.Header().Set("Content-Type", "application/json")
		err := json.NewEncoder(w).Encode(map[string]interface{}{
			"aps":     aps,
			"devices": devices,
		})
		if err != nil {
			http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		page, err := staticFS.ReadFile("static/index.html")
		if err != nil {
			http.Error(w, "missing page", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if _, err := w.Write(page); err != nil {
			return
		}
	})
	return mux
}
