package mapserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func testState() *State {
	s := NewState()
	s.SetAPs([]APMarker{
		{BSSID: "00:00:00:00:00:01", SSID: "a", Pos: geom.Pt(0, 0), Range: 100},
	})
	truth := geom.Pt(10, 10)
	s.UpdateDevice(dot11.MAC{0xDD, 0, 0, 0, 0, 1},
		core.Estimate{Pos: geom.Pt(13, 14), K: 3, Method: "m-loc"}, &truth)
	return s
}

func TestAPIState(t *testing.T) {
	srv := httptest.NewServer(Handler(testState()))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var payload struct {
		APs     []APMarker     `json:"aps"`
		Devices []DeviceMarker `json:"devices"`
	}
	if err := json.NewDecoder(res.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.APs) != 1 || len(payload.Devices) != 1 {
		t.Fatalf("payload = %+v", payload)
	}
	d := payload.Devices[0]
	if !d.HasTruth || d.Truth == nil {
		t.Fatal("device should carry truth")
	}
	if d.ErrM < 4.9 || d.ErrM > 5.1 {
		t.Errorf("err = %v, want 5", d.ErrM)
	}
	if d.Method != "m-loc" || d.K != 3 {
		t.Errorf("device = %+v", d)
	}
}

// TestAPIMethodNotAllowed (satellite): every JSON API route refuses
// non-GET with 405, names the allowed method, and GET responses carry
// Cache-Control: no-store so stale pipeline snapshots are never served.
func TestAPIMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	for _, route := range []string{"/api/state", "/api/stats", "/api/trace", "/api/explain"} {
		res, err := http.Post(srv.URL+route, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status = %d, want 405", route, res.StatusCode)
		}
		if allow := res.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", route, allow)
		}

		req, _ := http.NewRequest(http.MethodDelete, srv.URL+route, nil)
		res, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s status = %d, want 405", route, res.StatusCode)
		}

		res, err = http.Get(srv.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if cc := res.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", route, cc)
		}
	}
}

func TestAPIStats(t *testing.T) {
	state := NewState()
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()

	// Without a source the endpoint serves an empty object, not an error.
	res, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if strings.TrimSpace(string(body)) != "{}" {
		t.Fatalf("empty-source body = %q, want {}", body)
	}

	state.SetStatsSource(func() any {
		return map[string]any{"obsShards": 4, "obsRecords": 17}
	})
	res, err = http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var payload struct {
		ObsShards  int `json:"obsShards"`
		ObsRecords int `json:"obsRecords"`
	}
	if err := json.NewDecoder(res.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.ObsShards != 4 || payload.ObsRecords != 17 {
		t.Fatalf("payload = %+v", payload)
	}

	post, err := http.Post(srv.URL+"/api/stats", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", post.StatusCode)
	}
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<!DOCTYPE html>") {
		t.Errorf("index page start: %q", buf[:n])
	}
	// Unknown paths 404.
	res2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", res2.StatusCode)
	}
}

func TestAPsFromKnowledgeAndRemove(t *testing.T) {
	s := NewState()
	mac := dot11.MAC{0, 0, 0, 0, 0, 9}
	s.APsFromKnowledge(core.NewKnowledge([]core.APInfo{
		{BSSID: mac, Pos: geom.Pt(1, 2), MaxRange: 50},
	}))
	aps, _ := s.snapshot()
	if len(aps) != 1 || aps[0].Range != 50 {
		t.Fatalf("aps = %+v", aps)
	}
	dev := dot11.MAC{1, 1, 1, 1, 1, 1}
	s.UpdateDevice(dev, core.Estimate{Pos: geom.Pt(0, 0)}, nil)
	if _, devices := s.snapshot(); len(devices) != 1 {
		t.Fatal("device missing")
	}
	s.RemoveDevice(dev)
	if _, devices := s.snapshot(); len(devices) != 0 {
		t.Fatal("device not removed")
	}
}

func TestUpdateDeviceCopiesTruth(t *testing.T) {
	s := NewState()
	truth := geom.Pt(5, 5)
	s.UpdateDevice(dot11.MAC{2}, core.Estimate{Pos: geom.Pt(5, 5)}, &truth)
	truth.X = 999 // mutate the caller's value
	_, devices := s.snapshot()
	if devices[0].Truth.X != 5 {
		t.Error("UpdateDevice must copy the truth point")
	}
}

func TestPublishFrame(t *testing.T) {
	s := testState()
	devA := dot11.MAC{0xDD, 0, 0, 0, 0, 2}
	devB := dot11.MAC{0xDD, 0, 0, 0, 0, 3}
	frame := map[dot11.MAC]core.Estimate{
		devA: {Pos: geom.Pt(1, 2), K: 4, Method: "m-loc"},
		devB: {Pos: geom.Pt(5, 6), K: 2, Method: "ap-rad"},
	}
	s.PublishFrame(frame, func(m dot11.MAC) (geom.Point, bool) {
		if m == devA {
			return geom.Pt(0, 2), true
		}
		return geom.Point{}, false
	})
	_, devices := s.snapshot()
	if len(devices) != 2 {
		t.Fatalf("frame replaced layer with %d devices, want 2", len(devices))
	}
	byMAC := make(map[string]DeviceMarker)
	for _, d := range devices {
		byMAC[d.MAC] = d
	}
	a := byMAC[devA.String()]
	if !a.HasTruth || a.ErrM != 1 {
		t.Errorf("devA marker = %+v", a)
	}
	b := byMAC[devB.String()]
	if b.HasTruth || b.Truth != nil {
		t.Errorf("devB should carry no truth: %+v", b)
	}
	// The device published by testState must be gone: frames replace.
	if _, ok := byMAC["dd:00:00:00:00:01"]; ok {
		t.Error("stale device survived PublishFrame")
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("test_probe_total", "", nil).Add(9)
	srv := httptest.NewServer(NewHandler(testState(), HandlerOpts{Registry: reg, Pprof: true}))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "test_probe_total 9") {
		t.Errorf("/metrics missing series:\n%s", body)
	}

	res, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	err = json.NewDecoder(res.Body).Decode(&vars)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if vars["test_probe_total"].(float64) != 9 {
		t.Errorf("/debug/vars = %v", vars)
	}

	res, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", res.StatusCode)
	}
}

func TestPprofOptIn(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("pprof not opted in but status = %d", res.StatusCode)
	}
	// The default handler still serves telemetry.
	res, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "marauder_map_frames_published_total") {
		t.Errorf("default /metrics missing map series:\n%s", body)
	}
}

func TestAPITraceDisabled(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()

	// Without a tracer /api/trace still answers, reporting disabled.
	res, err := http.Get(srv.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Enabled bool           `json:"enabled"`
		Traces  []trace.Record `json:"traces"`
	}
	err = json.NewDecoder(res.Body).Decode(&payload)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if payload.Enabled || len(payload.Traces) != 0 {
		t.Errorf("disabled /api/trace = %+v", payload)
	}

	// /api/explain 404s with a hint to enable tracing.
	res, err = http.Get(srv.URL + "/api/explain?device=aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("disabled explain status = %d, want 404", res.StatusCode)
	}
	if !strings.Contains(string(body), "-trace") {
		t.Errorf("disabled explain body %q should point at the -trace flag", body)
	}
}

func TestAPITraceAndExplain(t *testing.T) {
	tracer, err := trace.New(trace.Config{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	state := NewState()
	state.SetTracer(tracer)
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()

	// /api/explain without a device parameter is a 400.
	res, err := http.Get(srv.URL + "/api/explain")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("missing-device status = %d, want 400", res.StatusCode)
	}

	// Enabled but nothing traced for this device yet: 404 with the
	// sampling rate in the message.
	res, err = http.Get(srv.URL + "/api/explain?device=aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("untraced device status = %d, want 404", res.StatusCode)
	}
	if !strings.Contains(string(body), "sampling is 1 in 1") {
		t.Errorf("untraced device body %q should state the sampling rate", body)
	}

	// Record a fix trace with provenance and read it back both ways.
	x := tracer.Start(trace.KindFix, "aa:bb:cc:dd:ee:ff")
	x.StartSpan("localize").End()
	x.Finish(&trace.Provenance{
		Algorithm: "m-loc", Gamma: []string{"00:00:00:00:00:01"}, K: 1,
		Located: true, IntersectedAreaM2: 42.0, Theorem2AreaM2: 40.1, CacheHit: true,
	})

	res, err = http.Get(srv.URL + "/api/explain?device=aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	var p trace.Provenance
	err = json.NewDecoder(res.Body).Decode(&p)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "m-loc" || p.K != 1 || !p.CacheHit || p.IntersectedAreaM2 != 42.0 {
		t.Errorf("explain payload = %+v", p)
	}
	if p.TraceID == "" || len(p.StagesMs) == 0 {
		t.Errorf("explain payload missing trace ID or stages: %+v", p)
	}

	res, err = http.Get(srv.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Enabled bool           `json:"enabled"`
		Stats   trace.Stats    `json:"stats"`
		Traces  []trace.Record `json:"traces"`
	}
	err = json.NewDecoder(res.Body).Decode(&dump)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !dump.Enabled || dump.Stats.Finished != 1 || len(dump.Traces) != 1 {
		t.Errorf("/api/trace = enabled=%v stats=%+v traces=%d", dump.Enabled, dump.Stats, len(dump.Traces))
	}
	if dump.Traces[0].Provenance == nil || dump.Traces[0].Kind != trace.KindFix {
		t.Errorf("trace record = %+v", dump.Traces[0])
	}

	// n validation: garbage and non-positive values are 400s.
	for _, q := range []string{"?n=abc", "?n=0", "?n=-3"} {
		res, err := http.Get(srv.URL + "/api/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("/api/trace%s status = %d, want 400", q, res.StatusCode)
		}
	}
	res, err = http.Get(srv.URL + "/api/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("/api/trace?n=1 status = %d", res.StatusCode)
	}
}

func TestPublishFrameRecordsErrorHistogram(t *testing.T) {
	h := telemetry.Default().Histogram("marauder_localization_error_meters", "",
		telemetry.DistanceBuckets(), telemetry.Labels{"algo": "m-loc"})
	before := h.Count()
	s := NewState()
	dev := dot11.MAC{0xDD, 0, 0, 0, 0, 8}
	s.PublishFrame(map[dot11.MAC]core.Estimate{
		dev: {Pos: geom.Pt(3, 4), Method: "m-loc"},
	}, func(dot11.MAC) (geom.Point, bool) { return geom.Pt(0, 0), true })
	if h.Count() != before+1 {
		t.Fatalf("error histogram count %d -> %d, want +1", before, h.Count())
	}
	if sum := h.Sum(); sum <= 0 {
		t.Fatalf("error histogram sum = %v", sum)
	}
}
