package mapserver

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestAPIAgentsDisabledByDefault(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	var got map[string]any
	if code := getJSON(t, srv.URL+"/api/agents", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got["enabled"] != false {
		t.Errorf("/api/agents without a source: %v", got)
	}
}

func TestAPIAgentsServesSource(t *testing.T) {
	state := NewState()
	state.SetAgentsSource(func() any {
		return map[string]any{
			"enabled": true,
			"agents": []map[string]any{
				{"id": "lab-1", "connected": true, "cursor": 41, "resumes": 1},
			},
		}
	})
	srv := httptest.NewServer(Handler(state))
	defer srv.Close()
	var got struct {
		Enabled bool `json:"enabled"`
		Agents  []struct {
			ID     string `json:"id"`
			Cursor int    `json:"cursor"`
		} `json:"agents"`
	}
	if code := getJSON(t, srv.URL+"/api/agents", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !got.Enabled || len(got.Agents) != 1 || got.Agents[0].ID != "lab-1" || got.Agents[0].Cursor != 41 {
		t.Errorf("/api/agents: %+v", got)
	}
}
