package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
	"repro/internal/geom"
)

func mac(i byte) dot11.MAC { return dot11.MAC{0, 0, 0, 0, 0, i} }

// knowledgeOn builds a Knowledge with APs at the given positions, all with
// the same radius.
func knowledgeOn(positions []geom.Point, r float64) (Knowledge, []dot11.MAC) {
	infos := make([]APInfo, 0, len(positions))
	gamma := make([]dot11.MAC, 0, len(positions))
	for i, p := range positions {
		m := mac(byte(i + 1))
		infos = append(infos, APInfo{BSSID: m, Pos: p, MaxRange: r})
		gamma = append(gamma, m)
	}
	return NewKnowledge(infos), gamma
}

func TestMLocSymmetricPair(t *testing.T) {
	// Two APs at (±50, 0) with r=100: the lens is symmetric about the
	// origin, so the vertex centroid is the origin.
	k, gamma := knowledgeOn([]geom.Point{geom.Pt(-50, 0), geom.Pt(50, 0)}, 100)
	est, err := MLoc(k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos.Norm() > 1e-9 {
		t.Errorf("estimate = %v, want origin", est.Pos)
	}
	if est.K != 2 || est.Method != "m-loc" || len(est.Vertices) != 2 {
		t.Errorf("estimate meta = %+v", est)
	}
}

func TestMLocSingleAPDegeneratesToNearestAP(t *testing.T) {
	k, gamma := knowledgeOn([]geom.Point{geom.Pt(30, 40)}, 100)
	est, err := MLoc(k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos != geom.Pt(30, 40) {
		t.Errorf("estimate = %v, want the AP position", est.Pos)
	}
}

func TestMLocErrors(t *testing.T) {
	k, _ := knowledgeOn([]geom.Point{geom.Pt(0, 0)}, 100)
	if _, err := MLoc(k, []dot11.MAC{mac(99)}); !errors.Is(err, ErrNoAPs) {
		t.Errorf("unknown AP: %v", err)
	}
	// Disjoint discs: empty region.
	k2, gamma2 := knowledgeOn([]geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0)}, 100)
	if _, err := MLoc(k2, gamma2); !errors.Is(err, ErrEmptyRegion) {
		t.Errorf("disjoint: %v", err)
	}
}

func TestMLocSkipsRangelessAPs(t *testing.T) {
	k, gamma := knowledgeOn([]geom.Point{geom.Pt(-50, 0), geom.Pt(50, 0)}, 100)
	noRange := mac(77)
	k = NewKnowledge(append(k.All(), APInfo{BSSID: noRange, Pos: geom.Pt(999, 999)}))
	est, err := MLoc(k, append(gamma, noRange))
	if err != nil {
		t.Fatal(err)
	}
	if est.K != 2 {
		t.Errorf("K = %d, want 2 (range-less AP skipped)", est.K)
	}
}

// The paper's guarantee: with accurate AP locations and radii, the true
// location always lies in the intersected region, so the estimate can be
// off by at most the region diameter ≤ 2r.
func TestMLocErrorBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		kAPs := rng.Intn(9) + 1
		r := 50 + rng.Float64()*150
		positions := make([]geom.Point, 0, kAPs)
		for i := 0; i < kAPs; i++ {
			ang := rng.Float64() * 2 * math.Pi
			d := rng.Float64() * r
			positions = append(positions, geom.Pt(
				truth.X+d*math.Cos(ang), truth.Y+d*math.Sin(ang)))
		}
		k, gamma := knowledgeOn(positions, r)
		est, err := MLoc(k, gamma)
		if err != nil {
			return false
		}
		if !RegionCovers(k, gamma, truth) {
			return false
		}
		return Error(est, truth) <= 2*r+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Fig 4: under a biased AP distribution, disc-intersection stays accurate
// while the centroid baseline drifts toward the cluster.
func TestMLocBeatsCentroidUnderBias(t *testing.T) {
	truth := geom.Pt(0, 0)
	r := 200.0
	// 5 APs around the device, 10 clustered far to the north-east corner of
	// its range.
	positions := []geom.Point{
		geom.Pt(-150, 0), geom.Pt(150, 20), geom.Pt(0, -140), geom.Pt(30, 120), geom.Pt(-60, 80),
	}
	for i := 0; i < 10; i++ {
		positions = append(positions, geom.Pt(110+float64(i%3)*8, 110+float64(i/3)*8))
	}
	k, gamma := knowledgeOn(positions, r)
	if !RegionCovers(k, gamma, truth) {
		t.Fatal("bad test setup: truth not covered")
	}
	mloc, err := MLoc(k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := CentroidBaseline(k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if Error(mloc, truth) >= Error(cent, truth) {
		t.Errorf("m-loc error %.1f should beat centroid %.1f under bias",
			Error(mloc, truth), Error(cent, truth))
	}
}

// More communicable APs can only shrink the region and thus (on average)
// the M-Loc error; verify the area monotonicity directly.
func TestRegionAreaMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := geom.Pt(0, 0)
	r := 150.0
	var positions []geom.Point
	prevArea := math.Inf(1)
	for i := 0; i < 8; i++ {
		ang := rng.Float64() * 2 * math.Pi
		d := rng.Float64() * r
		positions = append(positions, geom.Pt(truth.X+d*math.Cos(ang), truth.Y+d*math.Sin(ang)))
		k, gamma := knowledgeOn(positions, r)
		area := RegionArea(k, gamma)
		if area > prevArea+1e-6 {
			t.Fatalf("area grew from %.2f to %.2f at k=%d", prevArea, area, i+1)
		}
		prevArea = area
	}
}

func TestCentroidBaseline(t *testing.T) {
	k, gamma := knowledgeOn([]geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}, 100)
	est, err := CentroidBaseline(k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos != geom.Pt(50, 0) || est.Method != "centroid" {
		t.Errorf("centroid = %+v", est)
	}
	if _, err := CentroidBaseline(k, []dot11.MAC{mac(99)}); !errors.Is(err, ErrNoAPs) {
		t.Errorf("err = %v", err)
	}
}

func TestClosestAPBaseline(t *testing.T) {
	k := NewKnowledge([]APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0), MaxRange: 200},
		{BSSID: mac(2), Pos: geom.Pt(50, 0), MaxRange: 60},
		{BSSID: mac(3), Pos: geom.Pt(99, 0)}, // unknown range
	})
	est, err := ClosestAPBaseline(k, []dot11.MAC{mac(1), mac(2), mac(3)})
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos != geom.Pt(50, 0) {
		t.Errorf("closest-ap picked %v, want the smallest-radius AP", est.Pos)
	}
	if _, err := ClosestAPBaseline(k, nil); !errors.Is(err, ErrNoAPs) {
		t.Errorf("err = %v", err)
	}
}

func TestKnowledgeHelpers(t *testing.T) {
	k := NewKnowledge([]APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0), MaxRange: 100},
		{BSSID: mac(2), Pos: geom.Pt(10, 0)},
	})
	if k.Len() != 2 {
		t.Fatalf("knowledge size = %d", k.Len())
	}
	gamma := []dot11.MAC{mac(1), mac(2), mac(9)}
	if got := k.Discs(gamma, 0); len(got) != 1 {
		t.Errorf("discs without fallback = %v", got)
	}
	if got := k.Discs(gamma, 50); len(got) != 2 {
		t.Errorf("discs with fallback = %v", got)
	}
	if got := k.Positions(gamma); len(got) != 2 {
		t.Errorf("positions = %v", got)
	}
	if RegionArea(k, []dot11.MAC{mac(9)}) != 0 {
		t.Error("unknown AP region area should be 0")
	}
	if RegionCovers(k, []dot11.MAC{mac(9)}, geom.Pt(0, 0)) {
		t.Error("empty disc set covers nothing")
	}
}
