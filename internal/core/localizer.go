package core

import (
	"fmt"

	"repro/internal/dot11"
	"repro/internal/wardrive"
)

// Localizer is a localization algorithm as the engine consumes it: a named
// mapping from the attacker's knowledge and an observed AP set Γ to a
// location estimate. All five algorithms of the paper's evaluation —
// M-Loc, AP-Rad, AP-Loc and the Centroid / Closest-AP baselines — are
// Localizers, so every front-end selects them uniformly.
type Localizer interface {
	// Name identifies the algorithm ("m-loc", "ap-rad", ...).
	Name() string
	// Locate estimates the device position from Γ.
	Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error)
}

// KnowledgeTrainer is implemented by Localizers that derive their working
// knowledge base from observations rather than taking it as given (AP-Rad
// estimates radii, AP-Loc additionally estimates positions). The engine
// calls Train as observations accumulate and swaps the returned Knowledge
// in as the active base for Locate.
type KnowledgeTrainer interface {
	// Train builds the working knowledge from the training base (AP
	// positions for AP-Rad; ignored by AP-Loc, which brings its own
	// wardriving tuples) and the observed per-device AP sets.
	Train(base Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, error)
}

// TrainDiag is the provenance of one Train run — the shape and cost of
// the radius-estimation LP — surfaced so the engine can attribute every
// estimate to the exact training run that produced its knowledge.
type TrainDiag struct {
	// Constraints is the LP's pairwise-constraint count.
	Constraints int
	// LPIterations is the simplex pivot count of the solve.
	LPIterations int
	// LowerBoundViolations counts co-observation constraints the optimum
	// violated (repaired upward — Theorem 3's safe direction).
	LowerBoundViolations int
	// Objective is Σ rᵢ at the optimum.
	Objective float64
}

// DiagnosedTrainer is a KnowledgeTrainer that also reports how training
// went. The engine prefers it over plain Train when recording estimate
// provenance.
type DiagnosedTrainer interface {
	KnowledgeTrainer
	// TrainDiagnosed is Train with the run's diagnostics alongside.
	TrainDiagnosed(base Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, TrainDiag, error)
}

// LocalizerFunc adapts a bare Locator func to the Localizer interface.
type LocalizerFunc struct {
	// Method is the reported Name.
	Method string
	// Func is the wrapped algorithm.
	Func Locator
}

// Name implements Localizer.
func (l LocalizerFunc) Name() string { return l.Method }

// Locate implements Localizer.
func (l LocalizerFunc) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	return l.Func(k, gamma)
}

// MLocalizer is the paper's M-Loc algorithm as a Localizer: knowledge
// (positions and radii) is taken as given.
type MLocalizer struct{}

// Name implements Localizer.
func (MLocalizer) Name() string { return "m-loc" }

// Locate implements Localizer.
func (MLocalizer) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	return MLoc(k, gamma)
}

// CentroidLocalizer is the prior range-free Centroid baseline.
type CentroidLocalizer struct{}

// Name implements Localizer.
func (CentroidLocalizer) Name() string { return "centroid" }

// Locate implements Localizer.
func (CentroidLocalizer) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	return CentroidBaseline(k, gamma)
}

// ClosestAPLocalizer is the Closest-AP baseline.
type ClosestAPLocalizer struct{}

// Name implements Localizer.
func (ClosestAPLocalizer) Name() string { return "closest-ap" }

// Locate implements Localizer.
func (ClosestAPLocalizer) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	return ClosestAPBaseline(k, gamma)
}

// defaultMaxInflate bounds MLocInflated's radius inflation for the trained
// algorithms (AP-Rad / AP-Loc), matching APRad's historical behaviour.
const defaultMaxInflate = 4

// APRadLocalizer is the paper's AP-Rad algorithm split into its two
// phases: Train estimates AP radii from co-observation constraints (the
// LP of EstimateRadii) and Locate runs M-Loc over the trained knowledge,
// inflating radii when estimation left a device's discs jointly empty.
type APRadLocalizer struct {
	// Cfg tunes the radius-estimation LP.
	Cfg APRadConfig
	// MaxInflate bounds the M-Loc radius inflation (default 4).
	MaxInflate float64
}

// Name implements Localizer.
func (APRadLocalizer) Name() string { return "ap-rad" }

// Locate implements Localizer.
func (l APRadLocalizer) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	est, _, err := MLocInflated(k, gamma, maxInflate(l.MaxInflate))
	if err != nil {
		return Estimate{}, err
	}
	est.Method = "ap-rad"
	return est, nil
}

// Train implements KnowledgeTrainer.
func (l APRadLocalizer) Train(base Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, error) {
	trained, _, err := l.TrainDiagnosed(base, deviceSets)
	return trained, err
}

// TrainDiagnosed implements DiagnosedTrainer.
func (l APRadLocalizer) TrainDiagnosed(base Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, TrainDiag, error) {
	trained, diag, err := EstimateRadii(base, deviceSets, l.Cfg)
	return trained, trainDiagFromAPRad(diag), err
}

// APLocLocalizer is the paper's AP-Loc algorithm: nothing is known, so
// Train first estimates AP positions from wardriving tuples (memoized —
// the training set does not change between refreshes) and then estimates
// radii with AP-Rad's LP over the observed device sets. Use it by
// pointer: training state is cached on the receiver.
type APLocLocalizer struct {
	// Tuples is the wardriving training set (used when Trained is zero).
	Tuples []wardrive.Tuple
	// Trained overrides position training with an already-trained base.
	Trained Knowledge
	// Cfg tunes position training and the radius LP.
	Cfg APLocConfig
	// MaxInflate bounds the M-Loc radius inflation (default 4).
	MaxInflate float64
}

// Name implements Localizer.
func (*APLocLocalizer) Name() string { return "ap-loc" }

// Locate implements Localizer.
func (l *APLocLocalizer) Locate(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	est, _, err := MLocInflated(k, gamma, maxInflate(l.MaxInflate))
	if err != nil {
		return Estimate{}, err
	}
	est.Method = "ap-loc"
	return est, nil
}

// Train implements KnowledgeTrainer. The base argument is ignored: AP-Loc
// assumes no external knowledge.
func (l *APLocLocalizer) Train(base Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, error) {
	trained, _, err := l.TrainDiagnosed(base, deviceSets)
	return trained, err
}

// TrainDiagnosed implements DiagnosedTrainer. Position training is
// memoized on the receiver; the diagnostics describe the radius LP.
func (l *APLocLocalizer) TrainDiagnosed(_ Knowledge, deviceSets map[dot11.MAC][]dot11.MAC) (Knowledge, TrainDiag, error) {
	if l.Trained.IsZero() {
		trained, err := EstimateAPLocations(l.Tuples, l.Cfg)
		if err != nil {
			return Knowledge{}, TrainDiag{}, fmt.Errorf("ap-loc training: %w", err)
		}
		l.Trained = trained
	}
	trained, diag, err := EstimateRadii(l.Trained, deviceSets, l.Cfg.Rad)
	return trained, trainDiagFromAPRad(diag), err
}

// trainDiagFromAPRad lifts the AP-Rad LP diagnostics into the shared
// training-provenance shape.
func trainDiagFromAPRad(d APRadDiagnostics) TrainDiag {
	return TrainDiag{
		Constraints:          d.Constraints,
		LPIterations:         d.LPIterations,
		LowerBoundViolations: d.LowerBoundViolations,
		Objective:            d.Objective,
	}
}

func maxInflate(v float64) float64 {
	if v <= 0 {
		return defaultMaxInflate
	}
	return v
}
