// Package core implements the digital Marauder's map malicious
// localization algorithms — the paper's primary contribution:
//
//   - M-Loc: locate a mobile device when AP locations and maximum
//     transmission distances are known, by intersecting the APs' maximum
//     coverage discs and returning the centroid of the intersection
//     region's vertex set Δ.
//   - AP-Rad: when only AP locations are known, first estimate the APs'
//     maximum transmission distances with a linear program over pairwise
//     co-observation constraints (maximize Σ rᵢ subject to rᵢ + rⱼ ≥ dᵢⱼ
//     for co-observed pairs and rᵢ + rⱼ < dᵢⱼ otherwise), then call M-Loc.
//   - AP-Loc: when nothing is known, estimate each AP's location from
//     wardriving training tuples by disc intersection with an upper-bound
//     radius, then call AP-Rad and M-Loc.
//
// The package also provides the Centroid and Closest-AP baselines the
// paper compares against, and a Tracker that runs continuous localization
// over the observation store.
package core

import (
	"errors"
	"fmt"

	"repro/internal/apdb"
	"repro/internal/dot11"
	"repro/internal/geom"
)

// APInfo is the attacker's knowledge about one AP: its identity, its
// location, and (when known or estimated) its maximum transmission
// distance. It is an alias of apdb.Entry — the repo-wide single AP
// representation; the SSID field is unused by the algorithms.
type APInfo = apdb.Entry

// Knowledge is the per-attack AP knowledge base (external knowledge, or
// the output of AP-Rad / AP-Loc training): an immutable view over an
// apdb.Snapshot, the struct-of-arrays store behind apdb, core and the
// engine. The zero value is an empty knowledge base. Copying a Knowledge
// copies a pointer; the underlying snapshot never changes.
type Knowledge struct {
	snap *apdb.Snapshot
}

// NewKnowledge builds a Knowledge base from a list of APInfo (later
// duplicates replace earlier ones).
func NewKnowledge(infos []APInfo) Knowledge {
	return KnowledgeFromStore(apdb.FromEntries(infos))
}

// KnowledgeFromStore is a view of the store's current snapshot. Later
// store mutations publish new snapshots and do not affect the view.
func KnowledgeFromStore(s *apdb.Store) Knowledge {
	if s == nil {
		return Knowledge{}
	}
	return Knowledge{snap: s.Snapshot()}
}

// KnowledgeFromSnapshot wraps an already-published snapshot.
func KnowledgeFromSnapshot(sn *apdb.Snapshot) Knowledge {
	return Knowledge{snap: sn}
}

// Snapshot exposes the backing snapshot (the shared empty snapshot for a
// zero Knowledge).
func (k Knowledge) Snapshot() *apdb.Snapshot {
	if k.snap == nil {
		return apdb.EmptySnapshot()
	}
	return k.snap
}

// IsZero reports whether the knowledge base was never populated (no
// backing snapshot). An explicitly built empty base is not zero.
func (k Knowledge) IsZero() bool { return k.snap == nil }

// Len returns the number of known APs.
func (k Knowledge) Len() int { return k.Snapshot().Len() }

// Epoch is the backing snapshot's process-unique generation (0 for a zero
// base). Distinct snapshots always have distinct epochs, so an epoch
// comparison alone detects knowledge change.
func (k Knowledge) Epoch() uint64 { return k.Snapshot().Epoch() }

// Get returns the knowledge about one AP.
func (k Knowledge) Get(m dot11.MAC) (APInfo, bool) { return k.Snapshot().Get(m) }

// All returns every known AP in BSSID order (a fresh slice per call).
func (k Knowledge) All() []APInfo { return k.Snapshot().All() }

// MACs returns every known BSSID in ascending order.
func (k Knowledge) MACs() []dot11.MAC {
	sn := k.Snapshot()
	out := make([]dot11.MAC, sn.Len())
	for i := range out {
		out[i] = sn.MACAt(i)
	}
	return out
}

// Equal reports whether two knowledge bases hold identical entries.
func (k Knowledge) Equal(o Knowledge) bool { return k.Snapshot().Equal(o.Snapshot()) }

// Discs returns the coverage discs of the APs in Γ that are present in the
// knowledge base, using each AP's own MaxRange (or fallbackRange when the
// AP's range is unknown; fallbackRange ≤ 0 skips range-less APs). This is
// the candidate-disc lookup of M-Loc/AP-Rad: O(|Γ| log n) via the
// snapshot, independent of the knowledge-base size.
func (k Knowledge) Discs(gamma []dot11.MAC, fallbackRange float64) []geom.Circle {
	return k.Snapshot().CandidatesFor(make([]geom.Circle, 0, len(gamma)), gamma, fallbackRange)
}

// Positions returns the known positions of the APs in Γ.
func (k Knowledge) Positions(gamma []dot11.MAC) []geom.Point {
	return k.Snapshot().AppendPositions(make([]geom.Point, 0, len(gamma)), gamma)
}

// Estimate is a localization result.
type Estimate struct {
	// Pos is the estimated device location.
	Pos geom.Point `json:"pos"`
	// Vertices is the intersection-region vertex set Δ (M-Loc only).
	Vertices []geom.Point `json:"vertices,omitempty"`
	// K is the number of AP discs used.
	K int `json:"k"`
	// Method names the algorithm that produced the estimate.
	Method string `json:"method"`
}

// Localization errors.
var (
	// ErrNoAPs means Γ contains no AP present in the knowledge base.
	ErrNoAPs = errors.New("core: no usable APs in observation")
	// ErrEmptyRegion means the maximum-coverage discs have an empty
	// intersection (inconsistent knowledge, e.g. underestimated radii).
	ErrEmptyRegion = errors.New("core: empty intersection region")
)

// MLoc is the paper's M-Loc algorithm: given AP locations and maximum
// transmission distances and the observed set Γ of APs communicating with
// the device, compute all pairwise disc-boundary intersection points that
// lie inside every disc (the vertex set Δ) and return their centroid.
//
// With a single usable AP the estimate degenerates to the AP's position
// (the nearest-AP behaviour the paper notes for k = 1).
func MLoc(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	discs := k.Discs(gamma, 0)
	if len(discs) == 0 {
		return Estimate{}, ErrNoAPs
	}
	verts := geom.RegionVertices(discs)
	if len(verts) == 0 {
		return Estimate{}, fmt.Errorf("mloc with %d discs: %w", len(discs), ErrEmptyRegion)
	}
	c, err := geom.Centroid(verts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Pos: c, Vertices: verts, K: len(discs), Method: "m-loc"}, nil
}

// RegionArea returns the exact area of the intersection region an estimate
// was derived from — the paper's "intersected area" metric (Figs 2, 15).
func RegionArea(k Knowledge, gamma []dot11.MAC) float64 {
	return geom.IntersectionArea(k.Discs(gamma, 0))
}

// RegionCovers reports whether the intersection region of Γ's discs covers
// the point p — the paper's coverage-probability metric (Figs 6, 16).
func RegionCovers(k Knowledge, gamma []dot11.MAC, p geom.Point) bool {
	discs := k.Discs(gamma, 0)
	if len(discs) == 0 {
		return false
	}
	return geom.InAllDiscs(p, discs)
}
