// Package core implements the digital Marauder's map malicious
// localization algorithms — the paper's primary contribution:
//
//   - M-Loc: locate a mobile device when AP locations and maximum
//     transmission distances are known, by intersecting the APs' maximum
//     coverage discs and returning the centroid of the intersection
//     region's vertex set Δ.
//   - AP-Rad: when only AP locations are known, first estimate the APs'
//     maximum transmission distances with a linear program over pairwise
//     co-observation constraints (maximize Σ rᵢ subject to rᵢ + rⱼ ≥ dᵢⱼ
//     for co-observed pairs and rᵢ + rⱼ < dᵢⱼ otherwise), then call M-Loc.
//   - AP-Loc: when nothing is known, estimate each AP's location from
//     wardriving training tuples by disc intersection with an upper-bound
//     radius, then call AP-Rad and M-Loc.
//
// The package also provides the Centroid and Closest-AP baselines the
// paper compares against, and a Tracker that runs continuous localization
// over the observation store.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// APInfo is the attacker's knowledge about one AP: its identity, its
// location, and (when known or estimated) its maximum transmission
// distance.
type APInfo struct {
	BSSID dot11.MAC `json:"bssid"`
	// Pos is the AP position in the attack's local plane (metres).
	Pos geom.Point `json:"pos"`
	// MaxRange is the maximum transmission distance rᵢ; 0 means unknown.
	MaxRange float64 `json:"maxRange"`
}

// Knowledge indexes APInfo by BSSID — the per-attack AP knowledge base
// (external knowledge, or the output of AP-Loc's training).
type Knowledge map[dot11.MAC]APInfo

// NewKnowledge builds a Knowledge map from a list of APInfo.
func NewKnowledge(infos []APInfo) Knowledge {
	k := make(Knowledge, len(infos))
	for _, in := range infos {
		k[in.BSSID] = in
	}
	return k
}

// Discs returns the coverage discs of the APs in Γ that are present in the
// knowledge base, using each AP's own MaxRange (or fallbackRange when the
// AP's range is unknown; fallbackRange ≤ 0 skips range-less APs).
func (k Knowledge) Discs(gamma []dot11.MAC, fallbackRange float64) []geom.Circle {
	discs := make([]geom.Circle, 0, len(gamma))
	for _, m := range gamma {
		in, ok := k[m]
		if !ok {
			continue
		}
		r := in.MaxRange
		if r <= 0 {
			if fallbackRange <= 0 {
				continue
			}
			r = fallbackRange
		}
		discs = append(discs, geom.Circle{C: in.Pos, R: r})
	}
	return discs
}

// Positions returns the known positions of the APs in Γ.
func (k Knowledge) Positions(gamma []dot11.MAC) []geom.Point {
	pts := make([]geom.Point, 0, len(gamma))
	for _, m := range gamma {
		if in, ok := k[m]; ok {
			pts = append(pts, in.Pos)
		}
	}
	return pts
}

// Estimate is a localization result.
type Estimate struct {
	// Pos is the estimated device location.
	Pos geom.Point `json:"pos"`
	// Vertices is the intersection-region vertex set Δ (M-Loc only).
	Vertices []geom.Point `json:"vertices,omitempty"`
	// K is the number of AP discs used.
	K int `json:"k"`
	// Method names the algorithm that produced the estimate.
	Method string `json:"method"`
}

// Localization errors.
var (
	// ErrNoAPs means Γ contains no AP present in the knowledge base.
	ErrNoAPs = errors.New("core: no usable APs in observation")
	// ErrEmptyRegion means the maximum-coverage discs have an empty
	// intersection (inconsistent knowledge, e.g. underestimated radii).
	ErrEmptyRegion = errors.New("core: empty intersection region")
)

// MLoc is the paper's M-Loc algorithm: given AP locations and maximum
// transmission distances and the observed set Γ of APs communicating with
// the device, compute all pairwise disc-boundary intersection points that
// lie inside every disc (the vertex set Δ) and return their centroid.
//
// With a single usable AP the estimate degenerates to the AP's position
// (the nearest-AP behaviour the paper notes for k = 1).
func MLoc(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	discs := k.Discs(gamma, 0)
	if len(discs) == 0 {
		return Estimate{}, ErrNoAPs
	}
	verts := geom.RegionVertices(discs)
	if len(verts) == 0 {
		return Estimate{}, fmt.Errorf("mloc with %d discs: %w", len(discs), ErrEmptyRegion)
	}
	c, err := geom.Centroid(verts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Pos: c, Vertices: verts, K: len(discs), Method: "m-loc"}, nil
}

// RegionArea returns the exact area of the intersection region an estimate
// was derived from — the paper's "intersected area" metric (Figs 2, 15).
func RegionArea(k Knowledge, gamma []dot11.MAC) float64 {
	return geom.IntersectionArea(k.Discs(gamma, 0))
}

// RegionCovers reports whether the intersection region of Γ's discs covers
// the point p — the paper's coverage-probability metric (Figs 6, 16).
func RegionCovers(k Knowledge, gamma []dot11.MAC, p geom.Point) bool {
	discs := k.Discs(gamma, 0)
	if len(discs) == 0 {
		return false
	}
	return geom.InAllDiscs(p, discs)
}
