package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/lp"
)

// APRadConfig tunes the AP-Rad radius estimation.
type APRadConfig struct {
	// MaxRadius bounds every estimated radius (the theoretical upper bound
	// on AP transmission distance). Required: without it the LP that
	// maximizes Σ rᵢ is unbounded.
	MaxRadius float64
	// Margin is the slack ε used to encode the strict constraint
	// rᵢ + rⱼ < dᵢⱼ as rᵢ + rⱼ ≤ dᵢⱼ − ε. Defaults to 1 metre.
	Margin float64
	// KeepLowerBounds retains the rᵢ + rⱼ ≥ dᵢⱼ constraints inside the LP.
	// They never bind when maximizing Σ rᵢ, so by default they are dropped
	// from the program and verified afterwards, which keeps the simplex
	// phase-1-free and much faster on large AP sets.
	KeepLowerBounds bool
	// MaxNeighborConstraints caps, per AP, how many "never co-observed"
	// constraints are kept (the nearest neighbours, whose constraints are
	// tightest). 0 keeps all of them — exact but quadratic in the AP count.
	MaxNeighborConstraints int
}

func (c APRadConfig) withDefaults() (APRadConfig, error) {
	if c.MaxRadius <= 0 {
		return c, fmt.Errorf("core: AP-Rad needs MaxRadius > 0, got %v", c.MaxRadius)
	}
	if c.Margin <= 0 {
		c.Margin = 1
	}
	return c, nil
}

// APRadDiagnostics reports how the radius estimation went.
type APRadDiagnostics struct {
	// Constraints is the number of pairwise constraints in the program.
	Constraints int
	// LPIterations is the simplex pivot count the solve took (phase 1 and
	// phase 2 combined) — the cost side of the training provenance.
	LPIterations int
	// LowerBoundViolations counts co-observed pairs whose rᵢ + rⱼ ≥ dᵢⱼ
	// constraint the maximized solution violates — evidence of inconsistent
	// observations (e.g. a device heard two APs that the never-co-observed
	// constraints force apart).
	LowerBoundViolations int
	// Objective is Σ rᵢ at the optimum.
	Objective float64
}

// EstimateRadii is the radius-estimation half of the paper's AP-Rad
// algorithm. Given AP locations and the observed per-device AP sets
// {Γ_k}, it builds the paper's constraint system
//
//	rᵢ + rⱼ ≥ dᵢⱼ  if some device observed APᵢ and APⱼ together,
//	rᵢ + rⱼ < dᵢⱼ  otherwise,
//
// and maximizes Σ rᵢ by linear programming (overestimates are preferred
// over underestimates — Theorem 3). It returns a copy of the knowledge
// base with MaxRange filled in.
//
// Constraints that cannot bind are pruned: a "never co-observed" pair with
// dᵢⱼ ≥ 2·MaxRadius is implied by the box bounds.
func EstimateRadii(k Knowledge, deviceSets map[dot11.MAC][]dot11.MAC,
	cfg APRadConfig) (Knowledge, APRadDiagnostics, error) {
	var diag APRadDiagnostics
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Knowledge{}, diag, err
	}
	// Stable AP ordering: the snapshot's BSSID-ascending slot order.
	sn := k.Snapshot()
	aps := k.MACs()
	idx := make(map[dot11.MAC]int, len(aps))
	for i, m := range aps {
		idx[m] = i
	}
	n := len(aps)
	if n == 0 {
		return Knowledge{}, diag, ErrNoAPs
	}

	// Co-observation matrix from the device sets.
	co := make(map[[2]int]bool)
	for _, gamma := range deviceSets {
		ids := make([]int, 0, len(gamma))
		for _, m := range gamma {
			if i, ok := idx[m]; ok {
				ids = append(ids, i)
			}
		}
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if i > j {
					i, j = j, i
				}
				co[[2]int{i, j}] = true
			}
		}
	}

	prob := lp.Problem{Objective: make([]float64, n)}
	for i := range prob.Objective {
		prob.Objective[i] = 1
	}
	addPair := func(i, j int, rel lp.Relation, b float64) {
		c := lp.Constraint{Coeffs: make([]float64, n), Rel: rel, B: b}
		c.Coeffs[i], c.Coeffs[j] = 1, 1
		prob.Constraints = append(prob.Constraints, c)
	}
	type lower struct {
		i, j int
		d    float64
	}
	type upper struct {
		i, j int
		b    float64
	}
	var lowers []lower
	var uppers []upper
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sn.PosAt(i).Dist(sn.PosAt(j))
			if co[[2]int{i, j}] {
				lowers = append(lowers, lower{i, j, d})
				if cfg.KeepLowerBounds {
					addPair(i, j, lp.GE, d)
				}
				continue
			}
			b := d - cfg.Margin
			if b <= 0 {
				// APs (estimated) essentially co-located yet never
				// co-observed: the constraint would be infeasible over
				// r ≥ 0; treat the pair as unreliable and skip it.
				continue
			}
			if b < 2*cfg.MaxRadius {
				// Binding-capable "never co-observed" constraint.
				uppers = append(uppers, upper{i, j, b})
			}
		}
	}
	if maxPer := cfg.MaxNeighborConstraints; maxPer > 0 {
		// Keep, per AP, only the tightest (nearest-neighbour) upper
		// constraints; looser ones almost never bind at the optimum.
		sort.Slice(uppers, func(a, b int) bool { return uppers[a].b < uppers[b].b })
		perAP := make([]int, n)
		kept := uppers[:0]
		for _, u := range uppers {
			if perAP[u.i] >= maxPer && perAP[u.j] >= maxPer {
				continue
			}
			perAP[u.i]++
			perAP[u.j]++
			kept = append(kept, u)
		}
		uppers = kept
	}
	for _, u := range uppers {
		addPair(u.i, u.j, lp.LE, u.b)
	}
	// Box bounds r_i <= MaxRadius.
	for i := 0; i < n; i++ {
		c := lp.Constraint{Coeffs: make([]float64, n), Rel: lp.LE, B: cfg.MaxRadius}
		c.Coeffs[i] = 1
		prob.Constraints = append(prob.Constraints, c)
	}
	diag.Constraints = len(prob.Constraints)

	x, obj, lpStats, err := lp.SolveStats(prob)
	diag.LPIterations = lpStats.Pivots()
	if err != nil {
		return Knowledge{}, diag, fmt.Errorf("ap-rad lp: %w", err)
	}
	diag.Objective = obj

	// Repair pass: a co-observed pair is hard evidence that rᵢ + rⱼ ≥ dᵢⱼ,
	// while a "never co-observed" constraint is only absence of evidence.
	// When the two conflict (the joint system is infeasible), evidence
	// wins: raise both radii of each co-observed pair to at least dᵢⱼ/2
	// (capped at MaxRadius). Underestimated radii would make the very
	// devices that produced the evidence fall outside the intersected
	// region (Theorem 3's collapse), so overestimating here is the right
	// failure mode.
	for _, lb := range lowers {
		half := math.Min(lb.d/2, cfg.MaxRadius)
		x[lb.i] = math.Max(x[lb.i], half)
		x[lb.j] = math.Max(x[lb.j], half)
	}
	for _, lb := range lowers {
		if x[lb.i]+x[lb.j] < lb.d-1e-6 {
			diag.LowerBoundViolations++
		}
	}

	out := make([]APInfo, n)
	for i := range aps {
		in := sn.EntryAt(i)
		in.MaxRange = x[i]
		out[i] = in
	}
	return NewKnowledge(out), diag, nil
}

// MLocInflated runs M-Loc, and on an empty intersection region retries
// with all radii geometrically inflated (steps of 15%) up to maxFactor.
// Pairwise constraints guarantee rᵢ + rⱼ ≥ dᵢⱼ but not a common
// intersection point (Helly needs triples in the plane), so estimated
// radii occasionally leave a device's discs pairwise-touching yet jointly
// empty; Theorem 3 says the safe direction to recover is up.
// The returned estimate's K reports the discs used; the inflation factor
// applied is returned alongside.
func MLocInflated(k Knowledge, gamma []dot11.MAC, maxFactor float64) (Estimate, float64, error) {
	factor := 1.0
	cur := k
	for {
		est, err := MLoc(cur, gamma)
		if err == nil {
			return est, factor, nil
		}
		if !errors.Is(err, ErrEmptyRegion) {
			return Estimate{}, factor, err
		}
		factor *= 1.15
		if factor > maxFactor {
			return Estimate{}, factor, fmt.Errorf("inflated %.2fx: %w", factor, ErrEmptyRegion)
		}
		// MLoc only reads Γ's entries, so the retry knowledge holds just
		// those, re-inflated from the original base each round.
		inflated := make([]APInfo, 0, len(gamma))
		for _, m := range gamma {
			in, ok := k.Get(m)
			if !ok {
				continue
			}
			in.MaxRange *= factor
			inflated = append(inflated, in)
		}
		cur = NewKnowledge(inflated)
	}
}

// APRad is the paper's full AP-Rad algorithm: estimate all AP radii from
// the observed device sets, then locate device target with M-Loc
// (inflating radii if the estimated discs leave an empty region).
func APRad(k Knowledge, deviceSets map[dot11.MAC][]dot11.MAC,
	target dot11.MAC, cfg APRadConfig) (Estimate, error) {
	withRadii, _, err := EstimateRadii(k, deviceSets, cfg)
	if err != nil {
		return Estimate{}, err
	}
	gamma, ok := deviceSets[target]
	if !ok {
		return Estimate{}, fmt.Errorf("core: target %v has no observations: %w",
			target, ErrNoAPs)
	}
	est, _, err := MLocInflated(withRadii, gamma, 4)
	if err != nil {
		return Estimate{}, err
	}
	est.Method = "ap-rad"
	return est, nil
}

// Baselines the paper compares against.

// CentroidBaseline is the prior range-free approach [26]: estimate the
// device position as the centroid of the positions of the APs in Γ. It is
// the baseline the paper shows to be fragile under biased AP distributions
// (Fig 4) and to degrade as k grows (Fig 14).
func CentroidBaseline(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	pts := k.Positions(gamma)
	if len(pts) == 0 {
		return Estimate{}, ErrNoAPs
	}
	c, err := geom.Centroid(pts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Pos: c, K: len(pts), Method: "centroid"}, nil
}

// ClosestAPBaseline is the "closest AP" approach: position the device at
// one AP of Γ. Real systems pick the AP with the strongest received
// signal; with set-only observations the best available proxy is the AP
// with the smallest known coverage radius (hearing a short-range AP
// constrains the device most). APs with unknown radii are treated as
// largest.
func ClosestAPBaseline(k Knowledge, gamma []dot11.MAC) (Estimate, error) {
	best := APInfo{}
	found := false
	for _, m := range gamma {
		in, ok := k.Get(m)
		if !ok {
			continue
		}
		r := in.MaxRange
		if r <= 0 {
			r = 1e18
		}
		bestR := best.MaxRange
		if bestR <= 0 {
			bestR = 1e18
		}
		if !found || r < bestR {
			best = in
			found = true
		}
	}
	if !found {
		return Estimate{}, ErrNoAPs
	}
	return Estimate{Pos: best.Pos, K: 1, Method: "closest-ap"}, nil
}
