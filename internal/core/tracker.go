package core

import (
	"fmt"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Locator is a localization algorithm mapping the attacker's knowledge and
// an observed AP set Γ to an estimate. MLoc, CentroidBaseline and
// ClosestAPBaseline satisfy this signature; prefer the Localizer interface
// (localizer.go), which names the algorithm and lets AP-Rad / AP-Loc carry
// their training state.
type Locator func(Knowledge, []dot11.MAC) (Estimate, error)

// TrackPoint is one position fix of a tracked device.
type TrackPoint struct {
	// TimeSec is the centre of the observation window.
	TimeSec float64 `json:"timeSec"`
	// Est is the location estimate for that window.
	Est Estimate `json:"est"`
}

// Tracker runs continuous localization over an observation store.
//
// Tracker is the sequential, uncached compatibility layer kept for simple
// single-device uses and older call sites. New code should drive
// internal/engine.Engine instead: the engine owns the same
// ingest→observe→localize pipeline but snapshots devices across a worker
// pool, memoizes estimates by Γ, and re-trains AP-Rad / AP-Loc knowledge
// as observations accumulate.
type Tracker struct {
	// Know is the AP knowledge base (external or trained).
	Know Knowledge
	// Store supplies the observations.
	Store *obs.Store
	// WindowSec is the observation window width; a device's Γ for a fix at
	// time t is everything observed in [t−WindowSec/2, t+WindowSec/2).
	WindowSec float64
	// Localizer is the algorithm; it takes precedence over Locate.
	Localizer Localizer
	// Locate is the algorithm as a bare func; nil means MLoc.
	Locate Locator
}

func (t *Tracker) locate(gamma []dot11.MAC) (Estimate, error) {
	if t.Localizer != nil {
		return t.Localizer.Locate(t.Know, gamma)
	}
	if t.Locate != nil {
		return t.Locate(t.Know, gamma)
	}
	return MLoc(t.Know, gamma)
}

// Fix estimates the device's position from the observations in the window
// centred at timeSec.
func (t *Tracker) Fix(dev dot11.MAC, timeSec float64) (Estimate, error) {
	if t.WindowSec <= 0 {
		return Estimate{}, fmt.Errorf("core: tracker needs WindowSec > 0")
	}
	gamma := t.Store.APSetWindow(dev, timeSec-t.WindowSec/2, timeSec+t.WindowSec/2)
	if len(gamma) == 0 {
		return Estimate{}, ErrNoAPs
	}
	return t.locate(gamma)
}

// Track produces fixes for the device every stepSec over [startSec,
// endSec]; windows without observations are skipped. Steps are computed as
// startSec + i·stepSec rather than accumulated, so long ranges do not
// drift.
func (t *Tracker) Track(dev dot11.MAC, startSec, endSec, stepSec float64) ([]TrackPoint, error) {
	if stepSec <= 0 {
		return nil, fmt.Errorf("core: tracker needs stepSec > 0")
	}
	var out []TrackPoint
	for i := 0; ; i++ {
		ts := startSec + float64(i)*stepSec
		if ts > endSec {
			break
		}
		est, err := t.Fix(dev, ts)
		if err != nil {
			continue
		}
		out = append(out, TrackPoint{TimeSec: ts, Est: est})
	}
	return out, nil
}

// Snapshot locates every device with observations in the window centred at
// timeSec — one full frame of the Marauder's map, computed sequentially.
func (t *Tracker) Snapshot(timeSec float64) map[dot11.MAC]Estimate {
	out := make(map[dot11.MAC]Estimate)
	for _, dev := range t.Store.Devices() {
		est, err := t.Fix(dev, timeSec)
		if err != nil {
			continue
		}
		out[dev] = est
	}
	return out
}

// Error returns the Euclidean localization error between an estimate and
// the true position, in metres.
func Error(est Estimate, truth geom.Point) float64 {
	return est.Pos.Dist(truth)
}
