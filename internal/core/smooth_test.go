package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// noisyTrack simulates a device walking east at 1.5 m/s with noisy fixes.
func noisyTrack(n int, noiseStd float64, rng *rand.Rand) ([]TrackPoint, func(float64) geom.Point) {
	truthAt := func(t float64) geom.Point { return geom.Pt(1.5*t, 0) }
	points := make([]TrackPoint, 0, n)
	for i := 0; i < n; i++ {
		ts := float64(i) * 30
		truth := truthAt(ts)
		points = append(points, TrackPoint{
			TimeSec: ts,
			Est: Estimate{
				Pos: geom.Pt(
					truth.X+rng.NormFloat64()*noiseStd,
					truth.Y+rng.NormFloat64()*noiseStd,
				),
				Method: "m-loc",
			},
		})
	}
	return points, truthAt
}

func TestSmoothTrackReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rawSum, smoothSum float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		points, truthAt := noisyTrack(40, 15, rng)
		smoothed, err := SmoothTrack(points, 0.5, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if len(smoothed) != len(points) {
			t.Fatalf("smoothed %d points, want %d", len(smoothed), len(points))
		}
		rawSum += TrackError(points, truthAt)
		smoothSum += TrackError(smoothed, truthAt)
	}
	raw, smooth := rawSum/trials, smoothSum/trials
	if smooth >= raw {
		t.Errorf("smoothing should reduce error: raw %.2f vs smooth %.2f", raw, smooth)
	}
	if smooth > 0.85*raw {
		t.Errorf("smoothing gain too small: raw %.2f vs smooth %.2f", raw, smooth)
	}
}

func TestSmoothTrackValidation(t *testing.T) {
	points, _ := noisyTrack(5, 1, rand.New(rand.NewSource(1)))
	if _, err := SmoothTrack(points, 0, 0.1); err == nil {
		t.Error("want error for alpha=0")
	}
	if _, err := SmoothTrack(points, 0.5, 2); err == nil {
		t.Error("want error for beta>1")
	}
	// Out-of-order timestamps.
	bad := []TrackPoint{{TimeSec: 10}, {TimeSec: 5}}
	if _, err := SmoothTrack(bad, 0.5, 0.1); err == nil {
		t.Error("want error for unordered points")
	}
	// Degenerate inputs.
	if got, err := SmoothTrack(nil, 0.5, 0.1); err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
	one := points[:1]
	got, err := SmoothTrack(one, 0.5, 0.1)
	if err != nil || len(got) != 1 || got[0].Est.Pos != one[0].Est.Pos {
		t.Errorf("single point should pass through: %v, %v", got, err)
	}
}

func TestSmoothTrackMarksMethod(t *testing.T) {
	points, _ := noisyTrack(3, 1, rand.New(rand.NewSource(2)))
	smoothed, err := SmoothTrack(points, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if smoothed[1].Est.Method != "m-loc+smoothed" {
		t.Errorf("method = %q", smoothed[1].Est.Method)
	}
}

func TestTrackError(t *testing.T) {
	if TrackError(nil, nil) != 0 {
		t.Error("empty track error should be 0")
	}
	points := []TrackPoint{
		{TimeSec: 0, Est: Estimate{Pos: geom.Pt(3, 4)}},
		{TimeSec: 1, Est: Estimate{Pos: geom.Pt(0, 0)}},
	}
	truthAt := func(float64) geom.Point { return geom.Pt(0, 0) }
	if got := TrackError(points, truthAt); got != 2.5 {
		t.Errorf("mean error = %v, want 2.5", got)
	}
}
