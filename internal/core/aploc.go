package core

import (
	"fmt"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/wardrive"
)

// APLocConfig tunes the AP-Loc training-based localization.
type APLocConfig struct {
	// TrainingRadius is the theoretical upper bound on AP transmission
	// distance used as the radius of the training-location discs (the
	// paper: "use a theoretical upper bound as the radius").
	TrainingRadius float64
	// Rad configures the subsequent AP-Rad radius estimation.
	Rad APRadConfig
}

// EstimateAPLocations is the first stage of the paper's AP-Loc algorithm:
// for each AP heard in the training set, intersect discs of radius
// TrainingRadius centred at the training locations that heard it, and
// estimate the AP's location as the centroid of the intersection region's
// vertex set (a reuse of M-Loc's machinery with training locations playing
// the role of APs).
func EstimateAPLocations(tuples []wardrive.Tuple, cfg APLocConfig) (Knowledge, error) {
	if cfg.TrainingRadius <= 0 {
		return Knowledge{}, fmt.Errorf("core: AP-Loc needs TrainingRadius > 0, got %v",
			cfg.TrainingRadius)
	}
	aps := wardrive.APsInTraining(tuples)
	if len(aps) == 0 {
		return Knowledge{}, fmt.Errorf("core: training set names no APs: %w", ErrNoAPs)
	}
	infos := make([]APInfo, 0, len(aps))
	for _, ap := range aps {
		locs := wardrive.TuplesForAP(tuples, ap)
		discs := make([]geom.Circle, 0, len(locs))
		for _, l := range locs {
			discs = append(discs, geom.Circle{C: l, R: cfg.TrainingRadius})
		}
		verts := geom.RegionVertices(discs)
		if len(verts) == 0 {
			// Inconsistent training data for this AP (e.g. two hearing
			// locations farther apart than twice the bound); fall back to
			// the centroid of the hearing locations.
			verts = locs
		}
		c, err := geom.Centroid(verts)
		if err != nil {
			return Knowledge{}, fmt.Errorf("core: ap-loc centroid for %v: %w", ap, err)
		}
		infos = append(infos, APInfo{BSSID: ap, Pos: c})
	}
	return NewKnowledge(infos), nil
}

// APLoc is the paper's full AP-Loc algorithm: estimate AP locations from
// training tuples, estimate their radii with AP-Rad over the observed
// device sets, then locate the target device with M-Loc.
func APLoc(tuples []wardrive.Tuple, deviceSets map[dot11.MAC][]dot11.MAC,
	target dot11.MAC, cfg APLocConfig) (Estimate, error) {
	k, err := EstimateAPLocations(tuples, cfg)
	if err != nil {
		return Estimate{}, err
	}
	est, err := APRad(k, deviceSets, target, cfg.Rad)
	if err != nil {
		return Estimate{}, err
	}
	est.Method = "ap-loc"
	return est, nil
}
