package core

import (
	"errors"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
)

func trackerFixture() (*Tracker, dot11.MAC) {
	k := NewKnowledge([]APInfo{
		{BSSID: mac(0xA1), Pos: geom.Pt(-50, 0), MaxRange: 100},
		{BSSID: mac(0xA2), Pos: geom.Pt(50, 0), MaxRange: 100},
		{BSSID: mac(0xA3), Pos: geom.Pt(200, 0), MaxRange: 100},
		{BSSID: mac(0xA4), Pos: geom.Pt(300, 0), MaxRange: 100},
	})
	store := obs.NewStore()
	dev := mac(1)
	// The device is near the origin at t=10 (hears A1, A2), then near
	// (250,0) at t=100 (hears A3, A4).
	store.Ingest(10, dot11.NewProbeResponse(mac(0xA1), dev, "", 1, 1), true)
	store.Ingest(10.5, dot11.NewProbeResponse(mac(0xA2), dev, "", 6, 1), true)
	store.Ingest(100, dot11.NewProbeResponse(mac(0xA3), dev, "", 6, 2), true)
	store.Ingest(100.5, dot11.NewProbeResponse(mac(0xA4), dev, "", 11, 2), true)
	return &Tracker{Know: k, Store: store, WindowSec: 30}, dev
}

func TestTrackerFix(t *testing.T) {
	tr, dev := trackerFixture()
	est, err := tr.Fix(dev, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric pair around origin.
	if est.Pos.Norm() > 1e-6 {
		t.Errorf("fix at t=12: %v, want origin", est.Pos)
	}
	est2, err := tr.Fix(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Pos.Dist(geom.Pt(250, 0)) > 1e-6 {
		t.Errorf("fix at t=100: %v, want (250,0)", est2.Pos)
	}
	// Empty window.
	if _, err := tr.Fix(dev, 500); !errors.Is(err, ErrNoAPs) {
		t.Errorf("empty window: %v", err)
	}
	// Config validation.
	bad := &Tracker{Know: tr.Know, Store: tr.Store}
	if _, err := bad.Fix(dev, 10); err == nil {
		t.Error("want error for zero window")
	}
}

func TestTrackerTrack(t *testing.T) {
	tr, dev := trackerFixture()
	points, err := tr.Track(dev, 0, 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("track points = %d", len(points))
	}
	// The track must move from the origin region to the (250,0) region.
	first, last := points[0], points[len(points)-1]
	if first.Est.Pos.Dist(geom.Pt(0, 0)) > 10 {
		t.Errorf("track start = %v", first.Est.Pos)
	}
	if last.Est.Pos.Dist(geom.Pt(250, 0)) > 10 {
		t.Errorf("track end = %v", last.Est.Pos)
	}
	if _, err := tr.Track(dev, 0, 10, 0); err == nil {
		t.Error("want error for zero step")
	}
}

func TestTrackerSnapshot(t *testing.T) {
	tr, dev := trackerFixture()
	// Second device probing only (no pairwise records): not locatable.
	tr.Store.Ingest(11, dot11.NewProbeRequest(mac(2), "", 1), false)
	snap := tr.Snapshot(11)
	if len(snap) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, ok := snap[dev]; !ok {
		t.Error("tracked device missing from snapshot")
	}
}

func TestTrackerCustomLocator(t *testing.T) {
	tr, dev := trackerFixture()
	tr.Locate = CentroidBaseline
	est, err := tr.Fix(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "centroid" {
		t.Errorf("method = %q", est.Method)
	}
}

func TestErrorMetric(t *testing.T) {
	e := Estimate{Pos: geom.Pt(3, 4)}
	if Error(e, geom.Pt(0, 0)) != 5 {
		t.Error("error metric wrong")
	}
}
