package core

import (
	"fmt"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// RegionTracker carries the per-tracked-device incremental intersection
// state across fixes: the live geom.Region, the Γ it was built from, and
// the knowledge epoch it is valid against. The engine keeps one tracker
// per Track call; MLocTracked diffs each new Γ against the tracker's own
// previous one and updates the region incrementally, falling back to a
// full rebuild when the knowledge changed, the diff is large, or Γ is not
// in canonical order.
//
// A RegionTracker is not safe for concurrent use. The zero value is
// ready to use.
type RegionTracker struct {
	region geom.Region
	epoch  uint64
	valid  bool
	keys   []uint64 // ascending keys of the region's live discs

	kbuf []uint64      // scratch: incoming keys
	cbuf []geom.Circle // scratch: incoming discs, aligned with kbuf
	vbuf []geom.Point  // vertex arena, aliased by returned Estimates

	lastPath    string
	lastAdded   int
	lastRemoved int
	areaOK      bool // region state matches the most recent call's Γ
}

// Tracked-fix provenance values for Provenance.RegionPath.
const (
	// RegionPathFull marks a fix that rebuilt (or bypassed) the region
	// from scratch.
	RegionPathFull = "full"
	// RegionPathIncremental marks a fix served by diffing the previous Γ.
	RegionPathIncremental = "incremental"
)

// LastPath reports how the most recent MLocTracked call computed its
// region: RegionPathIncremental or RegionPathFull ("" before any call).
func (rt *RegionTracker) LastPath() string { return rt.lastPath }

// LastDiff reports how many discs the most recent call added plus
// removed relative to the previous Γ (the full disc count for a rebuild).
func (rt *RegionTracker) LastDiff() int { return rt.lastAdded + rt.lastRemoved }

// Invalidate forces the next MLocTracked call to rebuild from scratch.
func (rt *RegionTracker) Invalidate() { rt.valid = false }

// RegionArea returns the area of the intersection region the most recent
// MLocTracked call worked on, served from the live incremental state —
// the same value RegionArea(know, gamma) would recompute from scratch for
// that call's inputs. ok is false when the tracker holds no region for
// the last Γ (before any call, or when the call bypassed the region on
// the non-canonical or no-AP paths); callers must then fall back to the
// full computation.
func (rt *RegionTracker) RegionArea() (float64, bool) {
	if !rt.areaOK {
		return 0, false
	}
	return rt.region.Area(), true
}

// macKey is the canonical total order on AP identities: the big-endian
// integer value of the MAC, so ascending key is ascending MAC and a
// canonical (sorted, deduplicated) Γ yields a key-sorted disc sequence.
func macKey(m dot11.MAC) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// rebuildThreshold: rebuild from scratch when more than half of the new
// Γ changed — at that point the diff work approaches the rebuild work.
func rebuildThreshold(k int) int { return (k + 1) / 2 }

// MLocTracked is MLoc with incremental region reuse. It produces the
// same Estimate as MLoc on the same inputs — bit-for-bit, because the
// underlying Region reproduces RegionVertices exactly on canonical Γs
// and every fallback routes through the full algorithm — while reusing
// rt's region across calls so a tracked device's per-fix geometry cost
// is proportional to the Γ diff, not to |Γ|².
//
// The returned Estimate's Vertices slice aliases rt's internal arena and
// is valid only until the next call on rt; callers that retain estimates
// must copy it (the engine's Track materializes into a per-call arena).
//
// A nil rt degrades to plain MLoc.
func MLocTracked(k Knowledge, gamma []dot11.MAC, rt *RegionTracker) (Estimate, error) {
	if rt == nil {
		return MLoc(k, gamma)
	}

	// Assemble the incoming key/disc sequence with exactly the filter
	// Knowledge.Discs applies (known AP, own MaxRange, no fallback).
	// When the tracker is valid against this same knowledge epoch, a key
	// already live in the region needs no snapshot lookup at all: the
	// snapshot is immutable per epoch, so membership in rt.keys proves
	// the AP passed the filter with the identical disc last fix. Only
	// genuinely new keys — typically one per slide step — pay a Get; the
	// skipped slots carry a zero disc, which the diff path never reads
	// (it only fetches discs for added keys).
	sn := k.Snapshot()
	epoch := k.Epoch()
	merge := rt.valid && epoch == rt.epoch
	keys := rt.kbuf[:0]
	discs := rt.cbuf[:0]
	canonical := true
	oi := 0 // merge cursor into rt.keys
	for _, m := range gamma {
		key := macKey(m)
		if n := len(keys); n > 0 && keys[n-1] >= key {
			canonical = false
			break
		}
		if merge {
			for oi < len(rt.keys) && rt.keys[oi] < key {
				oi++
			}
			if oi < len(rt.keys) && rt.keys[oi] == key {
				oi++
				keys = append(keys, key)
				discs = append(discs, geom.Circle{})
				continue
			}
		}
		e, ok := sn.Get(m)
		if !ok || e.MaxRange <= 0 {
			continue
		}
		keys = append(keys, key)
		discs = append(discs, geom.Circle{C: e.Pos, R: e.MaxRange})
	}
	rt.kbuf, rt.cbuf = keys, discs

	if !canonical {
		// Γ not sorted/deduplicated: the incremental region's canonical
		// order no longer matches MLoc's disc order, so serve this fix
		// with the plain algorithm. The tracker state stays consistent
		// with its own keys and remains usable for later canonical Γs.
		rt.lastPath = RegionPathFull
		rt.lastAdded, rt.lastRemoved = 0, 0
		rt.areaOK = false
		return MLoc(k, gamma)
	}
	if len(discs) == 0 {
		rt.lastPath = RegionPathFull
		rt.lastAdded, rt.lastRemoved = 0, 0
		rt.areaOK = false
		return Estimate{}, ErrNoAPs
	}

	if !merge {
		rt.rebuild(keys, discs)
		rt.epoch = epoch
	} else if added, removed := diffCount(rt.keys, keys); added+removed > rebuildThreshold(len(keys)) {
		// The rebuild inserts every disc, including the merge-skipped
		// slots; refill those from the snapshot (which must still hold
		// them — they were resolved at this same epoch).
		for i := range discs {
			if discs[i].R == 0 {
				e, _ := sn.Get(keyMAC(keys[i]))
				discs[i] = geom.Circle{C: e.Pos, R: e.MaxRange}
			}
		}
		rt.rebuild(keys, discs)
	} else {
		rt.applyDiff(keys, discs)
		rt.lastPath = RegionPathIncremental
		rt.lastAdded, rt.lastRemoved = added, removed
	}
	rt.areaOK = true

	rt.vbuf = rt.region.AppendVertices(rt.vbuf[:0])
	if len(rt.vbuf) == 0 {
		return Estimate{}, fmt.Errorf("mloc with %d discs: %w", rt.region.Len(), ErrEmptyRegion)
	}
	c, err := geom.Centroid(rt.vbuf)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Pos: c, Vertices: rt.vbuf, K: rt.region.Len(), Method: "m-loc"}, nil
}

// keyMAC inverts macKey.
func keyMAC(key uint64) dot11.MAC {
	return dot11.MAC{byte(key >> 40), byte(key >> 32), byte(key >> 24),
		byte(key >> 16), byte(key >> 8), byte(key)}
}

// rebuild resets the region to exactly the given key/disc sequence.
func (rt *RegionTracker) rebuild(keys []uint64, discs []geom.Circle) {
	rt.region.Reset()
	for i, key := range keys {
		rt.region.Add(key, discs[i])
	}
	rt.keys = append(rt.keys[:0], keys...)
	rt.valid = true
	rt.lastPath = RegionPathFull
	rt.lastAdded, rt.lastRemoved = len(keys), 0
}

// diffCount reports how many keys must be added and removed to turn the
// ascending sequence old into the ascending sequence new.
func diffCount(old, new []uint64) (added, removed int) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] == new[j]:
			i++
			j++
		case old[i] < new[j]:
			removed++
			i++
		default:
			added++
			j++
		}
	}
	removed += len(old) - i
	added += len(new) - j
	return added, removed
}

// applyDiff mutates the region from rt.keys to the new sequence with
// removes first (keeping the intermediate disc count low), then adds.
func (rt *RegionTracker) applyDiff(keys []uint64, discs []geom.Circle) {
	i, j := 0, 0
	for i < len(rt.keys) {
		if j < len(keys) && rt.keys[i] == keys[j] {
			i++
			j++
			continue
		}
		if j < len(keys) && rt.keys[i] > keys[j] {
			j++
			continue
		}
		rt.region.Remove(rt.keys[i])
		i++
	}
	i, j = 0, 0
	for j < len(keys) {
		if i < len(rt.keys) && rt.keys[i] == keys[j] {
			i++
			j++
			continue
		}
		if i < len(rt.keys) && rt.keys[i] < keys[j] {
			i++
			continue
		}
		rt.region.Add(keys[j], discs[j])
		j++
	}
	// Swap the live and scratch key buffers instead of copying; the
	// caller stored the incoming slice in rt.kbuf already, and discs in
	// rt.cbuf, so only the roles flip.
	rt.keys, rt.kbuf = keys, rt.keys
}

// TrackedLocalizer is a Localizer that can serve fixes through a
// RegionTracker, reusing intersection state across a tracked device's
// consecutive Γs. The engine's Track detects it and threads one tracker
// through the trajectory.
type TrackedLocalizer interface {
	Localizer
	// LocateTracked is Locate with incremental region reuse; it must
	// return the same estimate Locate would. The returned Estimate's
	// Vertices may alias rt's arena (valid until the next call on rt).
	LocateTracked(k Knowledge, gamma []dot11.MAC, rt *RegionTracker) (Estimate, error)
}

// LocateTracked implements TrackedLocalizer.
func (MLocalizer) LocateTracked(k Knowledge, gamma []dot11.MAC, rt *RegionTracker) (Estimate, error) {
	return MLocTracked(k, gamma, rt)
}
