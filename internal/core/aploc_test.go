package core

import (
	"math"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/wardrive"
)

// buildTrainingScenario makes a small world, wardrives a route through it,
// and builds device observation sets under the spherical model.
func buildTrainingScenario(t *testing.T) (*sim.World, []wardrive.Tuple,
	map[dot11.MAC][]dot11.MAC, map[dot11.MAC]geom.Point) {
	t.Helper()
	w := sim.NewWorld(21)
	positions := []geom.Point{
		geom.Pt(0, 0), geom.Pt(150, 50), geom.Pt(300, 0),
		geom.Pt(80, 200), geom.Pt(250, 180),
	}
	for i, p := range positions {
		ap, err := sim.NewAP(i, "t", p, 6, 130)
		if err != nil {
			t.Fatal(err)
		}
		w.AddAP(ap)
	}
	// Dense serpentine wardrive covering the area.
	var waypoints []geom.Point
	for y := -50.0; y <= 250; y += 60 {
		if int(y/60)%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-50, y), geom.Pt(350, y))
		} else {
			waypoints = append(waypoints, geom.Pt(350, y), geom.Pt(-50, y))
		}
	}
	route := sim.NewRouteWalk(waypoints, 10)
	tuples := wardrive.Collector{World: w}.CollectAlong(route, 4)
	if len(tuples) < 10 {
		t.Fatalf("too few training tuples: %d", len(tuples))
	}

	sets := make(map[dot11.MAC][]dot11.MAC)
	truths := make(map[dot11.MAC]geom.Point)
	id := 0
	for x := 50.0; x <= 250; x += 100 {
		for y := 0.0; y <= 200; y += 100 {
			pos := geom.Pt(x, y)
			aps := w.CommunicableAPs(pos)
			if len(aps) == 0 {
				continue
			}
			d := sim.NewMAC(0xD0, id)
			id++
			macs := make([]dot11.MAC, 0, len(aps))
			for _, ap := range aps {
				macs = append(macs, ap.MAC)
			}
			sets[d] = macs
			truths[d] = pos
		}
	}
	return w, tuples, sets, truths
}

func TestEstimateAPLocations(t *testing.T) {
	w, tuples, _, _ := buildTrainingScenario(t)
	k, err := EstimateAPLocations(tuples, APLocConfig{TrainingRadius: 130})
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != len(w.APs) {
		t.Fatalf("estimated %d APs, want %d", k.Len(), len(w.APs))
	}
	var total float64
	for _, ap := range w.APs {
		in, ok := k.Get(ap.MAC)
		if !ok {
			t.Fatalf("AP %v not estimated", ap.MAC)
		}
		e := in.Pos.Dist(ap.Pos)
		total += e
		if e > 130 {
			t.Errorf("AP %v location error %.1f m too large", ap.MAC, e)
		}
	}
	if avg := total / float64(len(w.APs)); avg > 70 {
		t.Errorf("average AP location error = %.1f m, want < 70", avg)
	}
}

func TestEstimateAPLocationsValidation(t *testing.T) {
	if _, err := EstimateAPLocations(nil, APLocConfig{}); err == nil {
		t.Error("want error for zero training radius")
	}
	if _, err := EstimateAPLocations(nil, APLocConfig{TrainingRadius: 100}); err == nil {
		t.Error("want error for empty training set")
	}
}

func TestEstimateAPLocationsInconsistentFallback(t *testing.T) {
	// Two hearing locations 500 m apart with a 100 m bound: the discs are
	// disjoint, so AP-Loc falls back to the hearing-location centroid.
	ap := sim.NewMAC(0xA0, 0)
	tuples := []wardrive.Tuple{
		{Pos: geom.Pt(0, 0), APs: []dot11.MAC{ap}},
		{Pos: geom.Pt(500, 0), APs: []dot11.MAC{ap}},
	}
	k, err := EstimateAPLocations(tuples, APLocConfig{TrainingRadius: 100})
	if err != nil {
		t.Fatal(err)
	}
	if in, _ := k.Get(ap); in.Pos != geom.Pt(250, 0) {
		t.Errorf("fallback position = %v, want (250,0)", in.Pos)
	}
}

func TestAPLocEndToEnd(t *testing.T) {
	_, tuples, sets, truths := buildTrainingScenario(t)
	cfg := APLocConfig{
		TrainingRadius: 130,
		Rad:            APRadConfig{MaxRadius: 260},
	}
	var errSum float64
	n := 0
	for dev, truth := range truths {
		est, err := APLoc(tuples, sets, dev, cfg)
		if err != nil {
			continue
		}
		if est.Method != "ap-loc" {
			t.Fatalf("method = %q", est.Method)
		}
		errSum += Error(est, truth)
		n++
	}
	if n == 0 {
		t.Fatal("no device located")
	}
	avg := errSum / float64(n)
	// AP-Loc stacks AP-location error on radius-estimation error; the
	// paper reports ~12 m on its campus with 19 tuples. At this toy scale
	// anything well under the AP range shows the pipeline works.
	if avg > 130 {
		t.Errorf("AP-Loc average error = %.1f m, want < 130", avg)
	}
	if math.IsNaN(avg) {
		t.Fatal("NaN error")
	}
}
