package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
)

func mustMAC(s string) dot11.MAC {
	m, err := dot11.ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// ExampleMLoc locates a device from the set of APs it was observed
// communicating with, given the APs' locations and maximum transmission
// distances.
func ExampleMLoc() {
	ap1 := mustMAC("00:1b:2f:00:00:01")
	ap2 := mustMAC("00:1b:2f:00:00:02")
	know := core.NewKnowledge([]core.APInfo{
		{BSSID: ap1, Pos: geom.Pt(-50, 0), MaxRange: 100},
		{BSSID: ap2, Pos: geom.Pt(50, 0), MaxRange: 100},
	})
	est, err := core.MLoc(know, []dot11.MAC{ap1, ap2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimate %v from k=%d APs\n", est.Pos, est.K)
	// Output: estimate (0.000, 0.000) from k=2 APs
}

// ExampleEstimateRadii shows AP-Rad's radius estimation: co-observation
// forces rᵢ + rⱼ ≥ dᵢⱼ while never-co-observed pairs stay apart.
func ExampleEstimateRadii() {
	ap1 := mustMAC("00:1b:2f:00:00:01")
	ap2 := mustMAC("00:1b:2f:00:00:02")
	know := core.NewKnowledge([]core.APInfo{
		{BSSID: ap1, Pos: geom.Pt(0, 0)},
		{BSSID: ap2, Pos: geom.Pt(120, 0)},
	})
	observations := map[dot11.MAC][]dot11.MAC{
		mustMAC("02:dd:00:00:00:01"): {ap1, ap2}, // one device saw both
	}
	est, _, err := core.EstimateRadii(know, observations,
		core.APRadConfig{MaxRadius: 150})
	if err != nil {
		fmt.Println(err)
		return
	}
	in1, _ := est.Get(ap1)
	in2, _ := est.Get(ap2)
	r1, r2 := in1.MaxRange, in2.MaxRange
	fmt.Printf("r1+r2 >= 120: %v\n", r1+r2 >= 120)
	// Output: r1+r2 >= 120: true
}

// ExampleCentroidBaseline shows the prior-work baseline the paper
// compares against.
func ExampleCentroidBaseline() {
	ap1 := mustMAC("00:1b:2f:00:00:01")
	ap2 := mustMAC("00:1b:2f:00:00:02")
	know := core.NewKnowledge([]core.APInfo{
		{BSSID: ap1, Pos: geom.Pt(0, 0), MaxRange: 100},
		{BSSID: ap2, Pos: geom.Pt(100, 0), MaxRange: 100},
	})
	est, err := core.CentroidBaseline(know, []dot11.MAC{ap1, ap2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(est.Pos)
	// Output: (50.000, 0.000)
}
