package core

import (
	"fmt"

	"repro/internal/geom"
)

// SmoothTrack runs an alpha-beta filter over a sequence of track points,
// fusing each window's noisy M-Loc fix with a constant-velocity motion
// model. Pedestrian victims move slowly and steadily, so smoothing
// typically cuts the per-fix error substantially — an attack improvement
// beyond the paper's per-window estimates.
//
// alpha weights position innovation (0..1, higher trusts measurements
// more) and beta velocity innovation. Typical pedestrian values:
// alpha 0.5, beta 0.1. The input must be time-ordered.
func SmoothTrack(points []TrackPoint, alpha, beta float64) ([]TrackPoint, error) {
	if alpha <= 0 || alpha > 1 || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("core: smoothing gains out of range: alpha=%v beta=%v",
			alpha, beta)
	}
	if len(points) == 0 {
		return nil, nil
	}
	out := make([]TrackPoint, len(points))
	out[0] = points[0]
	pos := points[0].Est.Pos
	var vel geom.Point
	lastT := points[0].TimeSec
	for i := 1; i < len(points); i++ {
		p := points[i]
		dt := p.TimeSec - lastT
		if dt <= 0 {
			return nil, fmt.Errorf("core: track points not time-ordered at index %d", i)
		}
		// Predict.
		pred := pos.Add(vel.Scale(dt))
		// Innovate.
		resid := p.Est.Pos.Sub(pred)
		pos = pred.Add(resid.Scale(alpha))
		vel = vel.Add(resid.Scale(beta / dt))
		lastT = p.TimeSec

		est := p.Est
		est.Pos = pos
		est.Method = p.Est.Method + "+smoothed"
		out[i] = TrackPoint{TimeSec: p.TimeSec, Est: est}
	}
	return out, nil
}

// TrackError summarizes a track against a ground-truth trajectory function
// (time → position), returning the mean error in metres.
func TrackError(points []TrackPoint, truthAt func(float64) geom.Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		sum += p.Est.Pos.Dist(truthAt(p.TimeSec))
	}
	return sum / float64(len(points))
}
