package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// trackKnowledge builds a line of APs 30 m apart with range 150, the
// canonical sliding-Γ fixture.
func trackKnowledge(n int) Knowledge {
	infos := make([]APInfo, n)
	for i := range infos {
		infos[i] = APInfo{
			BSSID:    mac(byte(i + 1)),
			Pos:      geom.Pt(float64(i)*30, 0),
			MaxRange: 150,
		}
	}
	return NewKnowledge(infos)
}

func sameEstimate(t *testing.T, got, want Estimate, step int) {
	t.Helper()
	if got.Pos != want.Pos {
		t.Fatalf("step %d: Pos %v, want %v (not bit-equal)", step, got.Pos, want.Pos)
	}
	if got.K != want.K || got.Method != want.Method {
		t.Fatalf("step %d: K/Method %d/%q, want %d/%q", step, got.K, got.Method, want.K, want.Method)
	}
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("step %d: %d vertices, want %d", step, len(got.Vertices), len(want.Vertices))
	}
	for i := range got.Vertices {
		if got.Vertices[i] != want.Vertices[i] {
			t.Fatalf("step %d: vertex %d = %v, want %v", step, i, got.Vertices[i], want.Vertices[i])
		}
	}
}

// TestMLocTrackedSlidingWindow pins the core contract: across a sliding
// Γ (the tracked-device pattern), MLocTracked returns bit-identical
// estimates to plain MLoc, and takes the incremental path for every ±1
// step after the first.
func TestMLocTrackedSlidingWindow(t *testing.T) {
	const aps, k = 20, 8
	know := trackKnowledge(aps)
	var rt RegionTracker
	for step := 0; step+k <= aps; step++ {
		gamma := make([]dot11.MAC, 0, k)
		for i := step; i < step+k; i++ {
			gamma = append(gamma, mac(byte(i+1)))
		}
		want, wantErr := MLoc(know, gamma)
		got, gotErr := MLocTracked(know, gamma, &rt)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("step %d: err %v, want %v", step, gotErr, wantErr)
		}
		sameEstimate(t, got, want, step)
		wantPath := RegionPathIncremental
		if step == 0 {
			wantPath = RegionPathFull
		}
		if rt.LastPath() != wantPath {
			t.Fatalf("step %d: path %q (diff %d), want %q", step, rt.LastPath(), rt.LastDiff(), wantPath)
		}
		if step > 0 && rt.LastDiff() != 2 {
			t.Fatalf("step %d: diff %d, want 2 (±1 slide)", step, rt.LastDiff())
		}
	}
}

// TestMLocTrackedMatchesMLocRandomized fuzzes Γ churn — including
// overlapping, disjoint and unknown APs — against the plain algorithm.
func TestMLocTrackedMatchesMLocRandomized(t *testing.T) {
	infos := []APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0), MaxRange: 10},
		{BSSID: mac(2), Pos: geom.Pt(8, 0), MaxRange: 10},
		{BSSID: mac(3), Pos: geom.Pt(4, 6), MaxRange: 10},
		{BSSID: mac(4), Pos: geom.Pt(100, 0), MaxRange: 5}, // disjoint from the cluster
		{BSSID: mac(5), Pos: geom.Pt(4, 2), MaxRange: 40},  // contains the cluster
		{BSSID: mac(6), Pos: geom.Pt(0, 0)},                // range unknown: filtered out
	}
	know := NewKnowledge(infos)
	gammas := [][]dot11.MAC{
		{mac(1), mac(2)},
		{mac(1), mac(2), mac(3)},
		{mac(1), mac(2), mac(3), mac(5)},
		{mac(2), mac(3), mac(5)},
		{mac(1), mac(4)}, // empty region
		{mac(1), mac(2), mac(6)},
		{mac(6)},                 // only range-less: no usable APs
		{mac(7), mac(8)},         // unknown APs
		{mac(3)},                 // k=1 degenerates to the AP position
		{mac(2), mac(1), mac(3)}, // non-canonical order: plain-MLoc fallback
		{mac(1), mac(1), mac(2)}, // duplicate: plain-MLoc fallback
		{mac(1), mac(2), mac(3), mac(4), mac(5)},
		{mac(1), mac(2), mac(3), mac(5)},
	}
	var rt RegionTracker
	for step, gamma := range gammas {
		want, wantErr := MLoc(know, gamma)
		got, gotErr := MLocTracked(know, gamma, &rt)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("step %d (Γ=%v): err %q, want %q", step, gamma, gotErr, wantErr)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrNoAPs) && !errors.Is(gotErr, ErrEmptyRegion) {
				t.Fatalf("step %d: unexpected error class %v", step, gotErr)
			}
			continue
		}
		sameEstimate(t, got, want, step)
	}
}

// TestMLocTrackedKnowledgeEpochInvalidation: a knowledge swap must force
// a rebuild against the new snapshot, never reuse stale discs.
func TestMLocTrackedKnowledgeEpochInvalidation(t *testing.T) {
	knowA := trackKnowledge(10)
	// Same MACs, shifted positions: stale reuse would be visibly wrong.
	infos := make([]APInfo, 10)
	for i := range infos {
		infos[i] = APInfo{BSSID: mac(byte(i + 1)), Pos: geom.Pt(float64(i)*30+7, 5), MaxRange: 140}
	}
	knowB := NewKnowledge(infos)

	gamma := []dot11.MAC{mac(1), mac(2), mac(3)}
	var rt RegionTracker
	knows := []Knowledge{knowA, knowA, knowB, knowB, knowA}
	// Every epoch change must rebuild; every same-epoch repeat may reuse.
	wantPaths := []string{
		RegionPathFull, RegionPathIncremental,
		RegionPathFull, RegionPathIncremental,
		RegionPathFull,
	}
	for step, know := range knows {
		want, _ := MLoc(know, gamma)
		got, err := MLocTracked(know, gamma, &rt)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		sameEstimate(t, got, want, step)
		if rt.LastPath() != wantPaths[step] {
			t.Fatalf("step %d: path %q, want %q", step, rt.LastPath(), wantPaths[step])
		}
	}
}

// TestMLocTrackedRebuildThreshold: a Γ replaced wholesale takes the
// rebuild path, not a long chain of removes and adds.
func TestMLocTrackedRebuildThreshold(t *testing.T) {
	know := trackKnowledge(20)
	var rt RegionTracker
	g1 := []dot11.MAC{mac(1), mac(2), mac(3), mac(4)}
	g2 := []dot11.MAC{mac(11), mac(12), mac(13), mac(14)}
	if _, err := MLocTracked(know, g1, &rt); err != nil {
		t.Fatal(err)
	}
	want, _ := MLoc(know, g2)
	got, err := MLocTracked(know, g2, &rt)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, got, want, 1)
	if rt.LastPath() != RegionPathFull {
		t.Fatalf("wholesale Γ swap path %q, want full rebuild", rt.LastPath())
	}
}

// TestMLocTrackedZeroAllocsSteadyState pins the satellite allocation
// gate at the core layer: after warmup, a ±1 sliding fix through
// MLocTracked performs zero allocations.
func TestMLocTrackedZeroAllocsSteadyState(t *testing.T) {
	const aps, k = 40, 8
	know := trackKnowledge(aps)
	gammas := make([][]dot11.MAC, 0, aps-k+1)
	for step := 0; step+k <= aps; step++ {
		gamma := make([]dot11.MAC, 0, k)
		for i := step; i < step+k; i++ {
			gamma = append(gamma, mac(byte(i+1)))
		}
		gammas = append(gammas, gamma)
	}
	var rt RegionTracker
	step := 0
	fix := func() {
		gamma := gammas[step%len(gammas)]
		step++
		if _, err := MLocTracked(know, gamma, &rt); err != nil {
			t.Fatalf("fix %d: %v", step, err)
		}
	}
	for i := 0; i < 2*len(gammas); i++ {
		fix() // warm up arenas across the whole cycle, including the wrap rebuild
	}
	if avg := testing.AllocsPerRun(300, fix); avg != 0 {
		t.Fatalf("steady-state tracked fix allocates %.2f times per fix, want 0", avg)
	}
}

// TestMLocalizerImplementsTrackedLocalizer pins the interface wiring the
// engine relies on: MLocalizer upgrades, the func adapter does not.
func TestMLocalizerImplementsTrackedLocalizer(t *testing.T) {
	var l Localizer = MLocalizer{}
	if _, ok := l.(TrackedLocalizer); !ok {
		t.Fatal("MLocalizer does not implement TrackedLocalizer")
	}
	l = LocalizerFunc{Method: "m-loc", Func: MLoc}
	if _, ok := l.(TrackedLocalizer); ok {
		t.Fatal("LocalizerFunc unexpectedly implements TrackedLocalizer")
	}
	// And the tracked entry point agrees with Locate.
	know := trackKnowledge(8)
	gamma := []dot11.MAC{mac(2), mac(3), mac(4)}
	var rt RegionTracker
	want, _ := MLocalizer{}.Locate(know, gamma)
	got, err := MLocalizer{}.LocateTracked(know, gamma, &rt)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, got, want, 0)
	if math.IsNaN(got.Pos.X) {
		t.Fatal("NaN position")
	}
}
