package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// lineWorld: three APs on a line; device sets establish co-observations.
func lineWorld() (Knowledge, map[dot11.MAC][]dot11.MAC) {
	k := NewKnowledge([]APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0)},
		{BSSID: mac(2), Pos: geom.Pt(100, 0)},
		{BSSID: mac(3), Pos: geom.Pt(300, 0)},
	})
	sets := map[dot11.MAC][]dot11.MAC{
		mac(101): {mac(1), mac(2)}, // co-observes APs 1,2
		mac(102): {mac(2), mac(3)}, // co-observes APs 2,3
	}
	return k, sets
}

func TestEstimateRadiiConstraints(t *testing.T) {
	k, sets := lineWorld()
	out, diag, err := EstimateRadii(k, sets, APRadConfig{MaxRadius: 150})
	if err != nil {
		t.Fatal(err)
	}
	r1 := knownRange(t, out, mac(1))
	r2 := knownRange(t, out, mac(2))
	r3 := knownRange(t, out, mac(3))
	// Co-observed pairs: r1+r2 >= 100, r2+r3 >= 200.
	if r1+r2 < 100-1e-6 {
		t.Errorf("r1+r2 = %v, want >= 100", r1+r2)
	}
	if r2+r3 < 200-1e-6 {
		t.Errorf("r2+r3 = %v, want >= 200", r2+r3)
	}
	// Never co-observed pair (1,3), d=300 > 2*150: pruned, so radii can be
	// driven to the box bound.
	for i, r := range []float64{r1, r2, r3} {
		if r < -1e-9 || r > 150+1e-6 {
			t.Errorf("r%d = %v out of box", i+1, r)
		}
	}
	if diag.LowerBoundViolations != 0 {
		t.Errorf("violations = %d", diag.LowerBoundViolations)
	}
	if diag.Objective <= 0 {
		t.Errorf("objective = %v", diag.Objective)
	}
}

func TestEstimateRadiiNeverCoObservedBinds(t *testing.T) {
	// Two APs 100 m apart never co-observed: r1 + r2 <= 100 - margin.
	k := NewKnowledge([]APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0)},
		{BSSID: mac(2), Pos: geom.Pt(100, 0)},
	})
	sets := map[dot11.MAC][]dot11.MAC{
		mac(101): {mac(1)},
		mac(102): {mac(2)},
	}
	out, _, err := EstimateRadii(k, sets, APRadConfig{MaxRadius: 150, Margin: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := knownRange(t, out, mac(1)) + knownRange(t, out, mac(2))
	if sum > 98+1e-6 {
		t.Errorf("r1+r2 = %v, want <= 98", sum)
	}
	// Maximization should push the sum to the bound.
	if sum < 98-1e-6 {
		t.Errorf("r1+r2 = %v, want = 98 at the maximum", sum)
	}
}

func TestEstimateRadiiKeepLowerBounds(t *testing.T) {
	k, sets := lineWorld()
	_, fastDiag, err := EstimateRadii(k, sets, APRadConfig{MaxRadius: 150})
	if err != nil {
		t.Fatal(err)
	}
	_, slowDiag, err := EstimateRadii(k, sets, APRadConfig{MaxRadius: 150, KeepLowerBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same optimal objective either way (lower bounds never bind at the
	// maximum); the vertex attaining it may differ.
	if math.Abs(fastDiag.Objective-slowDiag.Objective) > 1e-6 {
		t.Errorf("objective: fast %v vs slow %v", fastDiag.Objective, slowDiag.Objective)
	}
	if slowDiag.Constraints <= fastDiag.Constraints {
		t.Error("keeping lower bounds should add constraints")
	}
}

func TestEstimateRadiiValidation(t *testing.T) {
	k, sets := lineWorld()
	if _, _, err := EstimateRadii(k, sets, APRadConfig{}); err == nil {
		t.Error("want error for missing MaxRadius")
	}
	if _, _, err := EstimateRadii(Knowledge{}, sets, APRadConfig{MaxRadius: 100}); !errors.Is(err, ErrNoAPs) {
		t.Errorf("empty knowledge: %v", err)
	}
}

func TestEstimateRadiiInconsistentObservations(t *testing.T) {
	// Device co-observes APs 400 m apart, but MaxRadius is 150: the lower
	// bound r1+r2 >= 400 cannot hold within the box. With dropped lower
	// bounds the LP still solves and reports the violation.
	k := NewKnowledge([]APInfo{
		{BSSID: mac(1), Pos: geom.Pt(0, 0)},
		{BSSID: mac(2), Pos: geom.Pt(400, 0)},
	})
	sets := map[dot11.MAC][]dot11.MAC{mac(101): {mac(1), mac(2)}}
	out, diag, err := EstimateRadii(k, sets, APRadConfig{MaxRadius: 150})
	if err != nil {
		t.Fatal(err)
	}
	if diag.LowerBoundViolations != 1 {
		t.Errorf("violations = %d, want 1", diag.LowerBoundViolations)
	}
	if knownRange(t, out, mac(1)) > 150+1e-6 {
		t.Error("box bound violated")
	}
}

func TestAPRadEndToEnd(t *testing.T) {
	// A grid of APs with true radius 120; devices scattered across the
	// area produce observation sets under the spherical model; AP-Rad must
	// locate a target device reasonably.
	trueR := 120.0
	var aps []APInfo
	id := byte(1)
	for x := 0.0; x <= 400; x += 100 {
		for y := 0.0; y <= 400; y += 100 {
			aps = append(aps, APInfo{BSSID: mac(id), Pos: geom.Pt(x, y)})
			id++
		}
	}
	k := NewKnowledge(aps)
	commAt := func(p geom.Point) []dot11.MAC {
		var g []dot11.MAC
		for _, in := range aps {
			if in.Pos.Dist(p) <= trueR {
				g = append(g, in.BSSID)
			}
		}
		return g
	}
	sets := map[dot11.MAC][]dot11.MAC{}
	devID := byte(100)
	truths := map[dot11.MAC]geom.Point{}
	for x := 50.0; x <= 350; x += 100 {
		for y := 50.0; y <= 350; y += 100 {
			d := mac(devID)
			sets[d] = commAt(geom.Pt(x, y))
			truths[d] = geom.Pt(x, y)
			devID++
		}
	}
	target := mac(100)
	est, err := APRad(k, sets, target, APRadConfig{MaxRadius: 300})
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "ap-rad" {
		t.Errorf("method = %q", est.Method)
	}
	errM := Error(est, truths[target])
	if errM > 150 {
		t.Errorf("AP-Rad error = %.1f m, want < 150 m", errM)
	}
	// Unknown target errors.
	if _, err := APRad(k, sets, mac(200), APRadConfig{MaxRadius: 300}); err == nil {
		t.Error("want error for unobserved target")
	}
}

// knownRange fetches an AP's estimated radius, failing the test when the
// AP is missing from the knowledge base.
func knownRange(t *testing.T, k Knowledge, m dot11.MAC) float64 {
	t.Helper()
	in, ok := k.Get(m)
	if !ok {
		t.Fatalf("AP %v missing from knowledge", m)
	}
	return in.MaxRange
}
