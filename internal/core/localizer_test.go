package core

import (
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/wardrive"
)

func localizerKnow() Knowledge {
	return NewKnowledge([]APInfo{
		{BSSID: mac(0xA1), Pos: geom.Pt(-50, 0), MaxRange: 100},
		{BSSID: mac(0xA2), Pos: geom.Pt(50, 0), MaxRange: 100},
		{BSSID: mac(0xA3), Pos: geom.Pt(0, 60), MaxRange: 80},
	})
}

func TestLocalizerNames(t *testing.T) {
	for _, tc := range []struct {
		loc  Localizer
		want string
	}{
		{MLocalizer{}, "m-loc"},
		{CentroidLocalizer{}, "centroid"},
		{ClosestAPLocalizer{}, "closest-ap"},
		{APRadLocalizer{}, "ap-rad"},
		{&APLocLocalizer{}, "ap-loc"},
		{LocalizerFunc{Method: "custom", Func: MLoc}, "custom"},
	} {
		if got := tc.loc.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestLocalizersMatchDirectCalls(t *testing.T) {
	k := localizerKnow()
	gamma := []dot11.MAC{mac(0xA1), mac(0xA2), mac(0xA3)}
	for _, tc := range []struct {
		loc    Localizer
		direct Locator
	}{
		{MLocalizer{}, MLoc},
		{CentroidLocalizer{}, CentroidBaseline},
		{ClosestAPLocalizer{}, ClosestAPBaseline},
		{LocalizerFunc{Method: "m-loc", Func: MLoc}, MLoc},
	} {
		got, err := tc.loc.Locate(k, gamma)
		if err != nil {
			t.Fatalf("%s: %v", tc.loc.Name(), err)
		}
		want, err := tc.direct(k, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pos != want.Pos || got.K != want.K {
			t.Errorf("%s: Locate = %+v, direct = %+v", tc.loc.Name(), got, want)
		}
	}
}

func TestAPRadLocalizerTrainAndLocate(t *testing.T) {
	base := NewKnowledge([]APInfo{
		{BSSID: mac(0xA1), Pos: geom.Pt(-50, 0)},
		{BSSID: mac(0xA2), Pos: geom.Pt(50, 0)},
		{BSSID: mac(0xA3), Pos: geom.Pt(400, 0)},
	})
	dev := mac(1)
	sets := map[dot11.MAC][]dot11.MAC{
		dev: {mac(0xA1), mac(0xA2)},
	}
	loc := APRadLocalizer{Cfg: APRadConfig{MaxRadius: 150}}
	trained, err := loc.Train(base, sets)
	if err != nil {
		t.Fatal(err)
	}
	// The co-observed pair forces r1 + r2 ≥ 100.
	if sum := knownRange(t, trained, mac(0xA1)) + knownRange(t, trained, mac(0xA2)); sum < 100-1e-6 {
		t.Errorf("trained radii sum = %v, want ≥ 100", sum)
	}
	est, err := loc.Locate(trained, sets[dev])
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "ap-rad" {
		t.Errorf("method = %q", est.Method)
	}
	if est.Pos.Dist(geom.Pt(0, 0)) > 60 {
		t.Errorf("estimate %v implausibly far from the co-observed midpoint", est.Pos)
	}
}

func TestAPLocLocalizerTrainsOnce(t *testing.T) {
	// Two training locations hear the AP; its estimated position must fall
	// between them, and the tuple-based training must be memoized.
	ap := mac(0xB1)
	tuples := []wardrive.Tuple{
		{Pos: geom.Pt(-30, 0), APs: []dot11.MAC{ap}},
		{Pos: geom.Pt(30, 0), APs: []dot11.MAC{ap}},
	}
	loc := &APLocLocalizer{
		Tuples: tuples,
		Cfg:    APLocConfig{TrainingRadius: 100, Rad: APRadConfig{MaxRadius: 150}},
	}
	dev := mac(1)
	sets := map[dot11.MAC][]dot11.MAC{dev: {ap}}
	trained, err := loc.Train(Knowledge{}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Trained.IsZero() {
		t.Fatal("position training not memoized")
	}
	if in, _ := trained.Get(ap); in.Pos.Dist(geom.Pt(0, 0)) > 1e-6 {
		t.Errorf("trained AP position = %v, want origin", in.Pos)
	}
	first := loc.Trained
	if _, err := loc.Train(Knowledge{}, sets); err != nil {
		t.Fatal(err)
	}
	// Memoized: the cached base's backing snapshot itself is reused, not
	// rebuilt.
	if first.Snapshot() != loc.Trained.Snapshot() {
		t.Error("position training reran on second Train call")
	}
	est, err := loc.Locate(trained, sets[dev])
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "ap-loc" {
		t.Errorf("method = %q", est.Method)
	}
}

func TestTrackerLocalizerField(t *testing.T) {
	tr, dev := trackerFixture()
	tr.Localizer = CentroidLocalizer{}
	est, err := tr.Fix(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "centroid" {
		t.Errorf("method = %q", est.Method)
	}
}

func TestTrackerTrackNoDrift(t *testing.T) {
	// With accumulated stepping, 0.1-second steps drift by whole
	// milliseconds over ten thousand iterations; index-based stepping
	// keeps every timestamp exact.
	tr, dev := trackerFixture()
	points, err := tr.Track(dev, 0, 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		i := p.TimeSec / 0.1
		nearest := float64(int(i+0.5)) * 0.1
		if diff := absf(p.TimeSec - nearest); diff > 1e-9 {
			t.Fatalf("timestamp %v drifted %.2e from the step grid", p.TimeSec, diff)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAPRadTrainDiagnosed(t *testing.T) {
	base := NewKnowledge([]APInfo{
		{BSSID: mac(0xA1), Pos: geom.Pt(-50, 0)},
		{BSSID: mac(0xA2), Pos: geom.Pt(50, 0)},
	})
	sets := map[dot11.MAC][]dot11.MAC{
		mac(1): {mac(0xA1), mac(0xA2)},
	}
	loc := APRadLocalizer{Cfg: APRadConfig{MaxRadius: 150}}
	trained, diag, err := loc.TrainDiagnosed(base, sets)
	if err != nil {
		t.Fatal(err)
	}
	if trained.Len() != 2 {
		t.Fatalf("trained %d APs, want 2", trained.Len())
	}
	if diag.Constraints < 1 {
		t.Errorf("diag.Constraints = %d, want the co-observation constraint counted", diag.Constraints)
	}
	if diag.LPIterations < 1 {
		t.Errorf("diag.LPIterations = %d, want the simplex pivots counted", diag.LPIterations)
	}
	if diag.Objective <= 0 {
		t.Errorf("diag.Objective = %v, want the positive radii sum", diag.Objective)
	}
	// Train (the plain KnowledgeTrainer face) must agree with the
	// diagnosed run.
	plain, err := loc.Train(base, sets)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(trained) {
		t.Error("Train and TrainDiagnosed disagree")
	}
}
