// Package wardrive simulates the paper's optional training phase: the
// adversary drives or walks a route through the monitored area with a
// GPS-equipped sniffing laptop (NetStumbler/Kismet-style), recording
// training tuples — (location, set of APs heard there) — that the AP-Loc
// algorithm uses to estimate AP locations when no external knowledge is
// available.
package wardrive

import (
	"math/rand"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Tuple is one training data tuple: where the wardriver was and which APs
// responded to its probes there.
type Tuple struct {
	// Pos is the GPS-reported training location.
	Pos geom.Point `json:"pos"`
	// APs are the BSSIDs heard at that location.
	APs []dot11.MAC `json:"aps"`
}

// Collector configures training-data collection.
type Collector struct {
	// World is the environment being driven through.
	World *sim.World
	// GPSNoiseStdM adds zero-mean Gaussian noise with this standard
	// deviation (metres) to recorded locations, modelling consumer GPS.
	GPSNoiseStdM float64
	// RNG drives the noise; nil disables noise regardless of GPSNoiseStdM.
	RNG *rand.Rand
}

// CollectAlong probes every intervalSec along the route and records one
// tuple per stop that heard at least one AP.
func (c Collector) CollectAlong(route *sim.RouteWalk, intervalSec float64) []Tuple {
	if route == nil || intervalSec <= 0 {
		return nil
	}
	var tuples []Tuple
	total := route.TotalDuration()
	for t := 0.0; t <= total; t += intervalSec {
		tuples = append(tuples, c.collectAt(route.PosAt(t))...)
	}
	return tuples
}

// CollectAt records tuples at explicit training locations.
func (c Collector) CollectAt(points []geom.Point) []Tuple {
	var tuples []Tuple
	for _, p := range points {
		tuples = append(tuples, c.collectAt(p)...)
	}
	return tuples
}

func (c Collector) collectAt(truePos geom.Point) []Tuple {
	aps := c.World.CommunicableAPs(truePos)
	if len(aps) == 0 {
		return nil
	}
	macs := make([]dot11.MAC, 0, len(aps))
	for _, ap := range aps {
		macs = append(macs, ap.MAC)
	}
	rec := truePos
	if c.RNG != nil && c.GPSNoiseStdM > 0 {
		rec.X += c.RNG.NormFloat64() * c.GPSNoiseStdM
		rec.Y += c.RNG.NormFloat64() * c.GPSNoiseStdM
	}
	return []Tuple{{Pos: rec, APs: macs}}
}

// TuplesForAP inverts the training set: the locations from which a given
// AP was heard — the discs AP-Loc intersects to estimate that AP's
// position.
func TuplesForAP(tuples []Tuple, ap dot11.MAC) []geom.Point {
	var out []geom.Point
	for _, t := range tuples {
		for _, m := range t.APs {
			if m == ap {
				out = append(out, t.Pos)
				break
			}
		}
	}
	return out
}

// APsInTraining returns the distinct APs appearing in the training set.
func APsInTraining(tuples []Tuple) []dot11.MAC {
	seen := make(map[dot11.MAC]bool)
	var out []dot11.MAC
	for _, t := range tuples {
		for _, m := range t.APs {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}
