package wardrive

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

func trainingWorld(t *testing.T) *sim.World {
	t.Helper()
	w := sim.NewWorld(1)
	for i, pos := range []geom.Point{geom.Pt(0, 0), geom.Pt(200, 0), geom.Pt(400, 0)} {
		ap, err := sim.NewAP(i, "net", pos, 6, 150)
		if err != nil {
			t.Fatal(err)
		}
		w.AddAP(ap)
	}
	return w
}

func TestCollectAlong(t *testing.T) {
	w := trainingWorld(t)
	route := sim.NewRouteWalk([]geom.Point{geom.Pt(-100, 10), geom.Pt(500, 10)}, 10)
	c := Collector{World: w}
	tuples := c.CollectAlong(route, 5)
	if len(tuples) == 0 {
		t.Fatal("no tuples collected")
	}
	for _, tp := range tuples {
		if len(tp.APs) == 0 {
			t.Error("tuple without APs should have been dropped")
		}
		// Every recorded AP must actually be communicable from the tuple
		// position (no GPS noise configured).
		for _, m := range tp.APs {
			ap, ok := w.APByMAC(m)
			if !ok {
				t.Fatalf("unknown AP %v", m)
			}
			if tp.Pos.Dist(ap.Pos) > ap.MaxRange+1e-9 {
				t.Errorf("AP %v not communicable from %v", m, tp.Pos)
			}
		}
	}
}

func TestCollectAlongDegenerate(t *testing.T) {
	c := Collector{World: trainingWorld(t)}
	if got := c.CollectAlong(nil, 5); got != nil {
		t.Error("nil route should collect nothing")
	}
	route := sim.NewRouteWalk([]geom.Point{geom.Pt(0, 0)}, 1)
	if got := c.CollectAlong(route, 0); got != nil {
		t.Error("non-positive interval should collect nothing")
	}
}

func TestCollectAtSkipsDeadZones(t *testing.T) {
	c := Collector{World: trainingWorld(t)}
	tuples := c.CollectAt([]geom.Point{geom.Pt(0, 0), geom.Pt(9999, 9999)})
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d, want 1 (dead zone dropped)", len(tuples))
	}
}

func TestGPSNoise(t *testing.T) {
	w := trainingWorld(t)
	noisy := Collector{World: w, GPSNoiseStdM: 5, RNG: rand.New(rand.NewSource(3))}
	clean := Collector{World: w}
	p := geom.Pt(10, 10)
	nt := noisy.CollectAt([]geom.Point{p})
	ct := clean.CollectAt([]geom.Point{p})
	if len(nt) != 1 || len(ct) != 1 {
		t.Fatal("expected one tuple each")
	}
	if ct[0].Pos != p {
		t.Error("clean collection must record the true position")
	}
	if nt[0].Pos == p {
		t.Error("noisy collection should perturb the position")
	}
	if nt[0].Pos.Dist(p) > 50 {
		t.Errorf("noise too large: %v", nt[0].Pos.Dist(p))
	}
	// Noise configured but no RNG: disabled.
	noRng := Collector{World: w, GPSNoiseStdM: 5}
	if got := noRng.CollectAt([]geom.Point{p}); got[0].Pos != p {
		t.Error("noise without RNG must be disabled")
	}
}

func TestTuplesForAPAndAPsInTraining(t *testing.T) {
	w := trainingWorld(t)
	c := Collector{World: w}
	tuples := c.CollectAt([]geom.Point{geom.Pt(0, 0), geom.Pt(200, 0), geom.Pt(100, 0)})
	aps := APsInTraining(tuples)
	if len(aps) < 2 {
		t.Fatalf("training should hear at least 2 APs, got %v", aps)
	}
	pts := TuplesForAP(tuples, w.APs[0].MAC)
	if len(pts) == 0 {
		t.Fatal("AP 0 should be heard somewhere")
	}
	for _, p := range pts {
		if p.Dist(w.APs[0].Pos) > w.APs[0].MaxRange+1e-9 {
			t.Errorf("training point %v outside AP range", p)
		}
	}
	if got := TuplesForAP(tuples, sim.NewMAC(0xEE, 1)); len(got) != 0 {
		t.Error("unknown AP should have no tuples")
	}
}
