// Package positioning implements the classic RSS-based self-positioning
// techniques the paper's introduction classifies (trilateration from
// received signal strength, RF fingerprinting) — and that it argues a
// third-party attacker cannot use, because the needed signal-strength
// readings exist only at the victim's own radio.
//
// They are implemented here as baselines: run in self-positioning mode on
// simulated device-side RSS they bound what is achievable WITH signal
// strength; the Marauder's map achieves comparable accuracy with none.
package positioning

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
)

// RSSSample is one AP's signal strength measured at the device, together
// with what the estimator knows about that AP.
type RSSSample struct {
	// Pos is the AP's known position.
	Pos geom.Point
	// RSSIDBm is the measured power.
	RSSIDBm float64
	// EIRPDBm is the AP's effective radiated power.
	EIRPDBm float64
	// FreqHz is the AP's carrier frequency.
	FreqHz float64
}

// Positioning errors.
var (
	ErrTooFewSamples = errors.New("positioning: need at least 3 samples")
	ErrSingular      = errors.New("positioning: geometry is singular")
)

// InvertPathLoss converts a measured RSS back to a distance estimate under
// the model: find d with EIRP − L(d) = rssi by bisection over [1 m, 100 km].
func InvertPathLoss(s RSSSample, model rf.PathLoss) float64 {
	target := s.EIRPDBm - s.RSSIDBm // required loss
	lo, hi := 1.0, 1e5
	if model.LossDB(lo, s.FreqHz) >= target {
		return lo
	}
	if model.LossDB(hi, s.FreqHz) <= target {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: loss is log in d
		if model.LossDB(mid, s.FreqHz) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// Trilaterate estimates the device position from ≥3 RSS samples: invert
// the path-loss model to per-AP distance estimates, solve the linearized
// system, then polish with Gauss-Newton iterations on the nonlinear
// least-squares objective Σ (‖p − pᵢ‖ − dᵢ)².
func Trilaterate(samples []RSSSample, model rf.PathLoss) (geom.Point, error) {
	if len(samples) < 3 {
		return geom.Point{}, ErrTooFewSamples
	}
	dists := make([]float64, len(samples))
	for i, s := range samples {
		dists[i] = InvertPathLoss(s, model)
	}

	// Linearization against the first anchor.
	p0 := samples[0].Pos
	d0 := dists[0]
	var a11, a12, a22, b1, b2 float64
	for i := 1; i < len(samples); i++ {
		pi := samples[i].Pos
		ax := 2 * (pi.X - p0.X)
		ay := 2 * (pi.Y - p0.Y)
		rhs := d0*d0 - dists[i]*dists[i] +
			pi.X*pi.X - p0.X*p0.X + pi.Y*pi.Y - p0.Y*p0.Y
		a11 += ax * ax
		a12 += ax * ay
		a22 += ay * ay
		b1 += ax * rhs
		b2 += ay * rhs
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-9 {
		return geom.Point{}, ErrSingular
	}
	p := geom.Point{
		X: (a22*b1 - a12*b2) / det,
		Y: (a11*b2 - a12*b1) / det,
	}

	// Gauss-Newton refinement.
	for iter := 0; iter < 25; iter++ {
		var jtj11, jtj12, jtj22, jtr1, jtr2 float64
		for i, s := range samples {
			dx := p.X - s.Pos.X
			dy := p.Y - s.Pos.Y
			dist := math.Hypot(dx, dy)
			if dist < 1e-9 {
				continue
			}
			res := dist - dists[i]
			jx, jy := dx/dist, dy/dist
			jtj11 += jx * jx
			jtj12 += jx * jy
			jtj22 += jy * jy
			jtr1 += jx * res
			jtr2 += jy * res
		}
		det := jtj11*jtj22 - jtj12*jtj12
		if math.Abs(det) < 1e-12 {
			break
		}
		stepX := (jtj22*jtr1 - jtj12*jtr2) / det
		stepY := (jtj11*jtr2 - jtj12*jtr1) / det
		p.X -= stepX
		p.Y -= stepY
		if math.Hypot(stepX, stepY) < 1e-6 {
			break
		}
	}
	return p, nil
}

// FingerprintEntry is one training observation of the RF fingerprint
// database: a surveyed location and the RSS vector measured there.
type FingerprintEntry struct {
	Pos geom.Point
	// RSSI maps AP BSSID to the measured power at Pos.
	RSSI map[dot11.MAC]float64
}

// FingerprintDB is a RADAR-style fingerprint positioning database.
type FingerprintDB struct {
	entries []FingerprintEntry
	// MissingPenaltyDB scores an AP heard in only one of the two vectors
	// as if the other reading were this many dB below the weakest shared
	// reading. Defaults to 10.
	MissingPenaltyDB float64
}

// NewFingerprintDB builds a database from training entries.
func NewFingerprintDB(entries []FingerprintEntry) (*FingerprintDB, error) {
	if len(entries) == 0 {
		return nil, errors.New("positioning: empty fingerprint training set")
	}
	for i, e := range entries {
		if len(e.RSSI) == 0 {
			return nil, fmt.Errorf("positioning: training entry %d has no readings", i)
		}
	}
	return &FingerprintDB{
		entries:          append([]FingerprintEntry(nil), entries...),
		MissingPenaltyDB: 10,
	}, nil
}

// Len returns the number of training entries.
func (db *FingerprintDB) Len() int { return len(db.entries) }

// signalDistance is the RADAR signal-space Euclidean distance between two
// RSS vectors, penalizing APs present in only one vector.
func (db *FingerprintDB) signalDistance(a, b map[dot11.MAC]float64) float64 {
	weakest := 0.0
	for _, v := range a {
		weakest = math.Min(weakest, v)
	}
	for _, v := range b {
		weakest = math.Min(weakest, v)
	}
	missing := weakest - db.MissingPenaltyDB
	sum := 0.0
	n := 0
	seen := make(map[dot11.MAC]bool, len(a))
	for ap, va := range a {
		seen[ap] = true
		vb, ok := b[ap]
		if !ok {
			vb = missing
		}
		d := va - vb
		sum += d * d
		n++
	}
	for ap, vb := range b {
		if seen[ap] {
			continue
		}
		d := vb - missing
		sum += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(n))
}

// Locate estimates the position of an RSS vector as the centroid of the k
// nearest training entries in signal space (k-nearest-neighbours, the
// RADAR approach).
func (db *FingerprintDB) Locate(rssi map[dot11.MAC]float64, k int) (geom.Point, error) {
	if len(rssi) == 0 {
		return geom.Point{}, errors.New("positioning: empty RSS vector")
	}
	if k < 1 {
		k = 1
	}
	if k > len(db.entries) {
		k = len(db.entries)
	}
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(db.entries))
	for i, e := range db.entries {
		scores[i] = scored{i, db.signalDistance(rssi, e.RSSI)}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].dist < scores[j].dist })
	var sx, sy float64
	for _, s := range scores[:k] {
		sx += db.entries[s.idx].Pos.X
		sy += db.entries[s.idx].Pos.Y
	}
	return geom.Point{X: sx / float64(k), Y: sy / float64(k)}, nil
}
