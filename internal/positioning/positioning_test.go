package positioning

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
)

var testModel = rf.LogDistance{Exponent: 2.8, RefDistM: 1}

// sampleAt builds a noiseless RSS sample for an AP at pos heard from
// device position dev.
func sampleAt(apPos, dev geom.Point) RSSSample {
	const eirp = 19.0
	const freq = 2.437e9
	d := math.Max(1, apPos.Dist(dev))
	return RSSSample{
		Pos:     apPos,
		RSSIDBm: eirp - testModel.LossDB(d, freq),
		EIRPDBm: eirp,
		FreqHz:  freq,
	}
}

func TestInvertPathLossRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Float64()*2000
		s := sampleAt(geom.Pt(0, 0), geom.Pt(d, 0))
		got := InvertPathLoss(s, testModel)
		return math.Abs(got-d) < 0.01*d+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvertPathLossClamps(t *testing.T) {
	// Absurdly strong signal: distance clamps to the 1 m floor.
	s := RSSSample{Pos: geom.Pt(0, 0), RSSIDBm: 100, EIRPDBm: 19, FreqHz: 2.437e9}
	if got := InvertPathLoss(s, testModel); got != 1 {
		t.Errorf("clamp low = %v", got)
	}
	// Absurdly weak: clamps to the far cap.
	s.RSSIDBm = -300
	if got := InvertPathLoss(s, testModel); got != 1e5 {
		t.Errorf("clamp high = %v", got)
	}
}

func TestTrilaterateExact(t *testing.T) {
	truth := geom.Pt(37, -21)
	anchors := []geom.Point{
		geom.Pt(0, 0), geom.Pt(200, 0), geom.Pt(0, 200), geom.Pt(150, 180),
	}
	samples := make([]RSSSample, 0, len(anchors))
	for _, a := range anchors {
		samples = append(samples, sampleAt(a, truth))
	}
	got, err := Trilaterate(samples, testModel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 0.5 {
		t.Errorf("estimate %v, truth %v, err %.2f", got, truth, got.Dist(truth))
	}
}

func TestTrilaterateErrors(t *testing.T) {
	if _, err := Trilaterate(nil, testModel); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
	// Collinear anchors: singular geometry.
	truth := geom.Pt(10, 50)
	var samples []RSSSample
	for _, x := range []float64{0, 100, 200} {
		samples = append(samples, sampleAt(geom.Pt(x, 0), truth))
	}
	if _, err := Trilaterate(samples, testModel); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear: err = %v", err)
	}
}

func TestTrilaterateNoisyDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := geom.Pt(50, 80)
	anchors := []geom.Point{
		geom.Pt(0, 0), geom.Pt(250, 10), geom.Pt(30, 240),
		geom.Pt(220, 230), geom.Pt(120, -80),
	}
	var sumErr float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		samples := make([]RSSSample, 0, len(anchors))
		for _, a := range anchors {
			s := sampleAt(a, truth)
			s.RSSIDBm += rng.NormFloat64() * 4 // 4 dB shadowing
			samples = append(samples, s)
		}
		got, err := Trilaterate(samples, testModel)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += got.Dist(truth)
	}
	avg := sumErr / trials
	// 4 dB shadowing at n=2.8 gives ~30-40% ranging error; the position
	// error should stay within ~60 m at these anchor distances.
	if avg > 60 {
		t.Errorf("average noisy error = %.1f m", avg)
	}
}

func buildFingerprintDB(t *testing.T, aps map[dot11.MAC]geom.Point, spacing float64) *FingerprintDB {
	t.Helper()
	var entries []FingerprintEntry
	for x := 0.0; x <= 300; x += spacing {
		for y := 0.0; y <= 300; y += spacing {
			pos := geom.Pt(x, y)
			rssi := make(map[dot11.MAC]float64)
			for mac, apPos := range aps {
				s := sampleAt(apPos, pos)
				if s.RSSIDBm > -95 {
					rssi[mac] = s.RSSIDBm
				}
			}
			if len(rssi) > 0 {
				entries = append(entries, FingerprintEntry{Pos: pos, RSSI: rssi})
			}
		}
	}
	db, err := NewFingerprintDB(entries)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func fingerprintAPs() map[dot11.MAC]geom.Point {
	return map[dot11.MAC]geom.Point{
		{0, 0, 0, 0, 0, 1}: geom.Pt(0, 0),
		{0, 0, 0, 0, 0, 2}: geom.Pt(300, 0),
		{0, 0, 0, 0, 0, 3}: geom.Pt(0, 300),
		{0, 0, 0, 0, 0, 4}: geom.Pt(300, 300),
		{0, 0, 0, 0, 0, 5}: geom.Pt(150, 150),
	}
}

func TestFingerprintDBValidation(t *testing.T) {
	if _, err := NewFingerprintDB(nil); err == nil {
		t.Error("want error for empty training set")
	}
	if _, err := NewFingerprintDB([]FingerprintEntry{{Pos: geom.Pt(0, 0)}}); err == nil {
		t.Error("want error for entry without readings")
	}
}

func TestFingerprintLocate(t *testing.T) {
	aps := fingerprintAPs()
	db := buildFingerprintDB(t, aps, 30)
	if db.Len() == 0 {
		t.Fatal("empty db")
	}
	truth := geom.Pt(110, 190)
	rssi := make(map[dot11.MAC]float64)
	for mac, apPos := range aps {
		rssi[mac] = sampleAt(apPos, truth).RSSIDBm
	}
	got, err := db.Locate(rssi, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless query on a 30 m grid: within about one grid cell.
	if got.Dist(truth) > 35 {
		t.Errorf("estimate %v, truth %v, err %.1f", got, truth, got.Dist(truth))
	}
	if _, err := db.Locate(nil, 3); err == nil {
		t.Error("want error for empty query")
	}
	// k larger than the training set clamps.
	if _, err := db.Locate(rssi, 10_000); err != nil {
		t.Errorf("oversized k: %v", err)
	}
}

func TestFingerprintMissingAPPenalty(t *testing.T) {
	db := &FingerprintDB{MissingPenaltyDB: 10}
	a := map[dot11.MAC]float64{{0, 0, 0, 0, 0, 1}: -60}
	b := map[dot11.MAC]float64{{0, 0, 0, 0, 0, 2}: -60}
	shared := map[dot11.MAC]float64{{0, 0, 0, 0, 0, 1}: -60}
	if db.signalDistance(a, shared) != 0 {
		t.Error("identical vectors should have zero distance")
	}
	if db.signalDistance(a, b) <= db.signalDistance(a, shared) {
		t.Error("disjoint vectors should be farther than identical ones")
	}
}
