// Package theory reproduces the paper's analytical results: Theorem 2 (the
// expected intersected area of the disc-intersection approach versus the
// number of communicable APs), Corollary 1 (monotonicity in radius and AP
// density), and Theorem 3 (the effect of over/under-estimating the maximum
// transmission distance). Each closed form is evaluated by adaptive
// quadrature (replacing the paper's Matlab) and cross-validated by Monte
// Carlo simulation of the underlying geometric process.
package theory

import (
	"fmt"
	"math"
)

// Integrate computes ∫ₐᵇ f dx by adaptive Simpson quadrature to the given
// absolute tolerance.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, fmt.Errorf("theory: invalid interval [%v, %v]", a, b)
	}
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	v := adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("theory: integral diverged on [%v, %v]", a, b)
	}
	return v, nil
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	diff := left + right - whole
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		// Non-finite integrand: refining cannot help; surface it so
		// Integrate reports the divergence instead of recursing forever.
		return math.NaN()
	}
	if depth <= 0 || math.Abs(diff) <= 15*tol {
		return left + right + diff/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegratePeaked integrates f over [a, b] when f may be sharply
// concentrated near a (e.g. y·p(y)ᵏ for large k, whose mass sits within
// O(1/k) of zero). Plain adaptive quadrature can terminate before ever
// sampling such a peak; this variant splits [a, b] into dyadic panels
// shrinking toward a so the peak is always straddled by panel endpoints.
func IntegratePeaked(f func(float64) float64, a, b, tol float64) (float64, error) {
	if b < a {
		v, err := IntegratePeaked(f, b, a, tol)
		return -v, err
	}
	if b == a {
		return 0, nil
	}
	width := b - a
	cuts := []float64{b}
	for w := width / 2; w > width/(1<<20); w /= 2 {
		cuts = append(cuts, a+w)
	}
	cuts = append(cuts, a)
	total := 0.0
	for i := len(cuts) - 1; i > 0; i-- {
		v, err := Integrate(f, cuts[i], cuts[i-1], tol/float64(len(cuts)))
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}
