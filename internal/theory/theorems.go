package theory

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// IntersectedArea evaluates Theorem 2: the expected size of the intersected
// area produced by the disc-intersection approach for a mobile device
// communicable with k APs of maximum transmission distance r, when APs are
// uniformly distributed:
//
//	CA = 8πr² ∫₀¹ y·p(y)ᵏ dy,   p(y) = (2/π)(cos⁻¹y − y√(1−y²))
//
// (the paper's Eq. 20 in its unreduced form).
func IntersectedArea(k int, r float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: k must be ≥ 1, got %d", k)
	}
	if r <= 0 {
		return 0, fmt.Errorf("theory: r must be > 0, got %v", r)
	}
	integrand := func(y float64) float64 {
		if y >= 1 {
			return 0
		}
		p := (2 / math.Pi) * (math.Acos(y) - y*math.Sqrt(1-y*y))
		return y * math.Pow(p, float64(k))
	}
	v, err := IntegratePeaked(integrand, 0, 1, 1e-12)
	if err != nil {
		return 0, err
	}
	return 8 * math.Pi * r * r * v, nil
}

// IntersectedAreaForDensity evaluates Corollary 1's density form: with AP
// density ρ (APs per square metre), the expected number of communicable
// APs is k = πr²ρ, and the expected intersected area follows Theorem 2
// with that k (rounded to the nearest integer ≥ 1).
func IntersectedAreaForDensity(r, rho float64) (float64, error) {
	if rho <= 0 {
		return 0, fmt.Errorf("theory: density must be > 0, got %v", rho)
	}
	k := int(math.Round(math.Pi * r * r * rho))
	if k < 1 {
		k = 1
	}
	return IntersectedArea(k, r)
}

// OverestimatedArea evaluates Theorem 3's R ≥ r case: the expected
// intersected area when the true maximum transmission distance is r but
// the attacker uses estimate R:
//
//	CA = π ∫₀^{2R} (A(x; r, R) / (πr²))ᵏ d(x²)
//
// where A(x; r, R) is the lens area of circles with radii r and R at
// centre distance x (A = πr² for x ≤ R − r, since the r-circle then lies
// inside the R-circle).
func OverestimatedArea(k int, r, estR float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: k must be ≥ 1, got %d", k)
	}
	if r <= 0 || estR < r {
		return 0, fmt.Errorf("theory: need estR ≥ r > 0, got r=%v estR=%v", r, estR)
	}
	c1 := geom.Circle{C: geom.Pt(0, 0), R: r}
	// Integrate over u = x² to match the paper's d(x²) measure.
	integrand := func(u float64) float64 {
		x := math.Sqrt(u)
		a := c1.LensArea(geom.Circle{C: geom.Pt(x, 0), R: estR})
		return math.Pow(a/(math.Pi*r*r), float64(k))
	}
	v, err := IntegratePeaked(integrand, 0, 4*estR*estR, 1e-10)
	if err != nil {
		return 0, err
	}
	return math.Pi * v, nil
}

// UnderestimateCoverage evaluates Theorem 3's R < r case: the probability
// that the intersected area computed with underestimate R still covers the
// device's true location, p = (R/r)^{2k}.
func UnderestimateCoverage(k int, r, estR float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: k must be ≥ 1, got %d", k)
	}
	if r <= 0 || estR < 0 || estR >= r {
		return 0, fmt.Errorf("theory: need 0 ≤ estR < r, got r=%v estR=%v", r, estR)
	}
	return math.Pow(estR/r, 2*float64(k)), nil
}

// MonteCarloIntersectedArea estimates Theorem 2's CA empirically: place the
// mobile at the origin, draw k APs uniformly in its communication disc of
// radius r, and average the exact intersection area of the APs'
// maximum-coverage discs (radius estR, which equals r for Theorem 2 and
// exceeds it for Theorem 3) over trials.
func MonteCarloIntersectedArea(k int, r, estR float64, trials int, rng *rand.Rand) (float64, error) {
	if k < 1 || trials < 1 {
		return 0, fmt.Errorf("theory: need k ≥ 1 and trials ≥ 1")
	}
	if r <= 0 || estR <= 0 {
		return 0, fmt.Errorf("theory: need positive radii")
	}
	sum := 0.0
	discs := make([]geom.Circle, k)
	for t := 0; t < trials; t++ {
		for i := 0; i < k; i++ {
			// Uniform in the disc of radius r.
			d := r * math.Sqrt(rng.Float64())
			ang := 2 * math.Pi * rng.Float64()
			discs[i] = geom.Circle{
				C: geom.Pt(d*math.Cos(ang), d*math.Sin(ang)),
				R: estR,
			}
		}
		sum += geom.IntersectionArea(discs)
	}
	return sum / float64(trials), nil
}

// MonteCarloCoverage estimates Theorem 3's underestimate coverage
// probability empirically: the fraction of trials in which discs of radius
// estR around k uniformly-drawn communicable APs still cover the device.
func MonteCarloCoverage(k int, r, estR float64, trials int, rng *rand.Rand) (float64, error) {
	if k < 1 || trials < 1 {
		return 0, fmt.Errorf("theory: need k ≥ 1 and trials ≥ 1")
	}
	if r <= 0 || estR <= 0 {
		return 0, fmt.Errorf("theory: need positive radii")
	}
	hits := 0
	for t := 0; t < trials; t++ {
		covered := true
		for i := 0; i < k; i++ {
			d := r * math.Sqrt(rng.Float64())
			if d > estR {
				covered = false
				break
			}
		}
		if covered {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}
