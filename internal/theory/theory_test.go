package theory

import (
	"math"
	"math/rand"
	"testing"
)

func TestIntegrateKnownValues(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 2 }, 0, 3, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 2, 8.0 / 3},
		{"sin", math.Sin, 0, math.Pi, 2},
		{"reversed", func(x float64) float64 { return 1 }, 2, 0, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Integrate(tt.f, tt.a, tt.b, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-8 {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntegrateEdgeCases(t *testing.T) {
	if v, err := Integrate(math.Sin, 1, 1, 1e-9); err != nil || v != 0 {
		t.Errorf("empty interval: %v, %v", v, err)
	}
	if _, err := Integrate(math.Sin, math.NaN(), 1, 1e-9); err == nil {
		t.Error("want error for NaN bound")
	}
	if _, err := Integrate(func(float64) float64 { return math.Inf(1) }, 0, 1, 1e-9); err == nil {
		t.Error("want error for divergent integrand")
	}
}

func TestIntersectedAreaValidation(t *testing.T) {
	if _, err := IntersectedArea(0, 1); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := IntersectedArea(1, 0); err == nil {
		t.Error("want error for r=0")
	}
}

// Theorem 2 sanity: k=1 means one AP whose disc radius r always covers the
// device; the "intersection" is the whole disc, CA = πr²·E[p] ... for k=1
// the closed form integrates to a value below πr² and above 0.
func TestIntersectedAreaBasicShape(t *testing.T) {
	prev := math.Inf(1)
	for k := 1; k <= 30; k++ {
		ca, err := IntersectedArea(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		// CA(1) is exactly π (the single disc); CA(k>1) is strictly less.
		if ca <= 0 || ca > math.Pi+1e-9 {
			t.Fatalf("k=%d: CA = %v out of (0, π]", k, ca)
		}
		if ca >= prev {
			t.Fatalf("CA must decrease with k (Corollary 1): k=%d %v >= %v", k, ca, prev)
		}
		prev = ca
	}
	// Fig 2's headline is "roughly inversely proportional to k" read off a
	// small-k plot; the exact decay is between 1/k and 1/k² (asymptotically
	// CA → π³r²/(2k²)). Check the decay exponent stays in that band and
	// the asymptotic constant emerges at large k.
	ca10, _ := IntersectedArea(10, 1)
	ca30, _ := IntersectedArea(30, 1)
	ratio := ca10 / ca30
	if ratio < 3 || ratio > 9 { // 1/k would give 3, 1/k² gives 9
		t.Errorf("CA(10)/CA(30) = %v, want within [3, 9]", ratio)
	}
	ca200, _ := IntersectedArea(200, 1)
	asym := math.Pow(math.Pi, 3) / (2 * 200 * 200)
	if math.Abs(ca200-asym) > 0.15*asym {
		t.Errorf("CA(200) = %v, want near asymptote %v", ca200, asym)
	}
}

func TestIntersectedAreaScalesWithR2(t *testing.T) {
	a1, err := IntersectedArea(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := IntersectedArea(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a3-9*a1) > 1e-6 {
		t.Errorf("CA(r=3) = %v, want 9×CA(r=1) = %v", a3, 9*a1)
	}
}

// Theorem 2 vs Monte Carlo: the closed form must match simulation of the
// actual geometric process.
func TestIntersectedAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 4, 8, 15} {
		closed, err := IntersectedArea(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloIntersectedArea(k, 1, 1, 4000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-mc) > 0.12*closed+0.01 {
			t.Errorf("k=%d: closed %v vs MC %v", k, closed, mc)
		}
	}
}

// Corollary 1: CA decreases with density.
func TestIntersectedAreaForDensity(t *testing.T) {
	if _, err := IntersectedAreaForDensity(1, 0); err == nil {
		t.Error("want error for zero density")
	}
	lo, err := IntersectedAreaForDensity(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := IntersectedAreaForDensity(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Errorf("CA at density 10 (%v) must be below density 2 (%v)", hi, lo)
	}
}

func TestOverestimatedArea(t *testing.T) {
	if _, err := OverestimatedArea(0, 1, 2); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := OverestimatedArea(3, 1, 0.5); err == nil {
		t.Error("want error for estR < r")
	}
	// R = r reduces to Theorem 2.
	t2, err := IntersectedArea(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := OverestimatedArea(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t2-t3) > 0.02*t2 {
		t.Errorf("Theorem 3 at R=r (%v) must match Theorem 2 (%v)", t3, t2)
	}
	// Fig 5: area grows rapidly with the overestimate.
	prev := 0.0
	for _, R := range []float64{1, 1.5, 2, 3} {
		ca, err := OverestimatedArea(10, 1, R)
		if err != nil {
			t.Fatal(err)
		}
		if ca <= prev {
			t.Fatalf("CA must grow with R: R=%v CA=%v prev=%v", R, ca, prev)
		}
		prev = ca
	}
}

func TestOverestimatedAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, R := range []float64{1.2, 2} {
		closed, err := OverestimatedArea(6, 1, R)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloIntersectedArea(6, 1, R, 3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-mc) > 0.12*closed+0.02 {
			t.Errorf("R=%v: closed %v vs MC %v", R, closed, mc)
		}
	}
}

func TestUnderestimateCoverage(t *testing.T) {
	if _, err := UnderestimateCoverage(0, 1, 0.5); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := UnderestimateCoverage(3, 1, 1.5); err == nil {
		t.Error("want error for estR >= r")
	}
	p, err := UnderestimateCoverage(10, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.9, 20)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
	// Fig 6's message: the probability collapses for large k.
	p2, err := UnderestimateCoverage(50, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if p2 >= p {
		t.Error("coverage must collapse with k")
	}
}

func TestUnderestimateCoverageMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct {
		k    int
		estR float64
	}{{5, 0.9}, {10, 0.95}, {2, 0.5}} {
		closed, err := UnderestimateCoverage(tc.k, 1, tc.estR)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloCoverage(tc.k, 1, tc.estR, 200000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-mc) > 0.05*closed+0.003 {
			t.Errorf("k=%d R=%v: closed %v vs MC %v", tc.k, tc.estR, closed, mc)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloIntersectedArea(0, 1, 1, 10, rng); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := MonteCarloIntersectedArea(1, -1, 1, 10, rng); err == nil {
		t.Error("want error for bad radius")
	}
	if _, err := MonteCarloCoverage(1, 1, 1, 0, rng); err == nil {
		t.Error("want error for zero trials")
	}
	if _, err := MonteCarloCoverage(1, 0, 1, 10, rng); err == nil {
		t.Error("want error for zero radius")
	}
}

func BenchmarkIntersectedArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := IntersectedArea(10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverestimatedArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OverestimatedArea(10, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}
