package sniffer

import (
	"sort"
	"sync/atomic"

	"repro/internal/rf"
	"repro/internal/sim"
)

// Fleet is a set of cooperating sniffer sites whose captures are merged —
// the natural scale-out of the paper's single-antenna design when one roof
// cannot cover the whole target area. Every member sees the same event
// stream; a frame is captured once if any member decodes it, keeping the
// best-SNR copy.
//
// Members can fail mid-run: SetMemberUp marks a site down (a crashed
// capture host, a severed backhaul) and the fleet keeps producing the
// union of its live members' captures. Health flags are atomic, so a
// monitor goroutine may flip them while the capture loop runs.
type Fleet struct {
	members []*Sniffer
	down    []atomic.Bool // down[i] set means members[i] is offline
}

// NewFleet builds a fleet from sniffer configurations.
func NewFleet(configs ...Config) *Fleet {
	f := &Fleet{
		members: make([]*Sniffer, 0, len(configs)),
		down:    make([]atomic.Bool, len(configs)),
	}
	for _, cfg := range configs {
		f.members = append(f.members, New(cfg))
	}
	return f
}

// Members returns the fleet's sniffer count.
func (f *Fleet) Members() int { return len(f.members) }

// SetMemberUp marks member i online (true) or offline (false). Out-of-
// range indices are ignored.
func (f *Fleet) SetMemberUp(i int, up bool) {
	if i < 0 || i >= len(f.down) {
		return
	}
	f.down[i].Store(!up)
}

// MemberUp reports whether member i is online.
func (f *Fleet) MemberUp(i int) bool {
	return i >= 0 && i < len(f.down) && !f.down[i].Load()
}

// LiveMembers counts the members currently online.
func (f *Fleet) LiveMembers() int {
	n := 0
	for i := range f.down {
		if !f.down[i].Load() {
			n++
		}
	}
	return n
}

// TryCapture reports whether any live fleet member decodes the event; the
// best-SNR capture wins. Offline members decode nothing.
func (f *Fleet) TryCapture(ev sim.TxEvent) (Capture, bool) {
	var best Capture
	ok := false
	for i, s := range f.members {
		if f.down[i].Load() {
			continue
		}
		c, captured := s.TryCapture(ev)
		if !captured {
			continue
		}
		if !ok || c.SNRDB > best.SNRDB {
			best = c
			ok = true
		}
	}
	return best, ok
}

// CaptureAll filters an event stream to frames decoded by at least one
// member, each counted once, in time order.
func (f *Fleet) CaptureAll(events []sim.TxEvent) []Capture {
	out := make([]Capture, 0, len(events))
	for _, ev := range events {
		if c, ok := f.TryCapture(ev); ok {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeSec < out[j].TimeSec })
	return out
}

// CoverageRadii returns each member's on-channel coverage radius for the
// given transmitter, in member order.
func (f *Fleet) CoverageRadii(tx rf.Transmitter) []float64 {
	out := make([]float64, 0, len(f.members))
	for _, s := range f.members {
		out = append(out, s.CoverageRadius(tx))
	}
	return out
}
