package sniffer

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
)

func roofSniffer(extra ...func(*Config)) *Sniffer {
	cfg := Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	}
	for _, f := range extra {
		f(&cfg)
	}
	return New(cfg)
}

func probeEventAt(pos geom.Point, ch int) sim.TxEvent {
	freq, _ := dot11.ChannelFreqHz(ch)
	tx := rf.TypicalMobile
	tx.FreqHz = freq
	return sim.TxEvent{
		TimeSec: 1,
		Pos:     pos,
		Channel: ch,
		Frame:   dot11.NewProbeRequest(dot11.MAC{2, 0, 0, 0, 0, 1}, "", 1),
		TX:      tx,
	}
}

func TestTryCaptureOnChannel(t *testing.T) {
	s := roofSniffer()
	c, ok := s.TryCapture(probeEventAt(geom.Pt(100, 0), 6))
	if !ok {
		t.Fatal("100 m on-channel frame must be captured")
	}
	if c.CardChannel != 6 {
		t.Errorf("card = %d, want 6", c.CardChannel)
	}
	if c.SNRDB <= 0 {
		t.Errorf("SNR = %v", c.SNRDB)
	}
}

func TestTryCaptureOutOfRange(t *testing.T) {
	s := roofSniffer()
	if _, ok := s.TryCapture(probeEventAt(geom.Pt(100000, 0), 6)); ok {
		t.Error("100 km frame must not be captured")
	}
}

// The paper's Fig 9: a transmission on channel 11 is recognized by the
// channel-11 card but not by cards on neighbouring channels.
func TestCrossChannelRejection(t *testing.T) {
	for rx := 1; rx <= 11; rx++ {
		s := roofSniffer(func(c *Config) {
			c.Plan = dot11.ChannelPlan{Cards: []int{rx}}
		})
		_, ok := s.TryCapture(probeEventAt(geom.Pt(500, 0), 11))
		if rx == 11 && !ok {
			t.Errorf("card on 11 must decode channel 11")
		}
		if rx != 11 && ok {
			t.Errorf("card on %d should not decode a 500 m channel-11 frame", rx)
		}
	}
}

func TestTerrainBlocksCapture(t *testing.T) {
	blocked := roofSniffer(func(c *Config) {
		c.Terrain = sim.Hills{{Center: geom.Pt(400, 0), Radius: 50, LossDB: 60}}
	})
	open := roofSniffer()
	ev := probeEventAt(geom.Pt(800, 0), 6)
	if _, ok := open.TryCapture(ev); !ok {
		t.Fatal("unobstructed 800 m frame should be captured by the LNA chain")
	}
	if _, ok := blocked.TryCapture(ev); ok {
		t.Error("hill-obstructed frame should be lost")
	}
	evSide := probeEventAt(geom.Pt(0, 800), 6)
	if _, ok := blocked.TryCapture(evSide); !ok {
		t.Error("frame from an unobstructed bearing should be captured")
	}
}

func TestCaptureAllAndCoverage(t *testing.T) {
	s := roofSniffer()
	evs := []sim.TxEvent{
		probeEventAt(geom.Pt(50, 0), 1),
		probeEventAt(geom.Pt(50, 0), 3), // off-plan channel
		probeEventAt(geom.Pt(99999, 0), 6),
	}
	caps := s.CaptureAll(evs)
	if len(caps) != 1 {
		t.Fatalf("captured %d, want 1", len(caps))
	}
	r := s.CoverageRadius(rf.TypicalMobile)
	if r < 500 || r > 2500 {
		t.Errorf("LNA coverage radius = %v m, want ~1 km", r)
	}
}

func TestBetterChainCapturesMore(t *testing.T) {
	lna := roofSniffer()
	dlink := roofSniffer(func(c *Config) { c.Chain = rf.ChainDLink() })
	// A frame at 400 m: LNA hears it, the bare DLink card does not.
	ev := probeEventAt(geom.Pt(400, 0), 6)
	if _, ok := lna.TryCapture(ev); !ok {
		t.Error("LNA chain should capture at 400 m")
	}
	if _, ok := dlink.TryCapture(ev); ok {
		t.Error("DLink card should not capture at 400 m")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	s := roofSniffer()
	w := sim.NewWorld(1)
	ap, err := sim.NewAP(0, "net", geom.Pt(50, 0), 6, 150)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAP(ap)
	dev := &sim.Device{MAC: sim.NewMAC(0xD0, 1), Home: geom.Pt(20, 0), TX: rf.TypicalMobile}
	w.AddDevice(dev)
	evs := sim.ScanBurst(w, dev, 0, dev.Home, 1)
	caps := s.CaptureAll(evs)
	if len(caps) == 0 {
		t.Fatal("no captures")
	}
	var buf bytes.Buffer
	start := time.Date(2008, 10, 24, 0, 0, 0, 0, time.UTC)
	if err := s.WritePcap(&buf, start, caps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(caps) {
		t.Fatalf("round trip %d != %d", len(got), len(caps))
	}
	for i := range got {
		if got[i].Frame.Subtype != caps[i].Frame.Subtype {
			t.Errorf("capture %d subtype mismatch", i)
		}
		if math.Abs(got[i].TimeSec-caps[i].TimeSec) > 1e-3 {
			t.Errorf("capture %d time %v vs %v", i, got[i].TimeSec, caps[i].TimeSec)
		}
	}
}

func TestWritePcapEmptyStillHasHeader(t *testing.T) {
	s := roofSniffer()
	var buf bytes.Buffer
	if err := s.WritePcap(&buf, time.Now(), nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Errorf("empty pcap = %d bytes, want 24", buf.Len())
	}
}

// Active attack: quiet devices that never probe are provoked into scan
// bursts, so the sniffer sees probe requests from them too.
func TestActiveAttackProvokesQuietDevices(t *testing.T) {
	w := sim.NewWorld(2)
	ap, err := sim.NewAP(0, "net", geom.Pt(0, 0), 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAP(ap)
	quiet := &sim.Device{
		MAC:     sim.NewMAC(0xD0, 9),
		Profile: sim.ProfileQuietClient,
		Home:    geom.Pt(50, 0),
		TX:      rf.TypicalMobile,
	}
	w.AddDevice(quiet)
	evs := ActiveAttack(w, 10)
	sawDeauth, sawProbe := false, false
	for _, ev := range evs {
		switch ev.Frame.Subtype {
		case dot11.SubtypeDeauth:
			sawDeauth = true
			if ev.Frame.Addr1 != quiet.MAC {
				t.Error("deauth must target the device")
			}
		case dot11.SubtypeProbeRequest:
			if ev.Frame.Addr2 == quiet.MAC {
				sawProbe = true
			}
		}
	}
	if !sawDeauth || !sawProbe {
		t.Errorf("deauth=%v probe=%v, want both", sawDeauth, sawProbe)
	}
	// A device out of everyone's range is not attackable.
	w2 := sim.NewWorld(3)
	w2.AddAP(ap)
	w2.AddDevice(&sim.Device{MAC: sim.NewMAC(0xD0, 10), Home: geom.Pt(9999, 9999)})
	if evs := ActiveAttack(w2, 0); len(evs) != 0 {
		t.Errorf("unreachable device provoked %d events", len(evs))
	}
}

func BenchmarkCaptureAll(b *testing.B) {
	s := roofSniffer()
	w := sim.NewWorld(7)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N: 100, Min: geom.Pt(-500, -500), Max: geom.Pt(500, 500),
		RangeMin: 100, RangeMax: 100,
	}, w.RNG())
	if err != nil {
		b.Fatal(err)
	}
	w.APs = aps
	dev := &sim.Device{MAC: sim.NewMAC(0xD0, 1), Home: geom.Pt(100, 100), TX: rf.TypicalMobile}
	evs := sim.ScanBurst(w, dev, 0, dev.Home, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CaptureAll(evs)
	}
}

func TestPcapRadiotapRoundTrip(t *testing.T) {
	s := roofSniffer()
	evs := []sim.TxEvent{
		probeEventAt(geom.Pt(50, 0), 1),
		probeEventAt(geom.Pt(80, 20), 6),
		probeEventAt(geom.Pt(200, -40), 11),
	}
	caps := s.CaptureAll(evs)
	if len(caps) != 3 {
		t.Fatalf("captured %d", len(caps))
	}
	var buf bytes.Buffer
	start := time.Date(2008, 10, 24, 0, 0, 0, 0, time.UTC)
	if err := s.WritePcapRadiotap(&buf, start, caps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d", len(got))
	}
	for i := range got {
		if got[i].Channel != caps[i].Channel {
			t.Errorf("capture %d channel = %d, want %d", i, got[i].Channel, caps[i].Channel)
		}
		// SNR round-trips through integer dBm fields: within 1 dB.
		if math.Abs(got[i].SNRDB-caps[i].SNRDB) > 1.0 {
			t.Errorf("capture %d snr = %v, want ~%v", i, got[i].SNRDB, caps[i].SNRDB)
		}
	}
}
