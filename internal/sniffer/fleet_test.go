package sniffer

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
)

func TestFleetWidensCoverage(t *testing.T) {
	single := NewFleet(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	pair := NewFleet(
		Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()},
		Config{Pos: geom.Pt(2000, 0), Chain: rf.ChainLNA()},
	)
	if single.Members() != 1 || pair.Members() != 2 {
		t.Fatal("member counts wrong")
	}
	// A frame near the second site: only the pair captures it.
	far := probeEventAt(geom.Pt(2100, 0), 6)
	if _, ok := single.TryCapture(far); ok {
		t.Error("single site should miss the far frame")
	}
	if _, ok := pair.TryCapture(far); !ok {
		t.Error("fleet should capture near its second site")
	}
}

func TestFleetDeduplicatesAndKeepsBestSNR(t *testing.T) {
	pair := NewFleet(
		Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()},
		Config{Pos: geom.Pt(500, 0), Chain: rf.ChainLNA()},
	)
	// A frame near site 2: both decode, but site 2's SNR is higher.
	ev := probeEventAt(geom.Pt(450, 0), 6)
	got := pair.CaptureAll([]sim.TxEvent{ev})
	if len(got) != 1 {
		t.Fatalf("captured %d copies, want 1", len(got))
	}
	near := New(Config{Pos: geom.Pt(500, 0), Chain: rf.ChainLNA()})
	want, ok := near.TryCapture(ev)
	if !ok {
		t.Fatal("near site should capture")
	}
	if got[0].SNRDB != want.SNRDB {
		t.Errorf("fleet kept SNR %v, want the better %v", got[0].SNRDB, want.SNRDB)
	}
}

func TestFleetCoverageRadii(t *testing.T) {
	fleet := NewFleet(
		Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()},
		Config{Pos: geom.Pt(0, 0), Chain: rf.ChainDLink()},
	)
	radii := fleet.CoverageRadii(rf.TypicalMobile)
	if len(radii) != 2 || radii[0] <= radii[1] {
		t.Errorf("radii = %v, want LNA > DLink", radii)
	}
}

func TestFleetTimeOrder(t *testing.T) {
	fleet := NewFleet(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	a := probeEventAt(geom.Pt(10, 0), 6)
	b := probeEventAt(geom.Pt(20, 0), 1)
	a.TimeSec = 5
	b.TimeSec = 1
	caps := fleet.CaptureAll([]sim.TxEvent{a, b})
	if len(caps) != 2 || caps[0].TimeSec > caps[1].TimeSec {
		t.Errorf("captures not time-ordered: %+v", caps)
	}
}
