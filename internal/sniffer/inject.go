package sniffer

import (
	"repro/internal/faults"
)

// FaultInjector applies a fault plan's delivery-path perturbations to
// capture batches on their way from the sniffer to the engine: per-frame
// drop/corruption/duplication, per-frame clock skew and jitter, per-batch
// reordering, and per-batch delay (a delayed batch is held and delivered
// together with the next one — call Drain at end of run to flush the last
// held batch).
//
// The injector sits between CaptureAllInto and engine.IngestCaptures, so
// card-level faults (which the sniffer itself models) and delivery-level
// faults compose the way they do in a real receiver chain. It is not safe
// for concurrent use; each capture loop owns one injector, matching the
// single-goroutine delivery path of cmd/marauder and cmd/replay.
type FaultInjector struct {
	// Plan is the armed fault plan; nil makes Apply a pass-through.
	Plan *faults.Plan

	held []Capture // delayed batch awaiting the next delivery
}

// Apply perturbs one capture batch and returns what actually gets
// delivered now: the previously held batch (if any) plus this batch's
// surviving frames, possibly reordered — or nothing, when the plan delays
// the whole delivery.
func (fi *FaultInjector) Apply(batch []Capture) []Capture {
	if fi == nil || !fi.Plan.Enabled() {
		return batch
	}
	out := fi.held
	fi.held = nil
	for _, c := range batch {
		c.TimeSec = fi.Plan.PerturbTime(c.TimeSec)
		switch fi.Plan.FrameOutcome() {
		case faults.Drop:
			continue
		case faults.Corrupt:
			out = append(out, corruptCapture(fi.Plan, c))
		case faults.Duplicate:
			out = append(out, c, c)
		default:
			out = append(out, c)
		}
	}
	if perm, ok := fi.Plan.ShuffleBatch(len(out)); ok {
		shuffled := make([]Capture, len(out))
		for i, j := range perm {
			shuffled[i] = out[j]
		}
		out = shuffled
	}
	if len(out) > 0 && fi.Plan.DelayBatch() {
		fi.held = out
		return nil
	}
	return out
}

// Drain returns any still-held delayed batch; the capture loop calls it
// once after the last Apply so a delayed batch is late, never lost.
func (fi *FaultInjector) Drain() []Capture {
	if fi == nil {
		return nil
	}
	out := fi.held
	fi.held = nil
	return out
}

// Held reports how many captures are currently delayed.
func (fi *FaultInjector) Held() int {
	if fi == nil {
		return 0
	}
	return len(fi.held)
}

// corruptCapture mangles a capture the way RF corruption does: the
// encoded frame takes bit flips, which break the FCS, so the capture
// keeps only raw bytes and loses its decoded frame. The engine quarantines
// such captures instead of ingesting or silently dropping them.
func corruptCapture(p *faults.Plan, c Capture) Capture {
	if c.Frame != nil {
		if raw, err := c.Frame.Encode(); err == nil {
			c.Raw = p.CorruptBytes(raw)
		}
	} else if len(c.Raw) > 0 {
		c.Raw = p.CorruptBytes(append([]byte(nil), c.Raw...))
	}
	c.Frame = nil
	return c
}
