// Package sniffer implements the digital Marauder's map wireless traffic
// capture component: a receiver chain (package rf) split across several
// monitoring cards on a channel plan (package dot11), capturing the
// simulated 802.11 traffic of package sim.
//
// Each transmitted frame is captured iff (i) some card listens on exactly
// the frame's channel (the paper's Fig 9 shows adjacent-channel decoding
// does not happen in practice, however strong the leaked energy) and
// (ii) the link budget closes: the frame's SNR at the sniffer, after path
// loss and terrain obstruction, exceeds the card's minimum.
package sniffer

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/pcap"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Process-wide capture metrics: how much of the air the sniffer actually
// decodes. A dropped frame is one no monitoring card could decode — the
// link budget didn't close or no card sat near the transmit channel — and
// is otherwise invisible: it never reaches the observation store.
var (
	mCaptured = telemetry.Default().Counter(
		"marauder_sniffer_frames_captured_total",
		"Transmitted frames the sniffer decoded.", nil)
	mDropped = telemetry.Default().Counter(
		"marauder_sniffer_frames_dropped_total",
		"Transmitted frames no monitoring card could decode.", nil)
)

// Config configures a sniffer deployment.
type Config struct {
	// Pos is the sniffer's position (e.g. the CS building roof).
	Pos geom.Point
	// Chain is the receiver chain (antenna, LNA, splitter, card).
	Chain rf.Chain
	// Plan assigns monitoring cards to channels.
	Plan dot11.ChannelPlan
	// Terrain adds obstruction loss; nil means flat.
	Terrain sim.Terrain
	// PathLoss is the propagation model; nil uses log-distance n=2.8.
	PathLoss rf.PathLoss
}

// Sniffer captures wireless traffic at a fixed location.
type Sniffer struct {
	cfg Config
}

// New creates a Sniffer, applying defaults for unset optional fields.
func New(cfg Config) *Sniffer {
	if cfg.PathLoss == nil {
		cfg.PathLoss = rf.LogDistance{Exponent: 2.8, RefDistM: 1}
	}
	if cfg.Terrain == nil {
		cfg.Terrain = sim.Flat{}
	}
	if len(cfg.Plan.Cards) == 0 {
		cfg.Plan = dot11.DefaultPlan()
	}
	return &Sniffer{cfg: cfg}
}

// Capture is one successfully decoded frame.
type Capture struct {
	// TimeSec is the capture time in trace seconds.
	TimeSec float64
	// Frame is the decoded frame.
	Frame *dot11.Frame
	// Channel is the frame's transmit channel.
	Channel int
	// CardChannel is the monitoring card that decoded it.
	CardChannel int
	// SNRDB is the demodulator SNR.
	SNRDB float64
	// FromAP marks AP-originated frames.
	FromAP bool
}

// snr computes the frame's SNR at the sniffer including terrain loss and
// cross-channel leakage.
func (s *Sniffer) snr(ev sim.TxEvent, cardCh int) float64 {
	d := ev.Pos.Dist(s.cfg.Pos)
	base := rf.SNRDB(ev.TX, s.cfg.Chain, math.Max(d, 1), s.cfg.PathLoss)
	base -= s.cfg.Terrain.ExtraLossDB(ev.Pos, s.cfg.Pos)
	base -= dot11.LeakageDB(ev.Channel, cardCh)
	return base
}

// TryCapture reports whether the sniffer decodes the event, and on which
// card with what SNR. When several cards can decode it, the best SNR wins.
func (s *Sniffer) TryCapture(ev sim.TxEvent) (Capture, bool) {
	best := Capture{SNRDB: math.Inf(-1)}
	ok := false
	for _, cardCh := range s.cfg.Plan.Cards {
		snr := s.snr(ev, cardCh)
		if snr <= s.cfg.Chain.Card.SNRMinDB {
			continue
		}
		if !dot11.DecodableCrossChannel(ev.Channel, cardCh) {
			continue
		}
		if snr > best.SNRDB {
			best = Capture{
				TimeSec:     ev.TimeSec,
				Frame:       ev.Frame,
				Channel:     ev.Channel,
				CardChannel: cardCh,
				SNRDB:       snr,
				FromAP:      ev.FromAP,
			}
			ok = true
		}
	}
	if ok {
		mCaptured.Inc()
	} else {
		mDropped.Inc()
	}
	return best, ok
}

// CaptureAll filters an event stream to the frames this sniffer decodes.
func (s *Sniffer) CaptureAll(events []sim.TxEvent) []Capture {
	return s.CaptureAllInto(make([]Capture, 0, len(events)), events)
}

// CaptureAllInto appends the decoded frames to dst and returns the
// extended slice — the allocation-friendly form for delivery loops that
// accumulate a capture batch across scan bursts and hand it to a batched
// ingest path (engine.IngestCaptures) in one call instead of paying a
// store lock round-trip per frame.
func (s *Sniffer) CaptureAllInto(dst []Capture, events []sim.TxEvent) []Capture {
	for _, ev := range events {
		if c, ok := s.TryCapture(ev); ok {
			dst = append(dst, c)
		}
	}
	return dst
}

// CoverageRadius returns the maximum distance at which the sniffer decodes
// an on-channel frame from the given transmitter under its propagation
// model (ignoring terrain, which is direction-dependent).
func (s *Sniffer) CoverageRadius(tx rf.Transmitter) float64 {
	return rf.CoverageRadiusModel(tx, s.cfg.Chain, s.cfg.PathLoss, 1e6)
}

// LinkTypeRadiotap is pcap link type 127 (radiotap-prefixed 802.11).
const LinkTypeRadiotap pcap.LinkType = 127

// WritePcap serializes captures to a pcap stream (LinkTypeIEEE80211) with
// timestamps offset from the given start time.
func (s *Sniffer) WritePcap(w io.Writer, start time.Time, caps []Capture) error {
	return s.writePcap(w, start, caps, false)
}

// WritePcapRadiotap serializes captures with a radiotap header per frame
// (LinkType 127), preserving capture channel and signal strength the way
// real sniffing stacks do.
func (s *Sniffer) WritePcapRadiotap(w io.Writer, start time.Time, caps []Capture) error {
	return s.writePcap(w, start, caps, true)
}

func (s *Sniffer) writePcap(w io.Writer, start time.Time, caps []Capture, radiotap bool) error {
	link := pcap.LinkTypeIEEE80211
	if radiotap {
		link = LinkTypeRadiotap
	}
	pw := pcap.NewWriter(w, link)
	for i, c := range caps {
		raw, err := c.Frame.Encode()
		if err != nil {
			return fmt.Errorf("sniffer: encode capture %d: %w", i, err)
		}
		if radiotap {
			freq, err := dot11.ChannelFreqHz(c.Channel)
			if err != nil {
				return fmt.Errorf("sniffer: capture %d channel: %w", i, err)
			}
			noise := rf.ThermalNoiseDBmPerHz + s.cfg.Chain.NoiseFigureDB() +
				10*math.Log10(s.cfg.Chain.Card.BandwidthHz)
			raw = dot11.EncodeRadiotap(dot11.Radiotap{
				ChannelMHz: uint16(freq / 1e6),
				SignalDBm:  clampI8(c.SNRDB + noise),
				NoiseDBm:   clampI8(noise),
			}, raw)
		}
		ts := start.Add(time.Duration(c.TimeSec * float64(time.Second)))
		if err := pw.WritePacket(pcap.Packet{Time: ts, Data: raw}); err != nil {
			return fmt.Errorf("sniffer: write capture %d: %w", i, err)
		}
	}
	return pw.WriteHeader()
}

func clampI8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// ReadPcap parses a pcap stream back into captures. Radiotap captures
// (link type 127) restore per-frame channel and signal; bare-802.11
// captures come back with zero channel and SNR.
func ReadPcap(r io.Reader, start time.Time) ([]Capture, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	pkts, err := pr.ReadAll()
	if err != nil {
		return nil, err
	}
	caps := make([]Capture, 0, len(pkts))
	for i, p := range pkts {
		data := p.Data
		var c Capture
		if pr.LinkType() == LinkTypeRadiotap {
			rt, body, err := dot11.DecodeRadiotap(data)
			if err != nil {
				return nil, fmt.Errorf("sniffer: radiotap packet %d: %w", i, err)
			}
			data = body
			c.Channel = rt.Channel()
			c.SNRDB = float64(rt.SignalDBm) - float64(rt.NoiseDBm)
		}
		f, err := dot11.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("sniffer: decode packet %d: %w", i, err)
		}
		c.TimeSec = p.Time.Sub(start).Seconds()
		c.Frame = f
		caps = append(caps, c)
	}
	return caps, nil
}

// ActiveAttack models the paper's active probing-traffic collection: the
// adversary transmits spoofed deauthentication frames, forcing associated
// (quiet) devices to rescan. It returns the provoked traffic: a deauth per
// device followed by the device's scan burst, raising the fraction of
// probing mobiles toward 100%.
func ActiveAttack(w *sim.World, atTimeSec float64) []sim.TxEvent {
	var events []sim.TxEvent
	seq := uint16(1)
	for _, dev := range w.Devices {
		pos := dev.PosAt(atTimeSec)
		aps := w.CommunicableAPs(pos)
		if len(aps) == 0 {
			continue
		}
		deauth := &dot11.Frame{
			Type:    dot11.TypeManagement,
			Subtype: dot11.SubtypeDeauth,
			Addr1:   dev.MAC,
			Addr2:   aps[0].MAC, // spoofed as the AP
			Addr3:   aps[0].MAC,
			Seq:     seq,
		}
		tx := rf.TypicalAP
		tx.FreqHz = aps[0].TX.FreqHz
		events = append(events, sim.TxEvent{
			TimeSec: atTimeSec,
			Pos:     pos, // attack frame reaches the device; attacker position immaterial here
			Channel: aps[0].Channel,
			Frame:   deauth,
			TX:      tx,
		})
		// The deauthenticated client rescans 100 ms later.
		events = append(events, sim.ScanBurst(w, dev, atTimeSec+0.1, pos, seq+1)...)
		seq += 2
	}
	return events
}
