// Package sniffer implements the digital Marauder's map wireless traffic
// capture component: a receiver chain (package rf) split across several
// monitoring cards on a channel plan (package dot11), capturing the
// simulated 802.11 traffic of package sim.
//
// Each transmitted frame is captured iff (i) some card listens on exactly
// the frame's channel (the paper's Fig 9 shows adjacent-channel decoding
// does not happen in practice, however strong the leaked energy) and
// (ii) the link budget closes: the frame's SNR at the sniffer, after path
// loss and terrain obstruction, exceeds the card's minimum.
package sniffer

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"repro/internal/dot11"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/pcap"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Process-wide capture metrics: how much of the air the sniffer actually
// decodes. A dropped frame is one no monitoring card could decode — the
// link budget didn't close or no card sat near the transmit channel — and
// is otherwise invisible: it never reaches the observation store. A
// card-down loss is the subset of drops a fault plan caused: a card that
// would have decoded the frame was dead, flapping or too degraded.
var (
	mCaptured = telemetry.Default().Counter(
		"marauder_sniffer_frames_captured_total",
		"Transmitted frames the sniffer decoded.", nil)
	mDropped = telemetry.Default().Counter(
		"marauder_sniffer_frames_dropped_total",
		"Transmitted frames no monitoring card could decode.", nil)
	mLostCardDown = telemetry.Default().Counter(
		"marauder_sniffer_frames_lost_card_down_total",
		"Frames lost because the only capable monitoring card was faulted.", nil)
)

// cardUpGauge is the per-channel card health gauge, 1 up / 0 down.
func cardUpGauge(channel int) *telemetry.Gauge {
	return telemetry.Default().Gauge(
		"marauder_card_up",
		"Monitoring card health by channel: 1 up, 0 down.",
		telemetry.Labels{"channel": strconv.Itoa(channel)})
}

// Config configures a sniffer deployment.
type Config struct {
	// Pos is the sniffer's position (e.g. the CS building roof).
	Pos geom.Point
	// Chain is the receiver chain (antenna, LNA, splitter, card).
	Chain rf.Chain
	// Plan assigns monitoring cards to channels.
	Plan dot11.ChannelPlan
	// Terrain adds obstruction loss; nil means flat.
	Terrain sim.Terrain
	// PathLoss is the propagation model; nil uses log-distance n=2.8.
	PathLoss rf.PathLoss
	// Faults schedules monitoring-card failures (dead, flapping, SNR
	// degradation) against this sniffer's cards; nil means none.
	Faults *faults.Plan
}

// Sniffer captures wireless traffic at a fixed location.
type Sniffer struct {
	cfg      Config
	upGauges []*telemetry.Gauge // per plan card, aligned with cfg.Plan.Cards
}

// New creates a Sniffer, applying defaults for unset optional fields.
func New(cfg Config) *Sniffer {
	if cfg.PathLoss == nil {
		cfg.PathLoss = rf.LogDistance{Exponent: 2.8, RefDistM: 1}
	}
	if cfg.Terrain == nil {
		cfg.Terrain = sim.Flat{}
	}
	if len(cfg.Plan.Cards) == 0 {
		cfg.Plan = dot11.DefaultPlan()
	}
	s := &Sniffer{cfg: cfg, upGauges: make([]*telemetry.Gauge, len(cfg.Plan.Cards))}
	for i, ch := range cfg.Plan.Cards {
		s.upGauges[i] = cardUpGauge(ch)
		s.upGauges[i].Set(1)
	}
	return s
}

// CardHealth is one monitoring card's health at a point in time.
type CardHealth struct {
	// Channel is the card's assigned channel.
	Channel int `json:"channel"`
	// Up reports whether the card can decode at all.
	Up bool `json:"up"`
	// PenaltyDB is the card's current SNR degradation (0 when healthy).
	PenaltyDB float64 `json:"penaltyDB,omitempty"`
}

// CardHealth reports every card's health at trace time tSec, in plan
// order. Without a fault plan every card is up.
func (s *Sniffer) CardHealth(tSec float64) []CardHealth {
	out := make([]CardHealth, len(s.cfg.Plan.Cards))
	for i, ch := range s.cfg.Plan.Cards {
		out[i] = CardHealth{
			Channel:   ch,
			Up:        s.cfg.Faults.CardAlive(ch, tSec),
			PenaltyDB: s.cfg.Faults.CardPenaltyDB(ch, tSec),
		}
	}
	return out
}

// UpdateHealthMetrics refreshes the marauder_card_up gauges from the
// fault plan's schedule at tSec and returns the health it published.
func (s *Sniffer) UpdateHealthMetrics(tSec float64) []CardHealth {
	hs := s.CardHealth(tSec)
	for i, h := range hs {
		if h.Up {
			s.upGauges[i].Set(1)
		} else {
			s.upGauges[i].Set(0)
		}
	}
	return hs
}

// Capture is one successfully decoded frame.
type Capture struct {
	// TimeSec is the capture time in trace seconds.
	TimeSec float64
	// Frame is the decoded frame. A nil Frame with Raw set is a capture
	// that was corrupted in flight: the engine quarantines it instead of
	// ingesting it.
	Frame *dot11.Frame
	// Raw holds the (possibly corrupted) encoded frame bytes when fault
	// injection mangled the capture; nil for clean captures.
	Raw []byte
	// Channel is the frame's transmit channel.
	Channel int
	// CardChannel is the monitoring card that decoded it.
	CardChannel int
	// SNRDB is the demodulator SNR.
	SNRDB float64
	// FromAP marks AP-originated frames.
	FromAP bool
	// LiveMask records which of the sniffer's plan cards were live when
	// this frame was captured: bit i set means Plan.Cards[i] was up. The
	// card set can change mid-run under a fault plan, and the mask is what
	// lets a capture be interpreted against the cards that actually heard
	// the air at its timestamp.
	LiveMask uint16
}

// snr computes the frame's SNR at the sniffer including terrain loss and
// cross-channel leakage.
func (s *Sniffer) snr(ev sim.TxEvent, cardCh int) float64 {
	d := ev.Pos.Dist(s.cfg.Pos)
	base := rf.SNRDB(ev.TX, s.cfg.Chain, math.Max(d, 1), s.cfg.PathLoss)
	base -= s.cfg.Terrain.ExtraLossDB(ev.Pos, s.cfg.Pos)
	base -= dot11.LeakageDB(ev.Channel, cardCh)
	return base
}

// TryCapture reports whether the sniffer decodes the event, and on which
// card with what SNR. When several cards can decode it, the best SNR wins.
// Under a fault plan dead/flapping cards decode nothing and degraded
// cards lose SNR; a frame only a faulted card could have decoded is
// counted as a card-down loss.
func (s *Sniffer) TryCapture(ev sim.TxEvent) (Capture, bool) {
	best := Capture{SNRDB: math.Inf(-1)}
	ok := false
	lostToFault := false
	var live uint16
	for i, cardCh := range s.cfg.Plan.Cards {
		rawSNR := s.snr(ev, cardCh)
		decodableHealthy := rawSNR > s.cfg.Chain.Card.SNRMinDB &&
			dot11.DecodableCrossChannel(ev.Channel, cardCh)
		if s.cfg.Faults == nil {
			if i < 16 {
				live |= 1 << i
			}
			if !decodableHealthy {
				continue
			}
			if rawSNR > best.SNRDB {
				best = Capture{
					TimeSec:     ev.TimeSec,
					Frame:       ev.Frame,
					Channel:     ev.Channel,
					CardChannel: cardCh,
					SNRDB:       rawSNR,
					FromAP:      ev.FromAP,
				}
				ok = true
			}
			continue
		}
		if !s.cfg.Faults.CardAlive(cardCh, ev.TimeSec) {
			if decodableHealthy {
				lostToFault = true
			}
			continue
		}
		if i < 16 {
			live |= 1 << i
		}
		snr := rawSNR - s.cfg.Faults.CardPenaltyDB(cardCh, ev.TimeSec)
		if snr <= s.cfg.Chain.Card.SNRMinDB || !dot11.DecodableCrossChannel(ev.Channel, cardCh) {
			if decodableHealthy {
				lostToFault = true
			}
			continue
		}
		if snr > best.SNRDB {
			best = Capture{
				TimeSec:     ev.TimeSec,
				Frame:       ev.Frame,
				Channel:     ev.Channel,
				CardChannel: cardCh,
				SNRDB:       snr,
				FromAP:      ev.FromAP,
			}
			ok = true
		}
	}
	if ok {
		best.LiveMask = live
		mCaptured.Inc()
	} else {
		mDropped.Inc()
		if lostToFault {
			mLostCardDown.Inc()
			s.cfg.Faults.RecordCardReject()
		}
	}
	return best, ok
}

// CaptureAll filters an event stream to the frames this sniffer decodes.
func (s *Sniffer) CaptureAll(events []sim.TxEvent) []Capture {
	return s.CaptureAllInto(make([]Capture, 0, len(events)), events)
}

// CaptureAllInto appends the decoded frames to dst and returns the
// extended slice — the allocation-friendly form for delivery loops that
// accumulate a capture batch across scan bursts and hand it to a batched
// ingest path (engine.IngestCaptures) in one call instead of paying a
// store lock round-trip per frame.
func (s *Sniffer) CaptureAllInto(dst []Capture, events []sim.TxEvent) []Capture {
	for _, ev := range events {
		if c, ok := s.TryCapture(ev); ok {
			dst = append(dst, c)
		}
	}
	return dst
}

// CoverageRadius returns the maximum distance at which the sniffer decodes
// an on-channel frame from the given transmitter under its propagation
// model (ignoring terrain, which is direction-dependent).
func (s *Sniffer) CoverageRadius(tx rf.Transmitter) float64 {
	return rf.CoverageRadiusModel(tx, s.cfg.Chain, s.cfg.PathLoss, 1e6)
}

// LinkTypeRadiotap is pcap link type 127 (radiotap-prefixed 802.11).
const LinkTypeRadiotap pcap.LinkType = 127

// WritePcap serializes captures to a pcap stream (LinkTypeIEEE80211) with
// timestamps offset from the given start time.
func (s *Sniffer) WritePcap(w io.Writer, start time.Time, caps []Capture) error {
	return s.writePcap(w, start, caps, false)
}

// WritePcapRadiotap serializes captures with a radiotap header per frame
// (LinkType 127), preserving capture channel and signal strength the way
// real sniffing stacks do.
func (s *Sniffer) WritePcapRadiotap(w io.Writer, start time.Time, caps []Capture) error {
	return s.writePcap(w, start, caps, true)
}

func (s *Sniffer) writePcap(w io.Writer, start time.Time, caps []Capture, radiotap bool) error {
	link := pcap.LinkTypeIEEE80211
	if radiotap {
		link = LinkTypeRadiotap
	}
	pw := pcap.NewWriter(w, link)
	// Emit the global header before any packet so standard tools (and
	// pcap.NewReader) can stream-read the output as it is produced; it
	// also guarantees an empty capture is still a valid pcap file.
	if err := pw.WriteHeader(); err != nil {
		return err
	}
	for i, c := range caps {
		var raw []byte
		switch {
		case c.Frame != nil:
			var err error
			raw, err = c.Frame.Encode()
			if err != nil {
				return fmt.Errorf("sniffer: encode capture %d: %w", i, err)
			}
		case len(c.Raw) > 0:
			// A corrupted capture is persisted verbatim: the pcap stays a
			// faithful record of what came off the air, bit flips and all.
			raw = c.Raw
		default:
			return fmt.Errorf("sniffer: capture %d has neither frame nor raw bytes", i)
		}
		if radiotap {
			freq, err := dot11.ChannelFreqHz(c.Channel)
			if err != nil {
				return fmt.Errorf("sniffer: capture %d channel: %w", i, err)
			}
			noise := rf.ThermalNoiseDBmPerHz + s.cfg.Chain.NoiseFigureDB() +
				10*math.Log10(s.cfg.Chain.Card.BandwidthHz)
			raw = dot11.EncodeRadiotap(dot11.Radiotap{
				ChannelMHz: uint16(freq / 1e6),
				SignalDBm:  clampI8(c.SNRDB + noise),
				NoiseDBm:   clampI8(noise),
			}, raw)
		}
		ts := start.Add(time.Duration(c.TimeSec * float64(time.Second)))
		if err := pw.WritePacket(pcap.Packet{Time: ts, Data: raw}); err != nil {
			return fmt.Errorf("sniffer: write capture %d: %w", i, err)
		}
	}
	return nil
}

func clampI8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// ReadPcap parses a pcap stream back into captures. Radiotap captures
// (link type 127) restore per-frame channel and signal; bare-802.11
// captures come back with zero channel and SNR.
func ReadPcap(r io.Reader, start time.Time) ([]Capture, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	pkts, err := pr.ReadAll()
	if err != nil {
		return nil, err
	}
	caps := make([]Capture, 0, len(pkts))
	for i, p := range pkts {
		data := p.Data
		var c Capture
		if pr.LinkType() == LinkTypeRadiotap {
			rt, body, err := dot11.DecodeRadiotap(data)
			if err != nil {
				return nil, fmt.Errorf("sniffer: radiotap packet %d: %w", i, err)
			}
			data = body
			c.Channel = rt.Channel()
			c.SNRDB = float64(rt.SignalDBm) - float64(rt.NoiseDBm)
		}
		c.TimeSec = p.Time.Sub(start).Seconds()
		if f, err := dot11.Decode(data); err == nil {
			c.Frame = f
		} else {
			// An undecodable packet (bad FCS, truncation) must not poison
			// the replay: keep it as a raw capture so the engine quarantines
			// and counts it instead of the whole read erroring out.
			c.Raw = append([]byte(nil), data...)
		}
		caps = append(caps, c)
	}
	return caps, nil
}

// ActiveAttack models the paper's active probing-traffic collection: the
// adversary transmits spoofed deauthentication frames, forcing associated
// (quiet) devices to rescan. It returns the provoked traffic: a deauth per
// device followed by the device's scan burst, raising the fraction of
// probing mobiles toward 100%.
func ActiveAttack(w *sim.World, atTimeSec float64) []sim.TxEvent {
	var events []sim.TxEvent
	seq := uint16(1)
	for _, dev := range w.Devices {
		pos := dev.PosAt(atTimeSec)
		aps := w.CommunicableAPs(pos)
		if len(aps) == 0 {
			continue
		}
		deauth := &dot11.Frame{
			Type:    dot11.TypeManagement,
			Subtype: dot11.SubtypeDeauth,
			Addr1:   dev.MAC,
			Addr2:   aps[0].MAC, // spoofed as the AP
			Addr3:   aps[0].MAC,
			Seq:     seq,
		}
		tx := rf.TypicalAP
		tx.FreqHz = aps[0].TX.FreqHz
		events = append(events, sim.TxEvent{
			TimeSec: atTimeSec,
			Pos:     pos, // attack frame reaches the device; attacker position immaterial here
			Channel: aps[0].Channel,
			Frame:   deauth,
			TX:      tx,
		})
		// The deauthenticated client rescans 100 ms later.
		events = append(events, sim.ScanBurst(w, dev, atTimeSec+0.1, pos, seq+1)...)
		seq += 2
	}
	return events
}
