package sniffer

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/pcap"
	"repro/internal/rf"
	"repro/internal/sim"
)

// mustPlan arms a fault plan or fails the test.
func mustPlan(t *testing.T, cfg faults.Config) *faults.Plan {
	t.Helper()
	p, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeadCardBlindsChannel(t *testing.T) {
	plan := mustPlan(t, faults.Config{Cards: []faults.CardFault{
		{Channel: 6, Mode: faults.CardDead},
	}})
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA(), Faults: plan})
	healthy := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})

	ev := probeEventAt(geom.Pt(100, 0), 6)
	if _, ok := healthy.TryCapture(ev); !ok {
		t.Fatal("healthy sniffer must capture the on-channel frame")
	}
	if _, ok := s.TryCapture(ev); ok {
		t.Fatal("a dead channel-6 card must not decode a channel-6 frame")
	}
	if got := plan.Counters().CardRejects; got != 1 {
		t.Errorf("CardRejects = %d, want 1 (the loss must be accounted)", got)
	}
	// Other channels keep decoding: degraded mode, not an outage.
	if _, ok := s.TryCapture(probeEventAt(geom.Pt(100, 0), 11)); !ok {
		t.Fatal("channel 11 must still decode with channel 6 dead")
	}
}

func TestFlappingCardComesAndGoes(t *testing.T) {
	plan := mustPlan(t, faults.Config{Cards: []faults.CardFault{
		{Channel: 6, Mode: faults.CardFlapping, PeriodSec: 10, DownFraction: 0.5},
	}})
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA(), Faults: plan})
	down := probeEventAt(geom.Pt(100, 0), 6)
	down.TimeSec = 2 // first half of the period: down
	up := probeEventAt(geom.Pt(100, 0), 6)
	up.TimeSec = 7 // second half: up
	if _, ok := s.TryCapture(down); ok {
		t.Error("flapping card should be down at t=2")
	}
	c, ok := s.TryCapture(up)
	if !ok {
		t.Fatal("flapping card should be up at t=7")
	}
	// The capture records the card set that was live at its timestamp.
	idx := -1
	for i, ch := range dot11.DefaultPlan().Cards {
		if ch == 6 {
			idx = i
		}
	}
	if idx < 0 || c.LiveMask&(1<<idx) == 0 {
		t.Errorf("LiveMask %b should have the channel-6 card live at t=7", c.LiveMask)
	}
}

func TestDegradedCardLosesMarginalFrames(t *testing.T) {
	plan := mustPlan(t, faults.Config{Cards: []faults.CardFault{
		{Channel: 6, Mode: faults.CardDegraded, PenaltyDB: 60},
	}})
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA(), Faults: plan})
	// A frame the healthy chain decodes comfortably is lost under a 60 dB
	// sensitivity hit, and the loss is attributed to the fault.
	if _, ok := s.TryCapture(probeEventAt(geom.Pt(200, 0), 6)); ok {
		t.Fatal("60 dB degraded card should lose a 200 m frame")
	}
	if got := plan.Counters().CardRejects; got != 1 {
		t.Errorf("CardRejects = %d, want 1", got)
	}
}

func TestCardHealthAndGauges(t *testing.T) {
	plan := mustPlan(t, faults.Config{Cards: []faults.CardFault{
		{Channel: 1, Mode: faults.CardDead, FromSec: 10},
		{Channel: 11, Mode: faults.CardDegraded, PenaltyDB: 6},
	}})
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA(), Faults: plan})
	byCh := func(hs []CardHealth, ch int) CardHealth {
		for _, h := range hs {
			if h.Channel == ch {
				return h
			}
		}
		t.Fatalf("channel %d missing from health report", ch)
		return CardHealth{}
	}
	early := s.UpdateHealthMetrics(0)
	if !byCh(early, 1).Up {
		t.Error("channel 1 should be up before its fault window")
	}
	late := s.UpdateHealthMetrics(20)
	if byCh(late, 1).Up {
		t.Error("channel 1 should be down at t=20")
	}
	if h := byCh(late, 11); !h.Up || h.PenaltyDB != 6 {
		t.Errorf("channel 11 health = %+v, want up with 6 dB penalty", h)
	}
}

func TestInjectorAccountsEveryFault(t *testing.T) {
	plan := mustPlan(t, faults.Config{
		Seed: 9, DropProb: 0.2, CorruptProb: 0.2, DupProb: 0.2, DelayProb: 0.3, ReorderProb: 0.3,
	})
	fi := &FaultInjector{Plan: plan}
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	var delivered []Capture
	total := 0
	for batchNo := 0; batchNo < 40; batchNo++ {
		var batch []Capture
		for i := 0; i < 20; i++ {
			ev := probeEventAt(geom.Pt(50, 0), 6)
			ev.TimeSec = float64(batchNo*20 + i)
			c, ok := s.TryCapture(ev)
			if !ok {
				t.Fatal("50 m frame must capture")
			}
			batch = append(batch, c)
			total++
		}
		delivered = append(delivered, fi.Apply(batch)...)
	}
	delivered = append(delivered, fi.Drain()...)
	if fi.Held() != 0 {
		t.Fatal("Drain must flush the held batch")
	}
	c := plan.Counters()
	wantDelivered := total - int(c.Dropped) + int(c.Duplicated)
	if len(delivered) != wantDelivered {
		t.Fatalf("delivered %d, want %d (total %d - dropped %d + duplicated %d)",
			len(delivered), wantDelivered, total, c.Dropped, c.Duplicated)
	}
	corrupt := 0
	for _, d := range delivered {
		if d.Frame == nil {
			if len(d.Raw) == 0 {
				t.Fatal("corrupted capture lost its raw bytes")
			}
			corrupt++
		}
	}
	if corrupt != int(c.Corrupted) {
		t.Fatalf("delivered %d corrupt captures, plan injected %d", corrupt, c.Corrupted)
	}
	if c.Dropped == 0 || c.Corrupted == 0 || c.Duplicated == 0 || c.DelayedBatches == 0 {
		t.Fatalf("aggressive probabilities should exercise every fault: %+v", c)
	}
}

func TestInjectorNilAndDisabledPassThrough(t *testing.T) {
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	c, ok := s.TryCapture(probeEventAt(geom.Pt(50, 0), 6))
	if !ok {
		t.Fatal("capture failed")
	}
	batch := []Capture{c}
	var nilInjector *FaultInjector
	if got := nilInjector.Apply(batch); len(got) != 1 {
		t.Error("nil injector must pass batches through")
	}
	disabled := &FaultInjector{}
	if got := disabled.Apply(batch); len(got) != 1 {
		t.Error("plan-less injector must pass batches through")
	}
}

// TestWritePcapHeaderFirst is the regression test for the header-after-
// packets bug: the global header must be the first 24 bytes on the wire
// so standard tools can stream-read the capture incrementally.
func TestWritePcapHeaderFirst(t *testing.T) {
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	var caps []Capture
	for i := 0; i < 5; i++ {
		ev := probeEventAt(geom.Pt(50, 0), 6)
		ev.TimeSec = float64(i)
		c, ok := s.TryCapture(ev)
		if !ok {
			t.Fatal("capture failed")
		}
		caps = append(caps, c)
	}
	var buf bytes.Buffer
	if err := s.WritePcap(&buf, time.Unix(0, 0), caps); err != nil {
		t.Fatal(err)
	}
	// Stream-read the bytes incrementally: header first, then packet by
	// packet, never needing the whole file.
	pr, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header is not readable up front: %v", err)
	}
	if pr.LinkType() != pcap.LinkTypeIEEE80211 {
		t.Errorf("link type = %d, want %d", pr.LinkType(), pcap.LinkTypeIEEE80211)
	}
	for i := 0; i < len(caps); i++ {
		if _, err := pr.Next(); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if _, err := pr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after %d packets, got %v", len(caps), err)
	}
	// A truncated prefix (header + first packet only) must still yield
	// that first packet — the stream-readability the bug broke.
	first := buf.Bytes()[:24+16+len(mustEncode(t, caps[0]))]
	pr2, err := pcap.NewReader(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr2.Next(); err != nil {
		t.Fatalf("prefix read: %v", err)
	}
}

func mustEncode(t *testing.T, c Capture) []byte {
	t.Helper()
	raw, err := c.Frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestReadPcapKeepsUndecodableAsRaw(t *testing.T) {
	s := New(Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()})
	c, ok := s.TryCapture(probeEventAt(geom.Pt(50, 0), 6))
	if !ok {
		t.Fatal("capture failed")
	}
	var buf bytes.Buffer
	pw := pcap.NewWriter(&buf, pcap.LinkTypeIEEE80211)
	good := mustEncode(t, c)
	bad := append([]byte(nil), good...)
	bad[4] ^= 0x01 // break the FCS
	if err := pw.WritePacket(pcap.Packet{Time: time.Unix(1, 0), Data: good}); err != nil {
		t.Fatal(err)
	}
	if err := pw.WritePacket(pcap.Packet{Time: time.Unix(2, 0), Data: bad}); err != nil {
		t.Fatal(err)
	}
	caps, err := ReadPcap(&buf, time.Unix(0, 0))
	if err != nil {
		t.Fatalf("a corrupt packet must not fail the whole read: %v", err)
	}
	if len(caps) != 2 {
		t.Fatalf("read %d captures, want 2", len(caps))
	}
	if caps[0].Frame == nil {
		t.Error("good packet lost its frame")
	}
	if caps[1].Frame != nil || len(caps[1].Raw) == 0 {
		t.Error("corrupt packet should come back frame-less with raw bytes")
	}
}

func TestFleetPartialFailureUnion(t *testing.T) {
	// Two sites far apart; a third dead site in the middle. The fleet with
	// the dead member must produce exactly the union of the live members'
	// captures, best-SNR tie-breaking unchanged.
	cfgA := Config{Pos: geom.Pt(0, 0), Chain: rf.ChainLNA()}
	cfgB := Config{Pos: geom.Pt(2000, 0), Chain: rf.ChainLNA()}
	cfgDead := Config{Pos: geom.Pt(1000, 0), Chain: rf.ChainLNA()}
	fleet := NewFleet(cfgA, cfgDead, cfgB)
	fleet.SetMemberUp(1, false)
	if fleet.LiveMembers() != 2 || fleet.MemberUp(1) {
		t.Fatalf("live members = %d, member 1 up = %v", fleet.LiveMembers(), fleet.MemberUp(1))
	}
	liveOnly := NewFleet(cfgA, cfgB)

	var events []sim.TxEvent
	for i, x := range []float64{100, 450, 1000, 1600, 2100} {
		ev := probeEventAt(geom.Pt(x, 0), 6)
		ev.TimeSec = float64(i)
		events = append(events, ev)
	}
	got := fleet.CaptureAll(events)
	want := liveOnly.CaptureAll(events)
	if len(got) != len(want) {
		t.Fatalf("degraded fleet captured %d, union of live members %d", len(got), len(want))
	}
	for i := range got {
		if got[i].TimeSec != want[i].TimeSec || got[i].SNRDB != want[i].SNRDB {
			t.Errorf("capture %d: degraded fleet kept (t=%v snr=%v), want (t=%v snr=%v)",
				i, got[i].TimeSec, got[i].SNRDB, want[i].TimeSec, want[i].SNRDB)
		}
	}
	// The frame next to the dead site is lost only if no live site covers
	// it; recovery brings the member — and its coverage — back.
	fleet.SetMemberUp(1, true)
	if recovered := fleet.CaptureAll(events); len(recovered) < len(got) {
		t.Error("restoring the member must not shrink coverage")
	}
}
