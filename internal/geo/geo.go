// Package geo converts between geodetic (WGS84 latitude/longitude),
// Earth-Centered Earth-Fixed (ECEF), and local East-North-Up (ENU) tangent
// plane coordinates. The paper's localization algorithms run in ECEF-derived
// planar coordinates; this package supplies the conversions so that AP
// databases (WiGLE-style lat/lon) and the planar solver interoperate.
package geo

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// WGS84 ellipsoid constants.
const (
	// SemiMajorAxis is the WGS84 equatorial radius a, in metres.
	SemiMajorAxis = 6378137.0
	// Flattening is the WGS84 flattening f.
	Flattening = 1.0 / 298.257223563
)

var (
	// eccSq is the first eccentricity squared, e² = f(2−f).
	eccSq = Flattening * (2 - Flattening)
	// semiMinor is the WGS84 polar radius b = a(1−f).
	semiMinor = SemiMajorAxis * (1 - Flattening)
)

// LatLon is a geodetic coordinate in degrees (WGS84), with optional height
// above the ellipsoid in metres.
type LatLon struct {
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
	Height float64 `json:"height,omitempty"`
}

// String implements fmt.Stringer.
func (l LatLon) String() string {
	return fmt.Sprintf("%.6f,%.6f", l.Lat, l.Lon)
}

// ECEF is an Earth-Centered, Earth-Fixed Cartesian coordinate in metres.
type ECEF struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// ToECEF converts a geodetic coordinate to ECEF.
func (l LatLon) ToECEF() ECEF {
	lat := l.Lat * math.Pi / 180
	lon := l.Lon * math.Pi / 180
	sinLat, cosLat := math.Sincos(lat)
	sinLon, cosLon := math.Sincos(lon)
	// Prime-vertical radius of curvature.
	n := SemiMajorAxis / math.Sqrt(1-eccSq*sinLat*sinLat)
	return ECEF{
		X: (n + l.Height) * cosLat * cosLon,
		Y: (n + l.Height) * cosLat * sinLon,
		Z: (n*(1-eccSq) + l.Height) * sinLat,
	}
}

// ToLatLon converts an ECEF coordinate to geodetic using Bowring's iterative
// method (converges to sub-millimetre in a few iterations).
func (e ECEF) ToLatLon() LatLon {
	p := math.Hypot(e.X, e.Y)
	lon := math.Atan2(e.Y, e.X)
	if p < 1e-9 {
		// On the polar axis.
		lat := math.Pi / 2
		if e.Z < 0 {
			lat = -lat
		}
		return LatLon{
			Lat:    lat * 180 / math.Pi,
			Lon:    0,
			Height: math.Abs(e.Z) - semiMinor,
		}
	}
	lat := math.Atan2(e.Z, p*(1-eccSq))
	var n, h float64
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n = SemiMajorAxis / math.Sqrt(1-eccSq*sinLat*sinLat)
		h = p/math.Cos(lat) - n
		newLat := math.Atan2(e.Z, p*(1-eccSq*n/(n+h)))
		if math.Abs(newLat-lat) < 1e-13 {
			lat = newLat
			break
		}
		lat = newLat
	}
	return LatLon{
		Lat:    lat * 180 / math.Pi,
		Lon:    lon * 180 / math.Pi,
		Height: h,
	}
}

// HaversineMetres returns the great-circle distance between two geodetic
// coordinates, ignoring height, using a mean Earth radius.
func HaversineMetres(a, b LatLon) float64 {
	const earthRadius = 6371000.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadius * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Projection maps geodetic coordinates to a local East-North-Up tangent
// plane anchored at an origin. Over campus scales (a few km) the projection
// distortion is negligible, and the planar solver in package geom applies
// directly.
type Projection struct {
	origin     LatLon
	originECEF ECEF
	// ENU rotation rows (east, north, up) in ECEF frame.
	east, north, up [3]float64
}

// NewProjection returns a local tangent-plane projection anchored at origin.
func NewProjection(origin LatLon) *Projection {
	lat := origin.Lat * math.Pi / 180
	lon := origin.Lon * math.Pi / 180
	sinLat, cosLat := math.Sincos(lat)
	sinLon, cosLon := math.Sincos(lon)
	return &Projection{
		origin:     origin,
		originECEF: origin.ToECEF(),
		east:       [3]float64{-sinLon, cosLon, 0},
		north:      [3]float64{-sinLat * cosLon, -sinLat * sinLon, cosLat},
		up:         [3]float64{cosLat * cosLon, cosLat * sinLon, sinLat},
	}
}

// Origin returns the projection's anchor.
func (p *Projection) Origin() LatLon { return p.origin }

// ToPlane projects a geodetic coordinate to the local plane: X is metres
// east of the origin, Y metres north. The up component is discarded.
func (p *Projection) ToPlane(l LatLon) geom.Point {
	e := l.ToECEF()
	dx := e.X - p.originECEF.X
	dy := e.Y - p.originECEF.Y
	dz := e.Z - p.originECEF.Z
	return geom.Point{
		X: p.east[0]*dx + p.east[1]*dy + p.east[2]*dz,
		Y: p.north[0]*dx + p.north[1]*dy + p.north[2]*dz,
	}
}

// ToLatLon lifts a local plane point back to geodetic coordinates at the
// origin's ellipsoid height.
func (p *Projection) ToLatLon(pt geom.Point) LatLon {
	// Reconstruct ECEF from the ENU offset with zero up component.
	e := ECEF{
		X: p.originECEF.X + p.east[0]*pt.X + p.north[0]*pt.Y,
		Y: p.originECEF.Y + p.east[1]*pt.X + p.north[1]*pt.Y,
		Z: p.originECEF.Z + p.east[2]*pt.X + p.north[2]*pt.Y,
	}
	ll := e.ToLatLon()
	ll.Height = p.origin.Height
	return ll
}
