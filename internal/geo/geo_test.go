package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToECEFKnownPoints(t *testing.T) {
	tests := []struct {
		name string
		in   LatLon
		want ECEF
		tol  float64
	}{
		{"equatorPrime", LatLon{Lat: 0, Lon: 0}, ECEF{X: SemiMajorAxis, Y: 0, Z: 0}, 1e-6},
		{"equator90E", LatLon{Lat: 0, Lon: 90}, ECEF{X: 0, Y: SemiMajorAxis, Z: 0}, 1e-6},
		{"northPole", LatLon{Lat: 90, Lon: 0}, ECEF{X: 0, Y: 0, Z: 6356752.314245}, 1e-3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.in.ToECEF()
			if math.Abs(got.X-tt.want.X) > tt.tol ||
				math.Abs(got.Y-tt.want.Y) > tt.tol ||
				math.Abs(got.Z-tt.want.Z) > tt.tol {
				t.Errorf("ToECEF(%v) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestECEFRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := LatLon{
			Lat:    rng.Float64()*170 - 85,
			Lon:    rng.Float64()*360 - 180,
			Height: rng.Float64() * 2000,
		}
		out := in.ToECEF().ToLatLon()
		return math.Abs(out.Lat-in.Lat) < 1e-9 &&
			math.Abs(out.Lon-in.Lon) < 1e-9 &&
			math.Abs(out.Height-in.Height) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestECEFPolarAxis(t *testing.T) {
	ll := ECEF{X: 0, Y: 0, Z: 6356752.314245 + 100}.ToLatLon()
	if math.Abs(ll.Lat-90) > 1e-9 {
		t.Errorf("lat = %v, want 90", ll.Lat)
	}
	if math.Abs(ll.Height-100) > 1e-3 {
		t.Errorf("height = %v, want 100", ll.Height)
	}
}

func TestHaversine(t *testing.T) {
	// UMass Lowell North Campus to GWU Foggy Bottom: roughly 600 km.
	uml := LatLon{Lat: 42.6555, Lon: -71.3254}
	gwu := LatLon{Lat: 38.8997, Lon: -77.0486}
	d := HaversineMetres(uml, gwu)
	if d < 550e3 || d > 680e3 {
		t.Errorf("UML-GWU distance = %.0f m, want ~600 km", d)
	}
	if got := HaversineMetres(uml, uml); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestProjectionLocalDistances(t *testing.T) {
	origin := LatLon{Lat: 42.6555, Lon: -71.3254}
	proj := NewProjection(origin)
	if proj.Origin() != origin {
		t.Fatalf("origin mismatch")
	}
	// A point 0.001 deg north is about 111 m away.
	north := LatLon{Lat: origin.Lat + 0.001, Lon: origin.Lon}
	p := proj.ToPlane(north)
	if math.Abs(p.X) > 1 {
		t.Errorf("northward point should have ~0 east offset, got %v", p.X)
	}
	if p.Y < 105 || p.Y > 115 {
		t.Errorf("northward offset = %v m, want ~111", p.Y)
	}
	// Plane distance must agree with haversine within 0.1% at campus scale.
	east := LatLon{Lat: origin.Lat, Lon: origin.Lon + 0.005}
	pe := proj.ToPlane(east)
	hav := HaversineMetres(origin, east)
	if math.Abs(pe.Norm()-hav) > 0.005*hav {
		t.Errorf("plane dist %v vs haversine %v", pe.Norm(), hav)
	}
}

func TestProjectionRoundTripProperty(t *testing.T) {
	origin := LatLon{Lat: 42.6555, Lon: -71.3254, Height: 30}
	proj := NewProjection(origin)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := LatLon{
			Lat:    origin.Lat + (rng.Float64()-0.5)*0.02,
			Lon:    origin.Lon + (rng.Float64()-0.5)*0.02,
			Height: origin.Height,
		}
		out := proj.ToLatLon(proj.ToPlane(in))
		// Round trip should be within a couple of metres at campus scale
		// (the plane drops the up component, so tiny curvature error remains).
		return HaversineMetres(in, out) < 2.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectionOriginMapsToZero(t *testing.T) {
	origin := LatLon{Lat: 38.8997, Lon: -77.0486}
	proj := NewProjection(origin)
	p := proj.ToPlane(origin)
	if p.Norm() > 1e-6 {
		t.Errorf("origin maps to %v, want (0,0)", p)
	}
}
