package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
	"repro/internal/geom"
)

func testWorld(t *testing.T, nAPs int, seed int64) *World {
	t.Helper()
	w := NewWorld(seed)
	aps, err := UniformDeployment(DeploymentConfig{
		N:        nAPs,
		Min:      geom.Pt(-500, -500),
		Max:      geom.Pt(500, 500),
		RangeMin: 100,
		RangeMax: 100,
	}, w.RNG())
	if err != nil {
		t.Fatal(err)
	}
	w.APs = aps
	return w
}

func TestNewMACDeterministicUnique(t *testing.T) {
	a := NewMAC(1, 42)
	b := NewMAC(1, 42)
	if a != b {
		t.Error("NewMAC must be deterministic")
	}
	seen := make(map[dot11.MAC]bool)
	for i := 0; i < 1000; i++ {
		m := NewMAC(1, i)
		if seen[m] {
			t.Fatalf("duplicate MAC at %d", i)
		}
		seen[m] = true
	}
	// Locally administered bit set.
	if a[0]&0x02 == 0 {
		t.Error("MAC should be locally administered")
	}
}

func TestNewAPValidatesChannel(t *testing.T) {
	if _, err := NewAP(0, "x", geom.Pt(0, 0), 99, 100); err == nil {
		t.Error("want error for invalid channel")
	}
	ap, err := NewAP(3, "net", geom.Pt(1, 2), 6, 120)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Disc() != (geom.Circle{C: geom.Pt(1, 2), R: 120}) {
		t.Errorf("disc = %v", ap.Disc())
	}
	if ap.TX.FreqHz != 2.437e9 {
		t.Errorf("freq = %v", ap.TX.FreqHz)
	}
}

func TestCommunicableSpherical(t *testing.T) {
	w := NewWorld(1)
	ap, err := NewAP(0, "a", geom.Pt(0, 0), 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAP(ap)
	if !w.Communicable(geom.Pt(99, 0), ap) {
		t.Error("inside range must be communicable")
	}
	if w.Communicable(geom.Pt(101, 0), ap) {
		t.Error("outside range must not be communicable")
	}
	got := w.CommunicableAPs(geom.Pt(0, 0))
	if len(got) != 1 {
		t.Errorf("CommunicableAPs = %v", got)
	}
}

func TestCommunicableLinkBudget(t *testing.T) {
	w := NewWorld(1)
	w.Model = ModelLinkBudget
	ap, err := NewAP(0, "a", geom.Pt(0, 0), 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAP(ap)
	if !w.Communicable(geom.Pt(10, 0), ap) {
		t.Error("10 m link must close")
	}
	if w.Communicable(geom.Pt(50000, 0), ap) {
		t.Error("50 km link must not close")
	}
	// Terrain obstruction can break an otherwise-closable link.
	w.Terrain = Hills{{Center: geom.Pt(100, 0), Radius: 20, LossDB: 80}}
	openPos := geom.Pt(0, 200)
	blockedPos := geom.Pt(200, 0)
	if !w.Communicable(openPos, ap) {
		t.Error("unobstructed 200 m link should close")
	}
	if w.Communicable(blockedPos, ap) {
		t.Error("hill-blocked link should not close")
	}
}

func TestAPByMAC(t *testing.T) {
	w := testWorld(t, 5, 2)
	ap, ok := w.APByMAC(w.APs[3].MAC)
	if !ok || ap != w.APs[3] {
		t.Error("APByMAC lookup failed")
	}
	if _, ok := w.APByMAC(dot11.MAC{9, 9, 9, 9, 9, 9}); ok {
		t.Error("unknown MAC should not resolve")
	}
}

func TestTerrain(t *testing.T) {
	if (Flat{}).ExtraLossDB(geom.Pt(0, 0), geom.Pt(1, 1)) != 0 {
		t.Error("flat terrain must add no loss")
	}
	hills := Hills{
		{Center: geom.Pt(50, 0), Radius: 10, LossDB: 20},
		{Center: geom.Pt(0, 50), Radius: 10, LossDB: 30},
	}
	if got := hills.ExtraLossDB(geom.Pt(0, 0), geom.Pt(100, 0)); got != 20 {
		t.Errorf("crossing one hill = %v, want 20", got)
	}
	if got := hills.ExtraLossDB(geom.Pt(0, 0), geom.Pt(0, 100)); got != 30 {
		t.Errorf("crossing other hill = %v, want 30", got)
	}
	if got := hills.ExtraLossDB(geom.Pt(100, 100), geom.Pt(101, 101)); got != 0 {
		t.Errorf("clear path = %v, want 0", got)
	}
	grid := WallGrid{LossDBPerKm: 10}
	if got := grid.ExtraLossDB(geom.Pt(0, 0), geom.Pt(500, 0)); got != 5 {
		t.Errorf("wall grid = %v, want 5", got)
	}
}

func TestSegmentIntersectsDisc(t *testing.T) {
	tests := []struct {
		a, b, c geom.Point
		r       float64
		want    bool
	}{
		{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 0), 1, true},
		{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 2), 1, false},
		{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 0.5), 1, true},
		{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 0), 1, false}, // beyond endpoint
		{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0, 0.5), 1, true},
	}
	for i, tt := range tests {
		if got := segmentIntersectsDisc(tt.a, tt.b, tt.c, tt.r); got != tt.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestRouteWalk(t *testing.T) {
	route := NewRouteWalk([]geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100)}, 1)
	if got := route.TotalDuration(); got != 200 {
		t.Errorf("duration = %v, want 200", got)
	}
	tests := []struct {
		t    float64
		want geom.Point
	}{
		{0, geom.Pt(0, 0)},
		{50, geom.Pt(50, 0)},
		{100, geom.Pt(100, 0)},
		{150, geom.Pt(100, 50)},
		{999, geom.Pt(100, 100)},
		{-5, geom.Pt(0, 0)},
	}
	for _, tt := range tests {
		if got := route.PosAt(tt.t); got.Dist(tt.want) > 1e-9 {
			t.Errorf("PosAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestRouteWalkDegenerate(t *testing.T) {
	empty := NewRouteWalk(nil, 1)
	if got := empty.PosAt(10); got != (geom.Point{}) {
		t.Errorf("empty route = %v", got)
	}
	single := NewRouteWalk([]geom.Point{geom.Pt(3, 3)}, 1)
	if got := single.PosAt(10); got != geom.Pt(3, 3) {
		t.Errorf("single waypoint = %v", got)
	}
	if got := single.TotalDuration(); got != 0 {
		t.Errorf("single duration = %v", got)
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	min, max := geom.Pt(-100, -50), geom.Pt(100, 50)
	m := NewRandomWaypoint(min, max, 1.5, 3600, 99)
	f := func(tRaw uint16) bool {
		p := m.PosAt(float64(tRaw % 3600))
		return p.X >= min.X-1e-9 && p.X <= max.X+1e-9 &&
			p.Y >= min.Y-1e-9 && p.Y <= max.Y+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	a := NewRandomWaypoint(geom.Pt(0, 0), geom.Pt(10, 10), 1, 100, 7)
	b := NewRandomWaypoint(geom.Pt(0, 0), geom.Pt(10, 10), 1, 100, 7)
	for _, tm := range []float64{0, 10, 55.5, 99} {
		if a.PosAt(tm) != b.PosAt(tm) {
			t.Fatal("same seed must give same trajectory")
		}
	}
}

func TestUniformDeploymentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []DeploymentConfig{
		{N: 0, Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), RangeMin: 1, RangeMax: 2},
		{N: 5, Min: geom.Pt(1, 1), Max: geom.Pt(0, 0), RangeMin: 1, RangeMax: 2},
		{N: 5, Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), RangeMin: 0, RangeMax: 2},
		{N: 5, Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), RangeMin: 3, RangeMax: 2},
	}
	for i, cfg := range bad {
		if _, err := UniformDeployment(cfg, rng); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestUniformDeploymentProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DeploymentConfig{
		N: 500, Min: geom.Pt(-100, -100), Max: geom.Pt(100, 100),
		RangeMin: 50, RangeMax: 80,
	}
	aps, err := UniformDeployment(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(aps) != 500 {
		t.Fatalf("got %d APs", len(aps))
	}
	macs := make(map[dot11.MAC]bool)
	for _, ap := range aps {
		if ap.Pos.X < -100 || ap.Pos.X > 100 || ap.Pos.Y < -100 || ap.Pos.Y > 100 {
			t.Fatalf("AP out of bounds: %v", ap.Pos)
		}
		if ap.MaxRange < 50 || ap.MaxRange > 80 {
			t.Fatalf("range out of bounds: %v", ap.MaxRange)
		}
		if macs[ap.MAC] {
			t.Fatalf("duplicate MAC %v", ap.MAC)
		}
		macs[ap.MAC] = true
	}
}

// The campus channel mix must reproduce Fig 8's headline: ~93.7% of APs on
// channels 1, 6, 11.
func TestChannelDistributionFig8(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := DeploymentConfig{
		N: 5000, Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000),
		RangeMin: 100, RangeMax: 100,
	}
	aps, err := UniformDeployment(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, ap := range aps {
		counts[ap.Channel]++
	}
	main := counts[1] + counts[6] + counts[11]
	frac := float64(main) / float64(len(aps))
	if frac < 0.90 || frac > 0.97 {
		t.Errorf("channels 1/6/11 fraction = %.3f, want ~0.937", frac)
	}
	if counts[6] < counts[1] || counts[6] < counts[11] {
		t.Error("channel 6 should be the most popular")
	}
}

func TestBiasedDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DeploymentConfig{
		N: 5, Min: geom.Pt(-200, -200), Max: geom.Pt(200, 200),
		RangeMin: 300, RangeMax: 300,
	}
	aps, err := BiasedDeployment(cfg, 10, geom.Pt(150, 150), 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(aps) != 15 {
		t.Fatalf("got %d APs, want 15", len(aps))
	}
	for _, ap := range aps[5:] {
		if ap.Pos.Dist(geom.Pt(150, 150)) > 30+1e-9 {
			t.Errorf("cluster AP %v outside cluster", ap.Pos)
		}
	}
}

func TestCampusDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := CampusDeployment(3, rng); err == nil {
		t.Error("want error for tiny campus")
	}
	aps, err := CampusDeployment(200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(aps) != 200 {
		t.Fatalf("got %d APs", len(aps))
	}
}

func TestScanBurst(t *testing.T) {
	w := NewWorld(3)
	ap1, _ := NewAP(0, "a", geom.Pt(10, 0), 1, 100)
	ap2, _ := NewAP(1, "b", geom.Pt(0, 10), 6, 100)
	apFar, _ := NewAP(2, "c", geom.Pt(5000, 0), 11, 100)
	w.AddAP(ap1)
	w.AddAP(ap2)
	w.AddAP(apFar)
	dev := &Device{MAC: NewMAC(0xD0, 1)}
	events := ScanBurst(w, dev, 100, geom.Pt(0, 0), 7)
	nReq, nResp := 0, 0
	for _, ev := range events {
		switch ev.Frame.Subtype {
		case dot11.SubtypeProbeRequest:
			nReq++
			if ev.FromAP {
				t.Error("probe request marked FromAP")
			}
		case dot11.SubtypeProbeResp:
			nResp++
			if !ev.FromAP {
				t.Error("probe response not marked FromAP")
			}
			if ev.Frame.Addr2 == apFar.MAC {
				t.Error("out-of-range AP must not respond")
			}
		}
		if ev.TimeSec < 100 || ev.TimeSec > 101 {
			t.Errorf("event time %v out of burst window", ev.TimeSec)
		}
	}
	if nReq != 11 {
		t.Errorf("probe requests = %d, want 11 (one per channel)", nReq)
	}
	if nResp != 2 {
		t.Errorf("probe responses = %d, want 2", nResp)
	}
}

func TestAssociatedChatter(t *testing.T) {
	w := NewWorld(3)
	near, _ := NewAP(0, "near", geom.Pt(10, 0), 6, 100)
	far, _ := NewAP(1, "far", geom.Pt(90, 0), 6, 100)
	w.AddAP(near)
	w.AddAP(far)
	dev := &Device{MAC: NewMAC(0xD0, 2)}
	evs := AssociatedChatter(w, dev, 5, geom.Pt(0, 0), 1)
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Frame.Addr1 != near.MAC {
		t.Error("chatter should target the nearest AP")
	}
	if evs[0].Frame.Subtype != dot11.SubtypeAssocReq {
		t.Errorf("subtype = %v", evs[0].Frame.Subtype)
	}
	// No APs in range: no chatter.
	if evs := AssociatedChatter(w, dev, 5, geom.Pt(9999, 9999), 1); len(evs) != 0 {
		t.Errorf("expected no events, got %d", len(evs))
	}
}

func TestBeaconTraffic(t *testing.T) {
	w := testWorld(t, 3, 11)
	evs := BeaconTraffic(w, 0, 1.0, 0.1)
	if len(evs) != 30 {
		t.Fatalf("got %d beacons, want 30", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeSec < evs[i-1].TimeSec {
			t.Fatal("events not sorted")
		}
	}
	for _, ev := range evs {
		if ev.Frame.Subtype != dot11.SubtypeBeacon || !ev.FromAP {
			t.Fatalf("bad beacon event %+v", ev)
		}
	}
}

func TestWalkTrace(t *testing.T) {
	w := testWorld(t, 50, 13)
	dev := &Device{
		MAC:      NewMAC(0xD0, 3),
		Mobility: NewRouteWalk([]geom.Point{geom.Pt(-400, 0), geom.Pt(400, 0)}, 1.5),
	}
	evs := WalkTrace(w, dev, 300, 30)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	nBursts := 0
	for _, ev := range evs {
		if ev.Frame.Subtype == dot11.SubtypeProbeRequest && ev.Channel == 1 {
			nBursts++
		}
	}
	if nBursts != 10 {
		t.Errorf("bursts = %d, want 10", nBursts)
	}
}

func TestOfficeTraceWeekdayEffect(t *testing.T) {
	w := testWorld(t, 80, 17)
	w.Devices = DefaultPopulation(150, geom.Pt(-500, -500), geom.Pt(500, 500), w.RNG())
	days := OfficeTrace(w, 7, 5, w.RNG()) // start Friday like the paper
	if len(days) != 7 {
		t.Fatalf("got %d days", len(days))
	}
	// Count distinct devices per day; weekdays should average more.
	perDay := make([]int, 7)
	for d, evs := range days {
		seen := make(map[dot11.MAC]bool)
		for _, ev := range evs {
			if !ev.FromAP {
				seen[ev.Frame.Addr2] = true
			}
		}
		perDay[d] = len(seen)
	}
	// Day indices: start Friday(5): d0=Fri, d1=Sat, d2=Sun, d3-6=Mon-Thu.
	weekend := float64(perDay[1]+perDay[2]) / 2
	weekdaySum := 0
	for _, d := range []int{0, 3, 4, 5, 6} {
		weekdaySum += perDay[d]
	}
	weekday := float64(weekdaySum) / 5
	if weekday <= weekend {
		t.Errorf("weekday avg %.1f should exceed weekend avg %.1f (perDay=%v)",
			weekday, weekend, perDay)
	}
}

func TestDevicePosAt(t *testing.T) {
	d := &Device{Home: geom.Pt(5, 5)}
	if d.PosAt(100) != geom.Pt(5, 5) {
		t.Error("nil mobility should stay home")
	}
	d.Mobility = Static{P: geom.Pt(1, 1)}
	if d.PosAt(0) != geom.Pt(1, 1) {
		t.Error("static mobility wrong")
	}
}

func TestShiftedLoss(t *testing.T) {
	base := shiftedLoss{base: rfFreeSpace{}, extraDB: 7}
	if got := base.LossDB(100, 2.4e9) - (rfFreeSpace{}).LossDB(100, 2.4e9); math.Abs(got-7) > 1e-12 {
		t.Errorf("extra loss = %v", got)
	}
}

// rfFreeSpace avoids an import cycle in the test while exercising the
// shiftedLoss wrapper with a trivial model.
type rfFreeSpace struct{}

func (rfFreeSpace) LossDB(distM, freqHz float64) float64 { return distM / 10 }

func TestRSSModel(t *testing.T) {
	w := testWorld(t, 30, 23)
	m := RSSModel{}
	readings := m.ReadRSS(w, geom.Pt(0, 0), nil)
	if len(readings) == 0 {
		t.Fatal("no readings at campus centre")
	}
	for _, r := range readings {
		if r.RSSIDBm < -95 {
			t.Errorf("reading below floor: %v", r.RSSIDBm)
		}
	}
	// Signal falls with distance (noiseless model).
	near, _ := NewAP(900, "near", geom.Pt(10, 0), 6, 100)
	w2 := NewWorld(1)
	w2.AddAP(near)
	r1 := m.ReadRSS(w2, geom.Pt(15, 0), nil)
	r2 := m.ReadRSS(w2, geom.Pt(60, 0), nil)
	if len(r1) != 1 || len(r2) != 1 || r1[0].RSSIDBm <= r2[0].RSSIDBm {
		t.Errorf("RSS not monotone: %v vs %v", r1, r2)
	}
	// Shadowing perturbs readings.
	noisy := RSSModel{ShadowingSigmaDB: 6}
	a := noisy.ReadRSS(w2, geom.Pt(15, 0), rand.New(rand.NewSource(1)))
	if len(a) == 1 && a[0].RSSIDBm == r1[0].RSSIDBm {
		t.Error("shadowing had no effect")
	}
	// Terrain attenuates.
	w2.Terrain = Hills{{Center: geom.Pt(12, 0), Radius: 1, LossDB: 30}}
	blocked := m.ReadRSS(w2, geom.Pt(15, 0), nil)
	if len(blocked) == 1 && blocked[0].RSSIDBm >= r1[0].RSSIDBm {
		t.Error("terrain loss not applied")
	}
}
