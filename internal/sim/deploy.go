package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// DeploymentConfig controls synthetic AP deployment generation.
type DeploymentConfig struct {
	// N is the number of APs.
	N int
	// Min and Max bound the rectangular deployment area (metres).
	Min, Max geom.Point
	// RangeMin and RangeMax bound the per-AP maximum transmission distance
	// drawn uniformly; set both equal for the constant-r analysis setting.
	RangeMin, RangeMax float64
	// ChannelWeights maps channel → selection weight. Nil uses the
	// campus-measured distribution (Fig 8: 93.7% on channels 1/6/11).
	ChannelWeights map[int]float64
}

// CampusChannelWeights is the channel distribution measured around the UML
// north campus (paper Fig 8): channels 1, 6 and 11 carry 93.7% of the APs,
// channel 6 being the most popular (most consumer APs' default).
func CampusChannelWeights() map[int]float64 {
	return map[int]float64{
		1:  0.268,
		2:  0.008,
		3:  0.010,
		4:  0.008,
		5:  0.006,
		6:  0.430,
		7:  0.006,
		8:  0.008,
		9:  0.010,
		10: 0.007,
		11: 0.239,
	}
}

func (c DeploymentConfig) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sim: deployment needs N > 0, got %d", c.N)
	}
	if c.Max.X <= c.Min.X || c.Max.Y <= c.Min.Y {
		return fmt.Errorf("sim: empty deployment area %v..%v", c.Min, c.Max)
	}
	if c.RangeMin <= 0 || c.RangeMax < c.RangeMin {
		return fmt.Errorf("sim: invalid range bounds [%v, %v]", c.RangeMin, c.RangeMax)
	}
	return nil
}

func pickChannel(weights map[int]float64, rng *rand.Rand) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	// Iterate channels in fixed order for determinism.
	for ch := 1; ch <= 14; ch++ {
		w, ok := weights[ch]
		if !ok {
			continue
		}
		if x < w {
			return ch
		}
		x -= w
	}
	return 6
}

// UniformDeployment scatters APs uniformly at random over the area — the
// distribution assumed by Theorems 2 and 3.
func UniformDeployment(cfg DeploymentConfig, rng *rand.Rand) ([]*AP, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	weights := cfg.ChannelWeights
	if weights == nil {
		weights = CampusChannelWeights()
	}
	aps := make([]*AP, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		pos := geom.Point{
			X: cfg.Min.X + rng.Float64()*(cfg.Max.X-cfg.Min.X),
			Y: cfg.Min.Y + rng.Float64()*(cfg.Max.Y-cfg.Min.Y),
		}
		r := cfg.RangeMin + rng.Float64()*(cfg.RangeMax-cfg.RangeMin)
		ap, err := NewAP(i, fmt.Sprintf("net-%04d", i), pos, pickChannel(weights, rng), r)
		if err != nil {
			return nil, err
		}
		aps = append(aps, ap)
	}
	return aps, nil
}

// BiasedDeployment reproduces the paper's Fig 4 scenario: nUniform APs
// uniform over the whole area plus nCluster APs packed into a small disc —
// the distribution that breaks the Centroid baseline but not
// disc-intersection.
func BiasedDeployment(cfg DeploymentConfig, nCluster int, clusterCenter geom.Point,
	clusterRadius float64, rng *rand.Rand) ([]*AP, error) {
	aps, err := UniformDeployment(cfg, rng)
	if err != nil {
		return nil, err
	}
	weights := cfg.ChannelWeights
	if weights == nil {
		weights = CampusChannelWeights()
	}
	for i := 0; i < nCluster; i++ {
		// Uniform in the cluster disc.
		for {
			pos := geom.Point{
				X: clusterCenter.X + (rng.Float64()*2-1)*clusterRadius,
				Y: clusterCenter.Y + (rng.Float64()*2-1)*clusterRadius,
			}
			if pos.Dist(clusterCenter) > clusterRadius {
				continue
			}
			r := cfg.RangeMin + rng.Float64()*(cfg.RangeMax-cfg.RangeMin)
			ap, err := NewAP(cfg.N+i, fmt.Sprintf("cluster-%04d", i), pos,
				pickChannel(weights, rng), r)
			if err != nil {
				return nil, err
			}
			aps = append(aps, ap)
			break
		}
	}
	return aps, nil
}

// CampusDeployment builds a UML-north-campus-like deployment: a dense urban
// core with building clusters plus scattered residential APs, campus-scale
// extents (~1.5 km), and the measured channel mix. This is the workload for
// the localization accuracy experiments (Figs 13-17).
func CampusDeployment(n int, rng *rand.Rand) ([]*AP, error) {
	if n < 10 {
		return nil, fmt.Errorf("sim: campus deployment needs n >= 10, got %d", n)
	}
	half := n / 2
	base := DeploymentConfig{
		N:        half,
		Min:      geom.Pt(-750, -750),
		Max:      geom.Pt(750, 750),
		RangeMin: 60,
		RangeMax: 140,
	}
	aps, err := UniformDeployment(base, rng)
	if err != nil {
		return nil, err
	}
	// Building clusters: denser AP pockets like dorms and lab buildings.
	clusters := []geom.Point{
		geom.Pt(-300, 200), geom.Pt(250, -150), geom.Pt(50, 400), geom.Pt(-150, -350),
	}
	weights := CampusChannelWeights()
	idx := half
	for len(aps) < n {
		c := clusters[rng.Intn(len(clusters))]
		pos := geom.Point{
			X: c.X + rng.NormFloat64()*60,
			Y: c.Y + rng.NormFloat64()*60,
		}
		r := 60 + rng.Float64()*80
		ap, err := NewAP(idx, fmt.Sprintf("bldg-%04d", idx), pos, pickChannel(weights, rng), r)
		if err != nil {
			return nil, err
		}
		aps = append(aps, ap)
		idx++
	}
	return aps, nil
}
