package sim

import (
	"math/rand"

	"repro/internal/geom"
)

// Mobility produces a device's position as a function of simulation time in
// seconds. Implementations must be deterministic for a given construction
// so traces are reproducible.
type Mobility interface {
	PosAt(t float64) geom.Point
}

// Static keeps a device at one position.
type Static struct {
	P geom.Point
}

var _ Mobility = Static{}

// PosAt implements Mobility.
func (s Static) PosAt(float64) geom.Point { return s.P }

// RouteWalk moves along a polyline of waypoints at constant speed, stopping
// at the final waypoint. This models the paper's experimenter carrying a
// tablet around the campus.
type RouteWalk struct {
	Waypoints []geom.Point
	// SpeedMPS is the walking speed in metres per second.
	SpeedMPS float64

	cumDist []float64
}

var _ Mobility = (*RouteWalk)(nil)

// NewRouteWalk builds a RouteWalk; it needs at least one waypoint.
func NewRouteWalk(waypoints []geom.Point, speedMPS float64) *RouteWalk {
	w := &RouteWalk{
		Waypoints: append([]geom.Point(nil), waypoints...),
		SpeedMPS:  speedMPS,
	}
	w.cumDist = make([]float64, len(w.Waypoints))
	for i := 1; i < len(w.Waypoints); i++ {
		w.cumDist[i] = w.cumDist[i-1] + w.Waypoints[i-1].Dist(w.Waypoints[i])
	}
	return w
}

// TotalDuration returns the time to traverse the whole route.
func (w *RouteWalk) TotalDuration() float64 {
	if len(w.cumDist) == 0 || w.SpeedMPS <= 0 {
		return 0
	}
	return w.cumDist[len(w.cumDist)-1] / w.SpeedMPS
}

// PosAt implements Mobility.
func (w *RouteWalk) PosAt(t float64) geom.Point {
	if len(w.Waypoints) == 0 {
		return geom.Point{}
	}
	if len(w.Waypoints) == 1 || w.SpeedMPS <= 0 || t <= 0 {
		return w.Waypoints[0]
	}
	dist := t * w.SpeedMPS
	last := len(w.Waypoints) - 1
	if dist >= w.cumDist[last] {
		return w.Waypoints[last]
	}
	// Find the segment containing dist.
	for i := 1; i <= last; i++ {
		if dist <= w.cumDist[i] {
			segLen := w.cumDist[i] - w.cumDist[i-1]
			if segLen == 0 {
				return w.Waypoints[i]
			}
			f := (dist - w.cumDist[i-1]) / segLen
			a, b := w.Waypoints[i-1], w.Waypoints[i]
			return geom.Point{X: a.X + f*(b.X-a.X), Y: a.Y + f*(b.Y-a.Y)}
		}
	}
	return w.Waypoints[last]
}

// RandomWaypoint is the classic random-waypoint mobility model inside a
// rectangular area: pick a uniform destination, move at the configured
// speed, pause, repeat. The trajectory is precomputed deterministically
// from the seed.
type RandomWaypoint struct {
	route *RouteWalk
}

var _ Mobility = (*RandomWaypoint)(nil)

// NewRandomWaypoint precomputes a random-waypoint trajectory covering at
// least duration seconds inside [min, max].
func NewRandomWaypoint(min, max geom.Point, speedMPS, duration float64, seed int64) *RandomWaypoint {
	rng := rand.New(rand.NewSource(seed))
	pt := func() geom.Point {
		return geom.Point{
			X: min.X + rng.Float64()*(max.X-min.X),
			Y: min.Y + rng.Float64()*(max.Y-min.Y),
		}
	}
	waypoints := []geom.Point{pt()}
	total := 0.0
	for total < duration*speedMPS {
		next := pt()
		total += waypoints[len(waypoints)-1].Dist(next)
		waypoints = append(waypoints, next)
	}
	return &RandomWaypoint{route: NewRouteWalk(waypoints, speedMPS)}
}

// PosAt implements Mobility.
func (r *RandomWaypoint) PosAt(t float64) geom.Point { return r.route.PosAt(t) }
