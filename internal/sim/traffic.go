package sim

import (
	"math/rand"
	"sort"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
)

// Profile describes a device's operating-system probing behaviour and
// presence pattern — the driver behind the paper's feasibility experiment
// (Figs 10-11): most mobile OSes actively scan by sending probe requests,
// some stay quiet unless associated.
type Profile struct {
	Name string `json:"name"`
	// Probes reports whether the OS actively scans with probe requests.
	Probes bool `json:"probes"`
	// ProbeIntervalSec is the mean interval between scan bursts.
	ProbeIntervalSec float64 `json:"probeIntervalSec"`
	// WeekdayPresence and WeekendPresence are the probabilities the device
	// shows up on a given weekday/weekend day (the office population of the
	// paper's 7-day trace).
	WeekdayPresence float64 `json:"weekdayPresence"`
	WeekendPresence float64 `json:"weekendPresence"`
	// SessionHours is how long a present device stays, in hours.
	SessionHours float64 `json:"sessionHours"`
}

// Standard device profiles. The mix is tuned so the synthetic 7-day trace
// reproduces the paper's findings: >50% of found mobiles probe every day,
// with peaks above 90%, and more devices on weekdays than weekends.
var (
	// ProfileStudentLaptop is a laptop brought to campus on weekdays; its
	// OS scans aggressively.
	ProfileStudentLaptop = Profile{
		Name: "student-laptop", Probes: true, ProbeIntervalSec: 60,
		WeekdayPresence: 0.85, WeekendPresence: 0.15, SessionHours: 6,
	}
	// ProfileSmartphone probes in bursts whenever its screen wakes.
	ProfileSmartphone = Profile{
		Name: "smartphone", Probes: true, ProbeIntervalSec: 120,
		WeekdayPresence: 0.7, WeekendPresence: 0.35, SessionHours: 8,
	}
	// ProfileQuietClient is configured not to probe (hidden-network-averse
	// OS or passive scanner); it is found only through its associated
	// traffic.
	ProfileQuietClient = Profile{
		Name: "quiet-client", Probes: false,
		WeekdayPresence: 0.5, WeekendPresence: 0.1, SessionHours: 7,
	}
	// ProfileResident is a nearby residence device present every day.
	ProfileResident = Profile{
		Name: "resident", Probes: true, ProbeIntervalSec: 300,
		WeekdayPresence: 0.9, WeekendPresence: 0.9, SessionHours: 12,
	}
)

// DefaultPopulation builds n devices with a realistic profile mix, placed
// uniformly in the given area.
func DefaultPopulation(n int, min, max geom.Point, rng *rand.Rand) []*Device {
	profiles := []Profile{
		ProfileStudentLaptop, ProfileStudentLaptop, ProfileStudentLaptop,
		ProfileSmartphone, ProfileSmartphone, ProfileSmartphone, ProfileSmartphone,
		ProfileQuietClient, ProfileQuietClient,
		ProfileResident,
	}
	devices := make([]*Device, 0, n)
	for i := 0; i < n; i++ {
		devices = append(devices, &Device{
			MAC:     NewMAC(0xD0, i),
			Profile: profiles[rng.Intn(len(profiles))],
			Home: geom.Point{
				X: min.X + rng.Float64()*(max.X-min.X),
				Y: min.Y + rng.Float64()*(max.Y-min.Y),
			},
			TX: rf.TypicalMobile,
		})
	}
	return devices
}

// TxEvent is one frame on the air: what was sent, when, from where, on
// which channel, by what radio. The sniffer decides per-event whether its
// receiver chain can capture and decode it.
type TxEvent struct {
	// TimeSec is the transmission time in seconds from trace start.
	TimeSec float64
	// Pos is the transmitter's position.
	Pos geom.Point
	// Channel is the 2.4 GHz channel the frame is sent on.
	Channel int
	// Frame is the 802.11 frame.
	Frame *dot11.Frame
	// TX is the transmitter's radio.
	TX rf.Transmitter
	// FromAP marks AP-originated frames (beacons, probe responses).
	FromAP bool
}

// sortEvents orders events by time.
func sortEvents(evs []TxEvent) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].TimeSec < evs[j].TimeSec })
}

// ScanBurst generates the frames of one active scan by dev at time t and
// position pos: a broadcast probe request on every channel, plus a probe
// response from every communicable AP on the AP's channel.
//
// This is the paper's core observable: the probing traffic between a mobile
// and the set of APs communicable with it.
func ScanBurst(w *World, dev *Device, t float64, pos geom.Point, seq uint16) []TxEvent {
	events := make([]TxEvent, 0, dot11.MaxChannel+4)
	for ch := dot11.MinChannel; ch <= dot11.MaxChannel; ch++ {
		freq, err := dot11.ChannelFreqHz(ch)
		if err != nil {
			continue
		}
		tx := dev.TX
		tx.FreqHz = freq
		events = append(events, TxEvent{
			TimeSec: t + float64(ch-1)*0.004, // 4 ms dwell per channel
			Pos:     pos,
			Channel: ch,
			Frame:   dot11.NewProbeRequest(dev.MAC, "", seq),
			TX:      tx,
		})
	}
	for _, ap := range w.CommunicableAPs(pos) {
		events = append(events, TxEvent{
			TimeSec: t + float64(ap.Channel-1)*0.004 + 0.001,
			Pos:     ap.Pos,
			Channel: ap.Channel,
			Frame:   dot11.NewProbeResponse(ap.MAC, dev.MAC, ap.SSID, ap.Channel, seq),
			TX:      ap.TX,
			FromAP:  true,
		})
	}
	return events
}

// AssociatedChatter generates the non-probing traffic of a quiet device: a
// handful of frames to its nearest communicable AP. Such devices are
// "found" by the sniffer but not "probing" — the denominator of the
// paper's Fig 11 percentages.
func AssociatedChatter(w *World, dev *Device, t float64, pos geom.Point, seq uint16) []TxEvent {
	aps := w.CommunicableAPs(pos)
	if len(aps) == 0 {
		return nil
	}
	best := aps[0]
	for _, ap := range aps[1:] {
		if pos.Dist(ap.Pos) < pos.Dist(best.Pos) {
			best = ap
		}
	}
	freq, err := dot11.ChannelFreqHz(best.Channel)
	if err != nil {
		return nil
	}
	tx := dev.TX
	tx.FreqHz = freq
	fr := &dot11.Frame{
		Type:    dot11.TypeManagement,
		Subtype: dot11.SubtypeAssocReq,
		Addr1:   best.MAC,
		Addr2:   dev.MAC,
		Addr3:   best.MAC,
		Seq:     seq,
	}
	return []TxEvent{{
		TimeSec: t, Pos: pos, Channel: best.Channel, Frame: fr, TX: tx,
	}}
}

// BeaconTraffic generates beacons from every AP over the window at the
// given interval (102.4 ms in real networks; configurable here to bound
// event counts in long simulations).
func BeaconTraffic(w *World, startSec, durationSec, intervalSec float64) []TxEvent {
	var events []TxEvent
	seq := uint16(0)
	steps := int(durationSec / intervalSec)
	for i := 0; i < steps; i++ {
		t := startSec + float64(i)*intervalSec
		for _, ap := range w.APs {
			events = append(events, TxEvent{
				TimeSec: t,
				Pos:     ap.Pos,
				Channel: ap.Channel,
				Frame:   dot11.NewBeacon(ap.MAC, ap.SSID, ap.Channel, uint64(t*1e6), seq),
				TX:      ap.TX,
				FromAP:  true,
			})
		}
		seq++
	}
	sortEvents(events)
	return events
}

// WalkTrace generates the probing traffic of a device walking a mobility
// trajectory, scanning every intervalSec. The returned events include the
// AP probe responses, so the capture pipeline sees both link directions.
func WalkTrace(w *World, dev *Device, durationSec, intervalSec float64) []TxEvent {
	var events []TxEvent
	seq := uint16(1)
	for t := 0.0; t < durationSec; t += intervalSec {
		pos := dev.PosAt(t)
		events = append(events, ScanBurst(w, dev, t, pos, seq)...)
		seq++
	}
	sortEvents(events)
	return events
}

// secondsPerDay is one day of trace time.
const secondsPerDay = 86400.0

// OfficeTraceDay generates one day of the feasibility trace: every device
// present that day emits either scan bursts (probing profiles) or
// associated chatter (quiet profiles) during its session hours.
// weekday selects which presence probability applies.
func OfficeTraceDay(w *World, day int, weekday bool, rng *rand.Rand) []TxEvent {
	var events []TxEvent
	dayStart := float64(day) * secondsPerDay
	for _, dev := range w.Devices {
		p := dev.Profile.WeekendPresence
		if weekday {
			p = dev.Profile.WeekdayPresence
		}
		if rng.Float64() >= p {
			continue
		}
		// Session starts between 08:00 and 12:00.
		sessionStart := dayStart + (8+4*rng.Float64())*3600
		sessionLen := dev.Profile.SessionHours * 3600
		interval := dev.Profile.ProbeIntervalSec
		if !dev.Profile.Probes {
			// Quiet devices chat a few times an hour.
			interval = 1200
		}
		seq := uint16(1)
		for t := sessionStart; t < sessionStart+sessionLen; t += interval * (0.5 + rng.Float64()) {
			pos := dev.PosAt(t - dayStart)
			if dev.Profile.Probes {
				events = append(events, ScanBurst(w, dev, t, pos, seq)...)
			} else {
				events = append(events, AssociatedChatter(w, dev, t, pos, seq)...)
			}
			seq++
		}
	}
	sortEvents(events)
	return events
}

// OfficeTrace generates a multi-day feasibility trace starting on the given
// weekday (0=Sunday … 6=Saturday), mirroring the paper's 7-day office
// capture from Friday Oct 24 to Thursday Oct 30, 2008.
func OfficeTrace(w *World, days int, startWeekday int, rng *rand.Rand) [][]TxEvent {
	out := make([][]TxEvent, 0, days)
	for d := 0; d < days; d++ {
		wd := (startWeekday + d) % 7
		isWeekday := wd >= 1 && wd <= 5
		out = append(out, OfficeTraceDay(w, d, isWeekday, rng))
	}
	return out
}
