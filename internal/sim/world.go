// Package sim is the campus-scale wireless world simulator that substitutes
// for the paper's physical testbed. It models access points, mobile devices
// with OS-specific probing behaviour, mobility, terrain obstruction and
// radio propagation, and generates the 802.11 management traffic the
// sniffer component captures.
//
// The paper's localization analysis assumes the spherical worst-case model
// (every AP reachable within its maximum transmission distance); the
// simulator supports both that model and a link-budget model driven by
// package rf, so experiments can quantify how much reality deviates from
// the analysis.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
)

// AP is a simulated access point.
type AP struct {
	ID   string    `json:"id"`
	MAC  dot11.MAC `json:"mac"`
	SSID string    `json:"ssid"`
	// Pos is the AP's true position in the local plane (metres).
	Pos geom.Point `json:"pos"`
	// Channel is the 2.4 GHz channel the AP beacons on.
	Channel int `json:"channel"`
	// MaxRange is the maximum transmission distance r_i of the spherical
	// model, in metres.
	MaxRange float64 `json:"maxRange"`
	// TX describes the AP's radio for link-budget propagation.
	TX rf.Transmitter `json:"tx"`
}

// Disc returns the AP's maximum-coverage disc.
func (a *AP) Disc() geom.Circle { return geom.Circle{C: a.Pos, R: a.MaxRange} }

// Device is a simulated mobile device.
type Device struct {
	MAC dot11.MAC `json:"mac"`
	// Profile controls probing behaviour and presence.
	Profile Profile `json:"profile"`
	// Mobility produces the device's position over time; nil means the
	// device stays at Home.
	Mobility Mobility `json:"-"`
	// Home is the device's position when Mobility is nil.
	Home geom.Point `json:"home"`
	// TX describes the device's radio.
	TX rf.Transmitter `json:"tx"`
}

// PosAt returns the device position at simulation time t (seconds).
func (d *Device) PosAt(t float64) geom.Point {
	if d.Mobility == nil {
		return d.Home
	}
	return d.Mobility.PosAt(t)
}

// PropagationModel selects how communicability is decided.
type PropagationModel int

// Propagation models.
const (
	// ModelSpherical is the paper's worst-case disc model: a device can
	// communicate with an AP iff it is within the AP's MaxRange.
	ModelSpherical PropagationModel = iota + 1
	// ModelLinkBudget decides communicability from the rf link budget in
	// both directions plus terrain loss.
	ModelLinkBudget
	// ModelSphericalObstructed is the spherical model with hard terrain
	// shadowing: a device communicates with an AP iff it is within the
	// AP's MaxRange AND the straight-line path crosses no obstruction.
	// Real coverage is then a subset of the nominal disc — the situation
	// the paper's worst-case argument (§III-A) addresses.
	ModelSphericalObstructed
)

// World holds the simulated campus.
type World struct {
	// APs are the deployed access points.
	APs []*AP
	// Devices are the mobile devices.
	Devices []*Device
	// Terrain adds obstruction loss between points; nil means flat.
	Terrain Terrain
	// Model selects the communicability rule. Zero value behaves as
	// ModelSpherical.
	Model PropagationModel
	// DeviceChain is the mobile-side receive chain used for the
	// link-budget model (a typical internal antenna + card).
	DeviceChain rf.Chain

	rng *rand.Rand
}

// NewWorld creates an empty world with a deterministic random source.
func NewWorld(seed int64) *World {
	return &World{
		Model:       ModelSpherical,
		DeviceChain: rf.ChainDLink(),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// RNG exposes the world's deterministic random source.
func (w *World) RNG() *rand.Rand { return w.rng }

// AddAP appends an AP.
func (w *World) AddAP(ap *AP) { w.APs = append(w.APs, ap) }

// AddDevice appends a device.
func (w *World) AddDevice(d *Device) { w.Devices = append(w.Devices, d) }

// APByMAC returns the AP with the given BSSID.
func (w *World) APByMAC(mac dot11.MAC) (*AP, bool) {
	for _, ap := range w.APs {
		if ap.MAC == mac {
			return ap, true
		}
	}
	return nil, false
}

// Communicable reports whether a device at pos can exchange probe traffic
// with the AP under the world's propagation model.
func (w *World) Communicable(pos geom.Point, ap *AP) bool {
	switch w.Model {
	case ModelSphericalObstructed:
		if pos.Dist(ap.Pos) > ap.MaxRange {
			return false
		}
		return w.Terrain == nil || w.Terrain.ExtraLossDB(pos, ap.Pos) == 0
	case ModelLinkBudget:
		extra := 0.0
		if w.Terrain != nil {
			extra = w.Terrain.ExtraLossDB(pos, ap.Pos)
		}
		d := pos.Dist(ap.Pos)
		model := shiftedLoss{base: rf.LogDistance{Exponent: 2.8, RefDistM: 1}, extraDB: extra}
		// Probing is bidirectional: the AP must hear the probe request and
		// the device must hear the response.
		apChain := rf.Chain{AntennaGainDBi: ap.TX.AntennaGainDBi, Card: rf.UbiquitiSRC}
		up := rf.Decodable(deviceTX(pos, ap), apChain, d, model)
		down := rf.Decodable(ap.TX, w.DeviceChain, d, model)
		return up && down
	default: // ModelSpherical and zero value
		return pos.Dist(ap.Pos) <= ap.MaxRange
	}
}

// deviceTX builds the uplink transmitter for a device at pos probing ap.
func deviceTX(_ geom.Point, ap *AP) rf.Transmitter {
	tx := rf.TypicalMobile
	tx.FreqHz = ap.TX.FreqHz
	return tx
}

// CommunicableAPs returns the set Γ of APs a device at pos can communicate
// with — the observation the Marauder's map localization consumes.
func (w *World) CommunicableAPs(pos geom.Point) []*AP {
	var out []*AP
	for _, ap := range w.APs {
		if w.Communicable(pos, ap) {
			out = append(out, ap)
		}
	}
	return out
}

// shiftedLoss adds a constant obstruction loss to a base path-loss model.
type shiftedLoss struct {
	base    rf.PathLoss
	extraDB float64
}

var _ rf.PathLoss = shiftedLoss{}

func (s shiftedLoss) LossDB(distM, freqHz float64) float64 {
	return s.base.LossDB(distM, freqHz) + s.extraDB
}

// NewMAC deterministically derives a locally-administered MAC address from
// a namespace byte and an index.
func NewMAC(namespace byte, idx int) dot11.MAC {
	return dot11.MAC{
		0x02, namespace,
		byte(idx >> 24), byte(idx >> 16), byte(idx >> 8), byte(idx),
	}
}

// NewAP constructs an AP with sensible defaults on the given channel.
func NewAP(idx int, ssid string, pos geom.Point, channel int, maxRange float64) (*AP, error) {
	freq, err := dot11.ChannelFreqHz(channel)
	if err != nil {
		return nil, fmt.Errorf("sim: ap %d: %w", idx, err)
	}
	tx := rf.TypicalAP
	tx.FreqHz = freq
	return &AP{
		ID:       fmt.Sprintf("ap-%04d", idx),
		MAC:      NewMAC(0xA0, idx),
		SSID:     ssid,
		Pos:      pos,
		Channel:  channel,
		MaxRange: maxRange,
		TX:       tx,
	}, nil
}
