package sim

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rf"
)

// RSSModel produces device-side received-signal-strength readings — what a
// mobile device itself measures from surrounding APs. The paper's point is
// that a third-party attacker can NOT obtain these readings (they exist
// only inside the victim's radio); the simulator exposes them so the
// classic RSS-based positioning baselines (trilateration, fingerprinting)
// can be implemented and compared against the set-only Marauder's map.
type RSSModel struct {
	// PathLoss is the propagation model; nil means log-distance n=2.8.
	PathLoss rf.PathLoss
	// ShadowingSigmaDB adds i.i.d. log-normal shadowing of this standard
	// deviation to each reading; 0 disables it.
	ShadowingSigmaDB float64
	// FloorDBm is the weakest reading a card reports (sensitivity floor);
	// readings below it are dropped. Zero means -95 dBm.
	FloorDBm float64
}

func (m RSSModel) withDefaults() RSSModel {
	if m.PathLoss == nil {
		m.PathLoss = rf.LogDistance{Exponent: 2.8, RefDistM: 1}
	}
	if m.FloorDBm == 0 {
		m.FloorDBm = -95
	}
	return m
}

// RSSReading is one AP's signal strength as measured at the device.
type RSSReading struct {
	AP      *AP
	RSSIDBm float64
}

// ReadRSS returns the device-side RSS readings at pos for every AP whose
// signal clears the floor, with per-reading shadowing drawn from rng (rng
// may be nil when ShadowingSigmaDB is 0).
func (m RSSModel) ReadRSS(w *World, pos geom.Point, rng *rand.Rand) []RSSReading {
	m = m.withDefaults()
	var out []RSSReading
	for _, ap := range w.APs {
		d := pos.Dist(ap.Pos)
		if d < 1 {
			d = 1
		}
		rssi := ap.TX.EIRPDBm() - m.PathLoss.LossDB(d, ap.TX.FreqHz)
		if w.Terrain != nil {
			rssi -= w.Terrain.ExtraLossDB(pos, ap.Pos)
		}
		if m.ShadowingSigmaDB > 0 && rng != nil {
			rssi += rng.NormFloat64() * m.ShadowingSigmaDB
		}
		if rssi < m.FloorDBm {
			continue
		}
		out = append(out, RSSReading{AP: ap, RSSIDBm: rssi})
	}
	return out
}
