package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"runtime"
	"testing"

	"repro/internal/geom"
)

// hashF64 folds a float through its exact bit pattern, so the digest is
// byte-identical or not at all — no epsilon smearing.
func hashF64(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}

func hashInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:])
}

func hashPoint(h hash.Hash, p geom.Point) {
	hashF64(h, p.X)
	hashF64(h, p.Y)
}

// worldDigest generates the full soak-rig input — deployment, population,
// mobility samples, three days of diurnal office traffic — from one seed
// and folds every field that reaches the pipeline into a SHA-256. Two
// equal digests mean byte-identical schedules and traffic.
func worldDigest(t *testing.T, seed int64) string {
	t.Helper()
	w := NewWorld(seed)
	min, max := geom.Pt(-350, -350), geom.Pt(350, 350)
	aps, err := UniformDeployment(DeploymentConfig{
		N: 120, Min: min, Max: max, RangeMin: 70, RangeMax: 130,
	}, w.RNG())
	if err != nil {
		t.Fatal(err)
	}
	w.APs = aps
	devs := DefaultPopulation(60, min, max, w.RNG())
	for i, d := range devs {
		if i%8 == 0 {
			d.Mobility = NewRandomWaypoint(min, max, 1.2, 3*86400, seed+int64(i))
		}
		w.AddDevice(d)
	}

	h := sha256.New()
	for _, ap := range aps {
		h.Write(ap.MAC[:])
		h.Write([]byte(ap.ID))
		h.Write([]byte(ap.SSID))
		hashPoint(h, ap.Pos)
		hashInt(h, ap.Channel)
		hashF64(h, ap.MaxRange)
	}
	for _, d := range devs {
		h.Write(d.MAC[:])
		h.Write([]byte(d.Profile.Name))
		hashPoint(h, d.Home)
		// Mobility is part of the schedule: sample the walk on a fixed
		// lattice instead of trusting the type's internals.
		for ts := 0.0; ts < 3*86400; ts += 7200 {
			hashPoint(h, d.PosAt(ts))
		}
	}
	for day := 0; day < 3; day++ {
		weekday := day != 1 // exercise both branches
		for _, ev := range OfficeTraceDay(w, day, weekday, w.RNG()) {
			hashF64(h, ev.TimeSec)
			hashPoint(h, ev.Pos)
			hashInt(h, ev.Channel)
			if ev.FromAP {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
			raw, err := ev.Frame.Encode()
			if err != nil {
				t.Fatalf("day %d: frame encode: %v", day, err)
			}
			h.Write(raw)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenWorldDigest pins seed 42's digest. It asserts more than the
// equality tests below: the generated world is stable across processes,
// machines and Go releases, so a checked-in BENCH_<pr>.json from one run
// is comparable with the next PR's. If an intentional generator change
// lands, re-pin this constant in the same commit and say so.
const goldenWorldDigest = "e78929b6a860fc7004a018f15e9c7c15d9d8f6615a480ae0a0ee3cafd39ff22e"

func TestWorldDigestGolden(t *testing.T) {
	if got := worldDigest(t, 42); got != goldenWorldDigest {
		t.Fatalf("world digest for seed 42 changed:\n got %s\nwant %s\n(an intentional generator change must re-pin the golden in the same commit)", got, goldenWorldDigest)
	}
}

func TestWorldDigestDeterministicAcrossRuns(t *testing.T) {
	a := worldDigest(t, 7)
	b := worldDigest(t, 7)
	if a != b {
		t.Fatalf("same seed, different traffic:\n%s\n%s", a, b)
	}
	if c := worldDigest(t, 8); c == a {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestWorldDigestIndependentOfGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	digests := map[string]bool{}
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		digests[worldDigest(t, 7)] = true
	}
	if len(digests) != 1 {
		t.Fatalf("traffic varies with GOMAXPROCS: %d distinct digests", len(digests))
	}
}
