package sim

import (
	"math"

	"repro/internal/geom"
)

// Terrain adds obstruction loss to a link between two points. The paper's
// coverage experiment (Fig 12) observes that "the area is not flat and the
// sniffer is obstructed by small hills"; Hill models that effect.
type Terrain interface {
	// ExtraLossDB returns the additional propagation loss in dB a link
	// between a and b suffers from obstructions.
	ExtraLossDB(a, b geom.Point) float64
}

// Flat is unobstructed terrain.
type Flat struct{}

var _ Terrain = Flat{}

// ExtraLossDB implements Terrain.
func (Flat) ExtraLossDB(_, _ geom.Point) float64 { return 0 }

// Hill is a circular obstruction: links whose straight-line path crosses
// the hill incur LossDB of attenuation (knife-edge diffraction, coarsely).
type Hill struct {
	Center geom.Point
	Radius float64
	LossDB float64
}

// Hills is a set of circular obstructions.
type Hills []Hill

var _ Terrain = Hills{}

// ExtraLossDB implements Terrain: each crossed hill adds its loss.
func (hs Hills) ExtraLossDB(a, b geom.Point) float64 {
	total := 0.0
	for _, h := range hs {
		if segmentIntersectsDisc(a, b, h.Center, h.Radius) {
			total += h.LossDB
		}
	}
	return total
}

// segmentIntersectsDisc reports whether segment a-b passes within r of c.
func segmentIntersectsDisc(a, b, c geom.Point, r float64) bool {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	var t float64
	if l2 > 0 {
		t = ((c.X-a.X)*ab.X + (c.Y-a.Y)*ab.Y) / l2
		t = math.Max(0, math.Min(1, t))
	}
	closest := geom.Point{X: a.X + t*ab.X, Y: a.Y + t*ab.Y}
	return closest.Dist(c) <= r
}

// WallGrid models a dense urban block pattern: a constant extra loss per
// distance, approximating many light obstructions (walls, trees, people).
type WallGrid struct {
	// LossDBPerKm is the extra attenuation per kilometre of path.
	LossDBPerKm float64
}

var _ Terrain = WallGrid{}

// ExtraLossDB implements Terrain.
func (g WallGrid) ExtraLossDB(a, b geom.Point) float64 {
	return g.LossDBPerKm * a.Dist(b) / 1000
}
