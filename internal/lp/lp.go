// Package lp implements a dense two-phase simplex solver for small linear
// programs. The Marauder's map AP-Rad algorithm uses it to estimate AP
// maximum transmission distances: maximize Σ r_j subject to pairwise
// co-observation constraints r_i + r_j ≥ d_ij (or < d_ij) and box bounds.
//
// The solver handles ≤, ≥ and = constraints over non-negative variables and
// uses Bland's rule, so it cannot cycle.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint comparison operator.
type Relation int

// Constraint relations.
const (
	LE Relation = iota + 1 // Σ a_j x_j ≤ b
	GE                     // Σ a_j x_j ≥ b
	EQ                     // Σ a_j x_j = b
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is one linear constraint over the problem variables.
type Constraint struct {
	// Coeffs holds one coefficient per variable (dense).
	Coeffs []float64
	Rel    Relation
	// B is the right-hand side.
	B float64
}

// Problem is a linear program: maximize Objective·x subject to Constraints
// and x ≥ 0.
type Problem struct {
	// Objective holds the coefficient of each variable in the function to
	// maximize.
	Objective []float64
	// Constraints are the linear constraints.
	Constraints []Constraint
}

// Solver errors.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: objective is unbounded")
)

const (
	tol      = 1e-9
	maxIters = 200000
)

// Stats reports the work a solve took — the provenance of a solution.
type Stats struct {
	// Phase1Pivots counts pivots spent driving artificials to zero
	// (including the pivot-out of zero-level artificials).
	Phase1Pivots int
	// Phase2Pivots counts pivots optimizing the real objective.
	Phase2Pivots int
	// Constraints is the constraint count of the solved program.
	Constraints int
}

// Pivots is the total simplex pivot count across both phases.
func (s Stats) Pivots() int { return s.Phase1Pivots + s.Phase2Pivots }

// Solve maximizes the problem and returns the optimal variable assignment
// and objective value. It returns ErrInfeasible when no assignment satisfies
// the constraints and ErrUnbounded when the objective can grow without
// limit.
func Solve(p Problem) ([]float64, float64, error) {
	x, obj, _, err := SolveStats(p)
	return x, obj, err
}

// SolveStats is Solve with the solver-work statistics alongside, for
// callers that record training provenance.
func SolveStats(p Problem) ([]float64, float64, Stats, error) {
	var st Stats
	n := len(p.Objective)
	if n == 0 {
		return nil, 0, st, errors.New("lp: no variables")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, 0, st, fmt.Errorf("lp: constraint %d has %d coefficients, want %d",
				i, len(c.Coeffs), n)
		}
		switch c.Rel {
		case LE, GE, EQ:
		default:
			return nil, 0, st, fmt.Errorf("lp: constraint %d has invalid relation", i)
		}
	}
	st.Constraints = len(p.Constraints)

	t := newTableau(p)
	if err := t.phase1(); err != nil {
		st.Phase1Pivots = t.pivots
		return nil, 0, st, err
	}
	st.Phase1Pivots = t.pivots
	if err := t.phase2(); err != nil {
		st.Phase2Pivots = t.pivots - st.Phase1Pivots
		return nil, 0, st, err
	}
	st.Phase2Pivots = t.pivots - st.Phase1Pivots
	x := t.solution(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Objective[j] * x[j]
	}
	return x, obj, st, nil
}

// tableau is a standard-form simplex tableau. Columns: n structural
// variables, then slack/surplus variables, then artificial variables, then
// the RHS column.
type tableau struct {
	m, n     int       // constraint count, structural variable count
	nSlack   int       // slack/surplus count
	nArt     int       // artificial count
	rows     []float64 // (m+1) x width matrix, last row is objective
	width    int
	basis    []int // basic variable per row
	artStart int   // column index of first artificial
	costs    []float64
	pivots   int // Gauss-Jordan pivots performed
}

func newTableau(p Problem) *tableau {
	m := len(p.Constraints)
	n := len(p.Objective)

	// Normalize rows to b >= 0.
	type row struct {
		a   []float64
		rel Relation
		b   float64
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		a := make([]float64, n)
		copy(a, c.Coeffs)
		b := c.B
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row{a: a, rel: rel, b: b}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	width := n + nSlack + nArt + 1
	t := &tableau{
		m:        m,
		n:        n,
		nSlack:   nSlack,
		nArt:     nArt,
		width:    width,
		rows:     make([]float64, (m+1)*width),
		basis:    make([]int, m),
		artStart: n + nSlack,
		costs:    make([]float64, n),
	}
	copy(t.costs, p.Objective)

	slackCol := n
	artCol := t.artStart
	for i, r := range rows {
		base := i * width
		copy(t.rows[base:base+n], r.a)
		t.rows[base+width-1] = r.b
		switch r.rel {
		case LE:
			t.rows[base+slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.rows[base+slackCol] = -1 // surplus
			slackCol++
			t.rows[base+artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.rows[base+artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

func (t *tableau) at(i, j int) float64 { return t.rows[i*t.width+j] }

// pivot performs a Gauss-Jordan pivot on (pr, pc).
func (t *tableau) pivot(pr, pc int) {
	pv := t.at(pr, pc)
	inv := 1.0 / pv
	base := pr * t.width
	for j := 0; j < t.width; j++ {
		t.rows[base+j] *= inv
	}
	for i := 0; i <= t.m; i++ {
		if i == pr {
			continue
		}
		f := t.at(i, pc)
		if f == 0 {
			continue
		}
		rb := i * t.width
		for j := 0; j < t.width; j++ {
			t.rows[rb+j] -= f * t.rows[base+j]
		}
	}
	t.basis[pr] = pc
	t.pivots++
}

// runSimplex iterates simplex pivots on the current objective row (row m),
// maximizing, with Bland's rule. cols limits eligible entering columns.
func (t *tableau) runSimplex(cols int) error {
	for iter := 0; iter < maxIters; iter++ {
		// Entering column: smallest index with positive reduced cost
		// (we keep the objective row as reduced costs for maximization).
		pc := -1
		for j := 0; j < cols; j++ {
			if t.at(t.m, j) > tol {
				pc = j
				break
			}
		}
		if pc == -1 {
			return nil // optimal
		}
		// Leaving row: min ratio, Bland tie-break on basis index.
		pr := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.at(i, pc)
			if a > tol {
				ratio := t.at(i, t.width-1) / a
				if ratio < best-tol || (math.Abs(ratio-best) <= tol &&
					(pr == -1 || t.basis[i] < t.basis[pr])) {
					best = ratio
					pr = i
				}
			}
		}
		if pr == -1 {
			return ErrUnbounded
		}
		t.pivot(pr, pc)
	}
	return errors.New("lp: iteration limit exceeded")
}

// phase1 drives artificial variables to zero.
func (t *tableau) phase1() error {
	if t.nArt == 0 {
		return nil
	}
	// Phase-1 objective: maximize −Σ artificials. Build the reduced-cost
	// row: start from −1 on artificial columns and add back the basic rows
	// containing artificials.
	objBase := t.m * t.width
	for j := 0; j < t.width; j++ {
		t.rows[objBase+j] = 0
	}
	for j := t.artStart; j < t.artStart+t.nArt; j++ {
		t.rows[objBase+j] = -1
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			rb := i * t.width
			for j := 0; j < t.width; j++ {
				t.rows[objBase+j] += t.rows[rb+j]
			}
		}
	}
	if err := t.runSimplex(t.width - 1); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase-1 objective is bounded by construction; treat as internal.
			return errors.New("lp: internal: unbounded phase 1")
		}
		return err
	}
	// The objective row's RHS holds the negated phase-1 value, i.e.
	// Σ artificials at the optimum; infeasible if it stays positive.
	if v := t.at(t.m, t.width-1); v > 1e-6 {
		return ErrInfeasible
	}
	// Pivot any artificial still in the basis (at zero level) out.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		done := false
		for j := 0; j < t.artStart && !done; j++ {
			if math.Abs(t.at(i, j)) > tol {
				t.pivot(i, j)
				done = true
			}
		}
		// If the row is all zeros over structural+slack columns the
		// constraint is redundant; leave the artificial basic at zero.
	}
	return nil
}

// phase2 optimizes the real objective over structural and slack columns.
func (t *tableau) phase2() error {
	objBase := t.m * t.width
	for j := 0; j < t.width; j++ {
		t.rows[objBase+j] = 0
	}
	for j := 0; j < t.n; j++ {
		t.rows[objBase+j] = t.costs[j]
	}
	// Reduce against the current basis.
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b < t.n && t.costs[b] != 0 {
			f := t.at(t.m, b)
			if f == 0 {
				continue
			}
			rb := i * t.width
			for j := 0; j < t.width; j++ {
				t.rows[objBase+j] -= f * t.rows[rb+j]
			}
		}
	}
	// Exclude artificial columns from entering.
	return t.runSimplex(t.artStart)
}

func (t *tableau) solution(n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < n {
			x[b] = t.at(i, t.width-1)
			if x[b] < 0 && x[b] > -1e-7 {
				x[b] = 0
			}
		}
	}
	return x
}
