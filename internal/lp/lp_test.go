package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) ([]float64, float64) {
	t.Helper()
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return x, obj
}

func TestSolveBasicMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, B: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, B: 6},
		},
	}
	x, obj := solveOK(t, p)
	if math.Abs(obj-12) > 1e-8 {
		t.Errorf("obj = %v, want 12", obj)
	}
	if math.Abs(x[0]-4) > 1e-8 || math.Abs(x[1]) > 1e-8 {
		t.Errorf("x = %v, want [4 0]", x)
	}
}

func TestSolveClassicTwoVar(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
	p := Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{6, 4}, Rel: LE, B: 24},
			{Coeffs: []float64{1, 2}, Rel: LE, B: 6},
		},
	}
	x, obj := solveOK(t, p)
	if math.Abs(obj-21) > 1e-8 {
		t.Errorf("obj = %v, want 21", obj)
	}
	if math.Abs(x[0]-3) > 1e-8 || math.Abs(x[1]-1.5) > 1e-8 {
		t.Errorf("x = %v, want [3 1.5]", x)
	}
}

func TestSolveWithGE(t *testing.T) {
	// max x + y s.t. x + y <= 10, x >= 3, y >= 2 -> obj 10.
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, B: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, B: 3},
			{Coeffs: []float64{0, 1}, Rel: GE, B: 2},
		},
	}
	x, obj := solveOK(t, p)
	if math.Abs(obj-10) > 1e-8 {
		t.Errorf("obj = %v, want 10", obj)
	}
	if x[0] < 3-1e-8 || x[1] < 2-1e-8 {
		t.Errorf("x = %v violates lower bounds", x)
	}
}

func TestSolveWithEQ(t *testing.T) {
	// max 2x + y s.t. x + y = 5, x <= 3 -> x=3, y=2, obj=8.
	p := Problem{
		Objective: []float64{2, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, B: 5},
			{Coeffs: []float64{1, 0}, Rel: LE, B: 3},
		},
	}
	x, obj := solveOK(t, p)
	if math.Abs(obj-8) > 1e-8 {
		t.Errorf("obj = %v, want 8", obj)
	}
	if math.Abs(x[0]+x[1]-5) > 1e-8 {
		t.Errorf("equality violated: %v", x)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// max x s.t. -x <= -2 (i.e. x >= 2), x <= 7.
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, B: -2},
			{Coeffs: []float64{1}, Rel: LE, B: 7},
		},
	}
	x, obj := solveOK(t, p)
	if math.Abs(obj-7) > 1e-8 || math.Abs(x[0]-7) > 1e-8 {
		t.Errorf("x=%v obj=%v, want 7", x, obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, B: 5},
			{Coeffs: []float64{1}, Rel: LE, B: 3},
		},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, B: 1},
		},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: several constraints meet at the optimum. Bland's
	// rule must terminate.
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, B: 1},
			{Coeffs: []float64{0, 1}, Rel: LE, B: 1},
			{Coeffs: []float64{1, 1}, Rel: LE, B: 2},
			{Coeffs: []float64{2, 1}, Rel: LE, B: 3},
			{Coeffs: []float64{1, 2}, Rel: LE, B: 3},
		},
	}
	_, obj := solveOK(t, p)
	if math.Abs(obj-2) > 1e-8 {
		t.Errorf("obj = %v, want 2", obj)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, _, err := Solve(Problem{}); err == nil {
		t.Error("want error for empty problem")
	}
	p := Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, B: 1}},
	}
	if _, _, err := Solve(p); err == nil {
		t.Error("want error for coefficient length mismatch")
	}
	p = Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: 0, B: 1}},
	}
	if _, _, err := Solve(p); err == nil {
		t.Error("want error for invalid relation")
	}
}

// APRadShape mirrors the AP-Rad use: maximize sum of radii with pairwise
// sum constraints.
func TestSolveAPRadShape(t *testing.T) {
	// Three APs on a line at 0, 10, 25. AP pairs (0,1) co-observed:
	// r0+r1 >= 10. Pair (1,2) co-observed: r1+r2 >= 15. Pair (0,2) never:
	// r0+r2 <= 25. Box: r_i <= 20.
	p := Problem{
		Objective: []float64{1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 0}, Rel: GE, B: 10},
			{Coeffs: []float64{0, 1, 1}, Rel: GE, B: 15},
			{Coeffs: []float64{1, 0, 1}, Rel: LE, B: 25},
			{Coeffs: []float64{1, 0, 0}, Rel: LE, B: 20},
			{Coeffs: []float64{0, 1, 0}, Rel: LE, B: 20},
			{Coeffs: []float64{0, 0, 1}, Rel: LE, B: 20},
		},
	}
	x, _ := solveOK(t, p)
	if x[0]+x[1] < 10-1e-6 || x[1]+x[2] < 15-1e-6 || x[0]+x[2] > 25+1e-6 {
		t.Errorf("constraints violated: %v", x)
	}
	for i, v := range x {
		if v < -1e-9 || v > 20+1e-6 {
			t.Errorf("x[%d] = %v out of box", i, v)
		}
	}
}

// Random LPs: the returned point must satisfy all constraints, and the
// objective must be at least that of any random feasible point we can find
// (optimality lower-bound check).
func TestSolveFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		m := rng.Intn(5) + 1
		p := Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() * 2
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, B: rng.Float64()*10 + 1}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() * 3
			}
			p.Constraints = append(p.Constraints, c)
		}
		// All-LE with positive b: feasible (x=0) and bounded unless a
		// variable has all-zero column and positive cost; coefficients are
		// positive with probability 1, so bounded.
		x, obj, err := Solve(p)
		if err != nil {
			return false
		}
		for _, c := range p.Constraints {
			s := 0.0
			for j := range x {
				s += c.Coeffs[j] * x[j]
			}
			if s > c.B+1e-6 {
				return false
			}
		}
		// Compare against random feasible points: none may beat the optimum.
		for trial := 0; trial < 50; trial++ {
			y := make([]float64, n)
			for j := range y {
				y[j] = rng.Float64() * 5
			}
			feas := true
			for _, c := range p.Constraints {
				s := 0.0
				for j := range y {
					s += c.Coeffs[j] * y[j]
				}
				if s > c.B {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			yObj := 0.0
			for j := range y {
				yObj += p.Objective[j] * y[j]
			}
			if yObj > obj+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("relation strings wrong")
	}
	if Relation(9).String() != "Relation(9)" {
		t.Error("unknown relation string wrong")
	}
}

func BenchmarkSolveAPRad50(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 50
	p := Problem{Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.1 {
				c := Constraint{Coeffs: make([]float64, n), Rel: GE, B: rng.Float64() * 200}
				c.Coeffs[i], c.Coeffs[j] = 1, 1
				p.Constraints = append(p.Constraints, c)
			}
		}
		c := Constraint{Coeffs: make([]float64, n), Rel: LE, B: 500}
		c.Coeffs[i] = 1
		p.Constraints = append(p.Constraints, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveStatsCountsPivots(t *testing.T) {
	// A ≤-only problem solves in phase 2 alone; GE constraints force a
	// phase-1 drive. Either way Solve and SolveStats must agree exactly.
	le := Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, B: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, B: 6},
		},
	}
	x, obj, st, err := SolveStats(le)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-12) > 1e-8 || math.Abs(x[0]-4) > 1e-8 {
		t.Errorf("SolveStats solution x=%v obj=%v, want [4 0] and 12", x, obj)
	}
	if st.Constraints != 2 {
		t.Errorf("Constraints = %d, want 2", st.Constraints)
	}
	if st.Phase1Pivots != 0 {
		t.Errorf("Phase1Pivots = %d for a <=-only problem, want 0", st.Phase1Pivots)
	}
	if st.Phase2Pivots < 1 || st.Pivots() != st.Phase1Pivots+st.Phase2Pivots {
		t.Errorf("pivot accounting broken: %+v total %d", st, st.Pivots())
	}

	ge := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, B: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, B: 3},
			{Coeffs: []float64{0, 1}, Rel: GE, B: 2},
		},
	}
	_, _, st, err = SolveStats(ge)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase1Pivots < 1 {
		t.Errorf("Phase1Pivots = %d for a GE problem, want >= 1", st.Phase1Pivots)
	}

	// An infeasible problem still reports its phase-1 work.
	bad := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, B: 1},
			{Coeffs: []float64{1}, Rel: GE, B: 5},
		},
	}
	if _, _, st, err = SolveStats(bad); err == nil {
		t.Fatal("want infeasible error")
	} else if st.Constraints != 2 || st.Phase1Pivots < 1 {
		t.Errorf("infeasible stats = %+v, want constraint and pivot counts", st)
	}
}
