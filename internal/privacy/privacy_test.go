package privacy

import (
	"math/rand"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/sim"
)

// walkEvents builds a simple walk trace for one device through a tiny
// world.
func walkEvents(t *testing.T, seed int64) (dot11.MAC, []sim.TxEvent) {
	t.Helper()
	w := sim.NewWorld(seed)
	for i, pos := range []geom.Point{geom.Pt(0, 0), geom.Pt(150, 0), geom.Pt(300, 0)} {
		ap, err := sim.NewAP(i, "n", pos, 6, 120)
		if err != nil {
			t.Fatal(err)
		}
		w.AddAP(ap)
	}
	dev := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: sim.NewRouteWalk([]geom.Point{geom.Pt(-50, 0), geom.Pt(350, 0)}, 2),
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(dev)
	return dev.MAC, sim.WalkTrace(w, dev, 200, 20)
}

func deviceMACs(events []sim.TxEvent) map[dot11.MAC]bool {
	macs := make(map[dot11.MAC]bool)
	for _, ev := range events {
		if ev.Frame.Subtype == dot11.SubtypeProbeRequest {
			macs[ev.Frame.Addr2] = true
		}
	}
	return macs
}

func TestNoDefensePassthrough(t *testing.T) {
	dev, evs := walkEvents(t, 1)
	out := (NoDefense{}).Apply(dev, evs, rand.New(rand.NewSource(1)))
	if len(out) != len(evs) {
		t.Fatalf("events %d -> %d", len(evs), len(out))
	}
	if (NoDefense{}).Name() != "none" {
		t.Error("name")
	}
}

func TestMACRotation(t *testing.T) {
	dev, evs := walkEvents(t, 2)
	rng := rand.New(rand.NewSource(2))
	out := (MACRotation{PeriodSec: 40}).Apply(dev, evs, rng)
	if len(out) != len(evs) {
		t.Fatalf("rotation must not drop events")
	}
	macs := deviceMACs(out)
	if macs[dev] {
		t.Error("true MAC must never appear")
	}
	// 200 s trace with 40 s periods: about 5 pseudonyms.
	if len(macs) < 3 {
		t.Errorf("pseudonyms = %d, want several", len(macs))
	}
	// Responses stay consistent: every probe response's Addr1 is one of
	// the pseudonyms.
	for _, ev := range out {
		if ev.Frame.Subtype == dot11.SubtypeProbeResp && !macs[ev.Frame.Addr1] {
			t.Errorf("response addressed to unknown MAC %v", ev.Frame.Addr1)
		}
	}
	// Input untouched.
	for _, ev := range evs {
		if ev.Frame.Subtype == dot11.SubtypeProbeRequest && ev.Frame.Addr2 != dev {
			t.Fatal("policy mutated input events")
		}
	}
	// Zero period: no-op.
	if got := (MACRotation{}).Apply(dev, evs, rng); len(deviceMACs(got)) != 1 {
		t.Error("zero-period rotation should be a no-op")
	}
}

func TestSilentPeriodsDropTraffic(t *testing.T) {
	dev, evs := walkEvents(t, 3)
	rng := rand.New(rand.NewSource(3))
	out := (SilentPeriods{ActiveSec: 20, SilentSec: 60}).Apply(dev, evs, rng)
	if len(out) >= len(evs) {
		t.Errorf("silent periods should drop traffic: %d -> %d", len(evs), len(out))
	}
	// Zero config: passthrough.
	if got := (SilentPeriods{}).Apply(dev, evs, rng); len(got) != len(evs) {
		t.Error("zero silent period should be a no-op")
	}
}

func TestMixZone(t *testing.T) {
	dev, evs := walkEvents(t, 4)
	rng := rand.New(rand.NewSource(4))
	zone := geom.Circle{C: geom.Pt(150, 0), R: 60}
	out := (MixZone{Zones: []geom.Circle{zone}}).Apply(dev, evs, rng)
	macsBefore, macsAfter := make(map[dot11.MAC]bool), make(map[dot11.MAC]bool)
	for _, ev := range out {
		if ev.Frame.Subtype != dot11.SubtypeProbeRequest {
			continue
		}
		if zone.Contains(ev.Pos) {
			t.Errorf("device transmitted inside the mix zone at %v", ev.Pos)
		}
		if ev.Pos.X < zone.C.X {
			macsBefore[ev.Frame.Addr2] = true
		} else {
			macsAfter[ev.Frame.Addr2] = true
		}
	}
	if len(macsBefore) == 0 || len(macsAfter) == 0 {
		t.Fatal("expected traffic on both sides of the zone")
	}
	for m := range macsAfter {
		if macsBefore[m] {
			t.Error("identity survived the mix zone crossing")
		}
	}
}

func TestWildcardProbes(t *testing.T) {
	dev, _ := walkEvents(t, 5)
	// Build directed probes.
	evs := []sim.TxEvent{
		{TimeSec: 0, Frame: dot11.NewProbeRequest(dev, "home-net", 1)},
		{TimeSec: 1, Frame: dot11.NewProbeRequest(dev, "work-net", 2)},
		{TimeSec: 2, Frame: dot11.NewProbeRequest(sim.NewMAC(0xD0, 2), "other", 1)},
	}
	out := (WildcardProbes{}).Apply(dev, evs, nil)
	for i, ev := range out[:2] {
		if ssid, _ := ev.Frame.SSID(); ssid != "" {
			t.Errorf("probe %d still carries SSID %q", i, ssid)
		}
	}
	// Other devices' probes untouched.
	if ssid, _ := out[2].Frame.SSID(); ssid != "other" {
		t.Error("policy rewrote another device's probe")
	}
	// Input untouched.
	if ssid, _ := evs[0].Frame.SSID(); ssid != "home-net" {
		t.Error("policy mutated input")
	}
}

func TestChain(t *testing.T) {
	dev, evs := walkEvents(t, 6)
	rng := rand.New(rand.NewSource(6))
	c := Chain{MACRotation{PeriodSec: 50}, WildcardProbes{}}
	if c.Name() != "mac-rotation-50s+wildcard-probes" {
		t.Errorf("name = %q", c.Name())
	}
	out := c.Apply(dev, evs, rng)
	macs := deviceMACs(out)
	if macs[dev] {
		t.Error("true MAC visible through chain")
	}
	if (Chain{}).Name() != "none" {
		t.Error("empty chain name")
	}
}

func TestRandomLocalMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[dot11.MAC]bool)
	for i := 0; i < 100; i++ {
		m := randomLocalMAC(rng)
		if m[0]&0x02 == 0 {
			t.Fatal("not locally administered")
		}
		if m[0]&0x01 != 0 {
			t.Fatal("multicast bit set")
		}
		seen[m] = true
	}
	if len(seen) < 99 {
		t.Error("pseudonyms not unique enough")
	}
}
