// Package privacy implements the location-privacy countermeasures the
// paper surveys (Section V) and calls for (Section VI): MAC-address
// pseudonym rotation [Hu & Wang; Singelée & Preneel], random silent
// periods, mix zones [Beresford & Stajano], and probe-request hygiene
// (wildcard-only scanning, defeating the implicit-identifier linking of
// Pang et al. that the Marauder's map uses against pseudonyms).
//
// Each defence is a Policy that rewrites a device's outbound traffic
// before it ever reaches the air, so the same attack pipeline can be run
// against defended and undefended devices and the degradation quantified
// (see experiments.DefenseEvaluation).
package privacy

import (
	"fmt"
	"math/rand"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Policy transforms the traffic a single device emits. Implementations
// must not mutate the input events.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Apply rewrites the device's event stream. The device's true MAC
	// identifies which frames belong to it (a frame is the device's when
	// it is the transmitter, and AP responses to it carry it as Addr1).
	Apply(devMAC dot11.MAC, events []sim.TxEvent, rng *rand.Rand) []sim.TxEvent
}

// NoDefense leaves traffic untouched — the baseline.
type NoDefense struct{}

var _ Policy = NoDefense{}

// Name implements Policy.
func (NoDefense) Name() string { return "none" }

// Apply implements Policy.
func (NoDefense) Apply(_ dot11.MAC, events []sim.TxEvent, _ *rand.Rand) []sim.TxEvent {
	return events
}

// MACRotation rotates the device's MAC address every PeriodSec seconds, as
// pseudonym schemes propose. Frames sent by the device and AP responses
// addressed to it are consistently rewritten to the pseudonym active at
// their transmission time.
type MACRotation struct {
	// PeriodSec is the pseudonym lifetime.
	PeriodSec float64
}

var _ Policy = MACRotation{}

// Name implements Policy.
func (m MACRotation) Name() string {
	return fmt.Sprintf("mac-rotation-%.0fs", m.PeriodSec)
}

// Apply implements Policy.
func (m MACRotation) Apply(devMAC dot11.MAC, events []sim.TxEvent, rng *rand.Rand) []sim.TxEvent {
	if m.PeriodSec <= 0 {
		return events
	}
	pseudos := make(map[int]dot11.MAC)
	pseudonymAt := func(t float64) dot11.MAC {
		epoch := int(t / m.PeriodSec)
		p, ok := pseudos[epoch]
		if !ok {
			p = randomLocalMAC(rng)
			pseudos[epoch] = p
		}
		return p
	}
	out := make([]sim.TxEvent, 0, len(events))
	for _, ev := range events {
		f := *ev.Frame
		pseudo := pseudonymAt(ev.TimeSec)
		if f.Addr1 == devMAC {
			f.Addr1 = pseudo
		}
		if f.Addr2 == devMAC {
			f.Addr2 = pseudo
		}
		if f.Addr3 == devMAC {
			f.Addr3 = pseudo
		}
		ev.Frame = &f
		out = append(out, ev)
	}
	return out
}

// randomLocalMAC draws a locally-administered unicast MAC.
func randomLocalMAC(rng *rand.Rand) dot11.MAC {
	var m dot11.MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	m[0] = m[0]&0xfc | 0x02 // locally administered, unicast
	return m
}

// SilentPeriods drops all of the device's traffic during randomly placed
// silence windows: alternating active intervals of mean ActiveSec and
// silences of mean SilentSec (exponentially distributed), per Hu & Wang's
// random silent period framework.
type SilentPeriods struct {
	ActiveSec float64
	SilentSec float64
}

var _ Policy = SilentPeriods{}

// Name implements Policy.
func (s SilentPeriods) Name() string {
	return fmt.Sprintf("silent-periods-%.0f/%.0fs", s.ActiveSec, s.SilentSec)
}

// Apply implements Policy.
func (s SilentPeriods) Apply(devMAC dot11.MAC, events []sim.TxEvent, rng *rand.Rand) []sim.TxEvent {
	if s.SilentSec <= 0 || len(events) == 0 {
		return events
	}
	end := events[len(events)-1].TimeSec
	// Precompute silence windows across the trace.
	type window struct{ from, to float64 }
	var silences []window
	t := rng.ExpFloat64() * s.ActiveSec
	for t < end {
		dur := rng.ExpFloat64() * s.SilentSec
		silences = append(silences, window{t, t + dur})
		t += dur + rng.ExpFloat64()*s.ActiveSec
	}
	silent := func(ts float64) bool {
		for _, w := range silences {
			if ts >= w.from && ts < w.to {
				return true
			}
		}
		return false
	}
	out := make([]sim.TxEvent, 0, len(events))
	for _, ev := range events {
		if involvesDevice(ev, devMAC) && silent(ev.TimeSec) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// MixZone drops the device's traffic whenever it transmits from inside a
// protected zone, and rotates its MAC on every zone crossing — the classic
// mix-zone construction: identities entering the zone mix and exit
// unlinkable.
type MixZone struct {
	Zones []geom.Circle
}

var _ Policy = MixZone{}

// Name implements Policy.
func (m MixZone) Name() string { return fmt.Sprintf("mix-zones-%d", len(m.Zones)) }

// Apply implements Policy. Zone membership is tracked from the device's
// own transmissions (whose Pos is the device position); AP responses
// addressed to the device follow the device's current state — suppressed
// while it is silent in a zone, rewritten to its current pseudonym
// otherwise.
func (m MixZone) Apply(devMAC dot11.MAC, events []sim.TxEvent, rng *rand.Rand) []sim.TxEvent {
	current := devMAC
	inZone := func(p geom.Point) bool {
		for _, z := range m.Zones {
			if z.Contains(p) {
				return true
			}
		}
		return false
	}
	out := make([]sim.TxEvent, 0, len(events))
	wasIn := false
	for _, ev := range events {
		if !involvesDevice(ev, devMAC) {
			out = append(out, ev)
			continue
		}
		if !ev.FromAP {
			// Device transmission: its Pos is the device position.
			in := inZone(ev.Pos)
			if in {
				if !wasIn {
					current = randomLocalMAC(rng) // fresh exit identity
				}
				wasIn = true
				continue // silent inside the zone
			}
			wasIn = false
		} else if wasIn {
			// No response traffic exists for a silent device.
			continue
		}
		f := *ev.Frame
		if f.Addr1 == devMAC {
			f.Addr1 = current
		}
		if f.Addr2 == devMAC {
			f.Addr2 = current
		}
		if f.Addr3 == devMAC {
			f.Addr3 = current
		}
		ev.Frame = &f
		out = append(out, ev)
	}
	return out
}

// WildcardProbes strips directed SSIDs from the device's probe requests so
// its preferred-network list never leaks — the hygiene that defeats
// implicit-identifier pseudonym linking.
type WildcardProbes struct{}

var _ Policy = WildcardProbes{}

// Name implements Policy.
func (WildcardProbes) Name() string { return "wildcard-probes" }

// Apply implements Policy.
func (WildcardProbes) Apply(devMAC dot11.MAC, events []sim.TxEvent, _ *rand.Rand) []sim.TxEvent {
	out := make([]sim.TxEvent, 0, len(events))
	for _, ev := range events {
		if ev.Frame.Subtype == dot11.SubtypeProbeRequest && ev.Frame.Addr2 == devMAC {
			f := *ev.Frame
			f.IEs = append([]dot11.IE(nil), f.IEs...)
			for i, ie := range f.IEs {
				if ie.ID == dot11.EIDSSID {
					f.IEs[i] = dot11.IE{ID: dot11.EIDSSID, Data: nil}
				}
			}
			ev.Frame = &f
		}
		out = append(out, ev)
	}
	return out
}

// Chain composes policies, applying them in order.
type Chain []Policy

var _ Policy = Chain{}

// Name implements Policy.
func (c Chain) Name() string {
	if len(c) == 0 {
		return "none"
	}
	name := c[0].Name()
	for _, p := range c[1:] {
		name += "+" + p.Name()
	}
	return name
}

// Apply implements Policy.
func (c Chain) Apply(devMAC dot11.MAC, events []sim.TxEvent, rng *rand.Rand) []sim.TxEvent {
	for _, p := range c {
		events = p.Apply(devMAC, events, rng)
	}
	return events
}

func involvesDevice(ev sim.TxEvent, devMAC dot11.MAC) bool {
	f := ev.Frame
	return f.Addr1 == devMAC || f.Addr2 == devMAC || f.Addr3 == devMAC
}
