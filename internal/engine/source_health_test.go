package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/sniffer"
)

func sourceCaps(b byte, n int) []sniffer.Capture {
	caps := make([]sniffer.Capture, n)
	for i := range caps {
		f := dot11.NewProbeRequest(dot11.MAC{0x02, 0xee, 0, 0, b, byte(i)}, "net", uint16(i))
		caps[i] = sniffer.Capture{TimeSec: float64(i), Frame: f}
	}
	return caps
}

// TestHealthFlagsSilentCaptureSource is the regression test for the
// silently-dead-capture-path failure: a source that delivered once and
// then went quiet must flip Health to degraded, and a fresh delivery
// must clear it.
func TestHealthFlagsSilentCaptureSource(t *testing.T) {
	eng, err := New(Config{WindowSec: 10, StaleIngestAfter: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	eng.IngestCaptures(sourceCaps(1, 3))                      // SourceLocal
	eng.IngestCapturesFrom("agent:a1", sourceCaps(2, 2))      // remote agent
	if n := eng.IngestCapturesFrom("agent:a1", nil); n != 0 { // empty: no-op
		t.Fatalf("empty batch ingested %d", n)
	}

	h := eng.Health()
	if !h.Healthy {
		t.Fatalf("fresh deliveries reported unhealthy: %+v", h)
	}
	local, ok := h.Sources[SourceLocal]
	if !ok || local.Frames != 3 || local.Batches != 1 || local.Stale {
		t.Fatalf("local source wrong: %+v (present=%v)", local, ok)
	}
	agent, ok := h.Sources["agent:a1"]
	if !ok || agent.Frames != 2 || agent.Batches != 1 || agent.Stale {
		t.Fatalf("agent source wrong: %+v (present=%v)", agent, ok)
	}

	// Keep local alive past the threshold while the agent goes silent.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		eng.IngestCaptures(sourceCaps(1, 1))
		time.Sleep(10 * time.Millisecond)
	}
	h = eng.Health()
	if h.Healthy {
		t.Fatalf("silent agent source did not degrade health: %+v", h)
	}
	if !h.Sources["agent:a1"].Stale {
		t.Fatalf("agent source not marked stale: %+v", h.Sources)
	}
	if h.Sources[SourceLocal].Stale {
		t.Fatalf("live local source marked stale: %+v", h.Sources)
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, `capture source "agent:a1" silent`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stale-source reason in %v", h.Reasons)
	}

	// A fresh delivery clears the degradation.
	eng.IngestCapturesFrom("agent:a1", sourceCaps(2, 1))
	if h = eng.Health(); !h.Healthy {
		t.Fatalf("health did not recover after delivery: %+v", h)
	}
}

// TestHealthSourcesWithoutStaleCheck: with StaleIngestAfter unset the
// sources are still reported but never degrade health.
func TestHealthSourcesWithoutStaleCheck(t *testing.T) {
	eng, err := New(Config{WindowSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	eng.IngestCapturesFrom("agent:x", sourceCaps(3, 1))
	time.Sleep(20 * time.Millisecond)
	h := eng.Health()
	if !h.Healthy {
		t.Fatalf("disabled stale check degraded health: %+v", h)
	}
	sh, ok := h.Sources["agent:x"]
	if !ok || sh.Stale || sh.LastIngestAgeSec <= 0 {
		t.Fatalf("source not reported sanely: %+v (present=%v)", sh, ok)
	}
}

// TestQuarantinedDeliveryStillMarksSourceAlive: a batch that quarantines
// everything still proves the path works.
func TestQuarantinedDeliveryStillMarksSourceAlive(t *testing.T) {
	eng, err := New(Config{WindowSec: 10, StaleIngestAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	n := eng.IngestCapturesFrom("agent:bad", []sniffer.Capture{{TimeSec: 1, Raw: []byte{0xba, 0xad}}})
	if n != 0 {
		t.Fatalf("corrupt capture ingested: %d", n)
	}
	h := eng.Health()
	sh, ok := h.Sources["agent:bad"]
	if !ok || sh.Frames != 1 || sh.Batches != 1 {
		t.Fatalf("all-quarantined delivery not tracked: %+v (present=%v)", sh, ok)
	}
	if !h.Healthy {
		t.Fatalf("fresh all-quarantined delivery degraded health: %+v", h)
	}
}
