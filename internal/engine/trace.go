package engine

import (
	"log/slog"
	"sync"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/telemetry/trace"
	"repro/internal/theory"
)

// theorem2Unit memoizes Theorem 2's expected intersected area at unit
// radius by k: E[CA](k, r) scales as r² (the closed form is 8πr²·∫…), so
// one adaptive quadrature per distinct k serves every radius the
// provenance path ever asks about.
var theorem2Unit sync.Map // int -> float64

// theorem2Area evaluates Theorem 2's E[CA] for k communicable APs of mean
// maximum transmission distance meanR. Returns 0 when the theorem does not
// apply (k < 1, no usable radius) or the quadrature fails.
func theorem2Area(k int, meanR float64) float64 {
	if k < 1 || meanR <= 0 {
		return 0
	}
	if v, ok := theorem2Unit.Load(k); ok {
		return v.(float64) * meanR * meanR
	}
	ca, err := theory.IntersectedArea(k, 1)
	if err != nil {
		return 0
	}
	theorem2Unit.Store(k, ca)
	return ca * meanR * meanR
}

// meanRange returns the mean maximum transmission distance of Γ's APs that
// are present in the knowledge base with a usable radius (0 when none are).
func meanRange(k core.Knowledge, gamma []dot11.MAC) float64 {
	sum, n := 0.0, 0
	for _, m := range gamma {
		if in, ok := k.Get(m); ok && in.MaxRange > 0 {
			sum += in.MaxRange
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// trackerArea unwraps RegionTracker.RegionArea behind a nil check.
func trackerArea(rt *core.RegionTracker) (float64, bool) {
	if rt == nil {
		return 0, false
	}
	return rt.RegionArea()
}

// finishFix assembles the provenance record of one traced fix and files
// the trace. The expensive fields — the exact intersected area and the
// Theorem 2 quadrature — are computed only here, i.e. only for fixes the
// sampler selected; unsampled and untraced fixes never pay for them.
// know is the knowledge the estimate was actually computed against (not
// re-read, so a concurrent SetKnowledge cannot misattribute the area).
// rt, when non-nil, is the region tracker that computed this fix; its
// path/diff telemetry lands in the record (callers pass nil for cache hits
// and untracked fixes, whose estimates no tracker produced).
func (e *Engine) finishFix(tr *trace.Trace, dev dot11.MAC, gamma []dot11.MAC,
	know core.Knowledge, est core.Estimate, err error, hit bool, start, end float64,
	rt *core.RegionTracker) {
	if tr == nil {
		return
	}
	sp := tr.StartSpan("provenance")
	p := &trace.Provenance{
		Device:       dev.String(),
		Algorithm:    e.loc.Name(),
		Gamma:        macStrings(gamma),
		K:            est.K,
		WindowStart:  start,
		WindowEnd:    end,
		CacheHit:     hit,
		KnowledgeGen: e.knowGen.Load(),
		Training:     e.lastTrain.Load(),
	}
	if p.K == 0 {
		p.K = len(gamma)
	}
	if rt != nil {
		p.RegionPath = rt.LastPath()
		p.RegionDiff = rt.LastDiff()
	}
	if err != nil {
		p.Err = err.Error()
	} else {
		p.Located = true
		p.PosX, p.PosY = est.Pos.X, est.Pos.Y
		p.VertexCount = len(est.Vertices)
	}
	if len(gamma) > 0 {
		p.MeanRadiusM = meanRange(know, gamma)
		// Tracked fixes already hold the live intersection region; serve
		// the area from it instead of re-intersecting all |Γ| discs from
		// scratch — on churny tracked workloads the full recompute would
		// dominate the whole fix. Untracked fixes (and tracked calls that
		// bypassed the region) pay the full computation as before.
		if area, ok := trackerArea(rt); ok {
			p.IntersectedAreaM2 = area
		} else {
			p.IntersectedAreaM2 = core.RegionArea(know, gamma)
		}
		p.Theorem2AreaM2 = theorem2Area(p.K, p.MeanRadiusM)
	}
	sp.End()
	tr.Finish(p)
	slog.Debug("localization traced",
		"component", "engine", trace.LogKey, tr.ID(),
		"device", p.Device, "algo", p.Algorithm, "k", p.K,
		"cache_hit", hit, "located", p.Located)
}

func macStrings(ms []dot11.MAC) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}
