// Package engine owns the digital Marauder's map pipeline: it ingests
// captured frames into the observation store, keeps the localization
// knowledge trained as observations accumulate, and localizes devices —
// one of them, or every device of a map frame in parallel across a worker
// pool. Every front-end (cmd/marauder, cmd/replay, the map server loop,
// the examples) drives this type instead of hand-wiring
// capture→ingest→localize itself.
//
// The engine memoizes estimates by canonicalized Γ: localization is a
// pure function of (knowledge, Γ), identical AP sets recur constantly
// across windows and devices, and knowledge changes are explicit
// (SetKnowledge / RefreshKnowledge), so the cache is invalidated exactly
// when the knowledge base changes.
package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/telemetry/trace"
)

// Config assembles an Engine.
type Config struct {
	// Know is the AP knowledge base. For trained algorithms (AP-Rad,
	// AP-Loc) it is the training base — positions without radii, or nil —
	// and the working knowledge is produced by RefreshKnowledge.
	Know core.Knowledge
	// Store supplies the observations; nil creates an empty store.
	Store *obs.Store
	// Localizer is the algorithm; nil means M-Loc.
	Localizer core.Localizer
	// WindowSec is the observation window width; a device's Γ for a fix
	// at time t is everything observed in [t−WindowSec/2, t+WindowSec/2).
	// Required.
	WindowSec float64
	// Workers caps snapshot parallelism; ≤ 0 means GOMAXPROCS.
	Workers int
	// CacheSize caps the Γ-memoization cache entry count. 0 means the
	// default (4096); negative disables caching.
	CacheSize int
	// Tracer samples localizations into per-estimate traces and
	// provenance records. nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// RefreshAttempts caps how many times one RefreshKnowledge call tries
	// the training run before giving up; 0 means the default (3).
	RefreshAttempts int
	// RefreshBackoff is the first retry's delay, doubled per further
	// attempt; 0 means the default (25ms), negative disables the sleep.
	RefreshBackoff time.Duration
	// StageSampleEvery times the fix-path stage histograms
	// (marauder_stage_seconds, marauder_fix_seconds) on every Nth fix:
	// 0 means the default (16), 1 times every fix, negative disables
	// stage timing. Unsampled fixes pay one atomic add.
	StageSampleEvery int
	// StaleIngestAfter flags a capture source (the local sniffer fleet or
	// a remote capwire agent) as stale in Health when it has delivered
	// nothing for this long after having delivered at least once — so a
	// silently dead capture path degrades /api/health instead of starving
	// the map quietly. 0 disables the check.
	StaleIngestAfter time.Duration
}

// Engine runs the concurrent ingest→observe→localize pipeline. It is safe
// for concurrent use: captures may stream in while snapshots run.
type Engine struct {
	loc       core.Localizer
	windowSec float64
	workers   int

	mu    sync.RWMutex
	store *obs.Store
	base  core.Knowledge // immutable training base
	know  core.Knowledge // active working knowledge

	cache  *gammaCache
	tracer *trace.Tracer

	// rejects is the bounded quarantine for corrupt/undecodable captures.
	rejects quarantine

	// srcMu guards sources, the per-capture-source delivery liveness used
	// by Health to flag silently dead paths (see sources.go).
	srcMu      sync.Mutex
	sources    map[string]*sourceState
	staleAfter time.Duration

	// refreshAttempts/refreshBackoff bound RefreshKnowledge's retry loop.
	refreshAttempts int
	refreshBackoff  time.Duration

	fixes     atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// stageEvery/stageCtr drive deterministic 1-in-N stage timing on the
	// fix path; stageEvery 0 disables it.
	stageEvery uint64
	stageCtr   atomic.Uint64

	// trainedOnce flips when a training run first succeeds: from then on a
	// failed refresh degrades to the last-known-good knowledge instead of
	// erroring the pipeline.
	trainedOnce   atomic.Bool
	refreshRetry  atomic.Uint64
	refreshFail   atomic.Uint64 // consecutive failed RefreshKnowledge calls
	refreshFellBk atomic.Uint64

	// knowGen counts knowledge-base swaps; every estimate's provenance
	// carries the generation it was computed against.
	knowGen atomic.Uint64
	// lastTrain is the provenance of the latest RefreshKnowledge run.
	lastTrain atomic.Pointer[trace.TrainingInfo]
}

// Stats counts engine work since construction.
type Stats struct {
	// Fixes is the number of localization requests answered (cached or
	// computed), successful or not.
	Fixes uint64
	// CacheHits is how many of them were served from the Γ cache.
	CacheHits uint64
	// CacheMisses is how many ran the localization algorithm.
	CacheMisses uint64
	// CacheEvictions is how many cache entries were dropped — by the
	// wholesale refill at the size cap or by knowledge invalidation.
	CacheEvictions uint64
	// Workers is the resolved snapshot worker-pool size.
	Workers int
	// ObsShards is the observation store's shard count.
	ObsShards int
	// ObsRecords is the observation store's pairwise record count.
	ObsRecords int
	// KnowledgeGen counts knowledge-base swaps since construction — the
	// generation the provenance of new estimates references.
	KnowledgeGen uint64
	// Quarantined is the number of captures diverted to the reject queue
	// instead of ingested.
	Quarantined uint64
}

// logWorkersOnce makes the resolved-worker startup log fire once per
// process: on a 1-vCPU box the GOMAXPROCS default silently serializes
// snapshots, and the log line is what makes that self-explaining.
var logWorkersOnce sync.Once

// New builds an Engine and validates the configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.WindowSec <= 0 {
		return nil, fmt.Errorf("engine: WindowSec must be > 0, got %v", cfg.WindowSec)
	}
	loc := cfg.Localizer
	if loc == nil {
		loc = core.MLocalizer{}
	}
	store := cfg.Store
	if store == nil {
		store = obs.NewStore()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mWorkers.Set(float64(workers))
	logWorkersOnce.Do(func() {
		slog.Info("engine worker pool resolved",
			"component", "engine",
			"workers", workers,
			"configured", cfg.Workers,
			"gomaxprocs", runtime.GOMAXPROCS(0),
			"algo", loc.Name())
	})
	attempts := cfg.RefreshAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := cfg.RefreshBackoff
	if backoff == 0 {
		backoff = 25 * time.Millisecond
	} else if backoff < 0 {
		backoff = 0
	}
	stageEvery := uint64(16)
	switch {
	case cfg.StageSampleEvery < 0:
		stageEvery = 0
	case cfg.StageSampleEvery > 0:
		stageEvery = uint64(cfg.StageSampleEvery)
	}
	e := &Engine{
		loc:             loc,
		windowSec:       cfg.WindowSec,
		workers:         workers,
		store:           store,
		base:            cfg.Know,
		know:            cfg.Know,
		tracer:          cfg.Tracer,
		refreshAttempts: attempts,
		refreshBackoff:  backoff,
		stageEvery:      stageEvery,
		staleAfter:      max(cfg.StaleIngestAfter, 0),
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = defaultCacheSize
		}
		e.cache = newGammaCache(size)
	}
	return e, nil
}

// Localizer returns the engine's algorithm.
func (e *Engine) Localizer() core.Localizer { return e.loc }

// Tracer returns the engine's tracer (nil when tracing is disabled), so
// front-ends can serve its ring dump and per-device explanations.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// LastTraining returns the provenance of the most recent RefreshKnowledge
// run, or nil before the first one (and for untrained algorithms).
func (e *Engine) LastTraining() *trace.TrainingInfo { return e.lastTrain.Load() }

// Store returns the observation store the engine ingests into. The store
// is safe for concurrent use, so callers may also feed or query it
// directly.
func (e *Engine) Store() *obs.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// Ingest feeds one captured frame into the observation store.
func (e *Engine) Ingest(timeSec float64, f *dot11.Frame, fromAP bool) {
	mFramesIngested.Inc()
	e.Store().Ingest(timeSec, f, fromAP)
}

// IngestCaptures feeds a batch of sniffer captures through the store's
// batched ingest path — grouped by shard, one lock acquisition per shard
// per batch instead of one per frame — and returns how many were ingested.
//
// Corrupt captures never poison the store: a capture without a decoded
// frame gets one decode attempt from its raw bytes and is otherwise
// diverted to the counted quarantine queue (see Quarantine) instead of
// erroring the batch or silently disappearing.
func (e *Engine) IngestCaptures(caps []sniffer.Capture) int {
	return e.IngestCapturesFrom(SourceLocal, caps)
}

// IngestCapturesFrom is IngestCaptures with an explicit capture-source
// name (SourceLocal for the in-process sniffers, "agent:<id>" for remote
// capwire agents). Any non-empty delivery — even one that quarantines
// every capture — marks the source alive, because the path itself worked;
// content problems are the quarantine counters' job.
func (e *Engine) IngestCapturesFrom(source string, caps []sniffer.Capture) int {
	if len(caps) == 0 {
		return 0
	}
	if source != "" {
		e.markSource(source, len(caps))
	}
	ingestStart := time.Now()
	defer mStageIngest.ObserveSince(ingestStart)
	var tr *trace.Trace
	if e.tracer != nil {
		tr = e.tracer.Start(trace.KindIngest, "")
	}
	sp := tr.StartSpan("ingest").Attr("frames", len(caps))
	batch := make([]obs.FrameCapture, 0, len(caps))
	quarantined := 0
	for _, c := range caps {
		if c.Frame == nil {
			var reason string
			if len(c.Raw) > 0 {
				if f, err := dot11.Decode(c.Raw); err == nil {
					c.Frame = f
				} else {
					reason = ReasonUndecodable
				}
			} else {
				reason = ReasonMissingFrame
			}
			if reason != "" {
				e.rejects.add(QuarantinedCapture{
					TimeSec:     c.TimeSec,
					Reason:      reason,
					RawLen:      len(c.Raw),
					CardChannel: c.CardChannel,
				})
				mQuarantined(reason).Inc()
				quarantined++
				continue
			}
		}
		batch = append(batch, obs.FrameCapture{TimeSec: c.TimeSec, Frame: c.Frame, FromAP: c.FromAP})
	}
	e.Store().IngestFrames(batch)
	if quarantined > 0 {
		sp.Attr("quarantined", quarantined)
	}
	sp.End()
	tr.Finish(nil)
	mFramesIngested.Add(uint64(len(batch)))
	return len(batch)
}

// Quarantine reports the reject queue: totals per reason and the newest
// retained samples.
func (e *Engine) Quarantine() QuarantineStats { return e.rejects.stats() }

// ResetObservations discards all accumulated observations (a fresh store)
// while keeping knowledge and cache: localization is a function of
// (knowledge, Γ) only, so previously memoized Γ keys stay valid.
func (e *Engine) ResetObservations() {
	e.mu.Lock()
	// Keep the configured shard count: a reset changes the contents, not
	// the store's concurrency shape.
	e.store = obs.NewStoreShards(e.store.ShardCount())
	e.mu.Unlock()
}

// Knowledge returns the active working knowledge base.
func (e *Engine) Knowledge() core.Knowledge {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.know
}

// SetKnowledge swaps in a new working knowledge base and invalidates the
// Γ cache. Invalidation is exact: when the new base holds the same entries
// as the current one — the common case of a retrain over unchanged
// observations — nothing changed that a cached estimate could depend on,
// so the generation is kept and the cache survives. The snapshot-epoch
// fast path makes the unchanged check O(1) when the base is literally the
// same snapshot, falling back to a content comparison otherwise.
func (e *Engine) SetKnowledge(k core.Knowledge) {
	e.mu.Lock()
	if k.Epoch() == e.know.Epoch() || k.Equal(e.know) {
		e.know = k
		e.mu.Unlock()
		return
	}
	e.know = k
	e.mu.Unlock()
	e.knowGen.Add(1)
	if e.cache != nil {
		if dropped := e.cache.invalidate(); dropped > 0 {
			e.evictions.Add(uint64(dropped))
			mCacheEvictions.Add(uint64(dropped))
		}
	}
}

// RefreshKnowledge re-trains the working knowledge from everything
// observed so far when the algorithm learns from observations (AP-Rad
// estimates radii, AP-Loc estimates positions too). For algorithms that
// take knowledge as given it is a no-op.
//
// A failed training run no longer wedges the pipeline: the run is retried
// up to Config.RefreshAttempts times with exponential backoff, and once
// any training run has ever succeeded, exhausting the retries degrades to
// the last-known-good knowledge (returning nil, counted in Health as a
// fallback) instead of surfacing the error. Before the first success
// there is nothing good to fall back on, so the error propagates.
func (e *Engine) RefreshKnowledge() error {
	trainer, ok := e.loc.(core.KnowledgeTrainer)
	if !ok {
		return nil
	}
	var err error
	for attempt := 0; attempt < e.refreshAttempts; attempt++ {
		if attempt > 0 {
			e.refreshRetry.Add(1)
			mRefreshRetries.Inc()
			if e.refreshBackoff > 0 {
				time.Sleep(e.refreshBackoff << (attempt - 1))
			}
		}
		if err = e.refreshOnce(trainer); err == nil {
			e.trainedOnce.Store(true)
			e.refreshFail.Store(0)
			return nil
		}
	}
	e.refreshFail.Add(1)
	if e.trainedOnce.Load() {
		e.refreshFellBk.Add(1)
		mRefreshFallbacks.Inc()
		slog.Warn("knowledge refresh failed; keeping last-known-good knowledge",
			"component", "engine",
			"algo", e.loc.Name(),
			"attempts", e.refreshAttempts,
			"gen", e.knowGen.Load(),
			"err", err)
		return nil
	}
	return err
}

// refreshOnce runs one training attempt end to end.
func (e *Engine) refreshOnce(trainer core.KnowledgeTrainer) error {
	var tr *trace.Trace
	if e.tracer != nil {
		tr = e.tracer.Start(trace.KindRefresh, "")
	}
	start := time.Now()
	e.mu.RLock()
	base := e.base
	store := e.store
	e.mu.RUnlock()
	sp := tr.StartSpan("knowledge")
	var (
		trained   core.Knowledge
		diag      core.TrainDiag
		diagnosed bool
		err       error
	)
	if dt, ok := trainer.(core.DiagnosedTrainer); ok {
		trained, diag, err = dt.TrainDiagnosed(base, store.DeviceAPSets())
		diagnosed = true
	} else {
		trained, err = trainer.Train(base, store.DeviceAPSets())
	}
	if err != nil {
		sp.Attr("err", err.Error())
		sp.End()
		tr.Finish(nil)
		return fmt.Errorf("engine: refresh knowledge: %w", err)
	}
	e.SetKnowledge(trained)
	info := &trace.TrainingInfo{
		Algorithm:  e.loc.Name(),
		Gen:        e.knowGen.Load(),
		DurationMs: float64(time.Since(start).Microseconds()) / 1e3,
	}
	if diagnosed {
		info.Constraints = diag.Constraints
		info.LPIterations = diag.LPIterations
		info.LowerBoundViolations = diag.LowerBoundViolations
		info.Objective = diag.Objective
	}
	e.lastTrain.Store(info)
	sp.Attr("gen", info.Gen).
		Attr("constraints", info.Constraints).
		Attr("lp_iterations", info.LPIterations)
	sp.End()
	tr.Finish(nil)
	mRefreshes.Inc()
	mRefreshSeconds.ObserveSince(start)
	return nil
}

// locateGamma answers one localization request, through the Γ cache when
// enabled. gamma must be in APSetWindow's canonical (ascending, deduped)
// order; the cache key is its byte concatenation. It returns the knowledge
// the estimate was computed against (so traced callers attribute the
// provenance to the right base) and whether the cache answered. tr may be
// nil (untraced).
func (e *Engine) locateGamma(gamma []dot11.MAC, tr *trace.Trace) (core.Estimate, core.Knowledge, bool, error) {
	est, know, hit, _, err := e.locateGammaTracked(gamma, tr, nil, nil)
	return est, know, hit, err
}

// locateGammaTracked is locateGamma with an optional incremental region
// tracker. When tl and rt are both non-nil, cache misses run through
// tl.LocateTracked so consecutive Γs of one tracked device update rt's
// intersection region instead of rebuilding it. The trackedCompute result
// reports whether that path ran — false on cache hits, which never advance
// rt (the tracker diffs against its own previous Γ, so skipping windows is
// safe). A tracked estimate's Vertices alias rt's arena; on the cached
// path they are detached before the put (cache entries outlive the next
// fix), so only the cache-disabled tracked path returns an aliased slice.
func (e *Engine) locateGammaTracked(gamma []dot11.MAC, tr *trace.Trace, tl core.TrackedLocalizer, rt *core.RegionTracker) (est core.Estimate, know core.Knowledge, hit, trackedCompute bool, err error) {
	e.fixes.Add(1)
	mFixes.Inc()
	if len(gamma) == 0 {
		return core.Estimate{}, core.Knowledge{}, false, false, core.ErrNoAPs
	}
	e.mu.RLock()
	know = e.know
	e.mu.RUnlock()
	tracked := tl != nil && rt != nil
	sp := tr.StartSpan("localize")
	if e.cache == nil {
		e.misses.Add(1)
		mCacheMisses.Inc()
		if tracked {
			est, err = tl.LocateTracked(know, gamma, rt)
		} else {
			est, err = e.loc.Locate(know, gamma)
		}
		sp.Attr("cache_hit", false)
		sp.End()
		return est, know, false, tracked, err
	}
	key := gammaKey(gamma)
	if est, err, ok := e.cache.get(key); ok {
		e.hits.Add(1)
		mCacheHits.Inc()
		sp.Attr("cache_hit", true)
		sp.End()
		return est, know, true, false, err
	}
	e.misses.Add(1)
	mCacheMisses.Inc()
	if tracked {
		est, err = tl.LocateTracked(know, gamma, rt)
		if len(est.Vertices) > 0 {
			// The tracked estimate aliases rt's vertex arena, which the
			// next fix overwrites; detach before the cache put.
			est.Vertices = append([]geom.Point(nil), est.Vertices...)
		}
	} else {
		est, err = e.loc.Locate(know, gamma)
	}
	if evicted := e.cache.put(key, est, err); evicted > 0 {
		e.evictions.Add(uint64(evicted))
		mCacheEvictions.Add(uint64(evicted))
	}
	sp.Attr("cache_hit", false)
	sp.End()
	return est, know, false, tracked, err
}

// fixWindow answers one localization over [start, end): the traced
// window-query → localize → provenance chain shared by Fix, FixRange,
// Track and the snapshot workers. buf is the reusable Γ buffer (pass
// buf[:0] in loops); the possibly-grown buffer is returned for reuse.
// With tracing disabled the only cost over the raw path is one nil check.
func (e *Engine) fixWindow(buf []dot11.MAC, dev dot11.MAC, start, end float64) ([]dot11.MAC, core.Estimate, error) {
	buf, est, _, err := e.fixWindowTracked(buf, dev, start, end, nil, nil)
	return buf, est, err
}

// fixWindowTracked is fixWindow with an optional region tracker (see
// locateGammaTracked). aliased reports that the returned estimate's
// Vertices alias rt's internal arena and are valid only until the next
// fix through rt; callers that retain estimates must copy them.
func (e *Engine) fixWindowTracked(buf []dot11.MAC, dev dot11.MAC, start, end float64, tl core.TrackedLocalizer, rt *core.RegionTracker) ([]dot11.MAC, core.Estimate, bool, error) {
	var tr *trace.Trace
	if e.tracer != nil {
		tr = e.tracer.Start(trace.KindFix, dev.String())
	}
	// Deterministic 1-in-N stage timing: adjacent stages share clock
	// reads, so a timed fix costs four time.Now calls and an untimed one
	// costs a single atomic add.
	timed := e.stageEvery != 0 && e.stageCtr.Add(1)%e.stageEvery == 0
	var t0, t1, t2 time.Time
	if timed {
		t0 = time.Now()
	}
	if tr != nil {
		sp := tr.StartSpan("window-query")
		buf = e.Store().AppendAPSetWindowTrace(buf, dev, start, end, sp)
		sp.End()
	} else {
		buf = e.Store().AppendAPSetWindow(buf, dev, start, end)
	}
	if timed {
		t1 = time.Now()
		mStageWindow.Observe(t1.Sub(t0).Seconds())
	}
	est, know, hit, trackedCompute, err := e.locateGammaTracked(buf, tr, tl, rt)
	if timed {
		t2 = time.Now()
		// The middle stage is the incremental region update when the
		// tracked path computed, plain localization otherwise (cache hits
		// included — a hit's lookup time is localization cost).
		if trackedCompute {
			mStageRegion.Observe(t2.Sub(t1).Seconds())
		} else {
			mStageLocalize.Observe(t2.Sub(t1).Seconds())
		}
	}
	// Provenance reads the tracker's path/diff only for fixes the tracked
	// path actually computed; cache hits and untracked fixes pass nil.
	var trt *core.RegionTracker
	if trackedCompute {
		trt = rt
	}
	e.finishFix(tr, dev, buf, know, est, err, hit, start, end, trt)
	if timed {
		t3 := time.Now()
		mStageTrace.Observe(t3.Sub(t2).Seconds())
		mFixSeconds.Observe(t3.Sub(t0).Seconds())
	}
	if err != nil && !errors.Is(err, core.ErrNoAPs) {
		mFixErrors.Inc()
	}
	return buf, est, trackedCompute && e.cache == nil, err
}

// Fix estimates the device's position from the observations in the window
// centred at timeSec.
func (e *Engine) Fix(dev dot11.MAC, timeSec float64) (core.Estimate, error) {
	return e.FixRange(dev, timeSec-e.windowSec/2, timeSec+e.windowSec/2)
}

// FixRange estimates the device's position from the observations with
// start ≤ t < end.
func (e *Engine) FixRange(dev dot11.MAC, start, end float64) (core.Estimate, error) {
	_, est, err := e.fixWindow(nil, dev, start, end)
	return est, err
}

// Track produces fixes for the device every stepSec over [startSec,
// endSec]; windows without observations or with failing localization are
// skipped. Steps are computed as startSec + i·stepSec (no float
// accumulation drift).
func (e *Engine) Track(dev dot11.MAC, startSec, endSec, stepSec float64) ([]core.TrackPoint, error) {
	if stepSec <= 0 {
		return nil, fmt.Errorf("engine: Track needs stepSec > 0")
	}
	// A tracked-capable localizer gets one region tracker for the whole
	// trajectory: consecutive windows share most of their Γ, so each fix
	// diffs the previous intersection region instead of rebuilding it.
	var (
		tl    core.TrackedLocalizer
		rt    *core.RegionTracker
		arena []geom.Point
	)
	if t, ok := e.loc.(core.TrackedLocalizer); ok {
		tl = t
		rt = new(core.RegionTracker)
	}
	var out []core.TrackPoint
	var buf []dot11.MAC
	for i := 0; ; i++ {
		ts := startSec + float64(i)*stepSec
		if ts > endSec {
			break
		}
		var est core.Estimate
		var aliased bool
		var err error
		buf, est, aliased, err = e.fixWindowTracked(buf[:0], dev, ts-e.windowSec/2, ts+e.windowSec/2, tl, rt)
		if err != nil {
			continue
		}
		if aliased && len(est.Vertices) > 0 {
			// The estimate's vertices alias rt's arena, which the next fix
			// overwrites; materialize into a per-trajectory arena. Earlier
			// points keep their (full-capacity) slices across regrowth.
			n := len(arena)
			arena = append(arena, est.Vertices...)
			est.Vertices = arena[n:len(arena):len(arena)]
		}
		out = append(out, core.TrackPoint{TimeSec: ts, Est: est})
	}
	return out, nil
}

// Snapshot locates every device with observations in the window centred
// at timeSec — one full frame of the Marauder's map — fanning the devices
// out across the worker pool. Devices whose localization fails are
// omitted. The result is identical to localizing sequentially.
func (e *Engine) Snapshot(timeSec float64) map[dot11.MAC]core.Estimate {
	return e.SnapshotRange(timeSec-e.windowSec/2, timeSec+e.windowSec/2)
}

// SnapshotRange is Snapshot over an explicit observation range — e.g. the
// whole capture history when replaying an attack offline.
func (e *Engine) SnapshotRange(start, end float64) map[dot11.MAC]core.Estimate {
	began := time.Now()
	defer func() {
		mSnapshots.Inc()
		mSnapshotSeconds.ObserveSince(began)
	}()
	store := e.Store()
	scanStart := time.Now()
	devs := store.Devices()
	mStageScan.ObserveSince(scanStart)
	out := make(map[dot11.MAC]core.Estimate, len(devs))
	workers := e.workers
	if workers > len(devs) {
		workers = len(devs)
	}
	if workers <= 1 {
		var buf []dot11.MAC
		for _, dev := range devs {
			var est core.Estimate
			var err error
			buf, est, err = e.fixWindow(buf[:0], dev, start, end)
			if err == nil {
				out[dev] = est
			}
		}
		return out
	}
	var (
		outMu sync.Mutex
		wg    sync.WaitGroup
		work  = make(chan dot11.MAC)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []dot11.MAC
			for dev := range work {
				var est core.Estimate
				var err error
				buf, est, err = e.fixWindow(buf[:0], dev, start, end)
				if err != nil {
					continue
				}
				outMu.Lock()
				out[dev] = est
				outMu.Unlock()
			}
		}()
	}
	for _, dev := range devs {
		work <- dev
	}
	close(work)
	wg.Wait()
	return out
}

// Stats reports fix and cache counters plus the store's shard shape.
func (e *Engine) Stats() Stats {
	store := e.Store()
	return Stats{
		Fixes:          e.fixes.Load(),
		CacheHits:      e.hits.Load(),
		CacheMisses:    e.misses.Load(),
		CacheEvictions: e.evictions.Load(),
		Workers:        e.workers,
		ObsShards:      store.ShardCount(),
		ObsRecords:     store.Len(),
		KnowledgeGen:   e.knowGen.Load(),
		Quarantined:    e.rejects.stats().Total,
	}
}

// Health reports the engine's degraded-vs-healthy state: the pipeline is
// degraded while knowledge refreshes keep failing (the map is being drawn
// from stale last-known-good knowledge). Quarantined captures are
// reported but do not degrade health by themselves — diverting corrupt
// input is the engine doing its job.
func (e *Engine) Health() Health {
	h := Health{
		Healthy:                    true,
		Quarantined:                e.rejects.stats().Total,
		RefreshRetries:             e.refreshRetry.Load(),
		RefreshFallbacks:           e.refreshFellBk.Load(),
		ConsecutiveRefreshFailures: e.refreshFail.Load(),
		KnowledgeGen:               e.knowGen.Load(),
		TrainedOnce:                e.trainedOnce.Load(),
	}
	if _, trains := e.loc.(core.KnowledgeTrainer); !trains {
		h.TrainedOnce = true
	}
	if n := h.ConsecutiveRefreshFailures; n > 0 {
		h.Healthy = false
		h.Reasons = append(h.Reasons,
			fmt.Sprintf("knowledge refresh failing (%d consecutive, serving generation %d)",
				n, h.KnowledgeGen))
	}
	h.Sources = e.sourceHealth(time.Now())
	if stale := staleSourceReasons(h.Sources); len(stale) > 0 {
		h.Healthy = false
		h.Reasons = append(h.Reasons, stale...)
	}
	return h
}
