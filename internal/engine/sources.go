package engine

import (
	"fmt"
	"sort"
	"time"
)

// SourceLocal names the in-process capture path (the sniffer fleet
// running inside cmd/marauder); remote capwire agents ingest under
// "agent:<id>".
const SourceLocal = "local"

// sourceState tracks one capture source's delivery liveness. A source
// is "alive" when batches keep arriving — even all-quarantined batches
// count, because the path itself is working and the quarantine counters
// already surface bad content.
type sourceState struct {
	frames  uint64
	batches uint64
	last    time.Time
}

// SourceHealth is one capture source's entry in Health.Sources.
type SourceHealth struct {
	// Frames counts captures delivered (ingested or quarantined).
	Frames uint64 `json:"frames"`
	// Batches counts delivery calls.
	Batches uint64 `json:"batches"`
	// LastIngestAgeSec is the age of the most recent delivery.
	LastIngestAgeSec float64 `json:"lastIngestAgeSec"`
	// Stale marks a source silent past Config.StaleIngestAfter.
	Stale bool `json:"stale"`
}

// markSource records one delivery from a named capture source.
func (e *Engine) markSource(source string, frames int) {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	if e.sources == nil {
		e.sources = make(map[string]*sourceState)
	}
	st := e.sources[source]
	if st == nil {
		st = &sourceState{}
		e.sources[source] = st
	}
	st.frames += uint64(frames)
	st.batches++
	st.last = time.Now()
}

// sourceHealth snapshots every source, flagging the stale ones.
func (e *Engine) sourceHealth(now time.Time) map[string]SourceHealth {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	if len(e.sources) == 0 {
		return nil
	}
	out := make(map[string]SourceHealth, len(e.sources))
	for name, st := range e.sources {
		age := now.Sub(st.last).Seconds()
		out[name] = SourceHealth{
			Frames:           st.frames,
			Batches:          st.batches,
			LastIngestAgeSec: age,
			Stale:            e.staleAfter > 0 && age > e.staleAfter.Seconds(),
		}
	}
	return out
}

// staleSourceReasons renders degradation lines for stale sources in
// deterministic (sorted) order.
func staleSourceReasons(sources map[string]SourceHealth) []string {
	var names []string
	for name, sh := range sources {
		if sh.Stale {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	reasons := make([]string, 0, len(names))
	for _, name := range names {
		reasons = append(reasons, fmt.Sprintf(
			"capture source %q silent for %.0fs", name, sources[name].LastIngestAgeSec))
	}
	return reasons
}
