package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/dot11"
)

// defaultCacheSize is the Γ-cache entry cap when Config.CacheSize is 0.
const defaultCacheSize = 4096

// gammaCache memoizes localization results by canonicalized Γ key.
// Localization is a pure function of (knowledge, Γ); the engine
// invalidates the whole cache whenever the knowledge base is swapped, so
// entries never go stale. Failures are cached too — a Γ whose discs leave
// an empty region fails identically (and expensively, through radius
// inflation) every time it recurs.
//
// Eviction is wholesale: when the cap is reached the map is dropped and
// refilled. The working set of distinct Γ keys between knowledge swaps is
// small (devices near each other share keys), so an LRU's bookkeeping
// would cost more than the occasional refill.
type gammaCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]cacheEntry
}

type cacheEntry struct {
	est core.Estimate
	err error
}

func newGammaCache(max int) *gammaCache {
	return &gammaCache{max: max, entries: make(map[string]cacheEntry)}
}

// gammaKey canonicalizes Γ into a cache key. Γ is already deduplicated
// and MAC-ascending (APSetWindow's documented order), so the byte
// concatenation of its addresses is canonical.
func gammaKey(gamma []dot11.MAC) string {
	buf := make([]byte, 0, len(gamma)*6)
	for _, m := range gamma {
		buf = append(buf, m[:]...)
	}
	return string(buf)
}

func (c *gammaCache) get(key string) (core.Estimate, error, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	return e.est, e.err, ok
}

// put inserts an entry and returns how many entries a wholesale refill
// evicted (0 when the cap was not reached).
func (c *gammaCache) put(key string, est core.Estimate, err error) int {
	c.mu.Lock()
	evicted := 0
	if len(c.entries) >= c.max {
		evicted = len(c.entries)
		c.entries = make(map[string]cacheEntry)
	}
	c.entries[key] = cacheEntry{est: est, err: err}
	c.mu.Unlock()
	return evicted
}

// invalidate drops every entry (the knowledge base changed) and returns
// how many were dropped.
func (c *gammaCache) invalidate() int {
	c.mu.Lock()
	dropped := len(c.entries)
	c.entries = make(map[string]cacheEntry)
	c.mu.Unlock()
	return dropped
}

// len reports the current entry count (for tests).
func (c *gammaCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
