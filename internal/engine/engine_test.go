package engine

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
)

func mac(hi, lo byte) dot11.MAC { return dot11.MAC{0, 0, 0, 0, hi, lo} }

// gridWorld builds a synthetic campus: nAPs on a grid with 100 m ranges
// and nDevs devices, each with pairwise records at t=50 naming the APs
// within range of its position.
func gridWorld(nAPs, nDevs int) (core.Knowledge, *obs.Store, []dot11.MAC) {
	var aps []core.APInfo
	side := 1
	for side*side < nAPs {
		side++
	}
	for i := 0; i < nAPs; i++ {
		m := mac(0xA0+byte(i/200), byte(i%200))
		pos := geom.Pt(float64(i%side)*70-350, float64(i/side)*70-350)
		aps = append(aps, core.APInfo{BSSID: m, Pos: pos, MaxRange: 100})
	}
	k := core.NewKnowledge(aps)
	store := obs.NewStore()
	devs := make([]dot11.MAC, nDevs)
	for d := 0; d < nDevs; d++ {
		dev := mac(0xD0+byte(d/200), byte(d%200))
		devs[d] = dev
		// Deterministic pseudo-random device position.
		x := float64((d*7919)%700) - 350
		y := float64((d*104729)%700) - 350
		pos := geom.Pt(x, y)
		seq := uint16(1)
		for _, ap := range aps {
			if ap.Pos.Dist(pos) <= ap.MaxRange {
				store.Ingest(50, dot11.NewProbeResponse(ap.BSSID, dev, "", 1, seq), true)
				seq++
			}
		}
	}
	return k, store, devs
}

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for missing WindowSec")
	}
	e := testEngine(t, Config{WindowSec: 30})
	if e.Localizer().Name() != "m-loc" {
		t.Errorf("default localizer = %q", e.Localizer().Name())
	}
	if e.Store() == nil {
		t.Error("default store missing")
	}
}

func TestFixMatchesTracker(t *testing.T) {
	k, store, devs := gridWorld(60, 10)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	tr := &core.Tracker{Know: k, Store: store, WindowSec: 30}
	for _, dev := range devs {
		got, gotErr := e.Fix(dev, 50)
		want, wantErr := tr.Fix(dev, 50)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%v: engine err %v, tracker err %v", dev, gotErr, wantErr)
		}
		if gotErr == nil && got.Pos != want.Pos {
			t.Fatalf("%v: engine %v, tracker %v", dev, got.Pos, want.Pos)
		}
	}
	if _, err := e.Fix(devs[0], 500); !errors.Is(err, core.ErrNoAPs) {
		t.Errorf("empty window: %v", err)
	}
}

func TestSnapshotParallelMatchesSequential(t *testing.T) {
	k, store, _ := gridWorld(80, 50)
	seq := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 1, CacheSize: -1})
	par := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 8, CacheSize: -1})
	a := seq.Snapshot(50)
	b := par.Snapshot(50)
	if len(a) == 0 {
		t.Fatal("sequential snapshot located nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel snapshot differs: %d vs %d devices", len(a), len(b))
	}
}

func TestTrackMatchesTrackerAndSkipsGaps(t *testing.T) {
	k, store, devs := gridWorld(60, 3)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	tr := &core.Tracker{Know: k, Store: store, WindowSec: 30}
	got, err := e.Track(devs[0], 0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Track(devs[0], 0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine track %d points, tracker %d", len(got), len(want))
	}
	if _, err := e.Track(devs[0], 0, 10, 0); err == nil {
		t.Error("want error for zero step")
	}
}

// TestConcurrentIngestWhileSnapshot streams captures into the store while
// snapshots and fixes run — the engine's core concurrency contract, meant
// to run under -race.
func TestConcurrentIngestWhileSnapshot(t *testing.T) {
	k, store, devs := gridWorld(60, 20)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 4})

	const (
		writers         = 3
		framesPerWriter = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ap := mac(0xA0, byte(w))
			for i := 0; i < framesPerWriter; i++ {
				// Mix in out-of-order timestamps to stress the window index.
				ts := float64(40 + (i*13)%30)
				e.Ingest(ts, dot11.NewProbeResponse(ap, devs[i%len(devs)], "", 1, uint16(i)), true)
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	for i := 0; i < 15; i++ {
		snap := e.Snapshot(50)
		if len(snap) == 0 {
			t.Error("snapshot located nothing mid-stream")
			break
		}
		if _, err := e.Fix(devs[0], 50); err != nil {
			t.Errorf("fix mid-stream: %v", err)
			break
		}
	}
	wg.Wait()
	// After the stream settles, the parallel cached snapshot must agree
	// with a fresh sequential uncached engine over the same store.
	ref := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 1, CacheSize: -1})
	got, want := e.Snapshot(50), ref.Snapshot(50)
	if len(want) == 0 {
		t.Fatal("reference snapshot located nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("settled snapshot (%d devices) differs from sequential reference (%d)",
			len(got), len(want))
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	k, store, devs := gridWorld(60, 4)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})

	first, err := e.Fix(devs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheMisses == 0 || s.CacheHits != 0 {
		t.Fatalf("after first fix: %+v", s)
	}
	second, err := e.Fix(devs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits != 1 {
		t.Fatalf("after second fix: %+v", s)
	}
	if first.Pos != second.Pos {
		t.Fatal("cached estimate differs")
	}

	// Shift every AP: the same Γ must now localize elsewhere, so the
	// cache has to be invalidated by the knowledge swap.
	shiftedInfos := k.All()
	for i := range shiftedInfos {
		shiftedInfos[i].Pos = geom.Pt(shiftedInfos[i].Pos.X+500, shiftedInfos[i].Pos.Y)
	}
	e.SetKnowledge(core.NewKnowledge(shiftedInfos))
	third, err := e.Fix(devs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if third.Pos == first.Pos {
		t.Fatal("stale estimate served after knowledge update")
	}
	if third.Pos.X-first.Pos.X < 499 {
		t.Fatalf("post-update estimate %v not shifted from %v", third.Pos, first.Pos)
	}
}

func TestCacheDisabled(t *testing.T) {
	k, store, devs := gridWorld(60, 2)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, CacheSize: -1})
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits != 0 || s.CacheMisses != 2 {
		t.Fatalf("cache disabled but stats = %+v", s)
	}
}

func TestRefreshKnowledgeTrainsAPRad(t *testing.T) {
	// Positions known, radii withheld: RefreshKnowledge must estimate them
	// from co-observations and swap the trained base in.
	base := core.NewKnowledge([]core.APInfo{
		{BSSID: mac(0xA0, 1), Pos: geom.Pt(-50, 0)},
		{BSSID: mac(0xA0, 2), Pos: geom.Pt(50, 0)},
		{BSSID: mac(0xA0, 3), Pos: geom.Pt(400, 0)},
	})
	e := testEngine(t, Config{
		Know:      base,
		Localizer: core.APRadLocalizer{Cfg: core.APRadConfig{MaxRadius: 150}},
		WindowSec: 30,
	})
	dev := mac(0xD0, 1)
	e.Ingest(10, dot11.NewProbeResponse(mac(0xA0, 1), dev, "", 1, 1), true)
	e.Ingest(11, dot11.NewProbeResponse(mac(0xA0, 2), dev, "", 6, 2), true)

	// Before training the base has no radii, so M-Loc has no usable discs.
	if _, err := e.Fix(dev, 10); err == nil {
		t.Fatal("want failure before radius training")
	}
	if err := e.RefreshKnowledge(); err != nil {
		t.Fatal(err)
	}
	know := e.Knowledge()
	in1, _ := know.Get(mac(0xA0, 1))
	in2, _ := know.Get(mac(0xA0, 2))
	if sum := in1.MaxRange + in2.MaxRange; sum < 100-1e-6 {
		t.Fatalf("trained radii sum %v < co-observation distance", sum)
	}
	est, err := e.Fix(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "ap-rad" {
		t.Errorf("method = %q", est.Method)
	}
	if est.Pos.Dist(geom.Pt(0, 0)) > 60 {
		t.Errorf("estimate %v far from co-observed midpoint", est.Pos)
	}
}

func TestRefreshKnowledgeNoopWithoutTrainer(t *testing.T) {
	k, store, _ := gridWorld(10, 1)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	if err := e.RefreshKnowledge(); err != nil {
		t.Fatal(err)
	}
	if !e.Knowledge().Equal(k) {
		t.Error("no-op refresh changed the knowledge")
	}
}

func TestResetObservations(t *testing.T) {
	k, store, devs := gridWorld(60, 2)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	e.ResetObservations()
	if n := e.Store().Len(); n != 0 {
		t.Fatalf("store has %d records after reset", n)
	}
	if _, err := e.Fix(devs[0], 50); !errors.Is(err, core.ErrNoAPs) {
		t.Errorf("fix after reset: %v", err)
	}
}

func TestResetObservationsKeepsShardCount(t *testing.T) {
	k, _, _ := gridWorld(10, 1)
	e := testEngine(t, Config{Know: k, Store: obs.NewStoreShards(8), WindowSec: 30})
	e.ResetObservations()
	if got := e.Store().ShardCount(); got != 8 {
		t.Fatalf("shard count after reset = %d, want 8", got)
	}
}

func TestGammaCacheEviction(t *testing.T) {
	c := newGammaCache(4)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), core.Estimate{K: i}, nil)
	}
	if c.len() != 4 {
		t.Fatalf("len = %d", c.len())
	}
	c.put("overflow", core.Estimate{}, nil)
	if c.len() != 1 {
		t.Fatalf("eviction kept %d entries, want wholesale refill", c.len())
	}
	if _, _, ok := c.get("overflow"); !ok {
		t.Error("new entry missing after eviction")
	}
}

func TestGammaKeyCanonical(t *testing.T) {
	a := []dot11.MAC{mac(0, 1), mac(0, 2)}
	b := []dot11.MAC{mac(0, 1), mac(0, 2)}
	if gammaKey(a) != gammaKey(b) {
		t.Error("identical Γ produced different keys")
	}
	if gammaKey(a) == gammaKey(a[:1]) {
		t.Error("different Γ collided")
	}
}

// TestTelemetryCountersTrackCache re-runs the cache-invalidation scenario
// and asserts the process-wide telemetry counters advance in lockstep with
// the engine's own Stats — the exported hit/miss/eviction series must be
// trustworthy before any scaling PR leans on them.
func TestTelemetryCountersTrackCache(t *testing.T) {
	k, store, devs := gridWorld(60, 4)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})

	base := e.Stats()
	hits0, misses0 := mCacheHits.Value(), mCacheMisses.Value()
	evict0, fixes0 := mCacheEvictions.Value(), mFixes.Value()

	if _, err := e.Fix(devs[0], 50); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := e.Fix(devs[0], 50); err != nil { // hit
		t.Fatal(err)
	}
	shifted := k.All()
	for i := range shifted {
		shifted[i].Pos = geom.Pt(shifted[i].Pos.X+500, shifted[i].Pos.Y)
	}
	e.SetKnowledge(core.NewKnowledge(shifted))    // evicts the one cached entry
	if _, err := e.Fix(devs[0], 50); err != nil { // miss again
		t.Fatal(err)
	}

	s := e.Stats()
	wantHits := s.CacheHits - base.CacheHits
	wantMisses := s.CacheMisses - base.CacheMisses
	wantEvict := s.CacheEvictions - base.CacheEvictions
	wantFixes := s.Fixes - base.Fixes
	if wantHits != 1 || wantMisses != 2 || wantEvict != 1 || wantFixes != 3 {
		t.Fatalf("engine stats delta hits=%d misses=%d evictions=%d fixes=%d",
			wantHits, wantMisses, wantEvict, wantFixes)
	}
	if got := mCacheHits.Value() - hits0; got != wantHits {
		t.Errorf("telemetry hits delta = %d, want %d", got, wantHits)
	}
	if got := mCacheMisses.Value() - misses0; got != wantMisses {
		t.Errorf("telemetry misses delta = %d, want %d", got, wantMisses)
	}
	if got := mCacheEvictions.Value() - evict0; got != wantEvict {
		t.Errorf("telemetry evictions delta = %d, want %d", got, wantEvict)
	}
	if got := mFixes.Value() - fixes0; got != wantFixes {
		t.Errorf("telemetry fixes delta = %d, want %d", got, wantFixes)
	}
}

// TestStatsReportWorkers covers the satellite fix: the resolved pool size
// (after the GOMAXPROCS default) is observable, not silent.
func TestStatsReportWorkers(t *testing.T) {
	e := testEngine(t, Config{WindowSec: 30, Workers: 3})
	if got := e.Stats().Workers; got != 3 {
		t.Fatalf("workers = %d", got)
	}
	auto := testEngine(t, Config{WindowSec: 30})
	if got := auto.Stats().Workers; got != runtime.GOMAXPROCS(0) {
		t.Fatalf("auto workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if mWorkers.Value() != float64(runtime.GOMAXPROCS(0)) {
		t.Fatalf("worker gauge = %v", mWorkers.Value())
	}
}

// TestSnapshotTelemetry asserts the snapshot counter and latency histogram
// advance per snapshot.
func TestSnapshotTelemetry(t *testing.T) {
	k, store, _ := gridWorld(30, 5)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	snaps0, lat0 := mSnapshots.Value(), mSnapshotSeconds.Count()
	e.Snapshot(50)
	e.Snapshot(50)
	if got := mSnapshots.Value() - snaps0; got != 2 {
		t.Errorf("snapshot counter delta = %d", got)
	}
	if got := mSnapshotSeconds.Count() - lat0; got != 2 {
		t.Errorf("snapshot latency observations delta = %d", got)
	}
}
