package engine

import (
	"sync"
)

// quarantineKeep bounds the retained sample of quarantined captures; the
// totals keep counting past it, so nothing is lost from the accounting
// even when the samples rotate.
const quarantineKeep = 256

// Quarantine reasons.
const (
	// ReasonUndecodable marks captures whose raw bytes fail frame
	// decoding — bit-flip corruption, truncation, a broken FCS.
	ReasonUndecodable = "undecodable"
	// ReasonMissingFrame marks captures that arrived with neither a
	// decoded frame nor raw bytes to attempt decoding.
	ReasonMissingFrame = "missing-frame"
)

// QuarantinedCapture is one rejected capture's accounting record.
type QuarantinedCapture struct {
	// TimeSec is the capture's (possibly fault-perturbed) timestamp.
	TimeSec float64 `json:"timeSec"`
	// Reason says why the capture was rejected.
	Reason string `json:"reason"`
	// RawLen is the length of the undecodable bytes (0 when none).
	RawLen int `json:"rawLen"`
	// CardChannel is the monitoring card that produced the capture.
	CardChannel int `json:"cardChannel"`
}

// QuarantineStats summarizes the engine's reject queue.
type QuarantineStats struct {
	// Total counts every quarantined capture since construction.
	Total uint64 `json:"total"`
	// ByReason splits the total by rejection reason.
	ByReason map[string]uint64 `json:"byReason,omitempty"`
	// Recent holds the newest retained samples, oldest first, capped at
	// quarantineKeep.
	Recent []QuarantinedCapture `json:"recent,omitempty"`
}

// quarantine is the engine's bounded reject queue: corrupt or undecodable
// captures land here, counted per reason, instead of erroring the ingest
// path or silently vanishing.
type quarantine struct {
	mu       sync.Mutex
	total    uint64
	byReason map[string]uint64
	recent   []QuarantinedCapture // ring, oldest at head once full
	next     int                  // ring write cursor
}

// add records one rejected capture.
func (q *quarantine) add(c QuarantinedCapture) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	if q.byReason == nil {
		q.byReason = make(map[string]uint64)
	}
	q.byReason[c.Reason]++
	if len(q.recent) < quarantineKeep {
		q.recent = append(q.recent, c)
	} else {
		q.recent[q.next] = c
		q.next = (q.next + 1) % quarantineKeep
	}
}

// stats snapshots the queue.
func (q *quarantine) stats() QuarantineStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QuarantineStats{Total: q.total}
	if len(q.byReason) > 0 {
		st.ByReason = make(map[string]uint64, len(q.byReason))
		for k, v := range q.byReason {
			st.ByReason[k] = v
		}
	}
	if len(q.recent) > 0 {
		st.Recent = make([]QuarantinedCapture, 0, len(q.recent))
		st.Recent = append(st.Recent, q.recent[q.next:]...)
		st.Recent = append(st.Recent, q.recent[:q.next]...)
	}
	return st
}

// Health is the engine's degraded-vs-healthy self-report, the engine's
// contribution to the map server's /api/health endpoint.
type Health struct {
	// Healthy is false while the engine is in a degraded mode.
	Healthy bool `json:"healthy"`
	// Reasons names each active degradation.
	Reasons []string `json:"reasons,omitempty"`
	// Quarantined counts captures in the reject queue.
	Quarantined uint64 `json:"quarantined"`
	// RefreshRetries counts re-training attempts beyond the first.
	RefreshRetries uint64 `json:"refreshRetries"`
	// RefreshFallbacks counts RefreshKnowledge calls that kept the
	// last-known-good knowledge after exhausting retries.
	RefreshFallbacks uint64 `json:"refreshFallbacks"`
	// ConsecutiveRefreshFailures counts RefreshKnowledge calls that have
	// failed (after retries) since the last success.
	ConsecutiveRefreshFailures uint64 `json:"consecutiveRefreshFailures"`
	// KnowledgeGen is the active knowledge generation.
	KnowledgeGen uint64 `json:"knowledgeGen"`
	// TrainedOnce reports whether a trained algorithm has ever produced
	// working knowledge (meaningless but true for untrained algorithms).
	TrainedOnce bool `json:"trainedOnce"`
	// Sources maps each capture source that has ever delivered to its
	// delivery liveness; a Stale entry degrades Healthy.
	Sources map[string]SourceHealth `json:"sources,omitempty"`
}
