package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/telemetry/trace"
)

func testTracer(t *testing.T, cfg trace.Config) *trace.Tracer {
	t.Helper()
	tr, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFixRangeProvenance is the end-to-end explainability contract: one
// traced FixRange yields a provenance record carrying the algorithm, Γ,
// k, the exact intersected area next to Theorem 2's prediction, the
// cache-hit flag and per-stage timings.
func TestFixRangeProvenance(t *testing.T) {
	k, store, devs := gridWorld(60, 4)
	tracer := testTracer(t, trace.Config{})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})
	dev := devs[0]

	if _, err := e.FixRange(dev, 40, 60); err != nil {
		t.Fatal(err)
	}
	p, ok := tracer.Explain(dev.String())
	if !ok {
		t.Fatal("no provenance recorded for a traced FixRange")
	}
	if p.Algorithm != "m-loc" {
		t.Errorf("Algorithm = %q, want m-loc", p.Algorithm)
	}
	if p.K == 0 || len(p.Gamma) != p.K {
		t.Errorf("K = %d with %d Γ members, want equal and > 0", p.K, len(p.Gamma))
	}
	if !p.Located || p.Err != "" {
		t.Errorf("Located = %v Err = %q, want a clean fix", p.Located, p.Err)
	}
	if p.VertexCount == 0 {
		t.Error("VertexCount = 0 for an M-Loc fix, want the intersection polygon's vertices")
	}
	if p.IntersectedAreaM2 <= 0 {
		t.Errorf("IntersectedAreaM2 = %v, want > 0", p.IntersectedAreaM2)
	}
	if p.Theorem2AreaM2 <= 0 || p.MeanRadiusM <= 0 {
		t.Errorf("Theorem2AreaM2 = %v MeanRadiusM = %v, want both > 0",
			p.Theorem2AreaM2, p.MeanRadiusM)
	}
	if p.CacheHit {
		t.Error("first fix of a Γ reported a cache hit")
	}
	if p.WindowStart != 40 || p.WindowEnd != 60 {
		t.Errorf("window = [%v, %v], want [40, 60]", p.WindowStart, p.WindowEnd)
	}
	for _, stage := range []string{"window-query", "localize", "provenance"} {
		if _, ok := p.StagesMs[stage]; !ok {
			t.Errorf("StagesMs missing %q: %v", stage, p.StagesMs)
		}
	}
	if p.TraceID == "" {
		t.Error("provenance carries no trace ID")
	}

	// The same window again must resolve through the Γ cache and say so.
	if _, err := e.FixRange(dev, 40, 60); err != nil {
		t.Fatal(err)
	}
	if p, _ := tracer.Explain(dev.String()); !p.CacheHit {
		t.Error("repeat fix of the same Γ not attributed to the cache")
	}
}

// TestFixProvenanceOnFailure: a fix that cannot locate still explains
// itself — the error string is recorded and the expensive fields stay 0.
func TestFixProvenanceOnFailure(t *testing.T) {
	k, store, devs := gridWorld(60, 2)
	tracer := testTracer(t, trace.Config{})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})

	if _, err := e.Fix(devs[0], 5000); err == nil { // empty window
		t.Fatal("want error for an empty window")
	}
	p, ok := tracer.Explain(devs[0].String())
	if !ok {
		t.Fatal("failed fix left no provenance")
	}
	if p.Located || p.Err == "" {
		t.Errorf("Located = %v Err = %q, want an explained failure", p.Located, p.Err)
	}
	if len(p.Gamma) != 0 || p.IntersectedAreaM2 != 0 {
		t.Errorf("empty-window provenance carries Γ=%v area=%v", p.Gamma, p.IntersectedAreaM2)
	}
}

// TestTrackTracingAndCounters (satellite): Track's fixes feed both the
// telemetry counters and the trace ring, and tracing does not change the
// estimates.
func TestTrackTracingAndCounters(t *testing.T) {
	k, store, devs := gridWorld(60, 3)
	tracer := testTracer(t, trace.Config{Buffer: 64})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})
	plain := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})

	fixes0 := e.Stats().Fixes
	finished0 := tracer.Stats().Finished
	got, err := e.Track(devs[0], 0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Track(devs[0], 0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traced track differs from untraced: %d vs %d points", len(got), len(want))
	}

	fixes := e.Stats().Fixes - fixes0
	finished := tracer.Stats().Finished - finished0
	if fixes == 0 {
		t.Fatal("Track incremented no fix counters")
	}
	if finished != fixes {
		t.Errorf("tracer finished %d traces for %d fixes at sample=1", finished, fixes)
	}
	for _, rec := range tracer.Recent(5) {
		if rec.Kind != trace.KindFix {
			t.Errorf("Track produced a %q trace, want %q", rec.Kind, trace.KindFix)
		}
		if rec.Device != devs[0].String() {
			t.Errorf("trace device = %s, want %s", rec.Device, devs[0])
		}
		if len(rec.Spans) == 0 {
			t.Error("fix trace carries no spans")
		}
	}
}

// TestTrackSampled: with 1-in-4 sampling only a quarter of Track's fixes
// trace, and the unsampled ones pay no provenance cost but still fix.
func TestTrackSampled(t *testing.T) {
	k, store, devs := gridWorld(60, 3)
	tracer := testTracer(t, trace.Config{Sample: 0.25, Buffer: 64})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})

	fixes0 := e.Stats().Fixes
	if _, err := e.Track(devs[0], 0, 400, 10); err != nil {
		t.Fatal(err)
	}
	fixes := e.Stats().Fixes - fixes0
	finished := tracer.Stats().Finished
	wantTraces := fixes / 4
	if finished != wantTraces {
		t.Errorf("1-in-4 sampling finished %d traces for %d fixes, want %d",
			finished, fixes, wantTraces)
	}
}

// TestSnapshotTraceParallel (satellite, -race): concurrent snapshot
// workers trace concurrently tracked devices without losing records or
// corrupting the per-device explain index.
func TestSnapshotTraceParallel(t *testing.T) {
	k, store, _ := gridWorld(80, 50)
	tracer := testTracer(t, trace.Config{Buffer: 128})
	par := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 8, CacheSize: -1, Tracer: tracer})
	plain := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Workers: 1, CacheSize: -1})

	got := par.Snapshot(50)
	want := plain.Snapshot(50)
	if len(got) == 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("traced parallel snapshot differs: %d vs %d devices", len(got), len(want))
	}
	for dev := range got {
		p, ok := tracer.Explain(dev.String())
		if !ok {
			t.Fatalf("located device %v has no provenance at sample=1", dev)
		}
		if !p.Located || p.Device != dev.String() {
			t.Errorf("provenance for %v: located=%v device=%s", dev, p.Located, p.Device)
		}
	}
}

// TestConcurrentTrackTracing (satellite, -race): many goroutines track
// different devices against one tracer.
func TestConcurrentTrackTracing(t *testing.T) {
	k, store, devs := gridWorld(60, 8)
	tracer := testTracer(t, trace.Config{Sample: 0.5, Buffer: 32})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})

	var wg sync.WaitGroup
	errs := make(chan error, len(devs))
	for _, dev := range devs {
		wg.Add(1)
		go func(dev [6]byte) {
			defer wg.Done()
			if _, err := e.Track(dev, 0, 200, 20); err != nil {
				errs <- fmt.Errorf("%v: %w", dev, err)
			}
		}(dev)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tracer.Stats().Finished == 0 {
		t.Error("concurrent tracking finished no traces")
	}
}

// TestUntracedEngineHasNilTracer: without a Config.Tracer every traced
// code path must stay on its nil fast path.
func TestUntracedEngineHasNilTracer(t *testing.T) {
	k, store, devs := gridWorld(60, 2)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	if e.Tracer().Enabled() {
		t.Fatal("engine without a tracer reports tracing enabled")
	}
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Tracer().Explain(devs[0].String()); ok {
		t.Error("nil tracer explained a device")
	}
}

// TestProvenanceKnowledgeGen: provenance attributes estimates to the
// knowledge generation they were computed against.
func TestProvenanceKnowledgeGen(t *testing.T) {
	k, store, devs := gridWorld(60, 2)
	tracer := testTracer(t, trace.Config{})
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Tracer: tracer})

	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	p0, _ := tracer.Explain(devs[0].String())
	// Re-setting identical knowledge is a no-op: invalidation is exact, so
	// the generation must not move.
	e.SetKnowledge(k)
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	pSame, _ := tracer.Explain(devs[0].String())
	if pSame.KnowledgeGen != p0.KnowledgeGen {
		t.Errorf("KnowledgeGen %d -> %d across identical SetKnowledge, want unchanged",
			p0.KnowledgeGen, pSame.KnowledgeGen)
	}
	// A real knowledge change bumps the generation the next fix reports.
	shifted := k.All()
	for i := range shifted {
		shifted[i].Pos = geom.Pt(shifted[i].Pos.X+500, shifted[i].Pos.Y)
	}
	e.SetKnowledge(core.NewKnowledge(shifted))
	if _, err := e.Fix(devs[0], 50); err != nil {
		t.Fatal(err)
	}
	p1, _ := tracer.Explain(devs[0].String())
	if p1.KnowledgeGen != p0.KnowledgeGen+1 {
		t.Errorf("KnowledgeGen %d -> %d across SetKnowledge, want +1",
			p0.KnowledgeGen, p1.KnowledgeGen)
	}
}

// TestTheorem2AreaScaling: the memoized unit-radius quadrature must scale
// as r² (Theorem 2's closed form) and agree across repeated calls.
func TestTheorem2AreaScaling(t *testing.T) {
	a1 := theorem2Area(4, 100)
	if a1 <= 0 {
		t.Fatalf("theorem2Area(4, 100) = %v, want > 0", a1)
	}
	a2 := theorem2Area(4, 200)
	if ratio := a2 / a1; ratio < 3.999 || ratio > 4.001 {
		t.Errorf("doubling r scaled E[CA] by %v, want 4 (r² law)", ratio)
	}
	if theorem2Area(0, 100) != 0 || theorem2Area(4, 0) != 0 {
		t.Error("theorem2Area outside its domain should be 0")
	}
	if again := theorem2Area(4, 100); again != a1 {
		t.Errorf("memoized theorem2Area changed: %v vs %v", again, a1)
	}
}

func TestMeanRange(t *testing.T) {
	k, _, _ := gridWorld(4, 0)
	gamma := k.All()
	macs := []dot11.MAC{gamma[0].BSSID, gamma[1].BSSID}
	if got := meanRange(k, macs); got != 100 {
		t.Errorf("meanRange = %v, want the grid's uniform 100", got)
	}
	if got := meanRange(k, nil); got != 0 {
		t.Errorf("meanRange of empty Γ = %v, want 0", got)
	}
}
