package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

// flakyTrainer trains successfully only when failLeft has run out; every
// call decrements it. It localizes like a fixed-point stub.
type flakyTrainer struct {
	failLeft *int
	calls    *int
}

func (f flakyTrainer) Name() string { return "flaky" }

func (f flakyTrainer) Locate(k core.Knowledge, gamma []dot11.MAC) (core.Estimate, error) {
	if k.Len() == 0 {
		return core.Estimate{}, core.ErrNoAPs
	}
	return core.Estimate{Pos: geom.Pt(1, 2), K: len(gamma), Method: "flaky"}, nil
}

func (f flakyTrainer) Train(base core.Knowledge, sets map[dot11.MAC][]dot11.MAC) (core.Knowledge, error) {
	*f.calls++
	if *f.failLeft > 0 {
		*f.failLeft--
		return core.Knowledge{}, errors.New("LP infeasible")
	}
	infos := base.All()
	for i := range infos {
		infos[i].MaxRange = 100
	}
	return core.NewKnowledge(infos), nil
}

func trainBase() core.Knowledge {
	ap := dot11.MAC{2, 0xA9, 0, 0, 0, 1}
	return core.NewKnowledge([]core.APInfo{{BSSID: ap, Pos: geom.Pt(0, 0)}})
}

func TestRefreshRetriesThenSucceeds(t *testing.T) {
	fails, calls := 2, 0
	eng, err := New(Config{
		Know: trainBase(), WindowSec: 10,
		Localizer:       flakyTrainer{failLeft: &fails, calls: &calls},
		RefreshAttempts: 3, RefreshBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RefreshKnowledge(); err != nil {
		t.Fatalf("refresh should succeed on the third attempt: %v", err)
	}
	if calls != 3 {
		t.Errorf("training ran %d times, want 3", calls)
	}
	h := eng.Health()
	if !h.Healthy || h.RefreshRetries != 2 || h.ConsecutiveRefreshFailures != 0 || !h.TrainedOnce {
		t.Errorf("health after recovered refresh = %+v", h)
	}
}

func TestRefreshColdStartFailurePropagates(t *testing.T) {
	fails, calls := 100, 0
	eng, err := New(Config{
		Know: trainBase(), WindowSec: 10,
		Localizer:       flakyTrainer{failLeft: &fails, calls: &calls},
		RefreshAttempts: 2, RefreshBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RefreshKnowledge(); err == nil {
		t.Fatal("cold-start refresh with no last-known-good must error")
	}
	if calls != 2 {
		t.Errorf("training ran %d times, want 2 (RefreshAttempts)", calls)
	}
	h := eng.Health()
	if h.Healthy || h.ConsecutiveRefreshFailures != 1 || h.TrainedOnce {
		t.Errorf("health after cold-start failure = %+v", h)
	}
}

func TestRefreshFallsBackToLastKnownGood(t *testing.T) {
	fails, calls := 0, 0
	eng, err := New(Config{
		Know: trainBase(), WindowSec: 10,
		Localizer:       flakyTrainer{failLeft: &fails, calls: &calls},
		RefreshAttempts: 2, RefreshBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RefreshKnowledge(); err != nil {
		t.Fatal(err)
	}
	goodGen := eng.Stats().KnowledgeGen
	goodKnow := eng.Knowledge()

	// Training breaks permanently; the refresh degrades instead of erroring.
	fails = 1 << 30
	if err := eng.RefreshKnowledge(); err != nil {
		t.Fatalf("refresh after a prior success must degrade, not error: %v", err)
	}
	h := eng.Health()
	if h.Healthy || h.RefreshFallbacks != 1 || h.ConsecutiveRefreshFailures != 1 {
		t.Errorf("health after fallback = %+v", h)
	}
	if eng.Stats().KnowledgeGen != goodGen {
		t.Error("fallback must not swap the knowledge generation")
	}
	if k := eng.Knowledge(); k.Len() != goodKnow.Len() {
		t.Error("fallback lost the last-known-good knowledge")
	}
	// Fixes keep working against the stale knowledge: degraded, not dead.
	st := eng.Store()
	dev := sim.NewMAC(0xDD, 1)
	ap := dot11.MAC{2, 0xA9, 0, 0, 0, 1}
	st.Ingest(5, probeResp(dev, ap), true)
	if _, err := eng.Fix(dev, 5); err != nil {
		t.Fatalf("fix during degraded mode: %v", err)
	}

	// Training heals: health recovers on the next refresh.
	fails = 0
	if err := eng.RefreshKnowledge(); err != nil {
		t.Fatal(err)
	}
	if h := eng.Health(); !h.Healthy || h.ConsecutiveRefreshFailures != 0 {
		t.Errorf("health after recovery = %+v", h)
	}
}

func TestRefreshBackoffSleeps(t *testing.T) {
	fails, calls := 2, 0
	eng, err := New(Config{
		Know: trainBase(), WindowSec: 10,
		Localizer:       flakyTrainer{failLeft: &fails, calls: &calls},
		RefreshAttempts: 3, RefreshBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := eng.RefreshKnowledge(); err != nil {
		t.Fatal(err)
	}
	// Two retries: 10ms + 20ms of backoff.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("elapsed %v, want >= 30ms of exponential backoff", elapsed)
	}
}

func probeResp(dev, ap dot11.MAC) *dot11.Frame {
	return &dot11.Frame{
		Type:    dot11.TypeManagement,
		Subtype: dot11.SubtypeProbeResp,
		Addr1:   dev,
		Addr2:   ap,
		Addr3:   ap,
	}
}

func TestIngestQuarantinesCorruptCaptures(t *testing.T) {
	eng, err := New(Config{Know: trainBase(), WindowSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewMAC(0xDD, 7)
	ap := dot11.MAC{2, 0xA9, 0, 0, 0, 1}
	good := probeResp(dev, ap)
	raw, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[3] ^= 0x10 // breaks the FCS

	caps := []sniffer.Capture{
		{TimeSec: 1, Frame: good},
		{TimeSec: 2, Raw: corrupt, CardChannel: 6}, // undecodable
		{TimeSec: 3}, // neither frame nor raw
		{TimeSec: 4, Raw: append([]byte(nil), raw...)}, // clean raw: decodes and ingests
	}
	n := eng.IngestCaptures(caps)
	if n != 2 {
		t.Fatalf("ingested %d, want 2 (good frame + re-decoded raw)", n)
	}
	q := eng.Quarantine()
	if q.Total != 2 {
		t.Fatalf("quarantined %d, want 2", q.Total)
	}
	if q.ByReason[ReasonUndecodable] != 1 || q.ByReason[ReasonMissingFrame] != 1 {
		t.Fatalf("quarantine by reason = %v", q.ByReason)
	}
	if len(q.Recent) != 2 {
		t.Fatalf("recent samples = %d, want 2", len(q.Recent))
	}
	if q.Recent[0].Reason != ReasonUndecodable || q.Recent[0].CardChannel != 6 || q.Recent[0].RawLen != len(corrupt) {
		t.Errorf("first sample = %+v", q.Recent[0])
	}
	if eng.Stats().Quarantined != 2 {
		t.Errorf("Stats.Quarantined = %d, want 2", eng.Stats().Quarantined)
	}
	// The two clean records actually landed.
	if eng.Store().Len() != 2 {
		t.Errorf("store holds %d records, want 2", eng.Store().Len())
	}
}

func TestQuarantineRingBounded(t *testing.T) {
	eng, err := New(Config{Know: trainBase(), WindowSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]sniffer.Capture, quarantineKeep+50)
	for i := range caps {
		caps[i] = sniffer.Capture{TimeSec: float64(i)} // missing-frame
	}
	eng.IngestCaptures(caps)
	q := eng.Quarantine()
	if q.Total != uint64(len(caps)) {
		t.Fatalf("total %d, want %d — the cap must not lose the count", q.Total, len(caps))
	}
	if len(q.Recent) != quarantineKeep {
		t.Fatalf("retained %d samples, want %d", len(q.Recent), quarantineKeep)
	}
	// Oldest-first rotation: first retained sample is capture 50.
	if q.Recent[0].TimeSec != 50 {
		t.Errorf("oldest retained sample t=%v, want 50", q.Recent[0].TimeSec)
	}
}
