package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/telemetry/trace"
)

// lineWalkWorld builds the canonical tracked-device fixture: nAPs on a
// line 30 m apart with 150 m ranges, and one device walking past them so
// the window centred at t = s·30 observes exactly APs s..s+k−1 — the ±1
// sliding Γ the incremental region is built for.
func lineWalkWorld(nAPs, k int) (core.Knowledge, *obs.Store, dot11.MAC, float64) {
	var aps []core.APInfo
	for i := 0; i < nAPs; i++ {
		aps = append(aps, core.APInfo{
			BSSID:    mac(0xA0, byte(i+1)),
			Pos:      geom.Pt(float64(i)*30, 0),
			MaxRange: 150,
		})
	}
	know := core.NewKnowledge(aps)
	store := obs.NewStore()
	dev := mac(0xD0, 1)
	steps := nAPs - k
	seq := uint16(1)
	for s := 0; s <= steps; s++ {
		ts := float64(s) * 30
		for i := s; i < s+k; i++ {
			store.Ingest(ts, dot11.NewProbeResponse(aps[i].BSSID, dev, "", 1, seq), true)
			seq++
		}
	}
	return know, store, dev, float64(steps) * 30
}

func samePoints(t *testing.T, ctx string, got, want []core.TrackPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d track points, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.TimeSec != w.TimeSec || g.Est.Pos != w.Est.Pos ||
			g.Est.K != w.Est.K || g.Est.Method != w.Est.Method {
			t.Fatalf("%s: point %d = %+v, want %+v (not bit-equal)", ctx, i, g, w)
		}
		if len(g.Est.Vertices) != len(w.Est.Vertices) {
			t.Fatalf("%s: point %d has %d vertices, want %d", ctx, i,
				len(g.Est.Vertices), len(w.Est.Vertices))
		}
		for v := range g.Est.Vertices {
			if g.Est.Vertices[v] != w.Est.Vertices[v] {
				t.Fatalf("%s: point %d vertex %d = %v, want %v",
					ctx, i, v, g.Est.Vertices[v], w.Est.Vertices[v])
			}
		}
	}
}

// TestTrackIncrementalMatchesFull is the through-the-engine differential
// oracle: Track with the tracked-capable MLocalizer must produce exactly
// the trajectory the plain full-recompute localizer does, bit for bit,
// with caching disabled so every fix runs the incremental path.
func TestTrackIncrementalMatchesFull(t *testing.T) {
	know, store, dev, endSec := lineWalkWorld(20, 8)
	inc := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, CacheSize: -1})
	// LocalizerFunc does not implement TrackedLocalizer, so this engine is
	// pinned to the from-scratch algorithm.
	full := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, CacheSize: -1,
		Localizer: core.LocalizerFunc{Method: "m-loc", Func: core.MLoc}})

	got, err := inc.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("track produced no points")
	}
	samePoints(t, "incremental vs full", got, want)

	// The tracked estimates alias the tracker's arena mid-Track; the
	// materialized output must stay intact across a second Track that
	// reuses nothing from the first.
	again, err := inc.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "first Track after second Track", got, want)
	samePoints(t, "second Track", again, want)
}

// TestTrackProvenanceRegionPath pins the observability contract: traced
// tracked fixes carry the region path ("full" first, then "incremental"
// with the ±1 diff), and cache hits carry neither.
func TestTrackProvenanceRegionPath(t *testing.T) {
	know, store, dev, endSec := lineWalkWorld(20, 8)
	tracer := testTracer(t, trace.Config{})
	e := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, CacheSize: -1, Tracer: tracer})
	pts, err := e.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	recs := tracer.Recent(0)
	if len(recs) < len(pts) {
		t.Fatalf("%d trace records for %d track points", len(recs), len(pts))
	}
	// Recent returns newest first; walk the Track's fixes oldest first.
	fixes := recs[:len(pts)]
	for i := range fixes {
		p := fixes[len(fixes)-1-i].Provenance
		if p == nil {
			t.Fatalf("fix %d: no provenance", i)
		}
		wantPath, wantDiff := core.RegionPathIncremental, 2
		if i == 0 {
			wantPath, wantDiff = core.RegionPathFull, 8
		}
		if p.RegionPath != wantPath || p.RegionDiff != wantDiff {
			t.Fatalf("fix %d: region path %q diff %d, want %q diff %d",
				i, p.RegionPath, p.RegionDiff, wantPath, wantDiff)
		}
		if p.CacheHit {
			t.Fatalf("fix %d: cache hit with caching disabled", i)
		}
	}

	// With the cache enabled, a second identical Track is served from the
	// cache: no tracked compute ran, so no region path is attributed.
	tracer2 := testTracer(t, trace.Config{})
	cached := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, Tracer: tracer2})
	if _, err := cached.Track(dev, 0, endSec, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Track(dev, 0, endSec, 30); err != nil {
		t.Fatal(err)
	}
	hits := tracer2.Recent(len(pts))
	for i, rec := range hits {
		p := rec.Provenance
		if p == nil || !p.CacheHit {
			t.Fatalf("repeat-track record %d: want a cache hit, got %+v", i, p)
		}
		if p.RegionPath != "" || p.RegionDiff != 0 {
			t.Fatalf("repeat-track record %d: cache hit carries region path %q diff %d",
				i, p.RegionPath, p.RegionDiff)
		}
	}
}

// TestTrackCachedVerticesDetached pins the aliasing contract on the
// cached path: estimates stored in the Γ cache must not alias the region
// tracker's arena, or later fixes would corrupt earlier cached results.
func TestTrackCachedVerticesDetached(t *testing.T) {
	know, store, dev, endSec := lineWalkWorld(20, 8)
	cached := testEngine(t, Config{Know: know, Store: store, WindowSec: 30})
	full := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, CacheSize: -1,
		Localizer: core.LocalizerFunc{Method: "m-loc", Func: core.MLoc}})
	want, err := full.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	// First Track populates the cache while the tracker's arena churns
	// beneath it; the second is served from the cache alone.
	first, err := cached.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.Track(dev, 0, endSec, 30)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "cache-filling Track", first, want)
	samePoints(t, "cache-served Track", second, want)
	st := cached.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("second Track hit the cache 0 times: %+v", st)
	}
}

// TestTrackedFixPathZeroAllocs pins the satellite allocation gate at the
// engine layer: after warmup, one tracked fix — window query, Γ diff,
// incremental region update, centroid — performs zero allocations.
func TestTrackedFixPathZeroAllocs(t *testing.T) {
	know, store, dev, endSec := lineWalkWorld(40, 8)
	e := testEngine(t, Config{Know: know, Store: store, WindowSec: 30, CacheSize: -1})
	tl := e.loc.(core.TrackedLocalizer)
	rt := new(core.RegionTracker)
	steps := int(endSec/30) + 1
	var buf []dot11.MAC
	step := 0
	fix := func() {
		ts := float64(step%steps) * 30
		step++
		var err error
		buf, _, _, err = e.fixWindowTracked(buf[:0], dev, ts-15, ts+15, tl, rt)
		if err != nil {
			t.Fatalf("fix %d: %v", step, err)
		}
	}
	for i := 0; i < 2*steps; i++ {
		fix() // warm arenas across the whole cycle, including the wrap rebuild
	}
	if avg := testing.AllocsPerRun(300, fix); avg != 0 {
		t.Fatalf("steady-state tracked fix allocates %.2f times per fix, want 0", avg)
	}
}
