package engine

import "repro/internal/telemetry"

// Process-wide pipeline metrics, registered at package init so an
// exposition endpoint serves the full engine series set from the first
// scrape. Several engines in one process share these series (the gauge is
// last-engine-wins); the per-engine view stays available through
// Engine.Stats.
var (
	mFramesIngested = telemetry.Default().Counter(
		"marauder_engine_frames_ingested_total",
		"Captured frames fed into the observation store through the engine.", nil)
	mSnapshots = telemetry.Default().Counter(
		"marauder_engine_snapshots_total",
		"Full map-frame snapshots taken.", nil)
	mSnapshotSeconds = telemetry.Default().Histogram(
		"marauder_engine_snapshot_seconds",
		"Wall time per map-frame snapshot.", telemetry.LatencyBuckets(), nil)
	mWorkers = telemetry.Default().Gauge(
		"marauder_engine_workers",
		"Resolved snapshot worker-pool size (Config.Workers after the GOMAXPROCS default).", nil)
	mFixes = telemetry.Default().Counter(
		"marauder_engine_fixes_total",
		"Localization requests answered, cached or computed, successful or not.", nil)
	mCacheHits = telemetry.Default().Counter(
		"marauder_engine_cache_hits_total",
		"Fixes served from the Γ-memoization cache.", nil)
	mCacheMisses = telemetry.Default().Counter(
		"marauder_engine_cache_misses_total",
		"Fixes that ran the localization algorithm.", nil)
	mCacheEvictions = telemetry.Default().Counter(
		"marauder_engine_cache_evictions_total",
		"Γ-cache entries dropped by wholesale refill or knowledge invalidation.", nil)
	mRefreshes = telemetry.Default().Counter(
		"marauder_engine_knowledge_refresh_total",
		"Knowledge re-training runs (RefreshKnowledge on a trained algorithm).", nil)
	mRefreshSeconds = telemetry.Default().Histogram(
		"marauder_engine_knowledge_refresh_seconds",
		"Wall time per knowledge re-training run.", telemetry.LatencyBuckets(), nil)
	mRefreshRetries = telemetry.Default().Counter(
		"marauder_engine_knowledge_refresh_retries_total",
		"Knowledge re-training attempts beyond the first within one RefreshKnowledge call.", nil)
	mRefreshFallbacks = telemetry.Default().Counter(
		"marauder_engine_knowledge_refresh_fallbacks_total",
		"RefreshKnowledge calls that exhausted retries and kept the last-known-good knowledge.", nil)
)

// Per-stage wall-time histograms for the fix/ingest hot paths — the
// always-on version of the stage durations sampled traces carry, so the
// engine-level cost breakdown is a /metrics scrape away. Fix-path stages
// (window_assembly, localize, region_update, trace_record) are sampled
// 1-in-N (Config.StageSampleEvery) to keep the cached-fix path inside
// the perf gate; batch-level stages (store_scan, ingest) are timed on
// every occurrence. All stages share one sampling rate, so stage *shares*
// computed from the sums are unbiased.
var (
	mStageWindow   = stageSeconds("window_assembly")
	mStageLocalize = stageSeconds("localize")
	mStageRegion   = stageSeconds("region_update")
	mStageTrace    = stageSeconds("trace_record")
	mStageScan     = stageSeconds("store_scan")
	mStageIngest   = stageSeconds("ingest")
	mFixSeconds    = telemetry.Default().Histogram(
		"marauder_fix_seconds",
		"End-to-end wall time per localization fix (sampled 1-in-N with the stage histograms).",
		telemetry.LatencyBuckets(), nil)
	mFixErrors = telemetry.Default().Counter(
		"marauder_engine_fix_errors_total",
		"Fixes that failed for a reason other than an empty observation window.", nil)
)

// stageSeconds returns the marauder_stage_seconds instance for one stage.
func stageSeconds(stage string) *telemetry.Histogram {
	return telemetry.Default().Histogram(
		"marauder_stage_seconds",
		"Wall time per pipeline stage (fix-path stages sampled 1-in-N, see Config.StageSampleEvery).",
		telemetry.LatencyBuckets(),
		telemetry.Labels{"stage": stage})
}

// mQuarantined counts captures diverted to the reject queue, by reason.
func mQuarantined(reason string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_engine_quarantined_total",
		"Captures quarantined instead of ingested, by reason.",
		telemetry.Labels{"reason": reason})
}
