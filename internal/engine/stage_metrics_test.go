package engine

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/sniffer"
	"repro/internal/telemetry"
)

// stageCounts reads the observation counts of every marauder_stage_seconds
// instance plus marauder_fix_seconds from the process-default registry.
func stageCounts() map[string]uint64 {
	out := map[string]uint64{}
	for _, s := range telemetry.Default().Snapshot() {
		switch s.Name {
		case "marauder_stage_seconds":
			out[s.Labels] = s.Count
		case "marauder_fix_seconds":
			out["fix"] = s.Count
		}
	}
	return out
}

func stageDelta(before, after map[string]uint64, key string) uint64 {
	return after[key] - before[key]
}

func TestStageHistogramsObserveEveryFixWhenSampled(t *testing.T) {
	k, store, devs := gridWorld(40, 8)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, StageSampleEvery: 1, CacheSize: -1})

	before := stageCounts()
	for _, dev := range devs {
		// Stage timing wraps the fix whether or not it succeeds (a device
		// outside coverage still pays window assembly), so errors don't
		// change the expected counts.
		_, _ = e.Fix(dev, 50)
	}
	after := stageCounts()

	n := uint64(len(devs))
	for _, stage := range []string{`stage="window_assembly"`, `stage="localize"`, `stage="trace_record"`} {
		if got := stageDelta(before, after, stage); got != n {
			t.Errorf("%s observations = %d, want %d", stage, got, n)
		}
	}
	if got := stageDelta(before, after, "fix"); got != n {
		t.Errorf("marauder_fix_seconds observations = %d, want %d", got, n)
	}
	// Untracked fixes must not observe the region_update stage.
	if got := stageDelta(before, after, `stage="region_update"`); got != 0 {
		t.Errorf("region_update observed %d times on untracked fixes", got)
	}
}

func TestStageHistogramsTrackedPathUsesRegionUpdate(t *testing.T) {
	k, store, devs := gridWorld(40, 2)
	// Cache disabled so every Track step runs the tracked compute path.
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30, StageSampleEvery: 1, CacheSize: -1})
	if _, ok := e.Localizer().(core.TrackedLocalizer); !ok {
		t.Skip("default localizer is not tracked")
	}
	before := stageCounts()
	pts, err := e.Track(devs[0], 40, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("track produced no points")
	}
	after := stageCounts()
	if got := stageDelta(before, after, `stage="region_update"`); got == 0 {
		t.Error("tracked fixes never observed region_update")
	}
}

func TestStageSamplingDefaultsAndDisable(t *testing.T) {
	k, store, devs := gridWorld(40, 1)

	// Default: every 16th fix is timed.
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	if e.stageEvery != 16 {
		t.Errorf("default stageEvery = %d, want 16", e.stageEvery)
	}
	before := stageCounts()
	for i := 0; i < 32; i++ {
		_, _ = e.Fix(devs[0], 50)
	}
	after := stageCounts()
	if got := stageDelta(before, after, "fix"); got != 2 {
		t.Errorf("32 fixes at 1-in-16 observed %d times, want 2", got)
	}

	// Negative disables stage timing entirely.
	e = testEngine(t, Config{Know: k, Store: store, WindowSec: 30, StageSampleEvery: -1})
	if e.stageEvery != 0 {
		t.Errorf("disabled stageEvery = %d, want 0", e.stageEvery)
	}
	before = stageCounts()
	for i := 0; i < 64; i++ {
		_, _ = e.Fix(devs[0], 50)
	}
	after = stageCounts()
	if got := stageDelta(before, after, "fix"); got != 0 {
		t.Errorf("disabled sampling still observed %d fixes", got)
	}
}

func TestSnapshotObservesStoreScanStage(t *testing.T) {
	k, store, _ := gridWorld(40, 6)
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	before := stageCounts()
	if got := e.Snapshot(50); len(got) == 0 {
		t.Fatal("snapshot located nothing")
	}
	after := stageCounts()
	if got := stageDelta(before, after, `stage="store_scan"`); got != 1 {
		t.Errorf("store_scan observed %d times for one snapshot, want 1", got)
	}
}

func TestIngestCapturesObservesIngestStage(t *testing.T) {
	e := testEngine(t, Config{WindowSec: 30})
	f := dot11.NewProbeResponse(mac(1, 1), mac(2, 2), "", 1, 1)
	before := stageCounts()
	n := e.IngestCaptures([]sniffer.Capture{{TimeSec: 1, Frame: f, FromAP: true}})
	if n != 1 {
		t.Fatalf("ingested %d", n)
	}
	after := stageCounts()
	if got := stageDelta(before, after, `stage="ingest"`); got != 1 {
		t.Errorf("ingest stage observed %d times for one batch, want 1", got)
	}
}

// failLoc always errors — the "localizer broke" case the fix-error
// counter must see, as opposed to empty windows it must not.
type failLoc struct{}

func (failLoc) Name() string { return "fail" }
func (failLoc) Locate(core.Knowledge, []dot11.MAC) (core.Estimate, error) {
	return core.Estimate{}, errors.New("boom")
}

func readFixErrors(t *testing.T) uint64 {
	t.Helper()
	for _, s := range telemetry.Default().Snapshot() {
		if s.Name == "marauder_engine_fix_errors_total" {
			return s.Counter
		}
	}
	t.Fatal("marauder_engine_fix_errors_total not registered")
	return 0
}

func TestFixErrorCounterExcludesEmptyWindows(t *testing.T) {
	k, store, devs := gridWorld(40, 1)

	// Empty window (ErrNoAPs) is not an error for the availability SLO.
	e := testEngine(t, Config{Know: k, Store: store, WindowSec: 30})
	before := readFixErrors(t)
	if _, err := e.Fix(devs[0], 5000); !errors.Is(err, core.ErrNoAPs) {
		t.Fatalf("want ErrNoAPs, got %v", err)
	}
	if got := readFixErrors(t) - before; got != 0 {
		t.Errorf("empty window counted as %d fix errors", got)
	}

	// A real localization failure is.
	e = testEngine(t, Config{Know: k, Store: store, WindowSec: 30, Localizer: failLoc{}, CacheSize: -1})
	before = readFixErrors(t)
	if _, err := e.Fix(devs[0], 50); err == nil {
		t.Fatal("failLoc fix succeeded")
	}
	if got := readFixErrors(t) - before; got != 1 {
		t.Errorf("failing fix counted as %d errors, want 1", got)
	}
}
