package rf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWavelength(t *testing.T) {
	// 2.4 GHz -> ~12.5 cm.
	l := Wavelength(2.4e9)
	if l < 0.124 || l > 0.126 {
		t.Errorf("wavelength = %v, want ~0.125", l)
	}
}

func TestDBConversionsRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 100)
		return math.Abs(LinearToDB(DBToLinear(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := DBToLinear(3.0103); math.Abs(got-2) > 1e-3 {
		t.Errorf("3 dB = %v, want 2x", got)
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Known value: 2.437 GHz at 100 m -> ~80.2 dB.
	got := FreeSpacePathLossDB(100, 2.437e9)
	if math.Abs(got-80.2) > 0.3 {
		t.Errorf("FSPL(100m, 2.437GHz) = %v, want ~80.2", got)
	}
	// 20 dB per decade.
	d1 := FreeSpacePathLossDB(10, 2.437e9)
	d2 := FreeSpacePathLossDB(100, 2.437e9)
	if math.Abs((d2-d1)-20) > 1e-9 {
		t.Errorf("per-decade slope = %v, want 20", d2-d1)
	}
	if got := FreeSpacePathLossDB(0, 2.437e9); got != 0 {
		t.Errorf("FSPL(0) = %v", got)
	}
}

func TestLogDistanceModel(t *testing.T) {
	ld := LogDistance{Exponent: 3, RefDistM: 1}
	fs := FreeSpace{}
	// At the reference distance the models agree.
	if math.Abs(ld.LossDB(1, 2.4e9)-fs.LossDB(1, 2.4e9)) > 1e-9 {
		t.Error("log-distance should equal free space at d0")
	}
	// 30 dB per decade with exponent 3.
	diff := ld.LossDB(1000, 2.4e9) - ld.LossDB(100, 2.4e9)
	if math.Abs(diff-30) > 1e-9 {
		t.Errorf("slope = %v, want 30", diff)
	}
	// Below the reference distance the loss is clamped.
	if ld.LossDB(0.1, 2.4e9) != ld.LossDB(1, 2.4e9) {
		t.Error("loss below d0 should clamp")
	}
	// Zero RefDistM defaults to 1 m.
	ld0 := LogDistance{Exponent: 2}
	if math.Abs(ld0.LossDB(50, 2.4e9)-fs.LossDB(50, 2.4e9)) > 1e-9 {
		t.Error("exponent-2 log-distance should equal free space")
	}
}

func TestFriisCascadeLNADominates(t *testing.T) {
	// The paper's claim: with a high-gain LNA first, the chain NF becomes
	// the LNA's. NF improvement over bare card = NF_nic - NF_lna (2.5 dB
	// for a 4 dB card).
	lna := ChainLNA()
	nf := lna.NoiseFigureDB()
	// Jumper (0.5 dB) ahead of the LNA adds its loss; NF ~ 2.0, well below
	// the card's 4 dB and close to the LNA's 1.5.
	if nf < 1.5 || nf > 2.5 {
		t.Errorf("LNA chain NF = %v, want ~1.5-2.5 dB", nf)
	}
	bare := ChainSRC()
	if math.Abs(bare.NoiseFigureDB()-4) > 1e-9 {
		t.Errorf("bare SRC NF = %v, want 4", bare.NoiseFigureDB())
	}
	if nf >= bare.NoiseFigureDB() {
		t.Error("LNA must improve the chain noise figure")
	}
}

func TestEmptyChainNoiseFigure(t *testing.T) {
	c := Chain{}
	if got := c.NoiseFigureDB(); got != 0 {
		// Card with NF 0: cascade should be 0 dB.
		t.Errorf("empty chain NF = %v", got)
	}
}

func TestChainGainAndSensitivity(t *testing.T) {
	lna := ChainLNA()
	// 45 (LNA) - 6.6 (splitter) - 0.5 (jumper) = 37.9 dB net gain, i.e. the
	// paper's "still achieves ~39 dB of amplification" per splitter thread.
	if g := lna.GainDB(); math.Abs(g-37.9) > 1e-9 {
		t.Errorf("chain gain = %v, want 37.9", g)
	}
	// Sensitivity = -174 + NF + SNRmin + 10logB ~ -93 dBm for the SRC card.
	s := ChainSRC().SensitivityDBm()
	if s < -95 || s > -89 {
		t.Errorf("SRC sensitivity = %v dBm, want ~-92.6", s)
	}
}

func TestCoverageRadiusTheorem1(t *testing.T) {
	// Theorem 1 closed form must agree with the bisection solver under
	// free space.
	for _, chain := range Fig12Chains() {
		closed := CoverageRadius(TypicalMobile, chain)
		bisect := CoverageRadiusModel(TypicalMobile, chain, FreeSpace{}, 1e7)
		if math.Abs(closed-bisect) > 0.01*closed {
			t.Errorf("%s: closed %v vs bisect %v", chain.Name, closed, bisect)
		}
	}
}

func TestCoverageOrderingFig12(t *testing.T) {
	// The ordering the paper measures: DLink < SRC < HG2415U <= LNA.
	model := LogDistance{Exponent: 2.8, RefDistM: 1}
	radii := make(map[string]float64)
	for _, chain := range Fig12Chains() {
		radii[chain.Name] = CoverageRadiusModel(TypicalMobile, chain, model, 1e6)
	}
	if !(radii["DLink"] < radii["SRC"] && radii["SRC"] < radii["HG2415U"] &&
		radii["HG2415U"] <= radii["LNA"]) {
		t.Errorf("coverage ordering wrong: %v", radii)
	}
	// LNA chain lands near the paper's ~1000 m under urban propagation.
	if radii["LNA"] < 500 || radii["LNA"] > 2500 {
		t.Errorf("LNA radius = %v m, want ~1000 m", radii["LNA"])
	}
}

func TestCoverageRadiusModelEdges(t *testing.T) {
	// A hopeless chain: huge SNR requirement.
	bad := Chain{AntennaGainDBi: 0, Card: NIC{NoiseFigureDB: 10, SNRMinDB: 200, BandwidthHz: 22e6}}
	if got := CoverageRadiusModel(TypicalMobile, bad, FreeSpace{}, 1e6); got != 0 {
		t.Errorf("hopeless chain radius = %v, want 0", got)
	}
	// Cap: chain decodable everywhere within the cap.
	if got := CoverageRadiusModel(TypicalMobile, ChainLNA(), FreeSpace{}, 10); got != 10 {
		t.Errorf("capped radius = %v, want 10", got)
	}
}

func TestDecodableMonotone(t *testing.T) {
	chain := ChainSRC()
	model := LogDistance{Exponent: 3, RefDistM: 1}
	r := CoverageRadiusModel(TypicalMobile, chain, model, 1e6)
	if !Decodable(TypicalMobile, chain, r*0.9, model) {
		t.Error("inside radius must be decodable")
	}
	if Decodable(TypicalMobile, chain, r*1.1, model) {
		t.Error("outside radius must not be decodable")
	}
}

func TestSNRDecreasesWithDistanceProperty(t *testing.T) {
	chain := ChainLNA()
	model := FreeSpace{}
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		d1 := float64(seed%100000)/100 + 1
		d2 := d1 * 2
		return SNRDB(TypicalAP, chain, d1, model) > SNRDB(TypicalAP, chain, d2, model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitterLoss(t *testing.T) {
	l, err := SplitterLossDB(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-6.0206) > 1e-3 {
		t.Errorf("4-way loss = %v, want ~6.02", l)
	}
	if _, err := SplitterLossDB(0); err == nil {
		t.Error("want error for 0-way splitter")
	}
}

func TestEIRP(t *testing.T) {
	if got := TypicalAP.EIRPDBm(); got != 19 {
		t.Errorf("EIRP = %v, want 19", got)
	}
}

func BenchmarkCoverageRadiusModel(b *testing.B) {
	chain := ChainLNA()
	model := LogDistance{Exponent: 2.8, RefDistM: 1}
	for i := 0; i < b.N; i++ {
		CoverageRadiusModel(TypicalMobile, chain, model, 1e6)
	}
}
