// Package rf models the radio-frequency physics behind the digital
// Marauder's map receiver chain: dB arithmetic, free-space and log-distance
// propagation, cascaded noise figures (Friis), receiver sensitivity and the
// link-budget coverage bound of the paper's Theorem 1.
//
// Conventions: power in dBm, gains and losses in dB, antenna gains in dBi,
// frequencies in Hz, distances in metres.
package rf

import (
	"errors"
	"fmt"
	"math"
)

// SpeedOfLight is c in metres per second.
const SpeedOfLight = 299792458.0

// ThermalNoiseDBmPerHz is the thermal noise power density at the receiver
// input impedance: −174 dBm/Hz at room temperature (the paper's constant).
const ThermalNoiseDBmPerHz = -174.0

// Wavelength returns the free-space wavelength λ = c/f in metres.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// DBToLinear converts a dB ratio to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear ratio to dB.
func LinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// FreeSpacePathLossDB returns the Friis free-space propagation loss
// L = 20·log10(4πd/λ) in dB for distance d metres at the given frequency.
func FreeSpacePathLossDB(distM, freqHz float64) float64 {
	if distM <= 0 {
		return 0
	}
	return 20 * math.Log10(4*math.Pi*distM/Wavelength(freqHz))
}

// PathLoss models propagation loss as a function of distance and frequency.
type PathLoss interface {
	// LossDB returns the propagation loss in dB at distance distM metres.
	LossDB(distM, freqHz float64) float64
}

// FreeSpace is the spherical worst-case propagation model the paper's
// analysis assumes (Theorem 1): loss grows 20 dB per decade.
type FreeSpace struct{}

var _ PathLoss = FreeSpace{}

// LossDB implements PathLoss.
func (FreeSpace) LossDB(distM, freqHz float64) float64 {
	return FreeSpacePathLossDB(distM, freqHz)
}

// LogDistance is the log-distance path-loss model commonly used for urban
// 802.11 propagation: free-space loss up to RefDistM, then Exponent·10 dB
// per decade. Exponent 2 reproduces free space; 2.7–4 models obstructed
// urban areas (the "small hills" effect of the paper's Fig 12).
type LogDistance struct {
	// Exponent is the path-loss exponent n.
	Exponent float64
	// RefDistM is the reference distance d0 in metres (typically 1 m).
	RefDistM float64
}

var _ PathLoss = LogDistance{}

// LossDB implements PathLoss.
func (l LogDistance) LossDB(distM, freqHz float64) float64 {
	ref := l.RefDistM
	if ref <= 0 {
		ref = 1
	}
	if distM < ref {
		distM = ref
	}
	return FreeSpacePathLossDB(ref, freqHz) +
		10*l.Exponent*math.Log10(distM/ref)
}

// Component is one block of a receiver chain: an amplifier, connector,
// splitter or cable, characterized by its gain (negative for losses) and
// noise figure.
type Component struct {
	Name          string  `json:"name"`
	GainDB        float64 `json:"gainDb"`
	NoiseFigureDB float64 `json:"noiseFigureDb"`
}

// NIC is the terminating wireless network interface card of a chain.
type NIC struct {
	Name string `json:"name"`
	// NoiseFigureDB is the card's noise figure (typically 4–6 dB).
	NoiseFigureDB float64 `json:"noiseFigureDb"`
	// SNRMinDB is the minimum SNR for acceptable demodulation at the
	// monitored rate.
	SNRMinDB float64 `json:"snrMinDb"`
	// BandwidthHz is the baseband filter bandwidth B (22 MHz for 802.11b/g).
	BandwidthHz float64 `json:"bandwidthHz"`
}

// Chain is a receive chain: an antenna followed by passive/active blocks
// terminated by a NIC. This mirrors the paper's chain: high-gain antenna →
// LNA → splitter → wireless cards.
type Chain struct {
	Name string `json:"name"`
	// AntennaGainDBi is the receive antenna gain G_rx.
	AntennaGainDBi float64 `json:"antennaGainDbi"`
	// Blocks are the cascaded components between antenna and NIC, in order.
	Blocks []Component `json:"blocks"`
	// Card is the terminating NIC.
	Card NIC `json:"card"`
}

// ErrNoGain is returned when a cascade computation meets a block with
// non-positive linear gain.
var ErrNoGain = errors.New("rf: component with non-positive linear gain")

// NoiseFigureDB returns the noise figure of the cascaded chain (blocks then
// NIC) using the Friis formula
//
//	F = F₁ + (F₂−1)/G₁ + (F₃−1)/(G₁G₂) + …
//
// With a high-gain LNA first, the chain's noise figure collapses to the
// LNA's — the effect the paper exploits.
func (c Chain) NoiseFigureDB() float64 {
	f := 0.0
	gProd := 1.0
	first := true
	add := func(nfDB, gainDB float64) {
		fi := DBToLinear(nfDB)
		if first {
			f = fi
			first = false
		} else {
			f += (fi - 1) / gProd
		}
		gProd *= DBToLinear(gainDB)
	}
	for _, b := range c.Blocks {
		add(b.NoiseFigureDB, b.GainDB)
	}
	add(c.Card.NoiseFigureDB, 0)
	if first {
		return 0
	}
	return LinearToDB(f)
}

// GainDB returns the total block gain of the chain (excluding antenna).
func (c Chain) GainDB() float64 {
	g := 0.0
	for _, b := range c.Blocks {
		g += b.GainDB
	}
	return g
}

// SensitivityDBm returns the minimum input signal power the chain can
// demodulate: P_min = −174 + NF + SNR_min + 10·log10(B)  (paper Eq. 11/16).
func (c Chain) SensitivityDBm() float64 {
	return ThermalNoiseDBmPerHz + c.NoiseFigureDB() + c.Card.SNRMinDB +
		10*math.Log10(c.Card.BandwidthHz)
}

// Transmitter describes the radio parameters of a signal source (an AP or a
// probing mobile device).
type Transmitter struct {
	// PowerDBm is the transmit power P_tx.
	PowerDBm float64 `json:"powerDbm"`
	// AntennaGainDBi is the transmit antenna gain G_tx.
	AntennaGainDBi float64 `json:"antennaGainDbi"`
	// FreqHz is the carrier frequency.
	FreqHz float64 `json:"freqHz"`
}

// EIRPDBm returns the effective isotropic radiated power.
func (t Transmitter) EIRPDBm() float64 { return t.PowerDBm + t.AntennaGainDBi }

// ReceivedPowerDBm returns the signal power at the chain's NIC input for a
// transmitter at distance distM under the given propagation model:
// P_rx = P_tx + G_tx + G_rx − L(d) + G_blocks.
func ReceivedPowerDBm(tx Transmitter, rx Chain, distM float64, model PathLoss) float64 {
	return tx.EIRPDBm() + rx.AntennaGainDBi - model.LossDB(distM, tx.FreqHz) + rx.GainDB()
}

// SNRDB returns the signal-to-noise ratio at the demodulator for the given
// distance and propagation model. Because amplification boosts signal and
// noise alike, SNR uses the antenna-referred signal power against the
// chain's noise floor (−174 + NF + 10·log B).
func SNRDB(tx Transmitter, rx Chain, distM float64, model PathLoss) float64 {
	sig := tx.EIRPDBm() + rx.AntennaGainDBi - model.LossDB(distM, tx.FreqHz)
	noise := ThermalNoiseDBmPerHz + rx.NoiseFigureDB() + 10*math.Log10(rx.Card.BandwidthHz)
	return sig - noise
}

// Decodable reports whether a frame transmitted from distM away can be
// demodulated by the chain under the model — the receive condition
// P_rx > P_rx,min of Theorem 1's proof.
func Decodable(tx Transmitter, rx Chain, distM float64, model PathLoss) bool {
	return SNRDB(tx, rx, distM, model) > rx.Card.SNRMinDB
}

// CoverageRadius solves the paper's Theorem 1 for the maximum free-space
// distance D at which the chain can still demodulate the transmitter:
//
//	20·log10(D) < G_rx − NF − SNR_min + C
//	C = P_tx + G_tx − 20·log10(4π/λ) − 10·log10(B) + 174
//
// where NF is the chain's cascaded noise figure (≈ the LNA's when a
// high-gain LNA leads the chain).
func CoverageRadius(tx Transmitter, rx Chain) float64 {
	c := tx.PowerDBm + tx.AntennaGainDBi -
		20*math.Log10(4*math.Pi/Wavelength(tx.FreqHz)) -
		10*math.Log10(rx.Card.BandwidthHz) - ThermalNoiseDBmPerHz
	rhs := rx.AntennaGainDBi - rx.NoiseFigureDB() - rx.Card.SNRMinDB + c
	return math.Pow(10, rhs/20)
}

// CoverageRadiusModel generalizes CoverageRadius to any monotone path-loss
// model by bisection. It returns 0 when even point-blank range is not
// decodable and caps the search at maxDistM.
func CoverageRadiusModel(tx Transmitter, rx Chain, model PathLoss, maxDistM float64) float64 {
	if !Decodable(tx, rx, 1, model) {
		return 0
	}
	lo, hi := 1.0, maxDistM
	if Decodable(tx, rx, hi, model) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if Decodable(tx, rx, mid, model) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SplitterLossDB returns the ideal power-division loss of an n-way signal
// splitter, 10·log10(n) dB.
func SplitterLossDB(ways int) (float64, error) {
	if ways < 1 {
		return 0, fmt.Errorf("rf: invalid splitter ways %d", ways)
	}
	return 10 * math.Log10(float64(ways)), nil
}
