package rf

// This file is the component catalog: the actual parts the paper's
// experiments used (Section IV-A), with data-sheet-level parameters, plus
// helpers to assemble the four receiver chains of Fig 12.

// Catalog parts.
var (
	// HyperLinkHG2415U is the HyperLink 2.4 GHz 15 dBi omnidirectional
	// antenna on the roof of the CS building.
	HyperLinkHG2415U = AntennaSpec{Name: "HyperLink HG2415U", GainDBi: 15}

	// TriBandClip4dBi is the tri-band laptop clip-mount antenna used with
	// the SRC card in the feasibility experiment.
	TriBandClip4dBi = AntennaSpec{Name: "Tri-band clip mount", GainDBi: 4}

	// DLinkInternal is the D-Link DWL-G650 PCMCIA card's built-in antenna.
	DLinkInternal = AntennaSpec{Name: "D-Link DWL-G650 internal", GainDBi: 2}

	// RFLambdaLNA is the RF-Lambda narrow-band low noise amplifier:
	// 45 dB gain, 1.5 dB noise figure.
	RFLambdaLNA = Component{Name: "RF-Lambda LNA", GainDB: 45, NoiseFigureDB: 1.5}

	// HyperLink4WaySplitter divides the amplified signal to four cards;
	// ideal division loss 10·log10(4) ≈ 6 dB plus 0.6 dB insertion loss.
	HyperLink4WaySplitter = Component{Name: "HyperLink 4-way splitter", GainDB: -6.6, NoiseFigureDB: 6.6}

	// CoaxJumper is a short low-loss coaxial jumper with connectors.
	CoaxJumper = Component{Name: "coax jumper", GainDB: -0.5, NoiseFigureDB: 0.5}

	// UbiquitiSRC is the Ubiquiti Super Range Cardbus SRC 300 mW
	// 802.11a/b/g card: high-sensitivity receiver (NF ≈ 4 dB).
	UbiquitiSRC = NIC{Name: "Ubiquiti SRC", NoiseFigureDB: 4, SNRMinDB: 4, BandwidthHz: 22e6}

	// DLinkDWLG650 is a commodity D-Link 802.11g cardbus adapter
	// (NF ≈ 6 dB).
	DLinkDWLG650 = NIC{Name: "D-Link DWL-G650", NoiseFigureDB: 6, SNRMinDB: 4, BandwidthHz: 22e6}
)

// AntennaSpec is a catalog antenna.
type AntennaSpec struct {
	Name    string  `json:"name"`
	GainDBi float64 `json:"gainDbi"`
}

// Typical transmitters in the monitored environment.
var (
	// TypicalAP is a consumer 802.11b/g access point: 17 dBm with a 2 dBi
	// omni antenna.
	TypicalAP = Transmitter{PowerDBm: 17, AntennaGainDBi: 2, FreqHz: 2.437e9}

	// TypicalMobile is a laptop/phone client radio: 15 dBm, 0 dBi.
	TypicalMobile = Transmitter{PowerDBm: 15, AntennaGainDBi: 0, FreqHz: 2.437e9}
)

// The four receiver chains compared in the paper's Fig 12.

// ChainDLink is the bare D-Link DWL-G650 card ("DLink" in Fig 12).
func ChainDLink() Chain {
	return Chain{
		Name:           "DLink",
		AntennaGainDBi: DLinkInternal.GainDBi,
		Card:           DLinkDWLG650,
	}
}

// ChainSRC is the Ubiquiti SRC card with the 4 dBi clip antenna ("SRC").
func ChainSRC() Chain {
	return Chain{
		Name:           "SRC",
		AntennaGainDBi: TriBandClip4dBi.GainDBi,
		Card:           UbiquitiSRC,
	}
}

// ChainHighGain is the 15 dBi HyperLink antenna feeding an SRC card
// directly, without LNA ("HG2415U").
func ChainHighGain() Chain {
	return Chain{
		Name:           "HG2415U",
		AntennaGainDBi: HyperLinkHG2415U.GainDBi,
		Blocks:         []Component{CoaxJumper},
		Card:           UbiquitiSRC,
	}
}

// ChainLNA is the paper's full receiver chain ("LNA"): 15 dBi antenna →
// RF-Lambda LNA → 4-way splitter → SRC card. The LNA's 45 dB gain makes the
// chain noise figure ≈ the LNA's 1.5 dB, and each splitter output still
// sees ≈ 45 − 10·log10(4) ≈ 39 dB of amplification.
func ChainLNA() Chain {
	return Chain{
		Name:           "LNA",
		AntennaGainDBi: HyperLinkHG2415U.GainDBi,
		Blocks:         []Component{CoaxJumper, RFLambdaLNA, HyperLink4WaySplitter},
		Card:           UbiquitiSRC,
	}
}

// Fig12Chains returns the four chains of the paper's coverage experiment in
// presentation order.
func Fig12Chains() []Chain {
	return []Chain{ChainDLink(), ChainSRC(), ChainHighGain(), ChainLNA()}
}
