package stats

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.1381) > 1e-3 {
		t.Errorf("std = %v", s.Std)
	}
	if math.Abs(s.Median-4.5) > 1e-9 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("single sample summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5}}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Quantile must not mutate its input.
	xs2 := []float64{3, 1, 2}
	Quantile(xs2, 0.5)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		n := int(seed%50) + 2
		if n < 2 {
			n = 2
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("want error for 0 bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("want error for empty range")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42})
	if h.Underflow != 1 {
		t.Errorf("underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("bin 0 centre = %v", got)
	}
	fr := h.Fractions()
	if math.Abs(fr[0]-0.25) > 1e-9 {
		t.Errorf("fraction = %v", fr[0])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
}

func TestHistogramFractionsEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Error("empty histogram fractions must be 0")
		}
	}
}

func TestGroupByInt(t *testing.T) {
	if _, _, err := GroupByInt([]int{1}, nil); err == nil {
		t.Error("want length mismatch error")
	}
	keys, groups, err := GroupByInt([]int{3, 1, 3, 2}, []float64{30, 10, 31, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
	if len(groups[3]) != 2 {
		t.Errorf("group 3 = %v", groups[3])
	}
}

func TestMeanByMinKey(t *testing.T) {
	// Keys 1..3; threshold k aggregates values with key >= k.
	keys := []int{1, 2, 3}
	values := []float64{10, 20, 30}
	th, means, err := MeanByMinKey(keys, values)
	if err != nil {
		t.Fatal(err)
	}
	wantMeans := []float64{20, 25, 30}
	for i := range th {
		if math.Abs(means[i]-wantMeans[i]) > 1e-9 {
			t.Errorf("threshold %d: mean = %v, want %v", th[i], means[i], wantMeans[i])
		}
	}
}
