// Package stats provides the small statistical toolkit the evaluation
// harness uses: summaries, histograms, CDF quantiles, and grouping of
// localization errors by the number of communicable APs (the x-axis of the
// paper's Figs 14-16).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Summary holds the basic statistics of a sample set.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation on
// a sorted copy of xs. It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width binned histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Overflow counts samples ≥ Max; Underflow counts samples < Min.
	Overflow, Underflow int
	total               int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max).
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: invalid bin count %d", bins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records all samples.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fractions returns each bin's fraction of the total (0s when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// String renders an ASCII bar chart, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&b, "%8.2f |%-40s %d\n", h.BinCenter(i), bar, c)
	}
	return b.String()
}

// GroupByInt buckets values by an integer key (e.g. localization error by
// number of communicable APs) and returns the sorted keys with each
// bucket's values.
func GroupByInt(keys []int, values []float64) (sortedKeys []int, groups map[int][]float64, err error) {
	if len(keys) != len(values) {
		return nil, nil, fmt.Errorf("stats: keys (%d) and values (%d) length mismatch",
			len(keys), len(values))
	}
	groups = make(map[int][]float64)
	for i, k := range keys {
		groups[k] = append(groups[k], values[i])
	}
	sortedKeys = make([]int, 0, len(groups))
	for k := range groups {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Ints(sortedKeys)
	return sortedKeys, groups, nil
}

// MeanByMinKey computes, for each threshold key k in sortedKeys, the mean of
// all values whose key is ≥ k — the paper's "minimum number of communicable
// APs" x-axis (Figs 14-16): a point at k aggregates every device that saw at
// least k APs.
func MeanByMinKey(keys []int, values []float64) (thresholds []int, means []float64, err error) {
	sortedKeys, groups, err := GroupByInt(keys, values)
	if err != nil {
		return nil, nil, err
	}
	for _, k := range sortedKeys {
		var agg []float64
		for _, k2 := range sortedKeys {
			if k2 >= k {
				agg = append(agg, groups[k2]...)
			}
		}
		thresholds = append(thresholds, k)
		means = append(means, Mean(agg))
	}
	return thresholds, means, nil
}
