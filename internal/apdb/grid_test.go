package apdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomDB(n int, seed int64) (*DB, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	db := New()
	for i := 0; i < n; i++ {
		db.Add(Entry{
			BSSID: mac(byte(i)),
			Pos:   geom.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000),
		})
	}
	return db, rng
}

func TestGridIndexMatchesLinearScan(t *testing.T) {
	db, rng := randomDB(200, 1)
	idx := NewGridIndex(db, 150)
	if idx.Len() != 200 {
		t.Fatalf("indexed %d", idx.Len())
	}
	// The reference side is the snapshot's exported linear scan, so this
	// compares the grid against ground truth rather than against itself.
	sn := db.Snapshot()
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(rng.Float64()*2200-1100, rng.Float64()*2200-1100)
		dist := rng.Float64() * 500
		want := sn.ScanWithin(p, dist)
		got := idx.Within(p, dist)
		if len(got) != len(want) {
			t.Fatalf("trial %d: grid %d vs linear %d entries", trial, len(got), len(want))
		}
		wantSet := make(map[string]bool, len(want))
		for _, e := range want {
			wantSet[e.BSSID.String()] = true
		}
		for _, e := range got {
			if !wantSet[e.BSSID.String()] {
				t.Fatalf("trial %d: grid returned %v not in linear result", trial, e.BSSID)
			}
		}
	}
}

func TestGridIndexWithinEdgeCases(t *testing.T) {
	db, _ := randomDB(10, 2)
	idx := NewGridIndex(db, 0) // invalid cell size falls back to default
	if got := idx.Within(geom.Pt(0, 0), -1); got != nil {
		t.Error("negative radius should return nothing")
	}
	if got := idx.Within(geom.Pt(1e7, 1e7), 10); len(got) != 0 {
		t.Error("far query should be empty")
	}
}

func TestGridIndexNearest(t *testing.T) {
	empty := NewGridIndex(New(), 100)
	if _, ok := empty.Nearest(geom.Pt(0, 0)); ok {
		t.Error("empty index should report !ok")
	}
	db, rng := randomDB(150, 3)
	idx := NewGridIndex(db, 120)
	f := func(seed int64) bool {
		p := geom.Pt(rng.Float64()*2400-1200, rng.Float64()*2400-1200)
		got, ok := idx.Nearest(p)
		if !ok {
			return false
		}
		// Compare against linear scan.
		best := math.Inf(1)
		var want Entry
		for _, e := range db.All() {
			if d := e.Pos.Dist(p); d < best {
				best = d
				want = e
			}
		}
		return got.BSSID == want.BSSID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridIndexGet(t *testing.T) {
	db, _ := randomDB(20, 4)
	idx := NewGridIndex(db, 100)
	want, _ := db.Get(mac(7))
	got, ok := idx.Get(mac(7))
	if !ok || got != want {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := idx.Get(mac(200)); ok {
		t.Error("missing entry found")
	}
}

// TestGridIndexSeesLaterAdds pins the staleness fix: the index used to be
// a one-shot snapshot that silently ignored entries added after
// construction; it is now a live view, so Within, Nearest and Get must
// all observe a post-construction Add.
func TestGridIndexSeesLaterAdds(t *testing.T) {
	db, _ := randomDB(50, 6)
	idx := NewGridIndex(db, 150)
	if idx.Len() != 50 {
		t.Fatalf("indexed %d", idx.Len())
	}
	// Warm every query path so any one-shot caching would be locked in.
	idx.Within(geom.Pt(0, 0), 100)
	idx.Nearest(geom.Pt(5000, 5000))

	late := Entry{BSSID: mac(200), Pos: geom.Pt(5000, 5000), MaxRange: 80}
	db.Add(late)

	if idx.Len() != 51 {
		t.Fatalf("Len after Add = %d, want 51", idx.Len())
	}
	got, ok := idx.Get(late.BSSID)
	if !ok || got != late {
		t.Fatalf("Get after Add = %+v, %v", got, ok)
	}
	within := idx.Within(geom.Pt(5000, 5000), 10)
	if len(within) != 1 || within[0].BSSID != late.BSSID {
		t.Fatalf("Within after Add = %+v, want the late AP", within)
	}
	near, ok := idx.Nearest(geom.Pt(4990, 5010))
	if !ok || near.BSSID != late.BSSID {
		t.Fatalf("Nearest after Add = %+v, want the late AP", near)
	}
}
