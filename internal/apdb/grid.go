package apdb

import (
	"math"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// GridIndex is a uniform-grid spatial index over AP entries, answering
// radius queries in time proportional to the number of touched cells
// rather than the database size. Build it once from a DB snapshot; the
// index is immutable (rebuild after bulk changes).
type GridIndex struct {
	cellSize float64
	cells    map[[2]int][]Entry
	size     int
}

// NewGridIndex builds an index over the database's current entries with
// the given cell size in metres (a good default is the typical query
// radius).
func NewGridIndex(db *DB, cellSizeM float64) *GridIndex {
	if cellSizeM <= 0 {
		cellSizeM = 100
	}
	g := &GridIndex{
		cellSize: cellSizeM,
		cells:    make(map[[2]int][]Entry),
	}
	for _, e := range db.All() {
		key := g.cellOf(e.Pos)
		g.cells[key] = append(g.cells[key], e)
		g.size++
	}
	return g
}

// Len returns the number of indexed entries.
func (g *GridIndex) Len() int { return g.size }

func (g *GridIndex) cellOf(p geom.Point) [2]int {
	return [2]int{
		int(math.Floor(p.X / g.cellSize)),
		int(math.Floor(p.Y / g.cellSize)),
	}
}

// Within returns the indexed entries within dist metres of p.
func (g *GridIndex) Within(p geom.Point, dist float64) []Entry {
	if dist < 0 {
		return nil
	}
	min := g.cellOf(geom.Point{X: p.X - dist, Y: p.Y - dist})
	max := g.cellOf(geom.Point{X: p.X + dist, Y: p.Y + dist})
	var out []Entry
	for cx := min[0]; cx <= max[0]; cx++ {
		for cy := min[1]; cy <= max[1]; cy++ {
			for _, e := range g.cells[[2]int{cx, cy}] {
				if e.Pos.Dist(p) <= dist {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// Nearest returns the indexed entry closest to p, searching outward ring
// by ring. ok is false for an empty index.
func (g *GridIndex) Nearest(p geom.Point) (Entry, bool) {
	if g.size == 0 {
		return Entry{}, false
	}
	center := g.cellOf(p)
	best := Entry{}
	bestDist := math.Inf(1)
	found := false
	for ring := 0; ; ring++ {
		// Once a candidate is found, one extra ring guarantees correctness
		// (a nearer point can only hide in the immediately adjacent ring).
		if found && float64(ring-1)*g.cellSize > bestDist {
			return best, true
		}
		any := false
		for cx := center[0] - ring; cx <= center[0]+ring; cx++ {
			for cy := center[1] - ring; cy <= center[1]+ring; cy++ {
				onEdge := cx == center[0]-ring || cx == center[0]+ring ||
					cy == center[1]-ring || cy == center[1]+ring
				if !onEdge {
					continue
				}
				entries, ok := g.cells[[2]int{cx, cy}]
				if !ok {
					continue
				}
				any = true
				for _, e := range entries {
					if d := e.Pos.Dist(p); d < bestDist {
						best = e
						bestDist = d
						found = true
					}
				}
			}
		}
		_ = any
		if ring > 1<<20 {
			// Defensive bound; unreachable for a non-empty index.
			return best, found
		}
	}
}

// Get returns the indexed entry for a BSSID, scanning the index (use the
// backing DB for frequent identity lookups).
func (g *GridIndex) Get(bssid dot11.MAC) (Entry, bool) {
	for _, entries := range g.cells {
		for _, e := range entries {
			if e.BSSID == bssid {
				return e, true
			}
		}
	}
	return Entry{}, false
}
