package apdb

import (
	"repro/internal/dot11"
	"repro/internal/geom"
)

// GridIndex is the historical spatial-index handle, kept for
// compatibility. It used to be a one-shot snapshot built from DB.All()
// that silently ignored later Adds; it is now a live view over the
// store's own maintained index, so mutations after construction are
// observed by every query. The cell size is no longer caller-chosen — the
// snapshot derives it from the AP density — so the cellSizeM argument is
// accepted and ignored.
//
// Deprecated: query the Store (Within, Nearest, Get, CandidatesFor) or a
// pinned Store.Snapshot() directly.
type GridIndex struct {
	db *Store
}

// NewGridIndex returns a live index view over the store. cellSizeM is
// ignored (density-derived; see GridIndex).
func NewGridIndex(db *Store, cellSizeM float64) *GridIndex {
	_ = cellSizeM
	return &GridIndex{db: db}
}

// Len returns the number of indexed entries — the store's current count,
// including Adds after construction.
func (g *GridIndex) Len() int { return g.db.Len() }

// Within returns the entries within dist metres of p.
func (g *GridIndex) Within(p geom.Point, dist float64) []Entry {
	if dist < 0 {
		return nil
	}
	return g.db.Within(p, dist)
}

// Nearest returns the entry closest to p. ok is false for an empty store.
func (g *GridIndex) Nearest(p geom.Point) (Entry, bool) {
	return g.db.Nearest(p)
}

// Get returns the entry for a BSSID.
func (g *GridIndex) Get(bssid dot11.MAC) (Entry, bool) {
	return g.db.Get(bssid)
}
