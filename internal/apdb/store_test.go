package apdb

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
)

func mac64(i uint64) dot11.MAC {
	return dot11.MAC{byte(i >> 40), byte(i >> 32), byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
}

// randomEntries draws n entries with the adversarial shapes the spatial
// index must survive: duplicate BSSIDs (replace-in-place), zero/unknown
// ranges, and coincident positions.
func randomEntries(n int, rng *rand.Rand) []Entry {
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		id := uint64(rng.Intn(n)) // collisions on purpose
		e := Entry{
			BSSID: mac64(id),
			Pos:   geom.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000),
		}
		switch rng.Intn(4) {
		case 0: // unknown range
		case 1:
			e.MaxRange = rng.Float64() * 200
		case 2: // coincident with a prior entry
			if len(entries) > 0 {
				e.Pos = entries[rng.Intn(len(entries))].Pos
			}
		case 3:
			e.MaxRange = 120
		}
		entries = append(entries, e)
	}
	return entries
}

// TestSnapshotWithinMatchesScan is the property pin: on random AP sets —
// including duplicate BSSIDs, unknown ranges and coincident positions —
// the grid-indexed Within must return exactly the linear scan's result.
func TestSnapshotWithinMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sn := FromEntries(randomEntries(300, rng)).Snapshot()
		for trial := 0; trial < 30; trial++ {
			p := geom.Pt(rng.Float64()*2400-1200, rng.Float64()*2400-1200)
			dist := rng.Float64() * 400
			want := sn.ScanWithin(p, dist)
			got := sn.Within(p, dist)
			if len(got) != len(want) {
				t.Fatalf("seed %d trial %d: grid %d vs scan %d", seed, trial, len(got), len(want))
			}
			inScan := make(map[dot11.MAC]Entry, len(want))
			for _, e := range want {
				inScan[e.BSSID] = e
			}
			for _, e := range got {
				if inScan[e.BSSID] != e {
					t.Fatalf("seed %d trial %d: grid entry %+v not in scan result", seed, trial, e)
				}
			}
		}
	}
}

// TestSnapshotNonFinitePositions: NaN/Inf coordinates force the linear
// fallback; queries must still answer without panicking and agree with
// the scan.
func TestSnapshotNonFinitePositions(t *testing.T) {
	sn := FromEntries([]Entry{
		{BSSID: mac64(1), Pos: geom.Pt(0, 0)},
		{BSSID: mac64(2), Pos: geom.Pt(math.NaN(), 5)},
		{BSSID: mac64(3), Pos: geom.Pt(10, math.Inf(1))},
		{BSSID: mac64(4), Pos: geom.Pt(3, 4)},
	}).Snapshot()
	got := sn.Within(geom.Pt(0, 0), 6)
	want := sn.ScanWithin(geom.Pt(0, 0), 6)
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("Within = %+v, scan = %+v", got, want)
	}
	if near, ok := sn.Nearest(geom.Pt(2.9, 4.1)); !ok || near.BSSID != mac64(4) {
		t.Fatalf("Nearest = %+v, %v", near, ok)
	}
}

// TestSnapshotCopyOnWrite: a published snapshot is immutable — later Adds
// publish a successor with a fresh epoch and leave the old view intact.
func TestSnapshotCopyOnWrite(t *testing.T) {
	s := New()
	s.Add(Entry{BSSID: mac64(1), Pos: geom.Pt(1, 1), MaxRange: 10})
	first := s.Snapshot()
	if first.Len() != 1 {
		t.Fatalf("first snapshot len = %d", first.Len())
	}
	if again := s.Snapshot(); again != first {
		t.Error("clean store must return the cached snapshot pointer")
	}

	s.Add(Entry{BSSID: mac64(2), Pos: geom.Pt(2, 2), MaxRange: 20})
	s.Add(Entry{BSSID: mac64(1), Pos: geom.Pt(9, 9), MaxRange: 99}) // replace
	second := s.Snapshot()
	if second == first {
		t.Fatal("mutation must publish a new snapshot")
	}
	if second.Epoch() == first.Epoch() {
		t.Fatal("distinct snapshots must carry distinct epochs")
	}
	if second.Epoch() < first.Epoch() {
		t.Fatal("epochs must be monotonic")
	}
	// The old view still answers with the old data.
	if e, ok := first.Get(mac64(1)); !ok || e.Pos != geom.Pt(1, 1) || e.MaxRange != 10 {
		t.Fatalf("first snapshot mutated: %+v", e)
	}
	if _, ok := first.Get(mac64(2)); ok {
		t.Fatal("first snapshot sees a later Add")
	}
	// The new view has the replace applied, still one slot per BSSID.
	if second.Len() != 2 {
		t.Fatalf("second snapshot len = %d", second.Len())
	}
	if e, _ := second.Get(mac64(1)); e.MaxRange != 99 {
		t.Fatalf("replace not applied: %+v", e)
	}
}

func TestSnapshotEqual(t *testing.T) {
	a := FromEntries([]Entry{
		{BSSID: mac64(1), Pos: geom.Pt(1, 1), MaxRange: 10},
		{BSSID: mac64(2), Pos: geom.Pt(2, 2)},
	}).Snapshot()
	b := FromEntries([]Entry{ // same content, different insertion order
		{BSSID: mac64(2), Pos: geom.Pt(2, 2)},
		{BSSID: mac64(1), Pos: geom.Pt(1, 1), MaxRange: 10},
	}).Snapshot()
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("content-equal snapshots must compare equal")
	}
	c := FromEntries([]Entry{
		{BSSID: mac64(1), Pos: geom.Pt(1, 1), MaxRange: 11},
		{BSSID: mac64(2), Pos: geom.Pt(2, 2)},
	}).Snapshot()
	if a.Equal(c) {
		t.Error("differing MaxRange must compare unequal")
	}
	if !EmptySnapshot().Equal(New().Snapshot()) {
		t.Error("empty snapshots must compare equal")
	}
}

// TestCandidatesFor pins the Γ-order disc semantics M-Loc depends on:
// gamma order preserved, per-AP range, fallback for unknown ranges, and
// range-less APs skipped when the fallback is zero.
func TestCandidatesFor(t *testing.T) {
	s := FromEntries([]Entry{
		{BSSID: mac64(1), Pos: geom.Pt(1, 0), MaxRange: 50},
		{BSSID: mac64(2), Pos: geom.Pt(2, 0)}, // unknown range
		{BSSID: mac64(3), Pos: geom.Pt(3, 0), MaxRange: 70},
	})
	gamma := []dot11.MAC{mac64(3), mac64(9), mac64(1), mac64(2)}

	discs := s.CandidatesFor(gamma, 0)
	if len(discs) != 2 || discs[0].R != 70 || discs[1].R != 50 {
		t.Fatalf("no-fallback discs = %+v", discs)
	}
	discs = s.CandidatesFor(gamma, 30)
	if len(discs) != 3 || discs[0].R != 70 || discs[1].R != 50 || discs[2].R != 30 {
		t.Fatalf("fallback discs = %+v", discs)
	}
	if got := s.CandidatesFor(nil, 30); len(got) != 0 {
		t.Fatalf("empty gamma discs = %+v", got)
	}
}

// TestConcurrentAddAndQuery drives ingest and queries in parallel; run
// under -race this pins the reader/writer isolation of the COW design.
func TestConcurrentAddAndQuery(t *testing.T) {
	s := New()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				s.Add(Entry{
					BSSID:    mac64(uint64(w*1000 + i)),
					Pos:      geom.Pt(float64(i%100)*10, float64(w)*100),
					MaxRange: 100,
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				sn.Within(geom.Pt(100, 100), 200)
				sn.Nearest(geom.Pt(0, 0))
				s.CandidatesFor([]dot11.MAC{mac64(1), mac64(1001)}, 50)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if n := s.Len(); n != 4*500 {
		t.Fatalf("store len = %d, want %d", n, 4*500)
	}
}
