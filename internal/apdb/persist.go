package apdb

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// Binary snapshot format v1 — the "city loads without CSV re-ingest"
// path. Little-endian throughout, struct-of-arrays like the in-memory
// layout so a load is four bulk reads:
//
//	magic    "MRDRAPDB"                 8 bytes
//	version  u32                        (currently 1)
//	n        u64  entry count
//	ssidLen  u64  total SSID bytes
//	bssids   6·n bytes                  packed, BSSID-ascending
//	ssidLens u32·n                      per-entry SSID byte lengths
//	ssids    ssidLen bytes              concatenated SSID data
//	pos      16·n bytes                 x,y float64 pairs
//	rng      8·n bytes                  float64 max ranges
//	sha256   32 bytes                   over everything above
//
// The checksum trailer makes torn or bit-flipped files loudly rejectable,
// mirroring the PR 5 observation checkpoints.

var snapshotMagic = [8]byte{'M', 'R', 'D', 'R', 'A', 'P', 'D', 'B'}

// SnapshotVersion is the current on-disk snapshot format version.
const SnapshotVersion = 1

// maxSnapshotEntries caps the declared entry count a reader will accept,
// bounding allocation from a hostile header (2^32 APs ≈ 2× the global
// BSSID population).
const maxSnapshotEntries = 1 << 32

// WriteSnapshot serializes the snapshot in binary format v1.
func (s *Snapshot) WriteSnapshot(w io.Writer) error {
	h := sha256.New()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	n := s.Len()
	var ssidLen uint64
	for _, ss := range s.ssid {
		ssidLen += uint64(len(ss))
	}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU32(SnapshotVersion); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	if err := writeU64(uint64(n)); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	if err := writeU64(ssidLen); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	if _, err := bw.Write(s.bssid); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	for _, ss := range s.ssid {
		if err := writeU32(uint32(len(ss))); err != nil {
			return fmt.Errorf("apdb: write snapshot: %w", err)
		}
	}
	for _, ss := range s.ssid {
		if _, err := bw.WriteString(ss); err != nil {
			return fmt.Errorf("apdb: write snapshot: %w", err)
		}
	}
	for _, p := range s.pos {
		if err := writeU64(math.Float64bits(p.X)); err != nil {
			return fmt.Errorf("apdb: write snapshot: %w", err)
		}
		if err := writeU64(math.Float64bits(p.Y)); err != nil {
			return fmt.Errorf("apdb: write snapshot: %w", err)
		}
	}
	for _, r := range s.rng {
		if err := writeU64(math.Float64bits(r)); err != nil {
			return fmt.Errorf("apdb: write snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("apdb: write snapshot: %w", err)
	}
	if _, err := w.Write(h.Sum(nil)); err != nil {
		return fmt.Errorf("apdb: write snapshot checksum: %w", err)
	}
	return nil
}

// WriteSnapshot serializes the store's current snapshot.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.Snapshot().WriteSnapshot(w)
}

// ReadSnapshot parses a binary snapshot written by WriteSnapshot into a
// fresh store, verifying the magic, version, section lengths, and SHA-256
// trailer. Corrupt input is rejected with an error, never a panic. The
// hash covers exactly the consumed header and sections, computed as they
// are read.
func ReadSnapshot(r io.Reader) (*Store, error) {
	h := sha256.New()
	br := bufio.NewReader(r)
	var head [8 + 4 + 8 + 8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("apdb: snapshot header: %w", err)
	}
	h.Write(head[:])
	if !bytes.Equal(head[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("apdb: snapshot magic %q, want %q", head[:8], snapshotMagic[:])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != SnapshotVersion {
		return nil, fmt.Errorf("apdb: snapshot version %d, want %d", v, SnapshotVersion)
	}
	n64 := binary.LittleEndian.Uint64(head[12:20])
	ssidLen := binary.LittleEndian.Uint64(head[20:28])
	if n64 > maxSnapshotEntries {
		return nil, fmt.Errorf("apdb: snapshot declares %d entries (max %d)", n64, maxSnapshotEntries)
	}
	n := int(n64)
	// Sections are read through LimitReaders into growing buffers, so a
	// hostile header cannot force a giant up-front allocation: reading
	// stops at the actual data.
	readSection := func(size uint64) ([]byte, error) {
		var buf bytes.Buffer
		m, err := io.Copy(&buf, io.LimitReader(br, int64(size)))
		if err != nil {
			return nil, err
		}
		if uint64(m) != size {
			return nil, fmt.Errorf("truncated: %d of %d bytes", m, size)
		}
		h.Write(buf.Bytes())
		return buf.Bytes(), nil
	}
	bssid, err := readSection(6 * n64)
	if err != nil {
		return nil, fmt.Errorf("apdb: snapshot bssids: %w", err)
	}
	lensRaw, err := readSection(4 * n64)
	if err != nil {
		return nil, fmt.Errorf("apdb: snapshot ssid lengths: %w", err)
	}
	var sum uint64
	for i := 0; i < n; i++ {
		sum += uint64(binary.LittleEndian.Uint32(lensRaw[i*4:]))
	}
	if sum != ssidLen {
		return nil, fmt.Errorf("apdb: ssid lengths sum to %d, header says %d", sum, ssidLen)
	}
	ssidRaw, err := readSection(ssidLen)
	if err != nil {
		return nil, fmt.Errorf("apdb: snapshot ssids: %w", err)
	}
	posRaw, err := readSection(16 * n64)
	if err != nil {
		return nil, fmt.Errorf("apdb: snapshot positions: %w", err)
	}
	rngRaw, err := readSection(8 * n64)
	if err != nil {
		return nil, fmt.Errorf("apdb: snapshot ranges: %w", err)
	}
	want := h.Sum(nil)
	var got [sha256.Size]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("apdb: snapshot checksum: %w", err)
	}
	if !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("apdb: snapshot checksum mismatch")
	}

	s := New()
	s.bssid = bssid
	s.ssid = make([]string, n)
	off := 0
	for i := 0; i < n; i++ {
		l := int(binary.LittleEndian.Uint32(lensRaw[i*4:]))
		s.ssid[i] = string(ssidRaw[off : off+l])
		off += l
	}
	s.pos = make([]geom.Point, n)
	for i := 0; i < n; i++ {
		s.pos[i] = geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(posRaw[i*16:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(posRaw[i*16+8:])),
		}
	}
	s.rng = make([]float64, n)
	for i := 0; i < n; i++ {
		s.rng[i] = math.Float64frombits(binary.LittleEndian.Uint64(rngRaw[i*8:]))
	}
	for i := 0; i < n; i++ {
		var m dot11.MAC
		copy(m[:], s.bssid[i*6:])
		if prev, dup := s.slot[m]; dup {
			// Last occurrence wins, matching Add's replace semantics.
			s.ssid[prev], s.pos[prev], s.rng[prev] = s.ssid[i], s.pos[i], s.rng[i]
			continue
		}
		s.slot[m] = int32(i)
	}
	if len(s.slot) != n {
		// Duplicate BSSIDs in the file collapsed: rebuild compacted.
		entries := make([]Entry, 0, len(s.slot))
		seen := make(map[dot11.MAC]bool, len(s.slot))
		for i := 0; i < n; i++ {
			var m dot11.MAC
			copy(m[:], s.bssid[i*6:])
			if seen[m] {
				continue
			}
			seen[m] = true
			j := int(s.slot[m])
			entries = append(entries, Entry{BSSID: m, SSID: s.ssid[j], Pos: s.pos[j], MaxRange: s.rng[j]})
		}
		return FromEntries(entries), nil
	}
	s.dirty.Store(true)
	return s, nil
}

// SaveSnapshotFile writes the store's snapshot to path atomically
// (write-temp, fsync, rename, dir-fsync) so a crash never leaves a torn
// file behind.
func (s *Store) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".apdb-snap-*")
	if err != nil {
		return fmt.Errorf("apdb: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("apdb: save snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("apdb: save snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("apdb: save snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshotFile reads a store from a binary snapshot file.
func LoadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("apdb: load snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
