package apdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/sim"
)

func mac(i byte) dot11.MAC { return dot11.MAC{0, 0, 0, 0, 0, i} }

func TestAddGetLen(t *testing.T) {
	db := New()
	if db.Len() != 0 {
		t.Error("new db not empty")
	}
	e := Entry{BSSID: mac(1), SSID: "a", Pos: geom.Pt(1, 2), MaxRange: 100}
	db.Add(e)
	got, ok := db.Get(mac(1))
	if !ok || got != e {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := db.Get(mac(9)); ok {
		t.Error("missing entry found")
	}
	// Replace.
	e.SSID = "b"
	db.Add(e)
	if db.Len() != 1 {
		t.Error("Add should replace")
	}
}

func TestAllSorted(t *testing.T) {
	db := New()
	for _, b := range []byte{5, 1, 3} {
		db.Add(Entry{BSSID: mac(b)})
	}
	all := db.All()
	if len(all) != 3 || all[0].BSSID != mac(1) || all[2].BSSID != mac(5) {
		t.Errorf("All = %v", all)
	}
}

func TestWithin(t *testing.T) {
	db := New()
	db.Add(Entry{BSSID: mac(1), Pos: geom.Pt(0, 0)})
	db.Add(Entry{BSSID: mac(2), Pos: geom.Pt(100, 0)})
	got := db.Within(geom.Pt(0, 0), 50)
	if len(got) != 1 || got[0].BSSID != mac(1) {
		t.Errorf("Within = %v", got)
	}
}

func TestEntryDisc(t *testing.T) {
	e := Entry{Pos: geom.Pt(1, 1), MaxRange: 50}
	if d := e.Disc(200); d.R != 50 {
		t.Errorf("known range disc = %v", d)
	}
	e.MaxRange = 0
	if d := e.Disc(200); d.R != 200 {
		t.Errorf("fallback disc = %v", d)
	}
}

func TestFromWorld(t *testing.T) {
	w := sim.NewWorld(1)
	ap, err := sim.NewAP(0, "net", geom.Pt(5, 5), 6, 123)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAP(ap)
	withRange := FromWorld(w, true)
	e, _ := withRange.Get(ap.MAC)
	if e.MaxRange != 123 || e.Pos != ap.Pos || e.SSID != "net" {
		t.Errorf("entry = %+v", e)
	}
	noRange := FromWorld(w, false)
	e, _ = noRange.Get(ap.MAC)
	if e.MaxRange != 0 {
		t.Error("WiGLE-style snapshot must not include range")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	proj := geo.NewProjection(geo.LatLon{Lat: 42.6555, Lon: -71.3254})
	db := New()
	db.Add(Entry{BSSID: mac(1), SSID: "north", Pos: geom.Pt(100, 200), MaxRange: 80})
	db.Add(Entry{BSSID: mac(2), SSID: "with,comma", Pos: geom.Pt(-300, 50)})
	var buf bytes.Buffer
	if err := db.ExportCSV(&buf, proj); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(&buf, proj)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("imported %d entries", got.Len())
	}
	e, _ := got.Get(mac(1))
	if e.SSID != "north" || e.MaxRange != 80 {
		t.Errorf("entry = %+v", e)
	}
	// Projection round trip costs a couple of metres at most.
	if e.Pos.Dist(geom.Pt(100, 200)) > 3 {
		t.Errorf("position drifted: %v", e.Pos)
	}
	e2, _ := got.Get(mac(2))
	if e2.SSID != "with,comma" {
		t.Errorf("csv quoting broke SSID: %q", e2.SSID)
	}
}

func TestImportCSVErrors(t *testing.T) {
	proj := geo.NewProjection(geo.LatLon{Lat: 0, Lon: 0})
	cases := []string{
		"",
		"bssid,ssid,lat,lon,range_m\nzz:zz,x,0,0,0",
		"bssid,ssid,lat,lon,range_m\n00:00:00:00:00:01,x,abc,0,0",
		"bssid,ssid,lat,lon,range_m\n00:00:00:00:00:01,x,0,abc,0",
		"bssid,ssid,lat,lon,range_m\n00:00:00:00:00:01,x,0,0,abc",
	}
	for i, c := range cases {
		if _, err := ImportCSV(strings.NewReader(c), proj); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
