package apdb

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	entries := randomEntries(500, rng)
	entries = append(entries,
		Entry{BSSID: mac64(1 << 40), SSID: "eduroam", Pos: geom.Pt(-1e6, 1e6), MaxRange: 0.25},
		Entry{BSSID: mac64(2 << 40), SSID: "büro-ap £€", Pos: geom.Pt(0, 0)},
	)
	want := FromEntries(entries).Snapshot()

	var buf bytes.Buffer
	if err := want.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Snapshot().Equal(want) {
		t.Fatal("round trip changed the snapshot contents")
	}
	// The reloaded store answers spatial queries like the original.
	p := geom.Pt(100, -100)
	if a, b := want.Within(p, 300), got.Within(p, 300); len(a) != len(b) {
		t.Fatalf("Within after reload: %d vs %d entries", len(b), len(a))
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip has %d entries", got.Len())
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := FromEntries(randomEntries(100, rng))
	path := filepath.Join(t.TempDir(), "aps.snap")
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Snapshot().Equal(s.Snapshot()) {
		t.Fatal("file round trip changed the snapshot contents")
	}
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("loading a missing file must error")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := FromEntries(randomEntries(50, rng)).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), good...))
		if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] = 99; return b })
	corrupt("huge count", func(b []byte) []byte {
		for i := 12; i < 20; i++ {
			b[i] = 0xFF
		}
		return b
	})
	corrupt("flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-7] })
	corrupt("bad checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })
	corrupt("empty", func(b []byte) []byte { return nil })
}

// TestSnapshotReadDuplicateBSSIDs: a handcrafted file with repeated
// BSSIDs must load with Add's last-wins semantics, one slot per MAC.
func TestSnapshotReadDuplicateBSSIDs(t *testing.T) {
	s := New()
	s.Add(Entry{BSSID: mac64(5), Pos: geom.Pt(1, 1), MaxRange: 10})
	s.Add(Entry{BSSID: mac64(6), Pos: geom.Pt(2, 2), MaxRange: 20})
	sn := s.Snapshot()
	// Duplicate the first entry's BSSID by rewriting the second slot's
	// packed bytes, then re-checksum by rewriting through a fresh store:
	// easier to just build the duplicate-carrying snapshot by hand.
	dup := &Snapshot{
		bssid: append(append([]byte(nil), sn.bssid[:6]...), sn.bssid[:6]...),
		ssid:  []string{"a", "b"},
		pos:   []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)},
		rng:   []float64{10, 99},
	}
	var buf bytes.Buffer
	if err := dup.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("duplicate BSSIDs loaded as %d entries, want 1", got.Len())
	}
	e, ok := got.Get(mac64(5))
	if !ok || e.MaxRange != 99 || e.Pos != geom.Pt(9, 9) || e.SSID != "b" {
		t.Fatalf("last-wins not applied: %+v", e)
	}
}

// FuzzSnapshotCodec feeds arbitrary bytes to the reader (must never
// panic, and anything it accepts must re-encode losslessly) and checks
// the round trip for generated stores.
func FuzzSnapshotCodec(f *testing.F) {
	var seed bytes.Buffer
	rng := rand.New(rand.NewSource(3))
	if err := FromEntries(randomEntries(20, rng)).WriteSnapshot(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MRDRAPDB"))
	trunc := seed.Bytes()[:seed.Len()/2]
	f.Add(append([]byte(nil), trunc...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine — just must not panic
		}
		// Accepted input: re-encoding and re-reading must be stable.
		sn := s.Snapshot()
		var buf bytes.Buffer
		if err := sn.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		again, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-read of re-encoded snapshot failed: %v", err)
		}
		if !again.Snapshot().Equal(sn) {
			t.Fatal("re-encoded snapshot is not equal to the accepted one")
		}
		// Spatial queries over accepted data must not panic, even for
		// NaN/Inf coordinates from the fuzzer.
		sn.Within(geom.Pt(0, 0), 100)
		sn.Nearest(geom.Pt(math.Pi, -math.Pi))
	})
}
