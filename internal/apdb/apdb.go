// Package apdb is the AP knowledge plane of the digital Marauder's map —
// the role WiGLE plays in the paper: a database of known access points
// with SSID, BSSID, location, and (when measured) maximum transmission
// distance.
//
// The working representation is a struct-of-arrays Store: packed 6-byte
// BSSIDs, separate position and range slices, and a BSSID→slot index.
// Readers never block ingest: queries run against immutable copy-on-write
// Snapshots published on demand, each carrying a process-unique epoch and
// a lazily built uniform-grid spatial index whose cell size is derived
// from the AP density. core.Knowledge and the engine's Γ-cache are views
// over these snapshots; snapshot epochs are the knowledge generations.
//
// The store round-trips through a WiGLE-like CSV schema and through a
// versioned, SHA-256-checksummed binary snapshot format (persist.go) so a
// city-scale database loads without CSV re-ingest.
package apdb

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/dot11"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Entry is one known access point — the element view over the store's
// struct-of-arrays layout. core.APInfo is an alias of this type: the
// repo-wide single AP representation.
type Entry struct {
	BSSID dot11.MAC `json:"bssid"`
	SSID  string    `json:"ssid,omitempty"`
	// Pos is the AP location in the attack's local plane (metres).
	Pos geom.Point `json:"pos"`
	// MaxRange is the measured maximum transmission distance in metres;
	// 0 means unknown (the WiGLE case — location only).
	MaxRange float64 `json:"maxRange"`
}

// Disc returns the AP's coverage disc with the given fallback radius when
// the entry's own range is unknown.
func (e Entry) Disc(fallbackRange float64) geom.Circle {
	r := e.MaxRange
	if r <= 0 {
		r = fallbackRange
	}
	return geom.Circle{C: e.Pos, R: r}
}

// epochCounter hands out process-unique snapshot epochs: any two distinct
// published snapshots — even from different stores — have distinct
// epochs, so an epoch comparison alone decides "did the knowledge base
// change" (exact Γ-cache invalidation).
var epochCounter atomic.Uint64

// Store is the thread-safe AP knowledge store. Mutations (Add, AddBatch)
// touch only the builder arrays under the lock; queries go through the
// immutable Snapshot published on first use after a mutation, so readers
// never block ingest.
type Store struct {
	mu sync.RWMutex
	// Builder state: struct-of-arrays, insertion order, unique BSSIDs
	// (slot maps each BSSID to its array index; Add replaces in place).
	bssid []byte // packed 6-byte BSSIDs, len 6·n
	ssid  []string
	pos   []geom.Point
	rng   []float64
	slot  map[dot11.MAC]int32

	dirty atomic.Bool
	snap  atomic.Pointer[Snapshot]
}

// DB is the store's historical name, kept as an alias so older call sites
// keep compiling. New code should say Store.
type DB = Store

// New creates an empty store.
func New() *Store {
	return &Store{slot: make(map[dot11.MAC]int32)}
}

// FromEntries builds a store holding the given entries (later duplicates
// replace earlier ones, like repeated Add).
func FromEntries(entries []Entry) *Store {
	s := New()
	s.AddBatch(entries)
	return s
}

// Add inserts or replaces an entry.
func (s *Store) Add(e Entry) {
	s.mu.Lock()
	s.add(e)
	s.dirty.Store(true)
	s.mu.Unlock()
}

// AddBatch inserts or replaces many entries under one lock acquisition.
func (s *Store) AddBatch(entries []Entry) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	for _, e := range entries {
		s.add(e)
	}
	s.dirty.Store(true)
	s.mu.Unlock()
}

// add is the single-entry write path; callers hold s.mu.
func (s *Store) add(e Entry) {
	if i, ok := s.slot[e.BSSID]; ok {
		s.ssid[i] = e.SSID
		s.pos[i] = e.Pos
		s.rng[i] = e.MaxRange
		return
	}
	i := int32(len(s.rng))
	s.slot[e.BSSID] = i
	s.bssid = append(s.bssid, e.BSSID[:]...)
	s.ssid = append(s.ssid, e.SSID)
	s.pos = append(s.pos, e.Pos)
	s.rng = append(s.rng, e.MaxRange)
}

// Get returns the entry for a BSSID, including entries not yet published
// in a snapshot.
func (s *Store) Get(bssid dot11.MAC) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.slot[bssid]
	if !ok {
		return Entry{}, false
	}
	return s.entryAt(int(i)), true
}

// entryAt materializes the builder entry at slot i; callers hold s.mu.
func (s *Store) entryAt(i int) Entry {
	var m dot11.MAC
	copy(m[:], s.bssid[i*6:])
	return Entry{BSSID: m, SSID: s.ssid[i], Pos: s.pos[i], MaxRange: s.rng[i]}
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rng)
}

// Snapshot publishes and returns the current immutable snapshot. When the
// store is unchanged since the last call the cached snapshot is returned
// with no allocation; after a mutation the builder arrays are re-sorted
// by BSSID into a fresh snapshot carrying a new epoch (O(n log n),
// amortized over the mutation batch). The returned snapshot never
// changes: later Adds publish a successor instead of touching it.
func (s *Store) Snapshot() *Snapshot {
	if !s.dirty.Load() {
		if sn := s.snap.Load(); sn != nil {
			return sn
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.snap.Load(); sn != nil && !s.dirty.Load() {
		return sn
	}
	n := len(s.rng)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		return bytes.Compare(s.bssid[i*6:i*6+6], s.bssid[j*6:j*6+6]) < 0
	})
	sn := &Snapshot{
		epoch: epochCounter.Add(1),
		bssid: make([]byte, 6*n),
		ssid:  make([]string, n),
		pos:   make([]geom.Point, n),
		rng:   make([]float64, n),
	}
	for out, in := range perm {
		copy(sn.bssid[out*6:], s.bssid[in*6:in*6+6])
		sn.ssid[out] = s.ssid[in]
		sn.pos[out] = s.pos[in]
		sn.rng[out] = s.rng[in]
	}
	s.snap.Store(sn)
	s.dirty.Store(false)
	return sn
}

// All returns every entry sorted by BSSID (a fresh slice; the caller may
// mutate it).
func (s *Store) All() []Entry {
	return s.Snapshot().All()
}

// Within returns the entries within dist metres of p, answered by the
// snapshot's spatial index (no per-call sort, sublinear in the store
// size).
func (s *Store) Within(p geom.Point, dist float64) []Entry {
	return s.Snapshot().Within(p, dist)
}

// Nearest returns the entry closest to p; ok is false for an empty store.
func (s *Store) Nearest(p geom.Point) (Entry, bool) {
	return s.Snapshot().Nearest(p)
}

// CandidatesFor returns the coverage discs of the Γ members present in
// the store — the M-Loc/AP-Rad candidate-disc lookup — via the current
// snapshot. See Snapshot.CandidatesFor.
func (s *Store) CandidatesFor(gamma []dot11.MAC, fallbackRange float64) []geom.Circle {
	return s.Snapshot().CandidatesFor(nil, gamma, fallbackRange)
}

// FromWorld snapshots a simulated world's APs as external knowledge:
// includeRange=true models the paper's M-Loc setting (locations and
// measured radii known), false the AP-Rad setting (WiGLE locations only).
func FromWorld(w *sim.World, includeRange bool) *Store {
	s := New()
	entries := make([]Entry, 0, len(w.APs))
	for _, ap := range w.APs {
		e := Entry{BSSID: ap.MAC, SSID: ap.SSID, Pos: ap.Pos}
		if includeRange {
			e.MaxRange = ap.MaxRange
		}
		entries = append(entries, e)
	}
	s.AddBatch(entries)
	return s
}

// csvHeader is the WiGLE-like export schema.
var csvHeader = []string{"bssid", "ssid", "lat", "lon", "range_m"}

// ExportCSV writes the database as CSV with geodetic coordinates derived
// from the projection.
func (s *Store) ExportCSV(w io.Writer, proj *geo.Projection) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("apdb: write header: %w", err)
	}
	sn := s.Snapshot()
	for i := 0; i < sn.Len(); i++ {
		e := sn.EntryAt(i)
		ll := proj.ToLatLon(e.Pos)
		rec := []string{
			e.BSSID.String(),
			e.SSID,
			strconv.FormatFloat(ll.Lat, 'f', 6, 64),
			strconv.FormatFloat(ll.Lon, 'f', 6, 64),
			strconv.FormatFloat(e.MaxRange, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("apdb: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a CSV in the ExportCSV schema, projecting coordinates to
// the local plane.
func ImportCSV(r io.Reader, proj *geo.Projection) (*Store, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("apdb: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("apdb: empty csv")
	}
	entries := make([]Entry, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("apdb: row %d has %d fields, want %d",
				i+2, len(row), len(csvHeader))
		}
		bssid, err := dot11.ParseMAC(row[0])
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d: %w", i+2, err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d lat: %w", i+2, err)
		}
		lon, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d lon: %w", i+2, err)
		}
		rng, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d range: %w", i+2, err)
		}
		entries = append(entries, Entry{
			BSSID:    bssid,
			SSID:     row[1],
			Pos:      proj.ToPlane(geo.LatLon{Lat: lat, Lon: lon}),
			MaxRange: rng,
		})
	}
	return FromEntries(entries), nil
}
