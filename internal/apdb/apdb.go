// Package apdb is the AP knowledge base of the digital Marauder's map —
// the role WiGLE plays in the paper: a database of known access points with
// SSID, BSSID and location, and (when measured) maximum transmission
// distance. It supports CSV import/export in a WiGLE-like schema and
// simple spatial queries.
package apdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/dot11"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Entry is one known access point.
type Entry struct {
	BSSID dot11.MAC `json:"bssid"`
	SSID  string    `json:"ssid"`
	// Pos is the AP location in the attack's local plane (metres).
	Pos geom.Point `json:"pos"`
	// MaxRange is the measured maximum transmission distance in metres;
	// 0 means unknown (the WiGLE case — location only).
	MaxRange float64 `json:"maxRange"`
}

// Disc returns the AP's coverage disc with the given fallback radius when
// the entry's own range is unknown.
func (e Entry) Disc(fallbackRange float64) geom.Circle {
	r := e.MaxRange
	if r <= 0 {
		r = fallbackRange
	}
	return geom.Circle{C: e.Pos, R: r}
}

// DB is a thread-safe AP database.
type DB struct {
	mu      sync.RWMutex
	entries map[dot11.MAC]Entry
}

// New creates an empty DB.
func New() *DB {
	return &DB{entries: make(map[dot11.MAC]Entry)}
}

// Add inserts or replaces an entry.
func (db *DB) Add(e Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[e.BSSID] = e
}

// Get returns the entry for a BSSID.
func (db *DB) Get(bssid dot11.MAC) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[bssid]
	return e, ok
}

// Len returns the number of entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// All returns every entry sorted by BSSID.
func (db *DB) All() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, 0, len(db.entries))
	for _, e := range db.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].BSSID, out[j].BSSID
		for k := 0; k < 6; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Within returns the entries within dist metres of p.
func (db *DB) Within(p geom.Point, dist float64) []Entry {
	var out []Entry
	for _, e := range db.All() {
		if e.Pos.Dist(p) <= dist {
			out = append(out, e)
		}
	}
	return out
}

// FromWorld snapshots a simulated world's APs as external knowledge:
// includeRange=true models the paper's M-Loc setting (locations and
// measured radii known), false the AP-Rad setting (WiGLE locations only).
func FromWorld(w *sim.World, includeRange bool) *DB {
	db := New()
	for _, ap := range w.APs {
		e := Entry{BSSID: ap.MAC, SSID: ap.SSID, Pos: ap.Pos}
		if includeRange {
			e.MaxRange = ap.MaxRange
		}
		db.Add(e)
	}
	return db
}

// csvHeader is the WiGLE-like export schema.
var csvHeader = []string{"bssid", "ssid", "lat", "lon", "range_m"}

// ExportCSV writes the database as CSV with geodetic coordinates derived
// from the projection.
func (db *DB) ExportCSV(w io.Writer, proj *geo.Projection) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("apdb: write header: %w", err)
	}
	for _, e := range db.All() {
		ll := proj.ToLatLon(e.Pos)
		rec := []string{
			e.BSSID.String(),
			e.SSID,
			strconv.FormatFloat(ll.Lat, 'f', 6, 64),
			strconv.FormatFloat(ll.Lon, 'f', 6, 64),
			strconv.FormatFloat(e.MaxRange, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("apdb: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a CSV in the ExportCSV schema, projecting coordinates to
// the local plane.
func ImportCSV(r io.Reader, proj *geo.Projection) (*DB, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("apdb: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("apdb: empty csv")
	}
	db := New()
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("apdb: row %d has %d fields, want %d",
				i+2, len(row), len(csvHeader))
		}
		bssid, err := dot11.ParseMAC(row[0])
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d: %w", i+2, err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d lat: %w", i+2, err)
		}
		lon, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d lon: %w", i+2, err)
		}
		rng, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("apdb: row %d range: %w", i+2, err)
		}
		db.Add(Entry{
			BSSID:    bssid,
			SSID:     row[1],
			Pos:      proj.ToPlane(geo.LatLon{Lat: lat, Lon: lon}),
			MaxRange: rng,
		})
	}
	return db, nil
}
