package apdb

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// Benchmarks for the SoA store's query paths. The Linear/Grid pair is
// the PR 6 regression benchmark: the seed sorted the whole table on
// every Within call; the grid must stay sublinear as the AP population
// grows from a campus (255) through a district (1e5) to a metro (1e6).

// benchStore builds an n-AP store spread over an area sized for a
// roughly constant ~100 APs/km² urban density, so the grid cell
// population stays realistic at every n.
func benchStore(n int) *Store {
	rng := rand.New(rand.NewSource(int64(n)))
	side := math.Sqrt(float64(n) / 100.0 * 1e6) // meters
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			BSSID:    mac64(uint64(i) + 1),
			Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
			MaxRange: 50 + rng.Float64()*100,
		}
	}
	return FromEntries(entries)
}

var benchSizes = []int{255, 100_000, 1_000_000}

var sinkEntries []Entry

// BenchmarkWithinLinear is the seed's cost model: a full scan of the
// table per query (the seed additionally sorted, which is strictly
// worse; the scan is the fair floor).
func BenchmarkWithinLinear(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("aps=%d", n), func(b *testing.B) {
			sn := benchStore(n).Snapshot()
			side := math.Sqrt(float64(n) / 100.0 * 1e6)
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
				sinkEntries = sn.ScanWithin(p, 250)
			}
		})
	}
}

// BenchmarkWithinGrid is the same query through the spatial index.
func BenchmarkWithinGrid(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("aps=%d", n), func(b *testing.B) {
			sn := benchStore(n).Snapshot()
			side := math.Sqrt(float64(n) / 100.0 * 1e6)
			sn.Within(geom.Pt(0, 0), 1) // build the index outside the timer
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
				sinkEntries = sn.Within(p, 250)
			}
		})
	}
}

var sinkDiscs []geom.Circle

// BenchmarkCandidatesFor is the M-Loc hot path: Γ-set lookup into
// candidate discs, no per-call map or sort.
func BenchmarkCandidatesFor(b *testing.B) {
	s := benchStore(100_000)
	rng := rand.New(rand.NewSource(2))
	gamma := make([]dot11.MAC, 8)
	for i := range gamma {
		gamma[i] = mac64(uint64(rng.Intn(100_000)) + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDiscs = s.CandidatesFor(gamma, 100)
	}
}

var sinkSnap *Snapshot

// BenchmarkSnapshotPublish measures the copy-on-write slow path: one Add
// invalidates, the next Snapshot call re-sorts and republishes.
func BenchmarkSnapshotPublish(b *testing.B) {
	for _, n := range []int{255, 100_000} {
		b.Run(fmt.Sprintf("aps=%d", n), func(b *testing.B) {
			s := benchStore(n)
			e := Entry{BSSID: mac64(1), Pos: geom.Pt(1, 1), MaxRange: 100}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.MaxRange = float64(i%100) + 1
				s.Add(e)
				sinkSnap = s.Snapshot()
			}
		})
	}
}

// BenchmarkSnapshotCached is the fast path: a clean store hands out the
// published pointer with no copying.
func BenchmarkSnapshotCached(b *testing.B) {
	s := benchStore(100_000)
	s.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSnap = s.Snapshot()
	}
}

var sinkErr error

func BenchmarkSnapshotEncode(b *testing.B) {
	sn := benchStore(100_000).Snapshot()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		sinkErr = sn.WriteSnapshot(&buf)
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSnapshotDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := benchStore(100_000).WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
