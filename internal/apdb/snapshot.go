package apdb

import (
	"bytes"
	"math"
	"sync"

	"repro/internal/dot11"
	"repro/internal/geom"
)

// Snapshot is an immutable, BSSID-sorted struct-of-arrays view of a Store
// at one instant. Every query method is safe for unsynchronized concurrent
// use; the spatial index is built lazily on the first spatial query and
// shared by all of them.
//
// Identity lookups (Slot, Get, CandidatesFor) binary-search the packed
// BSSID array — O(log n) on 6-byte keys, no per-snapshot hash map to
// copy. Spatial lookups (Within, Nearest) go through a uniform grid whose
// cell size is derived from the AP density (≈4 APs per cell), so radius
// queries touch a handful of cells instead of the whole corpus.
type Snapshot struct {
	epoch uint64
	bssid []byte // packed 6-byte BSSIDs, ascending
	ssid  []string
	pos   []geom.Point
	rng   []float64

	gridOnce sync.Once
	grid     *grid
}

// emptySnapshot backs nil-store views (e.g. a zero core.Knowledge).
var emptySnapshot = &Snapshot{}

// EmptySnapshot returns the shared empty snapshot (epoch 0).
func EmptySnapshot() *Snapshot { return emptySnapshot }

// Epoch is the snapshot's process-unique generation number. Two snapshots
// with equal epochs are the same snapshot; the engine uses this as the
// knowledge generation for exact Γ-cache invalidation. The shared empty
// snapshot has epoch 0.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Len returns the number of entries.
func (s *Snapshot) Len() int { return len(s.rng) }

// macKey packs 6 BSSID bytes into a uint64 whose numeric order matches
// the byte-lexicographic order of the packed array.
func macKey(b []byte) uint64 {
	_ = b[5]
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// Slot returns the array index of a BSSID via binary search over the
// packed key array. Hand-rolled on 48-bit integer keys: this sits on the
// M-Loc hot path (one probe per Γ member per fix), where a closure-based
// search over byte slices costs a measurable share of the frame.
func (s *Snapshot) Slot(bssid dot11.MAC) (int, bool) {
	want := macKey(bssid[:])
	lo, hi := 0, len(s.rng)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if macKey(s.bssid[mid*6:]) < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.rng) && macKey(s.bssid[lo*6:]) == want {
		return lo, true
	}
	return 0, false
}

// MACAt returns the BSSID at slot i.
func (s *Snapshot) MACAt(i int) dot11.MAC {
	var m dot11.MAC
	copy(m[:], s.bssid[i*6:])
	return m
}

// PosAt returns the position at slot i.
func (s *Snapshot) PosAt(i int) geom.Point { return s.pos[i] }

// RangeAt returns the maximum transmission distance at slot i (0 means
// unknown).
func (s *Snapshot) RangeAt(i int) float64 { return s.rng[i] }

// EntryAt materializes the entry at slot i.
func (s *Snapshot) EntryAt(i int) Entry {
	return Entry{BSSID: s.MACAt(i), SSID: s.ssid[i], Pos: s.pos[i], MaxRange: s.rng[i]}
}

// Get returns the entry for a BSSID.
func (s *Snapshot) Get(bssid dot11.MAC) (Entry, bool) {
	i, ok := s.Slot(bssid)
	if !ok {
		return Entry{}, false
	}
	return s.EntryAt(i), true
}

// All returns every entry in BSSID order (a fresh slice per call).
func (s *Snapshot) All() []Entry {
	out := make([]Entry, s.Len())
	for i := range out {
		out[i] = s.EntryAt(i)
	}
	return out
}

// Equal reports whether two snapshots hold identical entries (same
// BSSIDs, SSIDs, positions and ranges). Same-pointer snapshots are equal
// without scanning.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || s.Len() != o.Len() {
		return false
	}
	if !bytes.Equal(s.bssid, o.bssid) {
		return false
	}
	for i := range s.rng {
		if s.pos[i] != o.pos[i] || s.rng[i] != o.rng[i] || s.ssid[i] != o.ssid[i] {
			return false
		}
	}
	return true
}

// CandidatesFor appends the coverage discs of the Γ members present in
// the snapshot to dst and returns it — the candidate-disc lookup M-Loc
// and AP-Rad intersect. Each AP uses its own MaxRange, or fallbackRange
// when unknown; fallbackRange ≤ 0 skips range-less APs. Cost is
// O(|Γ| log n) regardless of the store size.
func (s *Snapshot) CandidatesFor(dst []geom.Circle, gamma []dot11.MAC, fallbackRange float64) []geom.Circle {
	for _, m := range gamma {
		i, ok := s.Slot(m)
		if !ok {
			continue
		}
		r := s.rng[i]
		if r <= 0 {
			if fallbackRange <= 0 {
				continue
			}
			r = fallbackRange
		}
		dst = append(dst, geom.Circle{C: s.pos[i], R: r})
	}
	return dst
}

// AppendPositions appends the known positions of the Γ members to dst.
func (s *Snapshot) AppendPositions(dst []geom.Point, gamma []dot11.MAC) []geom.Point {
	for _, m := range gamma {
		if i, ok := s.Slot(m); ok {
			dst = append(dst, s.pos[i])
		}
	}
	return dst
}

// Within returns the entries within dist metres of p via the spatial
// index.
func (s *Snapshot) Within(p geom.Point, dist float64) []Entry {
	return s.AppendWithin(nil, p, dist)
}

// AppendWithin is Within into a caller-owned buffer.
func (s *Snapshot) AppendWithin(dst []Entry, p geom.Point, dist float64) []Entry {
	if dist < 0 || s.Len() == 0 {
		return dst
	}
	g := s.spatial()
	if g.linear {
		return s.scanWithin(dst, p, dist)
	}
	cxMin, cyMin := g.cellClamped(p.X-dist, p.Y-dist)
	cxMax, cyMax := g.cellClamped(p.X+dist, p.Y+dist)
	for cy := cyMin; cy <= cyMax; cy++ {
		for cx := cxMin; cx <= cxMax; cx++ {
			c := cy*g.w + cx
			for _, i := range g.slots[g.start[c]:g.start[c+1]] {
				if s.pos[i].Dist(p) <= dist {
					dst = append(dst, s.EntryAt(int(i)))
				}
			}
		}
	}
	return dst
}

// ScanWithin is the index-free linear reference: a full scan of the
// snapshot. Kept exported so tests and benchmarks can pin the spatial
// index byte-identical to (and measurably faster than) the naive path.
func (s *Snapshot) ScanWithin(p geom.Point, dist float64) []Entry {
	if dist < 0 {
		return nil
	}
	return s.scanWithin(nil, p, dist)
}

func (s *Snapshot) scanWithin(dst []Entry, p geom.Point, dist float64) []Entry {
	for i := range s.rng {
		if s.pos[i].Dist(p) <= dist {
			dst = append(dst, s.EntryAt(i))
		}
	}
	return dst
}

// Nearest returns the entry closest to p, searching the grid outward ring
// by ring; ok is false for an empty snapshot.
func (s *Snapshot) Nearest(p geom.Point) (Entry, bool) {
	n := s.Len()
	if n == 0 {
		return Entry{}, false
	}
	g := s.spatial()
	if g.linear {
		best, bestDist := 0, math.Inf(1)
		for i := range s.rng {
			if d := s.pos[i].Dist(p); d < bestDist {
				best, bestDist = i, d
			}
		}
		return s.EntryAt(best), true
	}
	cx, cy := g.cellClamped(p.X, p.Y)
	bestSlot := int32(-1)
	bestDist := math.Inf(1)
	maxRing := g.w + g.h // past this every cell has been visited
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, rings whose nearest cell edge is
		// farther than the candidate cannot improve on it.
		if bestSlot >= 0 && float64(ring-1)*g.cell > bestDist {
			break
		}
		for _, c := range g.ringCells(cx, cy, ring) {
			for _, i := range g.slots[g.start[c]:g.start[c+1]] {
				if d := s.pos[i].Dist(p); d < bestDist {
					bestSlot, bestDist = i, d
				}
			}
		}
	}
	return s.EntryAt(int(bestSlot)), true
}

// spatial returns the snapshot's grid, building it on first use.
func (s *Snapshot) spatial() *grid {
	s.gridOnce.Do(func() { s.grid = buildGrid(s.pos) })
	return s.grid
}

// grid is a flat CSR uniform grid over the snapshot's positions: slot
// indices bucketed by cell, cells laid out row-major over the bounding
// box. linear marks degenerate inputs (non-finite coordinates) where the
// grid would be meaningless and queries fall back to a scan.
type grid struct {
	linear     bool
	cell       float64
	minX, minY float64
	w, h       int
	start      []int32 // len w·h+1, CSR offsets into slots
	slots      []int32
}

// targetOccupancy is the mean APs-per-cell the density-derived cell size
// aims for.
const targetOccupancy = 4

// buildGrid constructs the CSR grid for a position set, deriving the cell
// size from the observed density.
func buildGrid(pos []geom.Point) *grid {
	n := len(pos)
	if n == 0 {
		return &grid{linear: true}
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pos {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if math.IsInf(minX, 0) || math.IsInf(minY, 0) || math.IsInf(maxX, 0) || math.IsInf(maxY, 0) ||
		minX != minX || minY != minY || maxX != maxX || maxY != maxY {
		return &grid{linear: true}
	}
	extX, extY := maxX-minX, maxY-minY
	cell := math.Sqrt(extX * extY * targetOccupancy / float64(n))
	if !(cell > 0) {
		// Degenerate extent (collinear or coincident APs): spread the
		// longer axis across ~n/target cells.
		cell = math.Max(extX, extY) / math.Max(1, float64(n)/targetOccupancy)
	}
	if !(cell > 0) {
		cell = 1
	}
	g := &grid{cell: cell, minX: minX, minY: minY}
	for {
		g.w = int(extX/g.cell) + 1
		g.h = int(extY/g.cell) + 1
		if g.w > 0 && g.h > 0 && g.w*g.h <= 4*n+64 {
			break
		}
		g.cell *= 2
	}
	g.start = make([]int32, g.w*g.h+1)
	cells := make([]int32, n)
	for i, p := range pos {
		cx, cy := g.cellClamped(p.X, p.Y)
		cells[i] = int32(cy*g.w + cx)
		g.start[cells[i]+1]++
	}
	for c := 0; c < g.w*g.h; c++ {
		g.start[c+1] += g.start[c]
	}
	g.slots = make([]int32, n)
	fill := make([]int32, g.w*g.h)
	for i, c := range cells {
		g.slots[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// cellClamped maps a coordinate to its cell, clamped into the grid.
func (g *grid) cellClamped(x, y float64) (int, int) {
	cx := int((x - g.minX) / g.cell)
	cy := int((y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.w {
		cx = g.w - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.h {
		cy = g.h - 1
	}
	return cx, cy
}

// ringCells returns the in-bounds cell indices on the square ring at
// Chebyshev distance ring around (cx, cy).
func (g *grid) ringCells(cx, cy, ring int) []int {
	var out []int
	if ring == 0 {
		return append(out, cy*g.w+cx)
	}
	xLo, xHi := cx-ring, cx+ring
	yLo, yHi := cy-ring, cy+ring
	for x := xLo; x <= xHi; x++ {
		if x < 0 || x >= g.w {
			continue
		}
		if yLo >= 0 {
			out = append(out, yLo*g.w+x)
		}
		if yHi < g.h {
			out = append(out, yHi*g.w+x)
		}
	}
	for y := yLo + 1; y <= yHi-1; y++ {
		if y < 0 || y >= g.h {
			continue
		}
		if xLo >= 0 {
			out = append(out, y*g.w+xLo)
		}
		if xHi < g.w {
			out = append(out, y*g.w+xHi)
		}
	}
	return out
}
